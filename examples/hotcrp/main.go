// HotCRP: the paper's Figure 6 policy — PC members must not see who
// reviewed papers they are conflicted with, even a PC chair with root on
// every server. The SPEAKS FOR ... IF NoConflict(...) annotation keeps the
// chair out of the key chain for her own paper's reviews.
//
//	go run ./examples/hotcrp
package main

import (
	"fmt"
	"log"

	"repro/internal/mp"
	"repro/internal/proxy"
	"repro/internal/sqldb"
)

func main() {
	server := sqldb.New()
	p, err := proxy.New(server, proxy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := mp.New(p, mp.Options{})

	// NoConflict is the SQL function of Figure 6, implemented as a
	// proxy-side predicate over the PaperConflict table.
	m.RegisterPredicate("NoConflict", func(args []sqldb.Value) (bool, error) {
		res, err := m.Execute(
			"SELECT COUNT(*) FROM PaperConflict WHERE paperId = ? AND contactId = ?",
			args[0], args[1])
		if err != nil {
			return false, err
		}
		return res.Rows[0][0].I == 0, nil
	})

	run := func(sql string) *sqldb.Result {
		res, err := m.Execute(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	run("PRINCTYPE physical_user EXTERNAL")
	run("PRINCTYPE contact, review")
	run(`CREATE TABLE ContactInfo (contactId INT, email VARCHAR(120),
		(email physical_user) SPEAKS FOR (contactId contact))`)
	run("CREATE TABLE PaperConflict (paperId INT, contactId INT)")
	run("CREATE TABLE PCMember (contactId INT)")
	run(`CREATE TABLE PaperReview (
		paperId INT,
		reviewerId INT ENC FOR (paperId review),
		commentsToPC TEXT ENC FOR (paperId review),
		(PCMember.contactId contact) SPEAKS FOR (paperId review) IF NoConflict(paperId, contactId))`)

	// The chair (contact 1) authored paper 7; reviewer (contact 2) is on
	// the PC.
	run("INSERT INTO cryptdb_active (username, password) VALUES ('chair@conf.org', 'chair-pw')")
	run("INSERT INTO ContactInfo (contactId, email) VALUES (1, 'chair@conf.org')")
	run("INSERT INTO cryptdb_active (username, password) VALUES ('reviewer@univ.edu', 'rev-pw')")
	run("INSERT INTO ContactInfo (contactId, email) VALUES (2, 'reviewer@univ.edu')")
	run("INSERT INTO PaperConflict (paperId, contactId) VALUES (7, 1)")
	run("INSERT INTO PCMember (contactId) VALUES (1), (2)")

	// Reviewer 2 reviews the chair's paper 7.
	run("INSERT INTO PaperReview (paperId, reviewerId, commentsToPC) VALUES (7, 2, 'solid work, accept')")

	res := run("SELECT reviewerId, commentsToPC FROM PaperReview WHERE paperId = 7")
	fmt.Printf("reviewer logged in: reviewerId=%v comments=%q\n", res.Rows[0][0], res.Rows[0][1])

	// Reviewer logs out; only the conflicted chair remains. Even with
	// complete access to application, proxy and DBMS, the chair cannot
	// learn the review or the reviewer's identity.
	run("DELETE FROM cryptdb_active WHERE username = 'reviewer@univ.edu'")
	if _, err := m.Execute("SELECT reviewerId FROM PaperReview WHERE paperId = 7"); err != nil {
		fmt.Printf("conflicted chair:   blocked as designed: %v\n", err)
	} else {
		log.Fatal("SECURITY BUG: chair read a conflicted review")
	}

	// A non-conflicted paper remains readable by the chair.
	run("INSERT INTO cryptdb_active (username, password) VALUES ('reviewer@univ.edu', 'rev-pw')")
	run("INSERT INTO PaperReview (paperId, reviewerId, commentsToPC) VALUES (8, 2, 'needs work')")
	run("DELETE FROM cryptdb_active WHERE username = 'reviewer@univ.edu'")
	res = run("SELECT commentsToPC FROM PaperReview WHERE paperId = 8")
	fmt.Printf("unconflicted paper: comments=%q (chair may read paper 8)\n", res.Rows[0][0])
}
