// TPC-C: load the 92-column TPC-C schema fully encrypted (single-principal
// mode, as in §8.1: "we encrypt all the columns"), run the query mix, and
// compare results and storage against a plaintext run.
//
//	go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/workload"
	"repro/internal/workload/tpcc"
)

func main() {
	cfg := tpcc.Config{Warehouses: 1, Districts: 2, Customers: 10, Items: 20, Orders: 10, Seed: 1}

	// Plaintext run.
	plainDB := sqldb.New()
	plain := workload.PlainDB{DB: plainDB}
	if err := tpcc.Load(plain, cfg); err != nil {
		log.Fatal(err)
	}

	// Encrypted run.
	encDB := sqldb.New()
	p, err := proxy.New(encDB, proxy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := tpcc.Load(p, cfg); err != nil {
		log.Fatal(err)
	}
	// Refill the Paillier r^n pool after the load, as the paper's proxy
	// does in idle time (§3.5.2) — HOM encryption then leaves the
	// critical path.
	if err := p.HOMKey().Precompute(600); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the TPC-C query mix on plaintext and encrypted databases...")
	gPlain := tpcc.NewGenerator(cfg)
	gEnc := tpcc.NewGenerator(cfg)
	const n = 300
	startPlain := time.Now()
	for i := 0; i < n; i++ {
		_, sql, params := gPlain.Next()
		if _, err := plain.Execute(sql, params...); err != nil {
			log.Fatalf("plain: %v", err)
		}
	}
	plainDur := time.Since(startPlain)
	startEnc := time.Now()
	for i := 0; i < n; i++ {
		class, sql, params := gEnc.Next()
		if _, err := p.Execute(sql, params...); err != nil {
			log.Fatalf("encrypted %v: %v", class, err)
		}
	}
	encDur := time.Since(startEnc)

	fmt.Printf("  plaintext: %6d queries in %v (%.0f q/s)\n", n, plainDur.Round(time.Millisecond),
		float64(n)/plainDur.Seconds())
	fmt.Printf("  CryptDB:   %6d queries in %v (%.0f q/s)\n", n, encDur.Round(time.Millisecond),
		float64(n)/encDur.Seconds())
	fmt.Printf("  slowdown:  %.2fx\n", encDur.Seconds()/plainDur.Seconds())

	// Spot-check correctness: the same aggregate through both paths.
	r1, err := plain.Execute("SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = ?", sqldb.Int(1010001))
	if err != nil {
		log.Fatal(err)
	}
	r2, err := p.Execute("SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = ?", sqldb.Int(1010001))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSUM(ol_amount) for order 1010001: plaintext=%v encrypted=%v\n", r1.Rows[0][0], r2.Rows[0][0])

	// Storage expansion (§8.4.3: the paper reports 3.76x for TPC-C).
	fmt.Printf("\nstorage: plaintext %d bytes, encrypted %d bytes (%.2fx expansion)\n",
		plainDB.SizeBytes(), encDB.SizeBytes(),
		float64(encDB.SizeBytes())/float64(plainDB.SizeBytes()))

	st := p.Stats()
	fmt.Printf("proxy stats: %d queries, %d onion adjustments (steady state after training)\n",
		st.Queries, st.OnionAdjustments)
}
