// Quickstart: encrypted query processing in ~40 lines.
//
// An application creates a table, inserts rows and queries them through the
// CryptDB proxy exactly as it would against a plain DBMS; the embedded DBMS
// underneath only ever sees anonymized names and ciphertexts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/proxy"
	"repro/internal/sqldb"
)

func main() {
	server := sqldb.New() // the "unmodified DBMS server"
	p, err := proxy.New(server, proxy.Options{})
	if err != nil {
		log.Fatal(err)
	}

	run := func(sql string) *sqldb.Result {
		res, err := p.Execute(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	run("CREATE TABLE employees (id INT PRIMARY KEY, name TEXT, dept TEXT, salary INT)")
	run("INSERT INTO employees (id, name, dept, salary) VALUES (23, 'Alice', 'sales', 60000)")
	run("INSERT INTO employees (id, name, dept, salary) VALUES (24, 'Bob', 'sales', 55000)")
	run("INSERT INTO employees (id, name, dept, salary) VALUES (25, 'Carol', 'eng', 80000)")

	// Equality: the proxy adjusts the Eq onion to DET, then compares
	// ciphertexts at the server (§3.3's worked example).
	res := run("SELECT id FROM employees WHERE name = 'Alice'")
	fmt.Printf("Alice's id: %v\n", res.Rows[0][0])

	// Aggregation: SUM runs at the server over Paillier ciphertexts.
	res = run("SELECT dept, SUM(salary) FROM employees GROUP BY dept ORDER BY dept")
	for _, row := range res.Rows {
		fmt.Printf("dept %-6s total salary %v\n", row[0], row[1])
	}

	// Range: the Ord onion drops to OPE only because we asked.
	res = run("SELECT name FROM employees WHERE salary > 58000 ORDER BY salary DESC LIMIT 5")
	fmt.Print("earning > 58000:")
	for _, row := range res.Rows {
		fmt.Printf(" %v", row[0])
	}
	fmt.Println()

	// What the DBMS actually stores: opaque tables, opaque columns,
	// ciphertext bytes.
	fmt.Println("\nserver-side view:")
	for _, tn := range server.TableNames() {
		srv, _ := server.ExecSQL("SELECT * FROM " + tn)
		fmt.Printf("  table %s, columns %v, %d rows\n", tn, srv.Columns, len(srv.Rows))
		if len(srv.Rows) > 0 {
			fmt.Printf("  first row: %.100v...\n", srv.Rows[0])
		}
	}
}
