// Forum: the paper's Figure 4 scenario end to end — private messages in a
// phpBB-style forum protected by multi-principal CryptDB. Bob sends Alice a
// message; each can read it while logged in; once both log out, an
// adversary with full control of the application, proxy and DBMS cannot
// decrypt it.
//
//	go run ./examples/forum
package main

import (
	"fmt"
	"log"

	"repro/internal/mp"
	"repro/internal/proxy"
	"repro/internal/sqldb"
)

func main() {
	server := sqldb.New()
	p, err := proxy.New(server, proxy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := mp.New(p, mp.Options{})

	run := func(sql string) *sqldb.Result {
		res, err := m.Execute(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	// Figure 4's annotated schema: 2 unique annotation types, 3 uses.
	run("PRINCTYPE physical_user EXTERNAL")
	run("PRINCTYPE puser, msg")
	run(`CREATE TABLE users (userid INT, username VARCHAR(255),
		(username physical_user) SPEAKS FOR (userid puser))`)
	run(`CREATE TABLE privmsgs_to (msgid INT, rcpt_id INT, sender_id INT,
		(sender_id puser) SPEAKS FOR (msgid msg),
		(rcpt_id puser) SPEAKS FOR (msgid msg))`)
	run(`CREATE TABLE privmsgs (msgid INT,
		subject VARCHAR(255) ENC FOR (msgid msg),
		msgtext TEXT ENC FOR (msgid msg))`)

	// Alice and Bob register (the application INSERTs their passwords
	// into cryptdb_active at login — the proxy intercepts, the DBMS
	// never sees them).
	run("INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'alice-password')")
	run("INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	run("INSERT INTO cryptdb_active (username, password) VALUES ('Bob', 'bob-password')")
	run("INSERT INTO users (userid, username) VALUES (2, 'Bob')")

	// Bob sends message 5 to Alice.
	run("INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 2)")
	run("INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 'lunch?', 'meet at noon — secret location')")

	res := run("SELECT subject, msgtext FROM privmsgs WHERE msgid = 5")
	fmt.Printf("while logged in:  subject=%q body=%q\n", res.Rows[0][0], res.Rows[0][1])

	// Bob logs out; Alice can still read her message.
	run("DELETE FROM cryptdb_active WHERE username = 'Bob'")
	res = run("SELECT msgtext FROM privmsgs WHERE msgid = 5")
	fmt.Printf("after Bob logout: body=%q (Alice's key chain still reaches msg 5)\n", res.Rows[0][0])

	// Alice logs out too. Now simulate a full compromise: the attacker
	// holds the proxy and the DBMS — and still cannot decrypt.
	run("DELETE FROM cryptdb_active WHERE username = 'Alice'")
	if _, err := m.Execute("SELECT msgtext FROM privmsgs WHERE msgid = 5"); err != nil {
		fmt.Printf("after all logout: decryption fails as designed: %v\n", err)
	} else {
		log.Fatal("SECURITY BUG: message readable with no user logged in")
	}

	fmt.Println("\nserver-side key tables (only wrapped keys, no secrets):")
	for _, tn := range []string{"cryptdb_access_keys", "cryptdb_external_keys"} {
		r, _ := server.ExecSQL("SELECT COUNT(*) FROM " + tn)
		fmt.Printf("  %s: %v rows\n", tn, r.Rows[0][0])
	}
}
