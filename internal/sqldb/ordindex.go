package sqldb

import "strings"

// ordIndex is an ordered secondary index: a skiplist over Value.OrdKey with
// the row slots per key. It is what lets range predicates, ORDER BY ...
// LIMIT and MIN/MAX run off sorted ciphertexts (OPE) instead of a full scan
// plus sort — the paper's §3.3 "DBMS builds ordinary indexes on OPE
// ciphertexts". Writers hold the database lock, so the structure needs no
// internal locking; readers under the shared lock never mutate it.
type ordIndex struct {
	column  string
	pos     int
	head    *ordNode // sentinel; head.next[l] is the first node at level l
	level   int      // levels currently in use
	keys    int      // distinct keys
	entries int      // total (key, slot) pairs
	// kindCount tracks how many entries hold each Value kind; the planner
	// only trusts OrdKey order when the indexed column is kind-homogeneous
	// (NULLs aside), since SQL comparison coerces across kinds.
	kindCount [4]int
	rng       uint64 // xorshift state for level selection
}

const (
	ordMaxLevel = 20
	nullOrdKey  = "\x00"
)

type ordNode struct {
	key   string
	val   Value // representative value for the key (MIN/MAX endpoints)
	slots []int // ascending, so ties come out in slot order like a scan
	next  []*ordNode
	prev  *ordNode // level-0 predecessor (head for the first node)
}

func newOrdIndex(column string, pos int) *ordIndex {
	return &ordIndex{
		column: column,
		pos:    pos,
		head:   &ordNode{next: make([]*ordNode, ordMaxLevel)},
		level:  1,
		rng:    0x9e3779b97f4a7c15,
	}
}

func (ix *ordIndex) randLevel() int {
	ix.rng ^= ix.rng << 13
	ix.rng ^= ix.rng >> 7
	ix.rng ^= ix.rng << 17
	x := ix.rng
	lvl := 1
	for lvl < ordMaxLevel && x&3 == 0 { // p = 1/4
		lvl++
		x >>= 2
	}
	return lvl
}

// insert adds one (value, slot) entry.
func (ix *ordIndex) insert(v Value, slot int) {
	key := v.OrdKey()
	var update [ordMaxLevel]*ordNode
	n := ix.head
	for l := ix.level - 1; l >= 0; l-- {
		for n.next[l] != nil && n.next[l].key < key {
			n = n.next[l]
		}
		update[l] = n
	}
	ix.entries++
	ix.kindCount[v.Kind]++
	if hit := update[0].next[0]; hit != nil && hit.key == key {
		hit.slots = insertSlot(hit.slots, slot)
		return
	}
	lvl := ix.randLevel()
	for ix.level < lvl {
		update[ix.level] = ix.head
		ix.level++
	}
	node := &ordNode{key: key, val: v, slots: []int{slot}, next: make([]*ordNode, lvl)}
	for l := 0; l < lvl; l++ {
		node.next[l] = update[l].next[l]
		update[l].next[l] = node
	}
	node.prev = update[0]
	if node.next[0] != nil {
		node.next[0].prev = node
	}
	ix.keys++
}

// remove drops one (value, slot) entry; a no-op if absent.
func (ix *ordIndex) remove(v Value, slot int) {
	key := v.OrdKey()
	var update [ordMaxLevel]*ordNode
	n := ix.head
	for l := ix.level - 1; l >= 0; l-- {
		for n.next[l] != nil && n.next[l].key < key {
			n = n.next[l]
		}
		update[l] = n
	}
	node := update[0].next[0]
	if node == nil || node.key != key {
		return
	}
	slots := removeSlotOrdered(node.slots, slot)
	if len(slots) == len(node.slots) {
		return // slot was not indexed under this key
	}
	node.slots = slots
	ix.entries--
	ix.kindCount[v.Kind]--
	if len(node.slots) > 0 {
		return
	}
	for l := 0; l < ix.level; l++ {
		if update[l].next[l] != node {
			break
		}
		update[l].next[l] = node.next[l]
	}
	if node.next[0] != nil {
		node.next[0].prev = node.prev
	}
	for ix.level > 1 && ix.head.next[ix.level-1] == nil {
		ix.level--
	}
	ix.keys--
}

// insertSlot keeps the slot list sorted ascending so that equal-key rows
// stream out in the same order a table scan would visit them.
func insertSlot(slots []int, slot int) []int {
	i := len(slots)
	for i > 0 && slots[i-1] > slot {
		i--
	}
	slots = append(slots, 0)
	copy(slots[i+1:], slots[i:])
	slots[i] = slot
	return slots
}

func removeSlotOrdered(slots []int, slot int) []int {
	for i, s := range slots {
		if s == slot {
			return append(slots[:i], slots[i+1:]...)
		}
	}
	return slots
}

// seekGE returns the first node with key >= key, or nil.
func (ix *ordIndex) seekGE(key string) *ordNode {
	n := ix.head
	for l := ix.level - 1; l >= 0; l-- {
		for n.next[l] != nil && n.next[l].key < key {
			n = n.next[l]
		}
	}
	return n.next[0]
}

func (ix *ordIndex) first() *ordNode { return ix.head.next[0] }

func (ix *ordIndex) last() *ordNode {
	n := ix.head
	for l := ix.level - 1; l >= 0; l-- {
		for n.next[l] != nil {
			n = n.next[l]
		}
	}
	if n == ix.head {
		return nil
	}
	return n
}

func (ix *ordIndex) prevNode(n *ordNode) *ordNode {
	if n.prev == ix.head {
		return nil
	}
	return n.prev
}

// minNonNull / maxNonNull return the index endpoints ignoring NULL entries
// (SQL MIN/MAX semantics), or nil when no non-NULL entry exists.
func (ix *ordIndex) minNonNull() *ordNode {
	n := ix.first()
	if n != nil && n.key == nullOrdKey {
		n = n.next[0]
	}
	return n
}

func (ix *ordIndex) maxNonNull() *ordNode {
	n := ix.last()
	if n != nil && n.key == nullOrdKey {
		return nil
	}
	return n
}

// soleKind reports the single non-NULL kind stored in the index. ok is
// false when entries of different kinds coexist, in which case OrdKey order
// may disagree with SQL's coercing comparison and the planner must fall
// back to a scan. An empty (or all-NULL) index reports (KindNull, true).
func (ix *ordIndex) soleKind() (Kind, bool) { return soleKindOf(ix.kindCount) }

// ordRange is a resolved key interval over an ordIndex.
type ordRange struct {
	lo, hi       string
	hasLo, hasHi bool
	loInc, hiInc bool
	// all walks the whole index including NULL entries (ORDER BY); bounded
	// walks skip NULLs because comparisons never match them.
	all   bool
	empty bool
}

// ascendRange visits nodes in ascending key order within r.
func (ix *ordIndex) ascendRange(r ordRange, fn func(*ordNode) bool) {
	if r.empty {
		return
	}
	var n *ordNode
	switch {
	case r.all:
		n = ix.first()
	case r.hasLo:
		n = ix.seekGE(r.lo)
		if n != nil && !r.loInc && n.key == r.lo {
			n = n.next[0]
		}
	default:
		// Unbounded below: start past the NULL entries, which no
		// comparison predicate can match.
		n = ix.seekGE(nullOrdKey)
		if n != nil && n.key == nullOrdKey {
			n = n.next[0]
		}
	}
	for ; n != nil; n = n.next[0] {
		if r.hasHi {
			if c := strings.Compare(n.key, r.hi); c > 0 || (c == 0 && !r.hiInc) {
				return
			}
		}
		if !fn(n) {
			return
		}
	}
}

// descendRange visits nodes in descending key order within r.
func (ix *ordIndex) descendRange(r ordRange, fn func(*ordNode) bool) {
	if r.empty {
		return
	}
	var n *ordNode
	switch {
	case r.all, !r.hasHi:
		n = ix.last()
	default:
		if g := ix.seekGE(r.hi); g == nil {
			n = ix.last()
		} else if g.key == r.hi && r.hiInc {
			n = g
		} else {
			n = ix.prevNode(g)
		}
	}
	for ; n != nil; n = ix.prevNode(n) {
		if !r.all && n.key == nullOrdKey {
			return // bounded walks exclude NULLs
		}
		if r.hasLo {
			if c := strings.Compare(n.key, r.lo); c < 0 || (c == 0 && !r.loInc) {
				return
			}
		}
		if !fn(n) {
			return
		}
	}
}

// countRange counts entries inside r, stopping at cap (the planner caps the
// walk at the best cost found so far, so planning never outweighs running).
func (ix *ordIndex) countRange(r ordRange, cap int) int {
	total := 0
	ix.ascendRange(r, func(n *ordNode) bool {
		total += len(n.slots)
		return total < cap
	})
	return total
}
