// Write-ahead logging for the embedded DBMS. The WAL makes committed
// writes durable: every autocommit statement (and every BEGIN..COMMIT
// transaction) appends one CRC-framed batch of physical redo records, and
// Open replays committed batches to reconstruct the exact in-memory state.
// CryptDB's security story depends on this — the proxy's onion-layer
// decisions are only meaningful if the ciphertexts they describe survive a
// restart — so the WAL also carries opaque "meta" records the proxy uses to
// commit its own metadata atomically with the server-side writes that
// change it (see ExecWithMeta).
//
// On-disk layout (everything little-endian-free: lengths and integers are
// big-endian or varint):
//
//	file   := header frame*
//	header := magic[8] version[4] reserved[4]
//	frame  := payloadLen[4] crc32(payload)[4] payload
//	payload:= seq[8] op*
//
// A frame is the unit of atomicity: a crash can only ever truncate the
// file inside the last frame, and replay stops at the first frame whose
// length or CRC does not check out, discarding the torn tail. Batch
// sequence numbers are strictly increasing; replay skips batches already
// covered by the snapshot (see snapshot.go).
package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsutil"
	"repro/internal/sqlparser"
)

// WAL op kinds. Ops are physical: they record slots and cell values, not
// SQL, so replay is deterministic regardless of UDFs, randomness or
// planner decisions during the original execution.
const (
	walOpInsert      = 1 // table, slot, row values
	walOpDelete      = 2 // table, slot
	walOpUpdate      = 3 // table, slot, pos, new value
	walOpCreateTable = 4 // table, column defs (name, type, primary)
	walOpCreateIndex = 5 // table, column, unique flag, kind (hash/ordered)
	walOpDropTable   = 6 // table
	walOpMeta        = 7 // opaque application metadata blob
)

const (
	walMagic     = "CDBWAL\x00\x01"
	walVersion   = 1
	walHeaderLen = 16
	frameHdrLen  = 8
	// maxFrameLen rejects absurd lengths when scanning a (possibly
	// corrupt) log, bounding allocation.
	maxFrameLen = 1 << 30
)

// walOp is one decoded redo record.
type walOp struct {
	kind    byte
	table   string
	slot    int
	pos     int
	row     []Value
	val     Value
	cols    []walColDef
	column  string
	unique  bool
	ordered bool
	meta    []byte
}

type walColDef struct {
	name    string
	typ     sqlparser.ColType
	primary bool
}

//
// Encoding
//

func appendUvarint(buf []byte, u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], u)
	return append(buf, tmp[:n]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case KindInt:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I))
		buf = append(buf, b[:]...)
	case KindText:
		buf = appendString(buf, v.S)
	case KindBlob:
		buf = appendUvarint(buf, uint64(len(v.B)))
		buf = append(buf, v.B...)
	}
	return buf
}

func appendInsertOp(buf []byte, table string, slot int, row []Value) []byte {
	buf = append(buf, walOpInsert)
	buf = appendString(buf, table)
	buf = appendUvarint(buf, uint64(slot))
	buf = appendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = appendValue(buf, v)
	}
	return buf
}

func appendDeleteOp(buf []byte, table string, slot int) []byte {
	buf = append(buf, walOpDelete)
	buf = appendString(buf, table)
	return appendUvarint(buf, uint64(slot))
}

func appendUpdateOp(buf []byte, table string, slot, pos int, v Value) []byte {
	buf = append(buf, walOpUpdate)
	buf = appendString(buf, table)
	buf = appendUvarint(buf, uint64(slot))
	buf = appendUvarint(buf, uint64(pos))
	return appendValue(buf, v)
}

func appendCreateTableOp(buf []byte, table string, cols []walColDef) []byte {
	buf = append(buf, walOpCreateTable)
	buf = appendString(buf, table)
	buf = appendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendString(buf, c.name)
		buf = append(buf, byte(c.typ))
		if c.primary {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func appendCreateIndexOp(buf []byte, table, column string, unique, ordered bool) []byte {
	buf = append(buf, walOpCreateIndex)
	buf = appendString(buf, table)
	buf = appendString(buf, column)
	flags := byte(0)
	if unique {
		flags |= 1
	}
	if ordered {
		flags |= 2
	}
	return append(buf, flags)
}

func appendDropTableOp(buf []byte, table string) []byte {
	buf = append(buf, walOpDropTable)
	return appendString(buf, table)
}

func appendMetaOp(buf []byte, meta []byte) []byte {
	buf = append(buf, walOpMeta)
	buf = appendUvarint(buf, uint64(len(meta)))
	return append(buf, meta...)
}

//
// Decoding
//

type walDecoder struct {
	buf []byte
	off int
}

func (d *walDecoder) done() bool { return d.off >= len(d.buf) }

func (d *walDecoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *walDecoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	d.off += n
	return u, nil
}

func (d *walDecoder) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(d.buf)-d.off) {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *walDecoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(n)
	return string(b), err
}

func (d *walDecoder) value() (Value, error) {
	k, err := d.byte()
	if err != nil {
		return Value{}, err
	}
	switch Kind(k) {
	case KindNull:
		return Null(), nil
	case KindInt:
		b, err := d.bytes(8)
		if err != nil {
			return Value{}, err
		}
		return Int(int64(binary.BigEndian.Uint64(b))), nil
	case KindText:
		s, err := d.string()
		return Text(s), err
	case KindBlob:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		b, err := d.bytes(n)
		if err != nil {
			return Value{}, err
		}
		return Blob(append([]byte(nil), b...)), nil
	}
	return Value{}, fmt.Errorf("sqldb: wal: unknown value kind %d", k)
}

func (d *walDecoder) op() (walOp, error) {
	kind, err := d.byte()
	if err != nil {
		return walOp{}, err
	}
	op := walOp{kind: kind}
	switch kind {
	case walOpInsert:
		if op.table, err = d.string(); err != nil {
			return op, err
		}
		slot, err := d.uvarint()
		if err != nil {
			return op, err
		}
		op.slot = int(slot)
		n, err := d.uvarint()
		if err != nil {
			return op, err
		}
		op.row = make([]Value, n)
		for i := range op.row {
			if op.row[i], err = d.value(); err != nil {
				return op, err
			}
		}
	case walOpDelete:
		if op.table, err = d.string(); err != nil {
			return op, err
		}
		slot, err := d.uvarint()
		if err != nil {
			return op, err
		}
		op.slot = int(slot)
	case walOpUpdate:
		if op.table, err = d.string(); err != nil {
			return op, err
		}
		slot, err := d.uvarint()
		if err != nil {
			return op, err
		}
		pos, err := d.uvarint()
		if err != nil {
			return op, err
		}
		op.slot, op.pos = int(slot), int(pos)
		if op.val, err = d.value(); err != nil {
			return op, err
		}
	case walOpCreateTable:
		if op.table, err = d.string(); err != nil {
			return op, err
		}
		n, err := d.uvarint()
		if err != nil {
			return op, err
		}
		op.cols = make([]walColDef, n)
		for i := range op.cols {
			if op.cols[i].name, err = d.string(); err != nil {
				return op, err
			}
			t, err := d.byte()
			if err != nil {
				return op, err
			}
			p, err := d.byte()
			if err != nil {
				return op, err
			}
			op.cols[i].typ = sqlparser.ColType(t)
			op.cols[i].primary = p != 0
		}
	case walOpCreateIndex:
		if op.table, err = d.string(); err != nil {
			return op, err
		}
		if op.column, err = d.string(); err != nil {
			return op, err
		}
		flags, err := d.byte()
		if err != nil {
			return op, err
		}
		op.unique = flags&1 != 0
		op.ordered = flags&2 != 0
	case walOpDropTable:
		if op.table, err = d.string(); err != nil {
			return op, err
		}
	case walOpMeta:
		n, err := d.uvarint()
		if err != nil {
			return op, err
		}
		b, err := d.bytes(n)
		if err != nil {
			return op, err
		}
		op.meta = append([]byte(nil), b...)
	default:
		return op, fmt.Errorf("sqldb: wal: unknown op kind %d", kind)
	}
	return op, nil
}

//
// Replay: apply a decoded op to the database. Used both for WAL recovery
// and for loading snapshots (a snapshot is a self-contained op stream that
// rebuilds the whole database). Ops bypass the SQL layer: the original
// execution already validated them, so constraint checks are skipped.
//

func (db *DB) applyOp(op walOp) error {
	switch op.kind {
	case walOpCreateTable:
		if _, exists := db.tables[op.table]; exists {
			return fmt.Errorf("sqldb: wal replay: table %s already exists", op.table)
		}
		cols := make([]Column, len(op.cols))
		for i, c := range op.cols {
			cols[i] = Column{Name: c.name, Type: c.typ, Primary: c.primary}
		}
		t := newTable(op.table, cols)
		db.adoptTable(t)
		for _, c := range op.cols {
			if c.primary {
				if err := t.addIndex(c.name, true); err != nil {
					return err
				}
			}
		}
		db.tables[op.table] = t
		return nil
	case walOpCreateIndex:
		t, ok := db.tables[op.table]
		if !ok {
			return fmt.Errorf("sqldb: wal replay: no table %s", op.table)
		}
		if op.ordered {
			return t.addOrdIndex(op.column)
		}
		return t.addIndex(op.column, op.unique)
	case walOpDropTable:
		t, ok := db.tables[op.table]
		if !ok {
			return fmt.Errorf("sqldb: wal replay: no table %s", op.table)
		}
		if db.pager != nil {
			db.pager.forgetTable(t)
		}
		delete(db.tables, op.table)
		return nil
	case walOpInsert:
		t, ok := db.tables[op.table]
		if !ok {
			return fmt.Errorf("sqldb: wal replay: no table %s", op.table)
		}
		return t.placeRow(op.slot, op.row)
	case walOpDelete:
		t, ok := db.tables[op.table]
		if !ok {
			return fmt.Errorf("sqldb: wal replay: no table %s", op.table)
		}
		t.deleteRow(op.slot)
		return nil
	case walOpUpdate:
		t, ok := db.tables[op.table]
		if !ok {
			return fmt.Errorf("sqldb: wal replay: no table %s", op.table)
		}
		if op.slot >= t.slotCount() || t.rowAt(op.slot) == nil {
			return fmt.Errorf("sqldb: wal replay: update of empty slot %d in %s", op.slot, op.table)
		}
		t.updateCellUnchecked(op.slot, op.pos, op.val)
		return nil
	case walOpMeta:
		db.meta = op.meta
		atomic.AddUint64(&db.metaVer, 1)
		return nil
	}
	return fmt.Errorf("sqldb: wal replay: unknown op kind %d", op.kind)
}

//
// WAL file writer with group commit.
//
// Committers do not write the file themselves. Under the database lock they
// enqueue their framed batch into the current cohort (a cheap memcpy, so
// frames land in the file in sequence order — recovery depends on the log
// being a dependency-ordered prefix); after releasing the database lock they
// wait for the cohort to reach disk. The first waiter becomes the leader: it
// takes the cohort, performs one write+fsync for every batch in it, and then
// keeps flushing any cohorts that accumulated behind it before stepping
// down. N concurrent committers therefore pay ~1 fsync instead of N — the
// transparent amortization the durability figure shows fsync needs (it
// dominates the write path ~40x).
//
// Cohorts only amortize if committers actually overlap. Committers announce
// themselves (announce/retire) when they enter the commit path, and the
// leader grants announced-but-not-yet-staged committers a brief yield
// window (bounded by groupCommitWindow, a fraction of one fsync) to get
// their frames into the cohort before it pays the fsync. Without this, a
// machine with few cores degenerates into a convoy — the leader's fsync
// syscall monopolizes the CPU, waiters only run between fsyncs, and every
// cohort ends up holding a single batch.
//

// groupCommitWindow bounds how long a leader waits for announced committers
// to stage their frames before flushing. Small against one fsync (~100µs on
// a local SSD, milliseconds on spinning or networked storage), so worst
// case it adds a fraction of the latency it can save.
const groupCommitWindow = 200 * time.Microsecond

// walCohort is one group of framed batches that will hit the disk in a
// single write+fsync.
type walCohort struct {
	frames []byte        // concatenated frames, in enqueue (= sequence) order
	n      int64         // batches in the cohort
	done   chan struct{} // closed once the cohort is on disk (or failed)
	err    error         // set before done is closed
	lead   chan struct{} // leadership baton (buffered 1; see waitFlush)
}

type walWriter struct {
	f       *os.File
	path    string
	fsync   bool
	noGroup bool // ablation: one private cohort (and one fsync) per commit

	mu       sync.Mutex
	cond     *sync.Cond   // signaled when a leader steps down
	queue    []*walCohort // staged cohorts; the tail accepts enqueues
	flushing bool         // some goroutine holds (or is being handed) leadership
	closed   bool
	// failed poisons the writer after a cohort write or sync error: the
	// file may hold a torn frame at an unknown offset, and appending past
	// it would let recovery silently discard later acknowledged commits
	// (replay cuts at the first damaged frame). Every subsequent commit
	// fails fast instead. A successful reset (checkpoint) clears it: the
	// snapshot captured the state and the truncated log is whole again.
	failed error

	// announced counts committers currently inside the commit path
	// (announce..retire); staged counts frames sitting in the queue.
	// announced > staged means more committers are on their way and a
	// leader should give them a moment to join the cohort.
	announced int64
	staged    int64

	// taps are live replication subscribers (guarded by mu). A cohort's
	// frames are handed to every tap after — never before — its
	// write+fsync succeeds, so a follower can only ever see durable
	// commits.
	taps []*LogTap

	// stats (atomics: read by WALStats without the writer lock)
	size    int64
	batches int64
	bytes   int64
	syncs   int64
}

// announce registers an in-flight committer; retire must follow once its
// batch is durable (or its statement failed before producing one).
func (w *walWriter) announce() { atomic.AddInt64(&w.announced, 1) }
func (w *walWriter) retire()   { atomic.AddInt64(&w.announced, -1) }

func newWALHeader() []byte {
	h := make([]byte, walHeaderLen)
	copy(h, walMagic)
	binary.BigEndian.PutUint32(h[8:], walVersion)
	return h
}

// createWAL creates (or truncates) a WAL file with a fresh header.
func createWAL(path string, fsync, noGroup bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("sqldb: creating wal: %w", err)
	}
	if _, err := f.Write(newWALHeader()); err != nil {
		f.Close()
		return nil, fmt.Errorf("sqldb: writing wal header: %w", err)
	}
	w := newWALWriter(f, path, walHeaderLen, fsync, noGroup)
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sqldb: wal sync: %w", err)
		}
	}
	return w, nil
}

func newWALWriter(f *os.File, path string, size int64, fsync, noGroup bool) *walWriter {
	w := &walWriter{f: f, path: path, size: size, fsync: fsync, noGroup: noGroup}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// buildFrame frames one batch: length, CRC, then seq-prefixed ops.
func buildFrame(seq uint64, ops []byte) []byte {
	payload := make([]byte, 8+len(ops))
	binary.BigEndian.PutUint64(payload, seq)
	copy(payload[8:], ops)
	frame := make([]byte, frameHdrLen+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHdrLen:], payload)
	return frame
}

// enqueue stages one committed batch into the current cohort and returns a
// handle to wait on. MUST be called while the caller still holds the
// database write lock that assigned seq: cohort order is file order, and
// recovery requires the log to be a dependency-ordered prefix (a batch that
// updates a row may never precede the batch that inserted it).
func (w *walWriter) enqueue(seq uint64, ops []byte) *walCohort {
	frame := buildFrame(seq, ops)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.failed != nil {
		err := w.failed
		if err == nil {
			err = fmt.Errorf("sqldb: wal is closed")
		} else {
			err = fmt.Errorf("sqldb: wal disabled by earlier write failure: %w", err)
		}
		c := &walCohort{err: err, done: make(chan struct{})}
		close(c.done)
		return c
	}
	// The tail cohort accepts new frames; a cohort being flushed has
	// already been popped, so it can no longer grow. In noGroup mode
	// every batch gets a private cohort — and its own fsync.
	if len(w.queue) == 0 || w.noGroup {
		w.queue = append(w.queue, &walCohort{done: make(chan struct{}), lead: make(chan struct{}, 1)})
	}
	c := w.queue[len(w.queue)-1]
	c.frames = append(c.frames, frame...)
	c.n++
	atomic.AddInt64(&w.staged, 1)
	return c
}

// waitFlush blocks until c is durable. The first committer to arrive while
// no flush is in progress becomes the leader; a committer arriving during a
// flush waits for either its cohort's verdict or the leadership baton — the
// outgoing leader hands the baton to the next staged cohort once its own
// cohort is durable, so under sustained load leadership rotates instead of
// capturing one unlucky session for the duration of the burst.
func (w *walWriter) waitFlush(c *walCohort) error {
	w.mu.Lock()
	if w.flushing {
		w.mu.Unlock()
		select {
		case <-c.done:
			return c.err
		case <-c.lead:
			w.mu.Lock() // baton received: leadership (flushing stays true)
		}
	} else {
		w.flushing = true
	}
	return w.leadUntilDone(c)
}

// leadUntilDone flushes cohorts in order until c is durable, then hands
// leadership to a waiter of the next staged cohort (or steps down when the
// queue is empty). Called with w.mu held and leadership owned; returns with
// w.mu released.
func (w *walWriter) leadUntilDone(c *walCohort) error {
	for {
		select {
		case <-c.done:
			if len(w.queue) > 0 {
				next := w.queue[0]
				w.mu.Unlock()
				next.lead <- struct{}{} // buffered: waiter may not have arrived yet
			} else {
				w.flushing = false
				w.cond.Broadcast()
				w.mu.Unlock()
			}
			return c.err
		default:
		}
		// Hold the head cohort open for announced stragglers before
		// popping it: enqueue only ever appends to the queue tail, so the
		// window is useless once the cohort has left the queue. The queue
		// cannot be empty here — c is staged and unflushed, and only the
		// leader pops.
		if w.failed == nil {
			w.awaitStragglers()
		}
		w.flushHeadLocked()
	}
}

// flushHeadLocked pops the head cohort and disposes of it: failed fast
// when the writer is poisoned, written+synced otherwise, with any error
// promoted into the sticky failure. Called with w.mu held and the flushing
// flag owned; returns with w.mu held.
func (w *walWriter) flushHeadLocked() {
	cohort := w.queue[0]
	w.queue = w.queue[1:]
	atomic.AddInt64(&w.staged, -cohort.n)
	if w.failed != nil {
		cohort.err = fmt.Errorf("sqldb: wal disabled by earlier write failure: %w", w.failed)
		close(cohort.done)
		return
	}
	w.mu.Unlock()
	w.flushCohort(cohort)
	w.mu.Lock()
	if cohort.err != nil && w.failed == nil {
		w.failed = cohort.err
	}
	if cohort.err == nil {
		// Deliver under w.mu: the flushing flag serializes flushes, and
		// delivering before the next cohort can flush keeps every tap in
		// file (= sequence) order.
		for _, t := range w.taps {
			t.deliver(cohort.frames)
		}
	}
}

// removeTap unsubscribes a tap.
func (w *walWriter) removeTap(tap *LogTap) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, t := range w.taps {
		if t == tap {
			w.taps = append(w.taps[:i], w.taps[i+1:]...)
			return
		}
	}
}

// invalidateTaps marks every subscriber lagged: the log's contents no
// longer continue the stream the taps have seen, so subscribers must
// re-establish (and possibly resync from a snapshot).
func (w *walWriter) invalidateTaps() {
	w.mu.Lock()
	taps := append([]*LogTap(nil), w.taps...)
	w.mu.Unlock()
	for _, t := range taps {
		t.invalidate()
	}
}

// awaitStragglers yields briefly (bounded by groupCommitWindow) while more
// committers are announced than staged, so their frames make this cohort's
// fsync instead of forcing their own. Called by the leader with w.mu held;
// returns with w.mu held. Skipped when fsync is off (nothing expensive to
// share) and in the noGroup ablation.
func (w *walWriter) awaitStragglers() {
	if !w.fsync || w.noGroup {
		return
	}
	w.mu.Unlock()
	// One unconditional yield before sampling: concurrent committers can
	// only announce and stage while this goroutine gives up the CPU — the
	// fsync below is a syscall that never does, so on a single-core host
	// this yield is the only thing that lets cohorts form at all.
	runtime.Gosched()
	deadline := time.Now().Add(groupCommitWindow)
	for atomic.LoadInt64(&w.announced) > atomic.LoadInt64(&w.staged) {
		runtime.Gosched()
		if time.Now().After(deadline) {
			break
		}
	}
	w.mu.Lock()
}


// flushCohort writes one cohort to the file and syncs it. Runs outside
// w.mu; the flushing flag guarantees a single writer.
func (w *walWriter) flushCohort(c *walCohort) {
	_, err := w.f.Write(c.frames)
	if err != nil {
		err = fmt.Errorf("sqldb: wal append: %w", err)
	} else if w.fsync {
		if serr := w.f.Sync(); serr != nil {
			err = fmt.Errorf("sqldb: wal sync: %w", serr)
		} else {
			atomic.AddInt64(&w.syncs, 1)
		}
	}
	if err == nil {
		atomic.AddInt64(&w.size, int64(len(c.frames)))
		atomic.AddInt64(&w.batches, c.n)
		atomic.AddInt64(&w.bytes, int64(len(c.frames)))
	}
	c.err = err
	close(c.done)
}

// drainLocked flushes every staged cohort and waits for any in-flight
// leader, leaving the writer idle. Called with w.mu held.
func (w *walWriter) drainLocked() {
	for len(w.queue) > 0 || w.flushing {
		if w.flushing {
			w.cond.Wait()
			continue
		}
		w.flushing = true
		w.flushHeadLocked()
		w.flushing = false
		w.cond.Broadcast()
	}
}

// reset truncates the log back to an empty header (after a checkpoint made
// its contents redundant). Any cohort staged before the reset is flushed
// first so its waiters still get a verdict; replay would skip those batches
// anyway because the snapshot's sequence number covers them.
func (w *walWriter) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drainLocked()
	if err := w.f.Truncate(walHeaderLen); err != nil {
		return fmt.Errorf("sqldb: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(walHeaderLen, io.SeekStart); err != nil {
		return fmt.Errorf("sqldb: wal seek: %w", err)
	}
	atomic.StoreInt64(&w.size, walHeaderLen)
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("sqldb: wal sync: %w", err)
		}
		atomic.AddInt64(&w.syncs, 1)
	}
	// The truncated log is whole again and the checkpoint that called us
	// captured the full state, so a write failure that poisoned the
	// writer is cured. Commits that failed during the poisoned window
	// applied in memory without ever reaching a tap, so any subscriber now
	// has a gap: invalidate them (they must resync via snapshot).
	if w.failed != nil {
		for _, t := range w.taps {
			t.invalidate()
		}
	}
	w.failed = nil
	return nil
}

// truncateTo rewrites the log keeping only frames with seq > keep, after an
// incremental checkpoint whose manifest covers everything up to keep. Unlike
// reset, commits may have landed since the checkpoint captured its state —
// their frames must survive the truncation, and in one contiguous log so
// replication backfill (readFrames on this same path) keeps working. The
// rewrite is atomic: temp file + rename, so a crash leaves either log, both
// correct to replay against the new manifest. As with reset, a successful
// truncation cures a poisoned writer — the manifest captured every state the
// damaged frames described — but subscribers must resync.
func (w *walWriter) truncateTo(keep uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("sqldb: wal is closed")
	}
	w.drainLocked()
	// A torn frame left by the poisoning failure decodes as damage and is
	// dropped here; its batch carries seq <= keep (the checkpoint ran after
	// it applied), so the manifest already covers it.
	frames, err := readFrames(w.path, keep)
	if err != nil {
		return fmt.Errorf("sqldb: wal truncate scan: %w", err)
	}
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("sqldb: wal truncate: %w", err)
	}
	if _, err := f.Write(newWALHeader()); err == nil {
		_, err = f.Write(frames)
	}
	if err == nil && w.fsync {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: wal truncate write: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: wal truncate rename: %w", err)
	}
	if w.fsync {
		if err := fsutil.SyncDir(filepath.Dir(w.path)); err != nil {
			f.Close()
			return err
		}
		atomic.AddInt64(&w.syncs, 1)
	}
	old := w.f
	w.f = f
	//cryptdb:vet-ok durabilityerr: old descriptor is fully synced and replaced; nothing left to flush
	old.Close()
	atomic.StoreInt64(&w.size, int64(walHeaderLen+len(frames)))
	if w.failed != nil {
		for _, t := range w.taps {
			t.invalidate()
		}
	}
	w.failed = nil
	return nil
}

func (w *walWriter) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.drainLocked()
	w.closed = true
	w.mu.Unlock()
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// walBatch is one committed batch read back during recovery.
type walBatch struct {
	seq uint64
	ops []walOp
}

// readWAL scans a WAL file, returning every intact committed batch and the
// byte offset of the first damaged or missing frame. A torn or corrupt
// tail is expected after a crash and is simply cut off; corruption in the
// middle of the file cannot be distinguished from a torn tail by the
// scanner, so everything after the damage is discarded either way.
func readWAL(path string) (batches []walBatch, goodOffset int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < walHeaderLen || string(data[:8]) != walMagic {
		return nil, 0, fmt.Errorf("sqldb: %s is not a wal file", path)
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != walVersion {
		return nil, 0, fmt.Errorf("sqldb: wal version %d not supported", v)
	}
	off := int64(walHeaderLen)
	for {
		rest := data[off:]
		if len(rest) < frameHdrLen {
			return batches, off, nil
		}
		plen := binary.BigEndian.Uint32(rest)
		if plen < 8 || plen > maxFrameLen || int(plen) > len(rest)-frameHdrLen {
			return batches, off, nil
		}
		want := binary.BigEndian.Uint32(rest[4:])
		payload := rest[frameHdrLen : frameHdrLen+int(plen)]
		if crc32.ChecksumIEEE(payload) != want {
			return batches, off, nil
		}
		b := walBatch{seq: binary.BigEndian.Uint64(payload)}
		d := &walDecoder{buf: payload[8:]}
		ok := true
		for !d.done() {
			op, err := d.op()
			if err != nil {
				ok = false // framed but undecodable: treat as damage
				break
			}
			b.ops = append(b.ops, op)
		}
		if !ok {
			return batches, off, nil
		}
		batches = append(batches, b)
		off += int64(frameHdrLen) + int64(plen)
	}
}
