package sqldb

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
)

// scopeTable binds one FROM table (with alias) into a query scope.
type scopeTable struct {
	alias string // effective name used for qualification
	t     *Table
}

// scope resolves column references for a query over one or more tables.
type scope struct {
	tabs []scopeTable
}

// tuple is one joined row: one []Value per scope table.
type tuple [][]Value

func (s *scope) addTable(alias string, t *Table) {
	if alias == "" {
		alias = t.Name
	}
	s.tabs = append(s.tabs, scopeTable{alias: alias, t: t})
}

// resolve maps a (table, column) reference to (table index, column index).
// An empty table name searches all tables and errs on ambiguity.
func (s *scope) resolve(table, col string) (int, int, error) {
	if table != "" {
		for ti, st := range s.tabs {
			if st.alias == table || st.t.Name == table {
				ci := st.t.ColumnIndex(col)
				if ci < 0 {
					return 0, 0, fmt.Errorf("sqldb: no column %s.%s", table, col)
				}
				return ti, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqldb: no table %s in scope", table)
	}
	foundTi, foundCi := -1, -1
	for ti, st := range s.tabs {
		if ci := st.t.ColumnIndex(col); ci >= 0 {
			if foundTi >= 0 {
				return 0, 0, fmt.Errorf("sqldb: ambiguous column %s", col)
			}
			foundTi, foundCi = ti, ci
		}
	}
	if foundTi < 0 {
		return 0, 0, fmt.Errorf("sqldb: no column %s", col)
	}
	return foundTi, foundCi, nil
}

// evalCtx carries everything expression evaluation needs.
type evalCtx struct {
	db     *DB
	scope  *scope
	tup    tuple
	params []Value
	// agg maps an aggregate call's String() to its computed value when
	// evaluating projections/HAVING over grouped results.
	agg map[string]Value
	// lookup, when set, resolves column references instead of scope/tup
	// (standalone evaluation — see EvalExpr).
	lookup func(table, col string) (Value, error)
}

func (c *evalCtx) eval(e sqlparser.Expr) (Value, error) {
	switch x := e.(type) {
	case *sqlparser.IntLit:
		return Int(x.V), nil
	case *sqlparser.StrLit:
		return Text(x.V), nil
	case *sqlparser.BytesLit:
		return Blob(x.V), nil
	case *sqlparser.NullLit:
		return Null(), nil
	case *sqlparser.BoolLit:
		return Bool(x.V), nil
	case *sqlparser.Param:
		if x.Index >= len(c.params) {
			return Value{}, fmt.Errorf("sqldb: missing parameter %d", x.Index+1)
		}
		return c.params[x.Index], nil
	case *sqlparser.ColRef:
		if c.lookup != nil {
			return c.lookup(x.Table, x.Column)
		}
		ti, ci, err := c.scope.resolve(x.Table, x.Column)
		if err != nil {
			return Value{}, err
		}
		if c.tup == nil || c.tup[ti] == nil {
			return Null(), nil
		}
		return c.tup[ti][ci], nil
	case *sqlparser.BinaryExpr:
		return c.evalBinary(x)
	case *sqlparser.UnaryExpr:
		v, err := c.eval(x.E)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			return Bool(!v.Truthy()), nil
		case "-":
			n, err := v.AsInt()
			if err != nil {
				return Value{}, err
			}
			return Int(-n), nil
		}
		return Value{}, fmt.Errorf("sqldb: unknown unary operator %q", x.Op)
	case *sqlparser.InExpr:
		v, err := c.eval(x.E)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			return Bool(x.Not), nil
		}
		for _, item := range x.List {
			iv, err := c.eval(item)
			if err != nil {
				return Value{}, err
			}
			if v.Equal(iv) {
				return Bool(!x.Not), nil
			}
		}
		return Bool(x.Not), nil
	case *sqlparser.LikeExpr:
		v, err := c.eval(x.E)
		if err != nil {
			return Value{}, err
		}
		p, err := c.eval(x.Pattern)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || p.IsNull() {
			return Bool(false), nil
		}
		matched := likeMatch(valueText(v), valueText(p))
		return Bool(matched != x.Not), nil
	case *sqlparser.BetweenExpr:
		v, err := c.eval(x.E)
		if err != nil {
			return Value{}, err
		}
		lo, err := c.eval(x.Lo)
		if err != nil {
			return Value{}, err
		}
		hi, err := c.eval(x.Hi)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Bool(false), nil
		}
		cl, err := v.Compare(lo)
		if err != nil {
			return Value{}, err
		}
		ch, err := v.Compare(hi)
		if err != nil {
			return Value{}, err
		}
		in := cl >= 0 && ch <= 0
		return Bool(in != x.Not), nil
	case *sqlparser.IsNullExpr:
		v, err := c.eval(x.E)
		if err != nil {
			return Value{}, err
		}
		return Bool(v.IsNull() != x.Not), nil
	case *sqlparser.FuncCall:
		// Grouped aggregates are resolved from the precomputed map.
		if c.agg != nil {
			if v, ok := c.agg[x.String()]; ok {
				return v, nil
			}
		}
		if isBuiltinAgg(x.Name) {
			return Value{}, fmt.Errorf("sqldb: aggregate %s in a non-aggregate context", x.Name)
		}
		if c.db == nil {
			return Value{}, fmt.Errorf("sqldb: no function %s in standalone evaluation", x.Name)
		}
		// Exec holds db.mu (read or write) for the whole statement, and
		// RegisterUDF takes the write lock, so reading the registries
		// here without additional locking is race-free.
		_, isAgg := c.db.aggUDFs[x.Name]
		fn, ok := c.db.udfs[x.Name]
		if isAgg && !ok {
			return Value{}, fmt.Errorf("sqldb: aggregate UDF %s in a non-aggregate context", x.Name)
		}
		if !ok {
			return Value{}, fmt.Errorf("sqldb: unknown function %s", x.Name)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := c.eval(a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return fn(args)
	}
	return Value{}, fmt.Errorf("sqldb: cannot evaluate %T", e)
}

func valueText(v Value) string {
	if v.Kind == KindBlob {
		return string(v.B)
	}
	return v.String()
}

func (c *evalCtx) evalBinary(x *sqlparser.BinaryExpr) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := c.eval(x.L)
		if err != nil {
			return Value{}, err
		}
		if !l.IsNull() && !l.Truthy() {
			return Bool(false), nil
		}
		r, err := c.eval(x.R)
		if err != nil {
			return Value{}, err
		}
		return Bool(l.Truthy() && r.Truthy()), nil
	case "OR":
		l, err := c.eval(x.L)
		if err != nil {
			return Value{}, err
		}
		if l.Truthy() {
			return Bool(true), nil
		}
		r, err := c.eval(x.R)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.Truthy()), nil
	}

	l, err := c.eval(x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := c.eval(x.R)
	if err != nil {
		return Value{}, err
	}

	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		cmp, err := l.Compare(r)
		if err != nil {
			return Value{}, err
		}
		var out bool
		switch x.Op {
		case "=":
			out = cmp == 0
		case "!=":
			out = cmp != 0
		case "<":
			out = cmp < 0
		case "<=":
			out = cmp <= 0
		case ">":
			out = cmp > 0
		case ">=":
			out = cmp >= 0
		}
		return Bool(out), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Text(valueText(l) + valueText(r)), nil
	case "+", "-", "*", "/", "%", "&", "|", "^":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		a, err := l.AsInt()
		if err != nil {
			return Value{}, err
		}
		b, err := r.AsInt()
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "+":
			return Int(a + b), nil
		case "-":
			return Int(a - b), nil
		case "*":
			return Int(a * b), nil
		case "/":
			if b == 0 {
				return Null(), nil
			}
			return Int(a / b), nil
		case "%":
			if b == 0 {
				return Null(), nil
			}
			return Int(a % b), nil
		case "&":
			return Int(a & b), nil
		case "|":
			return Int(a | b), nil
		case "^":
			return Int(a ^ b), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: unknown operator %q", x.Op)
}

func isBuiltinAgg(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// collectAggCalls walks an expression and appends every aggregate call
// (builtin or registered aggregate UDF) found.
func collectAggCalls(db *DB, e sqlparser.Expr, out *[]*sqlparser.FuncCall) {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if isBuiltinAgg(x.Name) {
			*out = append(*out, x)
			return
		}
		// Called under db.mu held by Exec; see evalCtx.eval.
		_, isAgg := db.aggUDFs[x.Name]
		if isAgg {
			*out = append(*out, x)
			return
		}
		for _, a := range x.Args {
			collectAggCalls(db, a, out)
		}
	case *sqlparser.BinaryExpr:
		collectAggCalls(db, x.L, out)
		collectAggCalls(db, x.R, out)
	case *sqlparser.UnaryExpr:
		collectAggCalls(db, x.E, out)
	case *sqlparser.InExpr:
		collectAggCalls(db, x.E, out)
		for _, i := range x.List {
			collectAggCalls(db, i, out)
		}
	case *sqlparser.LikeExpr:
		collectAggCalls(db, x.E, out)
		collectAggCalls(db, x.Pattern, out)
	case *sqlparser.BetweenExpr:
		collectAggCalls(db, x.E, out)
		collectAggCalls(db, x.Lo, out)
		collectAggCalls(db, x.Hi, out)
	case *sqlparser.IsNullExpr:
		collectAggCalls(db, x.E, out)
	}
}
