package sqldb

// This file is the compiled execution pipeline: the operator chain a
// lowered SELECT (compile.go) runs through. Rows flow in batches of ~256
// tuples from a scan source through hash-join / nested-loop operators into
// a consumer that filters, groups, sorts and projects with compiled
// closures — no AST walking per row. Semantics mirror the interpreter in
// select.go exactly; the interpreter remains both the fallback for
// statements the compiler refuses and the oracle the equivalence tests
// compare against.

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// batchSize is the number of tuples per pipeline batch: small enough to
// stay cache-resident, large enough to amortize per-batch overhead.
const batchSize = 256

// rowSource produces joined tuples in batches. The emit callback must not
// retain the batch slice (it is reused), though it may retain the tuples.
type rowSource interface {
	run(emit func([]tuple) error) error
}

// constSource yields the single empty tuple of a FROM-less SELECT.
type constSource struct{}

func (constSource) run(emit func([]tuple) error) error { return emit([]tuple{nil}) }

// batcher accumulates tuples and flushes them downstream in batches. Tuple
// backing storage is carved from chunks so a batch costs two allocations,
// not one per row.
type batcher struct {
	ntabs int
	emit  func([]tuple) error
	buf   []tuple
	mem   [][]Value
}

func newBatcher(ntabs int, emit func([]tuple) error) *batcher {
	return &batcher{ntabs: ntabs, emit: emit, buf: make([]tuple, 0, batchSize)}
}

// newTuple allocates an ntabs-wide tuple from the current chunk.
func (b *batcher) newTuple() tuple {
	if len(b.mem) < b.ntabs {
		b.mem = make([][]Value, b.ntabs*batchSize)
	}
	t := b.mem[:b.ntabs:b.ntabs]
	b.mem = b.mem[b.ntabs:]
	return t
}

func (b *batcher) add(t tuple) error {
	b.buf = append(b.buf, t)
	if len(b.buf) >= batchSize {
		return b.flush()
	}
	return nil
}

func (b *batcher) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	err := b.emit(b.buf)
	b.buf = b.buf[:0]
	return err
}

// scanSource streams one table through its planned access path.
type scanSource struct {
	t     *Table
	acc   access
	ti    int
	ntabs int
}

func (s *scanSource) run(emit func([]tuple) error) error {
	b := newBatcher(s.ntabs, emit)
	var err error
	s.acc.iterate(s.t, func(_ int, row []Value) bool {
		tup := b.newTuple()
		tup[s.ti] = row
		if e := b.add(tup); e != nil {
			err = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return b.flush()
}

// joinKey is one column of a hash join's equi key: an expression evaluated
// against the probe stream and a column position on the build table.
type joinKey struct {
	probe    compiledExpr
	buildPos int
}

// hashJoinSource joins the inner stream against table ti: the table's rows
// (bounded by its own sarg-pruned access path) are hashed once on the equi
// key, then each probe tuple's key values are hashed once and matched.
// Coercion semantics are preserved the same way the hash indexes do it
// (eqSlots): the key lookup is only trusted when each build column holds a
// single value kind and the probe value coerces into it; otherwise the
// probe row falls back to comparing against every build row, which
// reproduces the interpreter's per-pair `=` behavior — including NULL
// never matching and cross-kind comparison errors.
type hashJoinSource struct {
	db       *DB
	inner    rowSource
	t        *Table
	ti       int
	ntabs    int
	acc      access
	keys     []joinKey
	residual compiledExpr // remaining ON conjuncts, nil if none
	params   []Value
}

// pairFunc returns the emit step shared by the probe paths: join the build
// row into a fresh tuple, apply the residual ON filter, hand downstream.
// newTuple/add abstract the downstream so the serial batcher and the
// parallel morsel pipelines (parallel.go) share the same join semantics.
func (h *hashJoinSource) pairFunc(newTuple func() tuple, add func(tuple) error, rev *execEnv) func(tuple, []Value) error {
	return func(tup tuple, brow []Value) error {
		nt := newTuple()
		copy(nt, tup)
		nt[h.ti] = brow
		if h.residual != nil {
			rev.tup = nt
			v, err := h.residual(rev)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		return add(nt)
	}
}

// builtTable is one hash join's prepared build side. Either a borrowed
// persistent hash index (idx != nil: the build side is an unpruned full
// scan over a single indexed key column, so the index *is* the build
// table) or a transient table built from the access path, stored in one or
// more stripes: the serial build fills a single stripe, the parallel build
// (parallel.go) fills buildStripes keyed by a hash of the key bytes so
// stripes build concurrently without locks.
type builtTable struct {
	// Index mode.
	idx      *hashIndex
	idxKind  Kind
	idxHomog bool

	// Build mode.
	stripes     []map[string][][]Value
	stripeMask  uint32    // 0 with a single stripe
	rows        [][]Value // build rows with a fully non-NULL key, slot order
	buildKinds  []Kind
	homogeneous bool

	total int // all build rows, including NULL-key ones
}

// lookup returns the build rows under an encoded key, in slot order.
func (bt *builtTable) lookup(key []byte) [][]Value {
	s := 0
	if bt.stripeMask != 0 {
		s = int(fnv32a(key) & bt.stripeMask)
	}
	return bt.stripes[s][string(key)]
}

// fnv32a hashes key bytes for stripe selection (FNV-1a).
func fnv32a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// probeScratch is the per-probe-pipeline scratch state of one hash join:
// evaluation environments, decoded key values and the key encoding buffer.
// The serial run owns one; each parallel worker owns one per join step.
type probeScratch struct {
	pev, rev  execEnv
	probeVals []Value
	keyBuf    []byte
}

func (h *hashJoinSource) newProbeScratch() *probeScratch {
	return &probeScratch{
		pev:       execEnv{params: h.params},
		rev:       execEnv{params: h.params},
		probeVals: make([]Value, len(h.keys)),
	}
}

// prepare runs the build phase once and tallies the join in the planner
// counters (hashJoins for a trusted-key build, nestedLoops for a
// heterogeneous one that degrades to per-pair comparison). workers > 1
// builds large unpruned build sides morsel-parallel (parallel.go).
func (h *hashJoinSource) prepare(workers int) (*builtTable, error) {
	// When the key is one column, the build side is an unpruned full scan
	// and that column already has a hash index, the index *is* the build
	// table: probe it directly instead of rebuilding the same map per
	// statement. (A pruned access path can't use this: the index covers
	// rows the plan's sargs exclude.)
	if len(h.keys) == 1 && h.acc.kind == accessScan {
		if idx := h.t.indexByPos(h.keys[0].buildPos); idx != nil {
			kind, homog := idx.soleKind()
			if homog {
				atomic.AddInt64(&h.db.hashJoins, 1)
			} else {
				atomic.AddInt64(&h.db.nestedLoops, 1)
			}
			return &builtTable{idx: idx, idxKind: kind, idxHomog: homog, total: h.t.RowCount()}, nil
		}
	}
	if workers > 1 && h.acc.kind == accessScan && h.t.live >= parallelMinRows {
		return h.buildParallel(workers)
	}
	return h.buildSerial()
}

// buildSerial hashes the build side's candidate rows on the equi key in a
// single stripe, in slot order.
func (h *hashJoinSource) buildSerial() (*builtTable, error) {
	bt := &builtTable{stripes: []map[string][][]Value{make(map[string][][]Value)}}
	m := bt.stripes[0]
	kinds := make([][4]int, len(h.keys))
	vals := make([]Value, len(h.keys))
	var keyBuf []byte
	h.acc.iterate(h.t, func(_ int, row []Value) bool {
		bt.total++
		for i, k := range h.keys {
			v := row[k.buildPos]
			if v.IsNull() {
				return true // NULL joins nothing; keep the row out of the table
			}
			vals[i] = v
		}
		keyBuf = keyBuf[:0]
		for i, v := range vals {
			kinds[i][int(v.Kind)]++
			keyBuf = v.appendKey(keyBuf)
			keyBuf = append(keyBuf, 0)
		}
		m[string(keyBuf)] = append(m[string(keyBuf)], row)
		bt.rows = append(bt.rows, row)
		return true
	})
	h.finishBuild(bt, kinds)
	return bt, nil
}

// finishBuild derives the per-column build kinds, decides the trusted-key
// vs per-pair probe mode, and tallies the join.
func (h *hashJoinSource) finishBuild(bt *builtTable, kinds [][4]int) {
	bt.buildKinds = make([]Kind, len(h.keys))
	bt.homogeneous = true
	for i := range kinds {
		k, ok := soleKindOf(kinds[i])
		if !ok {
			bt.homogeneous = false
		}
		bt.buildKinds[i] = k
	}
	if bt.homogeneous {
		atomic.AddInt64(&h.db.hashJoins, 1)
	} else {
		atomic.AddInt64(&h.db.nestedLoops, 1)
	}
}

// probeTuple matches one probe tuple against the prepared build table and
// feeds each surviving pair to pair. Coercion semantics are preserved the
// same way the hash indexes do it (eqSlots): the key lookup is only
// trusted when each build column holds a single value kind and the probe
// value coerces into it; otherwise the probe row falls back to comparing
// against every build row, which reproduces the interpreter's per-pair `=`
// behavior — including NULL never matching and cross-kind comparison
// errors.
func (h *hashJoinSource) probeTuple(bt *builtTable, s *probeScratch, tup tuple, pair func(tuple, []Value) error) error {
	if bt.total == 0 {
		// No build rows: no pairs exist, so — like the interpreter's
		// nested loop — the probe-side key expressions are never
		// evaluated.
		return nil
	}
	s.pev.tup = tup
	if bt.idx != nil {
		return h.probeIndex(bt, s, tup, pair)
	}
	isNull := false
	for i, k := range h.keys {
		v, err := k.probe(&s.pev)
		if err != nil {
			return err
		}
		if v.IsNull() {
			isNull = true
			break
		}
		s.probeVals[i] = v
	}
	if isNull {
		return nil // `=` with NULL matches nothing
	}
	if bt.homogeneous {
		s.keyBuf = s.keyBuf[:0]
		coerced := true
		for i, v := range s.probeVals {
			cv, ok := coerceOrdBound(v, bt.buildKinds[i])
			if !ok {
				coerced = false
				break
			}
			s.keyBuf = cv.appendKey(s.keyBuf)
			s.keyBuf = append(s.keyBuf, 0)
		}
		if coerced {
			for _, brow := range bt.lookup(s.keyBuf) {
				if err := pair(tup, brow); err != nil {
					return err
				}
			}
			return nil
		}
	}
	// Heterogeneous build kinds or an incoercible probe value: compare the
	// key per build row, preserving per-pair coercion (and its errors)
	// exactly as a nested loop would.
	for _, brow := range bt.rows {
		match, err := h.pairKeyEqual(s.probeVals, brow)
		if err != nil {
			return err
		}
		if !match {
			continue
		}
		if err := pair(tup, brow); err != nil {
			return err
		}
	}
	return nil
}

// probeIndex probes the build table's persistent hash index. Semantics
// match the build-and-probe path: the index maintains the same kind tally
// (soleKind) and the probe coerces via coerceOrdBound, falling back to
// per-row coercing comparison when the lookup cannot be trusted.
func (h *hashJoinSource) probeIndex(bt *builtTable, s *probeScratch, tup tuple, pair func(tuple, []Value) error) error {
	v, err := h.keys[0].probe(&s.pev)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // `=` with NULL matches nothing
	}
	if bt.idxHomog {
		if bt.idxKind == KindNull {
			return nil // all build keys NULL: nothing can match
		}
		if cv, ok := coerceOrdBound(v, bt.idxKind); ok {
			s.keyBuf = cv.appendKey(s.keyBuf[:0])
			for _, slot := range bt.idx.m[string(s.keyBuf)] {
				if err := pair(tup, h.t.rowAt(slot)); err != nil {
					return err
				}
			}
			return nil
		}
	}
	// Mixed build kinds or an incoercible probe value: per-row coercing
	// comparison, as the interpreter's scan fallback does.
	s.probeVals[0] = v
	perr := error(nil)
	h.t.scan(func(_ int, brow []Value) bool {
		match, err := h.pairKeyEqual(s.probeVals[:1], brow)
		if err == nil && match {
			err = pair(tup, brow)
		}
		if err != nil {
			perr = err
			return false
		}
		return true
	})
	return perr
}

func (h *hashJoinSource) run(emit func([]tuple) error) error {
	bt, err := h.prepare(1)
	if err != nil {
		return err
	}
	out := newBatcher(h.ntabs, emit)
	s := h.newProbeScratch()
	pair := h.pairFunc(out.newTuple, out.add, &s.rev)
	err = h.inner.run(func(batch []tuple) error {
		for _, tup := range batch {
			if err := h.probeTuple(bt, s, tup, pair); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return out.flush()
}

// pairKeyEqual evaluates the multi-column key equality for one (probe,
// build) pair in conjunct order with AND short-circuit, mirroring the
// interpreter's evaluation of the original equality conjuncts.
func (h *hashJoinSource) pairKeyEqual(probeVals []Value, brow []Value) (bool, error) {
	for i, k := range h.keys {
		bv := brow[k.buildPos]
		if bv.IsNull() || probeVals[i].IsNull() {
			return false, nil
		}
		c, err := probeVals[i].Compare(bv)
		if err != nil {
			return false, err
		}
		if c != 0 {
			return false, nil
		}
	}
	return true, nil
}

// loopJoinSource is the compiled nested-loop join for steps with no equi
// key: each probe tuple iterates the table's access path under the ON
// filter, exactly like the interpreter's fallback.
type loopJoinSource struct {
	db     *DB
	inner  rowSource
	t      *Table
	ti     int
	ntabs  int
	acc    access
	on     compiledExpr // nil for a plain cross step (comma join)
	params []Value
}

func (l *loopJoinSource) run(emit func([]tuple) error) error {
	atomic.AddInt64(&l.db.nestedLoops, 1)
	out := newBatcher(l.ntabs, emit)
	ev := &execEnv{params: l.params}
	err := l.inner.run(func(batch []tuple) error {
		for _, tup := range batch {
			var iterErr error
			l.acc.iterate(l.t, func(_ int, row []Value) bool {
				nt := out.newTuple()
				copy(nt, tup)
				nt[l.ti] = row
				if l.on != nil {
					ev.tup = nt
					v, err := l.on(ev)
					if err != nil {
						iterErr = err
						return false
					}
					if !v.Truthy() {
						return true
					}
				}
				if err := out.add(nt); err != nil {
					iterErr = err
					return false
				}
				return true
			})
			if iterErr != nil {
				return iterErr
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return out.flush()
}

//
// Pipeline consumer: filter -> [group] -> sort -> project.
//

// run executes the lowered plan and materializes the result.
func (p *compiledSelect) run() (*Result, error) {
	if p.hasSeed {
		p.db.countAccess(p.seedAcc)
	}
	if res, err, ran := p.tryRunParallel(); ran {
		return res, err
	}
	if p.grouped {
		return p.runGrouped()
	}
	return p.runPlain()
}

// sortItem is one sortable output row: a tuple (a group's first tuple for
// grouped queries) plus finalized aggregates, with ORDER BY keys memoized
// lazily so each key expression is evaluated at most once per row — and
// not at all for keys no comparison reaches, matching the interpreter's
// per-comparison evaluation.
type sortItem struct {
	tup  tuple
	aggs []Value
	keys []Value
	have []bool
}

func (p *compiledSelect) sortItems(items []sortItem) error {
	n := len(p.orderBy)
	keyMem := make([]Value, n*len(items))
	haveMem := make([]bool, n*len(items))
	for i := range items {
		items[i].keys = keyMem[i*n : (i+1)*n]
		items[i].have = haveMem[i*n : (i+1)*n]
	}
	ev := &execEnv{params: p.params}
	var sortErr error
	key := func(it *sortItem, k int) (Value, bool) {
		if !it.have[k] {
			ev.tup, ev.aggs = it.tup, it.aggs
			v, err := p.orderBy[k].key(ev)
			if err != nil {
				sortErr = err
				return Value{}, false
			}
			it.keys[k] = v
			it.have[k] = true
		}
		return it.keys[k], true
	}
	sort.SliceStable(items, func(i, j int) bool {
		if sortErr != nil {
			return false
		}
		for k := 0; k < n; k++ {
			vi, ok := key(&items[i], k)
			if !ok {
				return false
			}
			vj, ok := key(&items[j], k)
			if !ok {
				return false
			}
			c := compareForSort(vi, vj)
			if c == 0 {
				continue
			}
			if p.orderBy[k].desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

// projAlloc carves result rows from chunks: one allocation per batchSize
// rows instead of one per row. The compiledSelect owns one for serial
// execution; each parallel worker owns its own (parallel.go).
type projAlloc struct{ mem []Value }

func (pa *projAlloc) alloc(n int) []Value {
	if len(pa.mem) < n {
		pa.mem = make([]Value, n*batchSize)
	}
	row := pa.mem[:n:n]
	pa.mem = pa.mem[n:]
	return row
}

func (p *compiledSelect) projectInto(ev *execEnv, tup tuple, aggs []Value) ([]Value, error) {
	return p.projectWith(&p.projMem, ev, tup, aggs)
}

// projectWith evaluates the projection into a row carved from pa.
func (p *compiledSelect) projectWith(pa *projAlloc, ev *execEnv, tup tuple, aggs []Value) ([]Value, error) {
	ev.tup, ev.aggs = tup, aggs
	row := pa.alloc(len(p.proj))
	for i, pe := range p.proj {
		v, err := pe(ev)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func (p *compiledSelect) runPlain() (*Result, error) {
	res := &Result{Columns: p.cols}
	ev := &execEnv{params: p.params}
	if len(p.orderBy) == 0 {
		err := p.src.run(func(batch []tuple) error {
			for _, tup := range batch {
				if p.where != nil {
					ev.tup, ev.aggs = tup, nil
					v, err := p.where(ev)
					if err != nil {
						return err
					}
					if !v.Truthy() {
						continue
					}
				}
				row, err := p.projectInto(ev, tup, nil)
				if err != nil {
					return err
				}
				res.Rows = append(res.Rows, row)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		var items []sortItem
		err := p.src.run(func(batch []tuple) error {
			for _, tup := range batch {
				if p.where != nil {
					ev.tup, ev.aggs = tup, nil
					v, err := p.where(ev)
					if err != nil {
						return err
					}
					if !v.Truthy() {
						continue
					}
				}
				items = append(items, sortItem{tup: tup})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := p.sortItems(items); err != nil {
			return nil, err
		}
		for i := range items {
			row, err := p.projectInto(ev, items[i].tup, nil)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if p.s.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	res.Rows = applyLimit(res.Rows, p.s.Limit, p.s.Offset)
	return res, nil
}

// cgroup is one hash-aggregation group: the first tuple seen (projection of
// non-aggregate expressions uses it, as in the interpreter) plus one
// accumulator per deduplicated aggregate call.
type cgroup struct {
	first tuple
	accs  []vAgg
}

func (p *compiledSelect) newGroup(first tuple) *cgroup {
	gr := &cgroup{first: first, accs: make([]vAgg, len(p.aggs))}
	for i, spec := range p.aggs {
		gr.accs[i] = spec.newAcc()
	}
	return gr
}

func (p *compiledSelect) runGrouped() (*Result, error) {
	groups := make(map[string]*cgroup)
	var order []*cgroup
	ev := &execEnv{params: p.params}
	var keyBuf []byte
	// step folds one tuple into its group. volatile marks a tuple whose
	// backing slice is reused by the caller; the group's retained first
	// tuple is copied then.
	step := func(tup tuple, volatile bool) error {
		ev.tup, ev.aggs = tup, nil
		if p.where != nil {
			v, err := p.where(ev)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		keyBuf = keyBuf[:0]
		for gi, gk := range p.groupKeys {
			var v Value
			if s := p.groupKeySlots[gi]; s.ok {
				v = tup[s.ti][s.ci]
			} else {
				var err error
				v, err = gk(ev)
				if err != nil {
					return err
				}
			}
			keyBuf = v.appendKey(keyBuf)
			keyBuf = append(keyBuf, 0x1f)
		}
		gr := groups[string(keyBuf)]
		if gr == nil {
			first := tup
			if volatile {
				first = append(tuple(nil), tup...)
			}
			gr = p.newGroup(first)
			groups[string(keyBuf)] = gr
			order = append(order, gr)
		}
		for _, acc := range gr.accs {
			if err := acc.step(ev); err != nil {
				return err
			}
		}
		return nil
	}

	var err error
	if ss, ok := p.src.(*scanSource); ok {
		// Single-table grouping: feed the scan straight into the hash
		// aggregation through one reused tuple, skipping the batcher.
		scratch := make(tuple, ss.ntabs)
		ss.acc.iterate(ss.t, func(_ int, row []Value) bool {
			scratch[ss.ti] = row
			if e := step(scratch, true); e != nil {
				err = e
				return false
			}
			return true
		})
	} else {
		err = p.src.run(func(batch []tuple) error {
			for _, tup := range batch {
				if e := step(tup, false); e != nil {
					return e
				}
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	return p.finishGrouped(order)
}

// finishGrouped runs the serial, order-sensitive tail of hash aggregation
// over groups in first-seen order: finalize accumulators, HAVING, ORDER
// BY, projection, DISTINCT, LIMIT. Shared by the serial fold above and the
// parallel merge (parallel.go).
func (p *compiledSelect) finishGrouped(order []*cgroup) (*Result, error) {
	ev := &execEnv{params: p.params}

	// Aggregates over zero rows with no GROUP BY yield one group.
	if len(order) == 0 && len(p.s.GroupBy) == 0 {
		order = append(order, p.newGroup(nil))
	}

	var items []sortItem
	for _, gr := range order {
		aggs := make([]Value, len(gr.accs))
		for i, acc := range gr.accs {
			v, err := acc.final()
			if err != nil {
				return nil, err
			}
			aggs[i] = v
		}
		if p.having != nil {
			ev.tup, ev.aggs = gr.first, aggs
			hv, err := p.having(ev)
			if err != nil {
				return nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		items = append(items, sortItem{tup: gr.first, aggs: aggs})
	}

	if len(p.orderBy) > 0 {
		if err := p.sortItems(items); err != nil {
			return nil, err
		}
	}

	res := &Result{Columns: p.cols}
	for i := range items {
		row, err := p.projectInto(ev, items[i].tup, items[i].aggs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if p.s.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	res.Rows = applyLimit(res.Rows, p.s.Limit, p.s.Offset)
	return res, nil
}

//
// Value-level aggregate accumulators, mirroring the interpreter's aggAcc
// family (select.go) with compiled argument closures.
//

type vAgg interface {
	step(ev *execEnv) error
	final() (Value, error)
}

// readArg fetches a one-argument aggregate's input: a direct column read
// when the argument compiled to a bare column slot, the closure otherwise.
func readArg(ev *execEnv, slot colSlot, arg compiledExpr) (Value, error) {
	if slot.ok {
		return ev.tup[slot.ti][slot.ci], nil
	}
	return arg(ev)
}

type cCountStarAcc struct{ n int64 }

func (a *cCountStarAcc) step(*execEnv) error   { a.n++; return nil }
func (a *cCountStarAcc) final() (Value, error) { return Int(a.n), nil }

type cCountAcc struct {
	arg  compiledExpr
	slot colSlot
	n    int64
}

func (a *cCountAcc) step(ev *execEnv) error {
	v, err := readArg(ev, a.slot, a.arg)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.n++
	}
	return nil
}
func (a *cCountAcc) final() (Value, error) { return Int(a.n), nil }

type cCountDistinctAcc struct {
	arg  compiledExpr
	slot colSlot
	seen map[string]bool
}

func (a *cCountDistinctAcc) step(ev *execEnv) error {
	v, err := readArg(ev, a.slot, a.arg)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.seen[v.Key()] = true
	}
	return nil
}
func (a *cCountDistinctAcc) final() (Value, error) { return Int(int64(len(a.seen))), nil }

type cSumAcc struct {
	arg  compiledExpr
	slot colSlot
	sum  int64
	any  bool
}

func (a *cSumAcc) step(ev *execEnv) error {
	v, err := readArg(ev, a.slot, a.arg)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	n, err := v.AsInt()
	if err != nil {
		return err
	}
	a.sum += n
	a.any = true
	return nil
}
func (a *cSumAcc) final() (Value, error) {
	if !a.any {
		return Null(), nil
	}
	return Int(a.sum), nil
}

type cAvgAcc struct {
	arg  compiledExpr
	slot colSlot
	sum  int64
	n    int64
}

func (a *cAvgAcc) step(ev *execEnv) error {
	v, err := readArg(ev, a.slot, a.arg)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	x, err := v.AsInt()
	if err != nil {
		return err
	}
	a.sum += x
	a.n++
	return nil
}
func (a *cAvgAcc) final() (Value, error) {
	if a.n == 0 {
		return Null(), nil
	}
	return Int(a.sum / a.n), nil
}

// aggCompareError wraps a MIN/MAX running-best comparison failure. The
// message (and so the user-visible error) is exactly the underlying
// Compare error; the distinct type lets the parallel executor recognize
// that the error depends on cross-row state (which value happens to be the
// running best) and rerun the statement serially for the exact serial
// outcome (parallel.go).
type aggCompareError struct{ err error }

func (e *aggCompareError) Error() string { return e.err.Error() }
func (e *aggCompareError) Unwrap() error { return e.err }

type cMinMaxAcc struct {
	arg  compiledExpr
	slot colSlot
	min  bool
	best Value
	any  bool
	// kinds is a bitmask of the non-NULL value kinds folded in (1<<Kind).
	// More than one bit set means the result of — and errors raised by —
	// the running-best comparison depend on fold order, so partials with a
	// multi-kind union cannot be merged (parallel.go falls back to serial).
	kinds uint8
}

func (a *cMinMaxAcc) step(ev *execEnv) error {
	v, err := readArg(ev, a.slot, a.arg)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	a.kinds |= 1 << uint(v.Kind)
	if !a.any {
		a.best = v
		a.any = true
		return nil
	}
	c, err := v.Compare(a.best)
	if err != nil {
		return &aggCompareError{err}
	}
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	return nil
}
func (a *cMinMaxAcc) final() (Value, error) {
	if !a.any {
		return Null(), nil
	}
	return a.best, nil
}

type cUDFAcc struct {
	args  []compiledExpr
	state AggState
}

func (a *cUDFAcc) step(ev *execEnv) error {
	vals := make([]Value, len(a.args))
	for i, arg := range a.args {
		v, err := arg(ev)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	return a.state.Step(vals)
}
func (a *cUDFAcc) final() (Value, error) { return a.state.Final() }

func errMissingParam(idx int) error {
	return fmt.Errorf("sqldb: missing parameter %d", idx+1)
}
