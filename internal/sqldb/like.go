package sqldb

import "strings"

// likeMatch implements SQL LIKE: % matches any sequence, _ matches one
// character. Matching is case-insensitive, following MySQL's default
// collation behaviour the paper's applications rely on.
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	// Iterative matching with backtracking on the last %.
	var si, pi int
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
