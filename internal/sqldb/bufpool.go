// The buffer cache for paged tables: a two-tier page cache under a byte
// budget.
//
//   - L2 is the bulk of the cache: every materialized page is registered in
//     a clock ring and evicted second-chance when the budget is exceeded.
//   - L1 is a small set of "hot" pages pinned against the clock: a page
//     whose referenced counter crosses hotPromoteHits between sweeps is
//     promoted and the sweep skips it, so a tight working set never churns
//     with the scan traffic washing through L2. A sweep that finds nothing
//     evictable demotes the hot set and retries, so L1 can never wedge the
//     cache.
//
// Policy is no-steal: only checkpoints write pages (ckpt_incremental.go),
// so eviction is just dropping the reference to a clean page — the segment
// on disk already holds its exact contents. Dirty (and flushing) pages are
// never evicted; when dirt alone exceeds the budget, the post-commit
// pressure path runs a checkpoint to clean them (see DB.cachePressure).
//
// Locking: pager.mu guards only the clock ring and the hot set. It is
// acquired with db.mu already held (either side), never the reverse, and —
// the invariant cryptdb-vet's lockorder pass checks — it is never held
// across file I/O, let alone an fsync: faults read segments before taking
// it, and eviction does no I/O at all.
package sqldb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// hotPromoteHits is the referenced count that promotes a page into L1: it
// must be re-hit this many times between two clock sweeps.
const hotPromoteHits = 8

// defaultCacheBytes is the paged-mode cache budget when the caller leaves
// DurabilityOptions.CacheBytes zero (64 MiB).
const defaultCacheBytes = 64 << 20

// CacheStats reports buffer-cache activity for a paged database (all zero
// for resident databases).
type CacheStats struct {
	Hits          int64 // page accesses served by a materialized page
	Misses        int64 // page faults (segment reads)
	Evictions     int64 // clean pages dropped by the clock sweep
	ResidentBytes int64 // bytes currently charged against the cache budget
	BudgetBytes   int64 // the configured budget
	ResidentPages int64 // materialized pages
	HotPages      int64 // L1 (clock-pinned) pages
	DirtyPages    int64 // pages modified since the last checkpoint
}

// pageRef is one clock-ring entry.
type pageRef struct {
	t  *Table
	id int
}

// pager is the buffer cache shared by every paged table of one DB.
type pager struct {
	dir    string // the pages/ directory holding segment files
	budget int64
	l1Max  int64

	mu   sync.Mutex // ring + hot set; never held across I/O
	ring []pageRef
	hand int

	resident   atomic.Int64
	pages      atomic.Int64
	hotPages   atomic.Int64
	dirtyPages atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64

	// fileSeq numbers segment files; segFiles maps every file the current
	// manifest references to its size, and diskBytes is their sum. All
	// three are guarded by db.mu's write side (checkpoint install / Open);
	// diskBytes is atomic so Stats can read it under the read side.
	fileSeq   uint64
	segFiles  map[string]int64
	diskBytes atomic.Int64
}

func newPager(dir string, budget int64) *pager {
	if budget <= 0 {
		budget = defaultCacheBytes
	}
	pg := &pager{dir: dir, budget: budget, segFiles: make(map[string]int64)}
	// L1 holds at most ~1/8 of the budget's worth of pages.
	pg.l1Max = budget / 8 / pageOverhead
	if pg.l1Max < 4 {
		pg.l1Max = 4
	}
	return pg
}

func (pg *pager) stats() CacheStats {
	return CacheStats{
		Hits:          pg.hits.Load(),
		Misses:        pg.misses.Load(),
		Evictions:     pg.evictions.Load(),
		ResidentBytes: pg.resident.Load(),
		BudgetBytes:   pg.budget,
		ResidentPages: pg.pages.Load(),
		HotPages:      pg.hotPages.Load(),
		DirtyPages:    pg.dirtyPages.Load(),
	}
}

// admit registers a newly materialized page in the clock ring and charges
// it against the budget. Callers hold db.mu (either side).
func (pg *pager) admit(t *Table, id int, p *rowPage) {
	pg.resident.Add(int64(p.bytes + pageOverhead))
	pg.pages.Add(1)
	pg.mu.Lock()
	pg.ring = append(pg.ring, pageRef{t: t, id: id})
	pg.mu.Unlock()
}

// promote pins a page into L1 if there is room.
func (pg *pager) promote(p *rowPage) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if !p.hot.Load() && pg.hotPages.Load() < pg.l1Max {
		p.hot.Store(true)
		pg.hotPages.Add(1)
	}
}

// forget uncharges one resident page (eviction, drop, or reset).
func (pg *pager) forget(p *rowPage) {
	pg.resident.Add(int64(-(p.bytes + pageOverhead)))
	pg.pages.Add(-1)
	if p.hot.Load() {
		p.hot.Store(false)
		pg.hotPages.Add(-1)
	}
	if p.dirty {
		p.dirty = false
		pg.dirtyPages.Add(-1)
	}
}

// forgetTable uncharges every resident page of a table being dropped or
// swapped out and marks the table so stale ring entries self-prune.
// Callers hold db.mu's write side.
func (pg *pager) forgetTable(t *Table) {
	t.dropped = true
	for i := range t.pages {
		if p := t.pages[i].Load(); p != nil {
			pg.forget(p)
		}
	}
}

// evictToBudget sweeps the clock until resident bytes fit the budget or
// nothing more is evictable (everything left is dirty, flushing, or hot —
// and a starved sweep demotes the hot set before giving up). Callers hold
// db.mu (either side); eviction does no I/O.
func (pg *pager) evictToBudget() { pg.evictToBudgetExcept(nil) }

// evictToBudgetExcept is evictToBudget with one page exempted from the
// sweep: a fault passes the page it is installing, which is still clean and
// unreferenced — evicting it would hand the caller an orphaned page whose
// mutations silently vanish.
func (pg *pager) evictToBudgetExcept(except *rowPage) {
	if pg.resident.Load() <= pg.budget {
		return
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	// Two full revolutions bound the sweep: the first clears referenced
	// bits, the second evicts. A third pass only happens after demotion.
	demoted := false
	progress := 0
	limit := 2*len(pg.ring) + 2
	for pg.resident.Load() > pg.budget && len(pg.ring) > 0 {
		if pg.hand >= len(pg.ring) {
			if progress == 0 {
				if demoted {
					return // only dirty/flushing pages remain
				}
				for _, ref := range pg.ring {
					if p := ref.t.pages[ref.id].Load(); p != nil && p.hot.Load() {
						p.hot.Store(false)
						p.ref.Store(0)
						pg.hotPages.Add(-1)
					}
				}
				demoted = true
				limit = 2*len(pg.ring) + 2
			}
			pg.hand = 0
			progress = 0
		}
		if limit--; limit < 0 {
			return
		}
		ref := pg.ring[pg.hand]
		p := ref.t.pages[ref.id].Load()
		if p == nil || ref.t.dropped {
			pg.removeRingAt(pg.hand)
			progress++
			continue
		}
		if p == except {
			pg.hand++
			continue
		}
		if p.hot.Load() {
			pg.hand++
			continue
		}
		if p.ref.Load() != 0 {
			p.ref.Store(0)
			pg.hand++
			continue
		}
		if p.dirty || p.flushing {
			pg.hand++
			continue
		}
		// Clean, cold, unreferenced: drop it. The CAS can only lose to a
		// concurrent fault re-installing the same id, in which case the
		// ring entry still stands for the new page.
		if ref.t.pages[ref.id].CompareAndSwap(p, nil) {
			pg.forget(p)
			pg.evictions.Add(1)
			pg.removeRingAt(pg.hand)
			progress++
		} else {
			pg.hand++
		}
	}
}

// removeRingAt drops one ring entry, keeping the hand consistent.
func (pg *pager) removeRingAt(i int) {
	pg.ring = append(pg.ring[:i], pg.ring[i+1:]...)
	if pg.hand > i {
		pg.hand--
	}
}

// faultPage materializes an evicted page from its on-disk segment. Callers
// hold db.mu (either side); a read failure panics with *PageFaultError
// (recovered at statement entry — row accessors have no error returns).
func (t *Table) faultPage(id int) *rowPage {
	pg := t.pager
	if pg == nil {
		// Resident mode materializes pages eagerly; a nil entry is a bug.
		panic(fmt.Sprintf("sqldb: nil page %d of resident table %s", id, t.Name))
	}
	pg.misses.Add(1)
	var p *rowPage
	if rec := t.disk[id]; rec.file == "" {
		p = &rowPage{} // never checkpointed with rows: an empty page
	} else {
		loaded, err := loadSegment(filepath.Join(pg.dir, rec.file), t, id)
		if err != nil {
			panic(&PageFaultError{Table: t.Name, Page: id, Err: err})
		}
		p = loaded
	}
	if !t.pages[id].CompareAndSwap(nil, p) {
		return t.pages[id].Load() // lost an install race; use the winner's
	}
	pg.admit(t, id, p)
	pg.evictToBudgetExcept(p)
	return p
}

// cachePressure bounds resident bytes after a commit: evict what is clean;
// if dirt alone still exceeds the budget, checkpoint (cleaning every page)
// and evict again. Runs without db.mu held; the checkpoint is the honest
// backpressure of a write working set larger than the cache.
func (db *DB) cachePressure() {
	pg := db.pager
	if pg == nil || pg.resident.Load() <= pg.budget {
		return
	}
	db.mu.RLock()
	pg.evictToBudget()
	db.mu.RUnlock()
	if pg.resident.Load() > pg.budget {
		if err := db.Checkpoint(); err != nil {
			return // WAL intact; retry on the next commit
		}
		db.mu.RLock()
		pg.evictToBudget()
		db.mu.RUnlock()
	}
}

// CacheStats reports buffer-cache counters (zero for a resident database).
func (db *DB) CacheStats() CacheStats {
	if db.pager == nil {
		return CacheStats{}
	}
	return db.pager.stats()
}

// Paged reports whether this database pages rows to per-page segments.
func (db *DB) Paged() bool { return db.pager != nil }

// DiskSizeBytes reports the database's on-disk footprint: page segments
// plus the live WAL for a paged database; snapshot plus WAL otherwise.
// Zero for an in-memory database.
func (db *DB) DiskSizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	total := atomic.LoadInt64(&db.wal.size)
	if db.pager != nil {
		return total + db.pager.diskBytes.Load()
	}
	if fi, err := os.Stat(filepath.Join(db.dir, snapFileName)); err == nil {
		total += fi.Size()
	}
	return total
}
