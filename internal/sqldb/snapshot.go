// Snapshots and the durable-database lifecycle: Open, Close, Checkpoint.
//
// A snapshot is a self-contained WAL-op stream (create-table, create-index
// and insert records, plus the latest meta blob) that rebuilds the entire
// database, written atomically via a temp file + rename. Its header
// records the WAL sequence number it covers, so recovery is simply:
//
//	load snapshot (if any)            -> state as of seq S
//	replay wal batches with seq > S   -> state as of the last commit
//
// Checkpoint writes a snapshot at the current sequence number and then
// truncates the log. Because batches carry their sequence numbers, a crash
// between those two steps is harmless: replay of the stale log skips every
// batch the new snapshot already covers.
package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fsutil"
)

const (
	snapMagic     = "CDBSNP\x00\x01"
	snapVersion   = 1
	snapHeaderLen = 24 // magic[8] version[4] reserved[4] seq[8]

	walFileName  = "wal.log"
	snapFileName = "snapshot.db"
	lockFileName = "LOCK"

	defaultCheckpointBytes = 4 << 20
)

// DurabilityOptions configures a durable database opened with Open.
type DurabilityOptions struct {
	// NoFsync skips the fsync after each committed WAL batch. Commits
	// then survive process crashes (the OS still holds the pages) but a
	// machine crash can lose the most recent ones; CRC framing keeps the
	// log consistent either way. The zero value — fsync on every commit —
	// is the safe default.
	NoFsync bool

	// CheckpointBytes is the WAL size that triggers an automatic
	// checkpoint (snapshot + log truncation) after a commit. 0 uses the
	// default (4 MiB); a negative value disables automatic checkpoints
	// (Checkpoint can still be called explicitly).
	CheckpointBytes int64

	// NoGroupCommit disables WAL group commit: every committer pays its
	// own write+fsync, serialized, as the seed did. Exists for the
	// groupcommit benchmark ablation; leave it off in production.
	NoGroupCommit bool

	// Paged stores rows in per-page segment files behind a byte-budgeted
	// buffer cache instead of keeping every row resident, so the database
	// can exceed RAM. Checkpoints become incremental: only pages dirtied
	// since the last one are rewritten. Opening an existing directory
	// auto-detects its layout (a MANIFEST wins over snapshot.db), and
	// opening a snapshot-layout directory with Paged set converts it.
	Paged bool

	// CacheBytes is the paged-mode buffer-cache budget in bytes; 0 uses
	// the default (64 MiB). Ignored unless the database is paged.
	CacheBytes int64
}

// WALStats reports durability-subsystem activity, for benchmarks and the
// operations figure.
type WALStats struct {
	Batches     int64 // committed batches appended
	Bytes       int64 // framed bytes appended
	Syncs       int64 // fsyncs issued
	Checkpoints int64 // snapshots written
}

// WALStats returns a snapshot of the durability counters (zero for a pure
// in-memory database).
func (db *DB) WALStats() WALStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return WALStats{}
	}
	return WALStats{
		Batches:     atomic.LoadInt64(&db.wal.batches),
		Bytes:       atomic.LoadInt64(&db.wal.bytes),
		Syncs:       atomic.LoadInt64(&db.wal.syncs),
		Checkpoints: db.checkpoints,
	}
}

// Open creates or reopens a durable database rooted at dir. It loads the
// snapshot (if one exists), replays committed WAL batches past it — cutting
// off any torn tail left by a crash — and attaches a write-ahead log so
// every subsequent committed write is durable. The directory is created if
// missing and locked (flock) for the lifetime of the database: a second
// Open of the same directory fails rather than letting two writers
// interleave frames in one log. The returned database must be Closed to
// release the log file and the lock. The kernel drops the lock
// automatically when a crashed process dies, so recovery never needs
// manual lock cleanup.
func Open(dir string, opts DurabilityOptions) (*DB, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("sqldb: creating data dir: %w", err)
	}
	lock, err := acquireDirLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.release()
		}
	}()
	db := New()
	db.dir = dir
	db.dopts = opts
	db.lock = lock

	// Layout detection: a MANIFEST marks the paged layout regardless of
	// opts.Paged, so directories written by a paged instance reopen
	// correctly even if the caller forgets the flag.
	manPath := filepath.Join(dir, manifestName)
	_, manErr := os.Stat(manPath)
	hasManifest := manErr == nil
	if opts.Paged || hasManifest {
		pagesDir := filepath.Join(dir, pagesDirName)
		if err := os.MkdirAll(pagesDir, 0o700); err != nil {
			return nil, fmt.Errorf("sqldb: creating pages dir: %w", err)
		}
		db.pager = newPager(pagesDir, opts.CacheBytes)
	}

	var snapSeq uint64
	if hasManifest {
		snapSeq, err = db.loadPaged(manPath)
	} else {
		// Resident snapshot, or an empty directory. With Paged set this is
		// a layout conversion: the snapshot loads with every page dirty and
		// the checkpoint below writes it all out as segments.
		snapSeq, err = db.loadSnapshot(filepath.Join(dir, snapFileName))
	}
	if err != nil {
		return nil, err
	}
	db.walSeq = snapSeq
	db.snapSeq = snapSeq

	walPath := filepath.Join(dir, walFileName)
	if _, err := os.Stat(walPath); err == nil {
		batches, goodOffset, err := readWAL(walPath)
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			if b.seq <= snapSeq {
				continue // already in the snapshot
			}
			for _, op := range b.ops {
				if err := db.applyOp(op); err != nil {
					return nil, fmt.Errorf("sqldb: wal replay (batch %d): %w", b.seq, err)
				}
			}
			if b.seq > db.walSeq {
				db.walSeq = b.seq
			}
		}
		// Cut the torn tail and reopen for append.
		f, err := os.OpenFile(walPath, os.O_RDWR, 0o600)
		if err != nil {
			return nil, fmt.Errorf("sqldb: reopening wal: %w", err)
		}
		if err := f.Truncate(goodOffset); err != nil {
			f.Close()
			return nil, fmt.Errorf("sqldb: truncating torn wal tail: %w", err)
		}
		if _, err := f.Seek(goodOffset, 0); err != nil {
			f.Close()
			return nil, err
		}
		db.wal = newWALWriter(f, walPath, goodOffset, !opts.NoFsync, opts.NoGroupCommit)
	} else {
		w, err := createWAL(walPath, !opts.NoFsync, opts.NoGroupCommit)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	if db.pager != nil && !hasManifest {
		// Convert the loaded state to the paged layout now, so the manifest
		// exists from the first moment and the old snapshot can be retired.
		if err := db.checkpointPagedLocked(); err != nil {
			return nil, err
		}
		if err := os.Remove(filepath.Join(dir, snapFileName)); err == nil && !opts.NoFsync {
			if err := fsutil.SyncDir(dir); err != nil {
				return nil, err
			}
		}
		// The conversion loaded everything resident; settle to the budget.
		db.pager.evictToBudget()
	}
	db.startCheckpointLoop()
	ok = true
	return db, nil
}

// Close flushes and closes the write-ahead log and releases the data
// directory lock. The database must not be written afterwards: further
// write statements return an error. Close is a no-op on an in-memory
// database.
func (db *DB) Close() error {
	// Stop the background checkpointer first, before taking db.mu: an
	// in-flight checkpoint holds (or is about to take) the lock, and
	// stopping waits for it to finish.
	db.stopCheckpointLoop()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	// Shutdown quiesce: db.mu is held across the WAL's final flush+fsync on
	// purpose — no statement may slip in between the last flushed batch and
	// the writer tearing down.
	//cryptdb:vet-ok lockorder: Close quiesces the database; holding db.mu across the final fsync is the point
	err := db.wal.close()
	if db.lock != nil {
		db.lock.release()
		db.lock = nil
	}
	return err
}

// dirLock is an advisory exclusive lock (flock) on a data directory.
type dirLock struct{ f *os.File }

func acquireDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("sqldb: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("sqldb: data dir is locked by another instance (%s): %w", path, err)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() {
	syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN) //nolint:errcheck // closing drops it regardless
	//cryptdb:vet-ok durabilityerr: lock file carries no data; the kernel drops the flock on close either way
	l.f.Close()
}

// Checkpoint writes a snapshot of the current state and truncates the WAL,
// bounding recovery time and disk usage. Open transactions do not block it:
// their writes live in private buffers, so the shared tables always hold
// exactly the committed state, and a commit racing the checkpoint is
// ordered by the database lock — its batch carries a sequence number past
// the snapshot's and replays on top. A no-op on an in-memory database.
func (db *DB) Checkpoint() error {
	if db.pager != nil {
		return db.checkpointPaged()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	//cryptdb:vet-ok lockorder: a checkpoint snapshots a frozen state; db.mu must span snapshot write + WAL reset
	return db.checkpointLocked()
}

// checkpointLocked snapshots and truncates under an exclusive db.mu.
func (db *DB) checkpointLocked() error {
	start := time.Now()
	if err := db.writeSnapshot(); err != nil {
		return err
	}
	if err := db.wal.reset(); err != nil {
		return err
	}
	db.snapSeq = db.walSeq
	db.checkpoints++
	atomic.AddInt64(&db.ckptPauseNanos, int64(time.Since(start)))
	return nil
}

// maybeAutoCheckpoint kicks the background checkpointer when the WAL has
// outgrown the configured threshold. Called after a commit; the cheap size
// probe is the only work left on the commit path — the snapshot or segment
// writing happens on the checkpoint goroutine, so no committer ever pays
// for it in-line.
func (db *DB) maybeAutoCheckpoint() {
	if db.wal == nil || db.dopts.CheckpointBytes < 0 {
		return
	}
	limit := db.dopts.CheckpointBytes
	if limit == 0 {
		limit = defaultCheckpointBytes
	}
	if atomic.LoadInt64(&db.wal.size) < limit {
		return
	}
	select {
	case db.ckptKick <- struct{}{}:
	default: // one is already pending
	}
}

// snapshotOps serializes the whole database — schema, indexes, rows (with
// their slots), and the committed meta blob — as one self-contained WAL-op
// stream, in a deterministic order. Shared by snapshot writing, snapshot
// shipping to a catching-up follower (TapWithSnapshot), and the state
// digest replication tests compare. Callers hold db.mu (either side).
func (db *DB) snapshotOps() []byte {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)

	var ops []byte
	for _, name := range names {
		t := db.tables[name]
		ops = appendTableSchemaOps(ops, name, t)
		// Rows keep their slots: WAL records appended after this snapshot
		// address rows by slot, so the snapshot must preserve them.
		t.scan(func(slot int, row []Value) bool {
			ops = appendInsertOp(ops, name, slot, row)
			return true
		})
	}
	if db.meta != nil {
		ops = appendMetaOp(ops, db.meta)
	}
	return ops
}

// appendTableSchemaOps emits the ops that recreate one table's schema and
// indexes (no rows), in a deterministic order.
func appendTableSchemaOps(ops []byte, name string, t *Table) []byte {
	cols := make([]walColDef, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = walColDef{name: c.Name, typ: c.Type, primary: c.Primary}
	}
	ops = appendCreateTableOp(ops, name, cols)
	// Indexes: primaries were folded into plain unique hash indexes
	// at creation, so re-emitting explicit index ops reproduces them.
	idxCols := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		idxCols = append(idxCols, c)
	}
	sort.Strings(idxCols)
	for _, c := range idxCols {
		ops = appendCreateIndexOp(ops, name, c, t.indexes[c].unique, false)
	}
	ordCols := make([]string, 0, len(t.ordIndexes))
	for c := range t.ordIndexes {
		ordCols = append(ordCols, c)
	}
	sort.Strings(ordCols)
	for _, c := range ordCols {
		ops = appendCreateIndexOp(ops, name, c, false, true)
	}
	return ops
}

// schemaOps serializes every table's schema plus the committed meta blob —
// the row-free counterpart of snapshotOps, embedded in the paged layout's
// manifest (rows live in page segments). Callers hold db.mu (either side).
func (db *DB) schemaOps() []byte {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var ops []byte
	for _, name := range names {
		ops = appendTableSchemaOps(ops, name, db.tables[name])
	}
	if db.meta != nil {
		ops = appendMetaOp(ops, db.meta)
	}
	return ops
}

// writeSnapshot serializes the whole database to <dir>/snapshot.db
// atomically (temp file + rename + directory sync).
func (db *DB) writeSnapshot() error {
	ops := db.snapshotOps()

	payload := make([]byte, 8+len(ops))
	binary.BigEndian.PutUint64(payload, db.walSeq)
	copy(payload[8:], ops)

	buf := make([]byte, snapHeaderLen, snapHeaderLen+frameHdrLen+len(payload))
	copy(buf, snapMagic)
	binary.BigEndian.PutUint32(buf[8:], snapVersion)
	binary.BigEndian.PutUint64(buf[16:], db.walSeq)
	var frame [frameHdrLen]byte
	binary.BigEndian.PutUint32(frame[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, frame[:]...)
	buf = append(buf, payload...)

	final := filepath.Join(db.dir, snapFileName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("sqldb: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sqldb: snapshot rename: %w", err)
	}
	atomic.StoreInt64(&db.lastCkptBytes, int64(len(buf)))
	// The rename is only durable once the directory entry is synced; a
	// failure here is a real durability error, not a best-effort detail —
	// the previous snapshot may be gone while the new name is not yet
	// persistent.
	return fsutil.SyncDir(db.dir)
}

// loadSnapshot rebuilds state from a snapshot file, returning the WAL
// sequence number it covers (0 when no snapshot exists). Unlike a torn WAL
// tail, a damaged snapshot is fatal: it is written atomically, so damage
// means real corruption, and silently starting empty would discard data.
func (db *DB) loadSnapshot(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(data) < snapHeaderLen+frameHdrLen || string(data[:8]) != snapMagic {
		return 0, fmt.Errorf("sqldb: %s is not a snapshot file", path)
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != snapVersion {
		return 0, fmt.Errorf("sqldb: snapshot version %d not supported", v)
	}
	seq := binary.BigEndian.Uint64(data[16:24])
	rest := data[snapHeaderLen:]
	plen := binary.BigEndian.Uint32(rest)
	if int(plen) > len(rest)-frameHdrLen {
		return 0, fmt.Errorf("sqldb: snapshot %s is truncated", path)
	}
	payload := rest[frameHdrLen : frameHdrLen+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:]) {
		return 0, fmt.Errorf("sqldb: snapshot %s is corrupt (bad checksum)", path)
	}
	d := &walDecoder{buf: payload[8:]}
	for !d.done() {
		op, err := d.op()
		if err != nil {
			return 0, fmt.Errorf("sqldb: snapshot decode: %w", err)
		}
		if err := db.applyOp(op); err != nil {
			return 0, fmt.Errorf("sqldb: snapshot load: %w", err)
		}
	}
	return seq, nil
}
