package sqldb

import (
	"fmt"

	"repro/internal/sqlparser"
)

// Column describes one table column.
type Column struct {
	Name string
	Type sqlparser.ColType
}

// Table is the in-memory storage for one table: a row store plus hash
// indexes. Rows are append-only slots; deleted rows become nil tombstones
// and slots are reused via a free list.
type Table struct {
	Name    string
	Cols    []Column
	colIdx  map[string]int
	rows    [][]Value
	free    []int
	indexes map[string]*hashIndex // column name -> index
	live    int
}

type hashIndex struct {
	column string
	pos    int
	unique bool
	m      map[string][]int // value key -> row slots
}

func newTable(name string, cols []Column) *Table {
	t := &Table{
		Name:    name,
		Cols:    cols,
		colIdx:  make(map[string]int, len(cols)),
		indexes: make(map[string]*hashIndex),
	}
	for i, c := range cols {
		t.colIdx[c.Name] = i
	}
	return t
}

// ColumnIndex returns the position of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// RowCount reports the number of live rows.
func (t *Table) RowCount() int { return t.live }

// addIndex builds a hash index over an existing column.
func (t *Table) addIndex(column string, unique bool) error {
	pos := t.ColumnIndex(column)
	if pos < 0 {
		return fmt.Errorf("sqldb: no column %s.%s to index", t.Name, column)
	}
	if _, ok := t.indexes[column]; ok {
		return nil // idempotent
	}
	idx := &hashIndex{column: column, pos: pos, unique: unique, m: make(map[string][]int)}
	for slot, row := range t.rows {
		if row == nil {
			continue
		}
		key := row[pos].Key()
		if unique && len(idx.m[key]) > 0 {
			return fmt.Errorf("sqldb: duplicate value for unique index on %s.%s", t.Name, column)
		}
		idx.m[key] = append(idx.m[key], slot)
	}
	t.indexes[column] = idx
	return nil
}

// insertRow places a row into a slot and maintains indexes, returning the
// slot number.
func (t *Table) insertRow(row []Value) (int, error) {
	for _, idx := range t.indexes {
		if idx.unique && len(idx.m[row[idx.pos].Key()]) > 0 {
			return 0, fmt.Errorf("sqldb: unique index violation on %s.%s", t.Name, idx.column)
		}
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = row
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, row)
	}
	for _, idx := range t.indexes {
		key := row[idx.pos].Key()
		idx.m[key] = append(idx.m[key], slot)
	}
	t.live++
	return slot, nil
}

// deleteRow removes the row in slot, maintaining indexes.
func (t *Table) deleteRow(slot int) []Value {
	row := t.rows[slot]
	if row == nil {
		return nil
	}
	for _, idx := range t.indexes {
		removeSlot(idx, row[idx.pos].Key(), slot)
	}
	t.rows[slot] = nil
	t.free = append(t.free, slot)
	t.live--
	return row
}

// updateCell replaces one cell, maintaining any index on that column.
func (t *Table) updateCell(slot, pos int, v Value) {
	row := t.rows[slot]
	old := row[pos]
	for _, idx := range t.indexes {
		if idx.pos != pos {
			continue
		}
		removeSlot(idx, old.Key(), slot)
		key := v.Key()
		idx.m[key] = append(idx.m[key], slot)
	}
	row[pos] = v
}

func removeSlot(idx *hashIndex, key string, slot int) {
	slots := idx.m[key]
	for i, s := range slots {
		if s == slot {
			slots[i] = slots[len(slots)-1]
			idx.m[key] = slots[:len(slots)-1]
			break
		}
	}
	if len(idx.m[key]) == 0 {
		delete(idx.m, key)
	}
}

// lookup returns the row slots whose indexed column equals v, and whether an
// index existed for the column.
func (t *Table) lookup(column string, v Value) ([]int, bool) {
	idx, ok := t.indexes[column]
	if !ok {
		return nil, false
	}
	return idx.m[v.Key()], true
}

// scan invokes fn for every live row until fn returns false.
func (t *Table) scan(fn func(slot int, row []Value) bool) {
	for slot, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(slot, row) {
			return
		}
	}
}

// SizeBytes approximates the table's storage footprint (live data only).
func (t *Table) SizeBytes() int {
	total := 0
	t.scan(func(_ int, row []Value) bool {
		for _, v := range row {
			total += v.SizeBytes()
		}
		return true
	})
	return total
}
