package sqldb

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"repro/internal/sqlparser"
)

// Column describes one table column. Primary records a PRIMARY KEY
// declaration from CREATE TABLE; it survives snapshots and WAL replay so
// storage layers above (the sharded store routes rows by the first primary
// column) can recover their placement rule from the schema alone.
type Column struct {
	Name    string
	Type    sqlparser.ColType
	Primary bool
}

// Table is the storage for one table: a page-grouped row store (see
// page.go) plus hash (equality) and ordered (range) indexes. Rows are
// append-only slots; deleted rows become nil tombstones and slots are
// reused via a free list. Indexes are always fully resident and address
// rows by slot; only row payloads page to disk.
type Table struct {
	Name       string
	Cols       []Column
	colIdx     map[string]int
	pages      []atomic.Pointer[rowPage] // slot s lives in pages[s>>pageShift]
	nslots     int                       // slot-space size (live rows have slot < nslots)
	free       []int
	indexes    map[string]*hashIndex // column name -> equality index
	ordIndexes map[string]*ordIndex  // column name -> ordered index
	live       int
	dataBytes  int // live row payload bytes, independent of residency

	// Paged-mode state (see bufpool.go / ckpt_incremental.go): pager is the
	// shared buffer cache (nil keeps every page resident), disk locates each
	// page's current on-disk segment, and dropped tells the cache ring its
	// entries for this table are stale.
	pager   *pager
	disk    []pageDiskRec
	dropped bool

	// lockSeed spreads this table's slots across the database's striped
	// slot-lock table (see locktable.go). Fixed at creation.
	lockSeed uint64
}

// IndexInfo describes one index on a table, for introspection: storage
// layers above sqldb (the sharded store reconciles schemas across shards
// after a crash) rebuild DDL from it.
type IndexInfo struct {
	Column  string
	Unique  bool
	Ordered bool // true for the ordered (range) index, false for hash
}

// Indexes lists the table's indexes in a deterministic order (hash indexes
// first, then ordered, each sorted by column).
func (t *Table) Indexes() []IndexInfo {
	var out []IndexInfo
	cols := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		out = append(out, IndexInfo{Column: c, Unique: t.indexes[c].unique})
	}
	cols = cols[:0]
	for c := range t.ordIndexes {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		out = append(out, IndexInfo{Column: c, Ordered: true})
	}
	return out
}

type hashIndex struct {
	column string
	pos    int
	unique bool
	m      map[string][]int // value key -> row slots
	// kindCount tracks entries per Value kind (the Key encoding's leading
	// tag byte). Like the ordered index, an equality lookup by key is only
	// trusted when the stored kinds cannot coerce against the probe value
	// in ways a key comparison misses.
	kindCount [4]int
}

// addSlot appends a slot under key, maintaining the kind tally.
func (idx *hashIndex) addSlot(key string, slot int) {
	idx.m[key] = append(idx.m[key], slot)
	if k := int(key[0]); k < len(idx.kindCount) {
		idx.kindCount[k]++
	}
}

// removeSlot drops one slot under key, maintaining the kind tally; a no-op
// when the slot is not indexed under the key.
func (idx *hashIndex) removeSlot(key string, slot int) {
	slots := idx.m[key]
	for i, s := range slots {
		if s == slot {
			slots[i] = slots[len(slots)-1]
			idx.m[key] = slots[:len(slots)-1]
			if k := int(key[0]); k < len(idx.kindCount) {
				idx.kindCount[k]--
			}
			break
		}
	}
	if len(idx.m[key]) == 0 {
		delete(idx.m, key)
	}
}

// soleKindOf reports the single non-NULL kind in a tally, shared by the
// hash and ordered indexes.
func soleKindOf(kindCount [4]int) (Kind, bool) {
	kind, kinds := KindNull, 0
	for k, c := range kindCount {
		if Kind(k) == KindNull || c == 0 {
			continue
		}
		kinds++
		kind = Kind(k)
	}
	return kind, kinds <= 1
}

func (idx *hashIndex) soleKind() (Kind, bool) { return soleKindOf(idx.kindCount) }

// eqSlots resolves an equality bound through the index, or reports ok=false
// when stored kinds could coerce against the bound (e.g. a text '5' probing
// an integer column), in which case the caller must fall back to a scan.
func (idx *hashIndex) eqSlots(v Value) ([]int, bool) {
	kind, homogeneous := idx.soleKind()
	if !homogeneous {
		return nil, false
	}
	if kind == KindNull {
		return nil, true // empty or all-NULL: equality matches nothing
	}
	cv, ok := coerceOrdBound(v, kind)
	if !ok {
		// An incoercible bound of a different kind: the per-row coercing
		// comparison could still match (or error); only a scan preserves
		// those semantics.
		return nil, false
	}
	return idx.m[cv.Key()], true
}

func newTable(name string, cols []Column) *Table {
	h := fnv.New64a()
	h.Write([]byte(name))
	t := &Table{
		Name:       name,
		Cols:       cols,
		colIdx:     make(map[string]int, len(cols)),
		indexes:    make(map[string]*hashIndex),
		ordIndexes: make(map[string]*ordIndex),
		lockSeed:   h.Sum64(),
	}
	for i, c := range cols {
		t.colIdx[c.Name] = i
	}
	return t
}

// ColumnIndex returns the position of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// RowCount reports the number of live rows.
func (t *Table) RowCount() int { return t.live }

// addIndex builds a hash index over an existing column.
func (t *Table) addIndex(column string, unique bool) error {
	if _, ok := t.indexes[column]; ok {
		return nil // idempotent
	}
	idx, err := t.buildHashIndex(column, unique)
	if err != nil {
		return err
	}
	t.indexes[column] = idx
	return nil
}

// buildHashIndex scans the table into a new, uninstalled hash index. The
// build phase is side-effect free on the table, so several indexes can
// build concurrently (BuildIndexesParallel) before being installed under
// the write lock.
func (t *Table) buildHashIndex(column string, unique bool) (*hashIndex, error) {
	pos := t.ColumnIndex(column)
	if pos < 0 {
		return nil, fmt.Errorf("sqldb: no column %s.%s to index", t.Name, column)
	}
	idx := &hashIndex{column: column, pos: pos, unique: unique, m: make(map[string][]int)}
	var dup error
	t.scan(func(slot int, row []Value) bool {
		key := row[pos].Key()
		if unique && len(idx.m[key]) > 0 {
			dup = fmt.Errorf("sqldb: duplicate value for unique index on %s.%s", t.Name, column)
			return false
		}
		idx.addSlot(key, slot)
		return true
	})
	if dup != nil {
		return nil, dup
	}
	return idx, nil
}

// addOrdIndex builds an ordered (range) index over an existing column.
func (t *Table) addOrdIndex(column string) error {
	if _, ok := t.ordIndexes[column]; ok {
		return nil // idempotent
	}
	ix, err := t.buildOrdIndex(column)
	if err != nil {
		return err
	}
	t.ordIndexes[column] = ix
	return nil
}

// buildOrdIndex is the side-effect-free build phase of addOrdIndex.
func (t *Table) buildOrdIndex(column string) (*ordIndex, error) {
	pos := t.ColumnIndex(column)
	if pos < 0 {
		return nil, fmt.Errorf("sqldb: no column %s.%s to index", t.Name, column)
	}
	ix := newOrdIndex(column, pos)
	t.scan(func(slot int, row []Value) bool {
		ix.insert(row[pos], slot)
		return true
	})
	return ix, nil
}

// ordIndex returns the ordered index on column, or nil.
func (t *Table) ordIndex(column string) *ordIndex { return t.ordIndexes[column] }

// insertRow places a row into a slot and maintains indexes, returning the
// slot number.
func (t *Table) insertRow(row []Value) (int, error) {
	for _, idx := range t.indexes {
		if idx.unique && len(idx.m[row[idx.pos].Key()]) > 0 {
			return 0, fmt.Errorf("sqldb: unique index violation on %s.%s", t.Name, idx.column)
		}
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = t.nslots
	}
	t.putRow(slot, row)
	for _, idx := range t.indexes {
		idx.addSlot(row[idx.pos].Key(), slot)
	}
	for _, ix := range t.ordIndexes {
		ix.insert(row[ix.pos], slot)
	}
	t.live++
	return slot, nil
}

// placeRow inserts a row into a specific slot, used by WAL replay and
// snapshot loading: redo records address rows by the slot the original
// execution assigned, so recovery must reproduce the layout exactly.
// Constraint checks are skipped (the original execution validated them).
func (t *Table) placeRow(slot int, row []Value) error {
	for s := t.nslots; s < slot; s++ {
		t.free = append(t.free, s) // interior gap: reusable
	}
	if slot < t.nslots && t.rowAt(slot) != nil {
		return fmt.Errorf("sqldb: replay places row into occupied slot %d of %s", slot, t.Name)
	}
	for i, s := range t.free {
		if s == slot {
			t.free[i] = t.free[len(t.free)-1]
			t.free = t.free[:len(t.free)-1]
			break
		}
	}
	t.putRow(slot, row)
	for _, idx := range t.indexes {
		idx.addSlot(row[idx.pos].Key(), slot)
	}
	for _, ix := range t.ordIndexes {
		ix.insert(row[ix.pos], slot)
	}
	t.live++
	return nil
}

// deleteRow removes the row in slot, maintaining indexes.
func (t *Table) deleteRow(slot int) []Value {
	if slot >= t.nslots {
		return nil
	}
	p := t.page(slot >> pageShift)
	row := p.rows[slot&pageMask]
	if row == nil {
		return nil
	}
	for _, idx := range t.indexes {
		idx.removeSlot(row[idx.pos].Key(), slot)
	}
	for _, ix := range t.ordIndexes {
		ix.remove(row[ix.pos], slot)
	}
	t.clearRow(p, slot)
	t.free = append(t.free, slot)
	t.live--
	return row
}

// updateCell replaces one cell, maintaining indexes on that column. It
// rejects values that would duplicate another row's under a UNIQUE index,
// mirroring insertRow (an UPDATE must not silently break uniqueness).
func (t *Table) updateCell(slot, pos int, v Value) error {
	if err := t.checkUpdateUnique(slot, pos, v); err != nil {
		return err
	}
	t.updateCellUnchecked(slot, pos, v)
	return nil
}

// checkUpdateUnique reports whether writing v into (slot, pos) would
// violate a UNIQUE index on that column.
func (t *Table) checkUpdateUnique(slot, pos int, v Value) error {
	for _, idx := range t.indexes {
		if idx.pos != pos || !idx.unique {
			continue
		}
		for _, s := range idx.m[v.Key()] {
			if s != slot {
				return fmt.Errorf("sqldb: unique index violation on %s.%s", t.Name, idx.column)
			}
		}
	}
	return nil
}

// updateCellUnchecked replaces one cell without uniqueness checks; the
// rollback path uses it directly because undo records restore values that
// were valid when logged.
func (t *Table) updateCellUnchecked(slot, pos int, v Value) {
	p := t.page(slot >> pageShift)
	row := p.rows[slot&pageMask]
	old := row[pos]
	for _, idx := range t.indexes {
		if idx.pos != pos {
			continue
		}
		idx.removeSlot(old.Key(), slot)
		idx.addSlot(v.Key(), slot)
	}
	for _, ix := range t.ordIndexes {
		if ix.pos != pos {
			continue
		}
		ix.remove(old, slot)
		ix.insert(v, slot)
	}
	row[pos] = v
	delta := v.SizeBytes() - old.SizeBytes()
	t.dataBytes += delta
	p.bytes += delta
	t.markDirty(p)
	if t.pager != nil {
		t.pager.resident.Add(int64(delta))
	}
}

// indexByPos returns the hash index over the column at pos, if any. The
// compiled hash join uses it as a prebuilt build table.
func (t *Table) indexByPos(pos int) *hashIndex {
	for _, idx := range t.indexes {
		if idx.pos == pos {
			return idx
		}
	}
	return nil
}

// lookup returns the row slots whose indexed column equals v. ok=false when
// no index exists or when the stored kinds could coerce against v in ways a
// key lookup cannot see — the caller must then fall back to a scan, which
// preserves SQL's coercing comparison semantics.
func (t *Table) lookup(column string, v Value) ([]int, bool) {
	idx, ok := t.indexes[column]
	if !ok {
		return nil, false
	}
	if v.IsNull() {
		return nil, true // equality with NULL matches nothing
	}
	return idx.eqSlots(v)
}

// scan invokes fn for every live row until fn returns false, faulting
// evicted pages in as it goes.
func (t *Table) scan(fn func(slot int, row []Value) bool) {
	for id := 0; id<<pageShift < t.nslots; id++ {
		p := t.page(id)
		base := id << pageShift
		n := t.nslots - base
		if n > pageSlots {
			n = pageSlots
		}
		for i := 0; i < n; i++ {
			if row := p.rows[i]; row != nil {
				if !fn(base+i, row) {
					return
				}
			}
		}
	}
}

// SizeBytes reports the table's live data size (payload bytes of live
// rows), independent of how much of it is resident.
func (t *Table) SizeBytes() int { return t.dataBytes }
