package sqldb

import "repro/internal/sqlparser"

// EvalExpr evaluates an expression outside any query, resolving column
// references through lookup. The CryptDB proxy uses it for in-proxy
// processing (§3.5.1): evaluating projections, sorts and update expressions
// over values it has already decrypted. Aggregates and UDFs are not
// available in this mode.
func EvalExpr(e sqlparser.Expr, lookup func(table, col string) (Value, error), params []Value) (Value, error) {
	ctx := &evalCtx{lookup: lookup, params: params}
	return ctx.eval(e)
}

// EvalConst evaluates a constant expression (literals, parameters,
// arithmetic over them). It fails on any column reference.
func EvalConst(e sqlparser.Expr, params []Value) (Value, error) {
	return EvalExpr(e, func(table, col string) (Value, error) {
		name := col
		if table != "" {
			name = table + "." + col
		}
		return Value{}, &NotConstError{Ref: name}
	}, params)
}

// NotConstError reports that an expression expected to be constant
// references a column.
type NotConstError struct{ Ref string }

// Error implements the error interface.
func (e *NotConstError) Error() string {
	return "sqldb: expression references column " + e.Ref
}
