package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// pagedTestOpts returns durability options that force the buffer cache to
// thrash: the budget is a handful of pages, so any workload touching more
// rows than that evicts and faults constantly.
func pagedTestOpts(cacheBytes int64) DurabilityOptions {
	return DurabilityOptions{Paged: true, CacheBytes: cacheBytes, CheckpointBytes: -1}
}

// TestPagedRecoveryBasics is TestDurableRecoveryBasics for the paged
// layout: the whole redo surface plus an incremental checkpoint in the
// middle, crashed and recovered from MANIFEST + segments + WAL tail.
func TestPagedRecoveryBasics(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, pagedTestOpts(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Paged() {
		t.Fatal("Paged:true did not produce a paged database")
	}
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score INT)")
	mustExec(t, db, "CREATE INDEX t_score ON t (score)")
	mustExec(t, db, "INSERT INTO t (id, name, score) VALUES (1, 'alice', 10), (2, 'bob', 20), (3, 'carol', 30)")
	mustExec(t, db, "UPDATE t SET score = 25 WHERE id = 2")
	mustExec(t, db, "DELETE FROM t WHERE id = 1")

	// Checkpoint mid-history so recovery exercises manifest + WAL replay,
	// not just one of them.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("checkpoint left no MANIFEST: %v", err)
	}

	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t (id, name, score) VALUES (4, 'dave', 40)")
	mustExec(t, db, "COMMIT")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t (id, name, score) VALUES (5, 'eve', 50)")
	mustExec(t, db, "DELETE FROM t WHERE id = 4")
	mustExec(t, db, "ROLLBACK")
	mustExec(t, db, "CREATE TABLE gone (x INT)")
	mustExec(t, db, "DROP TABLE gone")

	want := dump(t, db)
	db.Close()

	// Reopen WITHOUT the Paged flag: the manifest must win layout
	// detection on its own.
	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Paged() {
		t.Fatal("manifest layout not auto-detected on reopen")
	}
	if got := dump(t, db2); got != want {
		t.Fatalf("recovered state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	res := mustExec(t, db2, "SELECT name FROM t WHERE score > 20 ORDER BY score")
	if len(res.Rows) != 3 {
		t.Fatalf("range after recovery: got %d rows, want 3", len(res.Rows))
	}
	if _, err := db2.ExecSQL("INSERT INTO t (id, name, score) VALUES (2, 'dup', 0)"); err == nil {
		t.Fatal("recovered PRIMARY KEY index did not reject a duplicate")
	}
}

// TestPagedChurnProperty drives the same random insert/update/delete/
// range-scan/transaction mix against a paged database with a cache budget
// smaller than one page (so every statement faults and evicts) and a
// resident durable oracle, crashing both at random points and requiring
// row-by-row and StateDigest equality throughout.
//
// Digest equality across a crash needs both sides to rebuild from the same
// checkpoint sequence point (slot/free-list reconstruction depends on it),
// so the oracle checkpoints whenever the paged side does — including the
// synchronous checkpoints cache pressure forces.
func TestPagedChurnProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dirP, dirO := t.TempDir(), t.TempDir()
	paged, err := Open(dirP, pagedTestOpts(24<<10))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Open(dirO, DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}

	var seenCkpts int64
	syncCkpt := func() {
		t.Helper()
		if n := paged.WALStats().Checkpoints; n > seenCkpts {
			if err := oracle.Checkpoint(); err != nil {
				t.Fatalf("oracle lockstep checkpoint: %v", err)
			}
			seenCkpts = n
		}
	}
	both := func(sql string) {
		t.Helper()
		_, errP := paged.ExecSQL(sql)
		_, errO := oracle.ExecSQL(sql)
		if (errP == nil) != (errO == nil) {
			t.Fatalf("divergence on %q: paged=%v oracle=%v", sql, errP, errO)
		}
		syncCkpt()
	}
	compareRange := func(lo, hi int) {
		t.Helper()
		q := fmt.Sprintf("SELECT id, name FROM kv WHERE id > %d AND id < %d ORDER BY id", lo, hi)
		rp, errP := paged.ExecSQL(q)
		ro, errO := oracle.ExecSQL(q)
		if errP != nil || errO != nil {
			t.Fatalf("range scan: paged=%v oracle=%v", errP, errO)
		}
		if len(rp.Rows) != len(ro.Rows) {
			t.Fatalf("range scan rows: paged=%d oracle=%d", len(rp.Rows), len(ro.Rows))
		}
		for i := range rp.Rows {
			for j := range rp.Rows[i] {
				if rp.Rows[i][j].Key() != ro.Rows[i][j].Key() {
					t.Fatalf("range scan row %d col %d: %s vs %s", i, j, rp.Rows[i][j].Key(), ro.Rows[i][j].Key())
				}
			}
		}
	}

	both("CREATE TABLE kv (id INT PRIMARY KEY, name TEXT, n INT)")
	both("CREATE INDEX kv_id ON kv (id)")

	pad := strings.Repeat("x", 60)
	// Bulk-load enough rows that the live pages dwarf both the cache budget
	// and the pinned L1 tier — churn below must fault and evict constantly.
	const idSpace = 3000
	for base := 0; base < idSpace; base += 100 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO kv (id, name, n) VALUES ")
		for i := 0; i < 100; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'v%d-%s', %d)", base+i, base+i, pad, base+i)
		}
		both(sb.String())
	}

	const steps = 500
	for step := 0; step < steps; step++ {
		id := rng.Intn(idSpace)
		switch r := rng.Intn(100); {
		case r < 40:
			both(fmt.Sprintf("INSERT INTO kv (id, name, n) VALUES (%d, 'v%d-%s', %d)", id, id, pad, step))
		case r < 60:
			both(fmt.Sprintf("UPDATE kv SET name = 'u%d-%s', n = %d WHERE id = %d", step, pad, step, id))
		case r < 72:
			both(fmt.Sprintf("DELETE FROM kv WHERE id = %d", id))
		case r < 82:
			lo := rng.Intn(idSpace - 200)
			compareRange(lo, lo+rng.Intn(150)+1)
		case r < 92:
			both("BEGIN")
			both(fmt.Sprintf("INSERT INTO kv (id, name, n) VALUES (%d, 'tx%d', %d)", rng.Intn(idSpace), step, step))
			both(fmt.Sprintf("UPDATE kv SET n = %d WHERE id = %d", -step, id))
			if rng.Intn(2) == 0 {
				both("COMMIT")
			} else {
				both("ROLLBACK")
			}
		default:
			if err := paged.Checkpoint(); err != nil {
				t.Fatalf("paged checkpoint: %v", err)
			}
			syncCkpt()
		}

		if step%7 == 0 {
			if dp, do := paged.StateDigest(), oracle.StateDigest(); dp != do {
				t.Fatalf("digest diverged at step %d:\npaged:\n%s\noracle:\n%s", step, dump(t, paged), dump(t, oracle))
			}
		}
		if step%60 == 23 {
			// Crash both in lockstep and recover: the paged side from
			// MANIFEST + segments + WAL, the oracle from snapshot + WAL.
			paged.Close()
			oracle.Close()
			if paged, err = Open(dirP, pagedTestOpts(24<<10)); err != nil {
				t.Fatalf("paged reopen at step %d: %v", step, err)
			}
			if oracle, err = Open(dirO, DurabilityOptions{CheckpointBytes: -1}); err != nil {
				t.Fatalf("oracle reopen at step %d: %v", step, err)
			}
			seenCkpts = 0 // in-memory counter resets with the process
			if gp, gz := dump(t, paged), dump(t, oracle); gp != gz {
				t.Fatalf("recovered state diverged at step %d:\npaged:\n%s\noracle:\n%s", step, gp, gz)
			}
			if dp, do := paged.StateDigest(), oracle.StateDigest(); dp != do {
				t.Fatalf("recovered digest diverged at step %d", step)
			}
		}
	}

	if dp, do := paged.StateDigest(), oracle.StateDigest(); dp != do {
		t.Fatalf("final digest diverged")
	}
	cs := paged.CacheStats()
	if cs.Misses == 0 || cs.Evictions == 0 {
		t.Fatalf("cache never thrashed (misses=%d evictions=%d): budget too generous for the test to mean anything", cs.Misses, cs.Evictions)
	}
	paged.Close()
	oracle.Close()
}

// TestPagedCacheBounded loads a dataset at least 4x the cache budget and
// checks that resident bytes stay near the budget while every row remains
// reachable — the beyond-RAM claim in miniature.
func TestPagedCacheBounded(t *testing.T) {
	const budget = 128 << 10
	dir := t.TempDir()
	db, err := Open(dir, pagedTestOpts(budget))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	mustExec(t, db, "CREATE TABLE big (id INT PRIMARY KEY, pad TEXT)")
	pad := strings.Repeat("y", 64)
	const rows = 8192 // ~ 8192*(8+64+overhead) bytes of row data >> 4*budget
	for base := 0; base < rows; base += 64 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO big (id, pad) VALUES ")
		for i := 0; i < 64; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'r%d-%s')", base+i, base+i, pad)
		}
		mustExec(t, db, sb.String())
		if cs := db.CacheStats(); cs.ResidentBytes > budget+budget/2 {
			t.Fatalf("resident %d exceeds budget %d + slack during load", cs.ResidentBytes, budget)
		}
	}
	if got := db.SizeBytes(); int64(got) < 4*budget {
		t.Fatalf("dataset too small to prove anything: %d < 4*%d", got, budget)
	}

	// Random point reads across the whole key space: far more pages than
	// the cache holds, so this faults and evicts continuously.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		id := rng.Intn(rows)
		res := mustExec(t, db, fmt.Sprintf("SELECT pad FROM big WHERE id = %d", id))
		if len(res.Rows) != 1 || !strings.HasPrefix(res.Rows[0][0].S, fmt.Sprintf("r%d-", id)) {
			t.Fatalf("point read %d: %+v", id, res.Rows)
		}
		if cs := db.CacheStats(); cs.ResidentBytes > budget+budget/2 {
			t.Fatalf("resident %d exceeds budget %d + slack during reads", cs.ResidentBytes, budget)
		}
	}
	// A full scan must still see every row even though only a fraction is
	// resident at any instant.
	res := mustExec(t, db, "SELECT id FROM big")
	if len(res.Rows) != rows {
		t.Fatalf("full scan: got %d rows, want %d", len(res.Rows), rows)
	}
	cs := db.CacheStats()
	if cs.Misses == 0 || cs.Evictions == 0 || cs.Hits == 0 {
		t.Fatalf("cache counters implausible: %+v", cs)
	}
	if cs.BudgetBytes != budget {
		t.Fatalf("budget reported %d, want %d", cs.BudgetBytes, budget)
	}
	if db.DiskSizeBytes() <= 0 {
		t.Fatal("DiskSizeBytes reported nothing on a checkpointed paged database")
	}
}

// TestPagedIncrementalCheckpointBytes checks the incremental claim
// structurally: after a bulk load is checkpointed, dirtying one row makes
// the next checkpoint write roughly one page, not the whole table.
func TestPagedIncrementalCheckpointBytes(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, pagedTestOpts(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)")
	pad := strings.Repeat("z", 64)
	for base := 0; base < 4096; base += 64 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO t (id, pad) VALUES ")
		for i := 0; i < 64; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s')", base+i, pad)
		}
		mustExec(t, db, sb.String())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	full := db.LastCheckpointBytes()
	if full <= 0 {
		t.Fatalf("bulk checkpoint wrote %d bytes", full)
	}

	mustExec(t, db, "UPDATE t SET pad = 'tiny' WHERE id = 17")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	incr := db.LastCheckpointBytes()
	if incr <= 0 || incr >= full/4 {
		t.Fatalf("one-row churn checkpoint wrote %d bytes vs %d for the bulk load: not incremental", incr, full)
	}
	if db.CheckpointPauseNanos() <= 0 {
		t.Fatal("checkpoint pause counter never advanced")
	}
}

// TestPagedLayoutConversion opens an existing snapshot-layout directory
// with Paged set and expects an in-place conversion: MANIFEST + segments
// appear, snapshot.db disappears, and the data survives both the
// conversion and a subsequent flag-less reopen.
func TestPagedLayoutConversion(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
	mustExec(t, db, "CREATE INDEX t_name ON t (name)")
	mustExec(t, db, "INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	if err := db.Checkpoint(); err != nil { // ensure snapshot.db exists
		t.Fatal(err)
	}
	mustExec(t, db, "DELETE FROM t WHERE id = 2") // plus a WAL tail
	want := dump(t, db)
	db.Close()

	db2, err := Open(dir, pagedTestOpts(32<<10))
	if err != nil {
		t.Fatalf("conversion open: %v", err)
	}
	if !db2.Paged() {
		t.Fatal("conversion did not produce a paged database")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("conversion left no MANIFEST: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); !os.IsNotExist(err) {
		t.Fatalf("conversion left snapshot.db behind: %v", err)
	}
	if got := dump(t, db2); got != want {
		t.Fatalf("conversion lost data:\ngot:\n%s\nwant:\n%s", got, want)
	}
	mustExec(t, db2, "INSERT INTO t (id, name) VALUES (4, 'd')")
	want2 := dump(t, db2)
	db2.Close()

	db3, err := Open(dir, DurabilityOptions{}) // no flag: auto-detect
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if !db3.Paged() {
		t.Fatal("converted directory not auto-detected as paged")
	}
	if got := dump(t, db3); got != want2 {
		t.Fatalf("post-conversion reopen lost data:\ngot:\n%s\nwant:\n%s", got, want2)
	}
}

// TestBackgroundAutoCheckpoint verifies that auto-checkpoints run off the
// commit path: commits only kick a background goroutine, which must be
// observed to checkpoint on its own within the deadline.
func TestBackgroundAutoCheckpoint(t *testing.T) {
	for _, paged := range []bool{false, true} {
		t.Run(fmt.Sprintf("paged=%v", paged), func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(dir, DurabilityOptions{Paged: paged, CacheBytes: 1 << 20, CheckpointBytes: 2048})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)")
			pad := strings.Repeat("w", 128)
			deadline := time.Now().Add(10 * time.Second)
			ckpted := false
			for i := 0; i < 4096 && !ckpted; i++ {
				mustExec(t, db, fmt.Sprintf("INSERT INTO t (id, pad) VALUES (%d, '%s')", i, pad))
				if db.WALStats().Checkpoints > 0 {
					ckpted = true
				}
				if time.Now().After(deadline) {
					break
				}
			}
			// The kick is asynchronous; give the goroutine a moment even
			// after the writes stop.
			for !ckpted && time.Now().Before(deadline) {
				if db.WALStats().Checkpoints > 0 {
					ckpted = true
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if !ckpted {
				t.Fatal("background checkpointer never ran despite the WAL passing its threshold")
			}
			if err := db.LastCheckpointError(); err != nil {
				t.Fatalf("background checkpoint failed: %v", err)
			}
			if db.LastCheckpointBytes() <= 0 {
				t.Fatal("LastCheckpointBytes not surfaced")
			}
			if db.CheckpointPauseNanos() <= 0 {
				t.Fatal("CheckpointPauseNanos not surfaced")
			}
		})
	}
}
