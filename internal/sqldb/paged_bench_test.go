package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// benchPagedDB loads rows into a fresh database (paged when cacheBytes >
// 0, resident in-memory otherwise) for the read benchmarks. In -short mode
// (the CI bench smoke) the dataset shrinks so setup stays cheap.
func benchPagedDB(b *testing.B, cacheBytes int64, rows int) *DB {
	b.Helper()
	if testing.Short() {
		rows /= 16
	}
	var db *DB
	if cacheBytes > 0 {
		d, err := Open(b.TempDir(), DurabilityOptions{NoFsync: true, CheckpointBytes: -1, Paged: true, CacheBytes: cacheBytes})
		if err != nil {
			b.Fatal(err)
		}
		db = d
	} else {
		db = New()
	}
	pad := strings.Repeat("b", 100)
	const batch = 256
	for base := 0; base < rows; base += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO big (id, pad) VALUES ")
		for i := 0; i < batch && base+i < rows; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s')", base+i, pad)
		}
		if base == 0 {
			if _, err := db.ExecSQL("CREATE TABLE big (id INT PRIMARY KEY, pad TEXT)"); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := db.ExecSQL(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	if cacheBytes > 0 {
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func benchPointReads(b *testing.B, db *DB, space int) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.ExecSQL("SELECT pad FROM big WHERE id = ?", Int(int64(rng.Intn(space))))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("point read returned %d rows", len(res.Rows))
		}
	}
}

// BenchmarkPointReadResident is the in-memory baseline for the paged reads.
func BenchmarkPointReadResident(b *testing.B) {
	db := benchPagedDB(b, 0, 32*1024)
	benchPointReads(b, db, 4096)
}

// BenchmarkPointReadPagedHot reads a working set that fits the cache.
func BenchmarkPointReadPagedHot(b *testing.B) {
	db := benchPagedDB(b, 2<<20, 32*1024)
	benchPointReads(b, db, 4096)
}

// BenchmarkPointReadPagedCold reads uniformly over a dataset ~2x the cache
// budget, so a fraction of reads fault a page in from its segment.
func BenchmarkPointReadPagedCold(b *testing.B) {
	rows := 32 * 1024
	db := benchPagedDB(b, 2<<20, rows)
	if testing.Short() {
		rows /= 16
	}
	benchPointReads(b, db, rows)
}

// BenchmarkIncrementalCheckpoint measures one churn checkpoint: update a
// handful of rows, checkpoint only their dirty pages.
func BenchmarkIncrementalCheckpoint(b *testing.B) {
	rows := 32 * 1024
	db := benchPagedDB(b, 64<<20, rows)
	if testing.Short() {
		rows /= 16
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 8; j++ {
			if _, err := db.ExecSQL("UPDATE big SET pad = ? WHERE id = ?",
				Text(fmt.Sprintf("u%d", i)), Int(int64(rng.Intn(rows)))); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}
