package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// forceParallel shrinks the morsel size and the row-count gate so small
// test tables split into many morsels, and widens the token pool so
// explicit worker counts are honored even on a single-CPU runner. Restored
// on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	oldMorsel, oldMin := morselSlots, parallelMinRows
	morselSlots, parallelMinRows = 64, 32
	execTokens.ensureCap(8)
	t.Cleanup(func() {
		morselSlots, parallelMinRows = oldMorsel, oldMin
	})
}

// execPair runs one statement on the parallel and the serial arm and
// requires matching success/failure.
func execPair(t *testing.T, par, ser *DB, sql string, params ...Value) (*Result, *Result) {
	t.Helper()
	rp, errP := par.ExecSQL(sql, params...)
	rs, errS := ser.ExecSQL(sql, params...)
	if (errP == nil) != (errS == nil) {
		t.Fatalf("%q: parallel err=%v, serial err=%v", sql, errP, errS)
	}
	if errP != nil && errP.Error() != errS.Error() {
		t.Fatalf("%q: error text differs:\n  parallel: %v\n  serial:   %v", sql, errP, errS)
	}
	return rp, rs
}

// seedParallelPair builds two identical compiled databases: one running
// morsel-parallel with 4 workers, one forced serial (-exec-workers 1),
// which is the equivalence oracle. Identical statement streams give
// identical slot layouts, so results must match bit-for-bit in order.
func seedParallelPair(t *testing.T) (*DB, *DB) {
	t.Helper()
	par, ser := New(), New()
	par.SetExecWorkers(4)
	ser.SetExecWorkers(1)
	for _, ddl := range []string{
		"CREATE TABLE t1 (id INT PRIMARY KEY, grp TEXT, a INT, b INT)",
		"CREATE INDEX t1_a ON t1 (a) USING BTREE",
		"CREATE TABLE t2 (id INT PRIMARY KEY, fk INT, c INT)",
		"CREATE TABLE t3 (id INT PRIMARY KEY, k1 INT, k2 INT, d INT)",
	} {
		mustExec(t, par, ddl)
		mustExec(t, ser, ddl)
	}
	return par, ser
}

// parallelWorkload drives steps mixed mutate/query steps through both arms
// and asserts every result is identical in content AND order. Shared by
// the resident and paged equivalence tests.
func parallelWorkload(t *testing.T, par, ser *DB, steps int, r *rand.Rand) {
	t.Helper()
	nullable := func(n int64, p float64) Value {
		if r.Float64() < p {
			return Null()
		}
		return Int(n)
	}
	grpVal := func() Value {
		if r.Float64() < 0.05 {
			return Null()
		}
		return Text(fmt.Sprintf("g%d", r.Intn(6)))
	}
	nextID := map[string]int64{"t1": 0, "t2": 0, "t3": 0}
	live := map[string][]int64{}
	insert := func(table string) {
		id := nextID[table]
		nextID[table]++
		live[table] = append(live[table], id)
		var sql string
		var params []Value
		switch table {
		case "t1":
			sql = "INSERT INTO t1 (id, grp, a, b) VALUES (?, ?, ?, ?)"
			params = []Value{Int(id), grpVal(), nullable(int64(r.Intn(40)), 0.1), nullable(int64(r.Intn(25)), 0.1)}
		case "t2":
			sql = "INSERT INTO t2 (id, fk, c) VALUES (?, ?, ?)"
			params = []Value{Int(id), nullable(int64(r.Intn(60)), 0.1), nullable(int64(r.Intn(15)), 0.1)}
		case "t3":
			sql = "INSERT INTO t3 (id, k1, k2, d) VALUES (?, ?, ?, ?)"
			params = []Value{Int(id), nullable(int64(r.Intn(15)), 0.1), nullable(int64(r.Intn(15)), 0.1), Int(int64(r.Intn(100)))}
		}
		execPair(t, par, ser, sql, params...)
	}
	tables := []string{"t1", "t2", "t3"}
	// Enough initial rows that every table clears parallelMinRows and
	// spans several morsels at the shrunken morsel size.
	for i := 0; i < 400; i++ {
		insert(tables[i%3])
	}

	mutate := func() {
		table := tables[r.Intn(3)]
		switch r.Intn(3) {
		case 0:
			insert(table)
		case 1:
			if ids := live[table]; len(ids) > 0 {
				id := ids[r.Intn(len(ids))]
				switch table {
				case "t1":
					execPair(t, par, ser, "UPDATE t1 SET a = ?, grp = ? WHERE id = ?", nullable(int64(r.Intn(40)), 0.1), grpVal(), Int(id))
				case "t2":
					execPair(t, par, ser, "UPDATE t2 SET fk = ?, c = ? WHERE id = ?", nullable(int64(r.Intn(60)), 0.1), nullable(int64(r.Intn(15)), 0.1), Int(id))
				case "t3":
					execPair(t, par, ser, "UPDATE t3 SET k1 = ?, d = ? WHERE id = ?", nullable(int64(r.Intn(15)), 0.1), Int(int64(r.Intn(100))), Int(id))
				}
			}
		case 2:
			if ids := live[table]; len(ids) > 3 {
				i := r.Intn(len(ids))
				id := ids[i]
				live[table] = append(ids[:i], ids[i+1:]...)
				execPair(t, par, ser, fmt.Sprintf("DELETE FROM %s WHERE id = ?", table), Int(id))
			}
		}
	}

	one := func(n int) func() []Value {
		return func() []Value { return []Value{Int(int64(r.Intn(n)))} }
	}
	type tmpl struct {
		sql    string
		params func() []Value
	}
	// No hash index on the join columns: every equi join builds its
	// transient table (striped-parallel on the parallel arm). Both arms
	// run the compiled pipeline, so row ORDER must match exactly even
	// without ORDER BY — the serial slot order is the contract.
	queries := []tmpl{
		{"SELECT * FROM t1 WHERE a < ?", one(40)},
		{"SELECT id, a + b * 2, -a FROM t1 WHERE (a > ? OR b < 5) AND grp != 'g3' ORDER BY id", one(40)},
		{"SELECT t1.id, t2.id, t2.c FROM t1, t2 WHERE t1.id = t2.fk AND t2.c > ?", one(15)},
		{"SELECT t1.grp, COUNT(*), SUM(t2.c) FROM t1 JOIN t2 ON t1.id = t2.fk WHERE t1.a > ? GROUP BY t1.grp HAVING COUNT(*) > 1 ORDER BY t1.grp", one(40)},
		{"SELECT t3.d, t2.c FROM t2 JOIN t3 ON t2.fk = t3.k1 AND t2.c = t3.k2", nil},
		{"SELECT DISTINCT grp FROM t1", nil},
		{"SELECT t1.grp, t3.d FROM t1, t2, t3 WHERE t1.id = t2.fk AND t2.c = t3.k1 AND t1.b > ?", one(25)},
		{"SELECT grp, SUM(a) + COUNT(b), AVG(a) FROM t1 GROUP BY grp", nil},
		{"SELECT grp, COUNT(DISTINCT a), MIN(a), MAX(b) FROM t1 GROUP BY grp ORDER BY grp", nil},
		{"SELECT id FROM t1 WHERE a BETWEEN ? AND 30 ORDER BY a DESC, id", one(20)},
		{"SELECT COUNT(DISTINCT t1.grp), MIN(t2.c), MAX(t2.c) FROM t1 JOIN t2 ON t1.id = t2.fk", nil},
		{"SELECT COUNT(*), SUM(a) FROM t1 WHERE a > 99999", nil},
		{"SELECT grp, COUNT(*) AS n FROM t1 WHERE grp IS NOT NULL GROUP BY grp ORDER BY n DESC, grp", nil},
		{"SELECT t2.fk, COUNT(*), SUM(t3.d) FROM t2 JOIN t3 ON t2.c = t3.k2 GROUP BY t2.fk", nil},
		{"SELECT grp, MIN(grp), MAX(grp) FROM t1 GROUP BY grp", nil},
	}

	for step := 0; step < steps; step++ {
		mutate()
		q := queries[r.Intn(len(queries))]
		var params []Value
		if q.params != nil {
			params = q.params()
		}
		rp, rs := execPair(t, par, ser, q.sql, params...)
		if rp != nil && rs != nil {
			// ordered=true always: parallel output must reproduce the
			// serial order bit for bit, ORDER BY or not.
			sameRows(t, fmt.Sprintf("step %d", step), q.sql, rp, rs, true)
		}
	}
}

// TestParallelEquivalence is the tentpole property test: >=400 mixed steps
// (inserts/updates/deletes interleaved with joins, GROUP BY/HAVING,
// DISTINCT, NULL-heavy data) where the morsel-parallel arm must match the
// serial compiled arm bit-identically, including row order.
func TestParallelEquivalence(t *testing.T) {
	forceParallel(t)
	par, ser := seedParallelPair(t)
	parallelWorkload(t, par, ser, 400, rand.New(rand.NewSource(11)))

	pp, ps := par.PlanCounters(), ser.PlanCounters()
	if pp.ParallelPipelines == 0 || pp.Morsels == 0 {
		t.Fatalf("parallel arm never went parallel: %+v", pp)
	}
	if ps.ParallelPipelines != 0 {
		t.Fatalf("serial ablation arm ran parallel pipelines: %+v", ps)
	}
	if pp.Interpreted != 0 || ps.Interpreted != 0 {
		t.Fatalf("a statement fell back to the interpreter: par=%+v ser=%+v", pp, ps)
	}
	if pp.ExecWorkers != 4 || ps.ExecWorkers != 1 {
		t.Fatalf("ExecWorkers snapshots wrong: par=%d ser=%d", pp.ExecWorkers, ps.ExecWorkers)
	}
	t.Logf("parallel arm: %+v", pp)
}

// TestParallelPagedEquivalence runs the same property workload on paged
// databases with a deliberately tiny buffer cache, so morsel workers fault
// pages in concurrently while eviction is active.
func TestParallelPagedEquivalence(t *testing.T) {
	forceParallel(t)
	opts := DurabilityOptions{NoFsync: true, Paged: true, CacheBytes: 64 << 10, CheckpointBytes: -1}
	par, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	ser, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ser.Close()
	par.SetExecWorkers(4)
	ser.SetExecWorkers(1)
	for _, ddl := range []string{
		"CREATE TABLE t1 (id INT PRIMARY KEY, grp TEXT, a INT, b INT)",
		"CREATE TABLE t2 (id INT PRIMARY KEY, fk INT, c INT)",
		"CREATE TABLE t3 (id INT PRIMARY KEY, k1 INT, k2 INT, d INT)",
	} {
		mustExec(t, par, ddl)
		mustExec(t, ser, ddl)
	}
	parallelWorkload(t, par, ser, 150, rand.New(rand.NewSource(13)))
	if pp := par.PlanCounters(); pp.ParallelPipelines == 0 {
		t.Fatalf("paged parallel arm never went parallel: %+v", pp)
	}
}

// TestParallelTxnView checks morsel-parallel execution against a
// transaction's merged read-your-writes view.
func TestParallelTxnView(t *testing.T) {
	forceParallel(t)
	par, ser := seedParallelPair(t)
	for i := 0; i < 300; i++ {
		sql := "INSERT INTO t1 (id, grp, a, b) VALUES (?, ?, ?, ?)"
		params := []Value{Int(int64(i)), Text(fmt.Sprintf("g%d", i%5)), Int(int64(i % 37)), Int(int64(i % 11))}
		execPair(t, par, ser, sql, params...)
	}
	sp, ss := par.NewSession(), ser.NewSession()
	defer sp.Close()
	defer ss.Close()
	both := func(sql string, params ...Value) (*Result, *Result) {
		t.Helper()
		rp, errP := sp.ExecSQL(sql, params...)
		rs, errS := ss.ExecSQL(sql, params...)
		if (errP == nil) != (errS == nil) {
			t.Fatalf("%q: parallel err=%v, serial err=%v", sql, errP, errS)
		}
		return rp, rs
	}
	both("BEGIN")
	both("UPDATE t1 SET a = 999 WHERE id < 40")
	both("INSERT INTO t1 (id, grp, a, b) VALUES (9001, 'g9', 7, 7)")
	for _, q := range []string{
		"SELECT * FROM t1 WHERE a > 500",
		"SELECT grp, COUNT(*), SUM(a) FROM t1 GROUP BY grp",
		"SELECT l.id, r.id FROM t1 l, t1 r WHERE l.a = r.b",
	} {
		rp, rs := both(q)
		sameRows(t, "txn", q, rp, rs, true)
	}
	both("ROLLBACK")
	if pp := par.PlanCounters(); pp.ParallelPipelines == 0 {
		t.Fatalf("txn-view reads never went parallel: %+v", pp)
	}
}

// TestParallelMinMaxKindFallback pins the merge-order hazard: partial
// MIN/MAX accumulators whose folds saw different value kinds must refuse
// to merge (forcing the serial rerun), and end-to-end a mixed-kind MIN/MAX
// must reproduce the serial result — or the serial error — exactly.
func TestParallelMinMaxKindFallback(t *testing.T) {
	// Deterministic unit check of the refusal itself (end-to-end, whether a
	// merge happens depends on which worker claims which morsel).
	stepOne := func(acc *cMinMaxAcc, v Value) {
		t.Helper()
		ev := &execEnv{tup: tuple{[]Value{v}}}
		if err := acc.step(ev); err != nil {
			t.Fatalf("step(%v): %v", v, err)
		}
	}
	slot := colSlot{ok: true}
	a := &cMinMaxAcc{slot: slot, min: true}
	b := &cMinMaxAcc{slot: slot, min: true}
	stepOne(a, Int(3))
	stepOne(b, Text("zzz"))
	if err := a.merge(b); err != errParallelFallback {
		t.Fatalf("mixed-kind merge = %v, want errParallelFallback", err)
	}
	c := &cMinMaxAcc{slot: slot, min: true}
	d := &cMinMaxAcc{slot: slot, min: true}
	stepOne(c, Int(3))
	stepOne(d, Int(9))
	if err := c.merge(d); err != nil || !c.any || c.best.I != 3 {
		t.Fatalf("same-kind merge = (%v, best %v)", err, c.best)
	}

	// End-to-end: mixed kinds in one column, dynamic typing permitting.
	forceParallel(t)
	par, ser := New(), New()
	par.SetExecWorkers(4)
	ser.SetExecWorkers(1)
	for _, db := range []*DB{par, ser} {
		mustExec(t, db, "CREATE TABLE mk (id INT PRIMARY KEY, grp INT, v INT)")
	}
	for i := 0; i < 200; i++ {
		v := Value(Int(int64(i % 50)))
		if i%7 == 0 {
			v = Text(fmt.Sprintf("t%d", i%50))
		}
		execPair(t, par, ser, "INSERT INTO mk (id, grp, v) VALUES (?, ?, ?)", Int(int64(i)), Int(int64(i%4)), v)
	}
	rp, rs := execPair(t, par, ser, "SELECT MIN(v), MAX(v), COUNT(*) FROM mk")
	if rp != nil {
		sameRows(t, "fallback", "mixed-kind MIN/MAX", rp, rs, true)
	}
	rp, rs = execPair(t, par, ser, "SELECT grp, MIN(v), MAX(v) FROM mk GROUP BY grp ORDER BY grp")
	if rp != nil {
		sameRows(t, "fallback", "grouped mixed-kind MIN/MAX", rp, rs, true)
	}
}

// TestParallelWorkerTokens exercises the global token pool: grants are
// bounded by capacity, released tokens are reusable, and ensureCap only
// grows.
func TestParallelWorkerTokens(t *testing.T) {
	p := &workerTokenPool{capacity: 3}
	if got := p.tryAcquire(2); got != 2 {
		t.Fatalf("tryAcquire(2) = %d", got)
	}
	if got := p.tryAcquire(5); got != 1 {
		t.Fatalf("tryAcquire(5) with 1 left = %d", got)
	}
	if got := p.tryAcquire(1); got != 0 {
		t.Fatalf("tryAcquire on empty pool = %d", got)
	}
	p.release(3)
	p.ensureCap(2) // must not shrink
	if got := p.tryAcquire(4); got != 3 {
		t.Fatalf("tryAcquire(4) after release = %d", got)
	}
	p.release(3)
	p.ensureCap(6)
	if got := p.tryAcquire(10); got != 6 {
		t.Fatalf("tryAcquire(10) after ensureCap(6) = %d", got)
	}
	p.release(6)
}

// TestParallelMorselDriver checks the morsel claim loop: every morsel runs
// exactly once on success, and on failure the error from the
// lowest-numbered morsel wins while all lower morsels still complete.
func TestParallelMorselDriver(t *testing.T) {
	const n = 64
	var ran [n]int32
	err := runParallelMorsels(n, 4, func(_, m int) error {
		ran[m]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for m, c := range ran {
		if c != 1 {
			t.Fatalf("morsel %d ran %d times", m, c)
		}
	}

	// Every morsel >= 9 errors; morsel 9's error must win regardless of
	// scheduling, and morsels 0..8 must all have run.
	var ran2 [n]int32
	err = runParallelMorsels(n, 4, func(_, m int) error {
		ran2[m]++
		if m >= 9 {
			return fmt.Errorf("boom %d", m)
		}
		return nil
	})
	if err == nil || err.Error() != "boom 9" {
		t.Fatalf("want boom 9, got %v", err)
	}
	for m := 0; m < 9; m++ {
		if ran2[m] != 1 {
			t.Fatalf("morsel %d ran %d times before error", m, ran2[m])
		}
	}
}

// TestParallelBuildIndexes checks BuildIndexesParallel installs working
// hash and ordered indexes equivalent to serial CREATE INDEX.
func TestParallelBuildIndexes(t *testing.T) {
	forceParallel(t)
	db := New()
	db.SetExecWorkers(4)
	mustExec(t, db, "CREATE TABLE bi (id INT PRIMARY KEY, h INT, o INT)")
	for i := 0; i < 500; i++ {
		mustExec(t, db, "INSERT INTO bi (id, h, o) VALUES (?, ?, ?)", Int(int64(i)), Int(int64(i%40)), Int(int64(i%60)))
	}
	infos := []IndexInfo{{Column: "h"}, {Column: "o", Ordered: true}}
	if err := db.BuildIndexesParallel("bi", infos); err != nil {
		t.Fatal(err)
	}
	// Idempotent on re-run, like addIndex.
	if err := db.BuildIndexesParallel("bi", infos); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndexesParallel("nope", infos); err == nil {
		t.Fatal("expected error for missing table")
	}
	before := db.PlanCounters()
	res := mustExec(t, db, "SELECT COUNT(*) FROM bi WHERE h = 7")
	if res.Rows[0][0].I != 13 {
		t.Fatalf("eq count = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT COUNT(*) FROM bi WHERE o < 3")
	if res.Rows[0][0].I != 27 {
		t.Fatalf("range count = %v", res.Rows[0][0])
	}
	after := db.PlanCounters()
	if after.EqScans == before.EqScans || after.RangeScans == before.RangeScans {
		t.Fatalf("built indexes not used: before=%+v after=%+v", before, after)
	}
}

// TestParallelStatsPropagation checks the new PlanCounters fields render in
// the DB-level snapshot (the store-level sum is covered by the sharded
// engine's tests).
func TestParallelStatsPropagation(t *testing.T) {
	forceParallel(t)
	db := New()
	db.SetExecWorkers(3)
	mustExec(t, db, "CREATE TABLE s (id INT PRIMARY KEY, v INT)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO s (id, v) VALUES ")
	for i := 0; i < 400; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i%10)
	}
	mustExec(t, db, sb.String())
	mustExec(t, db, "SELECT v, COUNT(*) FROM s GROUP BY v")
	pc := db.PlanCounters()
	if pc.ParallelPipelines != 1 {
		t.Fatalf("ParallelPipelines = %d, want 1 (%+v)", pc.ParallelPipelines, pc)
	}
	if pc.Morsels < 2 {
		t.Fatalf("Morsels = %d, want >= 2", pc.Morsels)
	}
	if pc.ExecWorkers != 3 {
		t.Fatalf("ExecWorkers = %d, want 3", pc.ExecWorkers)
	}
}
