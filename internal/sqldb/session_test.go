package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func mustSess(t *testing.T, s *Session, sql string, params ...Value) *Result {
	t.Helper()
	res, err := s.ExecSQL(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// TestSessionsConcurrentTxns is the tentpole acceptance check: two sessions
// hold open transactions at the same time, each sees its own writes but not
// the other's, and both commit without interleaving their effects.
func TestSessionsConcurrentTxns(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, db, "INSERT INTO t (id, v) VALUES (1, 'base')")

	a, b := db.NewSession(), db.NewSession()
	defer a.Close()
	defer b.Close()

	mustSess(t, a, "BEGIN")
	mustSess(t, b, "BEGIN")
	mustSess(t, a, "INSERT INTO t (id, v) VALUES (2, 'from-a')")
	mustSess(t, b, "INSERT INTO t (id, v) VALUES (3, 'from-b')")
	mustSess(t, b, "UPDATE t SET v = 'b-owned' WHERE id = 1")

	// Read-your-writes: each session sees its own buffer plus committed
	// state, never the other's buffer.
	if res := mustSess(t, a, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 2 {
		t.Fatalf("a sees %v rows, want 2 (base + own insert)", res.Rows[0][0])
	}
	if res := mustSess(t, b, "SELECT v FROM t WHERE id = 1"); res.Rows[0][0].S != "b-owned" {
		t.Fatalf("b does not see its own update: %v", res.Rows[0][0])
	}
	if res := mustSess(t, a, "SELECT v FROM t WHERE id = 1"); res.Rows[0][0].S != "base" {
		t.Fatalf("a sees b's uncommitted update: %v", res.Rows[0][0])
	}
	// A third, transaction-free observer sees only committed state.
	if res := mustExec(t, db, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 1 {
		t.Fatalf("observer sees %v rows, want 1", res.Rows[0][0])
	}

	mustSess(t, a, "COMMIT")
	mustSess(t, b, "COMMIT")
	res := mustExec(t, db, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("after both commits: %v rows, want 3", res.Rows[0][0])
	}
	if res := mustExec(t, db, "SELECT v FROM t WHERE id = 1"); res.Rows[0][0].S != "b-owned" {
		t.Fatalf("b's update lost: %v", res.Rows[0][0])
	}
}

// TestSessionWriteConflict checks first-writer-wins on row slots: the
// second transaction to write a row fails immediately, nothing of its
// failing statement applies, and the winner commits cleanly.
func TestSessionWriteConflict(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	mustExec(t, db, "INSERT INTO acct (id, bal) VALUES (1, 100), (2, 200)")

	a, b := db.NewSession(), db.NewSession()
	defer a.Close()
	defer b.Close()
	mustSess(t, a, "BEGIN")
	mustSess(t, b, "BEGIN")
	mustSess(t, a, "UPDATE acct SET bal = bal - 10 WHERE id = 1")

	var wc *WriteConflictError
	if _, err := b.ExecSQL("UPDATE acct SET bal = bal - 70 WHERE id = 1"); !errors.As(err, &wc) {
		t.Fatalf("second writer: err = %v, want WriteConflictError", err)
	}
	// A statement touching both a free and a locked row must apply
	// nothing (statement atomicity).
	if _, err := b.ExecSQL("UPDATE acct SET bal = 0"); !errors.As(err, &wc) {
		t.Fatalf("mixed update: err = %v, want WriteConflictError", err)
	}
	mustSess(t, b, "UPDATE acct SET bal = bal + 5 WHERE id = 2") // untouched row: fine
	// An autocommit DELETE from a third party also respects the locks.
	if _, err := db.ExecSQL("DELETE FROM acct WHERE id = 1"); !errors.As(err, &wc) {
		t.Fatalf("autocommit delete of locked row: err = %v, want WriteConflictError", err)
	}

	mustSess(t, b, "ROLLBACK")
	mustSess(t, a, "COMMIT")
	// A's lock released at commit: B can retry on a new transaction.
	mustSess(t, b, "BEGIN")
	mustSess(t, b, "UPDATE acct SET bal = bal - 70 WHERE id = 1")
	mustSess(t, b, "COMMIT")
	res := mustExec(t, db, "SELECT bal FROM acct WHERE id = 1")
	if res.Rows[0][0].I != 20 {
		t.Fatalf("bal = %v, want 20 (100 - 10 - 70; b's rolled-back +5 and 0-write gone)", res.Rows[0][0])
	}
	if res := mustExec(t, db, "SELECT bal FROM acct WHERE id = 2"); res.Rows[0][0].I != 200 {
		t.Fatalf("bal(2) = %v, want 200", res.Rows[0][0])
	}
}

// TestSessionAutoRollbackOnClose: a session that disappears mid-transaction
// (client disconnect) must release its locks and discard its buffer.
func TestSessionAutoRollbackOnClose(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")

	s := db.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "UPDATE t SET a = 99")
	mustSess(t, s, "INSERT INTO t (a) VALUES (2)")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecSQL("SELECT a FROM t"); err == nil {
		t.Fatal("closed session still executes")
	}

	res := mustExec(t, db, "SELECT a FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("closed session leaked writes: %v", res.Rows)
	}
	// The lock must be gone: an autocommit update succeeds.
	mustExec(t, db, "UPDATE t SET a = 5")
	if db.InTxn() {
		t.Fatal("InTxn still true after session close")
	}
}

// TestTxnUniqueDeferredToCommit: UNIQUE constraints are validated
// authoritatively at COMMIT; a violation rolls the whole transaction back.
func TestTxnUniqueDeferredToCommit(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO t (id, v) VALUES (1, 10)")

	a, b := db.NewSession(), db.NewSession()
	defer a.Close()
	defer b.Close()

	// First committer wins: both transactions insert id=7.
	mustSess(t, a, "BEGIN")
	mustSess(t, b, "BEGIN")
	mustSess(t, a, "INSERT INTO t (id, v) VALUES (7, 70)")
	mustSess(t, a, "UPDATE t SET v = 11 WHERE id = 1")
	mustSess(t, b, "INSERT INTO t (id, v) VALUES (7, 700)")
	mustSess(t, a, "COMMIT")
	if _, err := b.ExecSQL("COMMIT"); err == nil {
		t.Fatal("conflicting COMMIT should fail")
	}
	// B's transaction rolled back as a unit; A's effects intact.
	res := mustExec(t, db, "SELECT v FROM t WHERE id = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 70 {
		t.Fatalf("id=7: %v, want v=70 from A only", res.Rows)
	}
	if res := mustExec(t, db, "SELECT v FROM t WHERE id = 1"); res.Rows[0][0].I != 11 {
		t.Fatalf("A's update missing: %v", res.Rows[0][0])
	}
	// B's session is usable again.
	mustSess(t, b, "BEGIN")
	mustSess(t, b, "INSERT INTO t (id, v) VALUES (8, 80)")
	mustSess(t, b, "COMMIT")

	// Delete + re-insert of the same key inside one transaction commits
	// cleanly (deletes apply before inserts).
	mustSess(t, a, "BEGIN")
	mustSess(t, a, "DELETE FROM t WHERE id = 8")
	mustSess(t, a, "INSERT INTO t (id, v) VALUES (8, 88)")
	mustSess(t, a, "COMMIT")
	if res := mustExec(t, db, "SELECT v FROM t WHERE id = 8"); res.Rows[0][0].I != 88 {
		t.Fatalf("re-inserted key: %v", res.Rows[0][0])
	}
}

// TestSessionTxnReadYourWrites drives multi-statement flows through the
// merged-view path: updates of pending inserts, deletes of pending inserts,
// and reads that mix overlay and committed rows.
func TestSessionTxnReadYourWrites(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t (k, v) VALUES (1, 100)")

	s := db.NewSession()
	defer s.Close()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO t (k, v) VALUES (2, 200), (3, 300)")
	mustSess(t, s, "UPDATE t SET v = v + 1 WHERE k = 2") // update a pending insert
	mustSess(t, s, "DELETE FROM t WHERE k = 3")          // delete a pending insert
	mustSess(t, s, "UPDATE t SET v = v + 7 WHERE k = 1") // update a committed row
	mustSess(t, s, "UPDATE t SET v = v + 7 WHERE k = 1") // twice: reads its own mod

	res := mustSess(t, s, "SELECT k, v FROM t ORDER BY k")
	want := [][2]int64{{1, 114}, {2, 201}}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].I != w[0] || res.Rows[i][1].I != w[1] {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
	// Aggregates through the merged view too.
	if res := mustSess(t, s, "SELECT SUM(v) FROM t"); res.Rows[0][0].I != 315 {
		t.Fatalf("sum = %v, want 315", res.Rows[0][0])
	}
	mustSess(t, s, "COMMIT")
	if res := mustExec(t, db, "SELECT SUM(v) FROM t"); res.Rows[0][0].I != 315 {
		t.Fatalf("committed sum = %v, want 315", res.Rows[0][0])
	}
}

// TestSessionInterleavingStress is the schedule-interleaving stress test: K
// sessions run randomized transactions (single-statement read-modify-write
// transfers between accounts, marker inserts, rollbacks) under adversarial
// goroutine scheduling. Committed effects must be serializable: transfers
// preserve the total, every concurrent SUM probe observes the invariant
// (probes never see a half-applied transaction), and the final state must
// equal a serial oracle replaying exactly the committed transactions.
func TestSessionInterleavingStress(t *testing.T) {
	const (
		sessions = 8
		accounts = 6
		txnsEach = 60
		initial  = 1000
	)
	db := New()
	mustExec(t, db, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	mustExec(t, db, "CREATE TABLE mark (sess INT, n INT)")
	for i := 0; i < accounts; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, %d)", i, initial))
	}

	type committedTxn struct {
		order int64
		sqls  []string
	}
	var (
		commitSeq int64
		cmu       sync.Mutex
		committed []committedTxn
	)

	var wg sync.WaitGroup
	errCh := make(chan error, sessions+1)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < txnsEach; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amt := rng.Intn(20) + 1
				sqls := []string{
					fmt.Sprintf("UPDATE acct SET bal = bal - %d WHERE id = %d", amt, from),
					fmt.Sprintf("UPDATE acct SET bal = bal + %d WHERE id = %d", amt, to),
					fmt.Sprintf("INSERT INTO mark (sess, n) VALUES (%d, %d)", g, i),
				}
				if _, err := s.ExecSQL("BEGIN"); err != nil {
					errCh <- err
					return
				}
				aborted := false
				for _, q := range sqls {
					if _, err := s.ExecSQL(q); err != nil {
						var wc *WriteConflictError
						if !errors.As(err, &wc) {
							errCh <- fmt.Errorf("%s: %v", q, err)
							return
						}
						if _, rerr := s.ExecSQL("ROLLBACK"); rerr != nil {
							errCh <- rerr
							return
						}
						aborted = true
						break
					}
				}
				if aborted {
					continue
				}
				if rng.Intn(5) == 0 { // deliberate rollback
					if _, err := s.ExecSQL("ROLLBACK"); err != nil {
						errCh <- err
						return
					}
					continue
				}
				if _, err := s.ExecSQL("COMMIT"); err != nil {
					errCh <- err
					return
				}
				// Commit order for the oracle. Conflicting transactions
				// cannot race here: the loser's slot locks are only
				// released by this COMMIT, so any dependent transaction
				// records a strictly later order.
				n := atomic.AddInt64(&commitSeq, 1)
				cmu.Lock()
				committed = append(committed, committedTxn{order: n, sqls: sqls})
				cmu.Unlock()
			}
		}(g)
	}
	// A reader session hammers invariant probes throughout the storm: the
	// total balance must never waver, no matter how commits interleave.
	probeDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(probeDone)
		for i := 0; i < 200; i++ {
			res, err := db.ExecSQL("SELECT SUM(bal) FROM acct")
			if err != nil {
				errCh <- err
				return
			}
			if got := res.Rows[0][0].I; got != accounts*initial {
				errCh <- fmt.Errorf("probe %d: SUM(bal) = %d, want %d (half-applied commit visible)", i, got, accounts*initial)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Serial oracle: replay the committed transactions, in commit order,
	// on a fresh single-session database. Exact state equality proves the
	// committed effects are serializable in that order.
	oracle := New()
	mustExec(t, oracle, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	mustExec(t, oracle, "CREATE TABLE mark (sess INT, n INT)")
	for i := 0; i < accounts; i++ {
		mustExec(t, oracle, fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, %d)", i, initial))
	}
	cmu.Lock()
	replay := append([]committedTxn(nil), committed...)
	cmu.Unlock()
	for i := range replay {
		for j := i + 1; j < len(replay); j++ {
			if replay[j].order < replay[i].order {
				replay[i], replay[j] = replay[j], replay[i]
			}
		}
	}
	for _, txn := range replay {
		for _, q := range txn.sqls {
			mustExec(t, oracle, q)
		}
	}
	if got, want := dump(t, db), dump(t, oracle); got != want {
		t.Fatalf("final state is not serializable in commit order:\ngot:\n%s\nwant:\n%s", got, want)
	}
	res := mustExec(t, db, "SELECT COUNT(*) FROM mark")
	if res.Rows[0][0].I != int64(len(replay)) {
		t.Fatalf("markers = %v, committed = %d", res.Rows[0][0], len(replay))
	}
}

// TestGroupCommitConcurrency drives concurrent durable committers and
// checks (a) fsyncs were actually shared across commits, and (b) every
// acknowledged commit survives a reopen.
func TestGroupCommitConcurrency(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (g INT, i INT)")

	const writers, each = 8, 40
	// Pre-parsed statements: the hot loop must be commit-bound, not
	// parser-bound, for cohorts to form within the straggler window even
	// under the race detector's slowdown.
	ins := mustParse(t, "INSERT INTO t (g, i) VALUES (?, ?)")
	begin := mustParse(t, "BEGIN")
	commit := mustParse(t, "COMMIT")
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < each; i++ {
				if i%4 == 0 { // some as explicit transactions
					if _, err := s.Exec(begin); err != nil {
						errCh <- err
						return
					}
					if _, err := s.Exec(ins, Int(int64(g)), Int(int64(i))); err != nil {
						errCh <- err
						return
					}
					if _, err := s.Exec(commit); err != nil {
						errCh <- err
						return
					}
					continue
				}
				if _, err := s.Exec(ins, Int(int64(g)), Int(int64(i))); err != nil {
					errCh <- err
					return
				}
				// Yield between statements: real clients block on network
				// reads between commits, giving other sessions CPU time.
				// Without this, a single-core host can run each closed
				// loop to completion back-to-back and no two committers
				// are ever in flight together.
				runtime.Gosched()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	stats := db.WALStats()
	if stats.Syncs >= stats.Batches {
		t.Errorf("no fsync sharing: syncs=%d batches=%d (cohorts never formed)", stats.Syncs, stats.Batches)
	}
	db.Close()
	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustExec(t, db2, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != writers*each {
		t.Fatalf("recovered %v rows, want %d", res.Rows[0][0], writers*each)
	}
}

// TestCrashDuringGroupCommit truncates the WAL at every possible byte
// offset after a burst of concurrently committed multi-row transactions,
// and requires recovery to honor batch atomicity: each transaction's rows
// are either all present or all absent.
func TestCrashDuringGroupCommit(t *testing.T) {
	const writers, rowsPerTxn = 6, 5
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{NoFsync: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (tag INT, i INT)")

	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for _, q := range []string{
				"BEGIN",
				fmt.Sprintf("INSERT INTO t (tag, i) VALUES (%d, 0), (%d, 1), (%d, 2), (%d, 3), (%d, 4)", g, g, g, g, g),
				"COMMIT",
			} {
				if _, err := s.ExecSQL(q); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	db.Close()

	walPath := filepath.Join(dir, walFileName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	crashDir := t.TempDir()
	step := 7 // every offset is slow; a small prime stride still hits frames mid-payload
	for cut := walHeaderLen; cut <= len(full); cut += step {
		if err := os.WriteFile(filepath.Join(crashDir, walFileName), full[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(crashDir, DurabilityOptions{NoFsync: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		res, err := db2.ExecSQL("SELECT tag, COUNT(*) FROM t GROUP BY tag")
		if err != nil {
			// The CREATE TABLE frame itself may be cut off: then the
			// table is simply absent, which is a valid whole-batch loss.
			if cut < walHeaderLen+100 {
				db2.Close()
				os.Remove(filepath.Join(crashDir, walFileName))
				os.Remove(filepath.Join(crashDir, lockFileName))
				continue
			}
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, row := range res.Rows {
			if row[1].I != rowsPerTxn {
				t.Fatalf("cut %d: tag %v has %v rows — transaction replayed partially", cut, row[0], row[1])
			}
		}
		db2.Close()
		os.Remove(filepath.Join(crashDir, walFileName))
		os.Remove(filepath.Join(crashDir, lockFileName))
	}
}

// TestSessionTxnDurability: a transaction committed through a session (and
// its attached metadata) survives reopen; a rolled-back one does not.
func TestSessionTxnDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	s := db.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO t (a) VALUES (1)")
	if _, err := s.ExecWithMeta(mustParse(t, "INSERT INTO t (a) VALUES (2)"), []byte("blob-v2")); err != nil {
		t.Fatal(err)
	}
	mustSess(t, s, "COMMIT")
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO t (a) VALUES (3)")
	mustSess(t, s, "ROLLBACK")
	s.Close()
	want := dump(t, db)
	db.Close()

	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dump(t, db2); got != want {
		t.Fatalf("recovered state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if string(db2.Meta()) != "blob-v2" {
		t.Fatalf("meta = %q, want blob-v2 (committed with the transaction)", db2.Meta())
	}
	res := mustExec(t, db2, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v, want 2", res.Rows[0][0])
	}
}

// TestCheckpointWithOpenTxn: a checkpoint taken while transactions are open
// captures only committed state, and the transactions commit durably on
// top of it.
func TestCheckpointWithOpenTxn(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")

	s := db.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO t (a) VALUES (2)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustSess(t, s, "COMMIT")
	s.Close()
	want := dump(t, db)
	db.Close()

	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dump(t, db2); got != want {
		t.Fatalf("recovered state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	res := mustExec(t, db2, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v, want 2", res.Rows[0][0])
	}
}

// TestEmptyOverlayDoesNotBlockCommit: a statement that matches zero rows
// registers a table with the transaction but buffers nothing; that must
// neither block DROP TABLE nor poison the eventual COMMIT.
func TestEmptyOverlayDoesNotBlockCommit(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (k INT)")
	mustExec(t, db, "CREATE TABLE u (k INT)")

	s := db.NewSession()
	defer s.Close()
	mustSess(t, s, "BEGIN")
	if res := mustSess(t, s, "UPDATE t SET k = 1 WHERE k = 999"); res.Affected != 0 {
		t.Fatalf("affected = %d, want 0", res.Affected)
	}
	mustExec(t, db, "DROP TABLE t") // nothing buffered: drop may proceed
	mustSess(t, s, "INSERT INTO u (k) VALUES (7)")
	mustSess(t, s, "COMMIT") // must not fail over the dropped, untouched t
	if res := mustExec(t, db, "SELECT COUNT(*) FROM u"); res.Rows[0][0].I != 1 {
		t.Fatalf("u rows = %v, want 1", res.Rows[0][0])
	}
}

// TestTxnMetaNotAttachedOnFailure: a failed ExecWithMeta inside a
// transaction must not leave its metadata blob to commit with the
// transaction — the blob describes a change that never applied.
func TestTxnMetaNotAttachedOnFailure(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (k INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO t (k) VALUES (1)")

	s := db.NewSession()
	mustSess(t, s, "BEGIN")
	if _, err := s.ExecWithMeta(mustParse(t, "INSERT INTO t (k) VALUES (2)"), []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Statement errors (bad column): its blob must be discarded.
	if _, err := s.ExecWithMeta(mustParse(t, "UPDATE t SET nosuch = 3"), []byte("bad")); err == nil {
		t.Fatal("update of missing column should fail")
	}
	mustSess(t, s, "COMMIT")
	if string(db.Meta()) != "good" {
		t.Fatalf("meta = %q, want the last successful statement's blob", db.Meta())
	}
	s.Close()
	db.Close()
	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if string(db2.Meta()) != "good" {
		t.Fatalf("recovered meta = %q, want good", db2.Meta())
	}
}

// TestWALPoisonedAfterWriteFailure: after a cohort write fails, the file
// may hold a torn frame, so later commits must fail fast instead of
// appending past the damage (recovery cuts at the first bad frame and
// would silently drop them despite their durability ack).
func TestWALPoisonedAfterWriteFailure(t *testing.T) {
	db, err := Open(t.TempDir(), DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")

	// Sabotage the file descriptor: the next cohort write errors.
	db.wal.f.Close()
	var de *DurabilityError
	if _, err := db.ExecSQL("INSERT INTO t (a) VALUES (2)"); !errors.As(err, &de) {
		t.Fatalf("write after fd close: err = %v, want DurabilityError", err)
	}
	// And every commit after that fails fast on the poisoned writer.
	if _, err := db.ExecSQL("INSERT INTO t (a) VALUES (3)"); !errors.As(err, &de) ||
		!strings.Contains(err.Error(), "disabled by earlier write failure") {
		t.Fatalf("write on poisoned wal: err = %v, want sticky failure", err)
	}
	// In-memory state kept both rows (statement applied, durability did
	// not) — the documented DurabilityError contract.
	if res := mustExec(t, db, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 3 {
		t.Fatalf("rows = %v, want 3", res.Rows[0][0])
	}
}
