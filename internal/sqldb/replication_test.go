package sqldb

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// collectFrames drains a tap until the database's frames reach wantSeq,
// with a timeout so a broken tap fails the test instead of hanging.
func collectFrames(t *testing.T, tap *LogTap, wantSeq uint64) [][]byte {
	t.Helper()
	var frames [][]byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		var last uint64
		if len(frames) > 0 {
			last, _ = FrameSeq(frames[len(frames)-1])
		}
		if last >= wantSeq {
			return frames
		}
		if time.Now().After(deadline) {
			t.Fatalf("tap did not reach seq %d (at %d)", wantSeq, last)
		}
		done := make(chan struct{})
		var blob []byte
		var err error
		go func() { blob, err = tap.Frames(); close(done) }()
		select {
		case <-done:
		case <-time.After(time.Until(deadline)):
			t.Fatalf("tap.Frames blocked; have %d frames, want seq %d", len(frames), wantSeq)
		}
		if err != nil {
			t.Fatalf("tap.Frames: %v", err)
		}
		split, serr := SplitFrames(blob)
		if serr != nil {
			t.Fatalf("SplitFrames: %v", serr)
		}
		frames = append(frames, split...)
	}
}

// replayInto applies frames to a database, failing on any error.
func replayInto(t *testing.T, db *DB, frames [][]byte) {
	t.Helper()
	for _, f := range frames {
		if err := db.ApplyReplicatedFrame(f); err != nil {
			t.Fatalf("ApplyReplicatedFrame: %v", err)
		}
	}
}

// TestTapBackfillAndLive covers the log-tail catch-up path: a tap opened
// at sequence zero yields the frames already on disk, then live commits,
// and replaying all of them on a second database reproduces the state
// exactly (digest, rows and meta).
func TestTapBackfillAndLive(t *testing.T) {
	prim, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	mustExec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, prim, "INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")
	if err := prim.SetMeta([]byte("meta-1")); err != nil {
		t.Fatal(err)
	}

	tap, err := prim.TapWAL(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	// Live commits after the tap exists.
	mustExec(t, prim, "UPDATE t SET v = 'a2' WHERE id = 1")
	mustExec(t, prim, "DELETE FROM t WHERE id = 2")
	mustExec(t, prim, "CREATE INDEX t_v ON t (v)")

	frames := collectFrames(t, tap, prim.Seq())
	// Frames must be strictly increasing in sequence.
	var prev uint64
	for _, f := range frames {
		seq, err := FrameSeq(f)
		if err != nil {
			t.Fatal(err)
		}
		if seq <= prev {
			t.Fatalf("frame seq %d not increasing after %d", seq, prev)
		}
		prev = seq
	}

	fol, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	replayInto(t, fol, frames)
	if got, want := fol.StateDigest(), prim.StateDigest(); got != want {
		t.Fatalf("digest mismatch after replay:\n got %s\nwant %s", got, want)
	}
	if !bytes.Equal(fol.Meta(), []byte("meta-1")) {
		t.Fatalf("meta not replicated: %q", fol.Meta())
	}
	if fol.Seq() != prim.Seq() {
		t.Fatalf("seq mismatch: follower %d, primary %d", fol.Seq(), prim.Seq())
	}
}

// TestTapSeqTruncated proves a checkpoint invalidates old positions: a
// tap request from before the snapshot fails with ErrSeqTruncated, and
// TapWithSnapshot hands over a state+tail pair that reproduces the
// primary exactly.
func TestTapSeqTruncated(t *testing.T) {
	prim, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	mustExec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, prim, "INSERT INTO t (id, v) VALUES (1, 10)")
	if err := prim.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.TapWAL(0); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("TapWAL(0) after checkpoint: got %v, want ErrSeqTruncated", err)
	}
	// Ahead-of-primary positions are also truncations (diverged caller).
	if _, err := prim.TapWAL(prim.Seq() + 100); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("TapWAL(ahead): got %v, want ErrSeqTruncated", err)
	}

	ops, seq, tap, err := prim.TapWithSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	mustExec(t, prim, "INSERT INTO t (id, v) VALUES (2, 20)")

	fol, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	if err := fol.ResetFromSnapshot(ops, seq); err != nil {
		t.Fatal(err)
	}
	replayInto(t, fol, collectFrames(t, tap, prim.Seq()))
	if fol.StateDigest() != prim.StateDigest() {
		t.Fatal("digest mismatch after snapshot + tail replay")
	}

	// The follower must itself be durable: reopen from its own disk.
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
	dir := fol.dir
	fol2, err := Open(dir, DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fol2.Close()
	if fol2.StateDigest() != prim.StateDigest() {
		t.Fatal("digest mismatch after follower restart")
	}
	if fol2.Seq() != prim.Seq() {
		t.Fatalf("restarted follower seq %d, primary %d", fol2.Seq(), prim.Seq())
	}
}

// TestApplyReplicatedFrameRejectsDamage is the torn-stream surface at the
// replay layer: corrupt, truncated or undecodable frames must be refused
// with the state untouched, and redelivered (stale) frames skipped.
func TestApplyReplicatedFrameRejectsDamage(t *testing.T) {
	prim, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	tap, err := prim.TapWAL(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	mustExec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, prim, "INSERT INTO t (id) VALUES (1)")
	frames := collectFrames(t, tap, prim.Seq())

	fol := New() // in-memory follower: replay works without local durability too
	base := fol.StateDigest()

	// Flipped payload byte: CRC must catch it.
	bad := append([]byte(nil), frames[0]...)
	bad[len(bad)-1] ^= 0xFF
	if err := fol.ApplyReplicatedFrame(bad); err == nil {
		t.Fatal("corrupt frame applied")
	}
	// Truncated frame: length check must catch it.
	if err := fol.ApplyReplicatedFrame(frames[0][:len(frames[0])-3]); err == nil {
		t.Fatal("truncated frame applied")
	}
	if fol.StateDigest() != base {
		t.Fatal("damaged frames changed state")
	}

	replayInto(t, fol, frames)
	want := fol.StateDigest()
	// Redelivery of everything must be a no-op.
	replayInto(t, fol, frames)
	if fol.StateDigest() != want {
		t.Fatal("redelivered frames changed state")
	}

	// A frame whose ops cannot apply (unknown table) must fail atomically:
	// frame 2 references table t before its CREATE on a fresh database.
	fresh := New()
	if err := fresh.ApplyReplicatedFrame(frames[1]); err == nil {
		t.Fatal("out-of-order frame applied against missing table")
	}
	if fresh.StateDigest() != base {
		t.Fatal("failed apply left partial state")
	}
}

// TestTapBackpressure forces a tap over its buffer limit and checks the
// lag verdict, instead of letting a stalled subscriber pin the primary's
// memory.
func TestTapBackpressure(t *testing.T) {
	prim, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	mustExec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	tap, err := prim.TapWAL(prim.Seq())
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	tap.mu.Lock()
	tap.limit = 256 // shrink the buffer so the test overflows it quickly
	tap.mu.Unlock()
	for i := 0; i < 32; i++ {
		mustExec(t, prim, "INSERT INTO t (id, v) VALUES (?, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx')", Int(int64(i)))
	}
	if _, err := tap.Frames(); !errors.Is(err, ErrTapLagged) {
		t.Fatalf("overflowed tap: got %v, want ErrTapLagged", err)
	}
}

// TestResetFromSnapshotAtomicity: a malformed stream leaves the database
// untouched; open transactions block a reset.
func TestResetFromSnapshotAtomicity(t *testing.T) {
	db, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE keep (id INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO keep (id) VALUES (7)")
	want := db.StateDigest()

	if err := db.ResetFromSnapshot([]byte{0xFE, 0x01, 0x02}, 99); err == nil {
		t.Fatal("malformed snapshot stream accepted")
	}
	if db.StateDigest() != want {
		t.Fatal("failed reset changed state")
	}

	sess := db.NewSession()
	defer sess.Close()
	if _, err := sess.ExecSQL("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecSQL("INSERT INTO keep (id) VALUES (8)"); err != nil {
		t.Fatal(err)
	}
	src := New()
	if _, err := src.ExecSQL("CREATE TABLE other (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	src.mu.RLock()
	ops := src.snapshotOps()
	src.mu.RUnlock()
	if err := db.ResetFromSnapshot(ops, 100); err == nil {
		t.Fatal("reset succeeded with an open transaction")
	}
	if _, err := sess.ExecSQL("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if err := db.ResetFromSnapshot(ops, 100); err != nil {
		t.Fatalf("reset after rollback: %v", err)
	}
	if db.Seq() != 100 {
		t.Fatalf("seq after reset: %d", db.Seq())
	}
	if db.StateDigest() != src.StateDigest() {
		t.Fatal("reset state does not match source")
	}
}

// TestMetaVersionAdvances checks the change detector the follower proxy
// polls: every committed metadata transition bumps it, ordinary writes do
// not.
func TestMetaVersionAdvances(t *testing.T) {
	db, err := Open(t.TempDir(), DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	v0 := db.MetaVersion()
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY)")
	if db.MetaVersion() != v0 {
		t.Fatal("DDL bumped meta version")
	}
	if err := db.SetMeta([]byte("m1")); err != nil {
		t.Fatal(err)
	}
	if db.MetaVersion() != v0+1 {
		t.Fatalf("SetMeta: version %d, want %d", db.MetaVersion(), v0+1)
	}
	st := mustParse(t, "INSERT INTO t (id) VALUES (1)")
	if _, err := db.ExecWithMeta(st, []byte("m2")); err != nil {
		t.Fatal(err)
	}
	if db.MetaVersion() != v0+2 {
		t.Fatalf("ExecWithMeta: version %d, want %d", db.MetaVersion(), v0+2)
	}
}
