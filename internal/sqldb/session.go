// Per-connection sessions and concurrent transactions.
//
// The seed serialized every transaction behind one global mutex: BEGIN
// latched the whole database, matching the paper's single-writer evaluation
// but not production traffic. A Session is the unit of concurrency instead:
// the server opens one per TCP connection, and each session may hold its own
// open transaction.
//
// A transaction never mutates the shared tables while open. Its writes
// accumulate in a private buffer (per-table slot overlay plus pending
// inserts) that the session's own statements read through — read your
// writes — while every other session keeps reading committed state.
// Write-write conflicts are detected eagerly, first writer wins: the first
// transaction to write a row slot owns it until commit or rollback, and any
// other transaction (or autocommit statement) that tries to write the same
// slot fails with a WriteConflictError instead of blocking. COMMIT applies
// the buffer to the shared tables atomically under a short critical section
// (the database write lock), re-validating UNIQUE constraints against the
// then-current state — first committer wins for constraint conflicts — and
// then makes the batch durable through the WAL's group commit, off the
// database lock, so concurrent committers share fsyncs.
//
// What this buys and what it gives up: committed effects of row-level
// read-modify-write statements (UPDATE t SET x = x + 1 WHERE ...) are
// serializable, because the expression is evaluated against committed state
// at the moment the slot lock is taken and the slot cannot change
// underneath the owner. Plain reads take no locks, so a transaction that
// SELECTs a value and writes it back in a later statement can still lose a
// concurrent update — the stress tests (and the documented contract) use
// single-statement RMW for contended rows. UNIQUE violations inside a
// transaction surface at COMMIT, which then rolls the transaction back as a
// unit. DDL never rides a transaction: it executes and becomes durable
// immediately, as in the seed.
package sqldb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqlparser"
)

// WriteConflictError reports that a statement tried to write a row slot
// owned by another open transaction (first writer wins). The losing side
// should ROLLBACK and retry; nothing of the failing statement was applied.
type WriteConflictError struct {
	Table string
	Slot  int
}

// Error implements the error interface.
func (e *WriteConflictError) Error() string {
	return fmt.Sprintf("sqldb: write conflict: row %d of %s is locked by a concurrent transaction", e.Slot, e.Table)
}

// Session is one client's execution context: an optional open transaction
// plus the statement entry points. Statements from different sessions run
// concurrently (reads in parallel, writes serialized by the database lock
// but overlapping in the WAL's group commit); statements within one session
// execute in order. A Session must be Closed when its connection goes away:
// Close rolls back any open transaction, releasing its row locks.
type Session struct {
	db *DB

	mu     sync.Mutex // guards txn and closed
	txn    *Txn
	closed bool
}

// NewSession creates an independent session on db.
func (db *DB) NewSession() *Session {
	return &Session{db: db}
}

// Close releases the session, rolling back any open transaction. Further
// statements on the session fail. Safe to call more than once.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.txn != nil {
		s.rollbackLocked()
	}
	return nil
}

// InTxn reports whether the session has an open transaction.
func (s *Session) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txn != nil
}

// TxnMetaPending reports whether the open transaction carries a metadata
// blob that will commit with it. The proxy uses this to re-seal fresh
// metadata at COMMIT time (see the CommitStmt case in exec).
func (s *Session) TxnMetaPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txn != nil && s.txn.meta != nil
}

// ExecSQL parses and executes one statement on this session.
func (s *Session) ExecSQL(sql string, params ...Value) (*Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Exec(st, params...)
}

// Exec executes a parsed statement on this session.
func (s *Session) Exec(st sqlparser.Statement, params ...Value) (*Result, error) {
	return s.exec(st, nil, params)
}

// ExecWithMeta executes a write statement with an attached metadata blob
// (see DB.ExecWithMeta). Inside an open transaction the blob commits with
// the transaction's WAL batch — durable iff the transaction's writes are.
func (s *Session) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...Value) (*Result, error) {
	return s.exec(st, meta, params)
}

func (s *Session) exec(st sqlparser.Statement, meta []byte, params []Value) (*Result, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("sqldb: session is closed")
	}
	s.mu.Unlock()
	switch x := st.(type) {
	case *sqlparser.BeginStmt:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return nil, fmt.Errorf("sqldb: session is closed")
		}
		if s.txn != nil {
			return nil, fmt.Errorf("sqldb: BEGIN inside an open transaction")
		}
		s.txn = newTxn(s.db)
		s.db.registerTxn(s.txn)
		return &Result{}, nil
	case *sqlparser.CommitStmt:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.txn != nil && meta != nil {
			// A blob passed with COMMIT supersedes any statement-time
			// blob: the proxy re-seals its *current* metadata here, so
			// the committed blob can never be older than one an onion
			// adjustment committed while this transaction was open.
			s.txn.meta = append([]byte(nil), meta...)
		}
		return s.commitLocked()
	case *sqlparser.RollbackStmt:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.txn == nil {
			return nil, fmt.Errorf("sqldb: ROLLBACK outside a transaction")
		}
		s.rollbackLocked()
		return &Result{}, nil
	case *sqlparser.SelectStmt:
		// touchesFrom reads the transaction's table map, which writes on
		// this session mutate under s.mu — so probe it under s.mu too,
		// then run the statement without it (reads stay concurrent).
		s.mu.Lock()
		txn := s.txn
		overlay := txn != nil && txn.touchesFrom(x.From)
		s.mu.Unlock()
		if overlay {
			// readStatement: a transactional read only consults shared pages
			// and the private buffer, and a page fault must surface as an
			// error, not a panic.
			return s.db.readStatement(func() (*Result, error) { return txn.execSelect(x, params) })
		}
		return s.db.execStateless(st, meta, params)
	case *sqlparser.InsertStmt:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.txn != nil {
			res, err := s.db.readStatement(func() (*Result, error) { return s.txn.execInsert(x, params) })
			s.txn.attachMeta(meta, err)
			return res, err
		}
		return s.db.execStateless(st, meta, params)
	case *sqlparser.UpdateStmt:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.txn != nil {
			res, err := s.db.readStatement(func() (*Result, error) { return s.txn.execUpdate(x, params) })
			s.txn.attachMeta(meta, err)
			return res, err
		}
		return s.db.execStateless(st, meta, params)
	case *sqlparser.DeleteStmt:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.txn != nil {
			res, err := s.db.readStatement(func() (*Result, error) { return s.txn.execDelete(x, params) })
			s.txn.attachMeta(meta, err)
			return res, err
		}
		return s.db.execStateless(st, meta, params)
	default:
		// DDL and everything else: never transactional, executes and
		// becomes durable immediately (as in the seed, where DDL was not
		// undo-logged and survived ROLLBACK).
		return s.db.execStateless(st, meta, params)
	}
}

//
// Transaction state
//

// Txn is one open transaction: a private, per-table write buffer layered
// over the shared tables. Nothing in it is visible to other sessions until
// commit applies it under the database write lock.
type Txn struct {
	db     *DB
	tables map[string]*txnTable
	meta   []byte // latest ExecWithMeta blob; commits with the batch
}

// txnTable is the overlay for one table the transaction has written.
type txnTable struct {
	t    *Table
	mods map[int]*txnRow // base slot -> replacement (or tombstone)
	ins  []*txnRow       // rows this transaction inserted
}

// txnRow is one buffered row version.
type txnRow struct {
	row     []Value
	deleted bool
}

func newTxn(db *DB) *Txn {
	return &Txn{db: db, tables: make(map[string]*txnTable)}
}

// attachMeta records a statement's metadata blob for commit — only when
// the statement actually applied. A failed statement must not leave its
// blob behind: the metadata describes a state change that never happened.
func (txn *Txn) attachMeta(meta []byte, err error) {
	if err == nil && meta != nil {
		txn.meta = append([]byte(nil), meta...)
	}
}

// touchesFrom reports whether any table in a FROM list has overlay state,
// deciding between the shared fast path and the merged-view path.
func (txn *Txn) touchesFrom(from []sqlparser.TableRef) bool {
	for _, ref := range from {
		if tt := txn.tables[ref.Table]; tt != nil && (len(tt.mods) > 0 || len(tt.ins) > 0) {
			return true
		}
	}
	return false
}

// table returns (creating if needed) the overlay for t.
func (txn *Txn) table(t *Table) *txnTable {
	tt := txn.tables[t.Name]
	if tt == nil {
		tt = &txnTable{t: t, mods: make(map[int]*txnRow)}
		txn.tables[t.Name] = tt
	}
	return tt
}

//
// Merged views. A statement that must see the transaction's own writes
// executes against a merged copy of each touched table: committed rows at
// their real slots (with this transaction's modifications applied), pending
// inserts placed after them. Untouched tables are shared as-is. The copy
// costs O(rows) per touched table per statement — the steady state
// (autocommit, or transactions over tables they have not written yet) never
// pays it.
//

// mergedTable materializes the overlay view of one table. insAt maps merged
// slots back to the pending insert they shadow; any other slot is a base
// slot. Callers hold db.mu (read suffices).
func (txn *Txn) mergedTable(t *Table) (*Table, map[int]*txnRow) {
	tt := txn.tables[t.Name]
	if tt == nil || (len(tt.mods) == 0 && len(tt.ins) == 0) {
		return t, nil
	}
	return txn.buildMerged(t, tt)
}

// buildMerged copies t with tt's overlay applied. Split out so execInsert
// can force a private staging copy even while the overlay is still empty.
func (txn *Txn) buildMerged(t *Table, tt *txnTable) (*Table, map[int]*txnRow) {
	mt := newTable(t.Name, t.Cols)
	for col, idx := range t.indexes {
		// Unique enforcement is deferred to commit; the merged view only
		// needs the access paths, so uniqueness is dropped here (the
		// overlay may transiently duplicate a key it also deletes).
		if err := mt.addIndex(col, false); err != nil {
			panic(err) // column exists by construction
		}
		_ = idx
	}
	for col := range t.ordIndexes {
		if err := mt.addOrdIndex(col); err != nil {
			panic(err)
		}
	}
	t.scan(func(slot int, row []Value) bool {
		if m, ok := tt.mods[slot]; ok {
			if m.deleted {
				return true
			}
			row = m.row
		}
		if err := mt.placeRow(slot, row); err != nil {
			panic(err) // slots are unique by construction
		}
		return true
	})
	insAt := make(map[int]*txnRow, len(tt.ins))
	next := t.slotCount()
	for _, tr := range tt.ins {
		if tr.deleted {
			continue
		}
		if err := mt.placeRow(next, tr.row); err != nil {
			panic(err)
		}
		insAt[next] = tr
		next++
	}
	return mt, insAt
}

// viewDB wraps the shared database in a table map where every table the
// transaction touched is replaced by its merged view. The expensive shared
// pieces (UDF registries) are aliased, not copied. Callers hold db.mu.
func (txn *Txn) viewDB() *DB {
	view := &DB{
		tables:      make(map[string]*Table, len(txn.db.tables)),
		udfs:        txn.db.udfs,
		aggUDFs:     txn.db.aggUDFs,
		noCompile:   atomic.LoadInt32(&txn.db.noCompile),
		execWorkers: atomic.LoadInt32(&txn.db.execWorkers),
	}
	for name, t := range txn.db.tables {
		if tt := txn.tables[name]; tt != nil && (len(tt.mods) > 0 || len(tt.ins) > 0) {
			mt, _ := txn.mergedTable(t)
			view.tables[name] = mt
		} else {
			view.tables[name] = t
		}
	}
	return view
}

//
// Statement execution inside a transaction
//

func (txn *Txn) execSelect(s *sqlparser.SelectStmt, params []Value) (*Result, error) {
	db := txn.db
	defer db.trackBusy(time.Now())
	db.mu.RLock()
	defer db.mu.RUnlock()
	view := txn.viewDB()
	res, err := view.execSelect(s, params)
	// The view is a throwaway copy, so planner and morsel counters landed
	// on it; fold them into the shared database so transactional reads show
	// up in PlanCounters / Stats like autocommit reads do.
	db.absorbCounters(view)
	return res, err
}

func (txn *Txn) execInsert(s *sqlparser.InsertStmt, params []Value) (*Result, error) {
	db := txn.db
	defer db.trackBusy(time.Now())
	// The read lock suffices: a transactional statement mutates only its
	// private buffer, and slot locks live in the striped lock table with
	// its own synchronization. Only commit (and autocommit writes, DDL)
	// take the write lock.
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	positions, err := insertPositions(t, s)
	if err != nil {
		return nil, err
	}
	tt := txn.table(t)
	// Always a private copy, even while the overlay is empty: the rows
	// staged below must not land in the shared table.
	mt, _ := txn.buildMerged(t, tt)
	sc := &scope{}
	sc.addTable("", t)
	// Stage every row before publishing any into the overlay, so an error
	// leaves the transaction's buffer exactly as it was (statement
	// atomicity). Uniqueness is pre-checked against the merged view — the
	// authoritative check re-runs at COMMIT against then-current state.
	staged := make([]*txnRow, 0, len(s.Rows))
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("sqldb: INSERT has %d values for %d columns", len(exprRow), len(positions))
		}
		row := make([]Value, len(t.Cols))
		for i := range row {
			row[i] = Null()
		}
		for i, e := range exprRow {
			ctx := &evalCtx{db: db, scope: sc, tup: nil, params: params}
			v, err := ctx.eval(e)
			if err != nil {
				return nil, err
			}
			row[positions[i]] = v
		}
		for _, idx := range t.indexes {
			if idx.unique && len(mt.indexes[idx.column].m[row[idx.pos].Key()]) > 0 {
				return nil, fmt.Errorf("sqldb: unique index violation on %s.%s", t.Name, idx.column)
			}
		}
		if _, err := mt.insertRow(row); err != nil {
			return nil, err
		}
		staged = append(staged, &txnRow{row: row})
	}
	tt.ins = append(tt.ins, staged...)
	return &Result{Affected: len(staged)}, nil
}

func (txn *Txn) execUpdate(s *sqlparser.UpdateStmt, params []Value) (*Result, error) {
	db := txn.db
	defer db.trackBusy(time.Now())
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	targets := make([]int, len(s.Assignments))
	for i, a := range s.Assignments {
		pos := t.ColumnIndex(a.Column)
		if pos < 0 {
			return nil, fmt.Errorf("sqldb: no column %s.%s", s.Table, a.Column)
		}
		targets[i] = pos
	}
	mt, insAt := txn.mergedTable(t)
	sc := &scope{}
	sc.addTable("", mt)
	slots, err := db.matchSlots(mt, sc, s.Where, params)
	if err != nil {
		return nil, err
	}
	// Phase 1 — evaluate every new row, mutating nothing: an evaluation
	// error must leave both the overlay and the lock table untouched. The
	// owner probe here is advisory (fast fail); the authoritative claim is
	// the tryLock in phase 2, which arbitrates races with transactions
	// running concurrently under the read lock.
	type pendingMod struct {
		slot   int // base slot, or merged slot of a pending insert
		tr     *txnRow
		newRow []Value
	}
	var mods []pendingMod
	for _, slot := range slots {
		row := mt.rowAt(slot)
		if row == nil {
			continue
		}
		newVals := make([]Value, len(s.Assignments))
		for i, a := range s.Assignments {
			ctx := &evalCtx{db: db, scope: sc, tup: tuple{row}, params: params}
			v, err := ctx.eval(a.Value)
			if err != nil {
				return nil, err
			}
			newVals[i] = v
		}
		newRow := append([]Value(nil), row...)
		for i, pos := range targets {
			newRow[pos] = newVals[i]
		}
		if tr, pending := insAt[slot]; pending {
			mods = append(mods, pendingMod{slot: slot, tr: tr, newRow: newRow})
			continue
		}
		if owner := db.locks.owner(t, slot); owner != nil && owner != txn {
			return nil, &WriteConflictError{Table: t.Name, Slot: slot}
		}
		mods = append(mods, pendingMod{slot: slot, newRow: newRow})
	}
	// Phase 2a — claim every base-slot lock. A conflict releases exactly
	// the locks this statement acquired (not ones the transaction already
	// held from earlier statements) and buffers nothing.
	if err := lockSlots(txn, t, mods, func(m pendingMod) (int, bool) {
		return m.slot, m.tr == nil
	}); err != nil {
		return nil, err
	}
	// Phase 2b — nothing can fail now: buffer the rows.
	tt := txn.table(t)
	for _, m := range mods {
		if m.tr != nil {
			m.tr.row = m.newRow
			continue
		}
		tt.mods[m.slot] = &txnRow{row: m.newRow}
	}
	return &Result{Affected: len(mods)}, nil
}

// lockSlots claims the base-table slots that sel reports for each element,
// first-writer-wins. On conflict it releases the locks acquired by this
// call and returns a WriteConflictError; locks the transaction held before
// the call stay held.
func lockSlots[T any](txn *Txn, t *Table, items []T, sel func(T) (int, bool)) error {
	db := txn.db
	var acquired []int
	for _, it := range items {
		slot, lock := sel(it)
		if !lock {
			continue
		}
		ok, fresh := db.locks.tryLock(t, slot, txn)
		if !ok {
			for _, s := range acquired {
				db.locks.unlock(t, s, txn)
			}
			return &WriteConflictError{Table: t.Name, Slot: slot}
		}
		if fresh {
			acquired = append(acquired, slot)
		}
	}
	return nil
}

func (txn *Txn) execDelete(s *sqlparser.DeleteStmt, params []Value) (*Result, error) {
	db := txn.db
	defer db.trackBusy(time.Now())
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	mt, insAt := txn.mergedTable(t)
	sc := &scope{}
	sc.addTable("", mt)
	slots, err := db.matchSlots(mt, sc, s.Where, params)
	if err != nil {
		return nil, err
	}
	// Same two phases as UPDATE: claim every lock (conflicts release just
	// this statement's acquisitions), then buffer.
	if err := lockSlots(txn, t, slots, func(slot int) (int, bool) {
		_, pending := insAt[slot]
		return slot, !pending
	}); err != nil {
		return nil, err
	}
	tt := txn.table(t)
	affected := 0
	for _, slot := range slots {
		if tr, pending := insAt[slot]; pending {
			tr.deleted = true
			affected++
			continue
		}
		tt.mods[slot] = &txnRow{deleted: true}
		affected++
	}
	return &Result{Affected: affected}, nil
}

//
// Commit / rollback
//

// commitLocked applies the transaction under the database write lock, then
// makes its WAL batch durable via group commit off the lock. On a
// constraint violation during apply the transaction is rolled back in full
// and the error reports that. Callers hold s.mu.
func (s *Session) commitLocked() (*Result, error) {
	txn := s.txn
	if txn == nil {
		return nil, fmt.Errorf("sqldb: COMMIT outside a transaction")
	}
	db := s.db
	defer db.trackBusy(time.Now())
	if db.wal != nil {
		// Announce before taking the lock, so a flushing leader holds its
		// cohort open for this transaction's batch.
		db.wal.announce()
		defer db.wal.retire()
	}

	db.mu.Lock()
	ops, err := txn.applyLocked()
	if err != nil {
		var cohort *walCohort
		if _, faulted := err.(*PageFaultError); faulted && db.wal != nil && len(ops) > 0 {
			// A page fault aborted the apply midway: the effects before the
			// fault are in the shared tables and cannot be cleanly reverted
			// (reverting may fault again). Commit their redo so the log
			// tracks memory, and surface the fault as the primary error.
			db.walSeq++
			cohort = db.wal.enqueue(db.walSeq, ops)
		}
		txn.releaseLocked()
		db.mu.Unlock()
		s.txn = nil
		if cohort != nil {
			if werr := db.wal.waitFlush(cohort); werr != nil {
				return nil, &DurabilityError{Err: werr}
			}
			return nil, err
		}
		return nil, fmt.Errorf("sqldb: COMMIT failed, transaction rolled back: %w", err)
	}
	if txn.meta != nil {
		if db.wal != nil {
			ops = appendMetaOp(ops, txn.meta)
		}
		db.meta = append([]byte(nil), txn.meta...)
		atomic.AddUint64(&db.metaVer, 1)
	}
	var cohort *walCohort
	if db.wal != nil && len(ops) > 0 {
		db.walSeq++
		// Enqueue while still holding db.mu: the WAL file must stay in
		// sequence (= dependency) order. The fsync happens off the lock.
		cohort = db.wal.enqueue(db.walSeq, ops)
	}
	txn.releaseLocked()
	db.mu.Unlock()
	s.txn = nil

	if cohort != nil {
		if werr := db.wal.waitFlush(cohort); werr != nil {
			// The in-memory state committed; only durability failed.
			return &Result{}, &DurabilityError{Err: werr}
		}
		db.maybeAutoCheckpoint()
		db.cachePressure()
	}
	return &Result{}, nil
}

// rollbackLocked discards the transaction and releases its slot locks.
// Callers hold s.mu.
func (s *Session) rollbackLocked() {
	txn := s.txn
	s.txn = nil
	db := s.db
	db.mu.Lock()
	txn.releaseLocked()
	db.mu.Unlock()
}

// releaseLocked frees the transaction's slot locks and deregisters it.
// Callers hold db.mu.
func (txn *Txn) releaseLocked() {
	for _, tt := range txn.tables {
		for slot := range tt.mods {
			txn.db.locks.unlock(tt.t, slot, txn)
		}
	}
	delete(txn.db.openTxns, txn)
}

// applyLocked installs the write buffer into the shared tables and returns
// the encoded redo ops, in a deterministic order (sorted table names;
// deletes, then modifications, then inserts — so a transaction that deletes
// a unique key and re-inserts it commits cleanly). On constraint violation
// everything already applied is undone and an error returned; the shared
// state is then exactly as before the commit attempt. Callers hold db.mu.
func (txn *Txn) applyLocked() (ops []byte, err error) {
	// A paged table can fail to fault a page in mid-apply. No revert is
	// attempted (reverting may fault again): the effects encoded in ops so
	// far are in the shared tables, and the caller commits their redo so the
	// log stays in lockstep with memory.
	defer catchPageFault(&err)
	type undoRec struct {
		kind int // 0 = re-place deleted row, 1 = revert cell, 2 = remove inserted row
		t    *Table
		slot int
		pos  int
		row  []Value
		old  Value
	}
	var undo []undoRec
	revert := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			u := undo[i]
			switch u.kind {
			case 0:
				u.t.placeRow(u.slot, u.row) //nolint:errcheck // slot was just freed
			case 1:
				u.t.updateCellUnchecked(u.slot, u.pos, u.old)
			case 2:
				u.t.deleteRow(u.slot)
			}
		}
	}

	names := make([]string, 0, len(txn.tables))
	for n := range txn.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		tt := txn.tables[name]
		if len(tt.mods) == 0 && len(tt.ins) == 0 {
			continue // touched but nothing buffered (zero-row statements)
		}
		t := tt.t
		if txn.db.tables[name] != t {
			revert()
			return nil, fmt.Errorf("sqldb: table %s was dropped during the transaction", name)
		}
		slots := make([]int, 0, len(tt.mods))
		for slot := range tt.mods {
			slots = append(slots, slot)
		}
		sort.Ints(slots)
		// Deletes first.
		for _, slot := range slots {
			m := tt.mods[slot]
			if !m.deleted {
				continue
			}
			if row := t.deleteRow(slot); row != nil {
				undo = append(undo, undoRec{kind: 0, t: t, slot: slot, row: row})
				if txn.db.wal != nil {
					ops = appendDeleteOp(ops, t.Name, slot)
				}
			}
		}
		// Then cell modifications (only cells that changed).
		for _, slot := range slots {
			m := tt.mods[slot]
			if m.deleted {
				continue
			}
			row := t.rowAt(slot)
			if row == nil {
				continue // deleted by this txn via an earlier mod? cannot happen: one mod per slot
			}
			for pos := range m.row {
				old := row[pos]
				if equalValue(old, m.row[pos]) {
					continue
				}
				if cerr := t.checkUpdateUnique(slot, pos, m.row[pos]); cerr != nil {
					revert()
					return nil, cerr
				}
				t.updateCellUnchecked(slot, pos, m.row[pos])
				undo = append(undo, undoRec{kind: 1, t: t, slot: slot, pos: pos, old: old})
				if txn.db.wal != nil {
					ops = appendUpdateOp(ops, t.Name, slot, pos, m.row[pos])
				}
			}
		}
		// Inserts last.
		for _, tr := range tt.ins {
			if tr.deleted {
				continue
			}
			slot, ierr := t.insertRow(tr.row)
			if ierr != nil {
				revert()
				return nil, ierr
			}
			undo = append(undo, undoRec{kind: 2, t: t, slot: slot})
			if txn.db.wal != nil {
				ops = appendInsertOp(ops, t.Name, slot, tr.row)
			}
		}
	}
	return ops, nil
}

// equalValue compares two values for exact (non-coercing) equality.
func equalValue(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	return a.Key() == b.Key()
}

// insertPositions maps an INSERT's column list (or the full schema) to
// column positions.
func insertPositions(t *Table, s *sqlparser.InsertStmt) ([]int, error) {
	if len(s.Columns) == 0 {
		positions := make([]int, len(t.Cols))
		for i := range t.Cols {
			positions[i] = i
		}
		return positions, nil
	}
	positions := make([]int, len(s.Columns))
	for i, name := range s.Columns {
		pos := t.ColumnIndex(name)
		if pos < 0 {
			return nil, fmt.Errorf("sqldb: no column %s.%s", t.Name, name)
		}
		positions[i] = pos
	}
	return positions, nil
}
