package sqldb

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/sqlparser"
)

func (db *DB) execSelect(s *sqlparser.SelectStmt, params []Value) (*Result, error) {
	sc := &scope{}
	for _, ref := range s.From {
		t, ok := db.tables[ref.Table]
		if !ok {
			return nil, fmt.Errorf("sqldb: no table %s", ref.Table)
		}
		sc.addTable(ref.Alias, t)
	}

	// Detect aggregation anywhere in the projection / HAVING / ORDER BY,
	// up front so the index fast paths know the query shape.
	var aggCalls []*sqlparser.FuncCall
	for _, se := range s.Exprs {
		if !se.Star {
			collectAggCalls(db, se.Expr, &aggCalls)
		}
	}
	if s.Having != nil {
		collectAggCalls(db, s.Having, &aggCalls)
	}
	for _, o := range s.OrderBy {
		collectAggCalls(db, o.Expr, &aggCalls)
	}

	if len(s.GroupBy) == 0 {
		if len(aggCalls) > 0 {
			if res, ok, err := db.tryIndexMinMax(s, sc, params); ok {
				return res, err
			}
		} else if res, ok, err := db.tryOrderedSelect(s, sc, params); ok {
			return res, err
		}
	}

	// General path: lower the plan into the compiled operator pipeline
	// (compile.go / exec.go) when every piece is within the compiler's
	// coverage, else interpret the AST row by row. The index fast paths
	// above count separately (orderedScans / minMaxFast).
	if db.compiledExecEnabled() {
		if cp, ok := db.compileSelect(s, sc, aggCalls, params); ok {
			atomic.AddInt64(&db.compiledSel, 1)
			return cp.run()
		}
	}
	atomic.AddInt64(&db.interpSel, 1)

	tuples, err := db.produceTuples(s, sc, params)
	if err != nil {
		return nil, err
	}

	if len(s.GroupBy) > 0 || len(aggCalls) > 0 {
		return db.selectGrouped(s, sc, tuples, aggCalls, params)
	}
	return db.selectPlain(s, sc, tuples, params)
}

// tryOrderedSelect serves single-table, non-aggregate SELECTs whose ORDER
// BY is one indexed column straight from the ordered index: rows stream out
// in index order (no materialize-then-sort), a sargable range on the same
// column bounds the walk, and a LIMIT terminates it early (§3.3: ORDER BY,
// LIMIT run on OPE ciphertexts using ordinary ordered indexes). Returns
// ok=false to fall back to the general path.
func (db *DB) tryOrderedSelect(s *sqlparser.SelectStmt, sc *scope, params []Value) (*Result, bool, error) {
	if len(sc.tabs) != 1 || s.Having != nil || len(s.OrderBy) != 1 {
		return nil, false, nil
	}
	items := db.resolveOrderBy(s)
	cr, ok := items[0].Expr.(*sqlparser.ColRef)
	if !ok {
		return nil, false, nil
	}
	ti, pos, err := sc.resolve(cr.Table, cr.Column)
	if err != nil || ti != 0 {
		return nil, false, nil
	}
	t := sc.tabs[0].t
	col := t.Cols[pos].Name
	ix := t.ordIndexes[col]
	if ix == nil {
		return nil, false, nil
	}
	if _, homogeneous := ix.soleKind(); !homogeneous {
		return nil, false, nil
	}

	// Bound the walk with any sargable constraints on the ORDER BY column;
	// other conjuncts filter row by row below.
	conj := conjuncts(s.Where)
	rng := ordRange{all: true}
	if b := db.sargBounds(conj, sc, 0, params)[col]; b != nil {
		if b.bad {
			return nil, false, nil // a scan preserves evaluation errors
		}
		if b.impossible {
			rng = ordRange{empty: true}
		} else if r, ok := ix.rangeFor(b); ok {
			rng = r
		} else {
			return nil, false, nil
		}
	}

	cols, projExprs, err := db.projectionPlan(s, sc)
	if err != nil {
		return nil, true, err
	}

	// With a LIMIT (and no DISTINCT collapsing rows afterwards), stop as
	// soon as offset+limit rows matched.
	want := -1
	if s.Limit != nil && !s.Distinct {
		want = int(*s.Limit)
		if s.Offset != nil {
			want += int(*s.Offset)
		}
	}

	res := &Result{Columns: cols}
	var walkErr error
	visit := func(n *ordNode) bool {
		for _, slot := range n.slots {
			row := t.rowAt(slot)
			if row == nil {
				continue
			}
			tup := tuple{row}
			if s.Where != nil {
				ctx := &evalCtx{db: db, scope: sc, tup: tup, params: params}
				v, err := ctx.eval(s.Where)
				if err != nil {
					walkErr = err
					return false
				}
				if !v.Truthy() {
					continue
				}
			}
			out, err := db.projectRow(projExprs, sc, tup, params, nil)
			if err != nil {
				walkErr = err
				return false
			}
			res.Rows = append(res.Rows, out)
			if want >= 0 && len(res.Rows) >= want {
				return false
			}
		}
		return true
	}
	if items[0].Desc {
		ix.descendRange(rng, visit)
	} else {
		ix.ascendRange(rng, visit)
	}
	if walkErr != nil {
		return nil, true, walkErr
	}
	atomic.AddInt64(&db.orderedScans, 1)
	if s.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	res.Rows = applyLimit(res.Rows, s.Limit, s.Offset)
	return res, true, nil
}

// tryIndexMinMax answers `SELECT MIN(col) / MAX(col) FROM t` projections
// from the endpoints of ordered indexes without touching any row (§3.3:
// MIN/MAX run on OPE ciphertexts). Returns ok=false to fall back.
func (db *DB) tryIndexMinMax(s *sqlparser.SelectStmt, sc *scope, params []Value) (*Result, bool, error) {
	if len(sc.tabs) != 1 || s.Where != nil || s.Having != nil || len(s.OrderBy) != 0 {
		return nil, false, nil
	}
	t := sc.tabs[0].t
	aggVals := make(map[string]Value, len(s.Exprs))
	for _, se := range s.Exprs {
		if se.Star {
			return nil, false, nil
		}
		fc, ok := se.Expr.(*sqlparser.FuncCall)
		if !ok || (fc.Name != "MIN" && fc.Name != "MAX") || fc.Star || fc.Distinct || len(fc.Args) != 1 {
			return nil, false, nil
		}
		cr, ok := fc.Args[0].(*sqlparser.ColRef)
		if !ok {
			return nil, false, nil
		}
		ti, pos, err := sc.resolve(cr.Table, cr.Column)
		if err != nil || ti != 0 {
			return nil, false, nil
		}
		ix := t.ordIndexes[t.Cols[pos].Name]
		if ix == nil {
			return nil, false, nil
		}
		if _, homogeneous := ix.soleKind(); !homogeneous {
			return nil, false, nil
		}
		var n *ordNode
		if fc.Name == "MIN" {
			n = ix.minNonNull()
		} else {
			n = ix.maxNonNull()
		}
		v := Null()
		if n != nil {
			v = n.val
		}
		aggVals[fc.String()] = v
	}

	cols, projExprs, err := db.projectionPlan(s, sc)
	if err != nil {
		return nil, true, err
	}
	row, err := db.projectRow(projExprs, sc, nil, params, aggVals)
	if err != nil {
		return nil, true, err
	}
	atomic.AddInt64(&db.minMaxFast, 1)
	res := &Result{Columns: cols, Rows: [][]Value{row}}
	if s.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	res.Rows = applyLimit(res.Rows, s.Limit, s.Offset)
	return res, true, nil
}

// produceTuples evaluates the FROM clause (joins) and the WHERE filter.
// Access paths are planned per table: hash indexes serve equality
// predicates and equijoin probes, ordered indexes serve range predicates,
// and a comma join seeds from the most selective table.
func (db *DB) produceTuples(s *sqlparser.SelectStmt, sc *scope, params []Value) ([]tuple, error) {
	if len(s.From) == 0 {
		// SELECT without FROM: one empty tuple, then WHERE.
		one := []tuple{nil}
		return db.filterWhere(s, sc, one, params)
	}

	conj := conjuncts(s.Where)

	// Access paths are planned lazily: costing a range access walks the
	// ordered index, and tables reached through equijoin probes may never
	// consult their own path at all. Only a comma join (which may reorder
	// around the most selective table) needs every cost up front.
	accesses := make([]access, len(sc.tabs))
	planned := make([]bool, len(sc.tabs))
	accessFor := func(ti int) access {
		if !planned[ti] {
			accesses[ti] = db.bestAccess(sc.tabs[ti].t, sc, ti, conj, params)
			planned[ti] = true
		}
		return accesses[ti]
	}
	commaJoin := len(sc.tabs) > 1
	for _, ref := range s.From {
		if ref.JoinOn != nil {
			commaJoin = false
			break
		}
	}
	order := make([]int, len(sc.tabs))
	for i := range order {
		order[i] = i
	}
	if commaJoin {
		for ti := range sc.tabs {
			accessFor(ti)
		}
		order = joinOrder(s, accesses)
	}

	// Seed from the first table in join order.
	seed := order[0]
	db.countAccess(accessFor(seed))
	var tuples []tuple
	accessFor(seed).iterate(sc.tabs[seed].t, func(_ int, row []Value) bool {
		tup := make(tuple, len(sc.tabs))
		tup[seed] = row
		tuples = append(tuples, tup)
		return true
	})

	// Join each remaining table in join order.
	placed := make([]bool, len(sc.tabs))
	placed[seed] = true
	for k := 1; k < len(order); k++ {
		ti := order[k]
		ref := s.From[ti]
		st := sc.tabs[ti]

		// A probe comes from an ON conjunct (`earlier.col = new.col`) or,
		// for comma joins, from an equivalent WHERE conjunct. When the
		// probe is the entire ON clause the probed rows already satisfy
		// it; otherwise the full ON filter is applied to each match.
		onConj := conjuncts(ref.JoinOn)
		probe, probeCol, probeOK, equi := db.joinProbe(onConj, sc, ti)
		probeIsOn := probeOK && len(onConj) == 1
		if probeOK && equi > 1 {
			// The interpreter probes a single column of a multi-column equi
			// key and filters the rest per pair; the compiled hash join
			// (exec.go) uses the full key. Count the degradation.
			atomic.AddInt64(&db.joinDegraded, 1)
		}
		if !probeOK {
			probe, probeCol, probeOK = db.whereProbe(conj, sc, ti, placed)
		}

		onFilter := func(nt tuple) (bool, error) {
			if ref.JoinOn == nil {
				return true, nil
			}
			ctx := &evalCtx{db: db, scope: sc, tup: nt, params: params}
			v, err := ctx.eval(ref.JoinOn)
			if err != nil {
				return false, err
			}
			return v.Truthy(), nil
		}

		var next []tuple
		for _, tup := range tuples {
			if probeOK {
				ctx := &evalCtx{db: db, scope: sc, tup: tup, params: params}
				v, err := ctx.eval(probe)
				if err != nil {
					return nil, err
				}
				if slots, has := st.t.lookup(probeCol, v); has {
					for _, slot := range slots {
						nt := cloneTuple(tup)
						nt[ti] = st.t.rowAt(slot)
						if !probeIsOn {
							keep, err := onFilter(nt)
							if err != nil {
								return nil, err
							}
							if !keep {
								continue
							}
						}
						next = append(next, nt)
					}
					continue
				}
			}
			// Fall back to a nested loop over the table's own access path
			// (its sargable predicates, or a scan) with the ON filter.
			var scanErr error
			accessFor(ti).iterate(st.t, func(_ int, row []Value) bool {
				nt := cloneTuple(tup)
				nt[ti] = row
				keep, err := onFilter(nt)
				if err != nil {
					scanErr = err
					return false
				}
				if keep {
					next = append(next, nt)
				}
				return true
			})
			if scanErr != nil {
				return nil, scanErr
			}
		}
		tuples = next
		placed[ti] = true
	}

	return db.filterWhere(s, sc, tuples, params)
}

func (db *DB) filterWhere(s *sqlparser.SelectStmt, sc *scope, tuples []tuple, params []Value) ([]tuple, error) {
	if s.Where == nil {
		return tuples, nil
	}
	out := tuples[:0]
	for _, tup := range tuples {
		ctx := &evalCtx{db: db, scope: sc, tup: tup, params: params}
		v, err := ctx.eval(s.Where)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			out = append(out, tup)
		}
	}
	return out, nil
}

func cloneTuple(t tuple) tuple {
	nt := make(tuple, len(t))
	copy(nt, t)
	return nt
}

// conjuncts splits an expression on top-level ANDs.
func conjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sqlparser.Expr{e}
}

// isConstant reports whether e involves no column references or aggregates.
func isConstant(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.BytesLit,
		*sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
		return true
	case *sqlparser.UnaryExpr:
		return isConstant(x.E)
	case *sqlparser.BinaryExpr:
		return isConstant(x.L) && isConstant(x.R)
	}
	return false
}

// joinProbe scans the ON conjuncts for equalities of the form
// `earlier.col = new.col` and returns the first whose new-table side is
// indexed: the expression to evaluate against earlier tables, the probe
// column on the new table, and the total number of equi conjuncts found —
// so the caller can tell when a multi-column equi key degraded to a
// single-column probe (the compiled hash join uses the full key).
func (db *DB) joinProbe(onConj []sqlparser.Expr, sc *scope, ti int) (sqlparser.Expr, string, bool, int) {
	var probe sqlparser.Expr
	var probeCol string
	found, equi := false, 0
	newTable := sc.tabs[ti].t
	side := func(e sqlparser.Expr) (int, string, bool) {
		cr, ok := e.(*sqlparser.ColRef)
		if !ok {
			return 0, "", false
		}
		cti, _, err := sc.resolve(cr.Table, cr.Column)
		if err != nil {
			return 0, "", false
		}
		return cti, cr.Column, true
	}
	for _, pred := range onConj {
		b, ok := pred.(*sqlparser.BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		lt, lc, lok := side(b.L)
		rt, rc, rok := side(b.R)
		if !lok || !rok {
			continue
		}
		switch {
		case lt == ti && rt < ti:
			equi++
			if !found {
				if _, has := newTable.indexes[lc]; has {
					probe, probeCol, found = b.R, lc, true
				}
			}
		case rt == ti && lt < ti:
			equi++
			if !found {
				if _, has := newTable.indexes[rc]; has {
					probe, probeCol, found = b.L, rc, true
				}
			}
		}
	}
	return probe, probeCol, found, equi
}

//
// Plain (non-aggregate) SELECT.
//

func (db *DB) selectPlain(s *sqlparser.SelectStmt, sc *scope, tuples []tuple, params []Value) (*Result, error) {
	// ORDER BY over raw tuples so it can reference non-projected columns.
	if len(s.OrderBy) > 0 {
		if err := db.sortTuples(s, sc, tuples, params); err != nil {
			return nil, err
		}
	}

	cols, projExprs, err := db.projectionPlan(s, sc)
	if err != nil {
		return nil, err
	}

	res := &Result{Columns: cols}
	for _, tup := range tuples {
		row, err := db.projectRow(projExprs, sc, tup, params, nil)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	if s.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	res.Rows = applyLimit(res.Rows, s.Limit, s.Offset)
	return res, nil
}

// sortTuples sorts tuples in place per ORDER BY, resolving aliases to their
// select expressions.
func (db *DB) sortTuples(s *sqlparser.SelectStmt, sc *scope, tuples []tuple, params []Value) error {
	items := db.resolveOrderBy(s)
	var sortErr error
	sort.SliceStable(tuples, func(i, j int) bool {
		for _, item := range items {
			ci := &evalCtx{db: db, scope: sc, tup: tuples[i], params: params}
			cj := &evalCtx{db: db, scope: sc, tup: tuples[j], params: params}
			vi, err := ci.eval(item.Expr)
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := cj.eval(item.Expr)
			if err != nil {
				sortErr = err
				return false
			}
			c := compareForSort(vi, vj)
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

// resolveOrderBy substitutes select-list aliases into ORDER BY items.
func (db *DB) resolveOrderBy(s *sqlparser.SelectStmt) []sqlparser.OrderItem {
	out := make([]sqlparser.OrderItem, len(s.OrderBy))
	copy(out, s.OrderBy)
	for i, item := range out {
		cr, ok := item.Expr.(*sqlparser.ColRef)
		if !ok || cr.Table != "" {
			continue
		}
		for _, se := range s.Exprs {
			if !se.Star && se.Alias == cr.Column {
				out[i].Expr = se.Expr
				break
			}
		}
	}
	return out
}

// SortCompare orders values exactly as ORDER BY does (NULLs first,
// cross-kind values by kind, never failing). Exported for storage layers
// that merge pre-sorted result streams — the sharded store's k-way merge
// must agree with the per-shard sort order or merged output interleaves.
func SortCompare(a, b Value) int { return compareForSort(a, b) }

// compareForSort orders values with NULLs first and cross-kind values by
// kind, so sorting never fails.
func compareForSort(a, b Value) int {
	if a.IsNull() && b.IsNull() {
		return 0
	}
	if a.IsNull() {
		return -1
	}
	if b.IsNull() {
		return 1
	}
	if c, err := a.Compare(b); err == nil {
		return c
	}
	return cmpInt(int64(a.Kind), int64(b.Kind))
}

// projectionPlan expands stars and returns output column names plus the
// expression list to evaluate per row.
func (db *DB) projectionPlan(s *sqlparser.SelectStmt, sc *scope) ([]string, []sqlparser.Expr, error) {
	var cols []string
	var exprs []sqlparser.Expr
	for _, se := range s.Exprs {
		if se.Star {
			for _, st := range sc.tabs {
				for _, c := range st.t.Cols {
					cols = append(cols, c.Name)
					exprs = append(exprs, &sqlparser.ColRef{Table: st.alias, Column: c.Name})
				}
			}
			continue
		}
		if cr, ok := se.Expr.(*sqlparser.ColRef); ok && cr.Column == "*" && cr.Table != "" {
			// t.* expansion.
			found := false
			for _, st := range sc.tabs {
				if st.alias == cr.Table || st.t.Name == cr.Table {
					for _, c := range st.t.Cols {
						cols = append(cols, c.Name)
						exprs = append(exprs, &sqlparser.ColRef{Table: st.alias, Column: c.Name})
					}
					found = true
					break
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("sqldb: no table %s for %s.*", cr.Table, cr.Table)
			}
			continue
		}
		name := se.Alias
		if name == "" {
			if cr, ok := se.Expr.(*sqlparser.ColRef); ok {
				name = cr.Column
			} else {
				name = se.Expr.String()
			}
		}
		cols = append(cols, name)
		exprs = append(exprs, se.Expr)
	}
	return cols, exprs, nil
}

func (db *DB) projectRow(exprs []sqlparser.Expr, sc *scope, tup tuple, params []Value, agg map[string]Value) ([]Value, error) {
	row := make([]Value, len(exprs))
	for i, e := range exprs {
		ctx := &evalCtx{db: db, scope: sc, tup: tup, params: params, agg: agg}
		v, err := ctx.eval(e)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func dedupRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		key := ""
		for _, v := range r {
			key += v.Key() + "\x1f"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}

func applyLimit(rows [][]Value, limit, offset *int64) [][]Value {
	if offset != nil {
		if int(*offset) >= len(rows) {
			return nil
		}
		rows = rows[*offset:]
	}
	if limit != nil && int(*limit) < len(rows) {
		rows = rows[:*limit]
	}
	return rows
}

//
// Grouped / aggregate SELECT.
//

type group struct {
	first tuple
	accs  []aggAcc
	key   string
	// keyVals caches the GROUP BY values for ordering.
}

func (db *DB) selectGrouped(s *sqlparser.SelectStmt, sc *scope, tuples []tuple, aggCalls []*sqlparser.FuncCall, params []Value) (*Result, error) {
	// Deduplicate aggregate calls by their printed form.
	uniq := make(map[string]int)
	var calls []*sqlparser.FuncCall
	for _, fc := range aggCalls {
		if _, ok := uniq[fc.String()]; !ok {
			uniq[fc.String()] = len(calls)
			calls = append(calls, fc)
		}
	}

	groups := make(map[string]*group)
	var order []string
	for _, tup := range tuples {
		ctx := &evalCtx{db: db, scope: sc, tup: tup, params: params}
		key := ""
		for _, g := range s.GroupBy {
			v, err := ctx.eval(g)
			if err != nil {
				return nil, err
			}
			key += v.Key() + "\x1f"
		}
		gr, ok := groups[key]
		if !ok {
			gr = &group{first: tup, key: key}
			for _, fc := range calls {
				acc, err := db.newAggAcc(fc)
				if err != nil {
					return nil, err
				}
				gr.accs = append(gr.accs, acc)
			}
			groups[key] = gr
			order = append(order, key)
		}
		for _, acc := range gr.accs {
			if err := acc.step(ctx); err != nil {
				return nil, err
			}
		}
	}

	// Aggregate query over zero rows with no GROUP BY yields one group
	// (COUNT(*) = 0 etc.).
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		gr := &group{first: nil, key: ""}
		for _, fc := range calls {
			acc, err := db.newAggAcc(fc)
			if err != nil {
				return nil, err
			}
			gr.accs = append(gr.accs, acc)
		}
		groups[""] = gr
		order = append(order, "")
	}

	cols, projExprs, err := db.projectionPlan(s, sc)
	if err != nil {
		return nil, err
	}

	type groupRow struct {
		gr  *group
		agg map[string]Value
	}
	var gRows []groupRow
	for _, key := range order {
		gr := groups[key]
		aggVals := make(map[string]Value, len(calls))
		for i, fc := range calls {
			v, err := gr.accs[i].final()
			if err != nil {
				return nil, err
			}
			aggVals[fc.String()] = v
		}
		if s.Having != nil {
			ctx := &evalCtx{db: db, scope: sc, tup: gr.first, params: params, agg: aggVals}
			hv, err := ctx.eval(s.Having)
			if err != nil {
				return nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		gRows = append(gRows, groupRow{gr: gr, agg: aggVals})
	}

	// ORDER BY over groups.
	if len(s.OrderBy) > 0 {
		items := db.resolveOrderBy(s)
		var sortErr error
		sort.SliceStable(gRows, func(i, j int) bool {
			for _, item := range items {
				ci := &evalCtx{db: db, scope: sc, tup: gRows[i].gr.first, params: params, agg: gRows[i].agg}
				cj := &evalCtx{db: db, scope: sc, tup: gRows[j].gr.first, params: params, agg: gRows[j].agg}
				vi, err := ci.eval(item.Expr)
				if err != nil {
					sortErr = err
					return false
				}
				vj, err := cj.eval(item.Expr)
				if err != nil {
					sortErr = err
					return false
				}
				c := compareForSort(vi, vj)
				if c == 0 {
					continue
				}
				if item.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	res := &Result{Columns: cols}
	for _, gr := range gRows {
		row, err := db.projectRow(projExprs, sc, gr.gr.first, params, gr.agg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if s.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	res.Rows = applyLimit(res.Rows, s.Limit, s.Offset)
	return res, nil
}

//
// Aggregate accumulators.
//

type aggAcc interface {
	step(ctx *evalCtx) error
	final() (Value, error)
}

func (db *DB) newAggAcc(fc *sqlparser.FuncCall) (aggAcc, error) {
	if factory, ok := db.aggUDFs[fc.Name]; ok {
		return &udfAcc{fc: fc, state: factory()}, nil
	}
	switch fc.Name {
	case "COUNT":
		if fc.Star {
			return &countStarAcc{}, nil
		}
		if fc.Distinct {
			return &countDistinctAcc{fc: fc, seen: map[string]bool{}}, nil
		}
		return &countAcc{fc: fc}, nil
	case "SUM":
		return &sumAcc{fc: fc}, nil
	case "AVG":
		return &avgAcc{fc: fc}, nil
	case "MIN":
		return &minMaxAcc{fc: fc, min: true}, nil
	case "MAX":
		return &minMaxAcc{fc: fc, min: false}, nil
	}
	return nil, fmt.Errorf("sqldb: unknown aggregate %s", fc.Name)
}

func evalAggArg(ctx *evalCtx, fc *sqlparser.FuncCall) (Value, error) {
	if len(fc.Args) != 1 {
		return Value{}, fmt.Errorf("sqldb: %s takes one argument", fc.Name)
	}
	return ctx.eval(fc.Args[0])
}

type countStarAcc struct{ n int64 }

func (a *countStarAcc) step(*evalCtx) error   { a.n++; return nil }
func (a *countStarAcc) final() (Value, error) { return Int(a.n), nil }

type countAcc struct {
	fc *sqlparser.FuncCall
	n  int64
}

func (a *countAcc) step(ctx *evalCtx) error {
	v, err := evalAggArg(ctx, a.fc)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.n++
	}
	return nil
}
func (a *countAcc) final() (Value, error) { return Int(a.n), nil }

type countDistinctAcc struct {
	fc   *sqlparser.FuncCall
	seen map[string]bool
}

func (a *countDistinctAcc) step(ctx *evalCtx) error {
	v, err := evalAggArg(ctx, a.fc)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.seen[v.Key()] = true
	}
	return nil
}
func (a *countDistinctAcc) final() (Value, error) { return Int(int64(len(a.seen))), nil }

type sumAcc struct {
	fc  *sqlparser.FuncCall
	sum int64
	any bool
}

func (a *sumAcc) step(ctx *evalCtx) error {
	v, err := evalAggArg(ctx, a.fc)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	n, err := v.AsInt()
	if err != nil {
		return err
	}
	a.sum += n
	a.any = true
	return nil
}
func (a *sumAcc) final() (Value, error) {
	if !a.any {
		return Null(), nil
	}
	return Int(a.sum), nil
}

type avgAcc struct {
	fc  *sqlparser.FuncCall
	sum int64
	n   int64
}

func (a *avgAcc) step(ctx *evalCtx) error {
	v, err := evalAggArg(ctx, a.fc)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	x, err := v.AsInt()
	if err != nil {
		return err
	}
	a.sum += x
	a.n++
	return nil
}
func (a *avgAcc) final() (Value, error) {
	if a.n == 0 {
		return Null(), nil
	}
	return Int(a.sum / a.n), nil
}

type minMaxAcc struct {
	fc   *sqlparser.FuncCall
	min  bool
	best Value
	any  bool
}

func (a *minMaxAcc) step(ctx *evalCtx) error {
	v, err := evalAggArg(ctx, a.fc)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if !a.any {
		a.best = v
		a.any = true
		return nil
	}
	c, err := v.Compare(a.best)
	if err != nil {
		return err
	}
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	return nil
}
func (a *minMaxAcc) final() (Value, error) {
	if !a.any {
		return Null(), nil
	}
	return a.best, nil
}

type udfAcc struct {
	fc    *sqlparser.FuncCall
	state AggState
}

func (a *udfAcc) step(ctx *evalCtx) error {
	args := make([]Value, len(a.fc.Args))
	for i, e := range a.fc.Args {
		v, err := ctx.eval(e)
		if err != nil {
			return err
		}
		args[i] = v
	}
	return a.state.Step(args)
}
func (a *udfAcc) final() (Value, error) { return a.state.Final() }
