package sqldb

import (
	"fmt"

	"repro/internal/sqlparser"
)

func (db *DB) execInsert(s *sqlparser.InsertStmt, params []Value) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}

	// Map the statement's column list (or full schema) to positions.
	var positions []int
	if len(s.Columns) == 0 {
		positions = make([]int, len(t.Cols))
		for i := range t.Cols {
			positions[i] = i
		}
	} else {
		positions = make([]int, len(s.Columns))
		for i, name := range s.Columns {
			pos := t.ColumnIndex(name)
			if pos < 0 {
				return nil, fmt.Errorf("sqldb: no column %s.%s", s.Table, name)
			}
			positions[i] = pos
		}
	}

	sc := &scope{}
	sc.addTable("", t)
	// The statement is atomic: if any row fails (evaluation error or a
	// UNIQUE violation), the rows this statement already inserted are
	// removed before the error returns — a rejected multi-row INSERT
	// changes nothing, even outside a transaction. This also keeps the
	// WAL exact: an errored statement logs no redo records, which is only
	// correct if it also has no in-memory effect.
	var inserted []int
	revert := func() {
		for i := len(inserted) - 1; i >= 0; i-- {
			t.deleteRow(inserted[i])
		}
	}
	affected := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			revert()
			return nil, fmt.Errorf("sqldb: INSERT has %d values for %d columns", len(exprRow), len(positions))
		}
		row := make([]Value, len(t.Cols))
		for i := range row {
			row[i] = Null()
		}
		for i, e := range exprRow {
			ctx := &evalCtx{db: db, scope: sc, tup: nil, params: params}
			v, err := ctx.eval(e)
			if err != nil {
				revert()
				return nil, err
			}
			row[positions[i]] = v
		}
		slot, err := t.insertRow(row)
		if err != nil {
			revert()
			return nil, err
		}
		inserted = append(inserted, slot)
		db.redoInsert(t, slot, row)
		affected++
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) execUpdate(s *sqlparser.UpdateStmt, params []Value) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	sc := &scope{}
	sc.addTable("", t)

	// Validate target columns once.
	targets := make([]int, len(s.Assignments))
	for i, a := range s.Assignments {
		pos := t.ColumnIndex(a.Column)
		if pos < 0 {
			return nil, fmt.Errorf("sqldb: no column %s.%s", s.Table, a.Column)
		}
		targets[i] = pos
	}

	slots, err := db.matchSlots(t, sc, s.Where, params)
	if err != nil {
		return nil, err
	}
	// First writer wins: an autocommit UPDATE may not touch a row slot an
	// open transaction has buffered a write for. Checked before any
	// mutation so the statement stays atomic.
	if err := db.checkSlotsUnlocked(t, slots); err != nil {
		return nil, err
	}

	// The statement is atomic: if any row's new value violates a UNIQUE
	// index, every cell already written by this statement is reverted
	// before the error returns (a rejected UPDATE changes nothing, even
	// outside a transaction).
	type appliedCell struct {
		slot, pos int
		old       Value
	}
	var applied []appliedCell
	revert := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			a := applied[i]
			t.updateCellUnchecked(a.slot, a.pos, a.old)
		}
	}

	affected := 0
	for _, slot := range slots {
		row := t.rowAt(slot)
		if row == nil {
			continue
		}
		// Evaluate all assignment expressions against the pre-update
		// row, then apply (so `a = b, b = a` swaps correctly).
		newVals := make([]Value, len(s.Assignments))
		for i, a := range s.Assignments {
			ctx := &evalCtx{db: db, scope: sc, tup: tuple{row}, params: params}
			v, err := ctx.eval(a.Value)
			if err != nil {
				revert()
				return nil, err
			}
			newVals[i] = v
		}
		for i, pos := range targets {
			old := row[pos]
			if err := t.updateCell(slot, pos, newVals[i]); err != nil {
				revert()
				return nil, err
			}
			db.redoUpdate(t, slot, pos, newVals[i])
			applied = append(applied, appliedCell{slot: slot, pos: pos, old: old})
		}
		affected++
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) execDelete(s *sqlparser.DeleteStmt, params []Value) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	sc := &scope{}
	sc.addTable("", t)

	slots, err := db.matchSlots(t, sc, s.Where, params)
	if err != nil {
		return nil, err
	}
	if err := db.checkSlotsUnlocked(t, slots); err != nil {
		return nil, err
	}
	affected := 0
	for _, slot := range slots {
		row := t.deleteRow(slot)
		if row != nil {
			db.redoDelete(t, slot)
			affected++
		}
	}
	return &Result{Affected: affected}, nil
}

// checkSlotsUnlocked fails with a WriteConflictError if any slot is owned
// by an open transaction. Callers hold db.mu exclusively, which excludes
// transactional claimants (they run under the read side), so a clean check
// here cannot be invalidated before the statement finishes.
func (db *DB) checkSlotsUnlocked(t *Table, slots []int) error {
	if len(db.openTxns) == 0 {
		return nil
	}
	for _, slot := range slots {
		if db.locks.owner(t, slot) != nil {
			return &WriteConflictError{Table: t.Name, Slot: slot}
		}
	}
	return nil
}

// matchSlots returns the slots of rows matching where, planned through the
// same access paths as SELECT: hash-index equality, ordered-index ranges,
// or a scan.
func (db *DB) matchSlots(t *Table, sc *scope, where sqlparser.Expr, params []Value) ([]int, error) {
	acc := db.bestAccess(t, sc, 0, conjuncts(where), params)
	db.countAccess(acc)
	var candidates []int
	acc.iterate(t, func(slot int, _ []Value) bool {
		candidates = append(candidates, slot)
		return true
	})
	if where == nil {
		return candidates, nil
	}
	var out []int
	for _, slot := range candidates {
		row := t.rowAt(slot)
		if row == nil {
			continue
		}
		ctx := &evalCtx{db: db, scope: sc, tup: tuple{row}, params: params}
		v, err := ctx.eval(where)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			out = append(out, slot)
		}
	}
	return out, nil
}
