package sqldb

import (
	"strconv"
	"sync/atomic"

	"repro/internal/sqlparser"
)

// This file is the scan planner: it extracts sargable conjuncts from a
// WHERE clause (`col = const`, `col < const`, BETWEEN, ...), resolves them
// against the available hash and ordered indexes, and picks the cheapest
// access path per table. The full WHERE clause is always re-applied to the
// candidate rows afterwards, so the planner only ever has to produce a
// superset of the matching rows for the conjuncts it consumed.

// colBounds accumulates the sargable constraints one WHERE clause places on
// a single column.
type colBounds struct {
	eq           *Value
	lo, hi       *Value
	loInc, hiInc bool
	// impossible: a conjunct can never match (e.g. compares the column to
	// NULL, or two equality conjuncts demand different values), so the
	// whole AND is false for every row.
	impossible bool
	// bad: the constraints mix kinds in ways whose evaluation may error;
	// the planner must not consume them (a scan preserves the error).
	bad bool
}

func (b *colBounds) addEq(v Value) {
	if v.IsNull() {
		b.impossible = true // `col = NULL` matches nothing
		return
	}
	if b.eq == nil {
		b.eq = &v
		return
	}
	if c, err := b.eq.Compare(v); err != nil {
		b.bad = true
	} else if c != 0 {
		b.impossible = true
	}
}

func (b *colBounds) addLo(v Value, inclusive bool) {
	if v.IsNull() {
		b.impossible = true
		return
	}
	if b.lo == nil {
		b.lo, b.loInc = &v, inclusive
		return
	}
	c, err := b.lo.Compare(v)
	if err != nil {
		b.bad = true
		return
	}
	if c < 0 || (c == 0 && b.loInc && !inclusive) {
		b.lo, b.loInc = &v, inclusive
	}
}

func (b *colBounds) addHi(v Value, inclusive bool) {
	if v.IsNull() {
		b.impossible = true
		return
	}
	if b.hi == nil {
		b.hi, b.hiInc = &v, inclusive
		return
	}
	c, err := b.hi.Compare(v)
	if err != nil {
		b.bad = true
		return
	}
	if c > 0 || (c == 0 && b.hiInc && !inclusive) {
		b.hi, b.hiInc = &v, inclusive
	}
}

// sargBounds extracts, for scope table ti, the per-column bounds implied by
// the conjuncts: comparisons between one of ti's columns and a constant
// (either side), and non-negated BETWEEN with constant endpoints.
func (db *DB) sargBounds(conj []sqlparser.Expr, sc *scope, ti int, params []Value) map[string]*colBounds {
	var out map[string]*colBounds
	get := func(col string) *colBounds {
		if out == nil {
			out = make(map[string]*colBounds)
		}
		b := out[col]
		if b == nil {
			b = &colBounds{}
			out[col] = b
		}
		return b
	}

	for _, pred := range conj {
		switch x := pred.(type) {
		case *sqlparser.BinaryExpr:
			col, v, op, ok := db.constCmp(x, sc, ti, params)
			if !ok {
				continue
			}
			b := get(col)
			switch op {
			case "=":
				b.addEq(v)
			case "<":
				b.addHi(v, false)
			case "<=":
				b.addHi(v, true)
			case ">":
				b.addLo(v, false)
			case ">=":
				b.addLo(v, true)
			}
		case *sqlparser.BetweenExpr:
			if x.Not {
				continue
			}
			cr, ok := x.E.(*sqlparser.ColRef)
			if !ok {
				continue
			}
			cti, _, err := sc.resolve(cr.Table, cr.Column)
			if err != nil || cti != ti {
				continue
			}
			lo, okLo := db.evalConstOperand(x.Lo, params)
			hi, okHi := db.evalConstOperand(x.Hi, params)
			if !okLo || !okHi {
				continue
			}
			b := get(cr.Column)
			b.addLo(lo, true)
			b.addHi(hi, true)
		}
	}
	return out
}

// constCmp recognizes `col OP constant` (either side, flipping the operator
// when the constant is on the left) where col belongs to scope table ti.
func (db *DB) constCmp(x *sqlparser.BinaryExpr, sc *scope, ti int, params []Value) (string, Value, string, bool) {
	flip := map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
	op, sarg := flip[x.Op]
	if !sarg {
		return "", Value{}, "", false
	}
	try := func(colSide, valSide sqlparser.Expr, op string) (string, Value, string, bool) {
		cr, ok := colSide.(*sqlparser.ColRef)
		if !ok {
			return "", Value{}, "", false
		}
		cti, _, err := sc.resolve(cr.Table, cr.Column)
		if err != nil || cti != ti {
			return "", Value{}, "", false
		}
		v, ok := db.evalConstOperand(valSide, params)
		if !ok {
			return "", Value{}, "", false
		}
		return cr.Column, v, op, true
	}
	if col, v, o, ok := try(x.L, x.R, x.Op); ok {
		return col, v, o, true
	}
	return try(x.R, x.L, op)
}

// evalConstOperand evaluates an expression that involves no row context.
func (db *DB) evalConstOperand(e sqlparser.Expr, params []Value) (Value, bool) {
	if !isConstant(e) {
		return Value{}, false
	}
	ctx := &evalCtx{db: db, scope: nil, tup: nil, params: params}
	v, err := ctx.eval(e)
	if err != nil {
		return Value{}, false
	}
	return v, true
}

// coerceOrdBound maps a bound constant into the index's sole kind the same
// way Value.Compare would per row, or reports that the index is unusable
// for this bound (e.g. an integer bound against a text column, whose rows
// coerce individually and do not follow lexicographic order).
func coerceOrdBound(v Value, kind Kind) (Value, bool) {
	if v.Kind == kind {
		return v, true
	}
	if kind == KindInt && v.Kind == KindText {
		if n, err := strconv.ParseInt(v.S, 10, 64); err == nil {
			return Int(n), true
		}
	}
	return Value{}, false
}

// rangeFor resolves bounds into a key interval over the index, or reports
// the index unusable for them.
func (ix *ordIndex) rangeFor(b *colBounds) (ordRange, bool) {
	if ix.entries == ix.kindCount[KindNull] {
		// Empty or all-NULL: no comparison predicate can match.
		return ordRange{empty: true}, true
	}
	kind, homogeneous := ix.soleKind()
	if !homogeneous {
		return ordRange{}, false
	}
	var r ordRange
	if b.eq != nil {
		v, ok := coerceOrdBound(*b.eq, kind)
		if !ok {
			return ordRange{}, false
		}
		key := v.OrdKey()
		return ordRange{lo: key, hi: key, hasLo: true, hasHi: true, loInc: true, hiInc: true}, true
	}
	if b.lo != nil {
		v, ok := coerceOrdBound(*b.lo, kind)
		if !ok {
			return ordRange{}, false
		}
		r.lo, r.hasLo, r.loInc = v.OrdKey(), true, b.loInc
	}
	if b.hi != nil {
		v, ok := coerceOrdBound(*b.hi, kind)
		if !ok {
			return ordRange{}, false
		}
		r.hi, r.hasHi, r.hiInc = v.OrdKey(), true, b.hiInc
	}
	return r, true
}

// Access-path kinds, cheapest first when costs tie.
const (
	accessScan = iota
	accessEq
	accessRange
	accessEmpty
)

// access is the chosen way to read one table's candidate rows.
type access struct {
	kind  int
	cost  int
	slots []int     // accessEq
	idx   *ordIndex // accessRange
	rng   ordRange
}

// iterate visits the candidate rows of t under the access path.
func (a access) iterate(t *Table, fn func(slot int, row []Value) bool) {
	switch a.kind {
	case accessEmpty:
	case accessEq:
		for _, slot := range a.slots {
			if row := t.rowAt(slot); row != nil {
				if !fn(slot, row) {
					return
				}
			}
		}
	case accessRange:
		a.idx.ascendRange(a.rng, func(n *ordNode) bool {
			for _, slot := range n.slots {
				if row := t.rowAt(slot); row != nil {
					if !fn(slot, row) {
						return false
					}
				}
			}
			return true
		})
	default:
		t.scan(fn)
	}
}

// count tallies the access in the DB's planner counters.
func (db *DB) countAccess(a access) {
	switch a.kind {
	case accessEq:
		atomic.AddInt64(&db.eqScans, 1)
	case accessRange:
		atomic.AddInt64(&db.rangeScans, 1)
	case accessScan:
		atomic.AddInt64(&db.fullScans, 1)
	}
}

// bestAccess picks the cheapest access path for scope table ti given the
// WHERE conjuncts: hash-index equality, ordered-index range, or full scan.
func (db *DB) bestAccess(t *Table, sc *scope, ti int, conj []sqlparser.Expr, params []Value) access {
	best := access{kind: accessScan, cost: t.live}
	bounds := db.sargBounds(conj, sc, ti, params)
	for col, b := range bounds {
		if b.bad {
			continue
		}
		if b.impossible {
			return access{kind: accessEmpty}
		}
		if b.eq != nil {
			if idx, ok := t.indexes[col]; ok {
				if slots, usable := idx.eqSlots(*b.eq); usable {
					if len(slots) < best.cost {
						best = access{kind: accessEq, cost: len(slots), slots: slots}
					}
					continue
				}
				// Kind mismatch between the bound and the stored values:
				// per-row coercion could still match, so no index applies.
				continue
			}
			// No hash index: fall through to the ordered index, which
			// serves equality as a one-key range.
		}
		ix := t.ordIndexes[col]
		if ix == nil || (b.lo == nil && b.hi == nil && b.eq == nil) {
			continue
		}
		rng, ok := ix.rangeFor(b)
		if !ok {
			continue
		}
		cost := ix.countRange(rng, best.cost)
		if cost < best.cost {
			best = access{kind: accessRange, cost: cost, idx: ix, rng: rng}
		}
	}
	return best
}

// joinOrder decides which table seeds a multi-table FROM clause. Comma
// joins (no ON clauses) may start from whichever table has the most
// selective access path; explicit JOIN ... ON chains keep their order, as
// each ON clause references the tables before it.
func joinOrder(s *sqlparser.SelectStmt, accesses []access) []int {
	order := make([]int, len(accesses))
	for i := range order {
		order[i] = i
	}
	if len(accesses) < 2 {
		return order
	}
	for _, ref := range s.From {
		if ref.JoinOn != nil {
			return order
		}
	}
	best := 0
	for i, a := range accesses {
		if a.cost < accesses[best].cost {
			best = i
		}
	}
	if best != 0 {
		copy(order[1:best+1], order[:best])
		order[0] = best
	}
	return order
}

// whereProbe finds a WHERE equijoin conjunct `placed.col = new.col` whose
// new-table side is hash-indexed, so a comma join can probe instead of
// building a cross product. It returns the expression to evaluate against
// the already-placed tables and the probe column of table ti.
func (db *DB) whereProbe(conj []sqlparser.Expr, sc *scope, ti int, placed []bool) (sqlparser.Expr, string, bool) {
	for _, pred := range conj {
		b, ok := pred.(*sqlparser.BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		side := func(e sqlparser.Expr) (int, string, bool) {
			cr, ok := e.(*sqlparser.ColRef)
			if !ok {
				return 0, "", false
			}
			cti, _, err := sc.resolve(cr.Table, cr.Column)
			if err != nil {
				return 0, "", false
			}
			return cti, cr.Column, true
		}
		lt, lc, lok := side(b.L)
		rt, rc, rok := side(b.R)
		if !lok || !rok {
			continue
		}
		t := sc.tabs[ti].t
		switch {
		case lt == ti && rt != ti && placed[rt]:
			if _, has := t.indexes[lc]; has {
				return b.R, lc, true
			}
		case rt == ti && lt != ti && placed[lt]:
			if _, has := t.indexes[rc]; has {
				return b.L, rc, true
			}
		}
	}
	return nil, "", false
}
