// Striped slot-lock table.
//
// Transactions claim row slots first-writer-wins (see session.go). The seed
// kept one lock map per table, guarded by the database-wide mutex — so every
// buffered transactional write serialized behind db.mu even though it only
// touches transaction-private state plus this one map. The locks now live in
// a fixed array of stripes with their own mutexes: claiming or probing a
// slot lock synchronizes only with the few claimants that hash to the same
// stripe, which lets transactional statements run under the database *read*
// lock and cuts the commit-path contention the ROADMAP's "lock-table
// granularity" item names. Stripe count is fixed (no resizing, no global
// rehash); the map inside each stripe stays small because locks exist only
// for slots written by open transactions.
package sqldb

import "sync"

// lockStripes is the fixed stripe count. Power of two, comfortably above
// the core counts this embedded DBMS targets, small enough that iterating
// every stripe (release on commit/rollback) stays cheap.
const lockStripes = 64

// slotKey identifies one lockable row slot. The table pointer (not the
// name) is the identity: merged overlay copies share the base table's name
// but must never alias its locks.
type slotKey struct {
	t    *Table
	slot int
}

type lockStripe struct {
	mu sync.Mutex
	m  map[slotKey]*Txn
}

// lockTable is the database-wide striped slot-lock registry.
type lockTable struct {
	stripes [lockStripes]lockStripe
}

func (lt *lockTable) stripe(t *Table, slot int) *lockStripe {
	h := t.lockSeed ^ (uint64(slot) * 0x9e3779b97f4a7c15)
	return &lt.stripes[h&(lockStripes-1)]
}

// tryLock claims (t, slot) for txn. Returns ok=false when another open
// transaction owns the slot (first writer wins); acquired=true when this
// call took a lock txn did not already hold — the caller unlocks exactly
// the acquired set when a later slot in the same statement conflicts.
func (lt *lockTable) tryLock(t *Table, slot int, txn *Txn) (ok, acquired bool) {
	s := lt.stripe(t, slot)
	s.mu.Lock()
	defer s.mu.Unlock()
	k := slotKey{t: t, slot: slot}
	owner := s.m[k]
	switch owner {
	case nil:
		if s.m == nil {
			s.m = make(map[slotKey]*Txn)
		}
		s.m[k] = txn
		return true, true
	case txn:
		return true, false
	default:
		return false, false
	}
}

// owner returns the transaction holding (t, slot), or nil.
func (lt *lockTable) owner(t *Table, slot int) *Txn {
	s := lt.stripe(t, slot)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[slotKey{t: t, slot: slot}]
}

// unlock releases (t, slot) if txn owns it.
func (lt *lockTable) unlock(t *Table, slot int, txn *Txn) {
	s := lt.stripe(t, slot)
	s.mu.Lock()
	if s.m[slotKey{t: t, slot: slot}] == txn {
		delete(s.m, slotKey{t: t, slot: slot})
	}
	s.mu.Unlock()
}
