package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

func mustExec(t *testing.T, db *DB, sql string, params ...Value) *Result {
	t.Helper()
	res, err := db.ExecSQL(sql, params...)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return res
}

func seedEmployees(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, dept TEXT, salary INT)")
	rows := []string{
		"(1, 'Alice', 'sales', 60000)",
		"(2, 'Bob', 'sales', 55000)",
		"(3, 'Carol', 'eng', 80000)",
		"(4, 'Dave', 'eng', 75000)",
		"(5, 'Eve', 'hr', 50000)",
	}
	for _, r := range rows {
		mustExec(t, db, "INSERT INTO emp (id, name, dept, salary) VALUES "+r)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT id, name FROM emp WHERE name = 'Alice'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[1] != "name" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT * FROM emp WHERE id = 3")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].S != "Carol" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestWherePredicates(t *testing.T) {
	db := seedEmployees(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM emp WHERE salary > 60000", 2},
		{"SELECT id FROM emp WHERE salary >= 60000", 3},
		{"SELECT id FROM emp WHERE dept = 'sales' AND salary < 60000", 1},
		{"SELECT id FROM emp WHERE dept = 'sales' OR dept = 'hr'", 3},
		{"SELECT id FROM emp WHERE NOT dept = 'eng'", 3},
		{"SELECT id FROM emp WHERE id IN (1, 3, 9)", 2},
		{"SELECT id FROM emp WHERE id NOT IN (1, 3)", 3},
		{"SELECT id FROM emp WHERE salary BETWEEN 55000 AND 75000", 3},
		{"SELECT id FROM emp WHERE name LIKE 'A%'", 1},
		{"SELECT id FROM emp WHERE name LIKE '%e'", 3}, // Alice, Dave, Eve
		{"SELECT id FROM emp WHERE name LIKE '_ob'", 1},
		{"SELECT id FROM emp WHERE id != 1", 4},
	}
	for _, c := range cases {
		res := mustExec(t, db, c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestArithmeticInSelect(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT salary * 2 + 10 FROM emp WHERE id = 1")
	if res.Rows[0][0].I != 120010 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestAggregates(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary), AVG(salary) FROM emp")
	r := res.Rows[0]
	if r[0].I != 5 || r[1].I != 320000 || r[2].I != 50000 || r[3].I != 80000 || r[4].I != 64000 {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	res := mustExec(t, db, "SELECT COUNT(*), SUM(a) FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "eng" || res.Rows[0][1].I != 2 || res.Rows[0][2].I != 155000 {
		t.Fatalf("eng row = %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "sales" {
		t.Fatalf("second row = %v", res.Rows[1])
	}
}

func TestCountDistinct(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT COUNT(DISTINCT dept) FROM emp")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2")
	if res.Rows[0][0].S != "Carol" || res.Rows[1][0].S != "Dave" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 2")
	if res.Rows[0][0].S != "Alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByMultiple(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT name FROM emp ORDER BY dept, salary DESC")
	want := []string{"Carol", "Dave", "Eve", "Alice", "Bob"}
	for i, w := range want {
		if res.Rows[i][0].S != w {
			t.Fatalf("rows = %v, want %v", res.Rows, want)
		}
	}
}

func TestOrderByAlias(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT salary * 2 AS double_pay, name FROM emp ORDER BY double_pay LIMIT 1")
	if res.Rows[0][1].S != "Eve" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT DISTINCT dept FROM emp")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := seedEmployees(t)
	mustExec(t, db, "CREATE TABLE dept_info (dept TEXT PRIMARY KEY, floor INT)")
	mustExec(t, db, "INSERT INTO dept_info (dept, floor) VALUES ('sales', 1), ('eng', 2), ('hr', 3)")
	res := mustExec(t, db, "SELECT e.name, d.floor FROM emp e JOIN dept_info d ON e.dept = d.dept WHERE e.id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Carol" || res.Rows[0][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinUnindexed(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a (x) VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO b (y) VALUES (2), (3), (4)")
	res := mustExec(t, db, "SELECT a.x FROM a JOIN b ON a.x = b.y ORDER BY a.x")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 2 || res.Rows[1][0].I != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INT PRIMARY KEY, bv INT)")
	mustExec(t, db, "CREATE TABLE b (id INT PRIMARY KEY, cv INT)")
	mustExec(t, db, "CREATE TABLE c (id INT PRIMARY KEY, name TEXT)")
	mustExec(t, db, "INSERT INTO a (id, bv) VALUES (1, 10)")
	mustExec(t, db, "INSERT INTO b (id, cv) VALUES (10, 100)")
	mustExec(t, db, "INSERT INTO c (id, name) VALUES (100, 'deep')")
	res := mustExec(t, db, "SELECT c.name FROM a JOIN b ON a.bv = b.id JOIN c ON b.cv = c.id")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "deep" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCrossJoinWithWhere(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a (x) VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b (y) VALUES (2), (3)")
	res := mustExec(t, db, "SELECT a.x, b.y FROM a, b WHERE a.x = b.y")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUpdate(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "UPDATE emp SET salary = salary + 1000 WHERE dept = 'sales'")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	check := mustExec(t, db, "SELECT salary FROM emp WHERE id = 1")
	if check.Rows[0][0].I != 61000 {
		t.Fatalf("salary = %v", check.Rows[0][0])
	}
}

func TestUpdateIndexedColumn(t *testing.T) {
	db := seedEmployees(t)
	mustExec(t, db, "UPDATE emp SET id = 100 WHERE id = 1")
	if res := mustExec(t, db, "SELECT name FROM emp WHERE id = 100"); len(res.Rows) != 1 {
		t.Fatalf("index not maintained after update: %v", res.Rows)
	}
	if res := mustExec(t, db, "SELECT name FROM emp WHERE id = 1"); len(res.Rows) != 0 {
		t.Fatalf("stale index entry: %v", res.Rows)
	}
}

func TestDelete(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "DELETE FROM emp WHERE dept = 'eng'")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	if db.Table("emp").RowCount() != 3 {
		t.Fatalf("rows = %d", db.Table("emp").RowCount())
	}
	// Slot reuse after delete.
	mustExec(t, db, "INSERT INTO emp (id, name, dept, salary) VALUES (9, 'Zed', 'ops', 1)")
	if res := mustExec(t, db, "SELECT name FROM emp WHERE id = 9"); len(res.Rows) != 1 {
		t.Fatalf("reinsert failed: %v", res.Rows)
	}
}

func TestUniqueIndexViolation(t *testing.T) {
	db := seedEmployees(t)
	if _, err := db.ExecSQL("INSERT INTO emp (id, name, dept, salary) VALUES (1, 'Dup', 'x', 0)"); err == nil {
		t.Fatal("want unique violation")
	}
}

func TestCreateIndexAndLookup(t *testing.T) {
	db := seedEmployees(t)
	mustExec(t, db, "CREATE INDEX idx_dept ON emp (dept)")
	res := mustExec(t, db, "SELECT COUNT(*) FROM emp WHERE dept = 'sales'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestTransactionsCommit(t *testing.T) {
	db := seedEmployees(t)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO emp (id, name, dept, salary) VALUES (10, 'Tx', 'ops', 1)")
	mustExec(t, db, "COMMIT")
	if res := mustExec(t, db, "SELECT id FROM emp WHERE id = 10"); len(res.Rows) != 1 {
		t.Fatal("committed row missing")
	}
}

func TestTransactionsRollback(t *testing.T) {
	db := seedEmployees(t)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO emp (id, name, dept, salary) VALUES (10, 'Tx', 'ops', 1)")
	mustExec(t, db, "UPDATE emp SET salary = 0 WHERE id = 1")
	mustExec(t, db, "DELETE FROM emp WHERE id = 2")
	mustExec(t, db, "ROLLBACK")
	if res := mustExec(t, db, "SELECT id FROM emp WHERE id = 10"); len(res.Rows) != 0 {
		t.Fatal("rolled-back insert persisted")
	}
	if res := mustExec(t, db, "SELECT salary FROM emp WHERE id = 1"); res.Rows[0][0].I != 60000 {
		t.Fatal("rolled-back update persisted")
	}
	if res := mustExec(t, db, "SELECT id FROM emp WHERE id = 2"); len(res.Rows) != 1 {
		t.Fatal("rolled-back delete persisted")
	}
}

func TestTransactionErrors(t *testing.T) {
	db := New()
	if _, err := db.ExecSQL("COMMIT"); err == nil {
		t.Fatal("COMMIT outside txn should fail")
	}
	if _, err := db.ExecSQL("ROLLBACK"); err == nil {
		t.Fatal("ROLLBACK outside txn should fail")
	}
}

func TestScalarUDF(t *testing.T) {
	db := seedEmployees(t)
	db.RegisterUDF("double_it", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("double_it takes 1 arg")
		}
		n, err := args[0].AsInt()
		if err != nil {
			return Value{}, err
		}
		return Int(2 * n), nil
	})
	res := mustExec(t, db, "SELECT double_it(salary) FROM emp WHERE id = 1")
	if res.Rows[0][0].I != 120000 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
	// UDF usable in WHERE too.
	res = mustExec(t, db, "SELECT id FROM emp WHERE double_it(salary) >= 150000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

type concatState struct{ s string }

func (c *concatState) Step(args []Value) error {
	c.s += args[0].S
	return nil
}
func (c *concatState) Final() (Value, error) { return Text(c.s), nil }

func TestAggregateUDF(t *testing.T) {
	db := seedEmployees(t)
	db.RegisterAggUDF("concat_all", func() AggState { return &concatState{} })
	res := mustExec(t, db, "SELECT concat_all(name) FROM emp WHERE dept = 'sales'")
	got := res.Rows[0][0].S
	if got != "AliceBob" && got != "BobAlice" {
		t.Fatalf("got %q", got)
	}
	// Aggregate UDF with GROUP BY.
	res = mustExec(t, db, "SELECT dept, concat_all(name) FROM emp GROUP BY dept ORDER BY dept")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNullSemantics(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'y'), (3, NULL)")
	if res := mustExec(t, db, "SELECT b FROM t WHERE a IS NULL"); len(res.Rows) != 1 || res.Rows[0][0].S != "y" {
		t.Fatalf("IS NULL rows = %v", res.Rows)
	}
	if res := mustExec(t, db, "SELECT a FROM t WHERE b IS NOT NULL"); len(res.Rows) != 2 {
		t.Fatalf("IS NOT NULL rows = %v", res.Rows)
	}
	// NULL = anything is not true.
	if res := mustExec(t, db, "SELECT b FROM t WHERE a = NULL"); len(res.Rows) != 0 {
		t.Fatalf("= NULL rows = %v", res.Rows)
	}
	// Aggregates skip NULLs.
	if res := mustExec(t, db, "SELECT COUNT(a), SUM(a) FROM t"); res.Rows[0][0].I != 2 || res.Rows[0][1].I != 4 {
		t.Fatalf("agg rows = %v", res.Rows)
	}
}

func TestParams(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT name FROM emp WHERE id = ?", Int(2))
	if res.Rows[0][0].S != "Bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT id FROM emp WHERE dept = ? AND salary > ?", Text("eng"), Int(76000))
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDropTable(t *testing.T) {
	db := seedEmployees(t)
	mustExec(t, db, "DROP TABLE emp")
	if _, err := db.ExecSQL("SELECT * FROM emp"); err == nil {
		t.Fatal("dropped table still queryable")
	}
}

func TestErrors(t *testing.T) {
	db := seedEmployees(t)
	bad := []string{
		"SELECT * FROM nosuch",
		"SELECT nosuchcol FROM emp",
		"INSERT INTO emp (nosuch) VALUES (1)",
		"INSERT INTO emp (id) VALUES (1, 2)",
		"UPDATE emp SET nosuch = 1",
		"DELETE FROM nosuch",
		"CREATE TABLE emp (id INT)",
		"SELECT unknown_fn(id) FROM emp",
	}
	for _, sql := range bad {
		if _, err := db.ExecSQL(sql); err == nil {
			t.Errorf("%s: want error", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (x INT)")
	mustExec(t, db, "INSERT INTO a (x) VALUES (1)")
	mustExec(t, db, "INSERT INTO b (x) VALUES (1)")
	if _, err := db.ExecSQL("SELECT x FROM a, b"); err == nil {
		t.Fatal("ambiguous column should error")
	}
}

func TestSizeBytes(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	if db.SizeBytes() != 0 {
		t.Fatalf("empty size = %d", db.SizeBytes())
	}
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 'hello')")
	if got := db.SizeBytes(); got != 8+5 {
		t.Fatalf("size = %d, want 13", got)
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	db := seedEmployees(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := db.ExecSQL("SELECT COUNT(*) FROM emp WHERE dept = 'sales'"); err != nil {
					errs <- err
					return
				}
			}
		}(i)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := 1000 + n*100 + j
				if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO emp (id, name, dept, salary) VALUES (%d, 'W', 'tmp', 1)", id)); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT COUNT(*) FROM emp WHERE dept = 'tmp'")
	if res.Rows[0][0].I != 400 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestSelectNoFrom(t *testing.T) {
	db := New()
	res := mustExec(t, db, "SELECT 1 + 2")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBitwiseOps(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE acl (id INT, perms INT)")
	mustExec(t, db, "INSERT INTO acl (id, perms) VALUES (1, 5), (2, 2), (3, 7)")
	res := mustExec(t, db, "SELECT id FROM acl WHERE perms & 4 = 4 ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestGroupByEmptyResult(t *testing.T) {
	db := seedEmployees(t)
	res := mustExec(t, db, "SELECT dept, COUNT(*) FROM emp WHERE id > 1000 GROUP BY dept")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
