// Incremental checkpoints for paged databases, and the background
// checkpointer both layouts share.
//
// On-disk layout of a paged database directory:
//
//	LOCK, wal.log        as before (same WAL format, same group commit)
//	MANIFEST             walSeq-gated root: schema ops + page directory
//	pages/seg-*.pg       one slotted segment file per checkpointed page
//
// The MANIFEST plays the role snapshot.db plays for the resident layout:
// it records the WAL sequence S it covers, the schema (as a WAL-op
// stream), and for every non-empty page the segment file holding its rows
// as of S. Recovery is unchanged in shape: load the manifest, then replay
// WAL batches with seq > S.
//
// A checkpoint writes only the pages dirtied since the last one — pause is
// proportional to churn, not data size — in three phases:
//
//	1. capture  (db.mu held)   encode every dirty page; clear dirty, set
//	                           flushing so eviction keeps its hands off;
//	                           snapshot the manifest directory at S.
//	2. write    (no db.mu)     segment files + new MANIFEST, each synced
//	                           and the manifest installed atomically
//	                           (temp + fsync + rename + dir sync).
//	                           Commits proceed concurrently; their frames
//	                           carry seq > S and replay on top.
//	3. install  (db.mu held)   point pages at their new segments, advance
//	                           snapSeq, truncate the WAL to frames > S.
//
// Crash safety: segment files are never overwritten — every checkpoint
// writes fresh names and the manifest references exactly the files that
// make up state S, so a crash in any phase leaves either the old manifest
// (new segments are unreferenced orphans, swept at Open) or the new one
// (the stale WAL prefix is skipped by its sequence numbers). Orphans and
// replaced segments are deleted only after the new manifest is durable.
package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fsutil"
)

const (
	manifestName = "MANIFEST"
	pagesDirName = "pages"
	manMagic     = "CDBMAN\x00\x01"
	segMagic     = "CDBSEG\x00\x01"
	manHeaderLen = 32 // magic[8] version[4] reserved[4] walSeq[8] fileSeq[8]
	manVersion   = 1
)

// segFileName names the numbered segment file; names are never reused
// within one database (fileSeq persists in the manifest).
func segFileName(n uint64) string { return fmt.Sprintf("seg-%016x.pg", n) }

//
// Segment files
//

// buildSegFile encodes one page's live rows as a self-contained slotted
// segment: each row is tagged with its local slot, so loading never needs
// the rest of the table. Callers hold db.mu.
func buildSegFile(table string, id int, p *rowPage) []byte {
	var payload []byte
	payload = appendString(payload, table)
	payload = appendUvarint(payload, uint64(id))
	payload = appendUvarint(payload, uint64(p.live))
	for i := 0; i < pageSlots; i++ {
		row := p.rows[i]
		if row == nil {
			continue
		}
		payload = append(payload, byte(i))
		payload = appendUvarint(payload, uint64(len(row)))
		for _, v := range row {
			payload = appendValue(payload, v)
		}
	}
	buf := make([]byte, 0, len(segMagic)+frameHdrLen+len(payload))
	buf = append(buf, segMagic...)
	var hdr [frameHdrLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseSegFile verifies and decodes one segment file, invoking fn for each
// stored row with its local slot.
func parseSegFile(data []byte, fn func(local int, row []Value) error) (table string, id int, err error) {
	if len(data) < len(segMagic)+frameHdrLen || string(data[:len(segMagic)]) != segMagic {
		return "", 0, fmt.Errorf("sqldb: not a page segment file")
	}
	rest := data[len(segMagic):]
	plen := binary.BigEndian.Uint32(rest)
	if int(plen) != len(rest)-frameHdrLen {
		return "", 0, fmt.Errorf("sqldb: page segment is truncated")
	}
	payload := rest[frameHdrLen:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:]) {
		return "", 0, fmt.Errorf("sqldb: page segment failed CRC check")
	}
	d := &walDecoder{buf: payload}
	if table, err = d.string(); err != nil {
		return "", 0, err
	}
	pid, err := d.uvarint()
	if err != nil {
		return "", 0, err
	}
	id = int(pid)
	count, err := d.uvarint()
	if err != nil {
		return "", 0, err
	}
	for n := uint64(0); n < count; n++ {
		local, err := d.byte()
		if err != nil {
			return table, id, err
		}
		ncells, err := d.uvarint()
		if err != nil {
			return table, id, err
		}
		row := make([]Value, ncells)
		for i := range row {
			if row[i], err = d.value(); err != nil {
				return table, id, err
			}
		}
		if err := fn(int(local), row); err != nil {
			return table, id, err
		}
	}
	return table, id, nil
}

// loadSegment materializes one page from its segment file (the fault path).
func loadSegment(path string, t *Table, id int) (*rowPage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := &rowPage{}
	table, gotID, err := parseSegFile(data, func(local int, row []Value) error {
		p.rows[local] = row
		p.live++
		p.bytes += rowBytes(row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if table != t.Name || gotID != id {
		return nil, fmt.Errorf("sqldb: segment holds page %d of %s, wanted %d of %s", gotID, table, id, t.Name)
	}
	return p, nil
}

//
// Manifest
//

// manEntry is one page-directory line of the manifest.
type manEntry struct {
	table string
	id    int
	file  string
	bytes int64
}

// buildManifest encodes the manifest: header, then a CRC-framed payload of
// schema ops and the page directory.
func buildManifest(walSeq, fileSeq uint64, schemaOps []byte, entries []manEntry) []byte {
	var payload []byte
	payload = appendUvarint(payload, uint64(len(schemaOps)))
	payload = append(payload, schemaOps...)
	payload = appendUvarint(payload, uint64(len(entries)))
	for _, e := range entries {
		payload = appendString(payload, e.table)
		payload = appendUvarint(payload, uint64(e.id))
		payload = appendString(payload, e.file)
		payload = appendUvarint(payload, uint64(e.bytes))
	}
	buf := make([]byte, manHeaderLen, manHeaderLen+frameHdrLen+len(payload))
	copy(buf, manMagic)
	binary.BigEndian.PutUint32(buf[8:], manVersion)
	binary.BigEndian.PutUint64(buf[16:], walSeq)
	binary.BigEndian.PutUint64(buf[24:], fileSeq)
	var hdr [frameHdrLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseManifest verifies a manifest and returns its fields. Like a damaged
// snapshot, a damaged manifest is fatal: it is installed atomically, so
// damage means real corruption.
func parseManifest(data []byte, path string) (walSeq, fileSeq uint64, schemaOps []byte, entries []manEntry, err error) {
	if len(data) < manHeaderLen+frameHdrLen || string(data[:8]) != manMagic {
		return 0, 0, nil, nil, fmt.Errorf("sqldb: %s is not a manifest file", path)
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != manVersion {
		return 0, 0, nil, nil, fmt.Errorf("sqldb: manifest version %d not supported", v)
	}
	walSeq = binary.BigEndian.Uint64(data[16:24])
	fileSeq = binary.BigEndian.Uint64(data[24:32])
	rest := data[manHeaderLen:]
	plen := binary.BigEndian.Uint32(rest)
	if int(plen) > len(rest)-frameHdrLen {
		return 0, 0, nil, nil, fmt.Errorf("sqldb: manifest %s is truncated", path)
	}
	payload := rest[frameHdrLen : frameHdrLen+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:]) {
		return 0, 0, nil, nil, fmt.Errorf("sqldb: manifest %s is corrupt (bad checksum)", path)
	}
	d := &walDecoder{buf: payload}
	slen, err := d.uvarint()
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if schemaOps, err = d.bytes(slen); err != nil {
		return 0, 0, nil, nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, 0, nil, nil, err
	}
	entries = make([]manEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e manEntry
		if e.table, err = d.string(); err != nil {
			return 0, 0, nil, nil, err
		}
		id, err := d.uvarint()
		if err != nil {
			return 0, 0, nil, nil, err
		}
		e.id = int(id)
		if e.file, err = d.string(); err != nil {
			return 0, 0, nil, nil, err
		}
		b, err := d.uvarint()
		if err != nil {
			return 0, 0, nil, nil, err
		}
		e.bytes = int64(b)
		entries = append(entries, e)
	}
	return walSeq, fileSeq, schemaOps, entries, nil
}

//
// Incremental checkpoint
//

// pendingSeg is one dirty page captured by phase 1. file is "" when the
// page emptied since its last checkpoint (its directory entry is dropped).
type pendingSeg struct {
	t    *Table
	id   int
	p    *rowPage
	file string
	data []byte
}

// ckptCapture is phase 1: encode every dirty page and snapshot the page
// directory at the current sequence. Callers hold db.mu's write side.
func (db *DB) ckptCapture() (seq uint64, segs []pendingSeg, entries []manEntry, schemaOps []byte) {
	seq = db.walSeq
	schemaOps = db.schemaOps()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		t.growTo(t.nslots) // ensure disk parallels pages
		for id := range t.pages {
			p := t.pages[id].Load()
			if p != nil && p.dirty {
				p.dirty = false
				db.pager.dirtyPages.Add(-1)
				p.flushing = true
				if p.live > 0 {
					file := segFileName(db.pager.fileSeq)
					db.pager.fileSeq++
					data := buildSegFile(t.Name, id, p)
					segs = append(segs, pendingSeg{t: t, id: id, p: p, file: file, data: data})
					entries = append(entries, manEntry{table: t.Name, id: id, file: file, bytes: int64(len(data))})
				} else {
					segs = append(segs, pendingSeg{t: t, id: id, p: p})
				}
			} else if rec := t.disk[id]; rec.file != "" {
				entries = append(entries, manEntry{table: t.Name, id: id, file: rec.file, bytes: rec.bytes})
			}
		}
	}
	return seq, segs, entries, schemaOps
}

// ckptWrite is phase 2: write and sync every new segment, then install the
// new manifest atomically. Runs without db.mu; concurrent commits land in
// the WAL with sequence numbers past the captured seq.
func (db *DB) ckptWrite(seq uint64, segs []pendingSeg, entries []manEntry, schemaOps []byte) (int64, error) {
	sync := !db.dopts.NoFsync
	var written int64
	for _, s := range segs {
		if s.file == "" {
			continue
		}
		if err := writeFileSynced(filepath.Join(db.pager.dir, s.file), s.data, sync); err != nil {
			return 0, err
		}
		written += int64(len(s.data))
	}
	if written > 0 && sync {
		// Segment directory entries must be durable before the manifest
		// references them.
		if err := fsutil.SyncDir(db.pager.dir); err != nil {
			return 0, err
		}
	}
	man := buildManifest(seq, db.pager.fileSeq, schemaOps, entries)
	written += int64(len(man))
	final := filepath.Join(db.dir, manifestName)
	tmp := final + ".tmp"
	if err := writeFileSynced(tmp, man, sync); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("sqldb: manifest rename: %w", err)
	}
	if sync {
		// As with snapshots, the rename is only durable once the directory
		// entry is synced.
		if err := fsutil.SyncDir(db.dir); err != nil {
			return 0, err
		}
	}
	return written, nil
}

// writeFileSynced creates path with data, optionally fsyncing it.
func writeFileSynced(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("sqldb: checkpoint write: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("sqldb: checkpoint sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// ckptInstall is phase 3: point pages at their new segments, advance
// snapSeq, and swap the referenced file set. Returns the segment files the
// new manifest no longer references (deleted by the caller off-lock). The
// WAL truncation — an fsync — is the caller's job, off this lock; its only
// ordering requirement is to run after the manifest install, which has
// happened by now. Callers hold db.mu's write side.
func (db *DB) ckptInstall(seq uint64, segs []pendingSeg, entries []manEntry, written int64) (obsolete []string) {
	for _, s := range segs {
		s.p.flushing = false
		if s.t.dropped {
			continue
		}
		if s.file != "" {
			s.t.disk[s.id] = pageDiskRec{file: s.file, bytes: int64(len(s.data))}
		} else {
			s.t.disk[s.id] = pageDiskRec{}
		}
	}
	newFiles := make(map[string]int64, len(entries))
	var diskTotal int64
	for _, e := range entries {
		newFiles[e.file] = e.bytes
		diskTotal += e.bytes
	}
	for f := range db.pager.segFiles {
		if _, ok := newFiles[f]; !ok {
			obsolete = append(obsolete, f)
		}
	}
	db.pager.segFiles = newFiles
	db.pager.diskBytes.Store(diskTotal)
	db.snapSeq = seq
	db.checkpoints++
	atomic.StoreInt64(&db.lastCkptBytes, written)
	return obsolete
}

// ckptAbort re-marks the captured pages dirty after a failed phase 2, so
// their changes are rewritten by the next checkpoint. Callers hold db.mu's
// write side.
func (db *DB) ckptAbort(segs []pendingSeg) {
	for _, s := range segs {
		s.p.flushing = false
		if !s.p.dirty {
			s.p.dirty = true
			db.pager.dirtyPages.Add(1)
		}
	}
	// Any segments already written are unreferenced; best-effort removal
	// (the Open-time orphan sweep catches leftovers).
	for _, s := range segs {
		if s.file != "" {
			os.Remove(filepath.Join(db.pager.dir, s.file))
		}
	}
}

// checkpointPaged runs one incremental checkpoint with commits flowing
// concurrently during the write phase. Only the capture and install phases
// pause the database; their time is what CheckpointPauseNanos reports.
func (db *DB) checkpointPaged() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	db.mu.Lock()
	if db.wal == nil {
		db.mu.Unlock()
		return nil
	}
	start := time.Now()
	seq, segs, entries, schemaOps := db.ckptCapture()
	pause := int64(time.Since(start))
	db.mu.Unlock()

	written, err := db.ckptWrite(seq, segs, entries, schemaOps)
	if err != nil {
		db.mu.Lock()
		db.ckptAbort(segs)
		db.mu.Unlock()
		return err
	}

	db.mu.Lock()
	start = time.Now()
	obsolete := db.ckptInstall(seq, segs, entries, written)
	pause += int64(time.Since(start))
	db.mu.Unlock()
	atomic.AddInt64(&db.ckptPauseNanos, pause)

	// Truncate the WAL off db.mu: the manifest now covers seq, so the only
	// ordering that matters (install before truncate) already holds, and
	// the truncation's fsync must not stall statements. A failure leaves
	// the log redundant but correct — replay skips frames <= seq.
	err = db.wal.truncateTo(seq)
	db.removeSegFiles(obsolete)
	return err
}

// checkpointPagedLocked runs all three phases with db.mu already held: the
// Open-time layout conversion and ResetFromSnapshot need the checkpoint
// inside their critical section. Callers that can race another checkpoint
// hold db.ckptMu (acquired before db.mu).
func (db *DB) checkpointPagedLocked() error {
	start := time.Now()
	seq, segs, entries, schemaOps := db.ckptCapture()
	written, err := db.ckptWrite(seq, segs, entries, schemaOps)
	if err != nil {
		db.ckptAbort(segs)
		return err
	}
	obsolete := db.ckptInstall(seq, segs, entries, written)
	err = db.wal.truncateTo(seq)
	atomic.AddInt64(&db.ckptPauseNanos, int64(time.Since(start)))
	db.removeSegFiles(obsolete)
	return err
}

// removeSegFiles deletes replaced segment files, best-effort: a leftover is
// an orphan the next Open sweeps.
func (db *DB) removeSegFiles(names []string) {
	for _, f := range names {
		os.Remove(filepath.Join(db.pager.dir, f))
	}
}

//
// Paged recovery (Open with a MANIFEST present)
//

// loadPaged rebuilds state from the manifest and its segments: schema and
// indexes become resident, row pages stay on disk (they fault in on
// demand). Index rebuilding streams every segment once without retaining
// rows, so recovery memory stays bounded by the cache budget plus the
// index size. Returns the WAL sequence the manifest covers.
func (db *DB) loadPaged(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	walSeq, fileSeq, schemaOps, entries, err := parseManifest(data, path)
	if err != nil {
		return 0, err
	}
	db.pager.fileSeq = fileSeq
	d := &walDecoder{buf: schemaOps}
	for !d.done() {
		op, err := d.op()
		if err != nil {
			return 0, fmt.Errorf("sqldb: manifest schema decode: %w", err)
		}
		if err := db.applyOp(op); err != nil {
			return 0, fmt.Errorf("sqldb: manifest schema load: %w", err)
		}
	}
	// Occupancy per table, to rebuild slot-space bounds and free lists with
	// exactly the semantics snapshot loading has: trailing free slots are
	// dropped, interior gaps enter the free list in ascending order.
	type occ struct {
		max  int
		bits []uint64
	}
	occs := make(map[string]*occ)
	var diskTotal int64
	for _, e := range entries {
		t := db.tables[e.table]
		if t == nil {
			return 0, fmt.Errorf("sqldb: manifest references unknown table %s", e.table)
		}
		seg, err := os.ReadFile(filepath.Join(db.pager.dir, e.file))
		if err != nil {
			return 0, fmt.Errorf("sqldb: reading page segment: %w", err)
		}
		o := occs[e.table]
		if o == nil {
			o = &occ{max: -1}
			occs[e.table] = o
		}
		table, id, err := parseSegFile(seg, func(local int, row []Value) error {
			slot := e.id<<pageShift + local
			for _, idx := range t.indexes {
				idx.addSlot(row[idx.pos].Key(), slot)
			}
			for _, ix := range t.ordIndexes {
				ix.insert(row[ix.pos], slot)
			}
			t.dataBytes += rowBytes(row)
			t.live++
			if slot > o.max {
				o.max = slot
			}
			for len(o.bits) <= slot/64 {
				o.bits = append(o.bits, 0)
			}
			o.bits[slot/64] |= 1 << (slot % 64)
			return nil
		})
		if err != nil {
			return 0, fmt.Errorf("sqldb: page segment %s: %w", e.file, err)
		}
		if table != e.table || id != e.id {
			return 0, fmt.Errorf("sqldb: segment %s holds page %d of %s, manifest says %d of %s", e.file, id, table, e.id, e.table)
		}
		for len(t.disk) <= e.id {
			t.disk = append(t.disk, pageDiskRec{})
		}
		t.disk[e.id] = pageDiskRec{file: e.file, bytes: e.bytes}
		db.pager.segFiles[e.file] = e.bytes
		diskTotal += e.bytes
	}
	for name, o := range occs {
		t := db.tables[name]
		t.nslots = o.max + 1
		want := (t.nslots + pageMask) >> pageShift
		for len(t.pages) < want {
			t.pages = append(t.pages, atomic.Pointer[rowPage]{}) // stays on disk
		}
		for len(t.disk) < want {
			t.disk = append(t.disk, pageDiskRec{})
		}
		for s := 0; s < t.nslots; s++ {
			if o.bits[s/64]&(1<<(s%64)) == 0 {
				t.free = append(t.free, s)
			}
		}
	}
	db.pager.diskBytes.Store(diskTotal)
	db.sweepOrphanSegments()
	return walSeq, nil
}

// sweepOrphanSegments deletes segment files the manifest does not
// reference: leftovers of checkpoints that crashed before installing, or
// of deletions that crashed before completing.
func (db *DB) sweepOrphanSegments() {
	dents, err := os.ReadDir(db.pager.dir)
	if err != nil {
		return
	}
	for _, de := range dents {
		name := de.Name()
		if _, ok := db.pager.segFiles[name]; ok {
			continue
		}
		if strings.HasPrefix(name, "seg-") {
			os.Remove(filepath.Join(db.pager.dir, name))
		}
	}
}

//
// Table adoption (layout conversion and snapshot resets)
//

// adoptTable attaches a freshly created table to this database's pager (a
// no-op for resident databases). Called wherever tables are born: CREATE
// TABLE, WAL replay, snapshot load.
func (db *DB) adoptTable(t *Table) {
	if db.pager != nil {
		t.pager = db.pager
	}
}

// adoptResidentTable wires a table built without a pager (a scratch
// database from ResetFromSnapshot) into this database's cache: every
// materialized page is admitted, charged, and marked dirty so the next
// checkpoint persists it. Callers hold db.mu's write side.
func (db *DB) adoptResidentTable(t *Table) {
	t.pager = db.pager
	t.disk = make([]pageDiskRec, len(t.pages))
	for id := range t.pages {
		p := t.pages[id].Load()
		if p == nil {
			continue
		}
		db.pager.admit(t, id, p)
		if p.dirty {
			db.pager.dirtyPages.Add(1)
		} else {
			t.markDirty(p)
		}
	}
}

//
// Background checkpointer
//

// startCheckpointLoop launches the background auto-checkpoint goroutine
// for a durable database. The WAL-size probe on the commit path only kicks
// this loop (a non-blocking channel send); the snapshot/segment writing —
// formerly a full-state rewrite paid by whichever committer tripped the
// threshold — happens here, off every commit path.
func (db *DB) startCheckpointLoop() {
	db.ckptKick = make(chan struct{}, 1)
	db.ckptStop = make(chan struct{})
	db.ckptWG.Add(1)
	go func() {
		defer db.ckptWG.Done()
		for {
			select {
			case <-db.ckptStop:
				return
			case <-db.ckptKick:
				// A failed background checkpoint leaves the WAL growing but
				// durability intact; record the error for the operator
				// (LastCheckpointError) and keep serving kicks.
				if cerr := db.Checkpoint(); cerr != nil {
					db.ckptBgErr.Store(ckptErrBox{cerr})
				}
			}
		}
	}()
}

// stopCheckpointLoop terminates the background checkpointer and waits for
// any in-flight checkpoint to finish. Must be called without db.mu held.
func (db *DB) stopCheckpointLoop() {
	db.ckptOnce.Do(func() {
		if db.ckptStop != nil {
			close(db.ckptStop)
			db.ckptWG.Wait()
		}
	})
}

// CheckpointPauseNanos reports cumulative wall time checkpoints have held
// the database lock: full pauses for the resident layout, capture+install
// only for the paged one (segment writing overlaps commits).
func (db *DB) CheckpointPauseNanos() int64 { return atomic.LoadInt64(&db.ckptPauseNanos) }

// LastCheckpointBytes reports the bytes written by the most recent
// checkpoint: the whole snapshot for the resident layout, only the dirty
// segments for the paged one.
func (db *DB) LastCheckpointBytes() int64 { return atomic.LoadInt64(&db.lastCkptBytes) }

// ckptErrBox wraps a background-checkpoint error for atomic.Value (whose
// stored concrete type must never change).
type ckptErrBox struct{ err error }

// LastCheckpointError returns the most recent background-checkpoint
// failure, or nil. Background checkpoints run off every commit path, so
// their errors cannot surface through a statement; operators poll this.
func (db *DB) LastCheckpointError() error {
	if b, ok := db.ckptBgErr.Load().(ckptErrBox); ok {
		return b.err
	}
	return nil
}
