// Page-grouped row storage. A table's slot space is split into fixed-size
// groups of pageSlots rows ("pages"); slot s lives in page s>>pageShift at
// local index s&pageMask. Both storage modes share this layout:
//
//   - Resident (pager == nil): every page is always materialized. This is
//     the seed's semantics — and the equivalence oracle the paged engine is
//     tested against — at the cost of one extra pointer hop per row access.
//   - Paged (pager != nil): a page may be evicted to its on-disk segment
//     (see ckpt_incremental.go) and faulted back on demand, under the byte
//     budget the buffer cache enforces (see bufpool.go).
//
// Concurrency contract, inherited from DB: all mutation happens under
// db.mu's write side; reads run under the read side. Faulting a page in is
// a read-side operation (an atomic nil -> page CompareAndSwap), eviction is
// too (page -> nil) — the two can only race each other, never a mutator,
// and the loser of an install race simply discards its copy. A reader that
// obtained a page pointer before eviction keeps reading its private copy
// safely: eviction just drops the reference and the GC keeps it alive.
// Because of that, pages need no pin counts.
package sqldb

import (
	"fmt"
	"sync/atomic"
)

const (
	pageShift = 8
	pageSlots = 1 << pageShift // rows per page
	pageMask  = pageSlots - 1
)

// pageOverhead approximates the fixed memory cost of one materialized page
// (the slot array plus bookkeeping), charged against the cache budget so a
// budget is meaningful even for tables full of tiny rows.
const pageOverhead = pageSlots*24 + 128

// rowPage is one materialized page: a fixed array of row slices (nil =
// empty slot / tombstone) plus cache bookkeeping. The bool flags are only
// touched under db.mu's write side (mutators, checkpoint phases); ref is
// atomic because the read side bumps it.
type rowPage struct {
	rows [pageSlots][]Value
	// bytes is the payload size of the live rows on this page (sum of
	// Value.SizeBytes); live counts them. Maintained incrementally.
	bytes int
	live  int
	// dirty marks the page as modified since the last installed checkpoint:
	// its on-disk segment (if any) is stale, so it must not be evicted and
	// the next incremental checkpoint must rewrite it.
	dirty bool
	// flushing marks a page whose checkpoint image has been captured
	// (phase 1) but whose segment is not yet installed (phase 3). Eviction
	// skips it: a re-fault in the window would read the previous segment.
	flushing bool
	// hot marks an L1 (pinned) page: the clock sweep skips it until a
	// starved sweep demotes. Written under pager.mu.
	hot atomic.Bool
	// ref is the clock referenced counter: bumped on access, cleared by the
	// sweep. Crossing hotPromoteHits between sweeps promotes the page to L1.
	ref atomic.Int32
}

// pageDiskRec locates a page's current on-disk segment; file is "" when the
// page has never been checkpointed (or was empty at the last checkpoint).
type pageDiskRec struct {
	file  string
	bytes int64
}

// PageFaultError reports that a row page could not be read back from its
// on-disk segment. It is raised as a panic inside row access paths (which
// have no error returns) and converted back into an ordinary error at
// statement entry; like DurabilityError, a write statement that observes
// one may have applied some of its effects in memory.
type PageFaultError struct {
	Table string
	Page  int
	Err   error
}

// Error implements the error interface.
func (e *PageFaultError) Error() string {
	return fmt.Sprintf("sqldb: faulting page %d of %s: %v", e.Page, e.Table, e.Err)
}

// Unwrap exposes the underlying I/O error.
func (e *PageFaultError) Unwrap() error { return e.Err }

// catchPageFault converts a PageFaultError panic raised by a row accessor
// into the deferred caller's error return. Any other panic propagates.
func catchPageFault(err *error) {
	if r := recover(); r != nil {
		pf, ok := r.(*PageFaultError)
		if !ok {
			panic(r)
		}
		*err = pf
	}
}

// slotCount is the table's slot-space size: every live row has slot <
// slotCount. (The last page may extend past it; those cells are unused.)
func (t *Table) slotCount() int { return t.nslots }

// page returns the materialized page id, faulting it in from disk when
// evicted. Callers hold db.mu (either side).
func (t *Table) page(id int) *rowPage {
	p := t.pages[id].Load()
	if p != nil {
		if pg := t.pager; pg != nil {
			pg.hits.Add(1)
			if p.ref.Add(1) == hotPromoteHits {
				pg.promote(p)
			}
		}
		return p
	}
	return t.faultPage(id)
}

// rowAt returns the row in slot (nil for an empty slot), faulting its page
// in if needed. Callers hold db.mu (either side).
func (t *Table) rowAt(slot int) []Value {
	return t.page(slot >> pageShift).rows[slot&pageMask]
}

// growTo extends the slot space to at least n slots, materializing fresh
// empty pages for any new page ids. Callers hold db.mu's write side.
func (t *Table) growTo(n int) {
	if n > t.nslots {
		t.nslots = n
	}
	want := (t.nslots + pageMask) >> pageShift
	for len(t.pages) < want {
		t.pages = append(t.pages, atomic.Pointer[rowPage]{})
		p := &rowPage{}
		t.pages[len(t.pages)-1].Store(p)
		if t.pager != nil {
			t.pager.admit(t, len(t.pages)-1, p)
		}
	}
	if t.pager != nil {
		for len(t.disk) < len(t.pages) {
			t.disk = append(t.disk, pageDiskRec{})
		}
	}
}

// markDirty flags a page as modified since the last checkpoint. Callers
// hold db.mu's write side.
func (t *Table) markDirty(p *rowPage) {
	if !p.dirty {
		p.dirty = true
		if t.pager != nil {
			t.pager.dirtyPages.Add(1)
		}
	}
}

// putRow stores a row into slot (which must be empty), growing the slot
// space as needed and maintaining size accounting and the dirty flag.
// Index maintenance is the caller's job. Callers hold db.mu's write side.
func (t *Table) putRow(slot int, row []Value) {
	t.growTo(slot + 1)
	p := t.page(slot >> pageShift)
	p.rows[slot&pageMask] = row
	p.live++
	sz := rowBytes(row)
	p.bytes += sz
	t.dataBytes += sz
	t.markDirty(p)
	if t.pager != nil {
		t.pager.resident.Add(int64(sz))
	}
}

// clearRow removes the row in slot from its page (which must be resident),
// maintaining accounting. Index maintenance is the caller's job.
func (t *Table) clearRow(p *rowPage, slot int) {
	row := p.rows[slot&pageMask]
	p.rows[slot&pageMask] = nil
	p.live--
	sz := rowBytes(row)
	p.bytes -= sz
	t.dataBytes -= sz
	t.markDirty(p)
	if t.pager != nil {
		t.pager.resident.Add(int64(-sz))
	}
}

// rowBytes is the payload size of one row, the unit of all byte accounting.
func rowBytes(row []Value) int {
	total := 0
	for _, v := range row {
		total += v.SizeBytes()
	}
	return total
}
