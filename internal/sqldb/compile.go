package sqldb

// This file lowers expressions and whole SELECT plans into closures, so the
// operator pipeline in exec.go evaluates rows without re-walking the
// sqlparser AST: column references resolve to (table, column) positions
// once, operators dispatch once, and aggregate references become slot
// indexes. Anything the compiler does not cover reports ok=false and the
// query falls back to the interpreter in select.go, which doubles as the
// oracle for equivalence tests. The compiled forms must preserve the
// interpreter's semantics exactly — NULL comparisons, text<->int coercion,
// AND/OR short-circuit, integer division by zero — so each case below
// mirrors the corresponding branch of evalCtx.eval.

import (
	"repro/internal/sqlparser"
)

// execEnv is the per-row evaluation environment of compiled expressions:
// the current joined tuple, the statement parameters, and — in grouped
// output context — the finalized aggregate values by slot.
type execEnv struct {
	tup    tuple
	params []Value
	aggs   []Value
}

// compiledExpr evaluates one lowered expression against an environment.
type compiledExpr func(ev *execEnv) (Value, error)

// colSlot is a resolved bare column reference: the hot aggregate and
// group-key paths read tup[ti][ci] directly instead of calling the
// compiled closure per row.
type colSlot struct {
	ti, ci int
	ok     bool
}

// bareColSlot resolves e when it is a plain column reference.
func bareColSlot(sc *scope, e sqlparser.Expr) colSlot {
	if cr, isCol := e.(*sqlparser.ColRef); isCol {
		if ti, ci, err := sc.resolve(cr.Table, cr.Column); err == nil {
			return colSlot{ti: ti, ci: ci, ok: true}
		}
	}
	return colSlot{}
}

// andChain combines filter conjuncts with AND short-circuit semantics:
// evaluation stops at the first non-truthy conjunct, exactly as the
// interpreter walks the original left-associated AND tree.
func andChain(cs []compiledExpr) compiledExpr {
	return func(ev *execEnv) (Value, error) {
		for _, c := range cs {
			v, err := c(ev)
			if err != nil {
				return Value{}, err
			}
			if !v.Truthy() {
				return Bool(false), nil
			}
		}
		return Bool(true), nil
	}
}

// exprCompiler lowers expressions against one query scope. aggIdx is nil in
// row context; in grouped output context (projection, HAVING, ORDER BY over
// groups) it maps an aggregate call's printed form to its execEnv.aggs slot,
// mirroring the interpreter's agg map.
type exprCompiler struct {
	db     *DB
	sc     *scope
	aggIdx map[string]int
	// sawUDF records that a compiled expression calls a user-registered
	// function (scalar or aggregate). UDFs give no thread-safety contract,
	// so a plan touching one is excluded from parallel execution
	// (compiledSelect.noPar).
	sawUDF bool
}

func (c *exprCompiler) compile(e sqlparser.Expr) (compiledExpr, bool) {
	switch x := e.(type) {
	case *sqlparser.IntLit:
		v := Int(x.V)
		return func(*execEnv) (Value, error) { return v, nil }, true
	case *sqlparser.StrLit:
		v := Text(x.V)
		return func(*execEnv) (Value, error) { return v, nil }, true
	case *sqlparser.BytesLit:
		v := Blob(x.V)
		return func(*execEnv) (Value, error) { return v, nil }, true
	case *sqlparser.NullLit:
		return func(*execEnv) (Value, error) { return Null(), nil }, true
	case *sqlparser.BoolLit:
		v := Bool(x.V)
		return func(*execEnv) (Value, error) { return v, nil }, true
	case *sqlparser.Param:
		idx := x.Index
		return func(ev *execEnv) (Value, error) {
			if idx >= len(ev.params) {
				return Value{}, errMissingParam(idx)
			}
			return ev.params[idx], nil
		}, true
	case *sqlparser.ColRef:
		ti, ci, err := c.sc.resolve(x.Table, x.Column)
		if err != nil {
			return nil, false // interpreter reproduces the resolution error
		}
		return func(ev *execEnv) (Value, error) {
			if ev.tup == nil || ev.tup[ti] == nil {
				return Null(), nil
			}
			return ev.tup[ti][ci], nil
		}, true
	case *sqlparser.BinaryExpr:
		return c.compileBinary(x)
	case *sqlparser.UnaryExpr:
		sub, ok := c.compile(x.E)
		if !ok {
			return nil, false
		}
		switch x.Op {
		case "NOT":
			return func(ev *execEnv) (Value, error) {
				v, err := sub(ev)
				if err != nil {
					return Value{}, err
				}
				if v.IsNull() {
					return Null(), nil
				}
				return Bool(!v.Truthy()), nil
			}, true
		case "-":
			return func(ev *execEnv) (Value, error) {
				v, err := sub(ev)
				if err != nil {
					return Value{}, err
				}
				n, err := v.AsInt()
				if err != nil {
					return Value{}, err
				}
				return Int(-n), nil
			}, true
		}
		return nil, false
	case *sqlparser.InExpr:
		sub, ok := c.compile(x.E)
		if !ok {
			return nil, false
		}
		items := make([]compiledExpr, len(x.List))
		for i, item := range x.List {
			ce, ok := c.compile(item)
			if !ok {
				return nil, false
			}
			items[i] = ce
		}
		not := x.Not
		return func(ev *execEnv) (Value, error) {
			v, err := sub(ev)
			if err != nil {
				return Value{}, err
			}
			if v.IsNull() {
				return Bool(not), nil
			}
			for _, item := range items {
				iv, err := item(ev)
				if err != nil {
					return Value{}, err
				}
				if v.Equal(iv) {
					return Bool(!not), nil
				}
			}
			return Bool(not), nil
		}, true
	case *sqlparser.LikeExpr:
		sub, ok := c.compile(x.E)
		if !ok {
			return nil, false
		}
		pat, ok := c.compile(x.Pattern)
		if !ok {
			return nil, false
		}
		not := x.Not
		return func(ev *execEnv) (Value, error) {
			v, err := sub(ev)
			if err != nil {
				return Value{}, err
			}
			p, err := pat(ev)
			if err != nil {
				return Value{}, err
			}
			if v.IsNull() || p.IsNull() {
				return Bool(false), nil
			}
			return Bool(likeMatch(valueText(v), valueText(p)) != not), nil
		}, true
	case *sqlparser.BetweenExpr:
		sub, ok := c.compile(x.E)
		if !ok {
			return nil, false
		}
		lo, ok := c.compile(x.Lo)
		if !ok {
			return nil, false
		}
		hi, ok := c.compile(x.Hi)
		if !ok {
			return nil, false
		}
		not := x.Not
		return func(ev *execEnv) (Value, error) {
			v, err := sub(ev)
			if err != nil {
				return Value{}, err
			}
			lv, err := lo(ev)
			if err != nil {
				return Value{}, err
			}
			hv, err := hi(ev)
			if err != nil {
				return Value{}, err
			}
			if v.IsNull() || lv.IsNull() || hv.IsNull() {
				return Bool(false), nil
			}
			cl, err := v.Compare(lv)
			if err != nil {
				return Value{}, err
			}
			ch, err := v.Compare(hv)
			if err != nil {
				return Value{}, err
			}
			return Bool((cl >= 0 && ch <= 0) != not), nil
		}, true
	case *sqlparser.IsNullExpr:
		sub, ok := c.compile(x.E)
		if !ok {
			return nil, false
		}
		not := x.Not
		return func(ev *execEnv) (Value, error) {
			v, err := sub(ev)
			if err != nil {
				return Value{}, err
			}
			return Bool(v.IsNull() != not), nil
		}, true
	case *sqlparser.FuncCall:
		return c.compileFuncCall(x)
	}
	return nil, false
}

func (c *exprCompiler) compileFuncCall(x *sqlparser.FuncCall) (compiledExpr, bool) {
	// Aggregate calls in grouped output context read their slot.
	if c.aggIdx != nil {
		if idx, ok := c.aggIdx[x.String()]; ok {
			return func(ev *execEnv) (Value, error) { return ev.aggs[idx], nil }, true
		}
	}
	if isBuiltinAgg(x.Name) {
		return nil, false // aggregate in row context: interpreter errors
	}
	// The registries are stable for the duration of a statement (Exec holds
	// db.mu, RegisterUDF takes the write side), so resolving here is safe.
	if _, isAgg := c.db.aggUDFs[x.Name]; isAgg {
		return nil, false
	}
	fn, ok := c.db.udfs[x.Name]
	if !ok {
		return nil, false // unknown function: interpreter errors
	}
	c.sawUDF = true
	args := make([]compiledExpr, len(x.Args))
	for i, a := range x.Args {
		ce, ok := c.compile(a)
		if !ok {
			return nil, false
		}
		args[i] = ce
	}
	return func(ev *execEnv) (Value, error) {
		vals := make([]Value, len(args))
		for i, a := range args {
			v, err := a(ev)
			if err != nil {
				return Value{}, err
			}
			vals[i] = v
		}
		return fn(vals)
	}, true
}

// Comparison opcodes, resolved at compile time.
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

func (c *exprCompiler) compileBinary(x *sqlparser.BinaryExpr) (compiledExpr, bool) {
	l, ok := c.compile(x.L)
	if !ok {
		return nil, false
	}
	r, ok := c.compile(x.R)
	if !ok {
		return nil, false
	}
	switch x.Op {
	case "AND":
		return func(ev *execEnv) (Value, error) {
			lv, err := l(ev)
			if err != nil {
				return Value{}, err
			}
			if !lv.IsNull() && !lv.Truthy() {
				return Bool(false), nil
			}
			rv, err := r(ev)
			if err != nil {
				return Value{}, err
			}
			return Bool(lv.Truthy() && rv.Truthy()), nil
		}, true
	case "OR":
		return func(ev *execEnv) (Value, error) {
			lv, err := l(ev)
			if err != nil {
				return Value{}, err
			}
			if lv.Truthy() {
				return Bool(true), nil
			}
			rv, err := r(ev)
			if err != nil {
				return Value{}, err
			}
			return Bool(rv.Truthy()), nil
		}, true
	case "=", "!=", "<", "<=", ">", ">=":
		var op int
		switch x.Op {
		case "=":
			op = cmpEq
		case "!=":
			op = cmpNe
		case "<":
			op = cmpLt
		case "<=":
			op = cmpLe
		case ">":
			op = cmpGt
		default:
			op = cmpGe
		}
		return func(ev *execEnv) (Value, error) {
			lv, err := l(ev)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(ev)
			if err != nil {
				return Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Bool(false), nil
			}
			cmp, err := lv.Compare(rv)
			if err != nil {
				return Value{}, err
			}
			var out bool
			switch op {
			case cmpEq:
				out = cmp == 0
			case cmpNe:
				out = cmp != 0
			case cmpLt:
				out = cmp < 0
			case cmpLe:
				out = cmp <= 0
			case cmpGt:
				out = cmp > 0
			case cmpGe:
				out = cmp >= 0
			}
			return Bool(out), nil
		}, true
	case "||":
		return func(ev *execEnv) (Value, error) {
			lv, err := l(ev)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(ev)
			if err != nil {
				return Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Text(valueText(lv) + valueText(rv)), nil
		}, true
	case "+", "-", "*", "/", "%", "&", "|", "^":
		op := x.Op[0]
		return func(ev *execEnv) (Value, error) {
			lv, err := l(ev)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(ev)
			if err != nil {
				return Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			a, err := lv.AsInt()
			if err != nil {
				return Value{}, err
			}
			b, err := rv.AsInt()
			if err != nil {
				return Value{}, err
			}
			switch op {
			case '+':
				return Int(a + b), nil
			case '-':
				return Int(a - b), nil
			case '*':
				return Int(a * b), nil
			case '/':
				if b == 0 {
					return Null(), nil
				}
				return Int(a / b), nil
			case '%':
				if b == 0 {
					return Null(), nil
				}
				return Int(a % b), nil
			case '&':
				return Int(a & b), nil
			case '|':
				return Int(a | b), nil
			default:
				return Int(a ^ b), nil
			}
		}, true
	}
	return nil, false
}

//
// SELECT lowering: plan -> operator pipeline.
//

// compiledOrder is one lowered ORDER BY key.
type compiledOrder struct {
	key  compiledExpr
	desc bool
}

// compiledSelect is a SELECT lowered into a source pipeline (scan + join
// operators) plus compiled filter, grouping, projection and ordering. It is
// built per execution (access paths embed the parameters) and run once.
type compiledSelect struct {
	db     *DB
	s      *sqlparser.SelectStmt
	sc     *scope
	params []Value

	src     rowSource
	seedAcc access
	hasSeed bool

	where compiledExpr // nil when the statement has no WHERE
	// usedWhere marks WHERE conjuncts a hash join consumed as equi-key
	// columns; the filter skips them (the join enforces the equality).
	usedWhere map[sqlparser.Expr]bool

	grouped       bool
	groupKeys     []compiledExpr
	groupKeySlots []colSlot // direct reads for bare-column group keys
	aggs          []aggSpec
	having        compiledExpr // nil when absent

	cols    []string
	proj    []compiledExpr
	orderBy []compiledOrder
	projMem projAlloc // chunk allocator for result rows (projectInto)

	// noPar excludes this plan from morsel-parallel execution: some
	// compiled expression calls a UDF (parallel.go).
	noPar bool
}

// aggSpec builds one aggregate accumulator per group.
type aggSpec struct {
	newAcc func() vAgg
}

// compileSelect lowers s into a compiledSelect, or reports ok=false when any
// piece is outside the compiler's coverage (the interpreter then runs the
// query and reproduces any evaluation error the compiler refused to guess
// at). aggCalls is the pre-collected aggregate list from execSelect.
func (db *DB) compileSelect(s *sqlparser.SelectStmt, sc *scope, aggCalls []*sqlparser.FuncCall, params []Value) (*compiledSelect, bool) {
	cp := &compiledSelect{db: db, s: s, sc: sc, params: params}
	cp.grouped = len(s.GroupBy) > 0 || len(aggCalls) > 0

	rowc := &exprCompiler{db: db, sc: sc}

	// Source pipeline: scans and joins.
	if !cp.compileSource(rowc) {
		return nil, false
	}

	if s.Where != nil {
		// Conjuncts consumed as hash-join keys are already enforced on
		// every joined tuple; filter on the rest, preserving the
		// interpreter's left-to-right AND order among them.
		var remaining []compiledExpr
		for _, pred := range conjuncts(s.Where) {
			if cp.usedWhere[pred] {
				continue
			}
			ce, ok := rowc.compile(pred)
			if !ok {
				return nil, false
			}
			remaining = append(remaining, ce)
		}
		switch len(remaining) {
		case 0:
		case 1:
			cp.where = remaining[0]
		default:
			cp.where = andChain(remaining)
		}
	}

	// Output context: grouped queries project over aggregate slots.
	outc := rowc
	if cp.grouped {
		// Deduplicate aggregate calls by printed form, as the interpreter
		// does, and lower each into an accumulator factory.
		uniq := make(map[string]int)
		for _, fc := range aggCalls {
			key := fc.String()
			if _, ok := uniq[key]; ok {
				continue
			}
			spec, ok := db.compileAgg(rowc, fc)
			if !ok {
				return nil, false
			}
			uniq[key] = len(cp.aggs)
			cp.aggs = append(cp.aggs, spec)
		}
		for _, g := range s.GroupBy {
			ge, ok := rowc.compile(g)
			if !ok {
				return nil, false
			}
			cp.groupKeys = append(cp.groupKeys, ge)
			cp.groupKeySlots = append(cp.groupKeySlots, bareColSlot(sc, g))
		}
		outc = &exprCompiler{db: db, sc: sc, aggIdx: uniq}
		if s.Having != nil {
			h, ok := outc.compile(s.Having)
			if !ok {
				return nil, false
			}
			cp.having = h
		}
	} else if s.Having != nil {
		// HAVING without grouping: leave it to the interpreter.
		return nil, false
	}

	cols, projExprs, err := db.projectionPlan(s, sc)
	if err != nil {
		return nil, false
	}
	cp.cols = cols
	for _, e := range projExprs {
		pe, ok := outc.compile(e)
		if !ok {
			return nil, false
		}
		cp.proj = append(cp.proj, pe)
	}

	for _, item := range db.resolveOrderBy(s) {
		ke, ok := outc.compile(item.Expr)
		if !ok {
			return nil, false
		}
		cp.orderBy = append(cp.orderBy, compiledOrder{key: ke, desc: item.Desc})
	}
	cp.noPar = rowc.sawUDF || outc.sawUDF
	return cp, true
}

// compileAgg lowers one aggregate call into an accumulator factory,
// mirroring newAggAcc. Argument expressions compile in row context; an
// aggregate nested inside another aggregate's argument fails compilation so
// the interpreter can produce its context error.
func (db *DB) compileAgg(rowc *exprCompiler, fc *sqlparser.FuncCall) (aggSpec, bool) {
	if factory, ok := db.aggUDFs[fc.Name]; ok {
		args := make([]compiledExpr, len(fc.Args))
		for i, a := range fc.Args {
			ce, ok := rowc.compile(a)
			if !ok {
				return aggSpec{}, false
			}
			args[i] = ce
		}
		rowc.sawUDF = true // AggState carries opaque cross-row state: not mergeable
		return aggSpec{newAcc: func() vAgg { return &cUDFAcc{args: args, state: factory()} }}, true
	}
	if fc.Name == "COUNT" && fc.Star {
		return aggSpec{newAcc: func() vAgg { return &cCountStarAcc{} }}, true
	}
	// The one-argument builtins: an arity mismatch only errors when a row is
	// actually stepped, so leave those statements to the interpreter.
	if len(fc.Args) != 1 {
		return aggSpec{}, false
	}
	arg, ok := rowc.compile(fc.Args[0])
	if !ok {
		return aggSpec{}, false
	}
	// A bare-column argument steps via a direct slot read, skipping the
	// closure call per row.
	slot := bareColSlot(rowc.sc, fc.Args[0])
	switch fc.Name {
	case "COUNT":
		if fc.Distinct {
			return aggSpec{newAcc: func() vAgg { return &cCountDistinctAcc{arg: arg, slot: slot, seen: map[string]bool{}} }}, true
		}
		return aggSpec{newAcc: func() vAgg { return &cCountAcc{arg: arg, slot: slot} }}, true
	case "SUM":
		return aggSpec{newAcc: func() vAgg { return &cSumAcc{arg: arg, slot: slot} }}, true
	case "AVG":
		return aggSpec{newAcc: func() vAgg { return &cAvgAcc{arg: arg, slot: slot} }}, true
	case "MIN":
		return aggSpec{newAcc: func() vAgg { return &cMinMaxAcc{arg: arg, slot: slot, min: true} }}, true
	case "MAX":
		return aggSpec{newAcc: func() vAgg { return &cMinMaxAcc{arg: arg, slot: slot} }}, true
	}
	return aggSpec{}, false
}

// compileSource lowers the FROM clause into a chain of scan and join
// operators following the same join order and per-table access paths as the
// interpreter (produceTuples).
func (cp *compiledSelect) compileSource(rowc *exprCompiler) bool {
	db, s, sc, params := cp.db, cp.s, cp.sc, cp.params
	if len(s.From) == 0 {
		cp.src = constSource{}
		return true
	}

	conj := conjuncts(s.Where)
	accesses := make([]access, len(sc.tabs))
	for ti := range sc.tabs {
		accesses[ti] = db.bestAccess(sc.tabs[ti].t, sc, ti, conj, params)
	}
	commaJoin := len(sc.tabs) > 1
	for _, ref := range s.From {
		if ref.JoinOn != nil {
			commaJoin = false
			break
		}
	}
	order := joinOrder(s, accesses)
	if commaJoin && len(s.OrderBy) == 0 {
		// With no ORDER BY the result is order-insensitive, so the planner
		// is free to pick hash-join build sides by cost: stream the most
		// expensive access path and build hash tables over the cheaper ones.
		// (With an ORDER BY we keep the interpreter's order so stable-sort
		// ties break identically.)
		seed := 0
		for i, a := range accesses {
			if a.cost > accesses[seed].cost {
				seed = i
			}
		}
		order = make([]int, 0, len(sc.tabs))
		order = append(order, seed)
		for i := range sc.tabs {
			if i != seed {
				order = append(order, i)
			}
		}
	}

	seed := order[0]
	cp.seedAcc = accesses[seed]
	cp.hasSeed = true
	var src rowSource = &scanSource{t: sc.tabs[seed].t, acc: accesses[seed], ti: seed, ntabs: len(sc.tabs)}

	placed := make([]bool, len(sc.tabs))
	placed[seed] = true
	for k := 1; k < len(order); k++ {
		ti := order[k]
		ref := s.From[ti]

		keys, residual, ok := cp.joinKeys(rowc, ref.JoinOn, conj, ti, placed)
		if !ok {
			return false
		}
		if len(keys) > 0 {
			src = &hashJoinSource{
				db: db, inner: src, t: sc.tabs[ti].t, ti: ti, ntabs: len(sc.tabs),
				acc: accesses[ti], keys: keys, residual: residual, params: params,
			}
		} else {
			src = &loopJoinSource{
				db: db, inner: src, t: sc.tabs[ti].t, ti: ti, ntabs: len(sc.tabs),
				acc: accesses[ti], on: residual, params: params,
			}
		}
		placed[ti] = true
	}
	cp.src = src
	return true
}

// joinKeys extracts the multi-column equi-key for joining table ti: ON
// conjuncts of the form `placed-expr = ti.col` (either orientation), plus —
// exactly like the interpreter's whereProbe — equivalent WHERE conjuncts,
// which for an inner join only prune pairs the final WHERE filter would
// reject anyway. Remaining ON conjuncts (and, for a WHERE-derived key, the
// full ON clause) become the residual filter evaluated on each joined
// tuple. Reports ok=false when a piece fails to compile.
func (cp *compiledSelect) joinKeys(rowc *exprCompiler, on sqlparser.Expr, whereConj []sqlparser.Expr, ti int, placed []bool) ([]joinKey, compiledExpr, bool) {
	sc := cp.sc
	var keys []joinKey
	var residual []sqlparser.Expr

	tryKey := func(pred sqlparser.Expr) (joinKey, bool) {
		b, ok := pred.(*sqlparser.BinaryExpr)
		if !ok || b.Op != "=" {
			return joinKey{}, false
		}
		colOf := func(e sqlparser.Expr) (int, bool) {
			cr, ok := e.(*sqlparser.ColRef)
			if !ok {
				return 0, false
			}
			cti, ci, err := sc.resolve(cr.Table, cr.Column)
			if err != nil || cti != ti {
				return 0, false
			}
			return ci, true
		}
		try := func(buildSide, probeSide sqlparser.Expr) (joinKey, bool) {
			ci, ok := colOf(buildSide)
			if !ok || !exprOverPlaced(sc, probeSide, placed) {
				return joinKey{}, false
			}
			pe, ok := rowc.compile(probeSide)
			if !ok {
				return joinKey{}, false
			}
			return joinKey{probe: pe, buildPos: ci}, true
		}
		if k, ok := try(b.L, b.R); ok {
			return k, true
		}
		return try(b.R, b.L)
	}

	for _, pred := range conjuncts(on) {
		if k, ok := tryKey(pred); ok {
			keys = append(keys, k)
		} else {
			residual = append(residual, pred)
		}
	}
	if len(residual) > 0 && len(keys) == 0 && on != nil {
		// No usable key in the ON clause: the loop join evaluates the whole
		// clause, preserving the interpreter's left-to-right AND order.
		residual = []sqlparser.Expr{on}
	}
	for _, pred := range whereConj {
		if k, ok := tryKey(pred); ok {
			keys = append(keys, k)
			// The hash join enforces this equality on every emitted pair
			// (by trusted key lookup or per-pair coercing comparison), so
			// the WHERE filter need not re-evaluate it.
			if cp.usedWhere == nil {
				cp.usedWhere = make(map[sqlparser.Expr]bool)
			}
			cp.usedWhere[pred] = true
		}
	}

	var resExpr compiledExpr
	if len(residual) > 0 {
		e := residual[0]
		for _, r := range residual[1:] {
			e = &sqlparser.BinaryExpr{Op: "AND", L: e, R: r}
		}
		re, ok := rowc.compile(e)
		if !ok {
			return nil, nil, false
		}
		resExpr = re
	}
	return keys, resExpr, true
}

// exprOverPlaced reports whether every column reference in e resolves to an
// already-placed table, so the expression can be evaluated against the probe
// stream. Unresolvable references disqualify the expression (the residual
// filter then reproduces the interpreter's behavior for them).
func exprOverPlaced(sc *scope, e sqlparser.Expr, placed []bool) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.BytesLit,
		*sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
		return true
	case *sqlparser.ColRef:
		ti, _, err := sc.resolve(x.Table, x.Column)
		return err == nil && placed[ti]
	case *sqlparser.BinaryExpr:
		return exprOverPlaced(sc, x.L, placed) && exprOverPlaced(sc, x.R, placed)
	case *sqlparser.UnaryExpr:
		return exprOverPlaced(sc, x.E, placed)
	case *sqlparser.InExpr:
		if !exprOverPlaced(sc, x.E, placed) {
			return false
		}
		for _, item := range x.List {
			if !exprOverPlaced(sc, item, placed) {
				return false
			}
		}
		return true
	case *sqlparser.LikeExpr:
		return exprOverPlaced(sc, x.E, placed) && exprOverPlaced(sc, x.Pattern, placed)
	case *sqlparser.BetweenExpr:
		return exprOverPlaced(sc, x.E, placed) && exprOverPlaced(sc, x.Lo, placed) && exprOverPlaced(sc, x.Hi, placed)
	case *sqlparser.IsNullExpr:
		return exprOverPlaced(sc, x.E, placed)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			if !exprOverPlaced(sc, a, placed) {
				return false
			}
		}
		return true
	}
	return false
}
