package sqldb

import (
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{Blob([]byte{1}), Blob([]byte{2}), -1},
		{Text("5"), Int(5), 0}, // MySQL-ish coercion
		{Int(7), Text("6"), 1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestValueCompareErrors(t *testing.T) {
	if _, err := Null().Compare(Int(1)); err == nil {
		t.Error("NULL comparison should error")
	}
	if _, err := Text("abc").Compare(Int(1)); err == nil {
		t.Error("non-numeric text vs int should error")
	}
	if _, err := Blob([]byte{1}).Compare(Int(1)); err == nil {
		t.Error("blob vs int should error")
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL = NULL must be false in SQL")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL equals nothing")
	}
	if !Int(5).Equal(Int(5)) {
		t.Error("5 = 5")
	}
}

func TestValueKeyInjective(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return Int(a).Key() == Int(b).Key()
		}
		return Int(a).Key() != Int(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Cross-kind keys never collide, even for "equal-looking" values.
	if Int(5).Key() == Text("5").Key() {
		t.Error("int and text keys collide")
	}
	if Text("x").Key() == Blob([]byte("x")).Key() {
		t.Error("text and blob keys collide")
	}
	if Null().Key() == Int(0).Key() {
		t.Error("null and zero keys collide")
	}
}

func TestValueTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Int(0), false}, {Int(1), true}, {Int(-1), true},
		{Text(""), false}, {Text("x"), true},
		{Null(), false},
		{Blob(nil), false}, {Blob([]byte{0}), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%v) = %v", c.v, c.v.Truthy())
		}
	}
}

func TestValueAsInt(t *testing.T) {
	if n, err := Text("42").AsInt(); err != nil || n != 42 {
		t.Errorf("AsInt('42') = %d, %v", n, err)
	}
	if _, err := Text("nope").AsInt(); err == nil {
		t.Error("AsInt('nope') should fail")
	}
	if _, err := Null().AsInt(); err == nil {
		t.Error("AsInt(NULL) should fail")
	}
}

func TestValueSizeBytes(t *testing.T) {
	if Int(9).SizeBytes() != 8 {
		t.Error("int size")
	}
	if Text("hello").SizeBytes() != 5 {
		t.Error("text size")
	}
	if Blob(make([]byte, 12)).SizeBytes() != 12 {
		t.Error("blob size")
	}
}

func TestBoolHelper(t *testing.T) {
	if Bool(true).I != 1 || Bool(false).I != 0 {
		t.Error("Bool mapping")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__o", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"HELLO", "hello", true}, // case-insensitive
		{"a", "_", true},
		{"ab", "_", false},
		{"needle in haystack", "%needle%", true},
		{"haystack", "%needle%", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
