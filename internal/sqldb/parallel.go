package sqldb

// Morsel-driven parallel execution for the compiled pipeline (exec.go).
//
// A parallel-eligible SELECT splits its seed table scan into fixed-size
// slot-range morsels (morselSlots slots, page-aligned) claimed off a
// monotonic counter by a small worker pool. Each worker runs its own copy
// of the scan -> filter -> join-probe pipeline over thread-private scratch
// memory (tuple/projection allocators, join probe scratch, group hash
// table); hash joins build their table in parallel first (striped build,
// buildParallel); order-sensitive tails (merge, sort, DISTINCT, LIMIT,
// projection of sorted rows) stay serial on the calling goroutine.
//
// The contract is strict: parallel execution returns bit-identical,
// identically-ordered results — and errors — vs the serial compiled path,
// which remains the equivalence oracle. The rules that make this hold:
//
//   - Output order. Morsels are slot ranges, so concatenating per-morsel
//     result buckets in morsel-index order reproduces the serial scan
//     order exactly. Join operators emit matches per probe tuple in build
//     slot order (the build table preserves it), as serial does.
//   - Group order. Serial hash aggregation emits groups in first-seen
//     order. Each parallel group records the (morsel, per-morsel sequence)
//     tag of the tuple that created it; merged groups keep the minimum
//     tag, and sorting merged groups by tag reproduces first-seen order.
//   - Errors. A failing worker stops the pool; the error from the
//     lowest-numbered morsel wins. Morsels are claimed in ascending order,
//     so when morsel m errors every morsel < m was already claimed and
//     runs to completion — for row-local errors (WHERE, projection, probe
//     keys, SUM coercion) the winning error is exactly the error serial
//     execution would have hit first. The one non-row-local case, the
//     MIN/MAX running-best comparison (aggCompareError), aborts the
//     parallel attempt and reruns the statement serially instead.
//   - Aggregates. Builtin accumulators merge associatively (aggMerger).
//     MIN/MAX partials additionally track the set of value kinds folded
//     in: a multi-kind union makes the fold order observable (cross-kind
//     coercion errors, tie identity), so the merge returns
//     errParallelFallback and the statement reruns serially. UDFs — scalar
//     or aggregate — carry no thread-safety or mergeability contract and
//     are excluded at compile time (compiledSelect.noPar).
//   - Paged storage. Workers fault pages through the buffer pool like any
//     reader (page.go's lock-free fault-in contract); each work unit runs
//     under its own catchPageFault so a fault surfaces as an ordinary
//     error on the statement, exactly as the serial path's recovery does.
//     The statement goroutine holds db.mu's read side for the whole run,
//     which keeps mutators out for every worker.
//
// Worker accounting is global (execTokens): each statement's calling
// goroutine is always worker zero and extra workers are borrowed from a
// process-wide budget, so concurrent statements — and the sharded engine's
// per-shard fan-out — share one pool instead of oversubscribing the host.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// morselSlots is the scan morsel size in table slots: a multiple of
// pageSlots so morsels are page-aligned, small enough to keep the pool
// load-balanced, large enough to amortize claim overhead. Package variable
// so the equivalence tests can shrink it and exercise many morsels on
// small tables (iterateMorsel stays correct for any positive value).
var morselSlots = 8 * pageSlots

// buildStripes is the fan-out of the parallel hash-join build: build rows
// are partitioned by a hash of their encoded key, then each stripe's map
// is built by one worker folding morsel outputs in index order (so per-key
// row slices keep global slot order without locks or sorting).
const buildStripes = 16

// parallelMinRows gates fan-out by seed-table size: below it the
// per-statement setup (workers, buckets, merge) costs more than it saves.
// Package variable so the equivalence tests can force tiny tables through
// the parallel path.
var parallelMinRows = 1024

// errParallelFallback aborts a parallel attempt whose merge would be
// order-sensitive (see cMinMaxAcc.merge). The statement reruns serially;
// the sentinel never escapes to callers.
var errParallelFallback = errors.New("sqldb: parallel execution fell back to serial")

//
// Worker token pool.
//

// workerTokenPool is the process-wide budget of *extra* workers (beyond
// each statement's own goroutine). Acquisition never blocks: a statement
// takes what is available and runs with it, degrading to serial under
// contention. Capacity starts at GOMAXPROCS-1 and grows to honor explicit
// SetExecWorkers/SetDefaultExecWorkers requests; it never shrinks.
type workerTokenPool struct {
	mu       sync.Mutex
	capacity int
	inUse    int
}

var execTokens = &workerTokenPool{capacity: initialTokenCap()}

func initialTokenCap() int {
	if n := runtime.GOMAXPROCS(0) - 1; n > 0 {
		return n
	}
	return 0
}

// ensureCap grows the pool so an explicit worker-count request can be met
// even on a box whose GOMAXPROCS is lower (worker sweeps, ablations).
func (p *workerTokenPool) ensureCap(n int) {
	p.mu.Lock()
	if n > p.capacity {
		p.capacity = n
	}
	p.mu.Unlock()
}

// tryAcquire grants up to want tokens, possibly zero. Never blocks.
func (p *workerTokenPool) tryAcquire(want int) int {
	if want <= 0 {
		return 0
	}
	p.mu.Lock()
	grant := p.capacity - p.inUse
	if grant > want {
		grant = want
	}
	if grant < 0 {
		grant = 0
	}
	p.inUse += grant
	p.mu.Unlock()
	return grant
}

func (p *workerTokenPool) release(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	p.inUse -= n
	p.mu.Unlock()
}

// defaultExecWorkers is the process-wide worker-count default applied to
// databases with no per-DB setting; the server's -exec-workers flag sets
// it so every engine topology (single, sharded shards, replication
// followers, gather temporaries) inherits one knob.
var defaultExecWorkers int32

// SetDefaultExecWorkers sets the process-wide default intra-query worker
// count. 0 restores the built-in default (GOMAXPROCS); 1 forces serial
// execution everywhere a DB has no explicit setting.
func SetDefaultExecWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n > 1 {
		execTokens.ensureCap(n - 1)
	}
	atomic.StoreInt32(&defaultExecWorkers, int32(n))
}

// effectiveExecWorkers resolves the per-statement worker cap: the DB's own
// setting, else the process default, else GOMAXPROCS.
func (db *DB) effectiveExecWorkers() int {
	if n := atomic.LoadInt32(&db.execWorkers); n > 0 {
		return int(n)
	}
	if n := atomic.LoadInt32(&defaultExecWorkers); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

//
// Morsel driver.
//

// morselCountFor is the number of scan morsels covering t's slot space.
func morselCountFor(t *Table) int {
	return (t.nslots + morselSlots - 1) / morselSlots
}

// iterateMorsel walks the live rows of morsel m in slot order, page by
// page. May panic *PageFaultError via t.page, like every row access path.
func iterateMorsel(t *Table, m int, fn func(row []Value) bool) {
	lo := m * morselSlots
	hi := lo + morselSlots
	if hi > t.nslots {
		hi = t.nslots
	}
	for id := lo >> pageShift; id<<pageShift < hi; id++ {
		p := t.page(id)
		base := id << pageShift
		start := 0
		if base < lo {
			start = lo - base // unaligned morsel size (tests): skip prior morsel's slots
		}
		n := hi - base
		if n > pageSlots {
			n = pageSlots
		}
		for i := start; i < n; i++ {
			if row := p.rows[i]; row != nil {
				if !fn(row) {
					return
				}
			}
		}
	}
}

// runParallelMorsels executes fn(worker, morsel) for every morsel in
// [0,n), claiming morsels in ascending order off a shared counter. The
// calling goroutine is worker 0; nw-1 extra goroutines are spawned. On
// error the pool stops and the error from the lowest-numbered morsel is
// returned (see the determinism rules in the file comment). Each call runs
// under its own catchPageFault so paged-table faults surface as errors.
// All workers are joined before return.
func runParallelMorsels(n, nw int, fn func(worker, morsel int) error) error {
	if nw > n {
		nw = n
	}
	var (
		next int64
		stop int32
		mu   sync.Mutex
		errM = -1
		werr error
	)
	record := func(m int, err error) {
		mu.Lock()
		if errM < 0 || m < errM {
			errM, werr = m, err
		}
		mu.Unlock()
		atomic.StoreInt32(&stop, 1)
	}
	work := func(w int) {
		for atomic.LoadInt32(&stop) == 0 {
			m := int(atomic.AddInt64(&next, 1)) - 1
			if m >= n {
				return
			}
			err := func() (err error) {
				defer catchPageFault(&err)
				return fn(w, m)
			}()
			if err != nil {
				record(m, err)
				return
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()
	return werr
}

//
// Parallel plan: eligibility and per-worker pipeline state.
//

// paraStep is one join operator of the pipeline, innermost first.
type paraStep struct {
	hash *hashJoinSource
	loop *loopJoinSource
	bt   *builtTable // prepared build table (hash steps)
}

type paraPlan struct {
	seed  *scanSource
	steps []*paraStep
}

// planParallel decides whether the lowered plan is parallel-eligible and
// extracts its operator chain. Eligibility: a real seed table scanned
// unpruned (morsels cover the whole slot space; a sarg-pruned or indexed
// access path keeps the cheaper serial plan), at least parallelMinRows
// live seed rows (cost gating: fan-out setup dwarfs tiny scans), no UDFs
// (noPar), and a chain made only of operators the morsel pipeline knows.
func (p *compiledSelect) planParallel() (*paraPlan, bool) {
	if p.noPar || !p.hasSeed || p.seedAcc.kind != accessScan {
		return nil, false
	}
	var rev []*paraStep
	src := p.src
	for {
		switch s := src.(type) {
		case *scanSource:
			if s.acc.kind != accessScan || s.t.live < parallelMinRows {
				return nil, false
			}
			steps := make([]*paraStep, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				steps = append(steps, rev[i])
			}
			return &paraPlan{seed: s, steps: steps}, true
		case *hashJoinSource:
			rev = append(rev, &paraStep{hash: s})
			src = s.inner
		case *loopJoinSource:
			rev = append(rev, &paraStep{loop: s})
			src = s.inner
		default:
			return nil, false
		}
	}
}

// tupAlloc carves tuples from chunks, one allocation per batchSize tuples:
// the per-worker analogue of the serial batcher's chunk allocator.
type tupAlloc struct {
	ntabs int
	mem   [][]Value
}

func (a *tupAlloc) newTuple() tuple {
	if len(a.mem) < a.ntabs {
		a.mem = make([][]Value, a.ntabs*batchSize)
	}
	t := a.mem[:a.ntabs:a.ntabs]
	a.mem = a.mem[a.ntabs:]
	return t
}

// pgroup is a parallel worker's hash-aggregation group: the serial cgroup
// plus the (morsel, sequence) tag of the tuple that created it, which
// reproduces serial first-seen order after the merge.
type pgroup struct {
	cgroup
	m, seq int
}

// paraWorker is one worker's thread-private pipeline state. Nothing here
// is shared: tuples, projection rows, probe scratch and groups all live in
// per-worker memory, so workers only touch shared state through the
// read-only plan, the read-only build tables and the per-morsel result
// buckets they own.
type paraWorker struct {
	p       *compiledSelect
	pp      *paraPlan
	alloc   tupAlloc
	proj    projAlloc
	ev      execEnv
	scr     []*probeScratch
	scratch tuple // reused seed tuple (joins copy out of it immediately)
	keyBuf  []byte

	groups map[string]*pgroup // grouped mode only

	// sink consumes one joined tuple. volatile marks a tuple whose backing
	// slice is reused by the producer; a sink that retains it must copy.
	sink  func(tup tuple, volatile bool) error
	entry func(tup tuple) error // seed-side entry of the operator chain
	cur   int                   // morsel being processed
	seq   int                   // tuples fed to sink this morsel
}

func (p *compiledSelect) newParaWorker(pp *paraPlan) *paraWorker {
	pw := &paraWorker{
		p:       p,
		pp:      pp,
		alloc:   tupAlloc{ntabs: pp.seed.ntabs},
		ev:      execEnv{params: p.params},
		scratch: make(tuple, pp.seed.ntabs),
	}
	for _, st := range pp.steps {
		scr := &probeScratch{
			pev: execEnv{params: p.params},
			rev: execEnv{params: p.params},
		}
		if st.hash != nil {
			// probeTuple ranges over probeVals: its length must equal the
			// join's key count exactly.
			scr.probeVals = make([]Value, len(st.hash.keys))
		}
		pw.scr = append(pw.scr, scr)
	}
	return pw
}

// buildChain composes the worker's operator chain, outermost-last, ending
// in the sink. Seed tuples are a reused scratch slice: with join steps the
// first operator copies the slice headers into a fresh tuple immediately
// (pairFunc / loopProbe), so only the no-step chain marks them volatile.
func (pw *paraWorker) buildChain() {
	if len(pw.pp.steps) == 0 {
		pw.entry = func(tup tuple) error { return pw.sink(tup, true) }
		return
	}
	next := func(tup tuple) error { return pw.sink(tup, false) }
	for j := len(pw.pp.steps) - 1; j >= 0; j-- {
		st := pw.pp.steps[j]
		scr := pw.scr[j]
		inner := next
		if st.hash != nil {
			h := st.hash
			bt := st.bt
			pair := h.pairFunc(pw.alloc.newTuple, inner, &scr.rev)
			next = func(tup tuple) error { return h.probeTuple(bt, scr, tup, pair) }
		} else {
			l := st.loop
			next = func(tup tuple) error { return pw.loopProbe(l, scr, tup, inner) }
		}
	}
	pw.entry = next
}

// loopProbe is the morsel pipeline's nested-loop step: the parallel twin
// of loopJoinSource.run's inner loop, over per-worker memory.
func (pw *paraWorker) loopProbe(l *loopJoinSource, scr *probeScratch, tup tuple, next func(tuple) error) error {
	var iterErr error
	l.acc.iterate(l.t, func(_ int, row []Value) bool {
		nt := pw.alloc.newTuple()
		copy(nt, tup)
		nt[l.ti] = row
		if l.on != nil {
			scr.rev.tup = nt
			v, err := l.on(&scr.rev)
			if err != nil {
				iterErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		if err := next(nt); err != nil {
			iterErr = err
			return false
		}
		return true
	})
	return iterErr
}

// runMorsel streams one morsel of the seed scan through the worker's chain.
func (pw *paraWorker) runMorsel(m int) error {
	pw.cur, pw.seq = m, 0
	seed := pw.pp.seed
	var err error
	iterateMorsel(seed.t, m, func(row []Value) bool {
		pw.scratch[seed.ti] = row
		if e := pw.entry(pw.scratch); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

// applyWhere evaluates the residual WHERE filter against tup.
func (pw *paraWorker) applyWhere(tup tuple) (bool, error) {
	p := pw.p
	if p.where == nil {
		return true, nil
	}
	pw.ev.tup, pw.ev.aggs = tup, nil
	v, err := p.where(&pw.ev)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// groupSink folds one tuple into the worker's private group table: the
// parallel twin of runGrouped's step closure, plus the creation tag.
func (pw *paraWorker) groupSink(tup tuple, volatile bool) error {
	p := pw.p
	seq := pw.seq
	pw.seq++
	ok, err := pw.applyWhere(tup)
	if err != nil || !ok {
		return err
	}
	ev := &pw.ev
	ev.tup, ev.aggs = tup, nil
	pw.keyBuf = pw.keyBuf[:0]
	for gi, gk := range p.groupKeys {
		var v Value
		if s := p.groupKeySlots[gi]; s.ok {
			v = tup[s.ti][s.ci]
		} else {
			var err error
			v, err = gk(ev)
			if err != nil {
				return err
			}
		}
		pw.keyBuf = v.appendKey(pw.keyBuf)
		pw.keyBuf = append(pw.keyBuf, 0x1f)
	}
	gr := pw.groups[string(pw.keyBuf)]
	if gr == nil {
		first := tup
		if volatile {
			first = append(tuple(nil), tup...)
		}
		gr = &pgroup{m: pw.cur, seq: seq}
		gr.first = first
		gr.accs = make([]vAgg, len(p.aggs))
		for i, spec := range p.aggs {
			gr.accs[i] = spec.newAcc()
		}
		pw.groups[string(pw.keyBuf)] = gr
	}
	for _, acc := range gr.accs {
		if err := acc.step(ev); err != nil {
			return err
		}
	}
	return nil
}

//
// Statement-level dispatch.
//

// tryRunParallel attempts morsel-parallel execution. ran=false means the
// caller should run the serial path: the plan is ineligible, no worker
// tokens were available, or the parallel attempt hit a merge-order hazard
// and must be redone serially (errParallelFallback; the rerun recounts the
// statement's join tallies — a rare, documented double count).
func (p *compiledSelect) tryRunParallel() (res *Result, err error, ran bool) {
	maxW := p.db.effectiveExecWorkers()
	if maxW <= 1 {
		return nil, nil, false
	}
	pp, ok := p.planParallel()
	if !ok {
		return nil, nil, false
	}
	nm := morselCountFor(pp.seed.t)
	want := maxW
	if nm < want {
		want = nm
	}
	if want <= 1 {
		return nil, nil, false
	}
	grant := execTokens.tryAcquire(want - 1)
	if grant == 0 {
		return nil, nil, false
	}
	defer execTokens.release(grant)
	res, err = p.runParallel(pp, nm, grant+1)
	if err != nil {
		var ace *aggCompareError
		if err == errParallelFallback || errors.As(err, &ace) {
			// Merge-order hazard: discard the parallel attempt and rerun
			// the whole statement serially for the exact serial outcome.
			return nil, nil, false
		}
		return nil, err, true
	}
	atomic.AddInt64(&p.db.parallelPipelines, 1)
	return res, nil, true
}

func (p *compiledSelect) runParallel(pp *paraPlan, nm, nw int) (*Result, error) {
	// Prepare join build sides up front (build-side morsels may themselves
	// run parallel); loop steps tally their nested-loop counter here, once
	// per statement, as the serial operator does.
	for _, st := range pp.steps {
		if st.hash != nil {
			bt, err := st.hash.prepare(nw)
			if err != nil {
				return nil, err
			}
			st.bt = bt
		} else {
			atomic.AddInt64(&p.db.nestedLoops, 1)
		}
	}

	workers := make([]*paraWorker, nw)
	for w := range workers {
		workers[w] = p.newParaWorker(pp)
	}

	var (
		rowsBy  [][][]Value
		itemsBy [][]sortItem
	)
	switch {
	case p.grouped:
		for _, pw := range workers {
			pw.groups = make(map[string]*pgroup)
			pw.sink = pw.groupSink
		}
	case len(p.orderBy) > 0:
		itemsBy = make([][]sortItem, nm)
		for _, pw := range workers {
			pw := pw
			pw.sink = func(tup tuple, volatile bool) error {
				ok, err := pw.applyWhere(tup)
				if err != nil || !ok {
					return err
				}
				if volatile {
					nt := pw.alloc.newTuple()
					copy(nt, tup)
					tup = nt
				}
				itemsBy[pw.cur] = append(itemsBy[pw.cur], sortItem{tup: tup})
				return nil
			}
		}
	default:
		rowsBy = make([][][]Value, nm)
		for _, pw := range workers {
			pw := pw
			pw.sink = func(tup tuple, volatile bool) error {
				ok, err := pw.applyWhere(tup)
				if err != nil || !ok {
					return err
				}
				row, err := p.projectWith(&pw.proj, &pw.ev, tup, nil)
				if err != nil {
					return err
				}
				rowsBy[pw.cur] = append(rowsBy[pw.cur], row)
				return nil
			}
		}
	}
	for _, pw := range workers {
		pw.buildChain()
	}

	err := runParallelMorsels(nm, nw, func(w, m int) error {
		return workers[w].runMorsel(m)
	})
	atomic.AddInt64(&p.db.morselsRun, int64(nm))
	if err != nil {
		return nil, err
	}

	if p.grouped {
		return p.mergeGrouped(workers)
	}
	res := &Result{Columns: p.cols}
	if len(p.orderBy) > 0 {
		var items []sortItem
		for _, mi := range itemsBy {
			items = append(items, mi...)
		}
		if err := p.sortItems(items); err != nil {
			return nil, err
		}
		ev := &execEnv{params: p.params}
		for i := range items {
			row, err := p.projectInto(ev, items[i].tup, nil)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	} else {
		for _, mr := range rowsBy {
			res.Rows = append(res.Rows, mr...)
		}
	}
	if p.s.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	res.Rows = applyLimit(res.Rows, p.s.Limit, p.s.Offset)
	return res, nil
}

// mergeGrouped folds the workers' private group tables into one, combining
// accumulators and keeping each group's minimum creation tag, then hands
// tag-sorted groups (= serial first-seen order) to the shared serial tail.
func (p *compiledSelect) mergeGrouped(workers []*paraWorker) (*Result, error) {
	merged := make(map[string]*pgroup)
	for _, pw := range workers {
		for key, g := range pw.groups {
			mg := merged[key]
			if mg == nil {
				merged[key] = g
				continue
			}
			// Keep the earlier-created group as the base: its first tuple
			// is the one serial execution retained. Accumulator merges are
			// order-independent (enforced by cMinMaxAcc's kind tracking),
			// so base choice only fixes the group identity.
			lo, hi := mg, g
			if g.m < lo.m || (g.m == lo.m && g.seq < lo.seq) {
				lo, hi = g, mg
				merged[key] = g
			}
			for i := range lo.accs {
				am, ok := lo.accs[i].(aggMerger)
				if !ok {
					return nil, errParallelFallback
				}
				if err := am.merge(hi.accs[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	pgs := make([]*pgroup, 0, len(merged))
	for _, g := range merged {
		pgs = append(pgs, g)
	}
	sort.Slice(pgs, func(i, j int) bool {
		if pgs[i].m != pgs[j].m {
			return pgs[i].m < pgs[j].m
		}
		return pgs[i].seq < pgs[j].seq
	})
	order := make([]*cgroup, len(pgs))
	for i, g := range pgs {
		order[i] = &g.cgroup
	}
	return p.finishGrouped(order)
}

//
// Mergeable accumulators. merge folds a peer partial (same aggregate spec,
// disjoint row sets) into the receiver; all implementations are
// order-independent so the nondeterministic worker merge order cannot leak
// into results. cUDFAcc deliberately does not implement aggMerger.
//

type aggMerger interface {
	merge(other vAgg) error
}

func (a *cCountStarAcc) merge(o vAgg) error {
	a.n += o.(*cCountStarAcc).n
	return nil
}

func (a *cCountAcc) merge(o vAgg) error {
	a.n += o.(*cCountAcc).n
	return nil
}

func (a *cCountDistinctAcc) merge(o vAgg) error {
	for k := range o.(*cCountDistinctAcc).seen {
		a.seen[k] = true
	}
	return nil
}

func (a *cSumAcc) merge(o vAgg) error {
	b := o.(*cSumAcc)
	a.sum += b.sum
	a.any = a.any || b.any
	return nil
}

func (a *cAvgAcc) merge(o vAgg) error {
	b := o.(*cAvgAcc)
	a.sum += b.sum
	a.n += b.n
	return nil
}

func (a *cMinMaxAcc) merge(o vAgg) error {
	b := o.(*cMinMaxAcc)
	a.kinds |= b.kinds
	if k := a.kinds; k&(k-1) != 0 {
		// More than one value kind: the running best — and whether the
		// fold errors at all — depends on fold order. Only the full serial
		// fold reproduces the serial answer.
		return errParallelFallback
	}
	if !b.any {
		return nil
	}
	if !a.any {
		a.best, a.any = b.best, true
		return nil
	}
	c, err := b.best.Compare(a.best)
	if err != nil {
		return errParallelFallback // unreachable for same-kind values; be safe
	}
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = b.best
	}
	return nil
}

//
// Parallel hash-join build.
//

// buildEnt is one build row routed to a stripe: its encoded key and the row.
type buildEnt struct {
	key string
	row []Value
}

// buildParallel builds the join's transient hash table in two parallel
// phases. Phase A scans build-side morsels, each worker routing its rows
// into per-morsel, per-stripe buckets (stripe = hash of key bytes). Phase
// B assigns each stripe to one worker, which folds the morsel buckets in
// morsel-index order — so every per-key row slice comes out in global slot
// order, bit-identical to the serial build, with no locks and no sorting.
func (h *hashJoinSource) buildParallel(maxW int) (*builtTable, error) {
	t := h.t
	nm := morselCountFor(t)
	nw := maxW
	if nw > nm {
		nw = nm
	}
	if nw <= 1 {
		return h.buildSerial()
	}
	type morselBuild struct {
		ents  [buildStripes][]buildEnt
		rows  [][]Value
		kinds [][4]int
		total int
	}
	outs := make([]*morselBuild, nm)
	err := runParallelMorsels(nm, nw, func(_, m int) error {
		mb := &morselBuild{kinds: make([][4]int, len(h.keys))}
		outs[m] = mb
		vals := make([]Value, len(h.keys))
		var keyBuf []byte
		iterateMorsel(t, m, func(row []Value) bool {
			mb.total++
			for i, k := range h.keys {
				v := row[k.buildPos]
				if v.IsNull() {
					return true // NULL joins nothing
				}
				vals[i] = v
			}
			keyBuf = keyBuf[:0]
			for i, v := range vals {
				mb.kinds[i][int(v.Kind)]++
				keyBuf = v.appendKey(keyBuf)
				keyBuf = append(keyBuf, 0)
			}
			s := fnv32a(keyBuf) & (buildStripes - 1)
			mb.ents[s] = append(mb.ents[s], buildEnt{key: string(keyBuf), row: row})
			mb.rows = append(mb.rows, row)
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}

	bt := &builtTable{
		stripes:    make([]map[string][][]Value, buildStripes),
		stripeMask: buildStripes - 1,
	}
	kinds := make([][4]int, len(h.keys))
	for _, mb := range outs {
		bt.total += mb.total
		bt.rows = append(bt.rows, mb.rows...)
		for i := range kinds {
			for k := range kinds[i] {
				kinds[i][k] += mb.kinds[i][k]
			}
		}
	}
	err = runParallelMorsels(buildStripes, nw, func(_, s int) error {
		m := make(map[string][][]Value)
		for _, mb := range outs {
			for _, e := range mb.ents[s] {
				m[e.key] = append(m[e.key], e.row)
			}
		}
		bt.stripes[s] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&h.db.morselsRun, int64(nm+buildStripes))
	h.finishBuild(bt, kinds)
	return bt, nil
}

//
// Parallel index builds (sharded gather path).
//

// BuildIndexesParallel creates the given indexes on table, building each
// index's table scan concurrently — bounded by the effective worker count
// and the global token budget — then installing them serially. Used by the
// sharded engine's gather executor, which previously rebuilt every index
// of a gathered table one CREATE INDEX at a time. Runs as one autocommit
// statement: on a WAL-backed database the index creations land in one
// atomic redo frame; on in-memory databases (the gather temporary) redo is
// a no-op. Already-present indexes are skipped, matching addIndex.
func (db *DB) BuildIndexesParallel(table string, infos []IndexInfo) error {
	_, err := db.autocommit(nil, func() (*Result, error) {
		t, ok := db.tables[table]
		if !ok || t.dropped {
			return nil, fmt.Errorf("sqldb: no table %s", table)
		}
		type job struct {
			info IndexInfo
			hash *hashIndex
			ord  *ordIndex
		}
		var jobs []*job
		for _, info := range infos {
			if info.Ordered {
				if _, ok := t.ordIndexes[info.Column]; ok {
					continue
				}
			} else if _, ok := t.indexes[info.Column]; ok {
				continue
			}
			jobs = append(jobs, &job{info: info})
		}
		if len(jobs) == 0 {
			return &Result{}, nil
		}
		nw := db.effectiveExecWorkers()
		if nw > len(jobs) {
			nw = len(jobs)
		}
		grant := 0
		if nw > 1 {
			grant = execTokens.tryAcquire(nw - 1)
		}
		defer execTokens.release(grant)
		err := runParallelMorsels(len(jobs), grant+1, func(_, i int) error {
			j := jobs[i]
			var err error
			if j.info.Ordered {
				j.ord, err = t.buildOrdIndex(j.info.Column)
			} else {
				j.hash, err = t.buildHashIndex(j.info.Column, j.info.Unique)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			if j.info.Ordered {
				t.ordIndexes[j.info.Column] = j.ord
				db.redoCreateIndex(table, j.info.Column, false, true)
			} else {
				t.indexes[j.info.Column] = j.hash
				db.redoCreateIndex(table, j.info.Column, j.info.Unique, false)
			}
		}
		return &Result{}, nil
	})
	return err
}
