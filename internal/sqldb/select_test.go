package sqldb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sqlparser"
)

func TestOrderByNullsFirst(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (2), (NULL), (1)")
	res := mustExec(t, db, "SELECT a FROM t ORDER BY a")
	if !res.Rows[0][0].IsNull() || res.Rows[1][0].I != 1 || res.Rows[2][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT, v INT)")
	mustExec(t, db, "INSERT INTO t (a, b, v) VALUES (1, 1, 10), (1, 1, 20), (1, 2, 5), (2, 1, 7)")
	res := mustExec(t, db, "SELECT a, b, SUM(v) FROM t GROUP BY a, b ORDER BY a, b")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][2].I != 30 || res.Rows[1][2].I != 5 || res.Rows[2][2].I != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLimitEdgeCases(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1), (2), (3)")
	if res := mustExec(t, db, "SELECT a FROM t LIMIT 0"); len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 rows = %v", res.Rows)
	}
	if res := mustExec(t, db, "SELECT a FROM t LIMIT 99"); len(res.Rows) != 3 {
		t.Fatalf("big LIMIT rows = %v", res.Rows)
	}
	if res := mustExec(t, db, "SELECT a FROM t LIMIT 2 OFFSET 99"); len(res.Rows) != 0 {
		t.Fatalf("big OFFSET rows = %v", res.Rows)
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE n (id INT, parent INT)")
	mustExec(t, db, "INSERT INTO n (id, parent) VALUES (1, 0), (2, 1), (3, 1)")
	res := mustExec(t, db, "SELECT c.id FROM n p JOIN n c ON c.parent = p.id WHERE p.id = 1 ORDER BY c.id")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 2 || res.Rows[1][0].I != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregateInHavingOnly(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (g INT, v INT)")
	mustExec(t, db, "INSERT INTO t (g, v) VALUES (1, 5), (1, 6), (2, 7)")
	res := mustExec(t, db, "SELECT g FROM t GROUP BY g HAVING SUM(v) > 10")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByAggregate(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (g INT, v INT)")
	mustExec(t, db, "INSERT INTO t (g, v) VALUES (1, 1), (2, 2), (2, 3), (3, 9)")
	res := mustExec(t, db, "SELECT g FROM t GROUP BY g ORDER BY SUM(v) DESC")
	if res.Rows[0][0].I != 3 || res.Rows[1][0].I != 2 || res.Rows[2][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEvalConstAndExpr(t *testing.T) {
	e, err := sqlparser.Parse("SELECT 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	expr := e.(*sqlparser.SelectStmt).Exprs[0].Expr
	v, err := EvalConst(expr, nil)
	if err != nil || v.I != 7 {
		t.Fatalf("EvalConst = %v, %v", v, err)
	}

	st, _ := sqlparser.Parse("SELECT a + b")
	sum := st.(*sqlparser.SelectStmt).Exprs[0].Expr
	got, err := EvalExpr(sum, func(table, col string) (Value, error) {
		if col == "a" {
			return Int(10), nil
		}
		return Int(32), nil
	}, nil)
	if err != nil || got.I != 42 {
		t.Fatalf("EvalExpr = %v, %v", got, err)
	}

	if _, err := EvalConst(sum, nil); err == nil {
		t.Fatal("EvalConst over columns should fail")
	}
}

func TestExecAutonomousSurvivesRollback(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "CREATE TABLE u (b INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	mustExec(t, db, "INSERT INTO u (b) VALUES (10)")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "UPDATE t SET a = 100") // in-txn: buffers and locks t's row

	// An autonomous statement on a row the open transaction wrote must
	// fail fast with a write conflict (first writer wins) instead of
	// interleaving with the buffered write.
	st, err := sqlparser.Parse("UPDATE t SET a = a + 1")
	if err != nil {
		t.Fatal(err)
	}
	var wc *WriteConflictError
	if _, err := db.ExecAutonomous(st); !errors.As(err, &wc) {
		t.Fatalf("autonomous update of a locked row: err = %v, want WriteConflictError", err)
	}

	// On an untouched table it proceeds — and survives the ROLLBACK.
	st2, err := sqlparser.Parse("UPDATE u SET b = b + 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecAutonomous(st2); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "ROLLBACK")
	res := mustExec(t, db, "SELECT a FROM t")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("a = %v, want 1 (buffered update discarded)", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT b FROM u")
	if res.Rows[0][0].I != 11 {
		t.Fatalf("b = %v, want 11 (autonomous update survives rollback)", res.Rows[0][0])
	}
}

func TestBusyNanosAccounting(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	db.ResetBusyNanos()
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}
	if db.BusyNanos() == 0 {
		t.Fatal("busy time not recorded")
	}
	db.ResetBusyNanos()
	if db.BusyNanos() != 0 {
		t.Fatal("reset failed")
	}
}

func TestInsertDefaultsNulls(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT, c INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	res := mustExec(t, db, "SELECT a, b, c FROM t")
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUpdateSwapSemantics(t *testing.T) {
	// Assignments evaluate against the pre-update row: a,b swap works.
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 2)")
	mustExec(t, db, "UPDATE t SET a = b, b = a")
	res := mustExec(t, db, "SELECT a, b FROM t")
	if res.Rows[0][0].I != 2 || res.Rows[0][1].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestStringConcat(t *testing.T) {
	db := New()
	res := mustExec(t, db, "SELECT 'a' || 'b'")
	if res.Rows[0][0].S != "ab" {
		t.Fatalf("concat = %v", res.Rows[0][0])
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	db := New()
	res := mustExec(t, db, "SELECT 1 / 0")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("1/0 = %v, want NULL", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT 1 % 0")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("1%%0 = %v, want NULL", res.Rows[0][0])
	}
}

func TestIndexedLookupIsFasterPath(t *testing.T) {
	// Behavioral check: indexed equality returns exactly the matching
	// rows even after heavy churn (insert/delete/update cycles).
	db := New()
	mustExec(t, db, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "CREATE INDEX tk ON t (k)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t (k, v) VALUES (%d, %d)", i%10, i))
	}
	mustExec(t, db, "DELETE FROM t WHERE v < 50")
	mustExec(t, db, "UPDATE t SET k = 99 WHERE v >= 150")
	res := mustExec(t, db, "SELECT COUNT(*) FROM t WHERE k = 99")
	if res.Rows[0][0].I != 50 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT COUNT(*) FROM t WHERE k = 3")
	if res.Rows[0][0].I != 10 { // v in [53..143] with k=3: 53,63,...,143
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
