package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqlparser"
)

// UDF is a scalar user-defined function callable from SQL. CryptDB
// registers DECRYPT_RND, JOIN_ADJ, SEARCHSWP and friends here, mirroring
// MySQL's CREATE FUNCTION mechanism (§7).
type UDF func(args []Value) (Value, error)

// AggState accumulates one group of an aggregate UDF.
type AggState interface {
	Step(args []Value) error
	Final() (Value, error)
}

// AggUDF creates a fresh accumulator per group. CryptDB registers HOM_SUM
// (Paillier product) here.
type AggUDF func() AggState

// Result is the outcome of executing one statement.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// DB is an embedded SQL database. All methods are safe for concurrent use;
// statements execute under a database-wide reader/writer lock, which — like
// the internal lock contention the paper observes in MySQL (§8.4.1) —
// bounds multi-core scaling for write-heavy mixes. Transactions are scoped
// to sessions (NewSession): any number of sessions may hold open
// transactions concurrently, writing into private buffers that commit
// atomically (see session.go). The DB-level Exec methods run on an
// implicit default session, preserving the seed's single-connection API.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	udfs    map[string]UDF
	aggUDFs map[string]AggUDF

	// openTxns tracks every in-flight transaction (guarded by mu); DROP
	// TABLE consults it so a commit can never resurrect a dropped table.
	openTxns map[*Txn]struct{}

	// locks is the striped slot-lock table (first-writer-wins row locks;
	// see locktable.go). It has its own per-stripe mutexes, so
	// transactional statements claim locks under mu's *read* side.
	locks lockTable

	defOnce sync.Once
	defSess *Session // lazy default session behind DB.Exec

	// Durability state (nil/zero for a pure in-memory database). stmtBuf
	// accumulates the redo records of the statement being executed, under
	// mu; it holds pre-encoded WAL ops (see wal.go).
	wal         *walWriter
	lock        *dirLock
	dir         string
	dopts       DurabilityOptions
	walSeq      uint64
	stmtBuf     []byte
	checkpoints int64

	// pager is the buffer cache of a paged database (nil for resident and
	// in-memory databases); set once in Open, immutable afterwards.
	pager *pager

	// Background checkpointer (started by Open). ckptMu single-flights
	// checkpoints; when both are taken, ckptMu comes first, then db.mu —
	// never the reverse. ckptKick is the commit path's non-blocking nudge.
	ckptMu   sync.Mutex
	ckptKick chan struct{}
	ckptStop chan struct{}
	ckptOnce sync.Once
	ckptWG   sync.WaitGroup
	// ckptPauseNanos is cumulative lock-hold time of checkpoints;
	// lastCkptBytes is the bytes the most recent one wrote (atomics).
	ckptPauseNanos int64
	lastCkptBytes  int64
	// ckptBgErr records the most recent background-checkpoint failure,
	// boxed so concrete error types may vary (see LastCheckpointError).
	ckptBgErr atomic.Value

	// snapSeq is the WAL sequence number the on-disk snapshot covers;
	// frames at or below it are no longer in the log. Replication taps
	// consult it to decide between log-tail catch-up and a full snapshot
	// resync (see replication.go). Guarded by mu.
	snapSeq uint64

	// meta is the last committed application-metadata blob (the CryptDB
	// proxy's sealed state; see ExecWithMeta). It rides the WAL and the
	// snapshot so it commits atomically with the writes it describes.
	meta []byte
	// metaVer counts committed meta transitions (atomic; see MetaVersion).
	metaVer uint64

	// busyNanos accumulates wall time spent executing statements — the
	// "server-side" cost the paper's throughput figures measure (the
	// proxy ran on a separate machine in their testbed).
	busyNanos int64

	// Planner counters (atomics; see PlanCounters).
	fullScans, eqScans, rangeScans, orderedScans, minMaxFast     int64
	compiledSel, interpSel, hashJoins, nestedLoops, joinDegraded int64

	// noCompile disables the compiled execution pipeline (exec.go) when
	// non-zero, forcing every SELECT through the AST interpreter. Tests use
	// it to run the interpreter as an oracle against the compiled path.
	noCompile int32

	// execWorkers is the configured intra-query parallelism for the
	// compiled pipeline (see parallel.go): 0 picks the process default
	// (SetDefaultExecWorkers, else GOMAXPROCS), 1 forces serial execution,
	// >1 caps the per-statement worker count. Atomic.
	execWorkers int32

	// Morsel-execution counters (atomics; see PlanCounters):
	// parallelPipelines counts statements that actually executed on >1
	// worker, morselsRun the morsels those statements dispatched.
	parallelPipelines int64
	morselsRun        int64
}

// PlanCounters tallies the scan planner's access-path decisions: how many
// statements seeded from a full scan, a hash-index equality lookup, or an
// ordered-index range scan, and how many SELECTs were answered in index
// order (ORDER BY ... LIMIT) or from index endpoints (MIN/MAX). It also
// tallies the execution layer's choices: SELECTs lowered into the compiled
// operator pipeline vs. interpreted over the AST, hash-join vs. nested-loop
// operators, joins whose multi-column equi key the interpreter degraded to
// a single-column probe, and (summed in by a sharded store) GROUP BYs
// executed per-shard with partial-aggregate recombination.
type PlanCounters struct {
	FullScans     int64
	EqScans       int64
	RangeScans    int64
	OrderedScans  int64
	MinMaxIndex   int64
	Compiled      int64
	Interpreted   int64
	HashJoins     int64
	NestedLoops   int64
	DegradedJoins int64
	// GroupPushdowns is always zero at the sqldb level; a sharded store
	// counts its scatter GROUP BY decompositions here when summing.
	GroupPushdowns int64
	// ParallelPipelines counts compiled SELECTs that executed morsel-
	// parallel (>1 worker actually engaged); Morsels counts the morsels
	// those statements dispatched across scan and join-build phases.
	// ExecWorkers is the effective per-statement worker cap — a
	// configuration snapshot, not a tally (a sharded store reports the
	// max across shards).
	ParallelPipelines int64
	Morsels           int64
	ExecWorkers       int64
}

// PlanCounters returns a snapshot of the planner's access-path tallies.
func (db *DB) PlanCounters() PlanCounters {
	return PlanCounters{
		FullScans:         atomic.LoadInt64(&db.fullScans),
		EqScans:           atomic.LoadInt64(&db.eqScans),
		RangeScans:        atomic.LoadInt64(&db.rangeScans),
		OrderedScans:      atomic.LoadInt64(&db.orderedScans),
		MinMaxIndex:       atomic.LoadInt64(&db.minMaxFast),
		Compiled:          atomic.LoadInt64(&db.compiledSel),
		Interpreted:       atomic.LoadInt64(&db.interpSel),
		HashJoins:         atomic.LoadInt64(&db.hashJoins),
		NestedLoops:       atomic.LoadInt64(&db.nestedLoops),
		DegradedJoins:     atomic.LoadInt64(&db.joinDegraded),
		ParallelPipelines: atomic.LoadInt64(&db.parallelPipelines),
		Morsels:           atomic.LoadInt64(&db.morselsRun),
		ExecWorkers:       int64(db.effectiveExecWorkers()),
	}
}

// absorbCounters adds a throwaway view database's planner and morsel
// tallies into db. Transactional SELECTs execute against a per-statement
// viewDB copy (session.go); without this their access-path and parallelism
// decisions would vanish with the copy.
func (db *DB) absorbCounters(view *DB) {
	atomic.AddInt64(&db.fullScans, atomic.LoadInt64(&view.fullScans))
	atomic.AddInt64(&db.eqScans, atomic.LoadInt64(&view.eqScans))
	atomic.AddInt64(&db.rangeScans, atomic.LoadInt64(&view.rangeScans))
	atomic.AddInt64(&db.orderedScans, atomic.LoadInt64(&view.orderedScans))
	atomic.AddInt64(&db.minMaxFast, atomic.LoadInt64(&view.minMaxFast))
	atomic.AddInt64(&db.compiledSel, atomic.LoadInt64(&view.compiledSel))
	atomic.AddInt64(&db.interpSel, atomic.LoadInt64(&view.interpSel))
	atomic.AddInt64(&db.hashJoins, atomic.LoadInt64(&view.hashJoins))
	atomic.AddInt64(&db.nestedLoops, atomic.LoadInt64(&view.nestedLoops))
	atomic.AddInt64(&db.joinDegraded, atomic.LoadInt64(&view.joinDegraded))
	atomic.AddInt64(&db.parallelPipelines, atomic.LoadInt64(&view.parallelPipelines))
	atomic.AddInt64(&db.morselsRun, atomic.LoadInt64(&view.morselsRun))
}

// SetCompiledExec enables or disables the compiled execution pipeline.
// Enabled by default; disabling forces every SELECT through the AST
// interpreter, which equivalence tests use as the oracle. Safe to call
// concurrently with running statements.
func (db *DB) SetCompiledExec(on bool) {
	var v int32
	if !on {
		v = 1
	}
	atomic.StoreInt32(&db.noCompile, v)
}

func (db *DB) compiledExecEnabled() bool {
	return atomic.LoadInt32(&db.noCompile) == 0
}

// CompiledExecEnabled reports whether the compiled pipeline is active.
// Storage layers that spin up transient databases (the sharded store's
// gather fallback) propagate the setting so a disabled pipeline stays
// disabled end-to-end.
func (db *DB) CompiledExecEnabled() bool { return db.compiledExecEnabled() }

// SetExecWorkers configures intra-query parallelism for this database's
// compiled pipeline: 0 restores the process default (SetDefaultExecWorkers,
// else GOMAXPROCS), 1 forces serial execution (the ablation arm), n>1 caps
// each statement at n workers. Requests above the process-wide token
// budget raise it, so an explicit sweep is honored even on small machines.
// Safe to call concurrently with running statements; in-flight statements
// keep the worker count they started with.
func (db *DB) SetExecWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n > 1 {
		execTokens.ensureCap(n - 1)
	}
	atomic.StoreInt32(&db.execWorkers, int32(n))
}

// ExecWorkers returns the configured worker setting (0 = process default).
// Storage layers that spin up transient databases (the sharded store's
// gather fallback) propagate it, like CompiledExecEnabled.
func (db *DB) ExecWorkers() int { return int(atomic.LoadInt32(&db.execWorkers)) }

// BusyNanos reports cumulative statement execution time.
func (db *DB) BusyNanos() int64 { return atomic.LoadInt64(&db.busyNanos) }

// ResetBusyNanos zeroes the server-time counter.
func (db *DB) ResetBusyNanos() { atomic.StoreInt64(&db.busyNanos, 0) }

func (db *DB) trackBusy(start time.Time) {
	atomic.AddInt64(&db.busyNanos, int64(time.Since(start)))
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables:   make(map[string]*Table),
		udfs:     make(map[string]UDF),
		aggUDFs:  make(map[string]AggUDF),
		openTxns: make(map[*Txn]struct{}),
	}
}

// defaultSession returns the implicit session behind the DB-level Exec
// methods, creating it on first use.
func (db *DB) defaultSession() *Session {
	db.defOnce.Do(func() { db.defSess = db.NewSession() })
	return db.defSess
}

// registerTxn records a newly begun transaction.
func (db *DB) registerTxn(txn *Txn) {
	db.mu.Lock()
	db.openTxns[txn] = struct{}{}
	db.mu.Unlock()
}

// RegisterUDF installs a scalar UDF under name (case-sensitive, by
// convention lower_snake like MySQL UDFs).
func (db *DB) RegisterUDF(name string, fn UDF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.udfs[name] = fn
}

// RegisterAggUDF installs an aggregate UDF.
func (db *DB) RegisterAggUDF(name string, fn AggUDF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.aggUDFs[name] = fn
}

// Table returns a table by name (nil if absent). Intended for tests and
// storage accounting, not for bypassing SQL.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SizeBytes approximates the whole database's storage footprint.
func (db *DB) SizeBytes() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, t := range db.tables {
		total += t.SizeBytes()
	}
	return total
}

// ExecSQL parses and executes a single statement.
func (db *DB) ExecSQL(sql string, params ...Value) (*Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.Exec(st, params...)
}

// Exec executes a parsed statement on the implicit default session. Code
// that needs concurrent transactions opens explicit sessions instead
// (NewSession); statements outside a transaction behave identically either
// way.
func (db *DB) Exec(st sqlparser.Statement, params ...Value) (*Result, error) {
	return db.defaultSession().Exec(st, params...)
}

// ExecWithMeta executes a write statement and attaches an opaque
// application-metadata blob to the same WAL commit unit: the blob becomes
// durable if and only if the statement's writes do (for a statement inside
// a transaction, at COMMIT). The CryptDB proxy uses this to keep its
// onion-layer metadata exactly in sync with the ciphertext transitions it
// issues — a crash can never observe the data adjusted but the metadata
// not, or vice versa. The latest committed blob is returned by Meta after
// Open. On an in-memory database the blob is retained in memory only.
func (db *DB) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...Value) (*Result, error) {
	return db.defaultSession().ExecWithMeta(st, meta, params...)
}

// execStateless dispatches a statement that does not involve this caller's
// transaction state: reads, autocommit writes, and DDL (which is always
// durable immediately — it is not buffered, so it must not be discardable
// by a client ROLLBACK). Transaction delimiters are rejected; they only
// make sense on a session.
func (db *DB) execStateless(st sqlparser.Statement, meta []byte, params []Value) (*Result, error) {
	defer db.trackBusy(time.Now())
	switch s := st.(type) {
	case *sqlparser.SelectStmt:
		return db.readStatement(func() (*Result, error) {
			db.mu.RLock()
			defer db.mu.RUnlock()
			return db.execSelect(s, params)
		})
	case *sqlparser.InsertStmt:
		return db.autocommit(meta, func() (*Result, error) { return db.execInsert(s, params) })
	case *sqlparser.UpdateStmt:
		return db.autocommit(meta, func() (*Result, error) { return db.execUpdate(s, params) })
	case *sqlparser.DeleteStmt:
		return db.autocommit(meta, func() (*Result, error) { return db.execDelete(s, params) })
	case *sqlparser.CreateTableStmt:
		return db.autocommit(meta, func() (*Result, error) { return db.execCreateTable(s) })
	case *sqlparser.CreateIndexStmt:
		return db.autocommit(meta, func() (*Result, error) { return db.execCreateIndex(s) })
	case *sqlparser.DropTableStmt:
		return db.autocommit(meta, func() (*Result, error) { return db.execDropTable(s) })
	case *sqlparser.BeginStmt, *sqlparser.CommitStmt, *sqlparser.RollbackStmt:
		return nil, fmt.Errorf("sqldb: transaction statements require a session")
	case *sqlparser.PrincTypeStmt:
		// Principal declarations are proxy metadata; the DBMS ignores
		// them (they never reach a real server in CryptDB either).
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sqldb: unsupported statement %T", st)
}

// CanDropTable reports whether DROP TABLE would currently succeed: the
// table exists and no open transaction has buffered writes against it. A
// sharded store pre-flights a drop broadcast with this on every shard so
// one shard's refusal cannot leave the schema half-dropped. Advisory: a
// transaction may write the table between the probe and the drop.
func (db *DB) CanDropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("sqldb: no table %s", name)
	}
	for txn := range db.openTxns {
		if tt := txn.tables[name]; tt != nil && (len(tt.mods) > 0 || len(tt.ins) > 0) {
			return fmt.Errorf("sqldb: cannot drop %s: written by an open transaction", name)
		}
	}
	return nil
}

func (db *DB) execDropTable(s *sqlparser.DropTableStmt) (*Result, error) {
	if _, ok := db.tables[s.Name]; !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Name)
	}
	// Refuse while an open transaction has buffered writes against the
	// table: its commit would otherwise apply to an orphaned Table and
	// write redo records for a name replay cannot resolve.
	for txn := range db.openTxns {
		if tt := txn.tables[s.Name]; tt != nil && (len(tt.mods) > 0 || len(tt.ins) > 0) {
			return nil, fmt.Errorf("sqldb: cannot drop %s: written by an open transaction", s.Name)
		}
	}
	if db.pager != nil {
		db.pager.forgetTable(db.tables[s.Name])
	}
	delete(db.tables, s.Name)
	db.redoDropTable(s.Name)
	return &Result{}, nil
}

// SetMeta durably commits an application-metadata blob in its own WAL
// batch, independent of any statement. See ExecWithMeta.
func (db *DB) SetMeta(meta []byte) error {
	if db.wal != nil {
		// Announce before taking the lock, so a flushing leader knows to
		// hold its cohort open for this blob's frame (the same protocol
		// autocommit follows).
		db.wal.announce()
		defer db.wal.retire()
	}
	db.mu.Lock()
	if db.wal == nil {
		db.meta = append([]byte(nil), meta...)
		atomic.AddUint64(&db.metaVer, 1)
		db.mu.Unlock()
		return nil
	}
	// Stage under the lock — sequence numbers and db.meta stay in lockstep
	// with WAL order — but pay the fsync after releasing it, so a metadata
	// commit never stalls readers or other committers.
	db.walSeq++
	cohort := db.wal.enqueue(db.walSeq, appendMetaOp(nil, meta))
	db.meta = append([]byte(nil), meta...)
	atomic.AddUint64(&db.metaVer, 1)
	db.mu.Unlock()

	if err := db.wal.waitFlush(cohort); err != nil {
		return &DurabilityError{Err: err}
	}
	return nil
}

// Meta returns the last committed application-metadata blob (nil if none):
// after Open, the blob recovered from the snapshot and WAL.
func (db *DB) Meta() []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.meta
}

// DurabilityError reports that a statement applied in memory but could not
// be made durable (the WAL append or sync failed). The distinction matters
// to callers that mirror database state: on an ordinary error the
// statement had no effect, but on a DurabilityError it did — both the
// in-memory state and (since redo records and any attached metadata share
// one batch) the would-have-been disk state moved together, so caller-side
// rollbacks would desynchronize, not repair. The CryptDB proxy keeps its
// metadata transitions when it sees one of these.
type DurabilityError struct{ Err error }

// Error implements the error interface.
func (e *DurabilityError) Error() string {
	return "sqldb: statement applied but not durable: " + e.Err.Error()
}

// Unwrap exposes the underlying I/O error.
func (e *DurabilityError) Unwrap() error { return e.Err }

// autocommit runs one write statement under the database write lock with
// redo capture, then commits the captured ops to the WAL *after* releasing
// the lock: the batch is staged into the current group-commit cohort while
// the lock is still held (so the log stays in dependency order) and the
// fsync is paid off-lock, shared with every concurrent committer. On error
// the capture is discarded: write statements are statement-atomic, so an
// error means the in-memory state did not change — except for
// *DurabilityError, see above.
func (db *DB) autocommit(meta []byte, fn func() (*Result, error)) (*Result, error) {
	if db.wal != nil {
		// Announce before taking the lock, so a flushing leader knows to
		// hold its cohort open for this statement's frame.
		db.wal.announce()
		defer db.wal.retire()
	}
	db.mu.Lock()
	db.stmtBuf = db.stmtBuf[:0]
	res, err := func() (r *Result, e error) {
		// A paged table can fail to fault a page back in mid-statement; the
		// panic must not escape with db.mu held. Effects applied before the
		// fault stay in stmtBuf and are still committed below, keeping the
		// log in lockstep with memory (cf. DurabilityError semantics).
		defer catchPageFault(&e)
		return fn()
	}()
	if err != nil {
		if _, faulted := err.(*PageFaultError); faulted && db.wal != nil && len(db.stmtBuf) > 0 {
			db.walSeq++
			cohort := db.wal.enqueue(db.walSeq, db.stmtBuf)
			db.stmtBuf = db.stmtBuf[:0]
			db.mu.Unlock()
			if werr := db.wal.waitFlush(cohort); werr != nil {
				return res, &DurabilityError{Err: werr}
			}
			return res, err
		}
		db.stmtBuf = db.stmtBuf[:0]
		db.mu.Unlock()
		return res, err
	}
	if db.wal == nil {
		if meta != nil {
			db.meta = append([]byte(nil), meta...)
			atomic.AddUint64(&db.metaVer, 1)
		}
		db.stmtBuf = db.stmtBuf[:0]
		db.mu.Unlock()
		return res, nil
	}
	if meta != nil {
		db.stmtBuf = appendMetaOp(db.stmtBuf, meta)
	}
	if len(db.stmtBuf) == 0 {
		db.mu.Unlock()
		return res, nil
	}
	db.walSeq++
	cohort := db.wal.enqueue(db.walSeq, db.stmtBuf)
	db.stmtBuf = db.stmtBuf[:0]
	if meta != nil {
		db.meta = append([]byte(nil), meta...)
		atomic.AddUint64(&db.metaVer, 1)
	}
	db.mu.Unlock()

	if err := db.wal.waitFlush(cohort); err != nil {
		// The in-memory state already applied; surface the durability
		// failure to the caller rather than pretending the write is safe.
		return res, &DurabilityError{Err: err}
	}
	db.maybeAutoCheckpoint()
	db.cachePressure()
	return res, nil
}

// readStatement runs a read under page-fault protection: a paged table may
// fail to fault a row page back in, and the panic the accessors raise must
// come back as this statement's error.
func (db *DB) readStatement(fn func() (*Result, error)) (res *Result, err error) {
	defer catchPageFault(&err)
	return fn()
}

// Redo-capture helpers, called from the exec layer after each in-memory
// mutation succeeds. No-ops on an in-memory database.

func (db *DB) redoInsert(t *Table, slot int, row []Value) {
	if db.wal != nil {
		db.stmtBuf = appendInsertOp(db.stmtBuf, t.Name, slot, row)
	}
}

func (db *DB) redoDelete(t *Table, slot int) {
	if db.wal != nil {
		db.stmtBuf = appendDeleteOp(db.stmtBuf, t.Name, slot)
	}
}

func (db *DB) redoUpdate(t *Table, slot, pos int, v Value) {
	if db.wal != nil {
		db.stmtBuf = appendUpdateOp(db.stmtBuf, t.Name, slot, pos, v)
	}
}

func (db *DB) redoCreateTable(s *sqlparser.CreateTableStmt) {
	if db.wal == nil {
		return
	}
	cols := make([]walColDef, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = walColDef{name: c.Name, typ: c.Type, primary: c.Primary}
	}
	db.stmtBuf = appendCreateTableOp(db.stmtBuf, s.Name, cols)
}

func (db *DB) redoCreateIndex(table, column string, unique, ordered bool) {
	if db.wal != nil {
		db.stmtBuf = appendCreateIndexOp(db.stmtBuf, table, column, unique, ordered)
	}
}

func (db *DB) redoDropTable(name string) {
	if db.wal != nil {
		db.stmtBuf = appendDropTableOp(db.stmtBuf, name)
	}
}

func (db *DB) execCreateTable(s *sqlparser.CreateTableStmt) (*Result, error) {
	if _, exists := db.tables[s.Name]; exists {
		return nil, fmt.Errorf("sqldb: table %s already exists", s.Name)
	}
	cols := make([]Column, len(s.Cols))
	seen := make(map[string]bool, len(s.Cols))
	for i, c := range s.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("sqldb: duplicate column %s.%s", s.Name, c.Name)
		}
		seen[c.Name] = true
		cols[i] = Column{Name: c.Name, Type: c.Type, Primary: c.Primary}
	}
	t := newTable(s.Name, cols)
	db.adoptTable(t)
	for _, c := range s.Cols {
		if c.Primary {
			if err := t.addIndex(c.Name, true); err != nil {
				return nil, err
			}
		}
	}
	db.tables[s.Name] = t
	db.redoCreateTable(s)
	return &Result{}, nil
}

func (db *DB) execCreateIndex(s *sqlparser.CreateIndexStmt) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	switch strings.ToUpper(s.Using) {
	case "":
		// MySQL's default index is a B-tree serving both equality and
		// range; our substrate splits that into a hash index plus an
		// ordered index.
		if err := t.addIndex(s.Column, s.Unique); err != nil {
			return nil, err
		}
		db.redoCreateIndex(s.Table, s.Column, s.Unique, false)
		if err := t.addOrdIndex(s.Column); err != nil {
			return nil, err
		}
		db.redoCreateIndex(s.Table, s.Column, false, true)
		return &Result{}, nil
	case "HASH":
		if err := t.addIndex(s.Column, s.Unique); err != nil {
			return nil, err
		}
		db.redoCreateIndex(s.Table, s.Column, s.Unique, false)
		return &Result{}, nil
	case "BTREE", "ORDERED":
		if s.Unique {
			// Uniqueness is enforced through a hash index; the ordered
			// index only accelerates ranges.
			if err := t.addIndex(s.Column, true); err != nil {
				return nil, err
			}
			db.redoCreateIndex(s.Table, s.Column, true, false)
		}
		if err := t.addOrdIndex(s.Column); err != nil {
			return nil, err
		}
		db.redoCreateIndex(s.Table, s.Column, false, true)
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sqldb: unknown index type %q", s.Using)
}

//
// Transactions are per-session (see session.go): sessions buffer their
// writes privately and commit atomically under a short critical section,
// with first-writer-wins conflict detection on row slots. The helpers
// below preserve the seed's DB-level API.
//

// InTxn reports whether any session currently holds an open transaction.
func (db *DB) InTxn() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.openTxns) > 0
}

// ExecAutonomous executes a write statement outside any open transaction,
// as if on a separate connection that commits immediately. The CryptDB
// proxy uses this for onion adjustments and resyncs: those server-side
// rewrites reflect proxy metadata transitions and must survive a client
// ROLLBACK. The statement still executes atomically under the database
// lock; if it touches a row slot owned by an open transaction it fails
// with a WriteConflictError rather than waiting (first writer wins, and
// blocking here could deadlock against the transaction's own next
// statement).
func (db *DB) ExecAutonomous(st sqlparser.Statement, params ...Value) (*Result, error) {
	return db.execStateless(st, nil, params)
}

// ExecAutonomousWithMeta combines ExecAutonomous and ExecWithMeta: the
// statement commits outside any open transaction, and the metadata blob
// commits durably in the same WAL batch. The proxy's onion adjustments use
// this so a layer transition and the metadata recording it are atomic.
func (db *DB) ExecAutonomousWithMeta(st sqlparser.Statement, meta []byte, params ...Value) (*Result, error) {
	return db.execStateless(st, meta, params)
}
