package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqlparser"
)

// UDF is a scalar user-defined function callable from SQL. CryptDB
// registers DECRYPT_RND, JOIN_ADJ, SEARCHSWP and friends here, mirroring
// MySQL's CREATE FUNCTION mechanism (§7).
type UDF func(args []Value) (Value, error)

// AggState accumulates one group of an aggregate UDF.
type AggState interface {
	Step(args []Value) error
	Final() (Value, error)
}

// AggUDF creates a fresh accumulator per group. CryptDB registers HOM_SUM
// (Paillier product) here.
type AggUDF func() AggState

// Result is the outcome of executing one statement.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// DB is an embedded SQL database. All methods are safe for concurrent use;
// statements execute under a database-wide reader/writer lock, which — like
// the internal lock contention the paper observes in MySQL (§8.4.1) —
// bounds multi-core scaling for write-heavy mixes.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	udfs    map[string]UDF
	aggUDFs map[string]AggUDF

	txnMu  sync.Mutex // serializes transactions
	inTxn  bool
	undo   []undoOp
	txnOwn bool

	// busyNanos accumulates wall time spent executing statements — the
	// "server-side" cost the paper's throughput figures measure (the
	// proxy ran on a separate machine in their testbed).
	busyNanos int64

	// Planner counters (atomics; see PlanCounters).
	fullScans, eqScans, rangeScans, orderedScans, minMaxFast int64
}

// PlanCounters tallies the scan planner's access-path decisions: how many
// statements seeded from a full scan, a hash-index equality lookup, or an
// ordered-index range scan, and how many SELECTs were answered in index
// order (ORDER BY ... LIMIT) or from index endpoints (MIN/MAX).
type PlanCounters struct {
	FullScans    int64
	EqScans      int64
	RangeScans   int64
	OrderedScans int64
	MinMaxIndex  int64
}

// PlanCounters returns a snapshot of the planner's access-path tallies.
func (db *DB) PlanCounters() PlanCounters {
	return PlanCounters{
		FullScans:    atomic.LoadInt64(&db.fullScans),
		EqScans:      atomic.LoadInt64(&db.eqScans),
		RangeScans:   atomic.LoadInt64(&db.rangeScans),
		OrderedScans: atomic.LoadInt64(&db.orderedScans),
		MinMaxIndex:  atomic.LoadInt64(&db.minMaxFast),
	}
}

// BusyNanos reports cumulative statement execution time.
func (db *DB) BusyNanos() int64 { return atomic.LoadInt64(&db.busyNanos) }

// ResetBusyNanos zeroes the server-time counter.
func (db *DB) ResetBusyNanos() { atomic.StoreInt64(&db.busyNanos, 0) }

func (db *DB) trackBusy(start time.Time) {
	atomic.AddInt64(&db.busyNanos, int64(time.Since(start)))
}

type undoOp struct {
	kind  int // 0 = undo insert, 1 = undo delete, 2 = undo update cell
	table *Table
	slot  int
	row   []Value
	pos   int
	old   Value
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables:  make(map[string]*Table),
		udfs:    make(map[string]UDF),
		aggUDFs: make(map[string]AggUDF),
	}
}

// RegisterUDF installs a scalar UDF under name (case-sensitive, by
// convention lower_snake like MySQL UDFs).
func (db *DB) RegisterUDF(name string, fn UDF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.udfs[name] = fn
}

// RegisterAggUDF installs an aggregate UDF.
func (db *DB) RegisterAggUDF(name string, fn AggUDF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.aggUDFs[name] = fn
}

// Table returns a table by name (nil if absent). Intended for tests and
// storage accounting, not for bypassing SQL.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SizeBytes approximates the whole database's storage footprint.
func (db *DB) SizeBytes() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, t := range db.tables {
		total += t.SizeBytes()
	}
	return total
}

// ExecSQL parses and executes a single statement.
func (db *DB) ExecSQL(sql string, params ...Value) (*Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.Exec(st, params...)
}

// Exec executes a parsed statement.
func (db *DB) Exec(st sqlparser.Statement, params ...Value) (*Result, error) {
	defer db.trackBusy(time.Now())
	switch s := st.(type) {
	case *sqlparser.SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.execSelect(s, params)
	case *sqlparser.InsertStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execInsert(s, params)
	case *sqlparser.UpdateStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execUpdate(s, params)
	case *sqlparser.DeleteStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDelete(s, params)
	case *sqlparser.CreateTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreateTable(s)
	case *sqlparser.CreateIndexStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreateIndex(s)
	case *sqlparser.DropTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, ok := db.tables[s.Name]; !ok {
			return nil, fmt.Errorf("sqldb: no table %s", s.Name)
		}
		delete(db.tables, s.Name)
		return &Result{}, nil
	case *sqlparser.BeginStmt:
		return db.begin()
	case *sqlparser.CommitStmt:
		return db.commit()
	case *sqlparser.RollbackStmt:
		return db.rollback()
	case *sqlparser.PrincTypeStmt:
		// Principal declarations are proxy metadata; the DBMS ignores
		// them (they never reach a real server in CryptDB either).
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sqldb: unsupported statement %T", st)
}

func (db *DB) execCreateTable(s *sqlparser.CreateTableStmt) (*Result, error) {
	if _, exists := db.tables[s.Name]; exists {
		return nil, fmt.Errorf("sqldb: table %s already exists", s.Name)
	}
	cols := make([]Column, len(s.Cols))
	seen := make(map[string]bool, len(s.Cols))
	for i, c := range s.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("sqldb: duplicate column %s.%s", s.Name, c.Name)
		}
		seen[c.Name] = true
		cols[i] = Column{Name: c.Name, Type: c.Type}
	}
	t := newTable(s.Name, cols)
	for _, c := range s.Cols {
		if c.Primary {
			if err := t.addIndex(c.Name, true); err != nil {
				return nil, err
			}
		}
	}
	db.tables[s.Name] = t
	return &Result{}, nil
}

func (db *DB) execCreateIndex(s *sqlparser.CreateIndexStmt) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	switch strings.ToUpper(s.Using) {
	case "":
		// MySQL's default index is a B-tree serving both equality and
		// range; our substrate splits that into a hash index plus an
		// ordered index.
		if err := t.addIndex(s.Column, s.Unique); err != nil {
			return nil, err
		}
		return &Result{}, t.addOrdIndex(s.Column)
	case "HASH":
		return &Result{}, t.addIndex(s.Column, s.Unique)
	case "BTREE", "ORDERED":
		if s.Unique {
			// Uniqueness is enforced through a hash index; the ordered
			// index only accelerates ranges.
			if err := t.addIndex(s.Column, true); err != nil {
				return nil, err
			}
		}
		return &Result{}, t.addOrdIndex(s.Column)
	}
	return nil, fmt.Errorf("sqldb: unknown index type %q", s.Using)
}

//
// Transactions: a single-writer undo-log design. BEGIN acquires the
// transaction mutex so concurrent transactions serialize, mirroring the
// paper's use of per-column-adjustment transactions (§3.2).
//

// InTxn reports whether a transaction is currently open.
func (db *DB) InTxn() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.inTxn
}

// ExecAutonomous executes a write statement outside any open transaction,
// as if on a separate connection that commits immediately. The CryptDB
// proxy uses this for onion adjustments and resyncs: those server-side
// rewrites reflect proxy metadata transitions and must survive a client
// ROLLBACK. The statement still executes atomically under the database
// lock.
func (db *DB) ExecAutonomous(st sqlparser.Statement, params ...Value) (*Result, error) {
	switch s := st.(type) {
	case *sqlparser.InsertStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		saved := db.inTxn
		db.inTxn = false
		defer func() { db.inTxn = saved }()
		return db.execInsert(s, params)
	case *sqlparser.UpdateStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		saved := db.inTxn
		db.inTxn = false
		defer func() { db.inTxn = saved }()
		return db.execUpdate(s, params)
	case *sqlparser.DeleteStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		saved := db.inTxn
		db.inTxn = false
		defer func() { db.inTxn = saved }()
		return db.execDelete(s, params)
	}
	return db.Exec(st, params...)
}

func (db *DB) begin() (*Result, error) {
	db.txnMu.Lock()
	db.mu.Lock()
	db.inTxn = true
	db.undo = db.undo[:0]
	db.mu.Unlock()
	return &Result{}, nil
}

func (db *DB) commit() (*Result, error) {
	db.mu.Lock()
	if !db.inTxn {
		db.mu.Unlock()
		return nil, fmt.Errorf("sqldb: COMMIT outside a transaction")
	}
	db.inTxn = false
	db.undo = nil
	db.mu.Unlock()
	db.txnMu.Unlock()
	return &Result{}, nil
}

func (db *DB) rollback() (*Result, error) {
	db.mu.Lock()
	if !db.inTxn {
		db.mu.Unlock()
		return nil, fmt.Errorf("sqldb: ROLLBACK outside a transaction")
	}
	// Apply undo records in reverse order.
	for i := len(db.undo) - 1; i >= 0; i-- {
		op := db.undo[i]
		switch op.kind {
		case 0: // undo insert
			op.table.deleteRow(op.slot)
		case 1: // undo delete
			if _, err := op.table.insertRow(op.row); err != nil {
				db.mu.Unlock()
				db.txnMu.Unlock()
				return nil, fmt.Errorf("sqldb: rollback reinsert: %w", err)
			}
		case 2: // undo cell update (unchecked: the old value was valid)
			op.table.updateCellUnchecked(op.slot, op.pos, op.old)
		}
	}
	db.inTxn = false
	db.undo = nil
	db.mu.Unlock()
	db.txnMu.Unlock()
	return &Result{}, nil
}

func (db *DB) logInsert(t *Table, slot int) {
	if db.inTxn {
		db.undo = append(db.undo, undoOp{kind: 0, table: t, slot: slot})
	}
}

func (db *DB) logDelete(t *Table, row []Value) {
	if db.inTxn {
		db.undo = append(db.undo, undoOp{kind: 1, table: t, row: row})
	}
}

func (db *DB) logUpdate(t *Table, slot, pos int, old Value) {
	if db.inTxn {
		db.undo = append(db.undo, undoOp{kind: 2, table: t, slot: slot, pos: pos, old: old})
	}
}
