package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestOrdKeyOrdering(t *testing.T) {
	// OrdKey byte order must match Compare for same-kind values, including
	// negative integers, and segregate kinds in Kind order.
	vals := []Value{
		Null(),
		Int(-1 << 62), Int(-5), Int(-1), Int(0), Int(1), Int(42), Int(1 << 62),
		Text(""), Text("a"), Text("ab"), Text("b"),
		Blob(nil), Blob([]byte{1}), Blob([]byte{1, 2}),
	}
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if !(vals[i].OrdKey() < vals[j].OrdKey()) {
				t.Fatalf("OrdKey(%v) !< OrdKey(%v)", vals[i], vals[j])
			}
		}
	}
}

func TestOrderedIndexRangeScan(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE r (k INT, v TEXT)")
	mustExec(t, db, "CREATE INDEX rk ON r (k) USING BTREE")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO r (k, v) VALUES (?, ?)",
			Int(int64((i*37)%100)), Text(fmt.Sprintf("v%d", i)))
	}
	before := db.PlanCounters()
	res := mustExec(t, db, "SELECT k FROM r WHERE k >= 10 AND k < 20 ORDER BY k")
	after := db.PlanCounters()
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].I != int64(10+i) {
			t.Fatalf("row %d: got k=%d", i, row[0].I)
		}
	}
	if after.OrderedScans != before.OrderedScans+1 {
		t.Fatalf("ordered-scan fast path not used: %+v -> %+v", before, after)
	}

	// BETWEEN drives the range access path in produceTuples (no ORDER BY).
	before = db.PlanCounters()
	res = mustExec(t, db, "SELECT k FROM r WHERE k BETWEEN 95 AND 99")
	after = db.PlanCounters()
	if len(res.Rows) != 5 {
		t.Fatalf("BETWEEN: got %d rows, want 5", len(res.Rows))
	}
	if after.RangeScans != before.RangeScans+1 {
		t.Fatalf("range access path not used: %+v -> %+v", before, after)
	}
}

func TestOrderedIndexOrderByLimitDesc(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE r (k INT)")
	mustExec(t, db, "CREATE INDEX rk ON r (k)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO r (k) VALUES (?)", Int(int64(i)))
	}
	res := mustExec(t, db, "SELECT k FROM r ORDER BY k DESC LIMIT 3 OFFSET 1")
	want := []int64{48, 47, 46}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for i, w := range want {
		if res.Rows[i][0].I != w {
			t.Fatalf("row %d: got %d want %d", i, res.Rows[i][0].I, w)
		}
	}
	if db.PlanCounters().OrderedScans == 0 {
		t.Fatal("ordered-scan fast path not used")
	}
}

func TestOrderedIndexMinMax(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE r (k INT)")
	mustExec(t, db, "CREATE INDEX rk ON r (k)")
	res := mustExec(t, db, "SELECT MIN(k), MAX(k) FROM r")
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty table: want NULLs, got %v", res.Rows[0])
	}
	mustExec(t, db, "INSERT INTO r (k) VALUES (NULL), (7), (-3), (12)")
	res = mustExec(t, db, "SELECT MIN(k), MAX(k) FROM r")
	if res.Rows[0][0].I != -3 || res.Rows[0][1].I != 12 {
		t.Fatalf("got %v", res.Rows[0])
	}
	if db.PlanCounters().MinMaxIndex == 0 {
		t.Fatal("MIN/MAX fast path not used")
	}
}

func TestCreateIndexUsing(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE u (a INT, b INT, c INT)")
	mustExec(t, db, "CREATE INDEX ua ON u (a)")             // hash + ordered
	mustExec(t, db, "CREATE INDEX ub ON u (b) USING HASH")  // hash only
	mustExec(t, db, "CREATE INDEX uc ON u (c) USING BTREE") // ordered only
	tab := db.Table("u")
	if tab.indexes["a"] == nil || tab.ordIndexes["a"] == nil {
		t.Fatal("default index should create both structures")
	}
	if tab.indexes["b"] == nil || tab.ordIndexes["b"] != nil {
		t.Fatal("USING HASH should create only a hash index")
	}
	if tab.indexes["c"] != nil || tab.ordIndexes["c"] == nil {
		t.Fatal("USING BTREE should create only an ordered index")
	}
	if _, err := db.ExecSQL("CREATE INDEX ux ON u (a) USING SPLAY"); err == nil {
		t.Fatal("want error for unknown index type")
	}
	// Ordered index built over existing rows.
	db2 := New()
	mustExec(t, db2, "CREATE TABLE u (a INT)")
	mustExec(t, db2, "INSERT INTO u (a) VALUES (3), (1), (2)")
	mustExec(t, db2, "CREATE INDEX ua ON u (a) USING BTREE")
	res := mustExec(t, db2, "SELECT a FROM u WHERE a > 1 ORDER BY a")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 2 || res.Rows[1][0].I != 3 {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestUpdateUniqueViolation(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE q (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO q (id, v) VALUES (1, 10), (2, 20)")
	if _, err := db.ExecSQL("UPDATE q SET id = 2 WHERE id = 1"); err == nil {
		t.Fatal("want unique violation on UPDATE")
	}
	// The rejected update must leave the row untouched.
	res := mustExec(t, db, "SELECT v FROM q WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 10 {
		t.Fatalf("row mutated by rejected update: %v", res.Rows)
	}
	// Self-assignment of the same value stays legal.
	mustExec(t, db, "UPDATE q SET id = 1 WHERE id = 1")
	// Moving to a fresh value stays legal.
	mustExec(t, db, "UPDATE q SET id = 3 WHERE id = 1")
	res = mustExec(t, db, "SELECT v FROM q WHERE id = 3")
	if len(res.Rows) != 1 {
		t.Fatalf("expected moved row, got %v", res.Rows)
	}
}

func TestMultiRowUpdateAtomicOnUniqueViolation(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INT, v INT)")
	mustExec(t, db, "CREATE UNIQUE INDEX av ON a (v)")
	mustExec(t, db, "INSERT INTO a (id, v) VALUES (1, 10), (2, 20), (3, 30)")
	// Every row maps to v=99: the second application collides with the
	// first, and the statement must leave ALL rows untouched.
	if _, err := db.ExecSQL("UPDATE a SET v = 99 WHERE id >= 1"); err == nil {
		t.Fatal("want unique violation")
	}
	res := mustExec(t, db, "SELECT v FROM a ORDER BY v")
	want := []int64{10, 20, 30}
	if len(res.Rows) != 3 {
		t.Fatalf("got %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].I != w {
			t.Fatalf("partial update leaked: got %v", res.Rows)
		}
	}
}

func TestHashEqCoercionFallsBack(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE h (k INT, v INT)")
	mustExec(t, db, "CREATE INDEX hk ON h (k) USING HASH")
	mustExec(t, db, "INSERT INTO h (k, v) VALUES (5, 50), (6, 60)")
	// A text bound that parses must still find the integer row, whether
	// through key coercion or a fallback scan.
	res := mustExec(t, db, "SELECT v FROM h WHERE k = '5'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 50 {
		t.Fatalf("coerced equality missed: %v", res.Rows)
	}
	// A mixed-kind column must force the scan path (text '7' row matches
	// an integer probe per-row but not by key).
	mustExec(t, db, "INSERT INTO h (k, v) VALUES ('7', 70)")
	res = mustExec(t, db, "SELECT v FROM h WHERE k = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 70 {
		t.Fatalf("mixed-kind equality missed: %v", res.Rows)
	}
}

func TestOrderedIndexMixedKindsFallsBack(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE m (k INT)")
	mustExec(t, db, "CREATE INDEX mk ON m (k)")
	// The engine is dynamically typed: text can land in an INT column.
	mustExec(t, db, "INSERT INTO m (k) VALUES (5), ('40'), (12)")
	// '40' coerces to 40 for comparison, so k > 10 matches two rows even
	// though OrdKey would segregate it into the text region: the planner
	// must detect the mixed-kind index and fall back to a scan.
	res := mustExec(t, db, "SELECT k FROM m WHERE k > 10")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

// TestOrderedIndexChurn is the maintenance property test: a table with
// hash+ordered indexes and an unindexed oracle table receive an identical
// interleaved stream of INSERT/DELETE/UPDATE statements; range queries,
// ORDER BY ... LIMIT and MIN/MAX must agree at every step.
func TestOrderedIndexChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	idx, ora := New(), New()
	for _, db := range []*DB{idx, ora} {
		mustExec(t, db, "CREATE TABLE t (k INT, id INT)")
	}
	mustExec(t, idx, "CREATE INDEX tk ON t (k)")

	both := func(sql string, params ...Value) {
		t.Helper()
		r1, e1 := idx.ExecSQL(sql, params...)
		r2, e2 := ora.ExecSQL(sql, params...)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("%s: indexed err %v, oracle err %v", sql, e1, e2)
		}
		if e1 == nil && r1.Affected != r2.Affected {
			t.Fatalf("%s: affected %d vs %d", sql, r1.Affected, r2.Affected)
		}
	}

	// rowKey renders one result row for multiset comparison.
	rowKey := func(row []Value) string {
		out := ""
		for _, v := range row {
			out += v.Key() + "\x1f"
		}
		return out
	}
	sameMultiset := func(sql string, a, b *Result) {
		t.Helper()
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: %d vs %d rows", sql, len(a.Rows), len(b.Rows))
		}
		seen := make(map[string]int, len(b.Rows))
		for _, row := range b.Rows {
			seen[rowKey(row)]++
		}
		for _, row := range a.Rows {
			k := rowKey(row)
			if seen[k] == 0 {
				t.Fatalf("%s: row %v missing from oracle result", sql, row)
			}
			seen[k]--
		}
	}
	// sameKeySeq compares the first column sequence (the sort key, which
	// is deterministic even when tie order is not).
	sameKeySeq := func(sql string, a, b *Result, n int) {
		t.Helper()
		if len(a.Rows) != n {
			t.Fatalf("%s: got %d rows, want %d", sql, len(a.Rows), n)
		}
		for i := 0; i < n; i++ {
			av, bv := a.Rows[i][0], b.Rows[i][0]
			if av.IsNull() != bv.IsNull() || (!av.IsNull() && !av.Equal(bv)) {
				t.Fatalf("%s: key %d: %v vs %v", sql, i, av, bv)
			}
		}
	}

	nextID := 0
	for step := 0; step < 500; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // INSERT, occasionally NULL keys and duplicates
			nextID++
			if rng.Intn(8) == 0 {
				both("INSERT INTO t (k, id) VALUES (NULL, ?)", Int(int64(nextID)))
			} else {
				both("INSERT INTO t (k, id) VALUES (?, ?)",
					Int(int64(rng.Intn(120)-60)), Int(int64(nextID)))
			}
		case op < 7: // DELETE a band
			a := int64(rng.Intn(140) - 70)
			both("DELETE FROM t WHERE k >= ? AND k < ?", Int(a), Int(a+int64(rng.Intn(10))))
		case op < 9: // UPDATE a band to a new key
			a := int64(rng.Intn(140) - 70)
			both("UPDATE t SET k = ? WHERE k BETWEEN ? AND ?",
				Int(int64(rng.Intn(120)-60)), Int(a), Int(a+int64(rng.Intn(8))))
		default: // churn slots: delete by id to exercise the free list
			both("DELETE FROM t WHERE id = ?", Int(int64(rng.Intn(nextID+1))))
		}

		if step%5 != 0 {
			continue
		}
		lo := int64(rng.Intn(160) - 80)
		hi := lo + int64(rng.Intn(40))
		for _, q := range []struct {
			sql     string
			ordered bool
		}{
			{"SELECT k, id FROM t WHERE k >= ? AND k < ? ORDER BY k", true},
			{"SELECT k, id FROM t WHERE k > ? AND k <= ? ORDER BY k DESC", true},
			{"SELECT k, id FROM t WHERE k BETWEEN ? AND ?", false},
		} {
			r1 := mustExec(t, idx, q.sql, Int(lo), Int(hi))
			r2 := mustExec(t, ora, q.sql, Int(lo), Int(hi))
			sameMultiset(q.sql, r1, r2)
			if q.ordered {
				sameKeySeq(q.sql, r1, r2, len(r2.Rows))
			}
		}
		// ORDER BY ... LIMIT with early termination: the key sequence must
		// match the oracle's prefix.
		limQ := "SELECT k, id FROM t WHERE k >= ? ORDER BY k LIMIT 7"
		fullQ := "SELECT k, id FROM t WHERE k >= ? ORDER BY k"
		r1 := mustExec(t, idx, limQ, Int(lo))
		r2 := mustExec(t, ora, fullQ, Int(lo))
		n := len(r2.Rows)
		if n > 7 {
			n = 7
		}
		sameKeySeq(limQ, r1, r2, n)

		r1 = mustExec(t, idx, "SELECT MIN(k), MAX(k) FROM t")
		r2 = mustExec(t, ora, "SELECT MIN(k), MAX(k) FROM t")
		sameMultiset("MIN/MAX", r1, r2)
	}

	pc := idx.PlanCounters()
	if pc.RangeScans == 0 || pc.OrderedScans == 0 || pc.MinMaxIndex == 0 {
		t.Fatalf("index paths unused under churn: %+v", pc)
	}
}

// TestIndexedJoinProbeSemantics pins down equality semantics the hash
// probe must not change: NULL never equals NULL, and cross-kind values
// compare through coercion exactly as an unindexed nested loop would.
func TestIndexedJoinProbeSemantics(t *testing.T) {
	build := func(indexed bool) *DB {
		db := New()
		mustExec(t, db, "CREATE TABLE a (x INT)")
		mustExec(t, db, "CREATE TABLE b (y INT)")
		if indexed {
			mustExec(t, db, "CREATE INDEX bi ON b (y) USING HASH")
		}
		mustExec(t, db, "INSERT INTO a (x) VALUES (NULL), (5)")
		mustExec(t, db, "INSERT INTO b (y) VALUES (NULL), (5)")
		return db
	}
	for _, q := range []string{
		"SELECT a.x, b.y FROM a JOIN b ON a.x = b.y",
		"SELECT a.x, b.y FROM a, b WHERE a.x = b.y",
	} {
		ri := mustExec(t, build(true), q)
		rs := mustExec(t, build(false), q)
		if len(ri.Rows) != 1 || len(rs.Rows) != 1 {
			t.Fatalf("%s: indexed %d rows, scan %d rows (want 1: NULL joins nothing)",
				q, len(ri.Rows), len(rs.Rows))
		}
		if ri.Rows[0][0].I != 5 || ri.Rows[0][1].I != 5 {
			t.Fatalf("%s: got %v", q, ri.Rows)
		}
	}

	// Cross-kind comma join: text '5' must find integer 5 via coercion
	// whether or not the probe side is indexed.
	for _, indexed := range []bool{true, false} {
		db := New()
		mustExec(t, db, "CREATE TABLE ta (x TEXT)")
		mustExec(t, db, "CREATE TABLE tb (y INT)")
		if indexed {
			mustExec(t, db, "CREATE INDEX tbi ON tb (y) USING HASH")
		}
		mustExec(t, db, "INSERT INTO ta (x) VALUES ('5')")
		mustExec(t, db, "INSERT INTO tb (y) VALUES (5), (6)")
		res := mustExec(t, db, "SELECT ta.x, tb.y FROM ta, tb WHERE ta.x = tb.y")
		if len(res.Rows) != 1 || res.Rows[0][1].I != 5 {
			t.Fatalf("indexed=%v: got %v", indexed, res.Rows)
		}
	}
}

// TestJoinSeedReorder checks that a comma join seeds from the table with
// the most selective indexed predicate, not blindly from tabs[0].
func TestJoinSeedReorder(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE big (id INT, ref INT)")
	mustExec(t, db, "CREATE TABLE small (sid INT, tag INT)")
	mustExec(t, db, "CREATE INDEX bigref ON big (ref)")
	mustExec(t, db, "CREATE INDEX smallsid ON small (sid)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, "INSERT INTO big (id, ref) VALUES (?, ?)", Int(int64(i)), Int(int64(i%20)))
	}
	for i := 0; i < 20; i++ {
		mustExec(t, db, "INSERT INTO small (sid, tag) VALUES (?, ?)", Int(int64(i)), Int(int64(i*100)))
	}
	// The selective predicate is on small (1 row); the join conjunct then
	// probes big's hash index on ref.
	res := mustExec(t, db,
		"SELECT big.id, small.tag FROM big, small WHERE small.sid = 7 AND big.ref = small.sid ORDER BY big.id")
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].I != 700 {
			t.Fatalf("wrong join row: %v", row)
		}
	}
}
