package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sqlparser"
)

// dump renders every table's live rows in a canonical order so two
// databases can be compared for exact equality.
func dump(t *testing.T, db *DB) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range db.TableNames() {
		res, err := db.ExecSQL("SELECT * FROM " + name)
		if err != nil {
			t.Fatalf("dump %s: %v", name, err)
		}
		rows := make([]string, 0, len(res.Rows))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.Key() // type-tagged: distinguishes 1 from '1'
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		fmt.Fprintf(&sb, "%s(%d):\n%s\n", name, len(res.Rows), strings.Join(rows, "\n"))
	}
	return sb.String()
}

func mustParse(t *testing.T, sql string) sqlparser.Statement {
	t.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %s: %v", sql, err)
	}
	return st
}

func mustParseB(b *testing.B, sql string) sqlparser.Statement {
	b.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		b.Fatalf("parse %s: %v", sql, err)
	}
	return st
}

// TestDurableRecoveryBasics covers the whole redo surface — DDL, inserts,
// updates, deletes, transactions (committed and rolled back) — by
// abandoning the database without Close (a crash) and reopening.
func TestDurableRecoveryBasics(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score INT)")
	mustExec(t, db, "CREATE INDEX t_score ON t (score)")
	mustExec(t, db, "INSERT INTO t (id, name, score) VALUES (1, 'alice', 10), (2, 'bob', 20), (3, 'carol', 30)")
	mustExec(t, db, "UPDATE t SET score = 25 WHERE id = 2")
	mustExec(t, db, "DELETE FROM t WHERE id = 1")

	// A committed transaction must survive; a rolled-back one must not.
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t (id, name, score) VALUES (4, 'dave', 40)")
	mustExec(t, db, "COMMIT")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t (id, name, score) VALUES (5, 'eve', 50)")
	mustExec(t, db, "DELETE FROM t WHERE id = 4")
	mustExec(t, db, "ROLLBACK")

	mustExec(t, db, "CREATE TABLE gone (x INT)")
	mustExec(t, db, "DROP TABLE gone")

	want := dump(t, db)
	// "Crash": no Checkpoint ran; Close here only releases the directory
	// lock and fsyncs — the on-disk bytes are identical to a kill at this
	// point (true kill coverage: TestTornTailRecovery and the server's
	// SIGKILL e2e).
	db.Close()
	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dump(t, db2); got != want {
		t.Fatalf("recovered state differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Indexes must be rebuilt: a range query should use the ordered index.
	res := mustExec(t, db2, "SELECT name FROM t WHERE score > 20 ORDER BY score")
	if len(res.Rows) != 3 {
		t.Fatalf("range after recovery: got %d rows, want 3", len(res.Rows))
	}
	if c := db2.PlanCounters(); c.RangeScans == 0 && c.OrderedScans == 0 {
		t.Fatalf("recovered ordered index unused: %+v", c)
	}
	// And the recovered database must remain writable with constraints.
	if _, err := db2.ExecSQL("INSERT INTO t (id, name, score) VALUES (2, 'dup', 0)"); err == nil {
		t.Fatal("recovered PRIMARY KEY index did not reject a duplicate")
	}
}

// TestCrashRecoveryProperty drives a random committed write sequence
// against a durable database and an in-memory oracle, crashing (reopening
// without Close) at random points and requiring the recovered state to
// equal the oracle's exactly.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	// Tiny checkpoint threshold so the property also exercises
	// snapshot+WAL recovery, not just pure WAL replay.
	opts := DurabilityOptions{CheckpointBytes: 2048}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := New()

	both := func(sql string) {
		t.Helper()
		_, errD := db.ExecSQL(sql)
		_, errO := oracle.ExecSQL(sql)
		if (errD == nil) != (errO == nil) {
			t.Fatalf("%s: durable err=%v oracle err=%v", sql, errD, errO)
		}
	}

	both("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT, n INT)")
	nextKey := 0
	for step := 0; step < 400; step++ {
		switch r := rng.Intn(100); {
		case r < 45: // insert (sometimes multi-row, sometimes duplicate key)
			k := nextKey
			if rng.Intn(8) == 0 && nextKey > 0 {
				k = rng.Intn(nextKey) // duplicate: the statement must be a no-op
			} else {
				nextKey += 2
			}
			both(fmt.Sprintf("INSERT INTO kv (k, v, n) VALUES (%d, 'v%d', %d), (%d, 'w%d', %d)",
				k, k, rng.Intn(50), k+1, k, rng.Intn(50)))
		case r < 65: // update
			both(fmt.Sprintf("UPDATE kv SET n = n + %d, v = 'u%d' WHERE n < %d", rng.Intn(9)+1, step, rng.Intn(60)))
		case r < 80: // delete
			both(fmt.Sprintf("DELETE FROM kv WHERE n > %d", 20+rng.Intn(40)))
		case r < 90: // transaction, committed or rolled back
			end := "COMMIT"
			if rng.Intn(2) == 0 {
				end = "ROLLBACK"
			}
			both("BEGIN")
			both(fmt.Sprintf("INSERT INTO kv (k, v, n) VALUES (%d, 'txn', %d)", nextKey, rng.Intn(50)))
			nextKey += 2
			both(fmt.Sprintf("UPDATE kv SET n = 0 WHERE k = %d", rng.Intn(nextKey+1)))
			both(end)
			if end == "ROLLBACK" {
				nextKey -= 2 // the oracle rolled it back too; key is free again
			}
		default: // explicit checkpoint
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}

		if step%40 == 17 { // "crash" (lock released, nothing flushed beyond commits) and recover
			db.Close()
			db2, err := Open(dir, opts)
			if err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
			db = db2
			if got, want := dump(t, db), dump(t, oracle); got != want {
				t.Fatalf("step %d: recovered state diverged from oracle:\ngot:\n%s\nwant:\n%s", step, got, want)
			}
		}
	}
	if got, want := dump(t, db), dump(t, oracle); got != want {
		t.Fatalf("final state diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTornTailRecovery truncates the WAL mid-frame — what a crash during
// an append leaves behind — and verifies recovery keeps every earlier
// commit and drops only the torn one.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t (a) VALUES (1)")
	want := dump(t, db)
	mustExec(t, db, "INSERT INTO t (a) VALUES (2)") // this commit will be torn
	db.Close()

	walPath := filepath.Join(dir, walFileName)
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if got := dump(t, db2); got != want {
		t.Fatalf("torn-tail recovery:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The torn tail was cut; the log must accept new commits.
	mustExec(t, db2, "INSERT INTO t (a) VALUES (3)")
	want2 := dump(t, db2)
	db2.Close()
	db3, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := dump(t, db3); got != want2 {
		t.Fatalf("post-repair commit lost:\n%s", got)
	}
}

// TestCheckpointTruncatesAndSkips verifies checkpoints shrink the log and
// that a stale log surviving next to a newer snapshot (a crash between the
// snapshot rename and the log truncation) is not double-applied.
func TestCheckpointTruncatesAndSkips(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i))
	}
	preWal, _ := os.Stat(filepath.Join(dir, walFileName))
	// Save the pre-checkpoint WAL: replaying it over the snapshot models
	// the crash-between-snapshot-and-truncate window.
	staleWal, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	postWal, _ := os.Stat(filepath.Join(dir, walFileName))
	if postWal.Size() >= preWal.Size() {
		t.Fatalf("checkpoint did not truncate wal: %d -> %d bytes", preWal.Size(), postWal.Size())
	}
	want := dump(t, db)
	db.Close()

	if err := os.WriteFile(filepath.Join(dir, walFileName), staleWal, 0o600); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dump(t, db2); got != want {
		t.Fatalf("stale wal was double-applied:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetaDurability checks the application-metadata blob commits
// atomically with the statements it rides on.
func TestMetaDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")

	st := mustParse(t, "INSERT INTO t (a) VALUES (1)")
	if _, err := db.ExecWithMeta(st, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	// Inside a rolled-back transaction: neither rows nor meta commit.
	mustExec(t, db, "BEGIN")
	if _, err := db.ExecWithMeta(mustParse(t, "INSERT INTO t (a) VALUES (2)"), []byte("m2")); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "ROLLBACK")
	// Inside a committed transaction: both commit together.
	mustExec(t, db, "BEGIN")
	if _, err := db.ExecWithMeta(mustParse(t, "INSERT INTO t (a) VALUES (3)"), []byte("m3")); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "COMMIT")
	db.Close()

	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(db2.Meta()); got != "m3" {
		t.Fatalf("recovered meta = %q, want %q", got, "m3")
	}
	if res := mustExec(t, db2, "SELECT a FROM t"); len(res.Rows) != 2 {
		t.Fatalf("recovered %d rows, want 2", len(res.Rows))
	}

	// SetMeta commits standalone and survives a checkpoint.
	if err := db2.SetMeta([]byte("m4")); err != nil {
		t.Fatal(err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := string(db3.Meta()); got != "m4" {
		t.Fatalf("post-checkpoint meta = %q, want %q", got, "m4")
	}
}

// TestInsertStatementAtomic: a multi-row INSERT that fails part-way must
// leave no rows behind (matching what the WAL records for it: nothing).
func TestInsertStatementAtomic(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO t (id) VALUES (1)")
	if _, err := db.ExecSQL("INSERT INTO t (id) VALUES (2), (3), (1)"); err == nil {
		t.Fatal("duplicate key insert succeeded")
	}
	res := mustExec(t, db, "SELECT id FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("failed INSERT left partial rows: %d rows, want 1", len(res.Rows))
	}
	// Same inside a transaction: rollback after the failed statement must
	// not be confused by its reverted undo records.
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t (id) VALUES (10)")
	if _, err := db.ExecSQL("INSERT INTO t (id) VALUES (11), (1)"); err == nil {
		t.Fatal("duplicate key insert succeeded in txn")
	}
	mustExec(t, db, "INSERT INTO t (id) VALUES (12)")
	mustExec(t, db, "ROLLBACK")
	res = mustExec(t, db, "SELECT id FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("rollback after failed INSERT: %d rows, want 1", len(res.Rows))
	}
}

// TestDataDirLocked: two live databases over one directory would
// interleave WAL frames; the second Open must fail until the first closes.
func TestDataDirLocked(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DurabilityOptions{}); err == nil {
		t.Fatal("second Open of a live data dir succeeded")
	}
	db.Close()
	db2, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	db2.Close()
}

// TestWriteAfterCloseFails: a closed durable database must refuse writes
// rather than silently diverging from disk.
func TestWriteAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("INSERT INTO t (a) VALUES (1)"); err == nil {
		t.Fatal("write after Close succeeded")
	}
}

// BenchmarkConcurrentWriters measures single-statement write throughput at
// 1/4/16 concurrent sessions, fsync on, with and without WAL group commit:
// the acceptance figure for the session/group-commit work. Without group
// commit every committer pays its own fsync, serialized; with it a cohort
// shares one, so throughput should scale with the writer count until the
// device saturates.
//
// The txn arm wraps every 4 inserts in BEGIN..COMMIT: buffered
// transactional writes run under the database *read* lock with the striped
// slot-lock table arbitrating conflicts, so concurrent sessions overlap
// where the seed's per-table lock map (guarded by the global mutex)
// serialized them — the delta for the ROADMAP's lock-table-granularity
// item.
func BenchmarkConcurrentWriters(b *testing.B) {
	payload := strings.Repeat("x", 64)
	for _, mode := range []struct {
		name    string
		noGroup bool
		txn     bool
	}{
		{"serialized", true, false},
		{"groupcommit", false, false},
		{"groupcommit-txn4", false, true},
	} {
		for _, sessions := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/sessions=%d", mode.name, sessions), func(b *testing.B) {
				db, err := Open(b.TempDir(), DurabilityOptions{
					CheckpointBytes: -1,
					NoGroupCommit:   mode.noGroup,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				if _, err := db.ExecSQL("CREATE TABLE t (id INT, payload TEXT)"); err != nil {
					b.Fatal(err)
				}
				st := mustParseB(b, "INSERT INTO t (id, payload) VALUES (?, ?)")
				begin := mustParseB(b, "BEGIN")
				commit := mustParseB(b, "COMMIT")
				var next int64
				b.ResetTimer()
				var wg sync.WaitGroup
				errCh := make(chan error, sessions)
				for g := 0; g < sessions; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						s := db.NewSession()
						defer s.Close()
						run := func(i int64) error {
							_, err := s.Exec(st, Int(i), Text(payload))
							return err
						}
						if mode.txn {
							run = func(i int64) error {
								if _, err := s.Exec(begin); err != nil {
									return err
								}
								for k := int64(0); k < 4; k++ {
									if _, err := s.Exec(st, Int(i*4+k), Text(payload)); err != nil {
										return err
									}
								}
								_, err := s.Exec(commit)
								return err
							}
						}
						for {
							i := atomic.AddInt64(&next, 1)
							if i > int64(b.N) {
								return
							}
							if err := run(i); err != nil {
								errCh <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				close(errCh)
				for err := range errCh {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkWALAppend measures the write path against the in-memory
// baseline: the figure the durability PR must not regress silently.
func BenchmarkWALAppend(b *testing.B) {
	for _, cfg := range []struct {
		name string
		open func(b *testing.B) *DB
	}{
		{"memory", func(b *testing.B) *DB { return New() }},
		{"wal-nofsync", func(b *testing.B) *DB {
			db, err := Open(b.TempDir(), DurabilityOptions{NoFsync: true, CheckpointBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			return db
		}},
		{"wal-fsync", func(b *testing.B) *DB {
			db, err := Open(b.TempDir(), DurabilityOptions{CheckpointBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			return db
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db := cfg.open(b)
			if _, err := db.ExecSQL("CREATE TABLE t (id INT, payload TEXT)"); err != nil {
				b.Fatal(err)
			}
			st := mustParseB(b, "INSERT INTO t (id, payload) VALUES (?, ?)")
			payload := strings.Repeat("x", 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(st, Int(int64(i)), Text(payload)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			db.Close()
		})
	}
}
