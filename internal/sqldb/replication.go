// Replication substrate: the hooks internal/repl builds async primary →
// follower WAL shipping on. The WAL is already everything a replica needs —
// CRC-framed, sequence-numbered physical redo, with the proxy's sealed
// metadata riding the same frames — so replication at this layer is four
// primitives:
//
//   - TapWAL(fromSeq): subscribe to committed frames. The returned LogTap
//     first yields the frames already on disk past fromSeq, then every
//     cohort as its fsync completes, in file (= sequence = dependency)
//     order. Fails with ErrSeqTruncated when a checkpoint has discarded
//     frames the caller still needs.
//   - TapWithSnapshot(): the catch-up path — a full-state op stream (the
//     same encoding snapshots use) plus a tap registered at the exact
//     sequence number the snapshot covers, atomically.
//   - ApplyReplicatedFrame(frame): the follower's replay entry. Re-verifies
//     the CRC, decodes the whole frame, applies it as one atomic unit under
//     the database lock through the same applyOp used by crash recovery,
//     and appends the batch to the follower's own WAL so a restarted
//     follower resumes from its local log.
//   - ResetFromSnapshot(ops, seq): replace the entire database state with a
//     primary-supplied snapshot stream (all-or-nothing), then checkpoint so
//     the local disk state matches.
//
// A frame is the unit of both atomicity and delivery: a follower that
// loses its connection mid-frame simply discards the partial bytes — no
// half-applied cohort is possible because nothing is applied until a frame
// has arrived whole and its CRC checks out.
package sqldb

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

var (
	// ErrSeqTruncated reports that the frames after the requested sequence
	// number are no longer in the log (a checkpoint folded them into the
	// snapshot). The caller must fall back to a full snapshot resync.
	ErrSeqTruncated = errors.New("sqldb: requested WAL sequence has been checkpointed away")
	// ErrTapLagged reports that a tap's subscriber fell so far behind that
	// its buffer overflowed; the tap is dead and the subscriber must
	// re-establish (possibly via snapshot).
	ErrTapLagged = errors.New("sqldb: wal tap lagged behind the commit stream")
	// ErrTapClosed reports that the tap was closed.
	ErrTapClosed = errors.New("sqldb: wal tap closed")
)

// tapBufferLimit bounds how many undelivered frame bytes a tap may hold
// before it is declared lagged — backpressure that protects the primary's
// memory from a stalled follower.
const tapBufferLimit = 64 << 20

// LogTap is a subscription to a database's committed WAL frames. Frames
// arrive exactly once each, in sequence order, only after their cohort's
// write+fsync succeeded — an un-durable commit is never shipped.
type LogTap struct {
	w *walWriter

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // pending frames, concatenated in sequence order
	floor  uint64 // frames with seq <= floor are not for this tap
	lagged bool
	closed bool
	limit  int
}

func newLogTap(w *walWriter, floor uint64) *LogTap {
	t := &LogTap{w: w, floor: floor, limit: tapBufferLimit}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// deliver appends a blob of flushed frames, filtering out any at or below
// the tap's floor (frames the subscriber already has from the file read or
// the snapshot). Called by the WAL writer under w.mu after a successful
// flush; tap.mu nests inside w.mu.
func (t *LogTap) deliver(frames []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.lagged {
		return
	}
	keep := frames
	// Frames within a cohort are in ascending sequence order, so filtering
	// is a prefix cut: skip leading frames at or below the floor.
	for len(keep) >= frameHdrLen+8 {
		plen := binary.BigEndian.Uint32(keep)
		seq := binary.BigEndian.Uint64(keep[frameHdrLen:])
		if seq > t.floor {
			break
		}
		keep = keep[frameHdrLen+int(plen):]
	}
	if len(keep) == 0 {
		return
	}
	if len(t.buf)+len(keep) > t.limit {
		t.lagged = true
		t.buf = nil
		t.cond.Broadcast()
		return
	}
	t.buf = append(t.buf, keep...)
	t.cond.Broadcast()
}

// invalidate marks the tap lagged (used when a checkpoint cured a poisoned
// writer or the state was replaced wholesale — the tap may have a gap).
func (t *LogTap) invalidate() {
	t.mu.Lock()
	t.lagged = true
	t.buf = nil
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Frames blocks until at least one committed frame is pending, then
// returns the pending frames (concatenated, sequence order) and resets the
// buffer. Returns ErrTapClosed after Close and ErrTapLagged if the
// subscriber fell behind the backpressure limit.
func (t *LogTap) Frames() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.buf) == 0 && !t.closed && !t.lagged {
		t.cond.Wait()
	}
	if t.lagged {
		return nil, ErrTapLagged
	}
	if t.closed && len(t.buf) == 0 {
		return nil, ErrTapClosed
	}
	b := t.buf
	t.buf = nil
	return b, nil
}

// Close unsubscribes the tap and wakes any blocked Frames call.
func (t *LogTap) Close() {
	t.w.removeTap(t)
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Seq returns the database's last committed WAL sequence number.
func (db *DB) Seq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walSeq
}

// MetaVersion counts committed application-metadata transitions (including
// those replayed from the WAL or a replicated stream). A follower-side
// proxy polls it cheaply to decide when to re-load its sealed metadata.
func (db *DB) MetaVersion() uint64 { return atomic.LoadUint64(&db.metaVer) }

// TapWAL subscribes to committed WAL frames with sequence numbers greater
// than fromSeq. The returned tap first yields every such frame already in
// the log, then streams each subsequent cohort as it becomes durable.
// Fails with ErrSeqTruncated when frames past fromSeq are no longer in the
// log (checkpointed away, or fromSeq is ahead of this database — a
// diverged caller); the caller should fall back to TapWithSnapshot.
func (db *DB) TapWAL(fromSeq uint64) (*LogTap, error) {
	// The read lock freezes walSeq and excludes new enqueues (committers
	// stage under the write lock), so after draining the writer the file
	// holds exactly the frames in (snapSeq, walSeq] and nothing can flush
	// concurrently with the file read below.
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return nil, fmt.Errorf("sqldb: cannot tap an in-memory database")
	}
	if fromSeq < db.snapSeq || fromSeq > db.walSeq {
		return nil, ErrSeqTruncated
	}
	w := db.wal
	w.mu.Lock()
	w.drainLocked() //cryptdb:vet-ok lockorder: holding db.mu across the drain IS the tap protocol — it pins walSeq while the file is completed and the tap registered, so backfill+live delivery is gap-free
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return nil, fmt.Errorf("sqldb: wal tap: writer failed: %w", err)
	}
	tap := newLogTap(w, db.walSeq)
	w.taps = append(w.taps, tap)
	w.mu.Unlock()

	backlog, err := readFrames(w.path, fromSeq)
	if err != nil {
		tap.Close()
		return nil, err
	}
	tap.mu.Lock()
	tap.buf = append(backlog, tap.buf...)
	tap.mu.Unlock()
	return tap, nil
}

// TapWithSnapshot returns a self-contained op stream rebuilding the entire
// current state (the snapshot encoding), the WAL sequence number it
// covers, and a tap that yields every frame committed after it — all
// consistent with one another. This is the catch-up path for a follower
// whose requested sequence has been checkpointed away.
func (db *DB) TapWithSnapshot() (ops []byte, seq uint64, tap *LogTap, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	defer catchPageFault(&err)
	if db.wal == nil {
		return nil, 0, nil, fmt.Errorf("sqldb: cannot tap an in-memory database")
	}
	ops = db.snapshotOps()
	seq = db.walSeq
	w := db.wal
	w.mu.Lock()
	tap = newLogTap(w, seq)
	w.taps = append(w.taps, tap)
	w.mu.Unlock()
	return ops, seq, tap, nil
}

// readFrames scans a WAL file and returns the raw bytes of every intact
// frame with sequence number greater than fromSeq, stopping (like
// recovery) at the first damaged frame.
func readFrames(path string, fromSeq uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < walHeaderLen || string(data[:8]) != walMagic {
		return nil, fmt.Errorf("sqldb: %s is not a wal file", path)
	}
	var out []byte
	off := walHeaderLen
	for {
		rest := data[off:]
		if len(rest) < frameHdrLen {
			return out, nil
		}
		plen := binary.BigEndian.Uint32(rest)
		if plen < 8 || plen > maxFrameLen || int(plen) > len(rest)-frameHdrLen {
			return out, nil
		}
		payload := rest[frameHdrLen : frameHdrLen+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:]) {
			return out, nil
		}
		if binary.BigEndian.Uint64(payload) > fromSeq {
			out = append(out, rest[:frameHdrLen+int(plen)]...)
		}
		off += frameHdrLen + int(plen)
	}
}

// SplitFrames cuts a blob of concatenated frames (as yielded by a LogTap)
// into individual frames without verifying CRCs. Errors on malformed
// lengths; the per-frame CRC check happens in ApplyReplicatedFrame.
func SplitFrames(blob []byte) ([][]byte, error) {
	var frames [][]byte
	for len(blob) > 0 {
		if len(blob) < frameHdrLen {
			return nil, fmt.Errorf("sqldb: truncated frame header (%d bytes)", len(blob))
		}
		plen := binary.BigEndian.Uint32(blob)
		if plen < 8 || plen > maxFrameLen || int(plen) > len(blob)-frameHdrLen {
			return nil, fmt.Errorf("sqldb: frame length %d exceeds blob", plen)
		}
		frames = append(frames, blob[:frameHdrLen+int(plen)])
		blob = blob[frameHdrLen+int(plen):]
	}
	return frames, nil
}

// FrameSeq returns the sequence number of one framed batch.
func FrameSeq(frame []byte) (uint64, error) {
	if len(frame) < frameHdrLen+8 {
		return 0, fmt.Errorf("sqldb: frame too short (%d bytes)", len(frame))
	}
	return binary.BigEndian.Uint64(frame[frameHdrLen:]), nil
}

// ApplyReplicatedFrame replays one shipped WAL frame on a follower. The
// frame's CRC is re-verified (the network hop gets no more trust than the
// disk) and the whole batch is decoded before anything applies, so a
// corrupt or truncated frame leaves the database untouched. Frames at or
// below the current sequence are skipped (idempotent redelivery); frames
// above it apply atomically under the database lock and are appended to
// the follower's own WAL so the replica is itself durable and restartable
// through the ordinary recovery path. Sequence gaps are tolerated — the
// primary's stream is the order authority.
func (db *DB) ApplyReplicatedFrame(frame []byte) error {
	if len(frame) < frameHdrLen+8 {
		return fmt.Errorf("sqldb: replicated frame too short (%d bytes)", len(frame))
	}
	plen := binary.BigEndian.Uint32(frame)
	if plen < 8 || int(plen) != len(frame)-frameHdrLen {
		return fmt.Errorf("sqldb: replicated frame length mismatch (%d vs %d)", plen, len(frame)-frameHdrLen)
	}
	payload := frame[frameHdrLen:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(frame[4:]) {
		return fmt.Errorf("sqldb: replicated frame failed CRC check")
	}
	seq := binary.BigEndian.Uint64(payload)
	// Decode everything up front: an undecodable op must not half-apply.
	var ops []walOp
	d := &walDecoder{buf: payload[8:]}
	for !d.done() {
		op, err := d.op()
		if err != nil {
			return fmt.Errorf("sqldb: replicated frame decode: %w", err)
		}
		ops = append(ops, op)
	}

	if db.wal != nil {
		db.wal.announce()
		defer db.wal.retire()
	}
	db.mu.Lock()
	if seq <= db.walSeq {
		db.mu.Unlock()
		return nil // already applied (redelivery after a reconnect)
	}
	applyErr := func() (err error) {
		// Applying to a paged follower can fault pages in; the panic must
		// not escape with db.mu held.
		defer catchPageFault(&err)
		for i, op := range ops {
			if err := db.applyOp(op); err != nil {
				// A mid-batch apply failure means the follower's state has
				// diverged from the primary's; the caller must full-resync.
				return fmt.Errorf("sqldb: replicated frame %d apply (op %d): %w", seq, i, err)
			}
		}
		return nil
	}()
	if applyErr != nil {
		db.mu.Unlock()
		return applyErr
	}
	db.walSeq = seq
	var cohort *walCohort
	if db.wal != nil {
		cohort = db.wal.enqueue(seq, payload[8:])
	}
	db.mu.Unlock()

	if cohort != nil {
		if err := db.wal.waitFlush(cohort); err != nil {
			return &DurabilityError{Err: err}
		}
		db.maybeAutoCheckpoint()
		db.cachePressure()
	}
	return nil
}

// ResetFromSnapshot replaces the entire database state with a
// primary-supplied snapshot op stream covering sequence seq. The stream is
// decoded and applied into scratch state first, then swapped in under the
// database lock — a malformed stream leaves the database untouched. On a
// durable database the new state is checkpointed immediately so the local
// disk agrees with memory. Fails while any transaction is open.
func (db *DB) ResetFromSnapshot(ops []byte, seq uint64) error {
	scratch := New()
	d := &walDecoder{buf: ops}
	for !d.done() {
		op, err := d.op()
		if err != nil {
			return fmt.Errorf("sqldb: snapshot stream decode: %w", err)
		}
		if err := scratch.applyOp(op); err != nil {
			return fmt.Errorf("sqldb: snapshot stream apply: %w", err)
		}
	}

	if db.pager != nil {
		// The checkpoint below runs with db.mu held; take the single-flight
		// lock first (ckptMu before db.mu, always) so a concurrent
		// background checkpoint cannot interleave.
		db.ckptMu.Lock()
		defer db.ckptMu.Unlock()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.openTxns) > 0 {
		return fmt.Errorf("sqldb: cannot reset state with %d open transactions", len(db.openTxns))
	}
	if db.pager != nil {
		// Swap the cache's accounting over to the scratch tables: uncharge
		// the old state, adopt the new (fully resident, all dirty).
		for _, t := range db.tables {
			db.pager.forgetTable(t)
		}
	}
	db.tables = scratch.tables
	db.meta = scratch.meta
	atomic.AddUint64(&db.metaVer, 1)
	db.walSeq = seq
	db.snapSeq = seq
	if db.wal == nil {
		return nil
	}
	// The local log no longer describes the in-memory state; persist the
	// new state and truncate. Any taps on this database may now have a gap,
	// so they are invalidated (a chained subscriber must resync).
	db.wal.invalidateTaps()
	if db.pager != nil {
		for _, t := range db.tables {
			db.adoptResidentTable(t)
		}
		//cryptdb:vet-ok lockorder: a snapshot reset installs a frozen state; db.mu must span segment write + manifest install
		if err := db.checkpointPagedLocked(); err != nil {
			return &DurabilityError{Err: err}
		}
		db.pager.evictToBudget()
		return nil
	}
	//cryptdb:vet-ok lockorder: a snapshot reset installs a frozen state; db.mu must span snapshot write + WAL reset
	if err := db.checkpointLocked(); err != nil {
		return &DurabilityError{Err: err}
	}
	return nil
}

// StateDigest returns a deterministic digest of the full logical state —
// schema, indexes, rows (by slot), and the committed metadata blob. Two
// databases with equal digests hold byte-identical state; replication
// tests use it as their equivalence oracle.
func (db *DB) StateDigest() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Digesting scans every row, faulting evicted pages through the cache;
	// an I/O failure surfaces as a panic from the accessors and is allowed
	// to propagate (digests back oracles and tests, which want loud failure).
	sum := sha256.Sum256(db.snapshotOps())
	return hex.EncodeToString(sum[:])
}
