// Package sqldb is an embedded, in-memory SQL database engine: the
// "unmodified DBMS server" substrate of the CryptDB architecture (Figure 1).
// It executes the SQL subset produced by package sqlparser over typed
// tables, supports hash indexes, aggregates, multi-table joins and
// transactions, and — critically for CryptDB — exposes a registry for
// user-defined functions, both scalar (DECRYPT_RND, JOIN_ADJ, SEARCHSWP)
// and aggregate (HOM_SUM), exactly the extensibility hook the paper uses on
// MySQL and Postgres.
//
// The engine never learns anything CryptDB does not tell it: it stores and
// compares opaque values. Leak-oriented tests inspect its storage directly
// to verify plaintext never reaches it.
package sqldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
)

// Kind is the runtime type of a Value.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindText
	KindBlob
)

// String names the kind as its SQL type keyword.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindText:
		return "TEXT"
	case KindBlob:
		return "BLOB"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a dynamically typed SQL value.
type Value struct {
	Kind Kind
	I    int64
	S    string
	B    []byte
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int wraps a 64-bit integer as a Value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Text wraps a string as a Value.
func Text(s string) Value { return Value{Kind: KindText, S: s} }

// Blob wraps a byte slice as a Value (not copied).
func Blob(b []byte) Value { return Value{Kind: KindBlob, B: b} }

// Bool encodes a boolean as the integers 1/0, MySQL-style.
func Bool(b bool) Value { return Int(boolToInt(b)) }

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy converts v to a boolean for WHERE evaluation: non-zero ints are
// true, NULL is false, non-empty text/blob is true.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.I != 0
	case KindText:
		return v.S != ""
	case KindBlob:
		return len(v.B) != 0
	}
	return false
}

// Compare orders two non-NULL values of the same kind; mixed int/text
// comparisons coerce text to int when possible (MySQL-ish leniency). It
// returns -1, 0 or +1 and an error for incomparable kinds.
func (v Value) Compare(o Value) (int, error) {
	if v.Kind == KindNull || o.Kind == KindNull {
		return 0, fmt.Errorf("sqldb: NULL is not comparable")
	}
	if v.Kind != o.Kind {
		// Coerce text <-> int if one side parses.
		if v.Kind == KindText && o.Kind == KindInt {
			if n, err := strconv.ParseInt(v.S, 10, 64); err == nil {
				return cmpInt(n, o.I), nil
			}
		}
		if v.Kind == KindInt && o.Kind == KindText {
			if n, err := strconv.ParseInt(o.S, 10, 64); err == nil {
				return cmpInt(v.I, n), nil
			}
		}
		return 0, fmt.Errorf("sqldb: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KindInt:
		return cmpInt(v.I, o.I), nil
	case KindText:
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		}
		return 0, nil
	case KindBlob:
		return bytes.Compare(v.B, o.B), nil
	}
	return 0, fmt.Errorf("sqldb: cannot compare %s", v.Kind)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports SQL equality (NULL equals nothing).
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return false
	}
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// Key returns a type-tagged encoding usable as an index/hash key: equal
// values always produce equal keys and different kinds never collide.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00"
	case KindInt:
		var buf [9]byte
		buf[0] = 1
		binary.BigEndian.PutUint64(buf[1:], uint64(v.I))
		return string(buf[:])
	case KindText:
		return "\x02" + v.S
	case KindBlob:
		return "\x03" + string(v.B)
	}
	return "\xff"
}

// OrdKey returns an order-preserving encoding: for two values of the same
// kind, lexicographic byte order of their OrdKeys matches Compare. NULL
// sorts before everything and kinds are segregated by a leading tag in Kind
// order, matching compareForSort's kind-first fallback. Ordered indexes key
// their entries with it.
// appendKey appends the Key() encoding to buf without the per-call string
// allocation; the compiled executor uses it on its hashing hot paths.
func (v Value) appendKey(buf []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(buf, 0)
	case KindInt:
		var b [9]byte
		b[0] = 1
		binary.BigEndian.PutUint64(b[1:], uint64(v.I))
		return append(buf, b[:]...)
	case KindText:
		buf = append(buf, 2)
		return append(buf, v.S...)
	case KindBlob:
		buf = append(buf, 3)
		return append(buf, v.B...)
	}
	return append(buf, 0xff)
}

func (v Value) OrdKey() string {
	switch v.Kind {
	case KindNull:
		return "\x00"
	case KindInt:
		// Flipping the sign bit makes big-endian byte order match signed
		// integer order (negatives sort before positives).
		var buf [9]byte
		buf[0] = 1
		binary.BigEndian.PutUint64(buf[1:], uint64(v.I)^(1<<63))
		return string(buf[:])
	case KindText:
		return "\x02" + v.S
	case KindBlob:
		return "\x03" + string(v.B)
	}
	return "\xff"
}

// SizeBytes approximates the storage footprint of the value, used for the
// paper's §8.4.3 storage-expansion accounting.
func (v Value) SizeBytes() int {
	switch v.Kind {
	case KindInt:
		return 8
	case KindText:
		return len(v.S)
	case KindBlob:
		return len(v.B)
	}
	return 1
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindText:
		return v.S
	case KindBlob:
		return fmt.Sprintf("x'%x'", v.B)
	}
	return "?"
}

// AsInt coerces the value to an integer if possible.
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt:
		return v.I, nil
	case KindText:
		n, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("sqldb: %q is not an integer", v.S)
		}
		return n, nil
	}
	return 0, fmt.Errorf("sqldb: cannot coerce %s to integer", v.Kind)
}
