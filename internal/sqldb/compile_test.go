package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// renderRows flattens result rows into comparable strings via the
// type-tagged Key encoding.
func renderResultRows(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.Key())
			b.WriteByte(0x1f)
		}
		out = append(out, b.String())
	}
	return out
}

// sameRows compares two results: exact order when ordered, multiset
// otherwise.
func sameRows(t *testing.T, label, query string, a, b *Result, ordered bool) {
	t.Helper()
	ra, rb := renderResultRows(a), renderResultRows(b)
	if !ordered {
		sort.Strings(ra)
		sort.Strings(rb)
	}
	if len(ra) != len(rb) {
		t.Fatalf("%s: %q: row count %d vs %d", label, query, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: %q: row %d differs:\n  %q\n  %q", label, query, i, ra[i], rb[i])
		}
	}
}

// execBoth runs one statement on the compiled and the interpreter-oracle
// database and requires matching success/failure.
func execBoth(t *testing.T, comp, oracle *DB, sql string, params ...Value) (*Result, *Result) {
	t.Helper()
	rc, errC := comp.ExecSQL(sql, params...)
	ro, errO := oracle.ExecSQL(sql, params...)
	if (errC == nil) != (errO == nil) {
		t.Fatalf("%q: compiled err=%v, interpreted err=%v", sql, errC, errO)
	}
	return rc, ro
}

// seedPair builds two identical databases, one with the compiled pipeline,
// one forced through the interpreter.
func seedPair(t *testing.T) (*DB, *DB) {
	t.Helper()
	comp, oracle := New(), New()
	oracle.SetCompiledExec(false)
	for _, ddl := range []string{
		"CREATE TABLE t1 (id INT PRIMARY KEY, grp TEXT, a INT, b INT)",
		"CREATE INDEX t1_grp ON t1 (grp) USING HASH",
		"CREATE INDEX t1_a ON t1 (a) USING BTREE",
		"CREATE TABLE t2 (id INT PRIMARY KEY, fk INT, c INT)",
		"CREATE INDEX t2_fk ON t2 (fk) USING HASH",
		"CREATE TABLE t3 (id INT PRIMARY KEY, k1 INT, k2 INT, d INT)",
		"CREATE INDEX t3_k1 ON t3 (k1) USING HASH",
	} {
		mustExec(t, comp, ddl)
		mustExec(t, oracle, ddl)
	}
	return comp, oracle
}

// TestCompiledEquivalence drives a join/GROUP BY-heavy random workload
// through the compiled pipeline and the AST interpreter and requires
// identical results at every step, with counters proving the compiled path
// (and its hash joins) actually served the queries.
func TestCompiledEquivalence(t *testing.T) {
	comp, oracle := seedPair(t)
	r := rand.New(rand.NewSource(7))

	nullable := func(n int64, p float64) Value {
		if r.Float64() < p {
			return Null()
		}
		return Int(n)
	}
	grpVal := func() Value {
		if r.Float64() < 0.05 {
			return Null()
		}
		return Text(fmt.Sprintf("g%d", r.Intn(6)))
	}

	nextID := map[string]int64{"t1": 0, "t2": 0, "t3": 0}
	live := map[string][]int64{}
	insert := func(table string) {
		id := nextID[table]
		nextID[table]++
		live[table] = append(live[table], id)
		var sql string
		var params []Value
		switch table {
		case "t1":
			sql = "INSERT INTO t1 (id, grp, a, b) VALUES (?, ?, ?, ?)"
			params = []Value{Int(id), grpVal(), nullable(int64(r.Intn(40)), 0.1), nullable(int64(r.Intn(25)), 0.1)}
		case "t2":
			sql = "INSERT INTO t2 (id, fk, c) VALUES (?, ?, ?)"
			params = []Value{Int(id), nullable(int64(r.Intn(60)), 0.1), nullable(int64(r.Intn(15)), 0.1)}
		case "t3":
			sql = "INSERT INTO t3 (id, k1, k2, d) VALUES (?, ?, ?, ?)"
			params = []Value{Int(id), nullable(int64(r.Intn(15)), 0.1), nullable(int64(r.Intn(15)), 0.1), Int(int64(r.Intn(100)))}
		}
		execBoth(t, comp, oracle, sql, params...)
	}
	tables := []string{"t1", "t2", "t3"}
	for i := 0; i < 120; i++ {
		insert(tables[i%3])
	}

	mutate := func() {
		table := tables[r.Intn(3)]
		switch r.Intn(3) {
		case 0:
			insert(table)
		case 1:
			if ids := live[table]; len(ids) > 0 {
				id := ids[r.Intn(len(ids))]
				switch table {
				case "t1":
					execBoth(t, comp, oracle, "UPDATE t1 SET a = ?, grp = ? WHERE id = ?", nullable(int64(r.Intn(40)), 0.1), grpVal(), Int(id))
				case "t2":
					execBoth(t, comp, oracle, "UPDATE t2 SET fk = ?, c = ? WHERE id = ?", nullable(int64(r.Intn(60)), 0.1), nullable(int64(r.Intn(15)), 0.1), Int(id))
				case "t3":
					execBoth(t, comp, oracle, "UPDATE t3 SET k1 = ?, d = ? WHERE id = ?", nullable(int64(r.Intn(15)), 0.1), Int(int64(r.Intn(100))), Int(id))
				}
			}
		case 2:
			if ids := live[table]; len(ids) > 3 {
				i := r.Intn(len(ids))
				id := ids[i]
				live[table] = append(ids[:i], ids[i+1:]...)
				execBoth(t, comp, oracle, fmt.Sprintf("DELETE FROM %s WHERE id = ?", table), Int(id))
			}
		}
	}

	type tmpl struct {
		sql     string
		ordered bool // result order is deterministic across both paths
		params  func() []Value
	}
	one := func(n int) func() []Value {
		return func() []Value { return []Value{Int(int64(r.Intn(n)))} }
	}
	queries := []tmpl{
		{"SELECT * FROM t1 WHERE a < ? ORDER BY id LIMIT 10", true, one(40)},
		{"SELECT id, a + b * 2, -a FROM t1 WHERE (a > ? OR b < 5) AND grp != 'g3' ORDER BY id", true, one(40)},
		{"SELECT t1.id, t2.id, t2.c FROM t1, t2 WHERE t1.id = t2.fk AND t2.c > ?", false, one(15)},
		{"SELECT t1.grp, COUNT(*), SUM(t2.c) FROM t1 JOIN t2 ON t1.id = t2.fk WHERE t1.a > ? GROUP BY t1.grp HAVING COUNT(*) > 1 ORDER BY t1.grp", true, one(40)},
		{"SELECT t3.d, t2.c FROM t2 JOIN t3 ON t2.fk = t3.k1 AND t2.c = t3.k2", false, nil},
		{"SELECT DISTINCT grp FROM t1", false, nil},
		{"SELECT t1.grp, t3.d FROM t1, t2, t3 WHERE t1.id = t2.fk AND t2.c = t3.k1 AND t1.b > ?", false, one(25)},
		{"SELECT grp, SUM(a) + COUNT(b), AVG(a) FROM t1 GROUP BY grp ORDER BY grp", true, nil},
		{"SELECT id FROM t1 WHERE a BETWEEN ? AND 30 AND grp IN ('g1', 'g2', 'g4') ORDER BY id", true, one(20)},
		{"SELECT COUNT(DISTINCT t1.grp), MIN(t2.c), MAX(t2.c) FROM t1 JOIN t2 ON t1.id = t2.fk", false, nil},
		{"SELECT COUNT(*), SUM(a) FROM t1 WHERE a > 99999", false, nil},
		{"SELECT grp, COUNT(*) AS n FROM t1 WHERE grp IS NOT NULL GROUP BY grp ORDER BY n DESC, grp", true, nil},
		{"SELECT id, grp FROM t1 WHERE grp LIKE 'g%' ORDER BY a DESC, id", true, nil},
		{"SELECT t2.fk, COUNT(*), SUM(t3.d) FROM t2 JOIN t3 ON t2.c = t3.k2 GROUP BY t2.fk ORDER BY t2.fk", true, nil},
	}

	for step := 0; step < 400; step++ {
		mutate()
		q := queries[r.Intn(len(queries))]
		var params []Value
		if q.params != nil {
			params = q.params()
		}
		rc, ro := execBoth(t, comp, oracle, q.sql, params...)
		if rc != nil && ro != nil {
			sameRows(t, fmt.Sprintf("step %d", step), q.sql, rc, ro, q.ordered)
		}
	}

	pc, po := comp.PlanCounters(), oracle.PlanCounters()
	if pc.Compiled == 0 || pc.HashJoins == 0 {
		t.Fatalf("compiled path never engaged: %+v", pc)
	}
	if pc.Interpreted != 0 {
		t.Fatalf("compiled arm fell back %d times unexpectedly: %+v", pc.Interpreted, pc)
	}
	if po.Compiled != 0 || po.Interpreted == 0 {
		t.Fatalf("oracle arm not interpreted: %+v", po)
	}
	t.Logf("compiled arm: %+v", pc)
	t.Logf("interpreted arm: %+v", po)
}

// TestCompiledJoinSemantics pins the hash-join edge semantics against the
// interpreter: NULL keys never match, multi-conjunct ON clauses use the
// full key, cross-kind values coerce per pair, and a heterogeneous build
// side degrades to per-pair comparison rather than changing results.
func TestCompiledJoinSemantics(t *testing.T) {
	comp, oracle := New(), New()
	oracle.SetCompiledExec(false)
	for _, ddl := range []string{
		"CREATE TABLE l (x INT, y INT)",
		"CREATE TABLE r (x INT, y INT)",
		"CREATE INDEX r_x ON r (x) USING HASH",
	} {
		mustExec(t, comp, ddl)
		mustExec(t, oracle, ddl)
	}
	rows := [][2]Value{
		{Int(1), Int(1)}, {Int(1), Int(2)}, {Int(2), Null()}, {Null(), Int(3)},
		{Text("2"), Int(2)}, {Int(3), Int(3)}, {Int(3), Int(3)},
	}
	for _, row := range rows {
		execBoth(t, comp, oracle, "INSERT INTO l (x, y) VALUES (?, ?)", row[0], row[1])
		execBoth(t, comp, oracle, "INSERT INTO r (x, y) VALUES (?, ?)", row[0], row[1])
	}
	for _, q := range []string{
		// Multi-conjunct ON: full key in the compiled join, probe+filter in
		// the interpreter.
		"SELECT l.x, l.y, r.x, r.y FROM l JOIN r ON l.x = r.x AND l.y = r.y",
		// Single-column with NULLs and a heterogeneous build side (INT and
		// TEXT '2' both live in r.x): per-pair coercion must be preserved,
		// so Text('2') matches Int(2) in either direction.
		"SELECT l.x, r.y FROM l JOIN r ON l.x = r.x",
		"SELECT l.x, r.y FROM l, r WHERE l.y = r.x",
	} {
		rc, ro := execBoth(t, comp, oracle, q)
		sameRows(t, "join", q, rc, ro, false)
	}
	if pc := comp.PlanCounters(); pc.HashJoins+pc.NestedLoops == 0 {
		t.Fatalf("no join operators ran: %+v", pc)
	}
	// The interpreter arm saw one multi-conjunct ON whose equi key it can
	// only probe on one column.
	if po := oracle.PlanCounters(); po.DegradedJoins == 0 {
		t.Fatalf("interpreter did not count the degraded multi-column probe: %+v", po)
	}
}

// TestCompiledFallback verifies statements outside the compiler's coverage
// fall back to the interpreter and still work — and that the fallback is
// counted.
func TestCompiledFallback(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
	// Unknown function: compilation refuses, the interpreter produces the
	// error.
	if _, err := db.ExecSQL("SELECT no_such_fn(v) FROM t"); err == nil {
		t.Fatal("expected unknown-function error")
	}
	db.RegisterUDF("twice", func(args []Value) (Value, error) {
		n, err := args[0].AsInt()
		if err != nil {
			return Value{}, err
		}
		return Int(2 * n), nil
	})
	res := mustExec(t, db, "SELECT twice(v) FROM t ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 20 || res.Rows[1][0].I != 40 {
		t.Fatalf("rows = %v", res.Rows)
	}
	pc := db.PlanCounters()
	if pc.Compiled == 0 {
		t.Fatalf("UDF select should compile: %+v", pc)
	}
	if pc.Interpreted == 0 {
		t.Fatalf("unknown-function select should have fallen back: %+v", pc)
	}
}

// TestCompiledConcurrentSelects races compiled SELECTs (joins and GROUP
// BYs) against writers on separate sessions; run under -race in CI's
// concurrency smoke.
func TestCompiledConcurrentSelects(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INT PRIMARY KEY, k INT, v INT)")
	mustExec(t, db, "CREATE TABLE b (id INT PRIMARY KEY, k INT, w INT)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, "INSERT INTO a (id, k, v) VALUES (?, ?, ?)", Int(int64(i)), Int(int64(i%8)), Int(int64(i)))
		mustExec(t, db, "INSERT INTO b (id, k, w) VALUES (?, ?, ?)", Int(int64(i)), Int(int64(i%8)), Int(int64(2*i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < 50; i++ {
				id := int64(200 + w*1000 + i)
				if _, err := sess.ExecSQL("INSERT INTO a (id, k, v) VALUES (?, ?, ?)", Int(id), Int(id%8), Int(id)); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < 30; i++ {
				if _, err := sess.ExecSQL("SELECT a.k, COUNT(*), SUM(b.w) FROM a JOIN b ON a.k = b.k GROUP BY a.k"); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if pc := db.PlanCounters(); pc.Compiled == 0 || pc.HashJoins == 0 {
		t.Fatalf("compiled path unused under concurrency: %+v", pc)
	}
}

// TestCompiledTxnView checks the compiled pipeline runs against a
// transaction's merged view (read-your-writes) and that disabling compiled
// execution propagates into the view.
func TestCompiledTxnView(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, g INT, v INT)")
	mustExec(t, db, "INSERT INTO t (id, g, v) VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30)")
	sess := db.NewSession()
	defer sess.Close()
	mustExecSQL := func(sql string, params ...Value) *Result {
		res, err := sess.ExecSQL(sql, params...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExecSQL("BEGIN")
	mustExecSQL("UPDATE t SET v = 25 WHERE id = 2")
	mustExecSQL("INSERT INTO t (id, g, v) VALUES (4, 2, 40)")
	res := mustExecSQL("SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g")
	if len(res.Rows) != 2 || res.Rows[0][1].I != 35 || res.Rows[1][1].I != 70 {
		t.Fatalf("rows = %v", res.Rows)
	}
	mustExecSQL("ROLLBACK")
}
