package proxy

import (
	"math/big"

	"repro/internal/crypto/rnd"
)

var bigOne = big.NewInt(1)

// newIV draws a fresh per-row IV (the C*-IV columns of Figure 3).
func newIV() ([]byte, error) { return rnd.NewIV() }
