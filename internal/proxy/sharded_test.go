package proxy

import (
	"fmt"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/store/sharded"
)

// TestProxyOverShardedStore runs the encrypted pipeline end-to-end over a
// 3-shard engine: onion adjustments broadcast the DECRYPT_RND rewrites to
// every shard, equality and range queries scatter-gather, server-side
// ORDER BY ... LIMIT merges in OPE order, and SUM recombines per-shard
// Paillier partials (a product of partial products).
func TestProxyOverShardedStore(t *testing.T) {
	eng := sharded.New(3)
	p, err := NewOnEngine(eng, Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	exec := func(sql string, params ...sqldb.Value) *sqldb.Result {
		t.Helper()
		res, err := p.Execute(sql, params...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	exec("CREATE TABLE emp (name TEXT, dept TEXT, salary INT)")
	depts := []string{"eng", "ops", "biz"}
	wantSum := int64(0)
	for i := 1; i <= 60; i++ {
		exec("INSERT INTO emp (name, dept, salary) VALUES (?, ?, ?)",
			sqldb.Text(fmt.Sprintf("e%03d", i)), sqldb.Text(depts[i%3]), sqldb.Int(int64(i*100)))
		wantSum += int64(i * 100)
	}

	// Rows really are spread: no shard holds everything.
	tm := p.Table("emp")
	if tm == nil {
		t.Fatal("no table meta")
	}
	spread := 0
	for s := 0; s < 3; s++ {
		if n := eng.Shard(s).Table(tm.Anon).RowCount(); n > 0 && n < 60 {
			spread++
		}
	}
	if spread != 3 {
		t.Fatalf("rows not spread across shards")
	}

	// Equality (adjusts Eq onion to DET, broadcast) then scatter-gathers.
	res := exec("SELECT name FROM emp WHERE dept = ?", sqldb.Text("eng"))
	if len(res.Rows) != 20 {
		t.Fatalf("equality returned %d rows, want 20", len(res.Rows))
	}

	// Range (adjusts Ord onion to OPE, broadcast).
	res = exec("SELECT name, salary FROM emp WHERE salary >= ? AND salary <= ?",
		sqldb.Int(1000), sqldb.Int(2000))
	if len(res.Rows) != 11 {
		t.Fatalf("range returned %d rows, want 11", len(res.Rows))
	}

	// Server-side ORDER BY ... LIMIT: per-shard OPE index order, merged.
	res = exec("SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("order-by-limit returned %d rows", len(res.Rows))
	}
	for i, want := range []int64{6000, 5900, 5800, 5700, 5600} {
		if res.Rows[i][1].I != want {
			t.Fatalf("row %d salary = %d, want %d", i, res.Rows[i][1].I, want)
		}
	}

	// SUM over HOM: per-shard hom_sum partials multiply into the total.
	res = exec("SELECT SUM(salary) FROM emp")
	if len(res.Rows) != 1 || res.Rows[0][0].I != wantSum {
		t.Fatalf("SUM = %v, want %d", res.Rows[0], wantSum)
	}

	// GROUP BY on DET with COUNT.
	res = exec("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	if len(res.Rows) != 3 {
		t.Fatalf("GROUP BY returned %d groups", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].I != 20 {
			t.Fatalf("group %s count %d, want 20", row[0].S, row[1].I)
		}
	}

	// Routed point update via the two-query strategy (per-rid UPDATEs).
	exec("UPDATE emp SET salary = salary + 7 WHERE name = ?", sqldb.Text("e001"))
	res = exec("SELECT salary FROM emp WHERE name = ?", sqldb.Text("e001"))
	if len(res.Rows) != 1 || res.Rows[0][0].I != 107 {
		t.Fatalf("updated salary = %v, want 107", res.Rows)
	}

	// DELETE broadcast.
	exec("DELETE FROM emp WHERE dept = ?", sqldb.Text("biz"))
	res = exec("SELECT COUNT(*) FROM emp")
	if res.Rows[0][0].I != 40 {
		t.Fatalf("after delete COUNT = %d, want 40", res.Rows[0][0].I)
	}
}

// TestProxyShardedTransactions: client transactions over the encrypted
// pipeline stay single-shard (per rid) and commit/rollback correctly.
func TestProxyShardedTransactions(t *testing.T) {
	eng := sharded.New(2)
	p, err := NewOnEngine(eng, Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	sess := p.NewSession()
	defer sess.Close()
	mustS := func(sql string, params ...sqldb.Value) *sqldb.Result {
		t.Helper()
		res, err := sess.Execute(sql, params...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustS("CREATE TABLE acct (owner TEXT, bal INT)")
	mustS("INSERT INTO acct (owner, bal) VALUES (?, ?)", sqldb.Text("alice"), sqldb.Int(100))

	mustS("BEGIN")
	mustS("INSERT INTO acct (owner, bal) VALUES (?, ?)", sqldb.Text("bob"), sqldb.Int(50))
	mustS("ROLLBACK")
	if res := mustS("SELECT COUNT(*) FROM acct"); res.Rows[0][0].I != 1 {
		t.Fatalf("rolled-back insert visible: %v", res.Rows)
	}

	mustS("BEGIN")
	mustS("INSERT INTO acct (owner, bal) VALUES (?, ?)", sqldb.Text("carol"), sqldb.Int(70))
	mustS("COMMIT")
	if res := mustS("SELECT COUNT(*) FROM acct"); res.Rows[0][0].I != 2 {
		t.Fatalf("committed insert missing: %v", res.Rows)
	}
}

// TestProxyShardedTxnMultiRowUpdateRefused: a two-query UPDATE matching
// rows on several shards must be refused inside a client transaction —
// not half-applied to the pinned shard and then committed.
func TestProxyShardedTxnMultiRowUpdateRefused(t *testing.T) {
	eng := sharded.New(3)
	p, err := NewOnEngine(eng, Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	sess := p.NewSession()
	defer sess.Close()
	mustS := func(sql string, params ...sqldb.Value) *sqldb.Result {
		t.Helper()
		res, err := sess.Execute(sql, params...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustS("CREATE TABLE t (k TEXT, n INT)")
	for i := 1; i <= 8; i++ {
		mustS("INSERT INTO t (k, n) VALUES (?, ?)", sqldb.Text("a"), sqldb.Int(int64(i)))
	}
	mustS("BEGIN")
	// n = n * 2 forces the two-query strategy; the 8 matching rows span
	// shards, so the statement must fail as a whole.
	if _, err := sess.Execute("UPDATE t SET n = n * 2 WHERE k = ?", sqldb.Text("a")); err == nil {
		t.Fatal("multi-row two-query UPDATE inside a txn over a sharded store succeeded")
	}
	mustS("COMMIT")
	res := mustS("SELECT n FROM t")
	sum := int64(0)
	for _, row := range res.Rows {
		sum += row[0].I
	}
	if sum != 36 { // 1+..+8: no row may have been doubled
		t.Fatalf("partial update leaked through the refusal: sum = %d, want 36", sum)
	}
	// Outside a transaction the same statement applies fully.
	mustS("UPDATE t SET n = n * 2 WHERE k = ?", sqldb.Text("a"))
	res = mustS("SELECT n FROM t")
	sum = 0
	for _, row := range res.Rows {
		sum += row[0].I
	}
	if sum != 72 {
		t.Fatalf("autocommit two-query update: sum = %d, want 72", sum)
	}
}

// TestProxyShardedRestart: a durable sharded proxy restarts with its keys,
// onion levels and every shard's rows intact.
func TestProxyShardedRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*sharded.Engine, *Proxy) {
		t.Helper()
		eng, err := sharded.Open(dir, 2, sqldb.DurabilityOptions{CheckpointBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewOnEngine(eng, Options{HOMBits: 256, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return eng, p
	}

	eng, p := open()
	exec := func(sql string, params ...sqldb.Value) *sqldb.Result {
		t.Helper()
		res, err := p.Execute(sql, params...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	exec("CREATE TABLE t (k TEXT, n INT)")
	for i := 1; i <= 30; i++ {
		exec("INSERT INTO t (k, n) VALUES (?, ?)", sqldb.Text(fmt.Sprintf("k%02d", i)), sqldb.Int(int64(i)))
	}
	// Peel onions before the restart; the levels must be remembered.
	if got := len(exec("SELECT k FROM t WHERE n >= ? AND n <= ?", sqldb.Int(10), sqldb.Int(12)).Rows); got != 3 {
		t.Fatalf("pre-restart range rows = %d", got)
	}
	adjBefore := p.Stats().OnionAdjustments
	if adjBefore == 0 {
		t.Fatal("expected onion adjustments before restart")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng, p = open()
	defer eng.Close()
	res, err := p.Execute("SELECT k FROM t WHERE n >= ? AND n <= ?", sqldb.Int(10), sqldb.Int(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("post-restart range rows = %d, want 3", len(res.Rows))
	}
	if got := p.Stats().OnionAdjustments; got != 0 {
		t.Fatalf("restarted proxy re-adjusted onions %d times; levels were not recovered", got)
	}
	// Writes continue across the restart.
	if _, err := p.Execute("INSERT INTO t (k, n) VALUES (?, ?)", sqldb.Text("k31"), sqldb.Int(31)); err != nil {
		t.Fatal(err)
	}
	if got := len(p.MustRows(t, "SELECT k FROM t")); got != 31 {
		t.Fatalf("post-restart row count = %d, want 31", got)
	}
}

// MustRows is a tiny test helper on Proxy.
func (p *Proxy) MustRows(t *testing.T, sql string) [][]sqldb.Value {
	t.Helper()
	res, err := p.Execute(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res.Rows
}
