package proxy

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/onion"
	"repro/internal/sqldb"
)

// openDurable opens (or reopens) a durable DBMS+proxy pair rooted at dir.
// The previous instance must have been Closed (the data dir is locked);
// Close releases the lock and fsyncs but checkpoints nothing, so the
// on-disk state a reopen recovers from matches a crash at that point.
func openDurable(t *testing.T, dir string) (*sqldb.DB, *Proxy) {
	t.Helper()
	db, err := sqldb.Open(dir, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() }) // double Close is safe
	p, err := New(db, Options{HOMBits: 256, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return db, p
}

func resultString(t *testing.T, p *Proxy, sql string) string {
	t.Helper()
	res, err := p.Execute(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var sb strings.Builder
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestProxyRestartRoundTrip is the core durability contract: a proxy
// restarted over the same data dir decrypts everything its predecessor
// stored, remembers every onion adjustment, and keeps encrypting new rows
// under the same keys.
func TestProxyRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, p := openDurable(t, dir)

	mustExecP(t, p, "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, salary INT)")
	mustExecP(t, p, "CREATE INDEX emp_salary ON emp (salary)")
	for i := 1; i <= 8; i++ {
		mustExecP(t, p, fmt.Sprintf("INSERT INTO emp (id, name, salary) VALUES (%d, 'n%d', %d)", i, i, i*100))
	}
	// Peel Ord (RND -> OPE) and Eq (RND -> DET) via real queries.
	wantRange := resultString(t, p, "SELECT name FROM emp WHERE salary > 350 ORDER BY salary")
	wantEq := resultString(t, p, "SELECT salary FROM emp WHERE name = 'n3'")
	wantSum := resultString(t, p, "SELECT SUM(salary) FROM emp")
	if st := p.Table("emp").Col("salary").Onions[onion.Ord]; st.Current() != onion.OPE {
		t.Fatalf("salary Ord onion at %s, want OPE", st.Current())
	}

	// Crash: no checkpoint, no graceful flush; reopen from disk.
	db.Close()
	_, p2 := openDurable(t, dir)
	if got := resultString(t, p2, "SELECT name FROM emp WHERE salary > 350 ORDER BY salary"); got != wantRange {
		t.Fatalf("range after restart:\ngot %q\nwant %q", got, wantRange)
	}
	if got := resultString(t, p2, "SELECT salary FROM emp WHERE name = 'n3'"); got != wantEq {
		t.Fatalf("equality after restart:\ngot %q\nwant %q", got, wantEq)
	}
	if got := resultString(t, p2, "SELECT SUM(salary) FROM emp"); got != wantSum {
		t.Fatalf("sum after restart:\ngot %q\nwant %q", got, wantSum)
	}
	// Adjustments were remembered, not redone: the restarted proxy served
	// the range query without stripping anything.
	if n := p2.Stats().OnionAdjustments; n != 0 {
		t.Fatalf("restarted proxy re-adjusted %d onions, want 0", n)
	}
	if st := p2.Table("emp").Col("salary").Onions[onion.Ord]; st.Current() != onion.OPE {
		t.Fatalf("restored salary Ord onion at %s, want OPE", st.Current())
	}
	if st := p2.Table("emp").Col("name").Onions[onion.Eq]; st.Current() != onion.DET {
		t.Fatalf("restored name Eq onion at %s, want DET", st.Current())
	}

	// New rows written by the restarted proxy must interoperate with old
	// ciphertexts: same DET/OPE keys, same row-id sequence.
	mustExecP(t, p2, "INSERT INTO emp (id, name, salary) VALUES (9, 'n9', 150)")
	got := resultString(t, p2, "SELECT id FROM emp WHERE salary < 250 ORDER BY salary")
	if got != "1\n9\n2\n" { // salaries 100, 150, 200
		t.Fatalf("mixed old/new rows misordered: %q", got)
	}
	if got := resultString(t, p2, "SELECT salary FROM emp WHERE name = 'n9'"); got != "150\n" {
		t.Fatalf("equality on new row: %q", got)
	}
}

// TestProxyRestartStaleness: HOM increments mark sibling onions stale in
// the same WAL batch; a restarted proxy must resync before serving an
// equality over the incremented column.
func TestProxyRestartStaleness(t *testing.T) {
	dir := t.TempDir()
	db, p := openDurable(t, dir)
	mustExecP(t, p, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	mustExecP(t, p, "INSERT INTO acct (id, bal) VALUES (1, 100), (2, 200)")
	// Exercise the Add onion, then increment: Eq/Ord are now stale.
	mustExecP(t, p, "SELECT SUM(bal) FROM acct")
	mustExecP(t, p, "UPDATE acct SET bal = bal + 50 WHERE id = 1")

	db.Close()
	_, p2 := openDurable(t, dir)
	if !p2.Table("acct").Col("bal").Stale[onion.Eq] {
		t.Fatal("staleness flag lost across restart")
	}
	if got := resultString(t, p2, "SELECT id FROM acct WHERE bal = 150"); got != "1\n" {
		t.Fatalf("stale equality after restart: %q, want row 1", got)
	}
	if p2.Stats().Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", p2.Stats().Resyncs)
	}
}

// TestProxyRestartJoin: join adjustment re-keys columns to a shared
// JOIN-ADJ key; the restarted proxy re-derives the same effective keys by
// reference and joins without further adjustment.
func TestProxyRestartJoin(t *testing.T) {
	dir := t.TempDir()
	db, p := openDurable(t, dir)
	mustExecP(t, p, "CREATE TABLE u (uid INT, uname TEXT)")
	mustExecP(t, p, "CREATE TABLE m (author INT, body TEXT)")
	mustExecP(t, p, "INSERT INTO u (uid, uname) VALUES (1, 'alice'), (2, 'bob')")
	mustExecP(t, p, "INSERT INTO m (author, body) VALUES (2, 'hi'), (2, 'again'), (1, 'yo')")
	want := resultString(t, p, "SELECT uname, body FROM u, m WHERE uid = author AND uid = 2")
	if p.Stats().OnionAdjustments == 0 {
		t.Fatal("join did not adjust (test setup broken)")
	}

	db.Close()
	_, p2 := openDurable(t, dir)
	if got := resultString(t, p2, "SELECT uname, body FROM u, m WHERE uid = author AND uid = 2"); got != want {
		t.Fatalf("join after restart:\ngot %q\nwant %q", got, want)
	}
	if n := p2.Stats().OnionAdjustments; n != 0 {
		t.Fatalf("restarted proxy re-adjusted %d onions for a converged join, want 0", n)
	}
	// New rows on both sides still join against old ones.
	mustExecP(t, p2, "INSERT INTO m (author, body) VALUES (1, 'new')")
	got := resultString(t, p2, "SELECT body FROM u, m WHERE uid = author AND uname = 'alice'")
	if got != "yo\nnew\n" && got != "new\nyo\n" {
		t.Fatalf("join with post-restart rows: %q", got)
	}
}

// TestProxyKeyFileRequired: database state without its key file must be
// rejected loudly, not silently re-keyed (which would orphan all data).
func TestProxyKeyFileRequired(t *testing.T) {
	dir := t.TempDir()
	db, p := openDurable(t, dir)
	mustExecP(t, p, "CREATE TABLE t (a INT)")
	mustExecP(t, p, "INSERT INTO t (a) VALUES (1)")
	db.Close()
	if err := os.Remove(filepath.Join(dir, "proxy-keys.json")); err != nil {
		t.Fatal(err)
	}
	db2, err := sqldb.Open(dir, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := New(db2, Options{HOMBits: 256, DataDir: dir}); err == nil {
		t.Fatal("proxy opened database state without its key file")
	}
}

// TestProxyRestartAfterCheckpoint: the sealed metadata blob must survive
// WAL truncation by riding the snapshot.
func TestProxyRestartAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, p := openDurable(t, dir)
	mustExecP(t, p, "CREATE TABLE t (a INT, b TEXT)")
	mustExecP(t, p, "INSERT INTO t (a, b) VALUES (7, 'x')")
	mustExecP(t, p, "SELECT a FROM t WHERE a > 0") // peel Ord
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	_, p2 := openDurable(t, dir)
	if got := resultString(t, p2, "SELECT b FROM t WHERE a > 0"); got != "x\n" {
		t.Fatalf("post-checkpoint restart: %q", got)
	}
	if n := p2.Stats().OnionAdjustments; n != 0 {
		t.Fatalf("adjustments after checkpointed restart = %d, want 0", n)
	}
}

func mustExecP(t *testing.T, p *Proxy, sql string) *sqldb.Result {
	t.Helper()
	res, err := p.Execute(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}
