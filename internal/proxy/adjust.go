package proxy

import (
	"fmt"
	"sync/atomic"

	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// applyRequirements performs every onion adjustment a query needs before it
// can execute (§3.2, step 2 of query processing). In training mode it only
// records what would happen.
func (p *Proxy) applyRequirements(an *analysis) error {
	if len(an.unsupported) > 0 && !p.opts.Training {
		return fmt.Errorf("proxy: query not executable over encrypted data: %s", an.unsupported[0])
	}
	for _, req := range an.reqs {
		if err := p.applyRequirement(req); err != nil {
			if p.opts.Training {
				p.trainLog = append(p.trainLog, TrainEvent{
					Table: req.cm.Table.Logical, Column: req.cm.Logical,
					Warning: err.Error(),
				})
				continue
			}
			return err
		}
	}
	if p.opts.Training {
		for _, reason := range an.unsupported {
			p.trainLog = append(p.trainLog, TrainEvent{Warning: reason})
		}
	}
	return nil
}

func (p *Proxy) applyRequirement(req requirement) error {
	switch req.class {
	case onion.ClassNone:
		return nil
	case onion.ClassPlaintext:
		if !req.cm.NeedsPlaintext {
			req.cm.NeedsPlaintext = true
			p.persistMetaLocked() //nolint:errcheck // §8.3 reporting flag; the query fails below regardless
		}
		return fmt.Errorf("proxy: %s.%s requires plaintext computation",
			req.cm.Table.Logical, req.cm.Logical)
	case onion.ClassEquality:
		if err := p.maybeResync(req.cm); err != nil {
			return err
		}
		return p.lowerTo(req.cm, onion.Eq, onion.DET)
	case onion.ClassOrder:
		if err := p.maybeResync(req.cm); err != nil {
			return err
		}
		return p.lowerTo(req.cm, onion.Ord, onion.OPE)
	case onion.ClassSearch:
		// Search onion starts (and stays) at SEARCH; nothing to strip.
		if !req.cm.HasOnion(onion.Search) {
			return fmt.Errorf("proxy: %s.%s has no Search onion",
				req.cm.Table.Logical, req.cm.Logical)
		}
		if !req.cm.UsedSearch {
			req.cm.UsedSearch = true
			return p.persistMetaLocked()
		}
		return nil
	case onion.ClassSum, onion.ClassIncrement:
		if !req.cm.HasOnion(onion.Add) {
			return fmt.Errorf("proxy: %s.%s has no Add onion",
				req.cm.Table.Logical, req.cm.Logical)
		}
		if !req.cm.UsedSum {
			req.cm.UsedSum = true
			return p.persistMetaLocked()
		}
		return nil
	case onion.ClassJoin:
		if err := p.maybeResync(req.cm); err != nil {
			return err
		}
		if err := p.maybeResync(req.joinWith); err != nil {
			return err
		}
		return p.adjustJoin(req.cm, req.joinWith)
	case onion.ClassRangeJoin:
		return p.adjustRangeJoin(req.cm, req.joinWith)
	}
	return fmt.Errorf("proxy: unknown computation class %v", req.class)
}

// lowerTo peels onion o of column cm down to layer target by issuing
// server-side DECRYPT_RND UPDATEs inside a transaction (§3.2). A no-op if
// already there.
func (p *Proxy) lowerTo(cm *ColumnMeta, o onion.Onion, target onion.Layer) error {
	st := cm.Onions[o]
	if st == nil {
		return fmt.Errorf("proxy: %s.%s has no %s onion (type %s)",
			cm.Table.Logical, cm.Logical, o, cm.Type)
	}
	if st.AtOrBelow(target) {
		return nil
	}
	if err := cm.checkMinEnc(target); err != nil {
		return err
	}
	layers, err := st.LayersAbove(target)
	if err != nil {
		return err
	}
	if p.opts.Training {
		p.trainLog = append(p.trainLog, TrainEvent{
			Table: cm.Table.Logical, Column: cm.Logical, Onion: o, Layer: target,
		})
		for range layers {
			st.Descend()
		}
		return nil
	}

	// Onion decryption executes autonomously — the equivalent of the
	// paper's separate-transaction adjustment (§3.2): it must not be
	// undone by a client ROLLBACK, because the proxy's layer metadata
	// advances with it. Atomicity against concurrent clients comes from
	// the proxy's write lock (held here) plus the DBMS statement lock.
	// Atomicity against crashes comes from the WAL: the server-side
	// UPDATE and the sealed metadata snapshot recording the descended
	// layer commit in one batch, so recovery always sees a ciphertext
	// column and a layer pointer that agree. An open transaction that has
	// written this table blocks the adjustment (conflict error, not a
	// wait): its buffered rows were encrypted at the current layer and
	// would bypass the re-encrypting UPDATE below.
	if err := p.adjustBlocked(cm.Table); err != nil {
		return err
	}
	for _, layer := range layers {
		if layer != onion.RND {
			return fmt.Errorf("proxy: cannot strip non-RND layer %s of %s onion", layer, o)
		}
		key := p.colKey(cm, o, onion.RND)
		upd := &sqlparser.UpdateStmt{
			Table: cm.Table.Anon,
			Assignments: []sqlparser.Assignment{{
				Column: cm.onionCol(o),
				Value: &sqlparser.FuncCall{
					Name: "decrypt_rnd",
					Args: []sqlparser.Expr{
						&sqlparser.BytesLit{V: key},
						&sqlparser.ColRef{Column: cm.onionCol(o)},
						&sqlparser.ColRef{Column: cm.ivCol()},
					},
				},
			}},
		}
		p.metaMu.Lock()
		st.Descend()
		sealed, err := p.sealedMetaLocked()
		if err == nil {
			// The UPDATE carries the peeled layer's key: shipping it to
			// the DBMS for an in-place re-encryption is the paper's
			// adjustable-onion protocol (§3.1) — the key reveals only the
			// layer being given up, never an inner one.
			_, err = p.db.ExecAutonomousWithMeta(upd, sealed) //cryptdb:sink-ok onion layer key ships to the DBMS to peel RND in place (§3.1)
		}
		if err != nil {
			if !stmtApplied(err) {
				st.Cur-- // the layer really was not stripped
			}
			p.metaMu.Unlock()
			return fmt.Errorf("proxy: onion adjustment: %w", err)
		}
		p.metaMu.Unlock()
		atomic.AddInt64(&p.stats.OnionAdjustments, 1)
	}
	return p.materializeIndexes(cm)
}

// adjustJoin brings both columns' JAdj onions to the JOIN layer and re-keys
// them to a common join-base: the first column of the transitivity group in
// lexicographic (table, column) order (§3.4).
func (p *Proxy) adjustJoin(a, b *ColumnMeta) error {
	for _, cm := range []*ColumnMeta{a, b} {
		if err := cm.checkMinEnc(onion.JOIN); err != nil {
			return err
		}
		if err := p.lowerTo(cm, onion.JAdj, onion.JOIN); err != nil {
			return err
		}
	}

	ra, rb := a.groupRoot(), b.groupRoot()
	base := ra
	if ra != rb {
		if lexAfter(ra, rb) {
			base = rb
		}
		ra.joinGroup = base
		rb.joinGroup = base
	}

	if p.opts.Training {
		p.trainLog = append(p.trainLog, TrainEvent{
			Table: b.Table.Logical, Column: b.Logical,
			Onion: onion.JAdj, Layer: onion.JOIN,
		})
		return nil
	}

	// Re-key the two queried columns to the group's base key. Deltas are
	// computed from each column's *current* effective key, so columns
	// merged into the group earlier converge lazily the next time they
	// are joined (the paper bounds total transitions by n(n-1)/2).
	baseKey := p.joinKey(base)
	for _, cm := range []*ColumnMeta{a, b} {
		cur := p.joinKey(cm)
		delta, err := baseKey.Delta(cur)
		if err != nil {
			return err
		}
		if delta.Cmp(bigOne) == 0 {
			continue // same key already
		}
		// Same rule as lowerTo: a buffered write would miss the re-keying.
		if err := p.adjustBlocked(cm.Table); err != nil {
			return err
		}
		upd := &sqlparser.UpdateStmt{
			Table: cm.Table.Anon,
			Assignments: []sqlparser.Assignment{{
				Column: cm.onionCol(onion.JAdj),
				Value: &sqlparser.FuncCall{
					Name: "join_adj",
					Args: []sqlparser.Expr{
						&sqlparser.ColRef{Column: cm.onionCol(onion.JAdj)},
						&sqlparser.BytesLit{V: delta.Bytes()},
					},
				},
			}},
		}
		// The re-keying UPDATE and the metadata naming the new effective
		// key (by reference to the base column, never by value) commit in
		// one WAL batch.
		p.metaMu.Lock()
		cm.mu.Lock()
		oldKey := cm.joinKey
		oldRefT, oldRefC := cm.joinRefT, cm.joinRefC
		cm.joinKey = baseKey
		cm.joinRefT, cm.joinRefC = base.joinRefT, base.joinRefC
		cm.mu.Unlock()
		sealed, err := p.sealedMetaLocked()
		if err == nil {
			// JOIN-ADJ adjustment sends the delta that re-keys one
			// column's ciphertexts onto the other's key (§3.4); the delta
			// exposes neither column's key.
			_, err = p.db.ExecAutonomousWithMeta(upd, sealed) //cryptdb:sink-ok join-adjustment delta ships to the DBMS to re-key ciphertexts in place (§3.4)
		}
		if err != nil {
			if !stmtApplied(err) {
				cm.mu.Lock()
				cm.joinKey = oldKey
				cm.joinRefT, cm.joinRefC = oldRefT, oldRefC
				cm.mu.Unlock()
			}
			p.metaMu.Unlock()
			return fmt.Errorf("proxy: join adjustment: %w", err)
		}
		p.metaMu.Unlock()
		atomic.AddInt64(&p.stats.OnionAdjustments, 1)
		if err := p.materializeIndexes(cm); err != nil {
			return err
		}
	}
	// Group-root moves are metadata-only; persist them even when both
	// deltas were identity.
	return p.persistMetaLocked()
}

func lexAfter(a, b *ColumnMeta) bool {
	if a.Table.Logical != b.Table.Logical {
		return a.Table.Logical > b.Table.Logical
	}
	return a.Logical > b.Logical
}

// adjustRangeJoin verifies a declared OPE-JOIN pair and exposes both Ord
// onions at OPE.
func (p *Proxy) adjustRangeJoin(a, b *ColumnMeta) error {
	if a.opeShared == nil || b.opeShared == nil || string(a.opeShared) != string(b.opeShared) {
		return fmt.Errorf("proxy: range join between %s.%s and %s.%s requires DeclareOPEJoin before data load (§3.4)",
			a.Table.Logical, a.Logical, b.Table.Logical, b.Logical)
	}
	if err := p.lowerTo(a, onion.Ord, onion.OPE); err != nil {
		return err
	}
	return p.lowerTo(b, onion.Ord, onion.OPE)
}

// maybeResync re-materializes a column's Eq/JAdj/Ord onions from its Add
// onion after HOM increments made them stale — the two-query strategy of
// §3.3, applied lazily at column granularity.
func (p *Proxy) maybeResync(cm *ColumnMeta) error {
	if cm == nil || !cm.Stale[onion.Eq] {
		return nil
	}
	if p.opts.Training {
		cm.Stale = make(map[onion.Onion]bool)
		return nil
	}
	// The per-row rewrite below re-materializes every onion from the Add
	// onion; rows buffered by an open transaction would be skipped and
	// then committed stale, so refuse (retryable) while one is open.
	if err := p.adjustBlocked(cm.Table); err != nil {
		return err
	}

	sel := &sqlparser.SelectStmt{
		Exprs: []sqlparser.SelectExpr{
			{Expr: &sqlparser.ColRef{Column: "rid"}},
			{Expr: &sqlparser.ColRef{Column: cm.onionCol(onion.Add)}},
		},
		From: []sqlparser.TableRef{{Table: cm.Table.Anon}},
	}
	res, err := p.db.Exec(sel)
	if err != nil {
		return fmt.Errorf("proxy: resync read: %w", err)
	}
	for _, row := range res.Rows {
		pt, err := p.decryptAdd(cm, row[1])
		if err != nil {
			return fmt.Errorf("proxy: resync decrypt: %w", err)
		}
		iv, err := newIV()
		if err != nil {
			return err
		}
		assigns := []sqlparser.Assignment{{Column: cm.ivCol(), Value: &sqlparser.BytesLit{V: iv}}}
		for _, o := range []onion.Onion{onion.Eq, onion.JAdj, onion.Ord} {
			if !cm.HasOnion(o) {
				continue
			}
			v, err := p.encryptOnion(cm, o, pt, iv)
			if err != nil {
				return err
			}
			assigns = append(assigns, sqlparser.Assignment{Column: cm.onionCol(o), Value: valueToExpr(v)})
		}
		upd := &sqlparser.UpdateStmt{
			Table:       cm.Table.Anon,
			Assignments: assigns,
			Where: &sqlparser.BinaryExpr{
				Op: "=",
				L:  &sqlparser.ColRef{Column: "rid"},
				R:  &sqlparser.IntLit{V: row[0].I},
			},
		}
		if _, err := p.db.ExecAutonomous(upd); err != nil {
			return fmt.Errorf("proxy: resync write: %w", err)
		}
	}
	cm.Stale = make(map[onion.Onion]bool)
	atomic.AddInt64(&p.stats.Resyncs, 1)
	// Persist the cleared staleness. A crash before this point leaves the
	// stale flags set, which only costs a redundant (idempotent) resync
	// on the next restart — never a stale answer.
	return p.persistMetaLocked()
}

// valueToExpr renders a sqldb value as a literal AST node for server
// queries.
func valueToExpr(v sqldb.Value) sqlparser.Expr {
	switch v.Kind {
	case sqldb.KindNull:
		return &sqlparser.NullLit{}
	case sqldb.KindInt:
		return &sqlparser.IntLit{V: v.I}
	case sqldb.KindText:
		return &sqlparser.StrLit{V: v.S}
	case sqldb.KindBlob:
		return &sqlparser.BytesLit{V: v.B}
	}
	return &sqlparser.NullLit{}
}
