package proxy

import (
	"fmt"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

func TestASTCacheLRU(t *testing.T) {
	c := newASTCache(2)
	stA := mustParseSQL(t, "SELECT 1")
	stB := mustParseSQL(t, "SELECT 2")
	stC := mustParseSQL(t, "SELECT 3")
	c.put("a", stA)
	c.put("b", stB)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", stC) // evicts b (least recently used after the get of a)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a lost")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c lost")
	}
	hits, misses := c.counters()
	if hits != 3 || misses != 1 {
		t.Fatalf("counters: %d hits, %d misses", hits, misses)
	}
}

func mustParseSQL(t *testing.T, sql string) sqlparser.Statement {
	t.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestExecuteUsesASTCache(t *testing.T) {
	p, err := New(sqldb.New(), Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("CREATE TABLE kv (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := p.Execute("INSERT INTO kv (k, v) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Int(int64(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		res, err := p.Execute("SELECT v FROM kv WHERE k = ?", sqldb.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != int64(i*i) {
			t.Fatalf("k=%d: %v", i, res.Rows)
		}
	}
	st := p.Stats()
	// 1 CREATE + 5 identical INSERTs + 5 identical SELECTs: the repeated
	// texts must hit the cache after their first parse.
	if st.ASTCacheHits < 8 {
		t.Fatalf("expected cached parses, got %+v", st)
	}
	if st.ASTCacheMisses != 3 {
		t.Fatalf("expected 3 distinct texts, got %+v", st)
	}

	// Disabled cache keeps working and reports nothing.
	p2, err := New(sqldb.New(), Options{HOMBits: 256, ASTCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Execute("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if s := p2.Stats(); s.ASTCacheHits != 0 || s.ASTCacheMisses != 0 {
		t.Fatalf("disabled cache counted: %+v", s)
	}
}

func TestASTCacheConcurrentReuse(t *testing.T) {
	p, err := New(sqldb.New(), Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("CREATE TABLE c (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := p.Execute("INSERT INTO c (k, v) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the layer adjustments so concurrent queries share one AST on
	// the read-locked fast path.
	if _, err := p.Execute("SELECT v FROM c WHERE k = ?", sqldb.Int(1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				res, err := p.Execute("SELECT v FROM c WHERE k = ?", sqldb.Int(int64(i%8)))
				if err == nil && (len(res.Rows) != 1 || res.Rows[0][0].I != int64(i%8)) {
					err = fmt.Errorf("bad result %v", res.Rows)
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
