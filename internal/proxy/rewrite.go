package proxy

import (
	"fmt"

	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// decoder turns one server result row into one logical output value.
type decoder func(row []sqldb.Value) (sqldb.Value, error)

// selectPlan describes how to post-process and decrypt a server result.
type selectPlan struct {
	names     []string
	decs      []decoder
	sortKeys  []sortKeyPlan
	havingDec decoder
	limit     *int64
	offset    *int64
}

type sortKeyPlan struct {
	dec  decoder
	desc bool
}

// planBuilder accumulates the server-side select list while handing out
// decoders that reference it by index.
type planBuilder struct {
	p      *Proxy
	qs     *qscope
	params []sqldb.Value
	srv    []sqlparser.SelectExpr
	cache  map[string]decoder // logical "alias.col" -> fetch decoder
}

func newPlanBuilder(p *Proxy, qs *qscope, params []sqldb.Value) *planBuilder {
	return &planBuilder{p: p, qs: qs, params: params, cache: map[string]decoder{}}
}

func (b *planBuilder) addServer(e sqlparser.Expr) int {
	b.srv = append(b.srv, sqlparser.SelectExpr{Expr: e})
	return len(b.srv) - 1
}

// colRef builds a server column reference, qualified with the anon alias
// when the query has a FROM clause.
func (b *planBuilder) colRef(alias, col string) sqlparser.Expr {
	return &sqlparser.ColRef{Table: alias, Column: col}
}

// fetchCol returns a decoder producing the plaintext of one logical column.
func (b *planBuilder) fetchCol(cm *ColumnMeta, alias string) (decoder, error) {
	key := alias + "\x00" + cm.Logical
	if dec, ok := b.cache[key]; ok {
		return dec, nil
	}
	var dec decoder
	switch {
	case cm.Plain:
		si := b.addServer(b.colRef(alias, cm.Anon))
		dec = func(row []sqldb.Value) (sqldb.Value, error) { return row[si], nil }

	case cm.EncFor != nil:
		if b.p.princ == nil {
			return nil, fmt.Errorf("proxy: column %s.%s is ENC FOR a principal; enable multi-principal mode",
				cm.Table.Logical, cm.Logical)
		}
		owner := cm.Table.Col(cm.EncFor.OwnerColumn)
		ownerDec, err := b.fetchCol(owner, alias)
		if err != nil {
			return nil, err
		}
		si := b.addServer(b.colRef(alias, cm.mpCol()))
		ptype := cm.EncFor.PrincType
		table, col := cm.Table.Logical, cm.Logical
		dec = func(row []sqldb.Value) (sqldb.Value, error) {
			ov, err := ownerDec(row)
			if err != nil {
				return sqldb.Value{}, err
			}
			return b.p.princ.DecryptFor(ptype, ov.String(), table, col, row[si])
		}

	case cm.Stale[onion.Eq]:
		// Increment bypassed the other onions: read the up-to-date
		// HOM value (§3.3 "projected after increment").
		si := b.addServer(b.colRef(alias, cm.onionCol(onion.Add)))
		dec = func(row []sqldb.Value) (sqldb.Value, error) {
			return b.p.decryptAdd(cm, row[si])
		}

	default:
		si := b.addServer(b.colRef(alias, cm.onionCol(onion.Eq)))
		atRND := cm.Onions[onion.Eq].Current() == onion.RND
		ivIdx := -1
		if atRND {
			ivIdx = b.addServer(b.colRef(alias, cm.ivCol()))
		}
		dec = func(row []sqldb.Value) (sqldb.Value, error) {
			iv := sqldb.Null()
			if ivIdx >= 0 {
				iv = row[ivIdx]
			}
			return b.p.decryptEq(cm, row[si], iv)
		}
	}
	b.cache[key] = dec
	return dec, nil
}

// aggDecoder plans one aggregate call server-side and returns its decoder.
func (b *planBuilder) aggDecoder(fc *sqlparser.FuncCall) (decoder, error) {
	if fc.Name == "COUNT" {
		srvFC := &sqlparser.FuncCall{Name: "COUNT", Star: fc.Star, Distinct: fc.Distinct}
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("proxy: COUNT takes one argument")
			}
			cm, alias, err := b.resolveArg(fc.Args[0])
			if err != nil {
				return nil, err
			}
			if cm.Plain {
				srvFC.Args = []sqlparser.Expr{b.colRef(alias, cm.Anon)}
			} else {
				srvFC.Args = []sqlparser.Expr{b.colRef(alias, cm.onionCol(onion.Eq))}
			}
		}
		si := b.addServer(srvFC)
		return func(row []sqldb.Value) (sqldb.Value, error) { return row[si], nil }, nil
	}

	if len(fc.Args) != 1 {
		return nil, fmt.Errorf("proxy: %s takes one argument", fc.Name)
	}
	cm, alias, err := b.resolveArg(fc.Args[0])
	if err != nil {
		return nil, err
	}

	if cm.Plain {
		si := b.addServer(&sqlparser.FuncCall{Name: fc.Name,
			Args: []sqlparser.Expr{b.colRef(alias, cm.Anon)}})
		return func(row []sqldb.Value) (sqldb.Value, error) { return row[si], nil }, nil
	}

	switch fc.Name {
	case "SUM":
		si := b.addServer(&sqlparser.FuncCall{Name: "hom_sum",
			Args: []sqlparser.Expr{b.colRef(alias, cm.onionCol(onion.Add))}})
		return func(row []sqldb.Value) (sqldb.Value, error) {
			return b.p.decryptAdd(cm, row[si])
		}, nil
	case "AVG":
		// AVG = decrypted SUM over COUNT, both computed server-side
		// (§3.1: "HOM can also be used for computing averages by
		// having the DBMS server return the sum and the count
		// separately").
		sumIdx := b.addServer(&sqlparser.FuncCall{Name: "hom_sum",
			Args: []sqlparser.Expr{b.colRef(alias, cm.onionCol(onion.Add))}})
		cntIdx := b.addServer(&sqlparser.FuncCall{Name: "COUNT",
			Args: []sqlparser.Expr{b.colRef(alias, cm.onionCol(onion.Add))}})
		return func(row []sqldb.Value) (sqldb.Value, error) {
			sum, err := b.p.decryptAdd(cm, row[sumIdx])
			if err != nil {
				return sqldb.Value{}, err
			}
			if sum.IsNull() || row[cntIdx].I == 0 {
				return sqldb.Null(), nil
			}
			return sqldb.Int(sum.I / row[cntIdx].I), nil
		}, nil
	case "MIN", "MAX":
		si := b.addServer(&sqlparser.FuncCall{Name: fc.Name,
			Args: []sqlparser.Expr{b.colRef(alias, cm.onionCol(onion.Ord))}})
		return func(row []sqldb.Value) (sqldb.Value, error) {
			return b.p.decryptOrd(cm, row[si])
		}, nil
	}
	return nil, fmt.Errorf("proxy: unsupported aggregate %s", fc.Name)
}

func (b *planBuilder) resolveArg(e sqlparser.Expr) (*ColumnMeta, string, error) {
	cr, ok := e.(*sqlparser.ColRef)
	if !ok {
		return nil, "", fmt.Errorf("proxy: aggregate over computed expression")
	}
	return b.qs.resolve(cr.Table, cr.Column)
}

// exprDecoder plans an arbitrary logical expression: columns are fetched
// and decrypted, aggregates computed server-side, and the surrounding
// arithmetic evaluated at the proxy (in-proxy processing, §3.5.1).
func (b *planBuilder) exprDecoder(e sqlparser.Expr) (decoder, error) {
	// Fast path: a bare column.
	if cr, ok := e.(*sqlparser.ColRef); ok && cr.Column != "*" {
		cm, alias, err := b.qs.resolve(cr.Table, cr.Column)
		if err != nil {
			return nil, err
		}
		return b.fetchCol(cm, alias)
	}
	if fc, ok := e.(*sqlparser.FuncCall); ok && isAggName(fc.Name) {
		return b.aggDecoder(fc)
	}

	// General case: substitute placeholders for columns and aggregates,
	// then evaluate the residue with EvalExpr per row.
	subs := map[string]decoder{}
	replaced, err := b.substitute(e, subs)
	if err != nil {
		return nil, err
	}
	params := b.params
	return func(row []sqldb.Value) (sqldb.Value, error) {
		return sqldb.EvalExpr(replaced, func(table, col string) (sqldb.Value, error) {
			dec, ok := subs[table+"\x00"+col]
			if !ok {
				return sqldb.Value{}, fmt.Errorf("proxy: unresolved placeholder %s.%s", table, col)
			}
			return dec(row)
		}, params)
	}, nil
}

func isAggName(name string) bool {
	switch name {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// substitute rewrites e, replacing column references and aggregate calls
// with placeholder refs resolved through subs.
func (b *planBuilder) substitute(e sqlparser.Expr, subs map[string]decoder) (sqlparser.Expr, error) {
	mkPlaceholder := func(dec decoder) sqlparser.Expr {
		name := fmt.Sprintf("v%d", len(subs))
		subs["__px\x00"+name] = dec
		return &sqlparser.ColRef{Table: "__px", Column: name}
	}
	switch x := e.(type) {
	case *sqlparser.ColRef:
		cm, alias, err := b.qs.resolve(x.Table, x.Column)
		if err != nil {
			return nil, err
		}
		dec, err := b.fetchCol(cm, alias)
		if err != nil {
			return nil, err
		}
		return mkPlaceholder(dec), nil
	case *sqlparser.FuncCall:
		if isAggName(x.Name) {
			dec, err := b.aggDecoder(x)
			if err != nil {
				return nil, err
			}
			return mkPlaceholder(dec), nil
		}
		return nil, fmt.Errorf("proxy: function %s not computable", x.Name)
	case *sqlparser.BinaryExpr:
		l, err := b.substitute(x.L, subs)
		if err != nil {
			return nil, err
		}
		r, err := b.substitute(x.R, subs)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparser.UnaryExpr:
		in, err := b.substitute(x.E, subs)
		if err != nil {
			return nil, err
		}
		return &sqlparser.UnaryExpr{Op: x.Op, E: in}, nil
	case *sqlparser.IsNullExpr:
		in, err := b.substitute(x.E, subs)
		if err != nil {
			return nil, err
		}
		return &sqlparser.IsNullExpr{E: in, Not: x.Not}, nil
	case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.BytesLit,
		*sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
		return e, nil
	}
	return nil, fmt.Errorf("proxy: cannot post-process %T", e)
}

//
// Predicate rewriting.
//

// rewritePredicate transforms a logical predicate into its server-side
// form: onion column references and encrypted constants (§3.3).
func (p *Proxy) rewritePredicate(e sqlparser.Expr, qs *qscope, params []sqldb.Value, useAlias bool) (sqlparser.Expr, error) {
	if e == nil {
		return nil, nil
	}
	ref := func(cm *ColumnMeta, alias string, o onion.Onion) sqlparser.Expr {
		col := cm.onionCol(o)
		if cm.Plain {
			col = cm.Anon
		}
		if !useAlias {
			alias = ""
		}
		return &sqlparser.ColRef{Table: alias, Column: col}
	}

	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		if x.Op == "AND" || x.Op == "OR" {
			l, err := p.rewritePredicate(x.L, qs, params, useAlias)
			if err != nil {
				return nil, err
			}
			r, err := p.rewritePredicate(x.R, qs, params, useAlias)
			if err != nil {
				return nil, err
			}
			return &sqlparser.BinaryExpr{Op: x.Op, L: l, R: r}, nil
		}
		if isCmp(x.Op) {
			lc, lAlias, lIsCol := resolvePure(x.L, qs)
			rc, rAlias, rIsCol := resolvePure(x.R, qs)
			switch {
			case lIsCol && rIsCol:
				if lc.Plain && rc.Plain {
					return &sqlparser.BinaryExpr{Op: x.Op,
						L: ref(lc, lAlias, ""), R: ref(rc, rAlias, "")}, nil
				}
				if lc.Plain != rc.Plain {
					return nil, fmt.Errorf("proxy: cannot compare plain %s with encrypted column", x.Op)
				}
				if x.Op == "=" || x.Op == "!=" {
					if lc == rc {
						return &sqlparser.BinaryExpr{Op: x.Op,
							L: ref(lc, lAlias, onion.Eq), R: ref(rc, rAlias, onion.Eq)}, nil
					}
					return &sqlparser.BinaryExpr{Op: x.Op,
						L: ref(lc, lAlias, onion.JAdj), R: ref(rc, rAlias, onion.JAdj)}, nil
				}
				return &sqlparser.BinaryExpr{Op: x.Op,
					L: ref(lc, lAlias, onion.Ord), R: ref(rc, rAlias, onion.Ord)}, nil

			case lIsCol:
				return p.rewriteColConst(lc, lAlias, x.Op, x.R, qs, params, useAlias, false)
			case rIsCol:
				return p.rewriteColConst(rc, rAlias, x.Op, x.L, qs, params, useAlias, true)
			case isConstExpr(x.L, params) && isConstExpr(x.R, params):
				// constant comparison; pass through
				return e, nil
			default:
				// Computed comparison: only legal over plain columns
				// (the analyzer rejects encrypted ones); rename refs.
				return p.renamePlain(e, qs, useAlias)
			}
		}
		// Arithmetic/bitwise over plain columns only (analysis rejects
		// the encrypted case).
		return p.renamePlain(e, qs, useAlias)

	case *sqlparser.UnaryExpr:
		in, err := p.rewritePredicate(x.E, qs, params, useAlias)
		if err != nil {
			return nil, err
		}
		return &sqlparser.UnaryExpr{Op: x.Op, E: in}, nil

	case *sqlparser.InExpr:
		cm, alias, ok := resolvePure(x.E, qs)
		if !ok {
			return nil, fmt.Errorf("proxy: IN over non-column")
		}
		if cm.Plain {
			return p.renamePlain(e, qs, useAlias)
		}
		out := &sqlparser.InExpr{E: ref(cm, alias, onion.Eq), Not: x.Not}
		for _, item := range x.List {
			v, err := sqldb.EvalConst(item, params)
			if err != nil {
				return nil, err
			}
			ct, err := p.encryptConstEq(cm, v)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, valueToExpr(ct))
		}
		return out, nil

	case *sqlparser.LikeExpr:
		cm, alias, ok := resolvePure(x.E, qs)
		if !ok {
			return nil, fmt.Errorf("proxy: LIKE over non-column")
		}
		if cm.Plain {
			return p.renamePlain(e, qs, useAlias)
		}
		pat, err := sqldb.EvalConst(x.Pattern, params)
		if err != nil {
			return nil, err
		}
		word, ok := likeWord(valueToPatternString(pat))
		if !ok {
			return nil, fmt.Errorf("proxy: unsupported LIKE pattern")
		}
		token := p.searchCipher(cm).TokenFor(word)
		call := &sqlparser.FuncCall{
			Name: "searchswp",
			Args: []sqlparser.Expr{ref(cm, alias, onion.Search), &sqlparser.BytesLit{V: token}},
		}
		if x.Not {
			return &sqlparser.UnaryExpr{Op: "NOT", E: call}, nil
		}
		return call, nil

	case *sqlparser.BetweenExpr:
		cm, alias, ok := resolvePure(x.E, qs)
		if !ok {
			return nil, fmt.Errorf("proxy: BETWEEN over non-column")
		}
		if cm.Plain {
			return p.renamePlain(e, qs, useAlias)
		}
		lo, err := sqldb.EvalConst(x.Lo, params)
		if err != nil {
			return nil, err
		}
		hi, err := sqldb.EvalConst(x.Hi, params)
		if err != nil {
			return nil, err
		}
		loCt, err := p.encryptConstOrd(cm, lo)
		if err != nil {
			return nil, err
		}
		hiCt, err := p.encryptConstOrd(cm, hi)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BetweenExpr{
			E: ref(cm, alias, onion.Ord), Lo: valueToExpr(loCt), Hi: valueToExpr(hiCt), Not: x.Not,
		}, nil

	case *sqlparser.IsNullExpr:
		cm, alias, ok := resolvePure(x.E, qs)
		if !ok {
			return nil, fmt.Errorf("proxy: IS NULL over non-column")
		}
		var col sqlparser.Expr
		switch {
		case cm.Plain:
			col = ref(cm, alias, "")
		case cm.EncFor != nil:
			a := alias
			if !useAlias {
				a = ""
			}
			col = &sqlparser.ColRef{Table: a, Column: cm.mpCol()}
		default:
			col = ref(cm, alias, onion.Eq)
		}
		return &sqlparser.IsNullExpr{E: col, Not: x.Not}, nil

	case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.BytesLit,
		*sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
		return e, nil
	}
	return nil, fmt.Errorf("proxy: cannot rewrite predicate %T", e)
}

func isCmp(op string) bool {
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func resolvePure(e sqlparser.Expr, qs *qscope) (*ColumnMeta, string, bool) {
	cr, ok := e.(*sqlparser.ColRef)
	if !ok || cr.Column == "*" {
		return nil, "", false
	}
	cm, alias, err := qs.resolve(cr.Table, cr.Column)
	if err != nil {
		return nil, "", false
	}
	return cm, alias, true
}

// rewriteColConst encrypts the constant side of a comparison under the
// column's appropriate onion. flipped means the constant was on the left.
func (p *Proxy) rewriteColConst(cm *ColumnMeta, alias, op string, constE sqlparser.Expr, qs *qscope, params []sqldb.Value, useAlias, flipped bool) (sqlparser.Expr, error) {
	v, err := sqldb.EvalConst(constE, params)
	if err != nil {
		return nil, err
	}
	if !useAlias {
		alias = ""
	}
	if cm.Plain {
		l := sqlparser.Expr(&sqlparser.ColRef{Table: alias, Column: cm.Anon})
		r := valueToExpr(v)
		if flipped {
			l, r = r, l
		}
		return &sqlparser.BinaryExpr{Op: op, L: l, R: r}, nil
	}
	var colE, constCt sqlparser.Expr
	switch op {
	case "=", "!=":
		ct, err := p.encryptConstEq(cm, v)
		if err != nil {
			return nil, err
		}
		colE = &sqlparser.ColRef{Table: alias, Column: cm.onionCol(onion.Eq)}
		constCt = valueToExpr(ct)
	default:
		ct, err := p.encryptConstOrd(cm, v)
		if err != nil {
			return nil, err
		}
		colE = &sqlparser.ColRef{Table: alias, Column: cm.onionCol(onion.Ord)}
		constCt = valueToExpr(ct)
	}
	l, r := colE, constCt
	if flipped {
		// `const < col` must stay flipped to preserve semantics.
		l, r = constCt, colE
	}
	return &sqlparser.BinaryExpr{Op: op, L: l, R: r}, nil
}

// renamePlain rewrites an expression that touches only plain columns,
// renaming references to their anonymized server names.
func (p *Proxy) renamePlain(e sqlparser.Expr, qs *qscope, useAlias bool) (sqlparser.Expr, error) {
	switch x := e.(type) {
	case *sqlparser.ColRef:
		cm, alias, err := qs.resolve(x.Table, x.Column)
		if err != nil {
			return nil, err
		}
		if !cm.Plain {
			return nil, fmt.Errorf("proxy: encrypted column %s.%s in unsupported position",
				cm.Table.Logical, cm.Logical)
		}
		if !useAlias {
			alias = ""
		}
		return &sqlparser.ColRef{Table: alias, Column: cm.Anon}, nil
	case *sqlparser.BinaryExpr:
		l, err := p.renamePlain(x.L, qs, useAlias)
		if err != nil {
			return nil, err
		}
		r, err := p.renamePlain(x.R, qs, useAlias)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparser.UnaryExpr:
		in, err := p.renamePlain(x.E, qs, useAlias)
		if err != nil {
			return nil, err
		}
		return &sqlparser.UnaryExpr{Op: x.Op, E: in}, nil
	case *sqlparser.InExpr:
		out := &sqlparser.InExpr{Not: x.Not}
		in, err := p.renamePlain(x.E, qs, useAlias)
		if err != nil {
			return nil, err
		}
		out.E = in
		for _, item := range x.List {
			ri, err := p.renamePlain(item, qs, useAlias)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, ri)
		}
		return out, nil
	case *sqlparser.LikeExpr:
		in, err := p.renamePlain(x.E, qs, useAlias)
		if err != nil {
			return nil, err
		}
		pat, err := p.renamePlain(x.Pattern, qs, useAlias)
		if err != nil {
			return nil, err
		}
		return &sqlparser.LikeExpr{E: in, Pattern: pat, Not: x.Not}, nil
	case *sqlparser.BetweenExpr:
		in, err := p.renamePlain(x.E, qs, useAlias)
		if err != nil {
			return nil, err
		}
		lo, err := p.renamePlain(x.Lo, qs, useAlias)
		if err != nil {
			return nil, err
		}
		hi, err := p.renamePlain(x.Hi, qs, useAlias)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BetweenExpr{E: in, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlparser.IsNullExpr:
		in, err := p.renamePlain(x.E, qs, useAlias)
		if err != nil {
			return nil, err
		}
		return &sqlparser.IsNullExpr{E: in, Not: x.Not}, nil
	case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.BytesLit,
		*sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
		return e, nil
	}
	return nil, fmt.Errorf("proxy: cannot rename %T", e)
}
