// Package proxy implements the CryptDB database proxy (Figure 1): it
// intercepts SQL from the application, anonymizes schema names, encrypts
// constants with SQL-aware encryption schemes, adjusts onion layers at the
// DBMS through UDFs, forwards rewritten queries to the (unmodified) embedded
// DBMS, and decrypts results. The DBMS never receives keys to plaintext.
package proxy

import (
	"fmt"
	"sync"

	"repro/internal/crypto/det"
	"repro/internal/crypto/joinadj"
	"repro/internal/crypto/ope"
	"repro/internal/crypto/search"
	"repro/internal/onion"
	"repro/internal/sqlparser"
)

// TableMeta is the proxy's private description of one logical table. The
// DBMS only ever sees AnonName and the anonymized column names.
type TableMeta struct {
	Logical string
	Anon    string
	Cols    []*ColumnMeta
	byName  map[string]*ColumnMeta

	// SpeaksFor annotations (multi-principal mode) declared on this table.
	SpeaksFor []sqlparser.SpeaksForAnnot

	nextRid int64
}

// Col looks up a column by logical name.
func (t *TableMeta) Col(name string) *ColumnMeta { return t.byName[name] }

// ColumnMeta is the proxy's private description of one logical column: its
// onions, their current layers, staleness, and cached ciphers.
type ColumnMeta struct {
	Logical string
	Anon    string // anonymized base name, e.g. "c2"
	Type    sqlparser.ColType
	Plain   bool
	MinEnc  onion.Layer // "" means no constraint
	EncFor  *sqlparser.EncForAnnot
	Primary bool
	Table   *TableMeta

	Onions map[onion.Onion]*onion.State
	// Stale marks onions whose stored ciphertexts no longer reflect the
	// latest value because a HOM increment bypassed them (§3.3).
	Stale map[onion.Onion]bool

	// Usage flags for the §8.3 security analysis: whether queries ever
	// exercised the Search or Add onions, and whether any query needed
	// plaintext computation this column cannot support.
	UsedSearch     bool
	UsedSum        bool
	NeedsPlaintext bool

	mu           sync.Mutex
	opeCipher    *ope.Cipher
	detCipher    *det.Cipher
	searchCipher *search.Cipher

	// joinKey is the column's current effective JOIN-ADJ key; it changes
	// when the column is re-keyed to a join-base (§3.4).
	joinKey *joinadj.Key
	// joinRefT/joinRefC name the column whose derived JOIN key joinKey
	// currently equals (self initially). Keys only ever take values
	// derivable from some column's key material, so persisting this
	// reference — rather than the scalar — lets a restarted proxy
	// re-derive the exact effective key without writing secret key
	// material anywhere.
	joinRefT, joinRefC string
	// joinGroup points at the transitivity-group representative
	// (union-find; self-rooted initially).
	joinGroup *ColumnMeta

	// opeShared, when set, overrides the per-column OPE key with a
	// declared OPE-JOIN group key (§3.4 range joins); opeSharedLabel is
	// the derivation label it came from, persisted so a restart
	// re-derives the same shared key.
	opeShared      []byte
	opeSharedLabel string

	// Index bookkeeping: the application asked for an index, and which
	// onion indexes have been materialized so far (§3.3: indexes go on
	// DET/JOIN/OPE layers only, so they wait for adjustment).
	wantIndex  bool
	wantUnique bool
	wantUsing  string // "", "HASH" or "BTREE" (normalized)
	idxEq      bool
	idxJadj    bool
	idxOrd     bool
}

// groupRoot finds the column's join transitivity-group representative with
// path compression.
func (c *ColumnMeta) groupRoot() *ColumnMeta {
	root := c
	for root.joinGroup != root {
		root = root.joinGroup
	}
	for c.joinGroup != c {
		next := c.joinGroup
		c.joinGroup = root
		c = next
	}
	return root
}

// HasOnion reports whether the column carries onion o.
func (c *ColumnMeta) HasOnion(o onion.Onion) bool {
	_, ok := c.Onions[o]
	return ok
}

// onionList returns the column's materialized onions in canonical order
// (which may be a subset of the type's onions under an OnionPlan).
func (c *ColumnMeta) onionList() []onion.Onion {
	var out []onion.Onion
	for _, o := range onion.Onions(c.Type) {
		if c.HasOnion(o) {
			out = append(out, o)
		}
	}
	return out
}

// onionCol returns the server-side column name carrying onion o.
func (c *ColumnMeta) onionCol(o onion.Onion) string {
	switch o {
	case onion.Eq:
		return c.Anon + "_eq"
	case onion.JAdj:
		return c.Anon + "_jadj"
	case onion.Ord:
		return c.Anon + "_ord"
	case onion.Add:
		return c.Anon + "_add"
	case onion.Search:
		return c.Anon + "_search"
	}
	return c.Anon
}

// ivCol returns the server-side IV column name.
func (c *ColumnMeta) ivCol() string { return c.Anon + "_iv" }

// mpCol returns the server-side column for multi-principal (ENC FOR)
// storage.
func (c *ColumnMeta) mpCol() string { return c.Anon + "_mp" }

// serverType returns the sqldb column type that stores onion o of this
// column: 64-bit PRP/OPE ciphertexts of integers stay INT, everything else
// is a BLOB.
func (c *ColumnMeta) serverType(o onion.Onion) sqlparser.ColType {
	switch o {
	case onion.Eq, onion.Ord:
		if c.Type == sqlparser.TypeInt {
			return sqlparser.TypeInt
		}
		return sqlparser.TypeBlob
	default:
		return sqlparser.TypeBlob
	}
}

// checkMinEnc returns an error when peeling to layer l would violate the
// developer's MINENC floor for this column (§3.5.1).
func (c *ColumnMeta) checkMinEnc(l onion.Layer) error {
	if c.MinEnc == "" {
		return nil
	}
	if l.SecurityRank() < c.MinEnc.SecurityRank() {
		return fmt.Errorf("proxy: query requires layer %s on %s.%s but schema pins MINENC %s",
			l, c.Table.Logical, c.Logical, c.MinEnc)
	}
	return nil
}
