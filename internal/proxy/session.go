// Per-connection proxy sessions. The paper's proxy sits between many
// application threads and the DBMS; a Session is the proxy-side handle for
// one of those threads (one TCP connection in cryptdb-server). Each session
// owns a DBMS session, so BEGIN/COMMIT/ROLLBACK scope to the connection
// that issued them: plain reads and writes from different sessions proceed
// concurrently, while onion adjustments and DDL — which mutate shared onion
// state — remain globally serialized under the proxy's write lock and
// refuse to run while an open transaction has written the affected table
// (the transaction's buffered ciphertexts were produced at the old layer;
// re-encrypting under it would desynchronize data from metadata).
package proxy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
)

// Session is one client's execution context on the proxy. Create with
// Proxy.NewSession, release with Close (which rolls back any open
// transaction — a client that disconnects mid-transaction must not leave
// row locks behind). The zero value is not usable.
type Session struct {
	p  *Proxy
	db store.Conn

	// tmu guards touched: the logical tables this session's open
	// transaction has written. Onion adjustments consult it (under the
	// proxy write lock) to refuse re-encrypting a table whose buffered
	// rows were encrypted at the current layer.
	tmu     sync.Mutex
	touched map[string]bool
}

// NewSession opens an independent session. The session satisfies
// workload.Executor.
func (p *Proxy) NewSession() *Session {
	s := &Session{p: p, db: p.db.NewConn(), touched: make(map[string]bool)}
	p.sessMu.Lock()
	p.sessions[s] = struct{}{}
	p.sessMu.Unlock()
	return s
}

// Close rolls back any open transaction and releases the session. Safe to
// call more than once.
func (s *Session) Close() error {
	s.p.sessMu.Lock()
	delete(s.p.sessions, s)
	s.p.sessMu.Unlock()
	s.resetTouched()
	return s.db.Close()
}

// Execute parses and runs one logical SQL statement on this session (see
// Proxy.Execute for the pipeline description).
func (s *Session) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := s.p.parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecuteStmt(st, params...)
}

// markTouched records a write against a logical table while a transaction
// is open on this session.
func (s *Session) markTouched(logical string) {
	if !s.db.InTxn() {
		return
	}
	s.tmu.Lock()
	s.touched[logical] = true
	s.tmu.Unlock()
}

func (s *Session) resetTouched() {
	s.tmu.Lock()
	for k := range s.touched {
		delete(s.touched, k)
	}
	s.tmu.Unlock()
}

// touchedInTxn reports whether this session's open transaction has written
// the logical table.
func (s *Session) touchedInTxn(logical string) bool {
	s.tmu.Lock()
	t := s.touched[logical]
	s.tmu.Unlock()
	return t && s.db.InTxn()
}

// adjustBlocked refuses an onion adjustment (or resync) on a table that an
// open transaction has written: the transaction's private buffer holds
// ciphertexts produced at the current layer, invisible to the server-side
// re-encryption UPDATE, so committing them after the adjustment would break
// the layer/ciphertext agreement. First writer wins, consistent with the
// DBMS's row-slot conflicts: the adjusting query fails fast with a
// retryable error instead of blocking (blocking could deadlock against the
// transaction's own next statement). Callers hold p.mu.
func (p *Proxy) adjustBlocked(tm *TableMeta) error {
	p.sessMu.Lock()
	defer p.sessMu.Unlock()
	for s := range p.sessions {
		if s.touchedInTxn(tm.Logical) {
			return fmt.Errorf("proxy: onion adjustment on %s conflicts with an open transaction; retry after it ends", tm.Logical)
		}
	}
	return nil
}

// defaultSession returns the proxy-wide implicit session behind
// Proxy.Execute, creating it on first use.
func (p *Proxy) defaultSession() *Session {
	p.defOnce.Do(func() { p.defSess = p.NewSession() })
	return p.defSess
}

// ExecuteStmt runs a pre-parsed statement on this session.
func (s *Session) ExecuteStmt(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	p := s.p
	atomic.AddInt64(&p.stats.Queries, 1)
	if p.replica != nil {
		// A replica proxy serves reads only; anything else redirects to
		// the primary. Refresh the onion metadata first when the
		// replicated stream has applied a newer sealed blob, so queries
		// always see layer bookkeeping consistent with the ciphertexts
		// that have replayed locally.
		if _, ok := st.(*sqlparser.SelectStmt); !ok {
			return nil, p.replicaReadOnly()
		}
		if err := p.maybeReloadReplicaMeta(); err != nil {
			return nil, err
		}
	}
	switch x := st.(type) {
	case *sqlparser.CreateTableStmt:
		p.mu.Lock()
		defer p.mu.Unlock()
		return &sqldb.Result{}, p.createTable(x)
	case *sqlparser.CreateIndexStmt:
		p.mu.Lock()
		defer p.mu.Unlock()
		return &sqldb.Result{}, p.createIndex(x)
	case *sqlparser.DropTableStmt:
		p.mu.Lock()
		defer p.mu.Unlock()
		tm, ok := p.tables[x.Name]
		if !ok {
			return nil, fmt.Errorf("proxy: no table %s", x.Name)
		}
		delete(p.tables, x.Name)
		p.metaMu.Lock()
		defer p.metaMu.Unlock()
		sealed, err := p.sealedMetaLocked()
		if err != nil {
			p.tables[x.Name] = tm
			return nil, err
		}
		res, err := p.db.ExecWithMeta(&sqlparser.DropTableStmt{Name: tm.Anon}, sealed)
		if err != nil && !stmtApplied(err) {
			p.tables[x.Name] = tm
		}
		return res, err
	case *sqlparser.BeginStmt, *sqlparser.CommitStmt, *sqlparser.RollbackStmt:
		// Transactions pass through unchanged (§3.3), scoped to this
		// session's DBMS session.
		if p.opts.Training {
			return &sqldb.Result{}, nil
		}
		var res *sqldb.Result
		var err error
		if _, isCommit := st.(*sqlparser.CommitStmt); isCommit && p.persistent() && s.db.TxnMetaPending() {
			// The transaction buffered a sealed-metadata blob at
			// statement time (e.g. staleness flags from a HOM
			// increment). Re-seal the *current* metadata for the commit:
			// an onion adjustment may have committed a newer blob while
			// this transaction was open, and replaying the stale one at
			// a later WAL sequence would roll the recovered layer
			// bookkeeping back behind the ciphertexts. metaMu is held
			// across seal + commit so blob order on disk keeps matching
			// state order in memory.
			p.mu.RLock()
			p.metaMu.Lock()
			var sealed []byte
			sealed, err = p.sealedMetaLocked()
			if err == nil {
				//cryptdb:sink-ok COMMIT is a bare transaction delimiter; the sealed blob is AEAD-encrypted metadata
				res, err = s.db.ExecWithMeta(st, sealed)
			}
			p.metaMu.Unlock()
			p.mu.RUnlock()
		} else {
			//cryptdb:sink-ok BEGIN/COMMIT/ROLLBACK carry no literals (§3.3: transactions pass through unchanged)
			res, err = s.db.Exec(st)
		}
		if !s.db.InTxn() {
			s.resetTouched()
		}
		return res, err
	case *sqlparser.PrincTypeStmt:
		// Principal metadata is consumed by the multi-principal layer;
		// the single-principal proxy records nothing.
		return &sqldb.Result{}, nil
	case *sqlparser.SelectStmt:
		return s.execSelect(x, params)
	case *sqlparser.InsertStmt:
		return s.execInsert(x, params)
	case *sqlparser.UpdateStmt:
		return s.execUpdate(x, params)
	case *sqlparser.DeleteStmt:
		return s.execDelete(x, params)
	}
	return nil, fmt.Errorf("proxy: unsupported statement %T", st)
}
