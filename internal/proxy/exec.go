package proxy

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// Execute parses and runs one logical SQL statement through the proxy:
// analyze -> adjust onions -> rewrite -> run on the DBMS -> decrypt (§3,
// steps 1-4). Parsed statements are memoized in a bounded LRU keyed by the
// SQL text, so repeated statement shapes (the common case for parameterized
// workloads) skip the parser entirely.
//
// Execute runs on the proxy's implicit default session; callers that need
// per-connection transaction scope open explicit sessions (NewSession).
func (p *Proxy) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return p.defaultSession().Execute(sql, params...)
}

// parse consults the AST cache before invoking the parser. Cached ASTs are
// shared read-only across concurrent Execute calls; nothing in the proxy or
// the DBMS mutates a parsed statement.
func (p *Proxy) parse(sql string) (sqlparser.Statement, error) {
	if p.astCache == nil || len(sql) > astCacheMaxSQL {
		return sqlparser.Parse(sql)
	}
	if st, ok := p.astCache.get(sql); ok {
		return st, nil
	}
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	p.astCache.put(sql, st)
	return st, nil
}

// ExecuteStmt runs a pre-parsed statement on the default session.
func (p *Proxy) ExecuteStmt(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return p.defaultSession().ExecuteStmt(st, params...)
}

// adjNeeded reports whether applying the analysis would mutate proxy state
// (onion layers, join groups, stale resync). In the trained steady state
// this returns false and queries proceed under the read lock, preserving
// server-side parallelism (§8.4.1's "no server-side decryptions in the
// steady state").
func (p *Proxy) adjNeeded(an *analysis) bool {
	if len(an.unsupported) > 0 && p.opts.Training {
		return true
	}
	// atOrBelow treats a discarded onion (nil state) as needing the slow
	// path, which produces the proper "no such onion" error.
	atOrBelow := func(st *onion.State, l onion.Layer) bool {
		return st != nil && st.AtOrBelow(l)
	}
	for _, r := range an.reqs {
		switch r.class {
		case onion.ClassEquality:
			if r.cm.Stale[onion.Eq] || !atOrBelow(r.cm.Onions[onion.Eq], onion.DET) {
				return true
			}
		case onion.ClassOrder:
			if r.cm.Stale[onion.Eq] || !atOrBelow(r.cm.Onions[onion.Ord], onion.OPE) {
				return true
			}
		case onion.ClassJoin:
			if r.cm.Stale[onion.Eq] || (r.joinWith != nil && r.joinWith.Stale[onion.Eq]) {
				return true
			}
			if !atOrBelow(r.cm.Onions[onion.JAdj], onion.JOIN) {
				return true
			}
			if r.joinWith != nil && !atOrBelow(r.joinWith.Onions[onion.JAdj], onion.JOIN) {
				return true
			}
			if r.joinWith != nil && r.cm.groupRoot() != r.joinWith.groupRoot() {
				return true
			}
			// Roots match but lazily converging keys may still differ.
			if r.joinWith != nil && p.joinKey(r.cm) != p.joinKey(r.joinWith) {
				return true
			}
		case onion.ClassRangeJoin:
			if !atOrBelow(r.cm.Onions[onion.Ord], onion.OPE) ||
				(r.joinWith != nil && !atOrBelow(r.joinWith.Onions[onion.Ord], onion.OPE)) {
				return true
			}
		case onion.ClassSum, onion.ClassIncrement:
			// No layer change, but first use records the Add-onion
			// usage flag for the §8.3 analysis.
			if !r.cm.UsedSum {
				return true
			}
		case onion.ClassSearch:
			if !r.cm.UsedSearch {
				return true
			}
		case onion.ClassPlaintext:
			return true
		}
	}
	return false
}

// prepare analyzes a statement and applies adjustments, choosing between
// the read-locked fast path and the write-locked adjustment path.
// The returned function releases the lock it acquired.
func (p *Proxy) prepare(analyze func() (*analysis, error)) (release func(), err error) {
	p.mu.RLock()
	an, err := analyze()
	if err != nil {
		p.mu.RUnlock()
		return nil, err
	}
	if !p.adjNeeded(an) {
		if len(an.unsupported) > 0 && !p.opts.Training {
			p.mu.RUnlock()
			return nil, fmt.Errorf("proxy: query not executable over encrypted data: %s", an.unsupported[0])
		}
		return p.mu.RUnlock, nil
	}
	p.mu.RUnlock()

	p.mu.Lock()
	// Re-analyze under the write lock: state may have moved.
	an, err = analyze()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	if err := p.applyRequirements(an); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	return p.mu.Unlock, nil
}

//
// SELECT
//

func (sess *Session) execSelect(s *sqlparser.SelectStmt, params []sqldb.Value) (*sqldb.Result, error) {
	p := sess.p
	var qs *qscope
	release, err := p.prepare(func() (*analysis, error) {
		var err error
		qs, err = p.buildScope(s.From)
		if err != nil {
			return nil, err
		}
		an := p.analyzeSelect(s, qs, params)
		if s.Distinct {
			for _, se := range s.Exprs {
				if se.Star {
					continue
				}
				if cm, ok := pureCol(se.Expr, qs); ok {
					an.addReq(cm, onion.ClassEquality)
				}
			}
		}
		return an, nil
	})
	if err != nil {
		return nil, err
	}
	defer release()

	if p.opts.Training {
		return &sqldb.Result{}, nil
	}

	server, plan, err := p.buildSelect(s, qs, params)
	if err != nil {
		return nil, err
	}
	res, err := sess.db.Exec(server)
	if err != nil {
		return nil, fmt.Errorf("proxy: server error: %w", err)
	}
	return p.decodeResult(res, plan)
}

// buildSelect constructs the server-side SELECT and the decryption plan.
func (p *Proxy) buildSelect(s *sqlparser.SelectStmt, qs *qscope, params []sqldb.Value) (*sqlparser.SelectStmt, *selectPlan, error) {
	b := newPlanBuilder(p, qs, params)
	plan := &selectPlan{}
	server := &sqlparser.SelectStmt{Distinct: s.Distinct}

	hasFrom := len(s.From) > 0
	useAlias := hasFrom

	// FROM with anonymized tables and aliases a1..aN.
	for i, ref := range s.From {
		tm := qs.entries[i].tm
		srvRef := sqlparser.TableRef{Table: tm.Anon, Alias: anonAlias(i)}
		if ref.JoinOn != nil {
			on, err := p.rewritePredicate(ref.JoinOn, qs, params, true)
			if err != nil {
				return nil, nil, err
			}
			srvRef.JoinOn = on
		}
		server.From = append(server.From, srvRef)
	}

	// Projection.
	for _, se := range s.Exprs {
		if se.Star {
			for i, e := range qs.entries {
				for _, cm := range e.tm.Cols {
					dec, err := b.fetchCol(cm, anonAlias(i))
					if err != nil {
						return nil, nil, err
					}
					plan.names = append(plan.names, cm.Logical)
					plan.decs = append(plan.decs, dec)
				}
			}
			continue
		}
		if cr, ok := se.Expr.(*sqlparser.ColRef); ok && cr.Column == "*" {
			for i, e := range qs.entries {
				if e.alias != cr.Table && e.tm.Logical != cr.Table {
					continue
				}
				for _, cm := range e.tm.Cols {
					dec, err := b.fetchCol(cm, anonAlias(i))
					if err != nil {
						return nil, nil, err
					}
					plan.names = append(plan.names, cm.Logical)
					plan.decs = append(plan.decs, dec)
				}
			}
			continue
		}
		dec, err := b.exprDecoder(se.Expr)
		if err != nil {
			return nil, nil, err
		}
		name := se.Alias
		if name == "" {
			if cr, ok := se.Expr.(*sqlparser.ColRef); ok {
				name = cr.Column
			} else {
				name = se.Expr.String()
			}
		}
		plan.names = append(plan.names, name)
		plan.decs = append(plan.decs, dec)
	}

	// WHERE.
	where, err := p.rewritePredicate(s.Where, qs, params, useAlias)
	if err != nil {
		return nil, nil, err
	}
	server.Where = where

	// GROUP BY on Eq onions (DET) or plain columns.
	for _, g := range s.GroupBy {
		cm, alias, ok := resolvePure(g, qs)
		if !ok {
			return nil, nil, fmt.Errorf("proxy: GROUP BY over non-column")
		}
		col := cm.onionCol(onion.Eq)
		if cm.Plain {
			col = cm.Anon
		}
		server.GroupBy = append(server.GroupBy, &sqlparser.ColRef{Table: alias, Column: col})
	}

	// HAVING: COUNT-only conditions run on the server; anything touching
	// SUM/MIN/MAX/AVG filters at the proxy after decryption.
	if s.Having != nil {
		if havingServerSafe(s.Having) {
			hv, err := p.rewriteHavingServer(s.Having, qs)
			if err != nil {
				return nil, nil, err
			}
			server.Having = hv
		} else {
			dec, err := b.exprDecoder(s.Having)
			if err != nil {
				return nil, nil, err
			}
			plan.havingDec = dec
		}
	}

	// ORDER BY: in-proxy when possible (§3.5.1), on OPE otherwise.
	inProxySort := !p.opts.DisableInProxySort && s.Limit == nil
	for _, o := range s.OrderBy {
		cm, alias, isCol := resolvePure(o.Expr, qs)
		if isCol && cm.Plain && !inProxySort {
			server.OrderBy = append(server.OrderBy, sqlparser.OrderItem{
				Expr: &sqlparser.ColRef{Table: alias, Column: cm.Anon}, Desc: o.Desc,
			})
			continue
		}
		if !inProxySort {
			if isCol {
				server.OrderBy = append(server.OrderBy, sqlparser.OrderItem{
					Expr: &sqlparser.ColRef{Table: alias, Column: cm.onionCol(onion.Ord)},
					Desc: o.Desc,
				})
				continue
			}
			if fc, okFC := o.Expr.(*sqlparser.FuncCall); okFC && fc.Name == "COUNT" {
				dec, err := b.aggDecoder(fc)
				if err != nil {
					return nil, nil, err
				}
				_ = dec // count already in server list; order server-side
				srvFC := &sqlparser.FuncCall{Name: "COUNT", Star: fc.Star}
				server.OrderBy = append(server.OrderBy, sqlparser.OrderItem{Expr: srvFC, Desc: o.Desc})
				continue
			}
			return nil, nil, fmt.Errorf("proxy: ORDER BY expression with LIMIT not supported")
		}
		// In-proxy sort: resolve aliases of select items first.
		expr := o.Expr
		if isColAlias(o.Expr, s) != nil {
			expr = isColAlias(o.Expr, s)
		}
		dec, err := b.exprDecoder(expr)
		if err != nil {
			return nil, nil, err
		}
		plan.sortKeys = append(plan.sortKeys, sortKeyPlan{dec: dec, desc: o.Desc})
		atomic.AddInt64(&p.stats.InProxySorts, 1)
	}

	// LIMIT/OFFSET stay on the server only when no proxy-side filtering
	// or sorting reorders rows afterwards.
	if plan.havingDec == nil && len(plan.sortKeys) == 0 {
		server.Limit = s.Limit
		server.Offset = s.Offset
	} else {
		plan.limit = s.Limit
		plan.offset = s.Offset
	}

	server.Exprs = b.srv
	if len(server.Exprs) == 0 {
		// Zero-column server query (e.g. SELECT of only constants);
		// fetch a constant so the row count is preserved.
		b.addServer(&sqlparser.IntLit{V: 1})
		server.Exprs = b.srv
	}
	return server, plan, nil
}

// isColAlias resolves an ORDER BY name that matches a select alias.
func isColAlias(e sqlparser.Expr, s *sqlparser.SelectStmt) sqlparser.Expr {
	cr, ok := e.(*sqlparser.ColRef)
	if !ok || cr.Table != "" {
		return nil
	}
	for _, se := range s.Exprs {
		if !se.Star && se.Alias == cr.Column {
			return se.Expr
		}
	}
	return nil
}

// havingServerSafe reports whether a HAVING clause uses only COUNT
// aggregates and constants, which the server can evaluate directly.
func havingServerSafe(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		return havingServerSafe(x.L) && havingServerSafe(x.R)
	case *sqlparser.UnaryExpr:
		return havingServerSafe(x.E)
	case *sqlparser.FuncCall:
		return x.Name == "COUNT" && x.Star
	case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
		return true
	}
	return false
}

func (p *Proxy) rewriteHavingServer(e sqlparser.Expr, qs *qscope) (sqlparser.Expr, error) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		l, err := p.rewriteHavingServer(x.L, qs)
		if err != nil {
			return nil, err
		}
		r, err := p.rewriteHavingServer(x.R, qs)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparser.UnaryExpr:
		in, err := p.rewriteHavingServer(x.E, qs)
		if err != nil {
			return nil, err
		}
		return &sqlparser.UnaryExpr{Op: x.Op, E: in}, nil
	default:
		return e, nil
	}
}

// decodeResult applies the plan: filter (proxy HAVING), sort, limit, then
// decrypt into logical columns.
func (p *Proxy) decodeResult(res *sqldb.Result, plan *selectPlan) (*sqldb.Result, error) {
	rows := res.Rows

	if plan.havingDec != nil {
		kept := rows[:0]
		for _, row := range rows {
			v, err := plan.havingDec(row)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	if len(plan.sortKeys) > 0 {
		type keyed struct {
			row  []sqldb.Value
			keys []sqldb.Value
		}
		ks := make([]keyed, len(rows))
		if err := forEachRow(p.batchWorkers(), len(rows), func(i int) error {
			row := rows[i]
			ks[i].row = row
			ks[i].keys = make([]sqldb.Value, len(plan.sortKeys))
			for j, sk := range plan.sortKeys {
				v, err := sk.dec(row)
				if err != nil {
					return err
				}
				ks[i].keys[j] = v
			}
			return nil
		}); err != nil {
			return nil, err
		}
		sort.SliceStable(ks, func(i, j int) bool {
			for k, sk := range plan.sortKeys {
				c := compareValues(ks[i].keys[k], ks[j].keys[k])
				if c == 0 {
					continue
				}
				if sk.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		for i := range ks {
			rows[i] = ks[i].row
		}
	}

	if plan.offset != nil {
		if int(*plan.offset) >= len(rows) {
			rows = nil
		} else {
			rows = rows[*plan.offset:]
		}
	}
	if plan.limit != nil && int(*plan.limit) < len(rows) {
		rows = rows[:*plan.limit]
	}

	out := &sqldb.Result{Columns: plan.names}
	if len(rows) == 0 {
		return out, nil
	}
	// Row-parallel decryption: each worker decrypts whole rows into their
	// original slots, so output order matches the serial path exactly.
	decrypted := make([][]sqldb.Value, len(rows))
	if err := forEachRow(p.batchWorkers(), len(rows), func(r int) error {
		logical := make([]sqldb.Value, len(plan.decs))
		for i, dec := range plan.decs {
			v, err := dec(rows[r])
			if err != nil {
				return err
			}
			logical[i] = v
		}
		decrypted[r] = logical
		return nil
	}); err != nil {
		return nil, err
	}
	out.Rows = decrypted
	return out, nil
}

func compareValues(a, b sqldb.Value) int {
	if a.IsNull() && b.IsNull() {
		return 0
	}
	if a.IsNull() {
		return -1
	}
	if b.IsNull() {
		return 1
	}
	c, err := a.Compare(b)
	if err != nil {
		return 0
	}
	return c
}

//
// INSERT
//

func (sess *Session) execInsert(s *sqlparser.InsertStmt, params []sqldb.Value) (*sqldb.Result, error) {
	p := sess.p
	p.mu.RLock()
	defer p.mu.RUnlock()
	tm, ok := p.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("proxy: no table %s", s.Table)
	}
	if p.opts.Training {
		return &sqldb.Result{}, nil
	}

	cols := s.Columns
	if len(cols) == 0 {
		cols = make([]string, len(tm.Cols))
		for i, cm := range tm.Cols {
			cols[i] = cm.Logical
		}
	}
	colMeta := make([]*ColumnMeta, len(cols))
	for i, name := range cols {
		cm := tm.Col(name)
		if cm == nil {
			return nil, fmt.Errorf("proxy: no column %s.%s", s.Table, name)
		}
		colMeta[i] = cm
	}

	server := &sqlparser.InsertStmt{Table: tm.Anon}
	server.Columns = append(server.Columns, "rid")
	for _, cm := range colMeta {
		switch {
		case cm.Plain:
			server.Columns = append(server.Columns, cm.Anon)
		case cm.EncFor != nil:
			server.Columns = append(server.Columns, cm.mpCol())
		default:
			for _, o := range cm.onionList() {
				server.Columns = append(server.Columns, cm.onionCol(o))
			}
			server.Columns = append(server.Columns, cm.ivCol())
		}
	}

	// Evaluate every row's logical values first (needed for ENC FOR owner
	// resolution and the OPE batch pre-pass), and pre-assign rids in row
	// order so parallel encryption cannot reorder them.
	logicalRows := make([][]sqldb.Value, len(s.Rows))
	rids := make([]int64, len(s.Rows))
	for r, exprRow := range s.Rows {
		if len(exprRow) != len(colMeta) {
			return nil, fmt.Errorf("proxy: INSERT has %d values for %d columns", len(exprRow), len(colMeta))
		}
		logical := make([]sqldb.Value, len(exprRow))
		for i, e := range exprRow {
			v, err := sqldb.EvalConst(e, params)
			if err != nil {
				return nil, fmt.Errorf("proxy: INSERT values must be constants: %w", err)
			}
			logical[i] = v
		}
		logicalRows[r] = logical
		rids[r] = atomic.AddInt64(&tm.nextRid, 1)
	}

	// §3.1 batch optimization: encrypt each column's Ord plaintexts in one
	// sorted pass, then fan the remaining per-row onion work across the
	// worker pool. Rows land at their original index.
	p.prewarmOPE(colMeta, logicalRows)
	serverRows := make([][]sqlparser.Expr, len(s.Rows))
	err := forEachRow(p.batchWorkers(), len(s.Rows), func(r int) error {
		row, err := p.encryptInsertRow(tm, colMeta, logicalRows[r], rids[r])
		if err != nil {
			return err
		}
		serverRows[r] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	server.Rows = serverRows
	sess.markTouched(tm.Logical)
	return sess.db.Exec(server)
}

// encryptInsertRow produces the server-side expression row (rid plus every
// onion column literal) for one logical INSERT row. It is called from the
// batch worker pool and must only use concurrency-safe proxy state.
func (p *Proxy) encryptInsertRow(tm *TableMeta, colMeta []*ColumnMeta, logical []sqldb.Value, rid int64) ([]sqlparser.Expr, error) {
	ownerValue := func(ownerCol string) (sqldb.Value, bool) {
		for i, cm := range colMeta {
			if cm.Logical == ownerCol {
				return logical[i], true
			}
		}
		return sqldb.Value{}, false
	}

	row := []sqlparser.Expr{&sqlparser.IntLit{V: rid}}
	for i, cm := range colMeta {
		v := logical[i]
		switch {
		case cm.Plain:
			row = append(row, valueToExpr(v))
		case cm.EncFor != nil:
			if p.princ == nil {
				return nil, fmt.Errorf("proxy: column %s.%s is ENC FOR a principal; enable multi-principal mode",
					tm.Logical, cm.Logical)
			}
			ov, ok := ownerValue(cm.EncFor.OwnerColumn)
			if !ok {
				return nil, fmt.Errorf("proxy: INSERT into %s must set owner column %s for ENC FOR column %s",
					tm.Logical, cm.EncFor.OwnerColumn, cm.Logical)
			}
			ct, err := p.princ.EncryptFor(cm.EncFor.PrincType, ov.String(), tm.Logical, cm.Logical, v)
			if err != nil {
				return nil, err
			}
			row = append(row, valueToExpr(ct))
		default:
			vals, err := p.encryptRowValue(cm, v)
			if err != nil {
				return nil, err
			}
			row = append(row, vals...)
		}
	}
	return row, nil
}

// encryptRowValue produces the onion column literals plus IV for one value.
func (p *Proxy) encryptRowValue(cm *ColumnMeta, v sqldb.Value) ([]sqlparser.Expr, error) {
	var out []sqlparser.Expr
	if v.IsNull() {
		for range cm.onionList() {
			out = append(out, &sqlparser.NullLit{})
		}
		out = append(out, &sqlparser.NullLit{}) // IV
		return out, nil
	}
	coerced, err := coerceToColumn(cm, v)
	if err != nil {
		return nil, fmt.Errorf("proxy: %s.%s: %w", cm.Table.Logical, cm.Logical, err)
	}
	iv, err := newIV()
	if err != nil {
		return nil, err
	}
	for _, o := range cm.onionList() {
		ct, err := p.encryptOnion(cm, o, coerced, iv)
		if err != nil {
			return nil, err
		}
		out = append(out, valueToExpr(ct))
	}
	out = append(out, &sqlparser.BytesLit{V: iv})
	return out, nil
}

//
// UPDATE
//

func (sess *Session) execUpdate(s *sqlparser.UpdateStmt, params []sqldb.Value) (*sqldb.Result, error) {
	p := sess.p
	var qs *qscope
	var assigns []updateAssign
	release, err := p.prepare(func() (*analysis, error) {
		var err error
		qs, err = p.buildScope([]sqlparser.TableRef{{Table: s.Table}})
		if err != nil {
			return nil, err
		}
		an, as, err := p.analyzeUpdate(s, qs, params)
		if err != nil {
			return nil, err
		}
		assigns = as
		return an, nil
	})
	if err != nil {
		return nil, err
	}
	defer release()
	if p.opts.Training {
		return &sqldb.Result{}, nil
	}

	tm := qs.entries[0].tm

	// Any two-query or ENC FOR assignment forces the read-modify-write
	// strategy (§3.3).
	needTwoQuery := false
	for _, a := range assigns {
		if a.kind == updTwoQuery || (a.kind == updConst && a.cm.EncFor != nil) {
			needTwoQuery = true
		}
	}
	if needTwoQuery {
		return sess.execTwoQueryUpdate(s, tm, qs, assigns, params)
	}

	where, err := p.rewritePredicate(s.Where, qs, params, false)
	if err != nil {
		return nil, err
	}
	server := &sqlparser.UpdateStmt{Table: tm.Anon, Where: where}

	madeStale := false
	for _, a := range assigns {
		switch a.kind {
		case updPassthrough:
			val, err := p.renamePlain(a.value, qs, false)
			if err != nil {
				return nil, err
			}
			server.Assignments = append(server.Assignments,
				sqlparser.Assignment{Column: a.cm.Anon, Value: val})

		case updConst:
			v, err := sqldb.EvalConst(a.value, params)
			if err != nil {
				return nil, err
			}
			if a.cm.Plain {
				server.Assignments = append(server.Assignments,
					sqlparser.Assignment{Column: a.cm.Anon, Value: valueToExpr(v)})
				continue
			}
			exprs, err := p.encryptRowValue(a.cm, v)
			if err != nil {
				return nil, err
			}
			names := onionColNames(a.cm)
			for i, name := range names {
				server.Assignments = append(server.Assignments,
					sqlparser.Assignment{Column: name, Value: exprs[i]})
			}

		case updIncrement:
			ct, err := p.homKey.EncryptInt64(a.delta)
			if err != nil {
				return nil, err
			}
			server.Assignments = append(server.Assignments, sqlparser.Assignment{
				Column: a.cm.onionCol(onion.Add),
				Value: &sqlparser.FuncCall{
					Name: "hom_add",
					Args: []sqlparser.Expr{
						&sqlparser.ColRef{Column: a.cm.onionCol(onion.Add)},
						&sqlparser.BytesLit{V: p.homKey.CiphertextBytes(ct)},
					},
				},
			})
			// The other onions of this column are now stale (§3.3).
			a.cm.mu.Lock()
			if !a.cm.Stale[onion.Eq] {
				madeStale = true
			}
			a.cm.Stale[onion.Eq] = true
			a.cm.Stale[onion.JAdj] = true
			a.cm.Stale[onion.Ord] = true
			a.cm.mu.Unlock()
		}
	}
	sess.markTouched(tm.Logical)
	if madeStale && p.persistent() {
		// First increment against a clean column: commit the staleness
		// flags in the same WAL batch as the hom_add UPDATE. Inside a
		// client transaction both ride its commit — a ROLLBACK discards
		// the increment and the flags together.
		p.metaMu.Lock()
		defer p.metaMu.Unlock()
		sealed, err := p.sealedMetaLocked()
		if err != nil {
			return nil, err
		}
		return sess.db.ExecWithMeta(server, sealed)
	}
	return sess.db.Exec(server)
}

// onionColNames lists the server columns written by encryptRowValue, in the
// same order.
func onionColNames(cm *ColumnMeta) []string {
	var names []string
	for _, o := range cm.onionList() {
		names = append(names, cm.onionCol(o))
	}
	names = append(names, cm.ivCol())
	return names
}

// execTwoQueryUpdate implements §3.3's strategy for updates the server
// cannot compute: SELECT the old rows, compute new values at the proxy,
// then UPDATE each row by hidden row id.
func (sess *Session) execTwoQueryUpdate(s *sqlparser.UpdateStmt, tm *TableMeta, qs *qscope, assigns []updateAssign, params []sqldb.Value) (*sqldb.Result, error) {
	p := sess.p
	b := newPlanBuilder(p, qs, params)
	ridIdx := b.addServer(&sqlparser.ColRef{Column: "rid"})

	// Decoders for every column referenced by any assignment expression,
	// plus owner columns for ENC FOR targets.
	type assignPlan struct {
		a        updateAssign
		valDec   decoder      // nil for const
		constVal *sqldb.Value // for updConst
		ownerDec decoder      // for ENC FOR targets
	}
	var plans []assignPlan
	for _, a := range assigns {
		ap := assignPlan{a: a}
		switch a.kind {
		case updConst:
			v, err := sqldb.EvalConst(a.value, params)
			if err != nil {
				return nil, err
			}
			ap.constVal = &v
		default:
			dec, err := b.exprDecoder(a.value)
			if err != nil {
				return nil, err
			}
			ap.valDec = dec
		}
		if a.cm.EncFor != nil {
			owner := tm.Col(a.cm.EncFor.OwnerColumn)
			dec, err := b.fetchCol(owner, anonAlias(0))
			if err != nil {
				return nil, err
			}
			ap.ownerDec = dec
		}
		plans = append(plans, ap)
	}

	where, err := p.rewritePredicate(s.Where, qs, params, true)
	if err != nil {
		return nil, err
	}
	sel := &sqlparser.SelectStmt{
		Exprs: b.srv,
		From:  []sqlparser.TableRef{{Table: tm.Anon, Alias: anonAlias(0)}},
		Where: where,
	}
	res, err := sess.db.Exec(sel)
	if err != nil {
		return nil, err
	}

	// The strategy issues one server-side UPDATE per matched row. Make the
	// logical statement atomic: if the client has no transaction open,
	// wrap the per-row writes in one, so a mid-loop failure (write
	// conflict, encryption error) rolls back the rows already written
	// instead of leaving a partially applied UPDATE. Inside a client
	// transaction the rows buffer into it as before. Over a sharded
	// engine the matched rows live on different shards and a transaction
	// cannot span them: outside a client transaction the per-row UPDATEs
	// autocommit individually (each row's rid-targeted write routes to a
	// single shard and is atomic there; the statement loses only mid-loop
	// atomicity), but *inside* a client transaction a multi-row rewrite
	// must be refused up front — otherwise rows routing to the pinned
	// shard would buffer, a later row routing elsewhere would error, and
	// the client's COMMIT would persist a half-applied UPDATE.
	if sess.db.InTxn() && p.db.Shards() > 1 && len(res.Rows) > 1 {
		return nil, fmt.Errorf("proxy: UPDATE matches %d rows inside a transaction over a sharded store; transactions are single-shard — run it outside the transaction or target one row", len(res.Rows))
	}
	ownTxn := !sess.db.InTxn() && p.db.Shards() == 1
	if ownTxn {
		if _, err := sess.db.Exec(&sqlparser.BeginStmt{}); err != nil {
			return nil, err
		}
	}
	sess.markTouched(tm.Logical)
	abort := func(err error) (*sqldb.Result, error) {
		if ownTxn {
			sess.db.Exec(&sqlparser.RollbackStmt{}) //nolint:errcheck // already failing
			sess.resetTouched()
		}
		return nil, err
	}
	affected := 0
	for _, row := range res.Rows {
		upd := &sqlparser.UpdateStmt{
			Table: tm.Anon,
			Where: &sqlparser.BinaryExpr{Op: "=",
				L: &sqlparser.ColRef{Column: "rid"},
				R: &sqlparser.IntLit{V: row[ridIdx].I}},
		}
		for _, ap := range plans {
			var newVal sqldb.Value
			if ap.constVal != nil {
				newVal = *ap.constVal
			} else {
				v, err := ap.valDec(row)
				if err != nil {
					return abort(err)
				}
				newVal = v
			}
			cm := ap.a.cm
			switch {
			case cm.Plain:
				upd.Assignments = append(upd.Assignments,
					sqlparser.Assignment{Column: cm.Anon, Value: valueToExpr(newVal)})
			case cm.EncFor != nil:
				if p.princ == nil {
					return abort(fmt.Errorf("proxy: ENC FOR column requires multi-principal mode"))
				}
				ov, err := ap.ownerDec(row)
				if err != nil {
					return abort(err)
				}
				ct, err := p.princ.EncryptFor(cm.EncFor.PrincType, ov.String(), tm.Logical, cm.Logical, newVal)
				if err != nil {
					return abort(err)
				}
				upd.Assignments = append(upd.Assignments,
					sqlparser.Assignment{Column: cm.mpCol(), Value: valueToExpr(ct)})
			default:
				exprs, err := p.encryptRowValue(cm, newVal)
				if err != nil {
					return abort(err)
				}
				for i, name := range onionColNames(cm) {
					upd.Assignments = append(upd.Assignments,
						sqlparser.Assignment{Column: name, Value: exprs[i]})
				}
			}
		}
		if _, err := sess.db.Exec(upd); err != nil {
			return abort(err)
		}
		affected++
	}
	if ownTxn {
		if _, err := sess.db.Exec(&sqlparser.CommitStmt{}); err != nil {
			sess.resetTouched()
			return nil, err
		}
		sess.resetTouched()
	}
	return &sqldb.Result{Affected: affected}, nil
}

//
// DELETE
//

func (sess *Session) execDelete(s *sqlparser.DeleteStmt, params []sqldb.Value) (*sqldb.Result, error) {
	p := sess.p
	var qs *qscope
	release, err := p.prepare(func() (*analysis, error) {
		var err error
		qs, err = p.buildScope([]sqlparser.TableRef{{Table: s.Table}})
		if err != nil {
			return nil, err
		}
		an := &analysis{}
		p.analyzePredicate(s.Where, qs, params, an)
		return an, nil
	})
	if err != nil {
		return nil, err
	}
	defer release()
	if p.opts.Training {
		return &sqldb.Result{}, nil
	}

	where, err := p.rewritePredicate(s.Where, qs, params, false)
	if err != nil {
		return nil, err
	}
	sess.markTouched(qs.entries[0].tm.Logical)
	return sess.db.Exec(&sqlparser.DeleteStmt{Table: qs.entries[0].tm.Anon, Where: where})
}
