package proxy

import (
	"fmt"

	"repro/internal/crypto/rnd"
	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// RaiseOnion re-encrypts an onion back up to its RND layer — the §3.5.1
// extension ("Onion re-encryption: in cases when an application performs
// infrequent queries requiring a low onion layer, CryptDB could be extended
// to re-encrypt onions back to a higher layer after the infrequent query
// finishes"). The proxy reads every ciphertext in the column, applies the
// RND wrap under the column's stored per-row IVs, and restores the onion
// state, shrinking the leak window of the lower layer.
func (p *Proxy) RaiseOnion(table, col string, o onion.Onion) error {
	p.mu.Lock()
	defer p.mu.Unlock()

	cm, err := p.lookupCol(table, col)
	if err != nil {
		return err
	}
	st := cm.Onions[o]
	if st == nil {
		return fmt.Errorf("proxy: %s.%s has no %s onion", table, col, o)
	}
	if st.Cur == 0 {
		return nil // already fully wrapped
	}
	above := st.Stack[st.Cur-1]
	if above != onion.RND {
		return fmt.Errorf("proxy: cannot re-wrap non-RND layer %s", above)
	}
	if p.opts.Training {
		st.Cur--
		return nil
	}

	sel := &sqlparser.SelectStmt{
		Exprs: []sqlparser.SelectExpr{
			{Expr: &sqlparser.ColRef{Column: "rid"}},
			{Expr: &sqlparser.ColRef{Column: cm.onionCol(o)}},
			{Expr: &sqlparser.ColRef{Column: cm.ivCol()}},
		},
		From: []sqlparser.TableRef{{Table: cm.Table.Anon}},
	}
	res, err := p.db.Exec(sel)
	if err != nil {
		return fmt.Errorf("proxy: re-encryption read: %w", err)
	}
	key := p.colKey(cm, o, onion.RND)
	for _, row := range res.Rows {
		val, iv := row[1], row[2]
		if val.IsNull() {
			continue
		}
		if iv.IsNull() {
			return fmt.Errorf("proxy: row %v of %s.%s has no IV to re-wrap with", row[0], table, col)
		}
		var wrapped sqldb.Value
		switch val.Kind {
		case sqldb.KindInt:
			w, err := rnd.Uint64(key, iv.B, uint64(val.I))
			if err != nil {
				return err
			}
			wrapped = sqldb.Int(int64(w))
		case sqldb.KindBlob:
			w, err := rnd.Bytes(key, iv.B, val.B)
			if err != nil {
				return err
			}
			wrapped = sqldb.Blob(w)
		default:
			return fmt.Errorf("proxy: unexpected server value kind %s", val.Kind)
		}
		upd := &sqlparser.UpdateStmt{
			Table:       cm.Table.Anon,
			Assignments: []sqlparser.Assignment{{Column: cm.onionCol(o), Value: valueToExpr(wrapped)}},
			Where: &sqlparser.BinaryExpr{Op: "=",
				L: &sqlparser.ColRef{Column: "rid"},
				R: &sqlparser.IntLit{V: row[0].I}},
		}
		if _, err := p.db.ExecAutonomous(upd); err != nil {
			return fmt.Errorf("proxy: re-encryption write: %w", err)
		}
	}
	st.Cur--
	// A raised Eq onion invalidates any DET index built while exposed:
	// RND ciphertexts are useless to it (§3.3), and it would go stale.
	if o == onion.Eq && cm.idxEq {
		cm.idxEq = false
	}
	if o == onion.JAdj && cm.idxJadj {
		cm.idxJadj = false
	}
	return nil
}
