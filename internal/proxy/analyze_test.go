package proxy

import (
	"strings"
	"testing"

	"repro/internal/onion"
	"repro/internal/sqldb"
)

func TestTypeCoercionInPredicates(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	// String literal against an integer column must encrypt the integer.
	res := mustExec(t, p, "SELECT name FROM employees WHERE id = '2'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Integer literal against a text column must encrypt the string form.
	mustExec(t, p, "CREATE TABLE codes (code TEXT)")
	mustExec(t, p, "INSERT INTO codes (code) VALUES ('7')")
	res = mustExec(t, p, "SELECT COUNT(*) FROM codes WHERE code = 7")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestConstantFolding(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	// Arithmetic over constants folds before encryption.
	res := mustExec(t, p, "SELECT name FROM employees WHERE id = 1 + 1")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, p, "SELECT name FROM employees WHERE salary > 50000 + 10000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNotPredicates(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT COUNT(*) FROM employees WHERE NOT dept = 'eng'")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	res = mustExec(t, p, "SELECT COUNT(*) FROM employees WHERE id NOT IN (2, 3)")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	res = mustExec(t, p, "SELECT COUNT(*) FROM employees WHERE salary NOT BETWEEN 0 AND 60000")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestOPEDomainError(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (a INT)")
	// Values beyond ±2^39 cannot be OPE-encoded; insertion fails with a
	// clear error rather than silently corrupting order.
	if _, err := p.Execute("INSERT INTO t (a) VALUES (?)", sqldb.Int(1<<41)); err == nil {
		t.Fatal("want OPE domain error")
	} else if !strings.Contains(err.Error(), "OPE domain") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMinMaxOnTextRejected(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	if _, err := p.Execute("SELECT MIN(name) FROM employees"); err == nil {
		t.Fatal("MIN over text should be rejected (string OPE is not invertible)")
	}
}

func TestSumOnTextRejected(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	if _, err := p.Execute("SELECT SUM(name) FROM employees"); err == nil {
		t.Fatal("SUM over text should be rejected")
	}
}

func TestGroupByOrderByCount(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT dept, COUNT(*) FROM employees GROUP BY dept ORDER BY COUNT(*) DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectTableDotStar(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "CREATE TABLE depts (dname TEXT, floor INT)")
	mustExec(t, p, "INSERT INTO depts (dname, floor) VALUES ('eng', 2)")
	res := mustExec(t, p, "SELECT d.* FROM employees e JOIN depts d ON e.dept = d.dname WHERE e.id = 3")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 2 || res.Rows[0][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEncForWithoutMPFails(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (owner INT, secret TEXT ENC FOR (owner acct))")
	if _, err := p.Execute("INSERT INTO t (owner, secret) VALUES (1, 'x')"); err == nil {
		t.Fatal("ENC FOR without multi-principal mode should fail")
	}
}

func TestMixedPlainEncryptedComparisonRejected(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (a INT PLAIN, b INT)")
	mustExec(t, p, "INSERT INTO t (a, b) VALUES (1, 1)")
	if _, err := p.Execute("SELECT COUNT(*) FROM t WHERE a = b"); err == nil {
		t.Fatal("plain-vs-encrypted comparison should be rejected")
	}
}

func TestStatsCounters(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "SELECT id FROM employees WHERE name = 'Alice'")
	mustExec(t, p, "SELECT name FROM employees ORDER BY salary")
	st := p.Stats()
	if st.Queries == 0 || st.OnionAdjustments == 0 || st.InProxySorts == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReportAfterWorkload(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "SELECT id FROM employees WHERE name = 'Alice'")
	mustExec(t, p, "SELECT name FROM employees WHERE salary > 1000")
	mustExec(t, p, "SELECT SUM(salary) FROM employees")

	var nameR, salR, deptR ColumnReport
	for _, r := range p.Report() {
		switch r.Column {
		case "name":
			nameR = r
		case "salary":
			salR = r
		case "dept":
			deptR = r
		}
	}
	if nameR.MinEnc != onion.DET {
		t.Fatalf("name MinEnc = %s", nameR.MinEnc)
	}
	if salR.MinEnc != onion.OPE || !salR.NeedsHOM {
		t.Fatalf("salary report = %+v", salR)
	}
	if deptR.MinEnc != onion.RND || !deptR.High {
		t.Fatalf("dept report = %+v", deptR)
	}
}

func TestJoinThenInsertBothColumns(t *testing.T) {
	// Inserts into *both* columns of an adjusted join group must use the
	// group key, or future joins would silently miss rows.
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE l (v TEXT)")
	mustExec(t, p, "CREATE TABLE r (v TEXT)")
	mustExec(t, p, "INSERT INTO l (v) VALUES ('a')")
	mustExec(t, p, "INSERT INTO r (v) VALUES ('a')")
	res := mustExec(t, p, "SELECT COUNT(*) FROM l JOIN r ON l.v = r.v")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	mustExec(t, p, "INSERT INTO l (v) VALUES ('b')")
	mustExec(t, p, "INSERT INTO r (v) VALUES ('b')")
	res = mustExec(t, p, "SELECT COUNT(*) FROM l JOIN r ON l.v = r.v")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count after inserts = %v", res.Rows[0][0])
	}
}

func TestUpdateMixedAssignments(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	// One constant set and one increment in the same statement.
	mustExec(t, p, "UPDATE employees SET dept = 'ops', salary = salary + 1 WHERE id = 5")
	res := mustExec(t, p, "SELECT dept, salary FROM employees WHERE id = 5")
	if res.Rows[0][0].S != "ops" || res.Rows[0][1].I != 50001 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDeleteByRange(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "DELETE FROM employees WHERE salary < 56000")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
}

func TestInsertNullAndReadBack(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, p, "INSERT INTO t (a, b) VALUES (NULL, NULL)")
	res := mustExec(t, p, "SELECT a, b FROM t")
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Fatalf("rows = %v", res.Rows)
	}
}
