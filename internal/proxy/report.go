package proxy

import (
	"sort"

	"repro/internal/onion"
	"repro/internal/sqlparser"
)

// ColumnReport summarizes the steady-state security of one column for the
// §8.3 analysis (Figure 9): the weakest exposed scheme (MinEnc), whether
// the column ever needed HOM or SEARCH, and whether any query required
// plaintext computation CryptDB cannot provide.
type ColumnReport struct {
	Table, Column  string
	Plain          bool
	MultiPrincipal bool
	MinEnc         onion.Layer
	NeedsHOM       bool
	NeedsSEARCH    bool
	NeedsPlaintext bool
	// High reports whether the column sits in the paper's HIGH class:
	// RND/HOM, or DET with no repeats (repeat detection is the caller's
	// concern; this flag covers the layer part only).
	High bool
}

// Report computes the per-column steady-state onion analysis over all
// tables (run a query set — typically in training mode — first).
func (p *Proxy) Report() []ColumnReport {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []ColumnReport
	var names []string
	for n := range p.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, tn := range names {
		tm := p.tables[tn]
		for _, cm := range tm.Cols {
			out = append(out, p.columnReport(cm))
		}
	}
	return out
}

func (p *Proxy) columnReport(cm *ColumnMeta) ColumnReport {
	cr := ColumnReport{
		Table:          cm.Table.Logical,
		Column:         cm.Logical,
		Plain:          cm.Plain,
		MultiPrincipal: cm.EncFor != nil,
		NeedsHOM:       cm.UsedSum,
		NeedsSEARCH:    cm.UsedSearch,
		NeedsPlaintext: cm.NeedsPlaintext,
	}
	switch {
	case cm.Plain:
		cr.MinEnc = onion.PLAIN
	case cm.EncFor != nil:
		// Multi-principal columns carry a single RND-class blob.
		cr.MinEnc = onion.RND
		cr.High = true
	default:
		rank := onion.RND.SecurityRank()
		for _, o := range []onion.Onion{onion.Eq, onion.JAdj, onion.Ord} {
			if st := cm.Onions[o]; st != nil {
				if r := st.Current().SecurityRank(); r < rank {
					rank = r
				}
			}
		}
		if cm.UsedSearch {
			if r := onion.SEARCH.SecurityRank(); r < rank {
				rank = r
			}
		}
		cr.MinEnc = layerForRank(rank)
		cr.High = rank >= onion.RND.SecurityRank()
	}
	return cr
}

func layerForRank(rank int) onion.Layer {
	switch rank {
	case 5:
		return onion.RND
	case 4:
		return onion.SEARCH
	case 3:
		return onion.DET
	case 2:
		return onion.JOIN
	case 1:
		return onion.OPE
	}
	return onion.PLAIN
}

// SchemaColumns counts logical columns per type, used by the trace
// analysis (Figure 7).
func (p *Proxy) SchemaColumns() (total int, byType map[sqlparser.ColType]int) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	byType = make(map[sqlparser.ColType]int)
	for _, tm := range p.tables {
		for _, cm := range tm.Cols {
			total++
			byType[cm.Type]++
		}
	}
	return total, byType
}
