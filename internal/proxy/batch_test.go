package proxy

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/crypto/keys"
	"repro/internal/onion"
	"repro/internal/sqldb"
)

// mkKeyedProxy builds a proxy over a fresh embedded DB with explicit master
// key material, so two proxies can be compared ciphertext-for-ciphertext.
func mkKeyedProxy(t *testing.T, mk *keys.Master, workers int) *Proxy {
	t.Helper()
	p, err := NewWithMaster(sqldb.New(), mk, Options{HOMBits: 256, BatchWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatchedInsertCiphertextEqualsSerial pushes one multi-row INSERT
// through the serial path (BatchWorkers=1) and the batched, parallel path
// (BatchWorkers=8) under the same master key, then verifies both the
// decrypted results and the deterministic server-side ciphertexts (DET and
// OPE, once the RND layers are peeled) are identical. The pipeline must be
// a pure performance change.
func TestBatchedInsertCiphertextEqualsSerial(t *testing.T) {
	mk, err := keys.NewMaster()
	if err != nil {
		t.Fatal(err)
	}
	serial := mkKeyedProxy(t, mk, 1)
	parallel := mkKeyedProxy(t, mk, 8)

	const rows = 40
	var sb strings.Builder
	sb.WriteString("INSERT INTO t (id, name, score) VALUES ")
	for r := 0; r < rows; r++ {
		if r > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'user-%d', %d)", r, r%7, (r*37)%101)
	}
	insert := sb.String()

	for _, p := range []*Proxy{serial, parallel} {
		mustExec(t, p, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score INT)")
		mustExec(t, p, insert)
	}

	// Full-pipeline logical equality (exercises the row-parallel decrypt).
	rs := mustExec(t, serial, "SELECT id, name, score FROM t ORDER BY id")
	rp := mustExec(t, parallel, "SELECT id, name, score FROM t ORDER BY id")
	if !reflect.DeepEqual(rs.Rows, rp.Rows) {
		t.Fatalf("decrypted results differ:\nserial:   %v\nparallel: %v", rs.Rows, rp.Rows)
	}
	if len(rs.Rows) != rows {
		t.Fatalf("got %d rows, want %d", len(rs.Rows), rows)
	}

	// Peel Eq to DET and Ord to OPE on every column of both proxies, so the
	// stored ciphertexts become deterministic functions of (master key,
	// plaintext) and can be compared byte for byte.
	for _, p := range []*Proxy{serial, parallel} {
		mustExec(t, p, "SELECT id FROM t WHERE name = 'nobody'")
		mustExec(t, p, "SELECT id FROM t WHERE name > 'zzz'")
		mustExec(t, p, "SELECT id FROM t WHERE score = -1")
		mustExec(t, p, "SELECT id FROM t WHERE score > 1000")
		mustExec(t, p, "SELECT name FROM t WHERE id = -1")
		mustExec(t, p, "SELECT name FROM t WHERE id > 1000")
	}

	tmS, tmP := serial.Table("t"), parallel.Table("t")
	for ci, cmS := range tmS.Cols {
		cmP := tmP.Cols[ci]
		for _, o := range []onion.Onion{onion.Eq, onion.Ord} {
			if !cmS.HasOnion(o) {
				continue
			}
			if cmS.Onions[o].Current() == onion.RND || cmP.Onions[o].Current() == onion.RND {
				t.Fatalf("%s onion of %s still at RND after adjustment queries", o, cmS.Logical)
			}
			q := fmt.Sprintf("SELECT %s FROM %s ORDER BY rid", cmS.onionCol(o), tmS.Anon)
			ctS, err := serial.DB().ExecSQL(q)
			if err != nil {
				t.Fatal(err)
			}
			ctP, err := parallel.DB().ExecSQL(fmt.Sprintf("SELECT %s FROM %s ORDER BY rid", cmP.onionCol(o), tmP.Anon))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ctS.Rows, ctP.Rows) {
				t.Fatalf("column %s onion %s: server ciphertexts differ between serial and batched paths",
					cmS.Logical, o)
			}
			if len(ctS.Rows) != rows {
				t.Fatalf("column %s onion %s: %d ciphertext rows, want %d", cmS.Logical, o, len(ctS.Rows), rows)
			}
		}
	}
}

// TestBatchedInsertErrorMatchesSerial verifies the parallel pipeline
// reports the same (lowest-index) error the serial path would for a batch
// with a failing row.
func TestBatchedInsertErrorMatchesSerial(t *testing.T) {
	mk, err := keys.NewMaster()
	if err != nil {
		t.Fatal(err)
	}
	serial := mkKeyedProxy(t, mk, 1)
	parallel := mkKeyedProxy(t, mk, 8)

	// Row 5's score overflows the OPE domain (±2^39).
	var sb strings.Builder
	sb.WriteString("INSERT INTO t (id, score) VALUES ")
	for r := 0; r < 16; r++ {
		if r > 0 {
			sb.WriteString(", ")
		}
		score := int64(r)
		if r == 5 {
			score = int64(1) << 45
		}
		fmt.Fprintf(&sb, "(%d, %d)", r, score)
	}
	insert := sb.String()

	var msgs []string
	for _, p := range []*Proxy{serial, parallel} {
		mustExec(t, p, "CREATE TABLE t (id INT, score INT)")
		_, err := p.Execute(insert)
		if err == nil {
			t.Fatal("want OPE domain error, got nil")
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error mismatch:\nserial:   %s\nparallel: %s", msgs[0], msgs[1])
	}
}

// TestBatchWorkersDefault ensures the zero value resolves to a parallel
// pool and an explicit 1 stays serial.
func TestBatchWorkersDefault(t *testing.T) {
	p := newTestProxy(t)
	if got := p.batchWorkers(); got < 1 {
		t.Fatalf("default batchWorkers = %d", got)
	}
	p.opts.BatchWorkers = 1
	if got := p.batchWorkers(); got != 1 {
		t.Fatalf("batchWorkers = %d, want 1", got)
	}
}

// TestForEachRowDeterministicError checks the pool returns the
// lowest-index error no matter how rows are scheduled.
func TestForEachRowDeterministicError(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		err := forEachRow(workers, 64, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("row %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "row 3 failed" {
			t.Fatalf("workers=%d: err = %v, want row 3 failed", workers, err)
		}
	}
}
