package proxy

import (
	"testing"

	"repro/internal/sqldb"
)

func TestCreateIndexUsingValidated(t *testing.T) {
	p, err := New(sqldb.New(), Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("CREATE TABLE t (a INT, b INT, c INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("CREATE INDEX bad ON t (a) USING SPLAY"); err == nil {
		t.Fatal("want error for unknown index type on an encrypted column")
	}
	if _, err := p.Execute("CREATE INDEX ia ON t (a) USING HASH"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("CREATE INDEX ib ON t (b) USING BTREE"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("INSERT INTO t (a, b, c) VALUES (1, 2, 3), (4, 5, 6)"); err != nil {
		t.Fatal(err)
	}
	// Peel Eq and Ord on both columns so every index the clause allows
	// would have materialized.
	for _, q := range []string{
		"SELECT c FROM t WHERE a = 1", "SELECT c FROM t WHERE a > 0",
		"SELECT c FROM t WHERE b = 2", "SELECT c FROM t WHERE b > 0",
	} {
		if _, err := p.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	ca, cb := p.Table("t").Col("a"), p.Table("t").Col("b")
	if !ca.idxEq || ca.idxOrd {
		t.Fatalf("USING HASH: idxEq=%v idxOrd=%v", ca.idxEq, ca.idxOrd)
	}
	if cb.idxEq || !cb.idxOrd {
		t.Fatalf("USING BTREE: idxEq=%v idxOrd=%v", cb.idxEq, cb.idxOrd)
	}
}
