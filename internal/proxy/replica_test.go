package proxy

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/store/replicated"
	"repro/internal/store/single"
)

// openReplicaProxy provisions a follower: the primary's key file is copied
// into the follower's data dir (the operator step), the follower engine
// catches up, and a replica proxy opens over it.
func openReplicaProxy(t *testing.T, pe *replicated.PrimaryEngine, primDir string) (*Proxy, *replicated.FollowerEngine) {
	t.Helper()
	folDir := t.TempDir()
	kf, err := os.ReadFile(filepath.Join(primDir, keyFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(folDir, keyFileName), kf, 0o600); err != nil {
		t.Fatal(err)
	}
	fe, err := replicated.OpenFollower(folDir, pe.Addr(), sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fe.Close() }) //nolint:errcheck // test teardown
	waitReplica(t, pe, fe)
	fp, err := NewOnEngine(fe, Options{HOMBits: 256, DataDir: folDir})
	if err != nil {
		t.Fatal(err)
	}
	return fp, fe
}

func waitReplica(t *testing.T, pe *replicated.PrimaryEngine, fe *replicated.FollowerEngine) {
	t.Helper()
	seqs := make([]uint64, pe.Shards())
	for i := range seqs {
		seqs[i] = pe.Replication().ShardSeq(i)
	}
	if err := fe.WaitCaughtUp(seqs, 20*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaProxyServesReads: encrypted rows written through the primary
// proxy decrypt identically through a replica proxy, while every write is
// refused with a redirect naming the primary.
func TestReplicaProxyServesReads(t *testing.T) {
	primDir := t.TempDir()
	eng, err := single.Open(primDir, sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := replicated.WrapPrimary(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	pp, err := NewOnEngine(pe, Options{HOMBits: 256, DataDir: primDir})
	if err != nil {
		t.Fatal(err)
	}

	mustExecP(t, pp, "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, salary INT)")
	for i := 1; i <= 8; i++ {
		mustExecP(t, pp, fmt.Sprintf("INSERT INTO emp (id, name, salary) VALUES (%d, 'n%d', %d)", i, i, i*100))
	}
	// Peel Ord and Eq on the primary so the replica's restored metadata
	// has non-trivial layer state to agree with the shipped ciphertexts.
	wantRange := resultString(t, pp, "SELECT name FROM emp WHERE salary > 350 ORDER BY salary")
	wantEq := resultString(t, pp, "SELECT salary FROM emp WHERE name = 'n3'")

	fp, _ := openReplicaProxy(t, pe, primDir)
	if !fp.IsReplica() {
		t.Fatal("replica proxy does not report IsReplica")
	}
	if fp.PrimaryAddr() != pe.Addr() {
		t.Fatalf("PrimaryAddr = %q, want %q", fp.PrimaryAddr(), pe.Addr())
	}
	if fp.ReplicaSeq() == 0 {
		t.Fatal("ReplicaSeq is 0 after catch-up")
	}
	// The replica's metadata restored the peeled layers.
	if st := fp.Table("emp").Col("salary").Onions[onion.Ord]; st.Current() != onion.OPE {
		t.Fatalf("replica sees salary Ord at %s, want OPE", st.Current())
	}

	if got := resultString(t, fp, "SELECT name FROM emp WHERE salary > 350 ORDER BY salary"); got != wantRange {
		t.Fatalf("replica range:\ngot %q\nwant %q", got, wantRange)
	}
	if got := resultString(t, fp, "SELECT salary FROM emp WHERE name = 'n3'"); got != wantEq {
		t.Fatalf("replica equality:\ngot %q\nwant %q", got, wantEq)
	}

	for _, w := range []string{
		"INSERT INTO emp (id, name, salary) VALUES (99, 'x', 1)",
		"UPDATE emp SET salary = 1 WHERE id = 1",
		"DELETE FROM emp WHERE id = 1",
		"CREATE TABLE other (id INT PRIMARY KEY)",
		"DROP TABLE emp",
		"BEGIN",
	} {
		_, err := fp.Execute(w)
		var ro *store.ReadOnlyError
		if !errors.As(err, &ro) {
			t.Fatalf("%s on replica: got %v, want ReadOnlyError", w, err)
		}
		if ro.Primary != pe.Addr() {
			t.Fatalf("%s: redirect names %q, want %q", w, ro.Primary, pe.Addr())
		}
	}
}

// TestReplicaProxyMetaRefresh: schema and onion transitions made on the
// primary AFTER the replica proxy opened become visible without a restart
// — the replica notices the replicated metadata generation moving and
// reloads its sealed snapshot before the next query.
func TestReplicaProxyMetaRefresh(t *testing.T) {
	primDir := t.TempDir()
	eng, err := single.Open(primDir, sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := replicated.WrapPrimary(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	pp, err := NewOnEngine(pe, Options{HOMBits: 256, DataDir: primDir})
	if err != nil {
		t.Fatal(err)
	}
	mustExecP(t, pp, "CREATE TABLE a (id INT PRIMARY KEY, v INT)")
	mustExecP(t, pp, "INSERT INTO a (id, v) VALUES (1, 10)")

	fp, fe := openReplicaProxy(t, pe, primDir)
	if got := resultString(t, fp, "SELECT v FROM a"); got != "10\n" {
		t.Fatalf("replica initial read: %q", got)
	}
	// A predicate whose onion layer has NOT been peeled on the primary is
	// refused with the redirect — the adjustment is a write.
	if _, err := fp.Execute("SELECT v FROM a WHERE v > 5"); err == nil {
		t.Fatal("replica ran a query needing an onion adjustment")
	} else {
		var ro *store.ReadOnlyError
		if !errors.As(err, &ro) {
			t.Fatalf("adjustment-needing query: got %v, want ReadOnlyError", err)
		}
	}

	// A whole new table appears on the primary...
	mustExecP(t, pp, "CREATE TABLE b (id INT PRIMARY KEY, s TEXT)")
	mustExecP(t, pp, "INSERT INTO b (id, s) VALUES (7, 'fresh')")
	// ...and an onion peel changes existing layer state.
	want := resultString(t, pp, "SELECT v FROM a WHERE v > 5")
	waitReplica(t, pe, fe)

	// The replica serves the new table and the peeled predicate without
	// reopening anything.
	if got := resultString(t, fp, "SELECT s FROM b"); got != "fresh\n" {
		t.Fatalf("replica read of post-open table: %q", got)
	}
	if got := resultString(t, fp, "SELECT v FROM a WHERE v > 5"); got != want {
		t.Fatalf("replica read after peel:\ngot %q\nwant %q", got, want)
	}
}

// TestReplicaProxyRequiresKeyFile: a replica data dir without the
// primary's key file must refuse to open, not mint fresh keys that can
// never unseal the primary's metadata.
func TestReplicaProxyRequiresKeyFile(t *testing.T) {
	primDir := t.TempDir()
	eng, err := single.Open(primDir, sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := replicated.WrapPrimary(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	if _, err := NewOnEngine(pe, Options{HOMBits: 256, DataDir: primDir}); err != nil {
		t.Fatal(err)
	}

	folDir := t.TempDir()
	fe, err := replicated.OpenFollower(folDir, pe.Addr(), sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	if _, err := NewOnEngine(fe, Options{HOMBits: 256, DataDir: folDir}); err == nil {
		t.Fatal("replica proxy opened without the primary's key file")
	}
}
