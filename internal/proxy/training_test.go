package proxy

import (
	"testing"

	"repro/internal/onion"
	"repro/internal/sqldb"
)

func TestTrainPlanAndDiscard(t *testing.T) {
	ddl := []string{
		"CREATE TABLE t (id INT, qty INT, note TEXT, amount INT)",
	}
	queries := []TrainQuery{
		{SQL: "SELECT note FROM t WHERE id = ?", Params: []sqldb.Value{sqldb.Int(1)}},
		{SQL: "SELECT id FROM t WHERE qty < ? LIMIT 3", Params: []sqldb.Value{sqldb.Int(5)}},
		{SQL: "SELECT SUM(amount) FROM t"},
	}
	plan, err := TrainPlan(ddl, queries)
	if err != nil {
		t.Fatal(err)
	}

	// id: equality only -> Eq only. qty: order -> Eq+Ord. note:
	// projection -> Eq. amount: sum -> Eq+Add.
	want := map[string][]onion.Onion{
		"t.id":     {onion.Eq},
		"t.qty":    {onion.Eq, onion.Ord},
		"t.note":   {onion.Eq},
		"t.amount": {onion.Eq, onion.Add},
	}
	for col, onions := range want {
		got := plan[col]
		if len(got) != len(onions) {
			t.Fatalf("%s: plan %v, want %v", col, got, onions)
		}
		for i := range onions {
			if got[i] != onions[i] {
				t.Fatalf("%s: plan %v, want %v", col, got, onions)
			}
		}
	}

	// A proxy built with the plan discards unneeded onions and still
	// answers the trained queries.
	db := sqldb.New()
	p, err := New(db, Options{HOMBits: 256, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ddl {
		mustExec(t, p, q)
	}
	mustExec(t, p, "INSERT INTO t (id, qty, note, amount) VALUES (1, 3, 'hello', 100), (2, 9, 'bye', 50)")
	res := mustExec(t, p, "SELECT note FROM t WHERE id = ?", sqldb.Int(1))
	if res.Rows[0][0].S != "hello" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, p, "SELECT id FROM t WHERE qty < ? LIMIT 3", sqldb.Int(5))
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, p, "SELECT SUM(amount) FROM t")
	if res.Rows[0][0].I != 150 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}

	// Untrained query classes on discarded onions fail cleanly.
	if _, err := p.Execute("SELECT id FROM t WHERE note LIKE '%hello%'"); err == nil {
		t.Fatal("search on a column without a Search onion should fail")
	}
	if _, err := p.Execute("SELECT id FROM t WHERE amount > 10 LIMIT 1"); err == nil {
		t.Fatal("order on a column without an Ord onion should fail")
	}

	// Storage shrinks: a planned column set stores fewer server columns.
	cm := p.Table("t").Col("note")
	if cm.HasOnion(onion.Search) || cm.HasOnion(onion.Ord) || cm.HasOnion(onion.JAdj) {
		t.Fatal("plan did not discard unneeded onions")
	}
}

func TestPlanStorageReduction(t *testing.T) {
	ddl := []string{"CREATE TABLE t (a INT, b INT, c TEXT)"}
	queries := []TrainQuery{{SQL: "SELECT c FROM t WHERE a = ?", Params: []sqldb.Value{sqldb.Int(1)}}}
	plan, err := TrainPlan(ddl, queries)
	if err != nil {
		t.Fatal(err)
	}

	load := func(opts Options) int {
		db := sqldb.New()
		p, err := New(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, p, ddl[0])
		for i := 0; i < 20; i++ {
			mustExec(t, p, "INSERT INTO t (a, b, c) VALUES (?, ?, ?)",
				sqldb.Int(int64(i)), sqldb.Int(int64(i*7)), sqldb.Text("some text payload"))
		}
		return db.SizeBytes()
	}
	full := load(Options{HOMBits: 256})
	planned := load(Options{HOMBits: 256, Plan: plan})
	if planned >= full {
		t.Fatalf("planned storage %d not smaller than full %d", planned, full)
	}
	if float64(planned) > 0.5*float64(full) {
		t.Fatalf("expected large reduction, got %d vs %d", planned, full)
	}
}
