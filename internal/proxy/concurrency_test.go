package proxy

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sqldb"
)

// TestConcurrentQueriesDuringAdjustment hammers the proxy from many
// goroutines while onion adjustments race with steady-state queries; every
// result must still be exact. Run with -race in CI.
func TestConcurrentQueriesDuringAdjustment(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE acct (id INT PRIMARY KEY, owner TEXT, bal INT)")
	const rows = 40
	for i := 0; i < rows; i++ {
		mustExec(t, p, "INSERT INTO acct (id, owner, bal) VALUES (?, ?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("owner-%d", i%5)), sqldb.Int(int64(i*100)))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch (g + i) % 4 {
				case 0: // equality (forces DET adjustment on first use)
					res, err := p.Execute("SELECT bal FROM acct WHERE id = ?", sqldb.Int(int64(i%rows)))
					if err != nil {
						errs <- err
						return
					}
					if len(res.Rows) != 1 || res.Rows[0][0].I != int64((i%rows)*100) {
						errs <- fmt.Errorf("bad equality result: %v", res.Rows)
						return
					}
				case 1: // range (forces OPE adjustment)
					if _, err := p.Execute("SELECT id FROM acct WHERE bal > ?", sqldb.Int(2000)); err != nil {
						errs <- err
						return
					}
				case 2: // aggregation over HOM
					res, err := p.Execute("SELECT COUNT(*) FROM acct WHERE owner = ?", sqldb.Text("owner-1"))
					if err != nil {
						errs <- err
						return
					}
					if res.Rows[0][0].I != rows/5 {
						errs <- fmt.Errorf("bad count: %v", res.Rows[0][0])
						return
					}
				case 3: // projection only
					if _, err := p.Execute("SELECT owner FROM acct WHERE id = ?", sqldb.Int(int64(i%rows))); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Global invariant after the storm.
	res := mustExec(t, p, "SELECT SUM(bal) FROM acct")
	want := int64(0)
	for i := 0; i < rows; i++ {
		want += int64(i * 100)
	}
	if res.Rows[0][0].I != want {
		t.Fatalf("sum = %v, want %d", res.Rows[0][0], want)
	}
}

// TestConcurrentBulkInsertSelect drives many goroutines issuing multi-row
// INSERTs through the batched, parallel pipeline while others SELECT over
// the same table (forcing DET/OPE adjustments mid-load); counts and sums
// must come out exact. Run with -race in CI.
func TestConcurrentBulkInsertSelect(t *testing.T) {
	db := sqldb.New()
	p, err := New(db, Options{HOMBits: 256, BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, p, "CREATE TABLE bulk (k INT, grp TEXT, val INT)")

	const (
		writers     = 6
		stmtsPerGor = 5
		rowsPerStmt = 12
		totalRows   = writers * stmtsPerGor * rowsPerStmt
	)
	buildInsert := func(base int) string {
		var sb strings.Builder
		sb.WriteString("INSERT INTO bulk (k, grp, val) VALUES ")
		for r := 0; r < rowsPerStmt; r++ {
			if r > 0 {
				sb.WriteString(", ")
			}
			k := base + r
			fmt.Fprintf(&sb, "(%d, 'g%d', %d)", k, k%4, k*3)
		}
		return sb.String()
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+4)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < stmtsPerGor; s++ {
				base := (g*stmtsPerGor + s) * rowsPerStmt
				if _, err := p.Execute(buildInsert(base)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := p.Execute("SELECT COUNT(*) FROM bulk"); err != nil {
						errs <- err
						return
					}
				case 1: // forces OPE adjustment concurrently with bulk loads
					if _, err := p.Execute("SELECT k FROM bulk WHERE val > ?", sqldb.Int(100)); err != nil {
						errs <- err
						return
					}
				case 2: // forces DET adjustment
					if _, err := p.Execute("SELECT val FROM bulk WHERE grp = ?", sqldb.Text("g1")); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res := mustExec(t, p, "SELECT COUNT(*) FROM bulk")
	if res.Rows[0][0].I != totalRows {
		t.Fatalf("count = %v, want %d", res.Rows[0][0], totalRows)
	}
	res = mustExec(t, p, "SELECT SUM(val) FROM bulk")
	want := int64(0)
	for k := 0; k < totalRows; k++ {
		want += int64(k * 3)
	}
	if res.Rows[0][0].I != want {
		t.Fatalf("sum = %v, want %d", res.Rows[0][0], want)
	}
	// Every k must be present exactly once, in decryptable form.
	res = mustExec(t, p, "SELECT k FROM bulk ORDER BY k")
	if len(res.Rows) != totalRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), totalRows)
	}
	for i, row := range res.Rows {
		if row[0].I != int64(i) {
			t.Fatalf("row %d: k = %v", i, row[0])
		}
	}
}

// TestConcurrentInserts checks rid allocation and index maintenance under
// parallel writers.
func TestConcurrentInserts(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE log (k INT, msg TEXT)")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := p.Execute("INSERT INTO log (k, msg) VALUES (?, ?)",
					sqldb.Int(int64(g*1000+i)), sqldb.Text("entry")); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, p, "SELECT COUNT(*) FROM log")
	if res.Rows[0][0].I != 200 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
