// Durable proxy state. CryptDB's security argument assumes the proxy's
// per-column onion levels and key material survive restarts — a proxy that
// forgets that it peeled a column's Ord onion to OPE, or loses the Paillier
// primes behind an Add onion, can never decrypt the rows it stored. Two
// artifacts make the proxy restartable:
//
//  1. A key file (<data-dir>/proxy-keys.json, mode 0600) holding the master
//     key MK and the Paillier primes. It is written once when the data
//     directory is initialized and never changes; every column key
//     re-derives from MK (Equation 1), so no other secret needs to persist.
//     Protect it like a TLS private key — a production deployment would
//     wrap it with a KMS.
//
//  2. A sealed metadata blob — the serialization of every TableMeta /
//     ColumnMeta: logical-to-anonymous name maps, onion stacks and current
//     layers, staleness, join-key identities, annotations. It is encrypted
//     (AES-256-GCM under a key derived from MK) and handed to the DBMS's
//     write-ahead log, attached to the same WAL batch as the server-side
//     statement that invalidates the previous version (sqldb.ExecWithMeta).
//     Sealing keeps the DBMS oblivious to logical schema names, preserving
//     the paper's anonymization; riding the WAL makes an onion adjustment
//     and the metadata recording it atomic across crashes: recovery can
//     never observe "RND stripped but proxy still thinks RND" or the
//     reverse.
//
// Join keys and OPE-JOIN keys are persisted by *reference*, not value: a
// column's effective JOIN-ADJ key is always some column's derived key, so
// the blob stores which column's (joinRefT/joinRefC) and restore re-derives
// it from MK. No per-column secret ever leaves the proxy.
package proxy

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/crypto/joinadj"
	"repro/internal/fsutil"
	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

const (
	keyFileName  = "proxy-keys.json"
	metaSealInfo = "proxy-meta-seal"
	metaVersion  = 1
)

// keyFile is the once-written secret material of a data directory.
type keyFile struct {
	Version   int    `json:"version"`
	MasterKey []byte `json:"master_key"`
	HomBits   int    `json:"hom_bits"`
	HomP      []byte `json:"hom_p"`
	HomQ      []byte `json:"hom_q"`
}

// metaState is the JSON form of the proxy's dynamic metadata (the sealed
// blob's plaintext).
type metaState struct {
	Version int         `json:"version"`
	NTab    int         `json:"ntab"`
	Tables  []metaTable `json:"tables"`
}

type metaTable struct {
	Logical   string          `json:"logical"`
	Anon      string          `json:"anon"`
	SpeaksFor []metaSpeaksFor `json:"speaks_for,omitempty"`
	Cols      []metaColumn    `json:"cols"`
}

// metaSpeaksFor mirrors sqlparser.SpeaksForAnnot with the optional IF
// predicate rendered to SQL text (an AST is not JSON-serializable); restore
// re-parses it.
type metaSpeaksFor struct {
	AColumn string `json:"a_column,omitempty"`
	AConst  string `json:"a_const,omitempty"`
	AType   string `json:"a_type"`
	BColumn string `json:"b_column"`
	BType   string `json:"b_type"`
	If      string `json:"if,omitempty"`
}

type metaOnion struct {
	Stack []string `json:"stack"`
	Cur   int      `json:"cur"`
}

type metaColumn struct {
	Logical        string                 `json:"logical"`
	Anon           string                 `json:"anon"`
	Type           int                    `json:"type"`
	Plain          bool                   `json:"plain,omitempty"`
	MinEnc         string                 `json:"min_enc,omitempty"`
	EncFor         *sqlparser.EncForAnnot `json:"enc_for,omitempty"`
	Primary        bool                   `json:"primary,omitempty"`
	Onions         map[string]metaOnion   `json:"onions,omitempty"`
	Stale          []string               `json:"stale,omitempty"`
	UsedSearch     bool                   `json:"used_search,omitempty"`
	UsedSum        bool                   `json:"used_sum,omitempty"`
	NeedsPlaintext bool                   `json:"needs_plaintext,omitempty"`
	OpeSharedLabel string                 `json:"ope_shared_label,omitempty"`
	JoinRefT       string                 `json:"join_ref_t,omitempty"`
	JoinRefC       string                 `json:"join_ref_c,omitempty"`
	JoinRootT      string                 `json:"join_root_t,omitempty"`
	JoinRootC      string                 `json:"join_root_c,omitempty"`
	WantIndex      bool                   `json:"want_index,omitempty"`
	WantUnique     bool                   `json:"want_unique,omitempty"`
	WantUsing      string                 `json:"want_using,omitempty"`
	IdxEq          bool                   `json:"idx_eq,omitempty"`
	IdxJadj        bool                   `json:"idx_jadj,omitempty"`
	IdxOrd         bool                   `json:"idx_ord,omitempty"`
}

// persistent reports whether this proxy was opened with a data directory.
func (p *Proxy) persistent() bool { return p.dataDir != "" }

// stmtApplied reports whether an erroring statement nevertheless applied
// in memory (a WAL durability failure). The proxy's metadata transitions
// must then be kept, not rolled back: memory state and would-have-been
// disk state moved together (data and sealed metadata share one WAL
// batch), so a rollback would desynchronize the layer bookkeeping from
// the ciphertexts — e.g. re-running a decrypt_rnd adjustment over
// already-peeled DET values.
func stmtApplied(err error) bool {
	var de *sqldb.DurabilityError
	return errors.As(err, &de)
}

// loadOrCreateKeyFile returns the directory's key material, generating and
// writing it on first use. homBits is only consulted when generating.
func loadOrCreateKeyFile(dir string, homBits int) (*keyFile, bool, error) {
	path := filepath.Join(dir, keyFileName)
	data, err := os.ReadFile(path)
	if err == nil {
		var kf keyFile
		if err := json.Unmarshal(data, &kf); err != nil {
			return nil, false, fmt.Errorf("proxy: corrupt key file %s: %w", path, err)
		}
		if kf.Version != 1 {
			return nil, false, fmt.Errorf("proxy: key file version %d not supported", kf.Version)
		}
		if homBits != 0 && homBits != kf.HomBits {
			return nil, false, fmt.Errorf("proxy: data dir was initialized with HOMBits=%d, requested %d", kf.HomBits, homBits)
		}
		return &kf, false, nil
	}
	if !os.IsNotExist(err) {
		return nil, false, err
	}
	return nil, true, nil
}

// writeKeyFile writes key material atomically and durably with owner-only
// permissions. Losing the key file loses every ciphertext in the store,
// so the install is fsynced end to end — a crash right after first boot
// must not leave a data directory whose keys evaporated with the page
// cache.
func writeKeyFile(dir string, kf *keyFile) error {
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return err
	}
	if err := fsutil.InstallFile(filepath.Join(dir, keyFileName), data, 0o600); err != nil {
		return fmt.Errorf("proxy: installing key file: %w", err)
	}
	return nil
}

//
// Sealing
//

func (p *Proxy) metaAEAD() (cipher.AEAD, error) {
	block, err := aes.NewCipher(p.mk.DeriveLabel(metaSealInfo))
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// sealMeta encrypts a metadata blob so the DBMS (and its WAL files) store
// only ciphertext: the schema anonymization survives durability.
func (p *Proxy) sealMeta(plain []byte) ([]byte, error) {
	aead, err := p.metaAEAD()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return aead.Seal(nonce, nonce, plain, nil), nil
}

func (p *Proxy) openSealedMeta(sealed []byte) ([]byte, error) {
	aead, err := p.metaAEAD()
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, fmt.Errorf("proxy: sealed metadata too short")
	}
	plain, err := aead.Open(nil, sealed[:aead.NonceSize()], sealed[aead.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("proxy: unsealing metadata (wrong key file for this data dir?): %w", err)
	}
	return plain, nil
}

//
// Building the blob
//

// sealedMetaLocked serializes and seals the current metadata. Callers hold
// p.mu (read suffices: the fields read under it only mutate under the
// write lock; per-column volatile fields are read under cm.mu). Returns
// nil for a non-persistent proxy.
func (p *Proxy) sealedMetaLocked() ([]byte, error) {
	if !p.persistent() {
		return nil, nil
	}
	ms := metaState{Version: metaVersion, NTab: p.nTab}
	names := make([]string, 0, len(p.tables))
	for n := range p.tables {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic blobs (helps tests and diffing)
	for _, name := range names {
		tm := p.tables[name]
		mt := metaTable{Logical: tm.Logical, Anon: tm.Anon}
		for _, sf := range tm.SpeaksFor {
			msf := metaSpeaksFor{
				AColumn: sf.AColumn, AConst: sf.AConst, AType: sf.AType,
				BColumn: sf.BColumn, BType: sf.BType,
			}
			if sf.If != nil {
				msf.If = sf.If.String()
			}
			mt.SpeaksFor = append(mt.SpeaksFor, msf)
		}
		for _, cm := range tm.Cols {
			mc := metaColumn{
				Logical: cm.Logical, Anon: cm.Anon, Type: int(cm.Type),
				Plain: cm.Plain, MinEnc: string(cm.MinEnc), EncFor: cm.EncFor,
				Primary:    cm.Primary,
				UsedSearch: cm.UsedSearch, UsedSum: cm.UsedSum, NeedsPlaintext: cm.NeedsPlaintext,
				WantIndex: cm.wantIndex, WantUnique: cm.wantUnique, WantUsing: cm.wantUsing,
				IdxEq: cm.idxEq, IdxJadj: cm.idxJadj, IdxOrd: cm.idxOrd,
				JoinRefT: cm.joinRefT, JoinRefC: cm.joinRefC,
			}
			if len(cm.Onions) > 0 {
				mc.Onions = make(map[string]metaOnion, len(cm.Onions))
				for o, st := range cm.Onions {
					stack := make([]string, len(st.Stack))
					for i, l := range st.Stack {
						stack[i] = string(l)
					}
					mc.Onions[string(o)] = metaOnion{Stack: stack, Cur: st.Cur}
				}
			}
			cm.mu.Lock()
			for o, s := range cm.Stale {
				if s {
					mc.Stale = append(mc.Stale, string(o))
				}
			}
			mc.OpeSharedLabel = cm.opeSharedLabel
			cm.mu.Unlock()
			// Walk to the group root without path compression: builders
			// may run under the read lock.
			root := cm
			for root.joinGroup != root {
				root = root.joinGroup
			}
			mc.JoinRootT, mc.JoinRootC = root.Table.Logical, root.Logical
			mt.Cols = append(mt.Cols, mc)
		}
		ms.Tables = append(ms.Tables, mt)
	}
	plain, err := json.Marshal(ms)
	if err != nil {
		return nil, err
	}
	return p.sealMeta(plain)
}

// persistMetaLocked durably commits the current metadata in its own WAL
// batch. Used for transitions with no accompanying server statement (usage
// flags, OPE-JOIN declarations, resync completion, group-root moves).
// Callers hold p.mu.
func (p *Proxy) persistMetaLocked() error {
	if !p.persistent() {
		return nil
	}
	p.metaMu.Lock()
	defer p.metaMu.Unlock()
	sealed, err := p.sealedMetaLocked()
	if err != nil {
		return err
	}
	return p.db.SetMeta(sealed)
}

//
// Restoring
//

// restoreState rebuilds p.tables from a sealed blob recovered by the DBMS.
func (p *Proxy) restoreState(sealed []byte) error {
	plain, err := p.openSealedMeta(sealed)
	if err != nil {
		return err
	}
	var ms metaState
	if err := json.Unmarshal(plain, &ms); err != nil {
		return fmt.Errorf("proxy: decoding metadata: %w", err)
	}
	if ms.Version != metaVersion {
		return fmt.Errorf("proxy: metadata version %d not supported", ms.Version)
	}
	p.nTab = ms.NTab

	for _, mt := range ms.Tables {
		if p.db.Table(mt.Anon) == nil {
			return fmt.Errorf("proxy: metadata names table %s (%s) but the DBMS has no such table — data dir mismatch?",
				mt.Logical, mt.Anon)
		}
		tm := &TableMeta{
			Logical: mt.Logical,
			Anon:    mt.Anon,
			byName:  make(map[string]*ColumnMeta),
			nextRid: 1,
		}
		for _, msf := range mt.SpeaksFor {
			sf := sqlparser.SpeaksForAnnot{
				AColumn: msf.AColumn, AConst: msf.AConst, AType: msf.AType,
				BColumn: msf.BColumn, BType: msf.BType,
			}
			if msf.If != "" {
				pred, err := parsePredicate(msf.If)
				if err != nil {
					return fmt.Errorf("proxy: restoring SPEAKS FOR predicate %q: %w", msf.If, err)
				}
				sf.If = pred
			}
			tm.SpeaksFor = append(tm.SpeaksFor, sf)
		}
		for _, mc := range mt.Cols {
			cm := &ColumnMeta{
				Logical: mc.Logical, Anon: mc.Anon,
				Type: sqlparser.ColType(mc.Type), Plain: mc.Plain,
				MinEnc: onion.Layer(mc.MinEnc), EncFor: mc.EncFor, Primary: mc.Primary,
				Table:      tm,
				Onions:     make(map[onion.Onion]*onion.State),
				Stale:      make(map[onion.Onion]bool),
				UsedSearch: mc.UsedSearch, UsedSum: mc.UsedSum, NeedsPlaintext: mc.NeedsPlaintext,
				joinRefT: mc.JoinRefT, joinRefC: mc.JoinRefC,
				opeSharedLabel: mc.OpeSharedLabel,
				wantIndex:      mc.WantIndex, wantUnique: mc.WantUnique, wantUsing: mc.WantUsing,
				idxEq: mc.IdxEq, idxJadj: mc.IdxJadj, idxOrd: mc.IdxOrd,
			}
			cm.joinGroup = cm
			if cm.joinRefT == "" {
				cm.joinRefT, cm.joinRefC = tm.Logical, cm.Logical
			}
			if cm.opeSharedLabel != "" {
				cm.opeShared = p.mk.DeriveLabel(cm.opeSharedLabel)
			}
			for o, mo := range mc.Onions {
				stack := make([]onion.Layer, len(mo.Stack))
				for i, l := range mo.Stack {
					stack[i] = onion.Layer(l)
				}
				if mo.Cur < 0 || mo.Cur >= len(stack) {
					return fmt.Errorf("proxy: column %s.%s onion %s: layer index %d out of range",
						mt.Logical, mc.Logical, o, mo.Cur)
				}
				cm.Onions[onion.Onion(o)] = &onion.State{Stack: stack, Cur: mo.Cur}
			}
			for _, o := range mc.Stale {
				cm.Stale[onion.Onion(o)] = true
			}
			tm.Cols = append(tm.Cols, cm)
			tm.byName[cm.Logical] = cm
		}
		p.tables[tm.Logical] = tm
	}

	// Second pass: join groups and effective join keys. Columns whose
	// effective key is the same reference share one *joinadj.Key, so the
	// steady-state pointer comparison in adjNeeded stays meaningful.
	derived := make(map[string]*joinadj.Key)
	lookup := func(t, c string) *ColumnMeta {
		if tm := p.tables[t]; tm != nil {
			return tm.Col(c)
		}
		return nil
	}
	for _, mt := range ms.Tables {
		tm := p.tables[mt.Logical]
		for _, mc := range mt.Cols {
			cm := tm.Col(mc.Logical)
			if mc.JoinRootT != "" {
				if root := lookup(mc.JoinRootT, mc.JoinRootC); root != nil {
					cm.joinGroup = root
				}
			}
			ref := lookup(cm.joinRefT, cm.joinRefC)
			if ref == nil {
				return fmt.Errorf("proxy: column %s.%s join key references missing column %s.%s",
					tm.Logical, cm.Logical, cm.joinRefT, cm.joinRefC)
			}
			if ref != cm || cm.HasOnion(onion.JAdj) {
				key := ref.Table.Logical + "\x00" + ref.Logical
				jk := derived[key]
				if jk == nil {
					jk = joinadj.DeriveKey(p.mk.Derive(ref.Table.Logical, ref.Logical,
						string(onion.JAdj), string(onion.JOIN)))
					derived[key] = jk
				}
				cm.joinKey = jk
			}
		}
	}

	// nextRid: recomputed from the durable data rather than persisted per
	// insert. MAX(rid) is served from the primary-key index endpoint.
	for _, tm := range p.tables {
		res, err := p.db.ExecSQL("SELECT MAX(rid) FROM " + tm.Anon)
		if err != nil {
			return fmt.Errorf("proxy: recovering row-id counter for %s: %w", tm.Logical, err)
		}
		if len(res.Rows) == 1 && !res.Rows[0][0].IsNull() {
			// Stored atomically: inserts bump the counter with
			// atomic.AddInt64, and restore can overlap a warm-up query on
			// another connection.
			atomic.StoreInt64(&tm.nextRid, res.Rows[0][0].I+1)
		}
	}
	return nil
}

// parsePredicate re-parses a rendered WHERE-style predicate.
func parsePredicate(s string) (sqlparser.Expr, error) {
	st, err := sqlparser.Parse("SELECT * FROM t WHERE " + s)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparser.SelectStmt)
	if !ok || sel.Where == nil {
		return nil, fmt.Errorf("predicate did not parse")
	}
	return sel.Where, nil
}
