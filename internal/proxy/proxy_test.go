package proxy

import (
	"strings"
	"testing"

	"repro/internal/onion"
	"repro/internal/sqldb"
)

func newTestProxy(t *testing.T) *Proxy {
	t.Helper()
	db := sqldb.New()
	p, err := New(db, Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustExec(t *testing.T, p *Proxy, sql string, params ...sqldb.Value) *sqldb.Result {
	t.Helper()
	res, err := p.Execute(sql, params...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func seedEmployees(t *testing.T, p *Proxy) {
	t.Helper()
	mustExec(t, p, "CREATE TABLE employees (id INT PRIMARY KEY, name TEXT, dept TEXT, salary INT)")
	rows := []string{
		"(23, 'Alice', 'sales', 60000)",
		"(2, 'Bob', 'sales', 55000)",
		"(3, 'Carol', 'eng', 80000)",
		"(4, 'Dave', 'eng', 75000)",
		"(5, 'Eve', 'hr', 50000)",
	}
	for _, r := range rows {
		mustExec(t, p, "INSERT INTO employees (id, name, dept, salary) VALUES "+r)
	}
}

func TestProjectionOnly(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT id, name FROM employees")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// No predicates: every onion must still be at its outermost layer.
	cm := p.Table("employees").Col("name")
	if cm.Onions[onion.Eq].Current() != onion.RND {
		t.Fatalf("projection lowered Eq onion to %s", cm.Onions[onion.Eq].Current())
	}
	found := false
	for _, r := range res.Rows {
		if r[1].S == "Alice" && r[0].I == 23 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing row: %v", res.Rows)
	}
}

func TestEqualitySelect(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT id FROM employees WHERE name = 'Alice'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 23 {
		t.Fatalf("rows = %v", res.Rows)
	}
	cm := p.Table("employees").Col("name")
	if cm.Onions[onion.Eq].Current() != onion.DET {
		t.Fatalf("Eq onion at %s, want DET", cm.Onions[onion.Eq].Current())
	}
	// Ord onion untouched: only the needed class was revealed (§2.1).
	if cm.Onions[onion.Ord].Current() != onion.RND {
		t.Fatalf("Ord onion at %s, want RND", cm.Onions[onion.Ord].Current())
	}
	// Repeat query: steady state, no further adjustment.
	adjBefore := p.Stats().OnionAdjustments
	mustExec(t, p, "SELECT COUNT(*) FROM employees WHERE name = 'Bob'")
	if p.Stats().OnionAdjustments != adjBefore {
		t.Fatal("steady-state query triggered adjustment")
	}
}

func TestRangeSelect(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT name FROM employees WHERE salary > 60000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	cm := p.Table("employees").Col("salary")
	if cm.Onions[onion.Ord].Current() != onion.OPE {
		t.Fatalf("Ord at %s", cm.Onions[onion.Ord].Current())
	}
	res = mustExec(t, p, "SELECT name FROM employees WHERE salary BETWEEN 55000 AND 75000")
	if len(res.Rows) != 3 {
		t.Fatalf("between rows = %v", res.Rows)
	}
	res = mustExec(t, p, "SELECT name FROM employees WHERE 70000 < salary")
	if len(res.Rows) != 2 {
		t.Fatalf("flipped rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary), AVG(salary) FROM employees")
	r := res.Rows[0]
	if r[0].I != 5 || r[1].I != 320000 || r[2].I != 50000 || r[3].I != 80000 || r[4].I != 64000 {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestGroupByHaving(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT dept, COUNT(*), SUM(salary) FROM employees GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "eng" || res.Rows[0][2].I != 155000 {
		t.Fatalf("eng row = %v", res.Rows[0])
	}
}

func TestHavingOverSumInProxy(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT dept FROM employees GROUP BY dept HAVING SUM(salary) > 120000")
	if len(res.Rows) != 2 { // sales 115000? no: 60000+55000=115000; eng 155000; hr 50000
		// eng only
		if len(res.Rows) != 1 || res.Rows[0][0].S != "eng" {
			t.Fatalf("rows = %v", res.Rows)
		}
	}
}

func TestOrderByInProxy(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT name FROM employees ORDER BY salary DESC")
	if res.Rows[0][0].S != "Carol" || res.Rows[4][0].S != "Eve" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// No LIMIT: in-proxy sort must NOT reveal OPE (§3.5.1).
	cm := p.Table("employees").Col("salary")
	if cm.Onions[onion.Ord].Current() != onion.RND {
		t.Fatalf("in-proxy sort revealed Ord onion: %s", cm.Onions[onion.Ord].Current())
	}
}

func TestOrderByWithLimitRevealsOPE(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT name FROM employees ORDER BY salary DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Carol" || res.Rows[1][0].S != "Dave" {
		t.Fatalf("rows = %v", res.Rows)
	}
	cm := p.Table("employees").Col("salary")
	if cm.Onions[onion.Ord].Current() != onion.OPE {
		t.Fatalf("ORDER BY LIMIT should reveal OPE, at %s", cm.Onions[onion.Ord].Current())
	}
}

func TestJoin(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "CREATE TABLE depts (dname TEXT, floor INT)")
	mustExec(t, p, "INSERT INTO depts (dname, floor) VALUES ('sales', 1), ('eng', 2), ('hr', 3)")
	res := mustExec(t, p, "SELECT e.name, d.floor FROM employees e JOIN depts d ON e.dept = d.dname WHERE e.id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Carol" || res.Rows[0][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// JAdj onions at JOIN on both columns, same effective key.
	c1 := p.Table("employees").Col("dept")
	c2 := p.Table("depts").Col("dname")
	if c1.Onions[onion.JAdj].Current() != onion.JOIN || c2.Onions[onion.JAdj].Current() != onion.JOIN {
		t.Fatal("JAdj onions not adjusted")
	}
	if c1.groupRoot() != c2.groupRoot() {
		t.Fatal("join transitivity group not merged")
	}
	// Insert after adjustment still joins correctly.
	mustExec(t, p, "INSERT INTO employees (id, name, dept, salary) VALUES (9, 'Zed', 'hr', 1)")
	res = mustExec(t, p, "SELECT d.floor FROM employees e JOIN depts d ON e.dept = d.dname WHERE e.id = 9")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("post-adjust insert join = %v", res.Rows)
	}
}

func TestJoinTransitivity(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE ta (v TEXT)")
	mustExec(t, p, "CREATE TABLE tb (v TEXT)")
	mustExec(t, p, "CREATE TABLE tc (v TEXT)")
	for _, tb := range []string{"ta", "tb", "tc"} {
		mustExec(t, p, "INSERT INTO "+tb+" (v) VALUES ('x'), ('y')")
	}
	mustExec(t, p, "SELECT COUNT(*) FROM ta JOIN tb ON ta.v = tb.v")
	mustExec(t, p, "SELECT COUNT(*) FROM tb JOIN tc ON tb.v = tc.v")
	// Now A and C are in the same transitivity group (§3.4).
	res := mustExec(t, p, "SELECT COUNT(*) FROM ta JOIN tc ON ta.v = tc.v")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("transitive join count = %v", res.Rows[0][0])
	}
}

func TestLikeSearch(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE messages (id INT, msg TEXT)")
	mustExec(t, p, "INSERT INTO messages (id, msg) VALUES (1, 'hello from alice'), (2, 'bob says hi'), (3, 'alice and bob')")
	res := mustExec(t, p, "SELECT id FROM messages WHERE msg LIKE '%alice%'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, p, "SELECT id FROM messages WHERE msg NOT LIKE '%alice%'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("not-like rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT DISTINCT dept FROM employees")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT COUNT(DISTINCT dept) FROM employees")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestUpdateConst(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "UPDATE employees SET dept = 'ops' WHERE id = 5")
	res := mustExec(t, p, "SELECT dept FROM employees WHERE id = 5")
	if res.Rows[0][0].S != "ops" {
		t.Fatalf("dept = %v", res.Rows[0][0])
	}
}

func TestUpdateIncrementThenProject(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "UPDATE employees SET salary = salary + 1000 WHERE id = 23")
	// Projection after increment reads the Add onion (§3.3).
	res := mustExec(t, p, "SELECT salary FROM employees WHERE id = 23")
	if res.Rows[0][0].I != 61000 {
		t.Fatalf("salary = %v", res.Rows[0][0])
	}
}

func TestUpdateIncrementThenCompareResyncs(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "UPDATE employees SET salary = salary + 1000 WHERE id = 23")
	// Comparison on a stale column triggers the two-query resync (§3.3).
	res := mustExec(t, p, "SELECT name FROM employees WHERE salary > 60500")
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r[0].S] = true
	}
	if !names["Alice"] || !names["Carol"] || !names["Dave"] || len(names) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if p.Stats().Resyncs == 0 {
		t.Fatal("expected a resync")
	}
	// SUM still correct after resync.
	res = mustExec(t, p, "SELECT SUM(salary) FROM employees")
	if res.Rows[0][0].I != 321000 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
}

func TestUpdateTwoQuery(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	// salary = salary * 2 is not HOM-computable: read-modify-write path.
	mustExec(t, p, "UPDATE employees SET salary = salary * 2 WHERE dept = 'hr'")
	res := mustExec(t, p, "SELECT salary FROM employees WHERE id = 5")
	if res.Rows[0][0].I != 100000 {
		t.Fatalf("salary = %v", res.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "DELETE FROM employees WHERE dept = 'eng'")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	cnt := mustExec(t, p, "SELECT COUNT(*) FROM employees")
	if cnt.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", cnt.Rows[0][0])
	}
}

func TestInExpr(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT name FROM employees WHERE id IN (2, 3, 99)")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParams(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT name FROM employees WHERE id = ?", sqldb.Int(2))
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMinEncEnforced(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE cards (id INT, ccn TEXT MINENC DET)")
	mustExec(t, p, "INSERT INTO cards (id, ccn) VALUES (1, '4111-1111')")
	// Equality (DET) is allowed.
	mustExec(t, p, "SELECT id FROM cards WHERE ccn = '4111-1111'")
	// Order (OPE) violates the floor.
	if _, err := p.Execute("SELECT id FROM cards WHERE ccn > 'a' LIMIT 1"); err == nil {
		t.Fatal("MINENC DET should forbid OPE reveal")
	}
}

func TestPlainColumns(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE logs (id INT PLAIN, ts INT PLAIN, note TEXT)")
	mustExec(t, p, "INSERT INTO logs (id, ts, note) VALUES (1, 1000, 'secret'), (2, 2000, 'other')")
	// Arbitrary computation allowed on plain columns.
	res := mustExec(t, p, "SELECT id FROM logs WHERE ts % 3 = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnsupportedQueries(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	bad := []string{
		// computation + comparison (§6)
		"SELECT name FROM employees WHERE salary > id * 2 + 10",
		// bitwise over encrypted column (Fig 9)
		"SELECT name FROM employees WHERE salary & 4 = 4",
		// function over encrypted column in predicate
		"SELECT name FROM employees WHERE lower_fn(name) = 'alice'",
	}
	for _, sql := range bad {
		if _, err := p.Execute(sql); err == nil {
			t.Errorf("%s: want error", sql)
		}
	}
}

func TestNoPlaintextAtServer(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	// Force all onion states to move: equality, order, join-free.
	mustExec(t, p, "SELECT id FROM employees WHERE name = 'Alice'")
	mustExec(t, p, "SELECT name FROM employees WHERE salary > 60000")

	// Scan every byte the server stores; no plaintext may appear.
	leakWords := []string{"Alice", "Bob", "Carol", "Dave", "Eve", "sales", "eng", "hr", "employees", "name", "dept", "salary"}
	for _, tn := range p.DB().TableNames() {
		tbl := p.DB().Table(tn)
		if strings.Contains(strings.Join(leakWords, " "), tn) {
			t.Errorf("server table name %q leaks schema", tn)
		}
		res, err := p.DB().ExecSQL("SELECT * FROM " + tn)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range res.Columns {
			for _, w := range leakWords {
				if strings.Contains(strings.ToLower(col), strings.ToLower(w)) {
					t.Errorf("server column %q leaks %q", col, w)
				}
			}
		}
		for _, row := range res.Rows {
			for _, v := range row {
				s := v.String()
				for _, w := range leakWords {
					if strings.Contains(s, w) {
						t.Errorf("server value %q leaks %q", s, w)
					}
				}
				// Plaintext salaries must not appear as integers.
				if v.Kind == sqldb.KindInt {
					for _, sal := range []int64{60000, 55000, 80000, 75000, 50000} {
						if v.I == sal {
							t.Errorf("server stores plaintext integer %d", sal)
						}
					}
				}
			}
		}
		_ = tbl
	}
}

func TestTrainingMode(t *testing.T) {
	db := sqldb.New()
	p, err := New(db, Options{HOMBits: 256, Training: true})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, p, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, p, "SELECT a FROM t WHERE b = 'x'")
	mustExec(t, p, "SELECT a FROM t WHERE a < 5 LIMIT 1")
	mustExec(t, p, "SELECT a FROM t WHERE a > b * 2") // unsupported

	log := p.TrainingLog()
	var sawEq, sawOrd, sawWarn bool
	for _, ev := range log {
		if ev.Onion == onion.Eq && ev.Layer == onion.DET {
			sawEq = true
		}
		if ev.Onion == onion.Ord && ev.Layer == onion.OPE {
			sawOrd = true
		}
		if ev.Warning != "" {
			sawWarn = true
		}
	}
	if !sawEq || !sawOrd || !sawWarn {
		t.Fatalf("training log = %+v", log)
	}
	// Training must not touch the server.
	if got := db.Table("table1").RowCount(); got != 0 {
		t.Fatalf("training mode wrote %d rows", got)
	}
}

func TestIndexMaterialization(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "CREATE INDEX idx_name ON employees (name)")
	// Index waits for DET exposure (§3.3).
	cm := p.Table("employees").Col("name")
	if cm.idxEq {
		t.Fatal("index must not exist at RND")
	}
	mustExec(t, p, "SELECT id FROM employees WHERE name = 'Alice'")
	if !cm.idxEq {
		t.Fatal("index not materialized after DET adjustment")
	}
}

func TestNullHandling(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, p, "INSERT INTO t (a, b) VALUES (1, NULL), (NULL, 'x')")
	res := mustExec(t, p, "SELECT a, b FROM t WHERE b IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 || !res.Rows[0][1].IsNull() {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, p, "SELECT COUNT(a) FROM t")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestExpressionProjection(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	// Arithmetic over an encrypted column computed in-proxy (§3.5.1).
	res := mustExec(t, p, "SELECT salary * 2 + 10 AS double_pay FROM employees WHERE id = 23")
	if res.Rows[0][0].I != 120010 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
	if res.Columns[0] != "double_pay" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT * FROM employees WHERE id = 2")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].S != "Bob" || res.Rows[0][3].I != 55000 {
		t.Fatalf("row = %v", res.Rows[0])
	}
	if res.Columns[0] != "id" || res.Columns[3] != "salary" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestNegativeValues(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE bal (id INT, amount INT)")
	mustExec(t, p, "INSERT INTO bal (id, amount) VALUES (1, -500), (2, 300)")
	res := mustExec(t, p, "SELECT SUM(amount) FROM bal")
	if res.Rows[0][0].I != -200 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
	res = mustExec(t, p, "SELECT id FROM bal WHERE amount < 0")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTransactionsPassThrough(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "BEGIN")
	mustExec(t, p, "UPDATE employees SET dept = 'x' WHERE id = 2")
	mustExec(t, p, "ROLLBACK")
	res := mustExec(t, p, "SELECT dept FROM employees WHERE id = 2")
	if res.Rows[0][0].S != "sales" {
		t.Fatalf("rollback failed: %v", res.Rows[0][0])
	}
}

func TestDropTable(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "DROP TABLE employees")
	if _, err := p.Execute("SELECT * FROM employees"); err == nil {
		t.Fatal("dropped table still queryable")
	}
}

func TestOrderByTextInProxy(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	res := mustExec(t, p, "SELECT name FROM employees ORDER BY name")
	want := []string{"Alice", "Bob", "Carol", "Dave", "Eve"}
	for i, w := range want {
		if res.Rows[i][0].S != w {
			t.Fatalf("rows = %v", res.Rows)
		}
	}
}

func TestGroupByIntKey(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE orders (cust INT, total INT)")
	mustExec(t, p, "INSERT INTO orders (cust, total) VALUES (1, 10), (1, 20), (2, 5)")
	res := mustExec(t, p, "SELECT cust, SUM(total) FROM orders GROUP BY cust ORDER BY cust")
	if len(res.Rows) != 2 || res.Rows[0][1].I != 30 || res.Rows[1][1].I != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestServerPlanCounters checks that proxy stats surface how the server
// executed the rewritten queries: in the default configuration every
// SELECT the proxy emits runs on the compiled pipeline, and an encrypted
// equi-join (DET onions on both sides) executes as a hash join.
func TestServerPlanCounters(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "CREATE TABLE depts (dept TEXT, budget INT)")
	for _, r := range []string{"('sales', 100)", "('eng', 200)", "('hr', 300)"} {
		mustExec(t, p, "INSERT INTO depts (dept, budget) VALUES "+r)
	}
	res := mustExec(t, p, "SELECT employees.name, depts.budget FROM employees, depts WHERE employees.dept = depts.dept")
	if len(res.Rows) != 5 {
		t.Fatalf("join rows = %d, want 5", len(res.Rows))
	}
	st := p.Stats().Server
	if st.Compiled == 0 {
		t.Fatalf("no compiled executions surfaced: %+v", st)
	}
	if st.HashJoins == 0 {
		t.Fatalf("encrypted equi-join did not hash-join: %+v", st)
	}
}
