package proxy

import (
	"fmt"
	"math/big"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/crypto/hom"
	"repro/internal/crypto/joinadj"
	"repro/internal/crypto/keys"
	"repro/internal/crypto/search"
	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/store/single"
)

// Options configures a Proxy.
type Options struct {
	// HOMBits is the Paillier modulus size; the paper's 1024 (2048-bit
	// ciphertexts) is the default. Tests may shrink it.
	HOMBits int
	// HOMPrecompute pre-fills this many r^n values (§3.5.2); the paper
	// uses 30,000.
	HOMPrecompute int
	// DisableOPECache turns off the OPE node cache (for the ablation
	// benchmark reproducing the paper's 25 ms -> 7 ms improvement).
	DisableOPECache bool
	// BatchWorkers bounds the worker pool of the batched encryption
	// pipeline: multi-row INSERT encryption and result-set decryption fan
	// per-row onion work across this many goroutines, after each column's
	// Ord-onion plaintexts are pre-encrypted through ope.EncryptBatch so
	// the sorted traversal shares node-cache prefixes (§3.1's "AVL binary
	// search trees for batch encryption, e.g., database loads"). Row
	// ordering of statements and results is unaffected.
	//
	// 0 (the default) uses runtime.GOMAXPROCS(0) workers; 1 runs all
	// per-row work serially on the calling goroutine, as the seed did
	// (the ablation baseline). Values larger than the row count are
	// clamped. The ope.EncryptBatch pre-pass applies to any multi-row
	// INSERT independent of this knob (disable it with DisableOPECache);
	// ciphertexts and row order are identical on every setting.
	BatchWorkers int
	// DisableInProxySort sends ORDER BY without LIMIT to the server
	// (revealing OPE) instead of sorting decrypted results in the proxy
	// (§3.5.1). In-proxy sorting is the default, as in the paper's
	// analysis.
	DisableInProxySort bool
	// ASTCacheSize bounds the LRU cache of parsed statements keyed by SQL
	// text, so repeated statements skip the parser. 0 uses the default
	// (1024 entries); a negative value disables caching.
	ASTCacheSize int
	// Training makes the proxy analyze and record onion adjustments
	// without encrypting or executing anything (§3.5.1 training mode).
	Training bool
	// Plan restricts which onions each column materializes (§3.5.2
	// "known query set": discard onions that are not needed). Derive one
	// with TrainPlan. Nil keeps every applicable onion.
	Plan OnionPlan
	// DataDir makes the proxy durable: key material (master key, Paillier
	// primes) is loaded from — or, on first use, generated into —
	// <DataDir>/proxy-keys.json, and all schema/onion metadata is sealed
	// and committed through the DBMS write-ahead log, atomically with the
	// server-side statements that change it (see persist.go). The same
	// directory is normally also the sqldb data dir, so one directory
	// fully captures a restartable instance. Empty means in-memory (the
	// default; restarting loses everything, as the seed did).
	DataDir string
}

// PrincipalCrypto is the hook the multi-principal layer (package mp)
// installs to handle ENC FOR columns: values encrypted under per-principal
// keys rather than the proxy master key (§4).
type PrincipalCrypto interface {
	// EncryptFor encrypts v for the principal (ptype, pname).
	EncryptFor(ptype, pname, table, col string, v sqldb.Value) (sqldb.Value, error)
	// DecryptFor decrypts a value encrypted for (ptype, pname), using
	// only keys reachable from currently logged-in users.
	DecryptFor(ptype, pname, table, col string, v sqldb.Value) (sqldb.Value, error)
}

// Stats counts proxy work for the evaluation harness. The counters on the
// live Proxy are updated atomically (steady-state queries bump them under
// the read lock, concurrently), so a Stats snapshot is safe to take from
// any goroutine.
type Stats struct {
	Queries          int64
	OnionAdjustments int64
	Resyncs          int64
	InProxySorts     int64
	ASTCacheHits     int64
	ASTCacheMisses   int64
	// Server reports how the storage engine executed the proxy's rewritten
	// statements (compiled vs interpreted pipeline, join strategy, grouped
	// scatter pushdowns), summed across shards.
	Server sqldb.PlanCounters
}

// Proxy is a single-principal CryptDB proxy bound to one storage engine —
// a single embedded DBMS (store/single) or a hash-partitioned set of them
// (store/sharded); the proxy speaks only the store.Engine/Conn surface
// either way. Queries that require no onion adjustment (the trained steady
// state) run under a read lock and execute concurrently; adjustments
// serialize under the write lock.
type Proxy struct {
	mu sync.RWMutex

	db store.Engine
	mk *keys.Master

	tables map[string]*TableMeta
	nTab   int

	homKey  *hom.Key
	joinPRF []byte // K0 shared by all JOIN-ADJ columns (§3.4)

	opts     Options
	stats    Stats
	astCache *astCache // nil when disabled

	// sessions tracks every live Session (guarded by sessMu) so onion
	// adjustments can detect conflicts with open transactions; defSess is
	// the lazily created session behind the sessionless Execute API.
	sessMu   sync.Mutex
	sessions map[*Session]struct{}
	defOnce  sync.Once
	defSess  *Session

	// dataDir is non-empty for a durable proxy; metaMu serializes sealed
	// metadata snapshots with the WAL appends that carry them, so blob
	// order on disk matches state order in memory (see persist.go).
	dataDir string
	metaMu  sync.Mutex

	// replica is non-nil when the engine is a replication follower: the
	// proxy then serves reads only and refreshes its metadata from the
	// replicated stream (see replica.go). replicaGen is the engine
	// MetaGeneration the current p.tables was unsealed from (atomic).
	replica    store.Replica
	replicaGen uint64

	// training-mode log of would-be adjustments.
	trainLog []TrainEvent

	princ PrincipalCrypto
}

// TrainEvent records one onion adjustment or warning observed in training
// mode (§3.5.1).
type TrainEvent struct {
	Table, Column string
	Onion         onion.Onion
	Layer         onion.Layer
	Warning       string // non-empty for unsupported queries
}

// New creates a proxy in front of one embedded database — the seed's
// topology, wrapped in a store/single engine. Without Options.DataDir it
// uses a fresh master key and lives only as long as the process. With
// DataDir it is durable: key material is loaded (or generated once) from
// the key file, and table/column/onion metadata recovered through the DBMS
// is restored, so a restarted proxy decrypts everything its predecessor
// stored and remembers every onion adjustment it made.
func New(db *sqldb.DB, opts Options) (*Proxy, error) {
	return NewOnEngine(single.New(db), opts)
}

// NewOnEngine creates a proxy over any storage engine (store/single,
// store/sharded, or a future backend adapter). Semantics of Options.DataDir
// match New; the engine's own durability is configured when the engine is
// opened.
func NewOnEngine(eng store.Engine, opts Options) (*Proxy, error) {
	if opts.DataDir == "" {
		mk, err := keys.NewMaster()
		if err != nil {
			return nil, err
		}
		return newWithMaster(eng, mk, opts)
	}
	return openPersistent(eng, opts)
}

// NewWithMaster creates an in-memory proxy with explicit master key
// material (multi-principal mode derives sub-proxies this way).
func NewWithMaster(db *sqldb.DB, mk *keys.Master, opts Options) (*Proxy, error) {
	return newWithMaster(single.New(db), mk, opts)
}

func newWithMaster(eng store.Engine, mk *keys.Master, opts Options) (*Proxy, error) {
	if opts.HOMBits == 0 {
		opts.HOMBits = hom.DefaultBits
	}
	hk, err := hom.GenerateKey(opts.HOMBits)
	if err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	return newProxy(eng, mk, hk, opts)
}

// openPersistent builds a durable proxy from (or initializing) a data dir.
func openPersistent(db store.Engine, opts Options) (*Proxy, error) {
	dir := opts.DataDir
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("proxy: creating data dir: %w", err)
	}
	kf, fresh, err := loadOrCreateKeyFile(dir, opts.HOMBits)
	if err != nil {
		return nil, err
	}
	rep, _ := db.(store.Replica)
	if fresh && rep != nil {
		// A follower must decrypt blobs sealed by the primary's proxy;
		// generating fresh keys here would silently produce a proxy that
		// can never unseal anything. The operator copies the primary's
		// key file when provisioning the replica.
		return nil, fmt.Errorf("proxy: replica data dir %s has no %s — copy it from the primary", dir, keyFileName)
	}
	if fresh {
		if db.Meta() != nil {
			return nil, fmt.Errorf("proxy: %s has database state but no %s — the key file is required to decrypt it", dir, keyFileName)
		}
		mk, err := keys.NewMaster()
		if err != nil {
			return nil, err
		}
		bits := opts.HOMBits
		if bits == 0 {
			bits = hom.DefaultBits
		}
		hk, err := hom.GenerateKey(bits)
		if err != nil {
			return nil, fmt.Errorf("proxy: %w", err)
		}
		hp, hq, _ := hk.Primes()
		if err := writeKeyFile(dir, &keyFile{
			Version: 1, MasterKey: mk.Bytes(), HomBits: bits,
			HomP: hp.Bytes(), HomQ: hq.Bytes(),
		}); err != nil {
			return nil, err
		}
		opts.HOMBits = bits
		p, err := newProxy(db, mk, hk, opts)
		if err != nil {
			return nil, err
		}
		p.dataDir = dir
		return p, nil
	}

	mk, err := keys.MasterFromRaw(kf.MasterKey)
	if err != nil {
		return nil, err
	}
	hk, err := hom.KeyFromPrimes(new(big.Int).SetBytes(kf.HomP), new(big.Int).SetBytes(kf.HomQ))
	if err != nil {
		return nil, fmt.Errorf("proxy: restoring Paillier key: %w", err)
	}
	opts.HOMBits = kf.HomBits
	p, err := newProxy(db, mk, hk, opts)
	if err != nil {
		return nil, err
	}
	p.dataDir = dir
	if rep != nil {
		// Record the generation before reading the blob: a transition
		// between the two reads leaves replicaGen stale, so the first
		// query reloads — never the reverse.
		p.replica = rep
		atomic.StoreUint64(&p.replicaGen, rep.MetaGeneration())
	}
	if sealed := db.Meta(); sealed != nil {
		if err := p.restoreState(sealed); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// newProxy assembles a proxy around existing key material.
func newProxy(db store.Engine, mk *keys.Master, hk *hom.Key, opts Options) (*Proxy, error) {
	if opts.HOMPrecompute > 0 {
		if err := hk.Precompute(opts.HOMPrecompute); err != nil {
			return nil, fmt.Errorf("proxy: %w", err)
		}
	}
	p := &Proxy{
		db:       db,
		mk:       mk,
		tables:   make(map[string]*TableMeta),
		homKey:   hk,
		joinPRF:  mk.DeriveLabel("joinadj-shared-prf"),
		opts:     opts,
		sessions: make(map[*Session]struct{}),
	}
	if opts.ASTCacheSize >= 0 {
		size := opts.ASTCacheSize
		if size == 0 {
			size = 1024
		}
		p.astCache = newASTCache(size)
	}
	p.registerUDFs()
	return p, nil
}

// Engine exposes the storage engine the proxy speaks to.
func (p *Proxy) Engine() store.Engine { return p.db }

// DB exposes the underlying embedded DBMS when the proxy runs over a
// single-instance engine (the evaluation harness and tests inspect
// server-visible state through it). Returns nil over a sharded engine —
// use Engine and its introspection instead.
func (p *Proxy) DB() *sqldb.DB {
	if u, ok := p.db.(interface{ DB() *sqldb.DB }); ok {
		return u.DB()
	}
	return nil
}

// HOMKey exposes the Paillier key (package mp and benchmarks need the
// public part).
func (p *Proxy) HOMKey() *hom.Key { return p.homKey }

// SetPrincipalCrypto installs the multi-principal hook.
func (p *Proxy) SetPrincipalCrypto(pc PrincipalCrypto) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.princ = pc
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	out := Stats{
		Queries:          atomic.LoadInt64(&p.stats.Queries),
		OnionAdjustments: atomic.LoadInt64(&p.stats.OnionAdjustments),
		Resyncs:          atomic.LoadInt64(&p.stats.Resyncs),
		InProxySorts:     atomic.LoadInt64(&p.stats.InProxySorts),
	}
	out.Server = p.db.Stats().Plan
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.astCache != nil {
		out.ASTCacheHits, out.ASTCacheMisses = p.astCache.counters()
	}
	return out
}

// TrainingLog returns the events recorded in training mode.
func (p *Proxy) TrainingLog() []TrainEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TrainEvent, len(p.trainLog))
	copy(out, p.trainLog)
	return out
}

// Table exposes a table's metadata (read-only use).
func (p *Proxy) Table(logical string) *TableMeta {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tables[logical]
}

//
// Server-side UDFs (§7: "we implement all server-side functionality with
// UDFs and server-side tables").
//

func (p *Proxy) registerUDFs() {
	// decrypt_rnd(key, ct, iv) strips one RND layer; works for both the
	// 64-bit integer form and the byte form based on argument kind.
	p.db.RegisterUDF("decrypt_rnd", udfDecryptRND)

	// join_adj(val, delta) re-keys one JOIN-ADJ value (§3.4).
	p.db.RegisterUDF("join_adj", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Value{}, fmt.Errorf("join_adj: want 2 args")
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		delta := new(big.Int).SetBytes(args[1].B)
		out, err := joinadj.Adjust(args[0].B, delta)
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Blob(out), nil
	})

	// searchswp(blob, token) implements encrypted LIKE (§3.1).
	p.db.RegisterUDF("searchswp", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Value{}, fmt.Errorf("searchswp: want 2 args")
		}
		if args[0].IsNull() {
			return sqldb.Bool(false), nil
		}
		return sqldb.Bool(search.Match(args[0].B, search.Token(args[1].B))), nil
	})

	// hom_add(ct1, ct2) multiplies Paillier ciphertexts: the UPDATE
	// ... SET x = x + k path (§3.3).
	n2 := new(big.Int).Set(p.homKey.N2)
	p.db.RegisterUDF("hom_add", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Value{}, fmt.Errorf("hom_add: want 2 args")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		a := new(big.Int).SetBytes(args[0].B)
		b := new(big.Int).SetBytes(args[1].B)
		a.Mul(a, b).Mod(a, n2)
		return sqldb.Blob(fixedBytes(a, n2)), nil
	})

	// hom_sum(ct) aggregates a HOM column by ciphertext multiplication:
	// the server-side SUM replacement (§3.1).
	p.db.RegisterAggUDF("hom_sum", func() sqldb.AggState {
		return &homSumState{acc: big.NewInt(1), n2: n2}
	})
}

func fixedBytes(v, n2 *big.Int) []byte {
	return v.FillBytes(make([]byte, (n2.BitLen()+7)/8))
}

type homSumState struct {
	acc *big.Int
	n2  *big.Int
	any bool
}

func (s *homSumState) Step(args []sqldb.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("hom_sum: want 1 arg")
	}
	if args[0].IsNull() {
		return nil
	}
	c := new(big.Int).SetBytes(args[0].B)
	s.acc.Mul(s.acc, c).Mod(s.acc, s.n2)
	s.any = true
	return nil
}

func (s *homSumState) Final() (sqldb.Value, error) {
	if !s.any {
		return sqldb.Null(), nil
	}
	return sqldb.Blob(fixedBytes(s.acc, s.n2)), nil
}

func udfDecryptRND(args []sqldb.Value) (sqldb.Value, error) {
	if len(args) != 3 {
		return sqldb.Value{}, fmt.Errorf("decrypt_rnd: want 3 args (key, ct, iv)")
	}
	key := args[0].B
	if args[1].IsNull() || args[2].IsNull() {
		return sqldb.Null(), nil
	}
	iv := args[2].B
	switch args[1].Kind {
	case sqldb.KindInt:
		pt, err := rndDecryptUint64(key, iv, uint64(args[1].I))
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Int(int64(pt)), nil
	case sqldb.KindBlob:
		pt, err := rndDecryptBytes(key, iv, args[1].B)
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Blob(pt), nil
	}
	return sqldb.Value{}, fmt.Errorf("decrypt_rnd: unsupported ciphertext kind %s", args[1].Kind)
}
