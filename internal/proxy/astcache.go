package proxy

import (
	"container/list"
	"sync"

	"repro/internal/sqlparser"
)

// astCache is a bounded LRU of parsed statements keyed by raw SQL text.
// Applications issue the same statement shapes over and over (TPC-C's five
// classes, a forum's page queries), so Execute would otherwise re-lex and
// re-parse identical text on every call. Cached ASTs are shared across
// goroutines; the analyzer and rewriter never mutate a parsed statement
// (they build fresh server-side trees), so sharing is safe.
type astCache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List               // front = most recently used
	m            map[string]*list.Element // sql -> element holding *astEntry
	hits, misses int64
}

type astEntry struct {
	sql string
	st  sqlparser.Statement
}

// astCacheMaxSQL bounds the text length of cacheable statements. The hot,
// repeated shapes are short parameterized statements; one-shot multi-row
// INSERT texts can run to megabytes and would pin memory for zero hits.
const astCacheMaxSQL = 4096

func newASTCache(max int) *astCache {
	return &astCache{max: max, ll: list.New(), m: make(map[string]*list.Element, max)}
}

func (c *astCache) get(sql string) (sqlparser.Statement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[sql]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*astEntry).st, true
}

func (c *astCache) put(sql string, st sqlparser.Statement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sql]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*astEntry).st = st
		return
	}
	c.m[sql] = c.ll.PushFront(&astEntry{sql: sql, st: st})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*astEntry).sql)
	}
}

func (c *astCache) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
