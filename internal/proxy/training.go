package proxy

import (
	"repro/internal/onion"
	"repro/internal/sqldb"
)

// OnionPlan records, per "table.column", which onions to materialize — the
// §3.5.2 "known query set" optimization: after training on the
// application's queries, onions that no query needs are discarded, saving
// storage and encryption time. The Eq onion is always kept (it is the
// decryption path for projections).
type OnionPlan map[string][]onion.Onion

// planKey builds the plan map key.
func planKey(table, col string) string { return table + "." + col }

// DerivePlan inspects the proxy's (typically training-mode) state and
// returns the minimal onion set each column needs: Eq always, JAdj only if
// a join adjusted it, Ord only if an order query exposed OPE, Add/Search
// only if a query used them.
func (p *Proxy) DerivePlan() OnionPlan {
	p.mu.RLock()
	defer p.mu.RUnlock()
	plan := make(OnionPlan)
	for _, tm := range p.tables {
		for _, cm := range tm.Cols {
			if cm.Plain || cm.EncFor != nil {
				continue
			}
			keep := []onion.Onion{onion.Eq}
			if st := cm.Onions[onion.JAdj]; st != nil && st.Cur > 0 {
				keep = append(keep, onion.JAdj)
			}
			if st := cm.Onions[onion.Ord]; st != nil && st.Cur > 0 {
				keep = append(keep, onion.Ord)
			}
			if cm.UsedSum && cm.HasOnion(onion.Add) {
				keep = append(keep, onion.Add)
			}
			if cm.UsedSearch && cm.HasOnion(onion.Search) {
				keep = append(keep, onion.Search)
			}
			plan[planKey(tm.Logical, cm.Logical)] = keep
		}
	}
	return plan
}

// TrainQuery is one query of a training trace.
type TrainQuery struct {
	SQL    string
	Params []sqldb.Value
}

// TrainPlan runs schema DDL plus a query trace through a fresh
// training-mode proxy and derives the onion plan — the developer workflow
// of §3.5.1/§3.5.2: "the developer can use the training mode ... to adjust
// onions to the correct layer a priori ... CryptDB can also discard onions
// that are not needed".
func TrainPlan(ddl []string, queries []TrainQuery) (OnionPlan, error) {
	db := sqldb.New()
	p, err := New(db, Options{HOMBits: 256, Training: true})
	if err != nil {
		return nil, err
	}
	for _, q := range ddl {
		if _, err := p.Execute(q); err != nil {
			return nil, err
		}
	}
	for _, q := range queries {
		if _, err := p.Execute(q.SQL, q.Params...); err != nil {
			return nil, err
		}
	}
	return p.DerivePlan(), nil
}

// plannedOnions returns the onions to materialize for a column, honoring
// the configured plan (all applicable onions when unplanned).
func (p *Proxy) plannedOnions(table string, cm *ColumnMeta) []onion.Onion {
	all := onion.Onions(cm.Type)
	if p.opts.Plan == nil {
		return all
	}
	keep, ok := p.opts.Plan[planKey(table, cm.Logical)]
	if !ok {
		return all
	}
	var out []onion.Onion
	for _, o := range all {
		for _, k := range keep {
			if o == k {
				out = append(out, o)
				break
			}
		}
	}
	// Eq is mandatory: it is how the proxy reads values back.
	hasEq := false
	for _, o := range out {
		if o == onion.Eq {
			hasEq = true
		}
	}
	if !hasEq {
		out = append([]onion.Onion{onion.Eq}, out...)
	}
	return out
}
