package proxy

import (
	"fmt"
	"strings"

	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// qscope resolves logical column references for one query.
type qscope struct {
	entries []qscopeEntry
}

type qscopeEntry struct {
	alias string // effective name: explicit alias or logical table name
	tm    *TableMeta
}

func (p *Proxy) buildScope(from []sqlparser.TableRef) (*qscope, error) {
	qs := &qscope{}
	for _, ref := range from {
		tm, ok := p.tables[ref.Table]
		if !ok {
			return nil, fmt.Errorf("proxy: no table %s", ref.Table)
		}
		alias := ref.Alias
		if alias == "" {
			alias = ref.Table
		}
		qs.entries = append(qs.entries, qscopeEntry{alias: alias, tm: tm})
	}
	return qs, nil
}

// resolve maps a column reference to its metadata and the anonymized table
// alias used in the rewritten query ("a1", "a2", ...).
func (qs *qscope) resolve(table, col string) (*ColumnMeta, string, error) {
	if table != "" {
		for i, e := range qs.entries {
			if e.alias == table || e.tm.Logical == table {
				cm := e.tm.Col(col)
				if cm == nil {
					return nil, "", fmt.Errorf("proxy: no column %s.%s", table, col)
				}
				return cm, anonAlias(i), nil
			}
		}
		return nil, "", fmt.Errorf("proxy: no table %s in scope", table)
	}
	var found *ColumnMeta
	var alias string
	for i, e := range qs.entries {
		if cm := e.tm.Col(col); cm != nil {
			if found != nil {
				return nil, "", fmt.Errorf("proxy: ambiguous column %s", col)
			}
			found = cm
			alias = anonAlias(i)
		}
	}
	if found == nil {
		return nil, "", fmt.Errorf("proxy: no column %s", col)
	}
	return found, alias, nil
}

func anonAlias(i int) string { return fmt.Sprintf("a%d", i+1) }

// requirement is one (column, computation class) pair a query imposes.
type requirement struct {
	cm       *ColumnMeta
	class    onion.Class
	joinWith *ColumnMeta // set for ClassJoin / ClassRangeJoin
	word     string      // set for ClassSearch
}

// analysis is the outcome of examining a statement before rewriting.
type analysis struct {
	reqs        []requirement
	unsupported []string // human-readable reasons (Fig. 9 "needs plaintext")
}

func (a *analysis) addReq(cm *ColumnMeta, class onion.Class) {
	if cm.Plain {
		return
	}
	a.reqs = append(a.reqs, requirement{cm: cm, class: class})
}

func (a *analysis) addJoin(l, r *ColumnMeta, class onion.Class) {
	if l.Plain && r.Plain {
		return
	}
	a.reqs = append(a.reqs, requirement{cm: l, class: class, joinWith: r})
}

func (a *analysis) fail(cm *ColumnMeta, reason string) {
	if cm != nil {
		a.reqs = append(a.reqs, requirement{cm: cm, class: onion.ClassPlaintext})
		reason = fmt.Sprintf("%s.%s: %s", cm.Table.Logical, cm.Logical, reason)
	}
	a.unsupported = append(a.unsupported, reason)
}

// pureCol returns the column metadata when e is exactly a column reference.
func pureCol(e sqlparser.Expr, qs *qscope) (*ColumnMeta, bool) {
	cr, ok := e.(*sqlparser.ColRef)
	if !ok || cr.Column == "*" {
		return nil, false
	}
	cm, _, err := qs.resolve(cr.Table, cr.Column)
	if err != nil {
		return nil, false
	}
	return cm, true
}

// isConstExpr reports whether e evaluates without row context.
func isConstExpr(e sqlparser.Expr, params []sqldb.Value) bool {
	_, err := sqldb.EvalConst(e, params)
	return err == nil
}

// collectCols appends every column referenced anywhere inside e.
func collectCols(e sqlparser.Expr, qs *qscope, out *[]*ColumnMeta) {
	switch x := e.(type) {
	case *sqlparser.ColRef:
		if cm, ok := pureCol(x, qs); ok {
			*out = append(*out, cm)
		}
	case *sqlparser.BinaryExpr:
		collectCols(x.L, qs, out)
		collectCols(x.R, qs, out)
	case *sqlparser.UnaryExpr:
		collectCols(x.E, qs, out)
	case *sqlparser.InExpr:
		collectCols(x.E, qs, out)
		for _, i := range x.List {
			collectCols(i, qs, out)
		}
	case *sqlparser.LikeExpr:
		collectCols(x.E, qs, out)
		collectCols(x.Pattern, qs, out)
	case *sqlparser.BetweenExpr:
		collectCols(x.E, qs, out)
		collectCols(x.Lo, qs, out)
		collectCols(x.Hi, qs, out)
	case *sqlparser.IsNullExpr:
		collectCols(x.E, qs, out)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			collectCols(a, qs, out)
		}
	}
}

// analyzePredicate classifies a WHERE/HAVING/ON predicate tree into
// computation-class requirements, flagging anything CryptDB cannot run over
// ciphertext (§6): computation combined with comparison, string/date
// functions in predicates, bitwise operators, LIKE with a column pattern.
func (p *Proxy) analyzePredicate(e sqlparser.Expr, qs *qscope, params []sqldb.Value, an *analysis) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			p.analyzePredicate(x.L, qs, params, an)
			p.analyzePredicate(x.R, qs, params, an)
			return
		case "=", "!=", "<", "<=", ">", ">=":
			lc, lIsCol := pureCol(x.L, qs)
			rc, rIsCol := pureCol(x.R, qs)
			lConst := isConstExpr(x.L, params)
			rConst := isConstExpr(x.R, params)
			switch {
			case lIsCol && rIsCol:
				if x.Op == "=" || x.Op == "!=" {
					if lc == rc {
						an.addReq(lc, onion.ClassEquality)
					} else {
						an.addJoin(lc, rc, onion.ClassJoin)
					}
				} else {
					an.addJoin(lc, rc, onion.ClassRangeJoin)
				}
			case lIsCol && rConst:
				p.classifyCmp(lc, x.Op, an)
			case rIsCol && lConst:
				p.classifyCmp(rc, x.Op, an)
			case lConst && rConst:
				// constant predicate; nothing revealed
			default:
				// Computation + comparison on the same column (e.g.
				// WHERE salary > age*2+10): not computable over
				// ciphertext (§6).
				var cols []*ColumnMeta
				collectCols(x, qs, &cols)
				for _, cm := range cols {
					if !cm.Plain {
						an.fail(cm, "computation combined with comparison in WHERE")
					}
				}
				if len(cols) == 0 {
					an.fail(nil, "unsupported predicate "+x.String())
				}
			}
			return
		case "&", "|", "^", "+", "-", "*", "/", "%":
			// A bare arithmetic/bitwise expression used as a predicate
			// (e.g. WHERE perms & 4). Fig. 9's bitwise columns.
			var cols []*ColumnMeta
			collectCols(x, qs, &cols)
			allPlain := true
			for _, cm := range cols {
				if !cm.Plain {
					an.fail(cm, "bitwise/arithmetic predicate over encrypted column")
					allPlain = false
				}
			}
			if len(cols) == 0 || allPlain {
				return
			}
			return
		}
		an.fail(nil, "unsupported operator "+x.Op)
	case *sqlparser.UnaryExpr:
		p.analyzePredicate(x.E, qs, params, an)
	case *sqlparser.InExpr:
		cm, ok := pureCol(x.E, qs)
		if !ok {
			an.fail(nil, "IN over non-column expression")
			return
		}
		for _, item := range x.List {
			if !isConstExpr(item, params) {
				an.fail(cm, "IN list with non-constant item")
				return
			}
		}
		an.addReq(cm, onion.ClassEquality)
	case *sqlparser.LikeExpr:
		cm, ok := pureCol(x.E, qs)
		if !ok {
			an.fail(nil, "LIKE over non-column expression")
			return
		}
		if cm.Plain {
			return
		}
		pat, err := sqldb.EvalConst(x.Pattern, params)
		if err != nil {
			// LIKE with a column reference for the pattern — the 41
			// columns of §8.2.
			an.fail(cm, "LIKE with column pattern")
			return
		}
		word, ok := likeWord(valueToPatternString(pat))
		if !ok {
			an.fail(cm, "LIKE pattern is not a full-word search")
			return
		}
		if cm.Type != sqlparser.TypeText {
			an.fail(cm, "LIKE on non-text column")
			return
		}
		an.reqs = append(an.reqs, requirement{cm: cm, class: onion.ClassSearch, word: word})
	case *sqlparser.BetweenExpr:
		cm, ok := pureCol(x.E, qs)
		if !ok || !isConstExpr(x.Lo, params) || !isConstExpr(x.Hi, params) {
			var cols []*ColumnMeta
			collectCols(x, qs, &cols)
			for _, c := range cols {
				an.fail(c, "BETWEEN over computed operands")
			}
			return
		}
		an.addReq(cm, onion.ClassOrder)
	case *sqlparser.IsNullExpr:
		// NULLs are visible to the server (§3.3); no requirement.
	case *sqlparser.ColRef:
		cm, ok := pureCol(x, qs)
		if ok && !cm.Plain {
			// WHERE boolcol — truthiness of a ciphertext is meaningless.
			an.fail(cm, "bare column used as predicate")
		}
	case *sqlparser.FuncCall:
		// String/date manipulation inside a predicate (LOWER, MONTH,
		// SUBSTRING, ...): Fig. 9's "needs plaintext" class.
		var cols []*ColumnMeta
		collectCols(x, qs, &cols)
		for _, cm := range cols {
			if !cm.Plain {
				an.fail(cm, "function "+x.Name+" over encrypted column in predicate")
			}
		}
	case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.BytesLit,
		*sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
		// constant predicate
	default:
		an.fail(nil, fmt.Sprintf("unsupported predicate %T", e))
	}
}

func (p *Proxy) classifyCmp(cm *ColumnMeta, op string, an *analysis) {
	switch op {
	case "=", "!=":
		an.addReq(cm, onion.ClassEquality)
	default:
		an.addReq(cm, onion.ClassOrder)
	}
}

// valueToPatternString renders a constant LIKE pattern.
func valueToPatternString(v sqldb.Value) string {
	if v.Kind == sqldb.KindBlob {
		return string(v.B)
	}
	return v.String()
}

// likeWord extracts the single search word from a LIKE pattern of the form
// %word%, word%, %word or word. Patterns with interior wildcards are not
// full-word searches (§3.1).
func likeWord(pat string) (string, bool) {
	trimmed := strings.Trim(pat, "%")
	if trimmed == "" {
		return "", false
	}
	if strings.ContainsAny(trimmed, "%_") {
		return "", false
	}
	return strings.ToLower(trimmed), true
}

// analyzeSelect derives all requirements of a SELECT.
func (p *Proxy) analyzeSelect(s *sqlparser.SelectStmt, qs *qscope, params []sqldb.Value) *analysis {
	an := &analysis{}

	// JOIN ... ON predicates.
	for _, ref := range s.From {
		if ref.JoinOn != nil {
			p.analyzePredicate(ref.JoinOn, qs, params, an)
		}
	}
	p.analyzePredicate(s.Where, qs, params, an)

	for _, se := range s.Exprs {
		if se.Star {
			continue
		}
		p.analyzeSelectExpr(se.Expr, qs, params, an)
	}

	for _, g := range s.GroupBy {
		if cm, ok := pureCol(g, qs); ok {
			an.addReq(cm, onion.ClassEquality)
		} else {
			var cols []*ColumnMeta
			collectCols(g, qs, &cols)
			for _, cm := range cols {
				an.fail(cm, "GROUP BY over computed expression")
			}
		}
	}

	if s.Having != nil {
		p.analyzeHaving(s.Having, qs, params, an)
	}

	inProxySort := !p.opts.DisableInProxySort && s.Limit == nil
	for _, o := range s.OrderBy {
		cm, ok := pureCol(o.Expr, qs)
		if !ok {
			// ORDER BY COUNT(*) etc: server-computable aggregates sort
			// server-side; anything else sorts in the proxy.
			if fc, isFC := o.Expr.(*sqlparser.FuncCall); isFC && fc.Name == "COUNT" {
				continue
			}
			if !inProxySort {
				var cols []*ColumnMeta
				collectCols(o.Expr, qs, &cols)
				for _, c := range cols {
					an.fail(c, "ORDER BY expression with LIMIT")
				}
			}
			continue
		}
		if cm.Plain {
			continue
		}
		if inProxySort {
			continue // sorted at the proxy, nothing revealed (§3.5.1)
		}
		an.addReq(cm, onion.ClassOrder)
	}

	return an
}

// analyzeSelectExpr handles one projection item.
func (p *Proxy) analyzeSelectExpr(e sqlparser.Expr, qs *qscope, params []sqldb.Value, an *analysis) {
	switch x := e.(type) {
	case *sqlparser.ColRef:
		// plain projection: nothing revealed
	case *sqlparser.FuncCall:
		switch x.Name {
		case "COUNT":
			if x.Distinct {
				for _, a := range x.Args {
					if cm, ok := pureCol(a, qs); ok {
						an.addReq(cm, onion.ClassEquality)
					}
				}
			}
		case "SUM", "AVG":
			if len(x.Args) == 1 {
				if cm, ok := pureCol(x.Args[0], qs); ok {
					if cm.Plain {
						return
					}
					if cm.Type != sqlparser.TypeInt {
						an.fail(cm, x.Name+" over non-integer column")
						return
					}
					an.addReq(cm, onion.ClassSum)
					return
				}
			}
			var cols []*ColumnMeta
			collectCols(x, qs, &cols)
			for _, cm := range cols {
				an.fail(cm, x.Name+" over computed expression")
			}
		case "MIN", "MAX":
			if len(x.Args) == 1 {
				if cm, ok := pureCol(x.Args[0], qs); ok {
					if cm.Plain {
						return
					}
					if cm.Type != sqlparser.TypeInt {
						an.fail(cm, x.Name+" over non-integer column (OPE not invertible)")
						return
					}
					an.addReq(cm, onion.ClassOrder)
					return
				}
			}
			an.fail(nil, x.Name+" over computed expression")
		default:
			// Unknown scalar function in projection: in-proxy
			// processing cannot help because we cannot even fetch
			// partial results for arbitrary server functions — but for
			// pure projections the proxy can compute the function
			// itself after decryption, so only flag predicates. Here
			// we conservatively support it via in-proxy evaluation if
			// it is one the proxy understands; otherwise report it.
			an.fail(nil, "function "+x.Name+" in projection")
		}
	default:
		// Arithmetic over columns in the projection: computed at the
		// proxy after decryption (in-proxy processing, §3.5.1 / §8.2).
		// No server requirement.
	}
}

// analyzeHaving: COUNT comparisons run server-side; anything over
// SUM/MIN/MAX is post-filtered at the proxy, which only needs the same
// onion access as the corresponding projection.
func (p *Proxy) analyzeHaving(e sqlparser.Expr, qs *qscope, params []sqldb.Value, an *analysis) {
	var aggs []*sqlparser.FuncCall
	collectFuncCalls(e, &aggs)
	for _, fc := range aggs {
		p.analyzeSelectExpr(fc, qs, params, an)
	}
}

func collectFuncCalls(e sqlparser.Expr, out *[]*sqlparser.FuncCall) {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		*out = append(*out, x)
	case *sqlparser.BinaryExpr:
		collectFuncCalls(x.L, out)
		collectFuncCalls(x.R, out)
	case *sqlparser.UnaryExpr:
		collectFuncCalls(x.E, out)
	}
}

// analyzeUpdate classifies SET clauses: constants re-encrypt, col = col ± k
// uses HOM (§3.3), anything else falls back to the two-query strategy.
type updatePlanKind int

const (
	updConst updatePlanKind = iota
	updIncrement
	updTwoQuery
	updPassthrough // plain column: the server computes directly
)

type updateAssign struct {
	cm    *ColumnMeta
	kind  updatePlanKind
	value sqlparser.Expr // const expr or full expr for two-query
	delta int64          // for updIncrement
}

func (p *Proxy) analyzeUpdate(s *sqlparser.UpdateStmt, qs *qscope, params []sqldb.Value) (*analysis, []updateAssign, error) {
	an := &analysis{}
	p.analyzePredicate(s.Where, qs, params, an)

	var assigns []updateAssign
	for _, a := range s.Assignments {
		cm, _, err := qs.resolve("", a.Column)
		if err != nil {
			return nil, nil, err
		}
		var refCols []*ColumnMeta
		collectCols(a.Value, qs, &refCols)
		allRefsPlain := true
		for _, rc := range refCols {
			if !rc.Plain {
				allRefsPlain = false
			}
		}
		switch {
		case cm.Plain && allRefsPlain:
			assigns = append(assigns, updateAssign{cm: cm, kind: updPassthrough, value: a.Value})
		case isConstExpr(a.Value, params):
			assigns = append(assigns, updateAssign{cm: cm, kind: updConst, value: a.Value})
		case isIncrement(a.Value, a.Column) && !cm.Plain:
			delta, ok := incrementDelta(a.Value, params)
			if !ok {
				assigns = append(assigns, updateAssign{cm: cm, kind: updTwoQuery, value: a.Value})
				break
			}
			if !cm.HasOnion(onion.Add) {
				an.fail(cm, "increment on column without Add onion")
				break
			}
			an.addReq(cm, onion.ClassIncrement)
			assigns = append(assigns, updateAssign{cm: cm, kind: updIncrement, delta: delta})
		default:
			assigns = append(assigns, updateAssign{cm: cm, kind: updTwoQuery, value: a.Value})
		}
	}
	return an, assigns, nil
}

// isIncrement recognizes `col = col + k` / `col = col - k`.
func isIncrement(e sqlparser.Expr, col string) bool {
	b, ok := e.(*sqlparser.BinaryExpr)
	if !ok || (b.Op != "+" && b.Op != "-") {
		return false
	}
	cr, ok := b.L.(*sqlparser.ColRef)
	return ok && cr.Column == col
}

func incrementDelta(e sqlparser.Expr, params []sqldb.Value) (int64, bool) {
	b := e.(*sqlparser.BinaryExpr)
	v, err := sqldb.EvalConst(b.R, params)
	if err != nil {
		return 0, false
	}
	n, err := v.AsInt()
	if err != nil {
		return 0, false
	}
	if b.Op == "-" {
		n = -n
	}
	return n, true
}
