package proxy

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sqldb"
)

func mustSess(t *testing.T, s *Session, sql string, params ...sqldb.Value) *sqldb.Result {
	t.Helper()
	res, err := s.Execute(sql, params...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

// TestProxySessionsConcurrentTxns: two proxy sessions hold open
// transactions over encrypted tables at the same time; isolation and
// decryption both hold.
func TestProxySessionsConcurrentTxns(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE acct (id INT PRIMARY KEY, owner TEXT, bal INT)")
	mustExec(t, p, "INSERT INTO acct (id, owner, bal) VALUES (1, 'ann', 100), (2, 'bob', 200)")
	// Pre-adjust the onions the transactions will need, so the concurrent
	// phase runs in the trained steady state (the paper's assumption).
	mustExec(t, p, "SELECT bal FROM acct WHERE id = 1")

	a, b := p.NewSession(), p.NewSession()
	defer a.Close()
	defer b.Close()

	mustSess(t, a, "BEGIN")
	mustSess(t, b, "BEGIN")
	mustSess(t, a, "UPDATE acct SET bal = 150 WHERE id = 1")
	mustSess(t, b, "UPDATE acct SET bal = 250 WHERE id = 2")

	// Read-your-writes through decryption; no cross-session leakage.
	if res := mustSess(t, a, "SELECT bal FROM acct WHERE id = 1"); res.Rows[0][0].I != 150 {
		t.Fatalf("a sees bal = %v, want its own 150", res.Rows[0][0])
	}
	if res := mustSess(t, a, "SELECT bal FROM acct WHERE id = 2"); res.Rows[0][0].I != 200 {
		t.Fatalf("a sees b's uncommitted write: %v", res.Rows[0][0])
	}
	mustSess(t, a, "COMMIT")
	mustSess(t, b, "COMMIT")

	res := mustExec(t, p, "SELECT SUM(bal) FROM acct")
	if res.Rows[0][0].I != 400 {
		t.Fatalf("sum = %v, want 400", res.Rows[0][0])
	}
}

// TestProxySessionWriteConflict: first-writer-wins surfaces through the
// proxy, and the losing session recovers with ROLLBACK.
func TestProxySessionWriteConflict(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, p, "INSERT INTO t (id, v) VALUES (1, 10)")
	mustExec(t, p, "SELECT v FROM t WHERE id = 1") // train DET

	a, b := p.NewSession(), p.NewSession()
	defer a.Close()
	defer b.Close()
	mustSess(t, a, "BEGIN")
	mustSess(t, b, "BEGIN")
	mustSess(t, a, "UPDATE t SET v = 11 WHERE id = 1")
	var wc *sqldb.WriteConflictError
	if _, err := b.Execute("UPDATE t SET v = 22 WHERE id = 1"); !errors.As(err, &wc) {
		t.Fatalf("err = %v, want WriteConflictError", err)
	}
	mustSess(t, b, "ROLLBACK")
	mustSess(t, a, "COMMIT")
	if res := mustExec(t, p, "SELECT v FROM t WHERE id = 1"); res.Rows[0][0].I != 11 {
		t.Fatalf("v = %v, want 11", res.Rows[0][0])
	}
}

// TestAdjustmentConflictsWithOpenTxn: an onion adjustment on a table an
// open transaction has written fails with a retryable error, and succeeds
// once the transaction ends. This protects the layer/ciphertext agreement:
// the transaction's buffered rows were encrypted at the old layer.
func TestAdjustmentConflictsWithOpenTxn(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, p, "INSERT INTO t (k, v) VALUES (1, 10)")

	a, b := p.NewSession(), p.NewSession()
	defer a.Close()
	defer b.Close()
	mustSess(t, a, "BEGIN")
	mustSess(t, a, "INSERT INTO t (k, v) VALUES (2, 20)")

	// b's equality query needs a DET adjustment on t — blocked while a's
	// transaction has buffered rows for it.
	_, err := b.Execute("SELECT v FROM t WHERE k = ?", sqldb.Int(1))
	if err == nil || !strings.Contains(err.Error(), "open transaction") {
		t.Fatalf("adjustment during open txn: err = %v, want conflict", err)
	}

	mustSess(t, a, "COMMIT")
	res := mustSess(t, b, "SELECT v FROM t WHERE k = ?", sqldb.Int(1))
	if len(res.Rows) != 1 || res.Rows[0][0].I != 10 {
		t.Fatalf("retry after commit: %v", res.Rows)
	}
	// And a's committed row decrypts at the new layer too.
	res = mustSess(t, b, "SELECT v FROM t WHERE k = ?", sqldb.Int(2))
	if len(res.Rows) != 1 || res.Rows[0][0].I != 20 {
		t.Fatalf("row committed before adjustment: %v", res.Rows)
	}
}

// TestProxySessionCloseRollsBack: a session dropped mid-transaction (the
// disconnect path) leaves no buffered writes and no locks.
func TestProxySessionCloseRollsBack(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, p, "INSERT INTO t (k, v) VALUES (1, 10)")
	mustExec(t, p, "SELECT v FROM t WHERE k = 1") // train

	s := p.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO t (k, v) VALUES (2, 20)")
	mustSess(t, s, "UPDATE t SET v = 99 WHERE k = 1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	res := mustExec(t, p, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v, want 1 (insert discarded)", res.Rows[0][0])
	}
	res = mustExec(t, p, "SELECT v FROM t WHERE k = 1")
	if res.Rows[0][0].I != 10 {
		t.Fatalf("v = %v, want 10 (update discarded)", res.Rows[0][0])
	}
	// Lock released: a fresh write succeeds immediately.
	mustExec(t, p, "UPDATE t SET v = 11 WHERE k = 1")
}

// TestProxySessionStress is the proxy-level serializability check: K
// sessions run transfer transactions over an encrypted accounts table with
// single-statement read-modify-writes, aborting on conflict. The encrypted
// total must be exactly preserved and every committed marker present.
func TestProxySessionStress(t *testing.T) {
	const (
		sessions = 6
		accounts = 4
		txnsEach = 12
		initial  = 1000
	)
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	mustExec(t, p, "CREATE TABLE mark (sess INT, n INT)")
	for i := 0; i < accounts; i++ {
		mustExec(t, p, fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, %d)", i, initial))
	}
	// Train every onion the storm will need (id equality, bal updates).
	mustExec(t, p, "SELECT bal FROM acct WHERE id = 0")
	mustExec(t, p, "SELECT n FROM mark WHERE sess = 0")

	var commits int64
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*131 + 7))
			s := p.NewSession()
			defer s.Close()
			for i := 0; i < txnsEach; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amt := rng.Intn(9) + 1
				if _, err := s.Execute("BEGIN"); err != nil {
					errCh <- err
					return
				}
				ok := true
				for _, q := range []string{
					fmt.Sprintf("UPDATE acct SET bal = bal - %d WHERE id = %d", amt, from),
					fmt.Sprintf("UPDATE acct SET bal = bal + %d WHERE id = %d", amt, to),
					fmt.Sprintf("INSERT INTO mark (sess, n) VALUES (%d, %d)", g, i),
				} {
					if _, err := s.Execute(q); err != nil {
						var wc *sqldb.WriteConflictError
						if !errors.As(err, &wc) {
							errCh <- fmt.Errorf("%s: %v", q, err)
							return
						}
						if _, rerr := s.Execute("ROLLBACK"); rerr != nil {
							errCh <- rerr
							return
						}
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				if _, err := s.Execute("COMMIT"); err != nil {
					errCh <- err
					return
				}
				atomic.AddInt64(&commits, 1)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	res := mustExec(t, p, "SELECT SUM(bal) FROM acct")
	if res.Rows[0][0].I != accounts*initial {
		t.Fatalf("SUM(bal) = %v, want %d: committed transfers interleaved", res.Rows[0][0], accounts*initial)
	}
	res = mustExec(t, p, "SELECT COUNT(*) FROM mark")
	if res.Rows[0][0].I != commits {
		t.Fatalf("markers = %v, commits = %d: partial transaction visible", res.Rows[0][0], commits)
	}
}

// TestProxyDurableSessionTxn: a transaction committed through a proxy
// session on a durable stack survives a restart with its onion metadata.
func TestProxyDurableSessionTxn(t *testing.T) {
	dir := t.TempDir()
	open := func() (*sqldb.DB, *Proxy) {
		db, err := sqldb.Open(dir, sqldb.DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(db, Options{HOMBits: 256, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return db, p
	}
	db, p := open()
	mustExec(t, p, "CREATE TABLE t (k INT, v INT)")
	s := p.NewSession()
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO t (k, v) VALUES (1, 10), (2, 20)")
	mustSess(t, s, "COMMIT")
	mustSess(t, s, "BEGIN")
	mustSess(t, s, "INSERT INTO t (k, v) VALUES (3, 30)")
	mustSess(t, s, "ROLLBACK")
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, p2 := open()
	defer db2.Close()
	res := mustExec(t, p2, "SELECT SUM(v) FROM t")
	if res.Rows[0][0].I != 30 {
		t.Fatalf("recovered sum = %v, want 30", res.Rows[0][0])
	}
	res = mustExec(t, p2, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("recovered rows = %v, want 2", res.Rows[0][0])
	}
}

// TestCommitReSealsMetadata: a transaction that buffered a sealed-metadata
// blob at statement time must not commit that (possibly stale) blob if an
// onion adjustment committed newer metadata while the transaction was
// open — the commit re-seals the current state. Otherwise recovery would
// load pre-adjustment layer pointers over post-adjustment ciphertexts.
func TestCommitReSealsMetadata(t *testing.T) {
	dir := t.TempDir()
	open := func() (*sqldb.DB, *Proxy) {
		db, err := sqldb.Open(dir, sqldb.DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(db, Options{HOMBits: 256, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return db, p
	}
	db, p := open()
	mustExec(t, p, "CREATE TABLE t (k INT, n INT)")
	mustExec(t, p, "CREATE TABLE u (k INT, v INT)")
	mustExec(t, p, "INSERT INTO t (k, n) VALUES (1, 5)")
	mustExec(t, p, "INSERT INTO u (k, v) VALUES (7, 70)")

	a, b := p.NewSession(), p.NewSession()
	mustSess(t, a, "BEGIN")
	// HOM increment: seals a statement-time blob into A's transaction
	// (staleness flags for t) — at this instant u's onions are still RND.
	mustSess(t, a, "UPDATE t SET n = n + 1 WHERE k = 1")
	// B adjusts u (RND -> DET) while A's transaction is open; the
	// adjustment commits metadata recording u at DET.
	res := mustSess(t, b, "SELECT v FROM u WHERE k = ?", sqldb.Int(7))
	if len(res.Rows) != 1 || res.Rows[0][0].I != 70 {
		t.Fatalf("adjusting query: %v", res.Rows)
	}
	// A commits: the blob written with its batch must reflect u at DET.
	mustSess(t, a, "COMMIT")
	a.Close()
	b.Close()
	db.Close()

	// Restart: if A's stale statement-time blob won, the proxy now thinks
	// u's Eq onion is still RND and re-strips a layer that is gone.
	db2, p2 := open()
	defer db2.Close()
	res, err := p2.Execute("SELECT v FROM u WHERE k = ?", sqldb.Int(7))
	if err != nil {
		t.Fatalf("equality on u after restart: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 70 {
		t.Fatalf("u after restart: %v", res.Rows)
	}
	if adj := p2.Stats().OnionAdjustments; adj != 0 {
		t.Fatalf("restarted proxy re-adjusted %d times; metadata rolled back", adj)
	}
	// And A's committed increment survived.
	res = mustExec(t, p2, "SELECT n FROM t WHERE k = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 6 {
		t.Fatalf("t.n after restart: %v", res.Rows)
	}
}
