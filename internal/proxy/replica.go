// Replica-mode proxy: a proxy opened over a store.Replica engine (a
// replication follower) serves reads only. The interesting problem is
// metadata freshness — the primary's proxy reseals its schema/onion
// metadata on every transition (DDL, onion adjustment, staleness flag) and
// the sealed blob rides the replicated WAL, so the follower's engine
// surfaces newer blobs over time. The replica proxy tracks the engine's
// MetaGeneration counter and atomically swaps in a freshly unsealed
// metadata snapshot before the first query that runs after a transition;
// between transitions the check is one atomic load on the read path.
//
// Writes (and transactions) are refused with the engine's ReadOnlyError,
// which names the primary's address so a client can redirect. A SELECT
// that would itself require an onion adjustment fails the same way — the
// layer must be peeled on the primary, replicate down, and only then can
// the follower serve that query shape.
package proxy

import (
	"fmt"
	"sync/atomic"

	"repro/internal/store"
)

// IsReplica reports whether this proxy fronts a read-only replication
// follower.
func (p *Proxy) IsReplica() bool { return p.replica != nil }

// ReplicaSeq returns the follower's replay position (0 for a non-replica
// proxy). Clients use it to reason about staleness bounds.
func (p *Proxy) ReplicaSeq() uint64 {
	if p.replica == nil {
		return 0
	}
	return p.replica.ReplicaSeq()
}

// PrimaryAddr returns the primary's replication address for a replica
// proxy ("" otherwise).
func (p *Proxy) PrimaryAddr() string {
	if p.replica == nil {
		return ""
	}
	return p.replica.PrimaryAddr()
}

// replicaReadOnly is the refusal for any non-SELECT on a replica proxy.
func (p *Proxy) replicaReadOnly() error {
	return &store.ReadOnlyError{Primary: p.replica.PrimaryAddr()}
}

// maybeReloadReplicaMeta swaps in the newest replicated metadata blob if
// the engine has applied one since the last load. The generation counter
// is read BEFORE the blob: a transition landing between the two reads
// leaves the stored generation stale, so the next query simply reloads
// again — never the reverse (a new generation recorded against an old
// blob).
func (p *Proxy) maybeReloadReplicaMeta() error {
	gen := p.replica.MetaGeneration()
	if gen == atomic.LoadUint64(&p.replicaGen) {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	gen = p.replica.MetaGeneration()
	if gen == atomic.LoadUint64(&p.replicaGen) {
		return nil
	}
	sealed := p.db.Meta()
	if sealed == nil {
		// Generation moved but no blob is visible yet (e.g. a snapshot
		// resync in flight); try again on the next query.
		return nil
	}
	// restoreState assembles into p.tables from scratch; keep the old maps
	// to roll back to if the new blob names tables that have not finished
	// replaying yet.
	oldTables, oldNTab := p.tables, p.nTab
	p.tables = make(map[string]*TableMeta)
	p.nTab = 0
	if err := p.restoreState(sealed); err != nil {
		p.tables, p.nTab = oldTables, oldNTab
		return fmt.Errorf("proxy: reloading replicated metadata: %w", err)
	}
	atomic.StoreUint64(&p.replicaGen, gen)
	return nil
}
