package proxy

// Batched, parallel crypto pipeline (§3.1: "AVL binary search trees for
// batch encryption, e.g., database loads"). Multi-row INSERTs first feed
// each column's Ord-onion plaintexts through ope.EncryptBatch so the sorted
// traversal shares node-cache prefixes, then fan the remaining per-row
// onion work (DET/RND/JOIN-ADJ/SEARCH/HOM) across a bounded worker pool.
// Result-set decryption gets the same row-parallel treatment. Output
// ordering is deterministic: workers write results by row index, and the
// lowest-index error wins.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/onion"
	"repro/internal/sqldb"
)

// batchWorkers resolves Options.BatchWorkers to the effective pool size.
func (p *Proxy) batchWorkers() int {
	if n := p.opts.BatchWorkers; n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// forEachRow runs fn(i) for i in [0, n), fanning across at most workers
// goroutines. Results must be written by index inside fn, which keeps row
// ordering deterministic regardless of scheduling; when several rows fail,
// the lowest-index error is returned, matching the serial path.
func forEachRow(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     int64 = -1
		failed   atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Rows are claimed in ascending index order, so the lowest-index
	// failing row is always claimed (and its error recorded) before the
	// bail-out flag can stop anything at or below it: the error returned
	// matches the serial path's.
	return firstErr
}

// prewarmOPE batch-encrypts every Ord-onion plaintext of a multi-row INSERT
// so the per-row workers hit the OPE leaf cache instead of walking the tree
// independently. Sorting happens inside EncryptBatch; values that fail to
// coerce or encode are skipped here and reported by the per-row path, which
// keeps error attribution identical to the serial pipeline.
func (p *Proxy) prewarmOPE(colMeta []*ColumnMeta, rows [][]sqldb.Value) {
	if p.opts.DisableOPECache || len(rows) < 2 {
		return
	}
	type job struct {
		cm *ColumnMeta
		ms []uint64
	}
	var jobs []job
	for ci, cm := range colMeta {
		if cm.Plain || cm.EncFor != nil || !cm.HasOnion(onion.Ord) {
			continue
		}
		ms := make([]uint64, 0, len(rows))
		for _, row := range rows {
			v := row[ci]
			if v.IsNull() {
				continue
			}
			coerced, err := coerceToColumn(cm, v)
			if err != nil {
				continue
			}
			m, err := opeEncode(coerced)
			if err != nil {
				continue
			}
			ms = append(ms, m)
		}
		if len(ms) >= 2 {
			jobs = append(jobs, job{cm: cm, ms: ms})
		}
	}
	// Columns batch independently; each column's sorted pass stays serial
	// to preserve prefix sharing. Errors (domain overflow) surface from the
	// per-row path with proper row context; the pre-pass is a cache warmer.
	_ = forEachRow(p.batchWorkers(), len(jobs), func(i int) error {
		_, _ = p.opeCipher(jobs[i].cm).EncryptBatch(jobs[i].ms)
		return nil
	})
}
