package proxy

import (
	"testing"

	"repro/internal/onion"
)

func TestRaiseOnionEq(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)

	// Expose DET via an equality query, then raise it back.
	mustExec(t, p, "SELECT id FROM employees WHERE name = 'Alice'")
	cm := p.Table("employees").Col("name")
	if cm.Onions[onion.Eq].Current() != onion.DET {
		t.Fatal("setup: Eq should be at DET")
	}
	if err := p.RaiseOnion("employees", "name", onion.Eq); err != nil {
		t.Fatal(err)
	}
	if cm.Onions[onion.Eq].Current() != onion.RND {
		t.Fatalf("Eq at %s after raise, want RND", cm.Onions[onion.Eq].Current())
	}

	// The column is fully functional: a later equality query re-adjusts
	// and returns correct results.
	res := mustExec(t, p, "SELECT id FROM employees WHERE name = 'Bob'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// And plain projection still decrypts.
	res = mustExec(t, p, "SELECT name FROM employees WHERE id = 3")
	if res.Rows[0][0].S != "Carol" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRaiseOnionOrd(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	mustExec(t, p, "SELECT name FROM employees WHERE salary > 60000")
	cm := p.Table("employees").Col("salary")
	if cm.Onions[onion.Ord].Current() != onion.OPE {
		t.Fatal("setup: Ord should be at OPE")
	}
	if err := p.RaiseOnion("employees", "salary", onion.Ord); err != nil {
		t.Fatal(err)
	}
	if cm.Onions[onion.Ord].Current() != onion.RND {
		t.Fatal("Ord not raised")
	}
	res := mustExec(t, p, "SELECT name FROM employees WHERE salary BETWEEN 55000 AND 75000")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRaiseOnionNoop(t *testing.T) {
	p := newTestProxy(t)
	seedEmployees(t, p)
	// Already at RND: raising is a no-op, not an error.
	if err := p.RaiseOnion("employees", "name", onion.Eq); err != nil {
		t.Fatal(err)
	}
	// Unknown onion/table/column error paths.
	if err := p.RaiseOnion("employees", "name", onion.Add); err == nil {
		t.Fatal("want error for missing onion")
	}
	if err := p.RaiseOnion("nosuch", "name", onion.Eq); err == nil {
		t.Fatal("want error for missing table")
	}
}

func TestRaiseOnionWithNulls(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, p, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	mustExec(t, p, "SELECT a FROM t WHERE b = 'x'")
	if err := p.RaiseOnion("t", "b", onion.Eq); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, p, "SELECT a FROM t WHERE b IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRangeJoinDeclared(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE a (x INT)")
	mustExec(t, p, "CREATE TABLE b (y INT)")
	// Declared before load: both Ord onions share an OPE key (§3.4).
	if err := p.DeclareOPEJoin("a", "x", "b", "y"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, p, "INSERT INTO a (x) VALUES (1), (5), (9)")
	mustExec(t, p, "INSERT INTO b (y) VALUES (4), (6)")
	res := mustExec(t, p, "SELECT COUNT(*) FROM a, b WHERE a.x < b.y")
	// pairs: (1,4) (1,6) (5,6) = 3
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestRangeJoinUndeclaredFails(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE a (x INT)")
	mustExec(t, p, "CREATE TABLE b (y INT)")
	mustExec(t, p, "INSERT INTO a (x) VALUES (1)")
	mustExec(t, p, "INSERT INTO b (y) VALUES (2)")
	if _, err := p.Execute("SELECT COUNT(*) FROM a, b WHERE a.x < b.y"); err == nil {
		t.Fatal("undeclared range join should fail (§3.4)")
	}
}

func TestDeclareOPEJoinAfterLoadFails(t *testing.T) {
	p := newTestProxy(t)
	mustExec(t, p, "CREATE TABLE a (x INT)")
	mustExec(t, p, "CREATE TABLE b (y INT)")
	mustExec(t, p, "INSERT INTO a (x) VALUES (1)")
	if err := p.DeclareOPEJoin("a", "x", "b", "y"); err == nil {
		t.Fatal("declaring OPE-JOIN after data load should fail")
	}
}
