package proxy

import (
	"fmt"
	"strings"

	"repro/internal/onion"
	"repro/internal/sqlparser"
)

// createTable registers a logical table and creates its anonymized
// counterpart at the DBMS: opaque table/column names, one server column per
// onion, an IV column, and a hidden row id the proxy uses to address rows
// (Figure 3's data layout).
func (p *Proxy) createTable(st *sqlparser.CreateTableStmt) error {
	if _, exists := p.tables[st.Name]; exists {
		return fmt.Errorf("proxy: table %s already exists", st.Name)
	}
	p.nTab++
	tm := &TableMeta{
		Logical:   st.Name,
		Anon:      fmt.Sprintf("table%d", p.nTab),
		byName:    make(map[string]*ColumnMeta),
		SpeaksFor: st.SpeaksFor,
		nextRid:   1,
	}

	anon := &sqlparser.CreateTableStmt{Name: tm.Anon}
	anon.Cols = append(anon.Cols, sqlparser.ColumnDef{
		Name: "rid", Type: sqlparser.TypeInt, Primary: true,
	})

	for i, cd := range st.Cols {
		cm := &ColumnMeta{
			Logical: cd.Name,
			Anon:    fmt.Sprintf("c%d", i+1),
			Type:    cd.Type,
			Plain:   cd.Plain,
			EncFor:  cd.EncFor,
			Primary: cd.Primary,
			Table:   tm,
			Onions:  make(map[onion.Onion]*onion.State),
			Stale:   make(map[onion.Onion]bool),
		}
		cm.joinGroup = cm
		cm.joinRefT, cm.joinRefC = st.Name, cd.Name
		if cd.MinEnc != "" {
			l, err := onion.LayerFromString(cd.MinEnc)
			if err != nil {
				p.nTab--
				return fmt.Errorf("proxy: column %s.%s: %w", st.Name, cd.Name, err)
			}
			cm.MinEnc = l
		}
		tm.Cols = append(tm.Cols, cm)
		tm.byName[cd.Name] = cm

		switch {
		case cd.Plain:
			anon.Cols = append(anon.Cols, sqlparser.ColumnDef{Name: cm.Anon, Type: cd.Type})
		case cd.EncFor != nil:
			// Multi-principal column: a single RND-under-principal-key
			// blob; no server computation is possible on it (§4.2).
			anon.Cols = append(anon.Cols, sqlparser.ColumnDef{Name: cm.mpCol(), Type: sqlparser.TypeBlob})
		default:
			for _, o := range p.plannedOnions(st.Name, cm) {
				cm.Onions[o] = onion.NewState(onion.StackFor(o, cd.Type))
				anon.Cols = append(anon.Cols, sqlparser.ColumnDef{
					Name: cm.onionCol(o),
					Type: cm.serverType(o),
				})
			}
			anon.Cols = append(anon.Cols, sqlparser.ColumnDef{Name: cm.ivCol(), Type: sqlparser.TypeBlob})
		}
	}

	// Validate ENC FOR owner columns before creating anything, so a
	// rejected schema leaves no trace at the proxy or the DBMS.
	for _, cm := range tm.Cols {
		if cm.EncFor != nil && tm.byName[cm.EncFor.OwnerColumn] == nil {
			p.nTab--
			return fmt.Errorf("proxy: ENC FOR owner column %s.%s does not exist",
				st.Name, cm.EncFor.OwnerColumn)
		}
	}

	// Register first so the sealed metadata snapshot includes the new
	// table, then create it at the DBMS with the snapshot attached: table
	// and metadata become durable in one WAL batch, or not at all.
	p.tables[st.Name] = tm
	p.metaMu.Lock()
	defer p.metaMu.Unlock()
	sealed, err := p.sealedMetaLocked()
	if err != nil {
		delete(p.tables, st.Name)
		p.nTab--
		return err
	}
	//cryptdb:sink-ok anon is the rewritten CREATE TABLE: anonymized identifiers and onion column defs only, no data literals
	if _, err := p.db.ExecAutonomousWithMeta(anon, sealed); err != nil {
		if !stmtApplied(err) {
			delete(p.tables, st.Name)
			p.nTab--
		}
		return fmt.Errorf("proxy: creating anonymized table: %w", err)
	}
	return nil
}

// createIndex remembers the application's index request and materializes
// indexes on the onion layers that support them. Per §3.3, indexes are
// built on DET/JOIN/OPE ciphertexts but never on RND/HOM/SEARCH: the proxy
// hash-indexes the Eq onion once it is at DET, the JAdj onion once joins
// expose it, and builds an ordered (range) index on the Ord onion once it
// sits at OPE — so one application CREATE INDEX yields both the equality
// and the range index, exactly as a B-tree over plaintext would serve both.
func (p *Proxy) createIndex(st *sqlparser.CreateIndexStmt) error {
	tm, ok := p.tables[st.Table]
	if !ok {
		return fmt.Errorf("proxy: no table %s", st.Table)
	}
	cm := tm.Col(st.Column)
	if cm == nil {
		return fmt.Errorf("proxy: no column %s.%s", st.Table, st.Column)
	}
	using := strings.ToUpper(st.Using)
	if using == "ORDERED" {
		using = "BTREE"
	}
	switch using {
	case "", "HASH", "BTREE":
	default:
		return fmt.Errorf("proxy: unknown index type %q", st.Using)
	}
	if cm.Plain {
		//cryptdb:sink-ok CREATE INDEX carries identifiers only; the column is declared plaintext by the schema annotation
		_, err := p.db.Exec(&sqlparser.CreateIndexStmt{
			Name: st.Name, Table: tm.Anon, Column: cm.Anon, Unique: st.Unique, Using: st.Using,
		})
		return err
	}
	if cm.EncFor != nil {
		return fmt.Errorf("proxy: cannot index multi-principal column %s.%s", st.Table, st.Column)
	}
	cm.wantIndex = true
	cm.wantUnique = st.Unique
	cm.wantUsing = using
	if err := p.materializeIndexes(cm); err != nil {
		return err
	}
	// The want* flags are metadata even when no index materialized yet
	// (all onions still at RND): persist so a restarted proxy still knows
	// to build the index once adjustment exposes an indexable layer.
	return p.persistMetaLocked()
}

// materializeIndexes creates server indexes for onions whose current layer
// supports them.
func (p *Proxy) materializeIndexes(cm *ColumnMeta) error {
	if !cm.wantIndex {
		return nil
	}
	// USING BTREE asks for a range-only index: skip the Eq hash index
	// unless it must enforce UNIQUE. USING HASH suppresses the ordered
	// index below. The JAdj index is proxy-internal (§3.4 joins probe by
	// equality) and ignores the clause.
	// Each index creation commits with a sealed metadata snapshot that
	// already records it as materialized, so a crash cannot leave the
	// index built but forgotten (or vice versa).
	createWithMeta := func(stmt *sqlparser.CreateIndexStmt, done *bool) error {
		p.metaMu.Lock()
		defer p.metaMu.Unlock()
		*done = true
		sealed, err := p.sealedMetaLocked()
		if err == nil {
			_, err = p.db.ExecWithMeta(stmt, sealed)
		}
		if err != nil && !stmtApplied(err) {
			*done = false
		}
		return err
	}
	if st := cm.Onions[onion.Eq]; st != nil && st.Current() == onion.DET && !cm.idxEq &&
		(cm.wantUsing != "BTREE" || cm.wantUnique) {
		// DET ciphertexts only support equality: hash index, no ordered.
		stmt := &sqlparser.CreateIndexStmt{
			Name:   cm.Table.Anon + "_" + cm.Anon + "_eq_idx",
			Table:  cm.Table.Anon,
			Column: cm.onionCol(onion.Eq),
			Unique: cm.wantUnique,
			Using:  "HASH",
		}
		if err := createWithMeta(stmt, &cm.idxEq); err != nil {
			return err
		}
	}
	if st := cm.Onions[onion.JAdj]; st != nil && st.Current() == onion.JOIN && !cm.idxJadj {
		stmt := &sqlparser.CreateIndexStmt{
			Name:   cm.Table.Anon + "_" + cm.Anon + "_jadj_idx",
			Table:  cm.Table.Anon,
			Column: cm.onionCol(onion.JAdj),
			Using:  "HASH",
		}
		if err := createWithMeta(stmt, &cm.idxJadj); err != nil {
			return err
		}
	}
	// OPE ciphertexts preserve plaintext order, so an ordered index over
	// them serves range predicates, ORDER BY ... LIMIT and MIN/MAX (§3.3).
	// The Ord onion starts under RND; this materializes lazily after the
	// first order-class query peels it (lowerTo re-invokes us).
	if st := cm.Onions[onion.Ord]; st != nil && st.Current() == onion.OPE && !cm.idxOrd &&
		cm.wantUsing != "HASH" {
		stmt := &sqlparser.CreateIndexStmt{
			Name:   cm.Table.Anon + "_" + cm.Anon + "_ord_idx",
			Table:  cm.Table.Anon,
			Column: cm.onionCol(onion.Ord),
			Using:  "BTREE",
		}
		if err := createWithMeta(stmt, &cm.idxOrd); err != nil {
			return err
		}
	}
	return nil
}

// DeclareOPEJoin declares ahead of time that two columns will participate
// in range joins, giving their Ord onions a shared OPE key (§3.4: "CryptDB
// requires that pairs of columns that will be involved in such joins be
// declared by the application ahead of time"). Must be called before any
// rows are inserted into either table.
func (p *Proxy) DeclareOPEJoin(table1, col1, table2, col2 string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c1, err := p.lookupCol(table1, col1)
	if err != nil {
		return err
	}
	c2, err := p.lookupCol(table2, col2)
	if err != nil {
		return err
	}
	rows := func(anon string) int {
		if ti := p.db.Table(anon); ti != nil {
			return ti.RowCount()
		}
		return 0
	}
	if rows(c1.Table.Anon) > 0 || rows(c2.Table.Anon) > 0 {
		return fmt.Errorf("proxy: OPE-JOIN must be declared before data is inserted")
	}
	label := "opejoin:" + table1 + "." + col1 + ":" + table2 + "." + col2
	shared := p.mk.DeriveLabel(label)
	c1.opeShared = shared
	c2.opeShared = shared
	c1.opeSharedLabel = label
	c2.opeSharedLabel = label
	c1.opeCipher = nil
	c2.opeCipher = nil
	// Persist the declaration (by label; restore re-derives the shared
	// key): a restarted proxy must keep encrypting both columns under the
	// same OPE key or range joins silently break.
	return p.persistMetaLocked()
}

func (p *Proxy) lookupCol(table, col string) (*ColumnMeta, error) {
	tm, ok := p.tables[table]
	if !ok {
		return nil, fmt.Errorf("proxy: no table %s", table)
	}
	cm := tm.Col(col)
	if cm == nil {
		return nil, fmt.Errorf("proxy: no column %s.%s", table, col)
	}
	return cm, nil
}
