package proxy

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crypto/det"
	"repro/internal/crypto/joinadj"
	"repro/internal/crypto/ope"
	"repro/internal/crypto/rnd"
	"repro/internal/crypto/search"
	"repro/internal/onion"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// OPE encoding parameters: signed integers are shifted into a 40-bit
// unsigned domain (covering ±2^39), strings contribute their first five
// bytes. The range is 63 bits (vs the paper's 64) so OPE ciphertexts stay
// positive when stored in the DBMS's signed 64-bit integer columns and
// server-side comparisons order them correctly.
const (
	opeDomainBits = 40
	opeRangeBits  = 63
	opeOffset     = int64(1) << (opeDomainBits - 1)
)

// rndDecryptUint64/Bytes adapt package rnd for the decrypt_rnd UDF.
func rndDecryptUint64(key, iv []byte, ct uint64) (uint64, error) {
	return rnd.DecryptUint64(key, iv, ct)
}

func rndDecryptBytes(key, iv, ct []byte) ([]byte, error) {
	return rnd.DecryptBytes(key, iv, ct)
}

// colKey derives the key for one onion layer of a column (Equation 1).
func (p *Proxy) colKey(cm *ColumnMeta, o onion.Onion, l onion.Layer) []byte {
	return p.mk.Derive(cm.Table.Logical, cm.Logical, string(o), string(l))
}

func (p *Proxy) detCipher(cm *ColumnMeta) *det.Cipher {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.detCipher == nil {
		cm.detCipher = det.New(p.colKey(cm, onion.Eq, onion.DET))
	}
	return cm.detCipher
}

func (p *Proxy) opeCipher(cm *ColumnMeta) *ope.Cipher {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.opeCipher == nil {
		key := p.colKey(cm, onion.Ord, onion.OPE)
		if cm.opeShared != nil {
			key = cm.opeShared
		}
		c, err := ope.NewWithBits(key, opeDomainBits, opeRangeBits)
		if err != nil {
			panic("proxy: ope parameters: " + err.Error()) // impossible: constants
		}
		if p.opts.DisableOPECache {
			c.DisableCache()
		}
		cm.opeCipher = c
	}
	return cm.opeCipher
}

func (p *Proxy) searchCipher(cm *ColumnMeta) *search.Cipher {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.searchCipher == nil {
		cm.searchCipher = search.New(p.colKey(cm, onion.Search, onion.SEARCH))
	}
	return cm.searchCipher
}

func (p *Proxy) joinKey(cm *ColumnMeta) *joinadj.Key {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.joinKey == nil {
		cm.joinKey = joinadj.DeriveKey(p.colKey(cm, onion.JAdj, onion.JOIN))
	}
	return cm.joinKey
}

// plaintextBytes canonicalizes a value for DET/JOIN-ADJ/SEARCH input.
func plaintextBytes(v sqldb.Value) []byte {
	switch v.Kind {
	case sqldb.KindInt:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I))
		return b[:]
	case sqldb.KindText:
		return []byte(v.S)
	case sqldb.KindBlob:
		return v.B
	}
	return nil
}

// opeEncode maps a value into OPE's integer domain, preserving order.
func opeEncode(v sqldb.Value) (uint64, error) {
	switch v.Kind {
	case sqldb.KindInt:
		u := v.I + opeOffset
		if u < 0 || u >= int64(1)<<opeDomainBits {
			return 0, fmt.Errorf("proxy: integer %d outside the OPE domain (±2^%d)", v.I, opeDomainBits-1)
		}
		return uint64(u), nil
	case sqldb.KindText:
		// Order-preserving 5-byte prefix encoding. Longer shared
		// prefixes collide, matching OPE's use for coarse ordering.
		var u uint64
		b := []byte(v.S)
		for i := 0; i < 5; i++ {
			u <<= 8
			if i < len(b) {
				u |= uint64(b[i])
			}
		}
		return u, nil
	}
	return 0, fmt.Errorf("proxy: cannot OPE-encode %s", v.Kind)
}

// opeDecodeInt inverts opeEncode for integers (used to decrypt MIN/MAX
// results, which come back as OPE ciphertexts).
func opeDecodeInt(u uint64) int64 { return int64(u) - opeOffset }

// encryptOnion encrypts plaintext v into onion o of column cm at the
// onion's *current* layer, using iv for any RND wrapping.
func (p *Proxy) encryptOnion(cm *ColumnMeta, o onion.Onion, v sqldb.Value, iv []byte) (sqldb.Value, error) {
	if v.IsNull() {
		return sqldb.Null(), nil // NULLs are exposed unencrypted (§3.3)
	}
	st := cm.Onions[o]
	if st == nil {
		return sqldb.Value{}, fmt.Errorf("proxy: column %s.%s has no %s onion", cm.Table.Logical, cm.Logical, o)
	}
	cur := st.Current()

	switch o {
	case onion.Eq:
		if cm.Type == sqlparser.TypeInt {
			detCt := p.detCipher(cm).Uint64(uint64(v.I))
			if cur == onion.RND {
				wrapped, err := rnd.Uint64(p.colKey(cm, onion.Eq, onion.RND), iv, detCt)
				if err != nil {
					return sqldb.Value{}, err
				}
				return sqldb.Int(int64(wrapped)), nil
			}
			return sqldb.Int(int64(detCt)), nil
		}
		detCt := p.detCipher(cm).Bytes(plaintextBytes(v))
		if cur == onion.RND {
			wrapped, err := rnd.Bytes(p.colKey(cm, onion.Eq, onion.RND), iv, detCt)
			if err != nil {
				return sqldb.Value{}, err
			}
			return sqldb.Blob(wrapped), nil
		}
		return sqldb.Blob(detCt), nil

	case onion.JAdj:
		jv := p.joinKey(cm).Compute(p.joinPRF, plaintextBytes(v))
		if cur == onion.RND {
			wrapped, err := rnd.Bytes(p.colKey(cm, onion.JAdj, onion.RND), iv, jv)
			if err != nil {
				return sqldb.Value{}, err
			}
			return sqldb.Blob(wrapped), nil
		}
		return sqldb.Blob(jv), nil

	case onion.Ord:
		enc, err := opeEncode(v)
		if err != nil {
			return sqldb.Value{}, err
		}
		opeCt, err := p.opeCipher(cm).Encrypt(enc)
		if err != nil {
			return sqldb.Value{}, err
		}
		if cur == onion.RND {
			wrapped, err := rnd.Uint64(p.colKey(cm, onion.Ord, onion.RND), iv, opeCt)
			if err != nil {
				return sqldb.Value{}, err
			}
			return sqldb.Int(int64(wrapped)), nil
		}
		return sqldb.Int(int64(opeCt)), nil

	case onion.Add:
		ct, err := p.homKey.EncryptInt64(v.I)
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Blob(p.homKey.CiphertextBytes(ct)), nil

	case onion.Search:
		blob, err := p.searchCipher(cm).EncryptText(v.S)
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Blob(blob), nil
	}
	return sqldb.Value{}, fmt.Errorf("proxy: unknown onion %s", o)
}

// decryptEq recovers plaintext from a column's Eq onion value and its IV.
func (p *Proxy) decryptEq(cm *ColumnMeta, ct, iv sqldb.Value) (sqldb.Value, error) {
	if ct.IsNull() {
		return sqldb.Null(), nil
	}
	st := cm.Onions[onion.Eq]
	atRND := st.Current() == onion.RND

	if cm.Type == sqlparser.TypeInt {
		u := uint64(ct.I)
		if atRND {
			if iv.IsNull() {
				return sqldb.Value{}, fmt.Errorf("proxy: missing IV decrypting %s.%s", cm.Table.Logical, cm.Logical)
			}
			var err error
			u, err = rnd.DecryptUint64(p.colKey(cm, onion.Eq, onion.RND), iv.B, u)
			if err != nil {
				return sqldb.Value{}, err
			}
		}
		return sqldb.Int(int64(p.detCipher(cm).DecryptUint64(u))), nil
	}

	b := ct.B
	if atRND {
		if iv.IsNull() {
			return sqldb.Value{}, fmt.Errorf("proxy: missing IV decrypting %s.%s", cm.Table.Logical, cm.Logical)
		}
		var err error
		b, err = rnd.DecryptBytes(p.colKey(cm, onion.Eq, onion.RND), iv.B, b)
		if err != nil {
			return sqldb.Value{}, err
		}
	}
	pt, err := p.detCipher(cm).DecryptBytes(b)
	if err != nil {
		return sqldb.Value{}, err
	}
	if cm.Type == sqlparser.TypeText {
		return sqldb.Text(string(pt)), nil
	}
	return sqldb.Blob(pt), nil
}

// decryptAdd recovers plaintext from the Add onion (used when other onions
// are stale after an increment — §3.3).
func (p *Proxy) decryptAdd(cm *ColumnMeta, ct sqldb.Value) (sqldb.Value, error) {
	if ct.IsNull() {
		return sqldb.Null(), nil
	}
	v, err := p.homKey.DecryptInt64(p.homKey.CiphertextFromBytes(ct.B))
	if err != nil {
		return sqldb.Value{}, err
	}
	return sqldb.Int(v), nil
}

// decryptOrd recovers an integer plaintext from an OPE ciphertext (MIN/MAX
// results). Only valid when the Ord onion is at OPE and the column is an
// integer (string OPE is a lossy prefix encoding).
func (p *Proxy) decryptOrd(cm *ColumnMeta, ct sqldb.Value) (sqldb.Value, error) {
	if ct.IsNull() {
		return sqldb.Null(), nil
	}
	if cm.Type != sqlparser.TypeInt {
		return sqldb.Value{}, fmt.Errorf("proxy: cannot invert string OPE for %s.%s", cm.Table.Logical, cm.Logical)
	}
	u, err := p.opeCipher(cm).Decrypt(uint64(ct.I))
	if err != nil {
		return sqldb.Value{}, err
	}
	return sqldb.Int(opeDecodeInt(u)), nil
}

// encryptConstEq encrypts a query constant for an equality comparison
// against cm: the "successively apply remaining Eq layers" step of §3.3.
// The column must already be at DET (the analyzer guarantees this).
func (p *Proxy) encryptConstEq(cm *ColumnMeta, v sqldb.Value) (sqldb.Value, error) {
	if v.IsNull() {
		return sqldb.Null(), nil
	}
	coerced, err := coerceToColumn(cm, v)
	if err != nil {
		return sqldb.Value{}, err
	}
	if cm.Type == sqlparser.TypeInt {
		return sqldb.Int(int64(p.detCipher(cm).Uint64(uint64(coerced.I)))), nil
	}
	return sqldb.Blob(p.detCipher(cm).Bytes(plaintextBytes(coerced))), nil
}

// encryptConstOrd encrypts a query constant for an order comparison.
func (p *Proxy) encryptConstOrd(cm *ColumnMeta, v sqldb.Value) (sqldb.Value, error) {
	if v.IsNull() {
		return sqldb.Null(), nil
	}
	coerced, err := coerceToColumn(cm, v)
	if err != nil {
		return sqldb.Value{}, err
	}
	enc, err := opeEncode(coerced)
	if err != nil {
		return sqldb.Value{}, err
	}
	ct, err := p.opeCipher(cm).Encrypt(enc)
	if err != nil {
		return sqldb.Value{}, err
	}
	return sqldb.Int(int64(ct)), nil
}

// coerceToColumn aligns a literal's kind with the column type, so that
// `WHERE intcol = '5'` encrypts 5, not the string "5".
func coerceToColumn(cm *ColumnMeta, v sqldb.Value) (sqldb.Value, error) {
	switch cm.Type {
	case sqlparser.TypeInt:
		n, err := v.AsInt()
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Int(n), nil
	case sqlparser.TypeText:
		if v.Kind == sqldb.KindInt {
			return sqldb.Text(v.String()), nil
		}
		if v.Kind == sqldb.KindBlob {
			return sqldb.Text(string(v.B)), nil
		}
		return v, nil
	default:
		return v, nil
	}
}
