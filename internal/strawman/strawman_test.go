package strawman

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
)

func newP(t *testing.T) *Proxy {
	t.Helper()
	p, err := New(sqldb.New())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustExec(t *testing.T, p *Proxy, sql string, params ...sqldb.Value) *sqldb.Result {
	t.Helper()
	res, err := p.Execute(sql, params...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func seed(t *testing.T, p *Proxy) {
	mustExec(t, p, "CREATE TABLE emp (id INT, name TEXT, salary INT)")
	mustExec(t, p, "INSERT INTO emp (id, name, salary) VALUES (1, 'Alice', 100), (2, 'Bob', 200), (3, 'Carol', 300)")
}

func TestEqualityViaUDF(t *testing.T) {
	p := newP(t)
	seed(t, p)
	res := mustExec(t, p, "SELECT id FROM emp WHERE name = 'Bob'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRangeAndSum(t *testing.T) {
	p := newP(t)
	seed(t, p)
	res := mustExec(t, p, "SELECT id FROM emp WHERE salary > 150")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, p, "SELECT SUM(salary) FROM emp")
	if res.Rows[0][0].I != 600 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
}

func TestJoin(t *testing.T) {
	p := newP(t)
	seed(t, p)
	mustExec(t, p, "CREATE TABLE dept (eid INT, dname TEXT)")
	mustExec(t, p, "INSERT INTO dept (eid, dname) VALUES (1, 'eng'), (3, 'hr')")
	res := mustExec(t, p, "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.id = d.eid WHERE d.dname = 'hr'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Carol" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUpdateIncAndSet(t *testing.T) {
	p := newP(t)
	seed(t, p)
	mustExec(t, p, "UPDATE emp SET salary = salary + 50 WHERE id = 1")
	res := mustExec(t, p, "SELECT salary FROM emp WHERE id = 1")
	if res.Rows[0][0].I != 150 {
		t.Fatalf("salary = %v", res.Rows[0][0])
	}
	mustExec(t, p, "UPDATE emp SET name = 'Alicia' WHERE id = 1")
	res = mustExec(t, p, "SELECT name FROM emp WHERE id = 1")
	if res.Rows[0][0].S != "Alicia" {
		t.Fatalf("name = %v", res.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	p := newP(t)
	seed(t, p)
	res := mustExec(t, p, "DELETE FROM emp WHERE salary < 250")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
}

func TestServerStoresOnlyRND(t *testing.T) {
	p := newP(t)
	seed(t, p)
	for _, tn := range p.DB().TableNames() {
		res, err := p.DB().ExecSQL("SELECT * FROM " + tn)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			for _, v := range row {
				if strings.Contains(v.String(), "Alice") || strings.Contains(v.String(), "Bob") {
					t.Fatalf("plaintext at rest in %s: %v", tn, v)
				}
				if v.Kind == sqldb.KindInt && (v.I == 100 || v.I == 200 || v.I == 300) {
					t.Fatalf("plaintext int at rest in %s: %v", tn, v)
				}
			}
		}
	}
}

func TestIndexesUselessButPresent(t *testing.T) {
	// The strawman can create indexes, but they index RND ciphertexts:
	// a fresh equal value gets a different ciphertext, so the index can
	// never serve the rewritten predicate (which goes through sm_dec).
	p := newP(t)
	seed(t, p)
	mustExec(t, p, "CREATE INDEX idx ON emp (id)")
	res := mustExec(t, p, "SELECT name FROM emp WHERE id = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
}
