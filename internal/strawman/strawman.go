// Package strawman implements the baseline design the paper compares
// against in Figure 11: every value is stored under RND only, and each
// query decrypts the relevant data row by row with a server-side UDF,
// computes over the plaintext, and re-encrypts results for updates. It is
// both less secure than CryptDB (the server sees plaintext during
// computation) and slower (the DBMS's indexes over RND ciphertexts are
// useless, so every predicate is a full scan through a decryption UDF).
package strawman

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/crypto/keys"
	"repro/internal/crypto/rnd"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// Proxy is a strawman encrypting proxy over one DBMS.
type Proxy struct {
	mu     sync.Mutex
	db     *sqldb.DB
	mk     *keys.Master
	tables map[string]*tableMeta
	nTab   int
}

type tableMeta struct {
	logical string
	anon    string
	cols    []colMeta
	byName  map[string]int
}

type colMeta struct {
	logical string
	anon    string
	typ     sqlparser.ColType
}

// New creates a strawman proxy.
func New(db *sqldb.DB) (*Proxy, error) {
	mk, err := keys.NewMaster()
	if err != nil {
		return nil, err
	}
	p := &Proxy{db: db, mk: mk, tables: make(map[string]*tableMeta)}
	p.registerUDFs()
	return p, nil
}

// DB exposes the underlying DBMS.
func (p *Proxy) DB() *sqldb.DB { return p.db }

func (p *Proxy) key(table, col string) []byte {
	return p.mk.Derive(table, col, "strawman", "RND")
}

func (p *Proxy) registerUDFs() {
	// sm_dec(key, ct, iv) decrypts one RND value to plaintext at the
	// server — the strawman's defining (and damning) operation.
	p.db.RegisterUDF("sm_dec", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 4 {
			return sqldb.Value{}, fmt.Errorf("sm_dec: want 4 args")
		}
		if args[1].IsNull() {
			return sqldb.Null(), nil
		}
		key, iv := args[0].B, args[2].B
		isInt := args[3].I == 1
		if isInt {
			pt, err := rnd.DecryptUint64(key, iv, uint64(args[1].I))
			if err != nil {
				return sqldb.Value{}, err
			}
			return sqldb.Int(int64(pt)), nil
		}
		pt, err := rnd.DecryptBytes(key, iv, args[1].B)
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Text(string(pt)), nil
	})

	// sm_inc(key, ct, iv, delta) decrypts, adds, and re-encrypts — the
	// strawman's UPDATE-inc path.
	p.db.RegisterUDF("sm_inc", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 4 {
			return sqldb.Value{}, fmt.Errorf("sm_inc: want 4 args")
		}
		if args[1].IsNull() {
			return sqldb.Null(), nil
		}
		key, iv := args[0].B, args[2].B
		pt, err := rnd.DecryptUint64(key, iv, uint64(args[1].I))
		if err != nil {
			return sqldb.Value{}, err
		}
		ct, err := rnd.Uint64(key, iv, uint64(int64(pt)+args[3].I))
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Int(int64(ct)), nil
	})
}

// Execute runs one logical statement through the strawman rewrite.
func (p *Proxy) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch s := st.(type) {
	case *sqlparser.CreateTableStmt:
		return p.createTable(s)
	case *sqlparser.CreateIndexStmt:
		// Indexes over RND ciphertexts are useless for plaintext
		// predicates; create them anyway, as a real deployment would.
		tm, ok := p.tables[s.Table]
		if !ok {
			return nil, fmt.Errorf("strawman: no table %s", s.Table)
		}
		ci, ok := tm.byName[s.Column]
		if !ok {
			return nil, fmt.Errorf("strawman: no column %s.%s", s.Table, s.Column)
		}
		return p.db.Exec(&sqlparser.CreateIndexStmt{
			Name: s.Name, Table: tm.anon, Column: tm.cols[ci].anon,
		})
	case *sqlparser.InsertStmt:
		return p.execInsert(s, params)
	case *sqlparser.SelectStmt:
		return p.execSelect(s, params)
	case *sqlparser.UpdateStmt:
		return p.execUpdate(s, params)
	case *sqlparser.DeleteStmt:
		return p.execDelete(s, params)
	case *sqlparser.BeginStmt, *sqlparser.CommitStmt, *sqlparser.RollbackStmt:
		return p.db.Exec(st)
	}
	return nil, fmt.Errorf("strawman: unsupported statement %T", st)
}

func (p *Proxy) createTable(s *sqlparser.CreateTableStmt) (*sqldb.Result, error) {
	if _, ok := p.tables[s.Name]; ok {
		return nil, fmt.Errorf("strawman: table %s exists", s.Name)
	}
	p.nTab++
	tm := &tableMeta{
		logical: s.Name,
		anon:    fmt.Sprintf("sm%d", p.nTab),
		byName:  make(map[string]int),
	}
	anon := &sqlparser.CreateTableStmt{Name: tm.anon}
	for i, cd := range s.Cols {
		cm := colMeta{logical: cd.Name, anon: fmt.Sprintf("c%d", i+1), typ: cd.Type}
		tm.byName[cd.Name] = len(tm.cols)
		tm.cols = append(tm.cols, cm)
		srvType := sqlparser.TypeBlob
		if cd.Type == sqlparser.TypeInt {
			srvType = sqlparser.TypeInt
		}
		anon.Cols = append(anon.Cols,
			sqlparser.ColumnDef{Name: cm.anon, Type: srvType},
			sqlparser.ColumnDef{Name: cm.anon + "_iv", Type: sqlparser.TypeBlob})
	}
	if _, err := p.db.Exec(anon); err != nil {
		return nil, err
	}
	p.tables[s.Name] = tm
	return &sqldb.Result{}, nil
}

func (p *Proxy) encrypt(tm *tableMeta, cm colMeta, v sqldb.Value) (ct, iv sqldb.Value, err error) {
	if v.IsNull() {
		return sqldb.Null(), sqldb.Null(), nil
	}
	ivb, err := rnd.NewIV()
	if err != nil {
		return sqldb.Value{}, sqldb.Value{}, err
	}
	key := p.key(tm.logical, cm.logical)
	if cm.typ == sqlparser.TypeInt {
		n, err := v.AsInt()
		if err != nil {
			return sqldb.Value{}, sqldb.Value{}, err
		}
		c, err := rnd.Uint64(key, ivb, uint64(n))
		if err != nil {
			return sqldb.Value{}, sqldb.Value{}, err
		}
		return sqldb.Int(int64(c)), sqldb.Blob(ivb), nil
	}
	var pt []byte
	switch v.Kind {
	case sqldb.KindText:
		pt = []byte(v.S)
	case sqldb.KindBlob:
		pt = v.B
	case sqldb.KindInt:
		pt = make([]byte, 8)
		binary.BigEndian.PutUint64(pt, uint64(v.I))
	}
	c, err := rnd.Bytes(key, ivb, pt)
	if err != nil {
		return sqldb.Value{}, sqldb.Value{}, err
	}
	return sqldb.Blob(c), sqldb.Blob(ivb), nil
}

func (p *Proxy) decrypt(tm *tableMeta, cm colMeta, ct, iv sqldb.Value) (sqldb.Value, error) {
	if ct.IsNull() {
		return sqldb.Null(), nil
	}
	key := p.key(tm.logical, cm.logical)
	if cm.typ == sqlparser.TypeInt {
		pt, err := rnd.DecryptUint64(key, iv.B, uint64(ct.I))
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Int(int64(pt)), nil
	}
	pt, err := rnd.DecryptBytes(key, iv.B, ct.B)
	if err != nil {
		return sqldb.Value{}, err
	}
	if cm.typ == sqlparser.TypeText {
		return sqldb.Text(string(pt)), nil
	}
	return sqldb.Blob(pt), nil
}

// decCall builds sm_dec(key, c, c_iv, isInt) for a column.
func (p *Proxy) decCall(tm *tableMeta, cm colMeta, alias string) sqlparser.Expr {
	isInt := int64(0)
	if cm.typ == sqlparser.TypeInt {
		isInt = 1
	}
	return &sqlparser.FuncCall{
		Name: "sm_dec",
		Args: []sqlparser.Expr{
			&sqlparser.BytesLit{V: p.key(tm.logical, cm.logical)},
			&sqlparser.ColRef{Table: alias, Column: cm.anon},
			&sqlparser.ColRef{Table: alias, Column: cm.anon + "_iv"},
			&sqlparser.IntLit{V: isInt},
		},
	}
}

// rewriteExpr replaces logical column references with server-side
// decryption calls; everything else passes through.
func (p *Proxy) rewriteExpr(e sqlparser.Expr, scope map[string]*tableMeta, params []sqldb.Value, qualify bool) (sqlparser.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *sqlparser.ColRef:
		tm, cm, alias, err := p.resolve(x, scope)
		if err != nil {
			return nil, err
		}
		if !qualify {
			alias = ""
		}
		return p.decCall(tm, cm, alias), nil
	case *sqlparser.BinaryExpr:
		l, err := p.rewriteExpr(x.L, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		r, err := p.rewriteExpr(x.R, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparser.UnaryExpr:
		in, err := p.rewriteExpr(x.E, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		return &sqlparser.UnaryExpr{Op: x.Op, E: in}, nil
	case *sqlparser.InExpr:
		out := &sqlparser.InExpr{Not: x.Not}
		in, err := p.rewriteExpr(x.E, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		out.E = in
		for _, item := range x.List {
			ri, err := p.rewriteExpr(item, scope, params, qualify)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, ri)
		}
		return out, nil
	case *sqlparser.LikeExpr:
		in, err := p.rewriteExpr(x.E, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		return &sqlparser.LikeExpr{E: in, Pattern: x.Pattern, Not: x.Not}, nil
	case *sqlparser.BetweenExpr:
		in, err := p.rewriteExpr(x.E, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		lo, err := p.rewriteExpr(x.Lo, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		hi, err := p.rewriteExpr(x.Hi, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		return &sqlparser.BetweenExpr{E: in, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlparser.IsNullExpr:
		in, err := p.rewriteExpr(x.E, scope, params, qualify)
		if err != nil {
			return nil, err
		}
		return &sqlparser.IsNullExpr{E: in, Not: x.Not}, nil
	case *sqlparser.FuncCall:
		out := &sqlparser.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
		for _, a := range x.Args {
			ra, err := p.rewriteExpr(a, scope, params, qualify)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	default:
		return e, nil
	}
}

func (p *Proxy) resolve(cr *sqlparser.ColRef, scope map[string]*tableMeta) (*tableMeta, colMeta, string, error) {
	if cr.Table != "" {
		tm, ok := scope[cr.Table]
		if !ok {
			return nil, colMeta{}, "", fmt.Errorf("strawman: no table %s", cr.Table)
		}
		ci, ok := tm.byName[cr.Column]
		if !ok {
			return nil, colMeta{}, "", fmt.Errorf("strawman: no column %s.%s", cr.Table, cr.Column)
		}
		return tm, tm.cols[ci], cr.Table, nil
	}
	var found *tableMeta
	var fc colMeta
	var alias string
	for a, tm := range scope {
		if ci, ok := tm.byName[cr.Column]; ok {
			if found != nil && found != tm {
				return nil, colMeta{}, "", fmt.Errorf("strawman: ambiguous column %s", cr.Column)
			}
			found, fc, alias = tm, tm.cols[ci], a
		}
	}
	if found == nil {
		return nil, colMeta{}, "", fmt.Errorf("strawman: no column %s", cr.Column)
	}
	return found, fc, alias, nil
}

func (p *Proxy) execSelect(s *sqlparser.SelectStmt, params []sqldb.Value) (*sqldb.Result, error) {
	scope := map[string]*tableMeta{}
	server := &sqlparser.SelectStmt{Distinct: s.Distinct, Limit: s.Limit, Offset: s.Offset}
	for _, ref := range s.From {
		tm, ok := p.tables[ref.Table]
		if !ok {
			return nil, fmt.Errorf("strawman: no table %s", ref.Table)
		}
		alias := ref.Alias
		if alias == "" {
			alias = ref.Table
		}
		scope[alias] = tm
		srvRef := sqlparser.TableRef{Table: tm.anon, Alias: alias}
		if ref.JoinOn != nil {
			on, err := p.rewriteExpr(ref.JoinOn, scope, params, true)
			if err != nil {
				return nil, err
			}
			srvRef.JoinOn = on
		}
		server.From = append(server.From, srvRef)
	}

	var names []string
	for _, se := range s.Exprs {
		if se.Star {
			for alias, tm := range scope {
				for _, cm := range tm.cols {
					names = append(names, cm.logical)
					server.Exprs = append(server.Exprs,
						sqlparser.SelectExpr{Expr: p.decCall(tm, cm, alias)})
				}
			}
			continue
		}
		re, err := p.rewriteExpr(se.Expr, scope, params, true)
		if err != nil {
			return nil, err
		}
		name := se.Alias
		if name == "" {
			if cr, ok := se.Expr.(*sqlparser.ColRef); ok {
				name = cr.Column
			} else {
				name = se.Expr.String()
			}
		}
		names = append(names, name)
		server.Exprs = append(server.Exprs, sqlparser.SelectExpr{Expr: re})
	}

	var err error
	if server.Where, err = p.rewriteExpr(s.Where, scope, params, true); err != nil {
		return nil, err
	}
	for _, g := range s.GroupBy {
		rg, err := p.rewriteExpr(g, scope, params, true)
		if err != nil {
			return nil, err
		}
		server.GroupBy = append(server.GroupBy, rg)
	}
	if server.Having, err = p.rewriteExpr(s.Having, scope, params, true); err != nil {
		return nil, err
	}
	for _, o := range s.OrderBy {
		ro, err := p.rewriteExpr(o.Expr, scope, params, true)
		if err != nil {
			return nil, err
		}
		server.OrderBy = append(server.OrderBy, sqlparser.OrderItem{Expr: ro, Desc: o.Desc})
	}

	res, err := p.db.Exec(server, params...)
	if err != nil {
		return nil, err
	}
	res.Columns = names
	return res, nil
}

func (p *Proxy) execInsert(s *sqlparser.InsertStmt, params []sqldb.Value) (*sqldb.Result, error) {
	tm, ok := p.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("strawman: no table %s", s.Table)
	}
	cols := s.Columns
	if len(cols) == 0 {
		for _, cm := range tm.cols {
			cols = append(cols, cm.logical)
		}
	}
	server := &sqlparser.InsertStmt{Table: tm.anon}
	metas := make([]colMeta, len(cols))
	for i, c := range cols {
		ci, ok := tm.byName[c]
		if !ok {
			return nil, fmt.Errorf("strawman: no column %s.%s", s.Table, c)
		}
		metas[i] = tm.cols[ci]
		server.Columns = append(server.Columns, metas[i].anon, metas[i].anon+"_iv")
	}
	for _, row := range s.Rows {
		var srvRow []sqlparser.Expr
		for i, e := range row {
			v, err := sqldb.EvalConst(e, params)
			if err != nil {
				return nil, err
			}
			ct, iv, err := p.encrypt(tm, metas[i], v)
			if err != nil {
				return nil, err
			}
			srvRow = append(srvRow, litFor(ct), litFor(iv))
		}
		server.Rows = append(server.Rows, srvRow)
	}
	return p.db.Exec(server, params...)
}

func litFor(v sqldb.Value) sqlparser.Expr {
	switch v.Kind {
	case sqldb.KindNull:
		return &sqlparser.NullLit{}
	case sqldb.KindInt:
		return &sqlparser.IntLit{V: v.I}
	case sqldb.KindText:
		return &sqlparser.StrLit{V: v.S}
	case sqldb.KindBlob:
		return &sqlparser.BytesLit{V: v.B}
	}
	return &sqlparser.NullLit{}
}

func (p *Proxy) execUpdate(s *sqlparser.UpdateStmt, params []sqldb.Value) (*sqldb.Result, error) {
	tm, ok := p.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("strawman: no table %s", s.Table)
	}
	scope := map[string]*tableMeta{s.Table: tm}
	where, err := p.rewriteExpr(s.Where, scope, params, false)
	if err != nil {
		return nil, err
	}
	server := &sqlparser.UpdateStmt{Table: tm.anon, Where: where}
	for _, a := range s.Assignments {
		ci, ok := tm.byName[a.Column]
		if !ok {
			return nil, fmt.Errorf("strawman: no column %s.%s", s.Table, a.Column)
		}
		cm := tm.cols[ci]
		// Increment form: server-side decrypt-add-reencrypt.
		if be, isBin := a.Value.(*sqlparser.BinaryExpr); isBin && (be.Op == "+" || be.Op == "-") {
			if cr, isCol := be.L.(*sqlparser.ColRef); isCol && cr.Column == a.Column {
				dv, err := sqldb.EvalConst(be.R, params)
				if err == nil {
					delta, err := dv.AsInt()
					if err != nil {
						return nil, err
					}
					if be.Op == "-" {
						delta = -delta
					}
					server.Assignments = append(server.Assignments, sqlparser.Assignment{
						Column: cm.anon,
						Value: &sqlparser.FuncCall{Name: "sm_inc", Args: []sqlparser.Expr{
							&sqlparser.BytesLit{V: p.key(tm.logical, cm.logical)},
							&sqlparser.ColRef{Column: cm.anon},
							&sqlparser.ColRef{Column: cm.anon + "_iv"},
							&sqlparser.IntLit{V: delta},
						}},
					})
					continue
				}
			}
		}
		v, err := sqldb.EvalConst(a.Value, params)
		if err != nil {
			return nil, fmt.Errorf("strawman: unsupported UPDATE expression: %w", err)
		}
		ct, iv, err := p.encrypt(tm, cm, v)
		if err != nil {
			return nil, err
		}
		server.Assignments = append(server.Assignments,
			sqlparser.Assignment{Column: cm.anon, Value: litFor(ct)},
			sqlparser.Assignment{Column: cm.anon + "_iv", Value: litFor(iv)})
	}
	return p.db.Exec(server, params...)
}

func (p *Proxy) execDelete(s *sqlparser.DeleteStmt, params []sqldb.Value) (*sqldb.Result, error) {
	tm, ok := p.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("strawman: no table %s", s.Table)
	}
	scope := map[string]*tableMeta{s.Table: tm}
	where, err := p.rewriteExpr(s.Where, scope, params, false)
	if err != nil {
		return nil, err
	}
	return p.db.Exec(&sqlparser.DeleteStmt{Table: tm.anon, Where: where}, params...)
}
