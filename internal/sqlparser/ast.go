package sqlparser

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any SQL expression node.
type Expr interface {
	expr()
	String() string
}

// ColType is a column's storage type.
type ColType int

// Column types supported by the engine.
const (
	TypeInt ColType = iota
	TypeText
	TypeBlob
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeText:
		return "TEXT"
	case TypeBlob:
		return "BLOB"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

//
// Expressions
//

// ColRef references a column, optionally qualified by table or alias.
type ColRef struct {
	Table  string
	Column string
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// BytesLit is a binary literal. The parser emits these from x'..' forms;
// the proxy emits them when substituting ciphertexts into queries.
type BytesLit struct{ V []byte }

// NullLit is the NULL literal.
type NullLit struct{}

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

// Param is a ? placeholder bound at execution time.
type Param struct{ Index int }

// BinaryExpr applies a binary operator: = != <> < <= > >= + - * / % AND OR
// and the bitwise & | ^ operators.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string
	E  Expr
}

// InExpr is `E [NOT] IN (list)`.
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// LikeExpr is `E [NOT] LIKE pattern`.
type LikeExpr struct {
	E       Expr
	Pattern Expr
	Not     bool
}

// BetweenExpr is `E [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// IsNullExpr is `E IS [NOT] NULL`.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// FuncCall is an aggregate or UDF invocation.
type FuncCall struct {
	Name     string // canonical upper-case for builtins
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT c)
	Args     []Expr
}

func (*ColRef) expr()      {}
func (*IntLit) expr()      {}
func (*StrLit) expr()      {}
func (*BytesLit) expr()    {}
func (*NullLit) expr()     {}
func (*BoolLit) expr()     {}
func (*Param) expr()       {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*InExpr) expr()      {}
func (*LikeExpr) expr()    {}
func (*BetweenExpr) expr() {}
func (*IsNullExpr) expr()  {}
func (*FuncCall) expr()    {}

func (e *ColRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}
func (e *IntLit) String() string { return strconv.FormatInt(e.V, 10) }
func (e *StrLit) String() string {
	return "'" + strings.ReplaceAll(e.V, "'", "''") + "'"
}
func (e *BytesLit) String() string { return "x'" + hex.EncodeToString(e.V) + "'" }
func (*NullLit) String() string    { return "NULL" }
func (e *BoolLit) String() string {
	if e.V {
		return "TRUE"
	}
	return "FALSE"
}
func (e *Param) String() string { return "?" }
func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}
func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.E.String() + ")"
	}
	return "(" + e.Op + e.E.String() + ")"
}
func (e *InExpr) String() string {
	var sb strings.Builder
	sb.WriteString(e.E.String())
	if e.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, x := range e.List {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(x.String())
	}
	sb.WriteString(")")
	return sb.String()
}
func (e *LikeExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return e.E.String() + not + " LIKE " + e.Pattern.String()
}
func (e *BetweenExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return e.E.String() + not + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String()
}
func (e *IsNullExpr) String() string {
	if e.Not {
		return e.E.String() + " IS NOT NULL"
	}
	return e.E.String() + " IS NULL"
}
func (e *FuncCall) String() string {
	var sb strings.Builder
	sb.WriteString(e.Name)
	sb.WriteString("(")
	if e.Star {
		sb.WriteString("*")
	} else {
		if e.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

//
// Statements
//

// SelectExpr is one item of a SELECT list.
type SelectExpr struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef is one table in the FROM clause. The first ref has JoinOn == nil;
// subsequent refs are INNER JOINs with an ON condition, or cross joins when
// JoinOn is nil.
type TableRef struct {
	Table  string
	Alias  string
	JoinOn Expr
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Exprs    []SelectExpr
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

// InsertStmt is an INSERT with one or more VALUES rows.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is an UPDATE.
type UpdateStmt struct {
	Table       string
	Assignments []Assignment
	Where       Expr
}

// DeleteStmt is a DELETE.
type DeleteStmt struct {
	Table string
	Where Expr
}

// EncForAnnot is the `ENC FOR (ownerCol princType)` column annotation: the
// column is encrypted for the principal of type PrincType named by the value
// of OwnerColumn in the same row (§4.1 step 2).
type EncForAnnot struct {
	OwnerColumn string
	PrincType   string
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    ColType
	Plain   bool         // developer marked non-sensitive: stored unencrypted (§3.5.2)
	MinEnc  string       // lowest onion layer that may be revealed (§3.5.1), e.g. "DET"
	EncFor  *EncForAnnot // multi-principal annotation
	Primary bool
}

// SpeaksForAnnot is the table-level `(a x) SPEAKS FOR (b y) [IF pred]`
// delegation rule (§4.1 step 3). A may be a column of this table, a
// constant, or Table2.col.
type SpeaksForAnnot struct {
	AColumn string // column name in this table, or "tab.col", or constant via AConst
	AConst  string // non-empty if A is a literal principal name
	AType   string
	BColumn string
	BType   string
	If      Expr // optional predicate over row values
}

// CreateTableStmt creates a table, carrying any CryptDB annotations.
type CreateTableStmt struct {
	Name      string
	Cols      []ColumnDef
	SpeaksFor []SpeaksForAnnot
}

// CreateIndexStmt creates an index. Using selects the index structure,
// MySQL-style: "" (default) builds both a hash (equality) and an ordered
// (range) index, "HASH" an equality index only, "BTREE"/"ORDERED" an
// ordered index only.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
	Unique bool
	Using  string
}

// DropTableStmt drops a table.
type DropTableStmt struct{ Name string }

// PrincTypeStmt declares principal types (§4.1 step 1).
type PrincTypeStmt struct {
	Names    []string
	External bool
}

// BeginStmt / CommitStmt / RollbackStmt delimit transactions.
type BeginStmt struct{}

// CommitStmt commits the current transaction.
type CommitStmt struct{}

// RollbackStmt aborts the current transaction.
type RollbackStmt struct{}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*PrincTypeStmt) stmt()   {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, e := range s.Exprs {
		if i > 0 {
			sb.WriteString(", ")
		}
		if e.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(e.Expr.String())
		if e.Alias != "" {
			sb.WriteString(" AS " + e.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			if t.JoinOn != nil {
				sb.WriteString(" JOIN ")
			} else {
				sb.WriteString(", ")
			}
		}
		sb.WriteString(t.Table)
		if t.Alias != "" {
			sb.WriteString(" " + t.Alias)
		}
		if i > 0 && t.JoinOn != nil {
			sb.WriteString(" ON " + t.JoinOn.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&sb, " LIMIT %d", *s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(&sb, " OFFSET %d", *s.Offset)
	}
	return sb.String()
}

func (s *InsertStmt) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	sb.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, v := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

func (s *UpdateStmt) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Assignments {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column + " = " + a.Value.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	return sb.String()
}

func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

func (s *CreateTableStmt) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE " + s.Name + " (")
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name + " " + c.Type.String())
		if c.Primary {
			sb.WriteString(" PRIMARY KEY")
		}
		if c.Plain {
			sb.WriteString(" PLAIN")
		}
		if c.MinEnc != "" {
			sb.WriteString(" MINENC " + c.MinEnc)
		}
		if c.EncFor != nil {
			sb.WriteString(" ENC FOR (" + c.EncFor.OwnerColumn + " " + c.EncFor.PrincType + ")")
		}
	}
	for _, sf := range s.SpeaksFor {
		sb.WriteString(", (")
		if sf.AConst != "" {
			sb.WriteString("'" + sf.AConst + "'")
		} else {
			sb.WriteString(sf.AColumn)
		}
		sb.WriteString(" " + sf.AType + ") SPEAKS FOR (" + sf.BColumn + " " + sf.BType + ")")
		if sf.If != nil {
			sb.WriteString(" IF " + sf.If.String())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

func (s *CreateIndexStmt) String() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	out := "CREATE " + u + "INDEX " + s.Name + " ON " + s.Table + " (" + s.Column + ")"
	if s.Using != "" {
		out += " USING " + s.Using
	}
	return out
}

func (s *DropTableStmt) String() string { return "DROP TABLE " + s.Name }

func (s *PrincTypeStmt) String() string {
	out := "PRINCTYPE " + strings.Join(s.Names, ", ")
	if s.External {
		out += " EXTERNAL"
	}
	return out
}

func (*BeginStmt) String() string    { return "BEGIN" }
func (*CommitStmt) String() string   { return "COMMIT" }
func (*RollbackStmt) String() string { return "ROLLBACK" }
