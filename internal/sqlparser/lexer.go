// Package sqlparser implements the SQL front-end of the CryptDB proxy: a
// lexer, an AST and a recursive-descent parser for the SQL subset the paper
// exercises (CREATE TABLE, SELECT with joins/aggregates/ordering, INSERT,
// UPDATE, DELETE, transactions, CREATE INDEX) plus CryptDB's schema
// annotations (PRINCTYPE, ENC FOR, SPEAKS FOR ... IF — §4.1).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokString
	TokOp    // operators and punctuation
	TokParam // ? placeholder
)

// Token is one lexical token with its position for error reporting.
type Token struct {
	Kind TokenKind
	Text string // canonical text; keywords upper-cased
	Pos  int    // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "ON": true, "JOIN": true, "INNER": true,
	"LEFT": true, "GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "IN": true, "LIKE": true, "BETWEEN": true,
	"AS": true, "DISTINCT": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"ABORT": true, "DROP": true, "INT": true, "INTEGER": true, "BIGINT": true,
	"TEXT": true, "VARCHAR": true, "BLOB": true, "PRINCTYPE": true,
	"EXTERNAL": true, "ENC": true, "FOR": true, "SPEAKS": true, "IF": true,
	"IS": true, "PRIMARY": true, "KEY": true, "DEFAULT": true, "OFFSET": true,
	"TRANSACTION": true, "PLAIN": true, "MINENC": true, "UNIQUE": true,
	"EQUIJOIN": true, "OPEJOIN": true, "TRUE": true, "FALSE": true,
	"USING": true,
}

// Lexer tokenizes a SQL statement.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a Lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	ch := l.src[l.pos]

	switch {
	case isIdentStart(ch):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil

	case ch >= '0' && ch <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return Token{Kind: TokInt, Text: l.src[start:l.pos], Pos: start}, nil

	case ch == '\'' || ch == '"':
		quote := ch
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sqlparser: unterminated string at offset %d", start)
			}
			c := l.src[l.pos]
			if c == quote {
				// Doubled quote is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			if c == '\\' && l.pos+1 < len(l.src) {
				next := l.src[l.pos+1]
				switch next {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '\'', '"':
					sb.WriteByte(next)
				default:
					sb.WriteByte(next)
				}
				l.pos += 2
				continue
			}
			sb.WriteByte(c)
			l.pos++
		}

	case ch == '?':
		l.pos++
		return Token{Kind: TokParam, Text: "?", Pos: start}, nil

	default:
		// Multi-character operators first.
		for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokOp, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("(),.*=<>+-/%;&|^", rune(ch)) {
			l.pos++
			return Token{Kind: TokOp, Text: string(ch), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sqlparser: unexpected character %q at offset %d", ch, start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(ch)):
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z'
}

func isIdentPart(ch byte) bool {
	return isIdentStart(ch) || ch >= '0' && ch <= '9'
}
