package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated fragments of valid SQL:
// every input must either parse or return an error — never panic. This is
// load-bearing for CryptDB, whose proxy faces arbitrary application input.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE a = 1 AND b LIKE '%x%' ORDER BY a LIMIT 3",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 2",
		"CREATE TABLE t (a INT PRIMARY KEY, b TEXT ENC FOR (a p), (a p) SPEAKS FOR (b q) IF a = 1)",
		"DELETE FROM t WHERE a IN (1, 2, 3)",
		"SELECT COUNT(*), SUM(x) FROM a JOIN b ON a.i = b.i GROUP BY g HAVING COUNT(*) > 1",
	}
	tokens := []string{"SELECT", "(", ")", ",", "'", "WHERE", "=", "*", "?", "x''", "--", "/*", "1", "FROM"}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5000; round++ {
		s := seeds[rng.Intn(len(seeds))]
		switch rng.Intn(4) {
		case 0: // truncate
			if len(s) > 1 {
				s = s[:rng.Intn(len(s))]
			}
		case 1: // splice a random token
			pos := rng.Intn(len(s) + 1)
			s = s[:pos] + tokens[rng.Intn(len(tokens))] + s[pos:]
		case 2: // delete a chunk
			if len(s) > 4 {
				a := rng.Intn(len(s) - 2)
				bEnd := a + 1 + rng.Intn(len(s)-a-1)
				s = s[:a] + s[bEnd:]
			}
		case 3: // duplicate a chunk
			if len(s) > 4 {
				a := rng.Intn(len(s) - 2)
				bEnd := a + 1 + rng.Intn(len(s)-a-1)
				s = s + " " + s[a:bEnd]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", s, r)
				}
			}()
			_, _ = Parse(s)
			_, _ = ParseMulti(s + "; " + s)
		}()
	}
}

// TestParseMultiErrors confirms script-level error reporting.
func TestParseMultiErrors(t *testing.T) {
	if _, err := ParseMulti("SELECT 1; BOGUS STATEMENT; SELECT 2"); err == nil {
		t.Fatal("want error for bad statement mid-script")
	}
	stmts, err := ParseMulti("  ;;; SELECT 1;; ")
	if err != nil || len(stmts) != 1 {
		t.Fatalf("stmts = %v, err = %v", stmts, err)
	}
}

// TestDeeplyNestedExpressions guards recursion depth handling.
func TestDeeplyNestedExpressions(t *testing.T) {
	depth := 200
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	st, err := Parse("SELECT " + expr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*SelectStmt); !ok {
		t.Fatal("not a select")
	}
}
