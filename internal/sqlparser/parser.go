package sqlparser

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a Lexer.
type Parser struct {
	lex     *Lexer
	tok     Token
	peeked  *Token
	nparams int
}

// Parse parses a single SQL statement.
func Parse(sql string) (Statement, error) {
	p := &Parser{lex: NewLexer(sql)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.tok.Kind == TokOp && p.tok.Text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, fmt.Errorf("sqlparser: unexpected trailing input %q at offset %d", p.tok.Text, p.tok.Pos)
	}
	return st, nil
}

// ParseMulti parses a semicolon-separated script.
func ParseMulti(sql string) ([]Statement, error) {
	p := &Parser{lex: NewLexer(sql)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []Statement
	for p.tok.Kind != TokEOF {
		if p.tok.Kind == TokOp && p.tok.Text == ";" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (p *Parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peek() (Token, error) {
	if p.peeked == nil {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: "+format+" (offset %d)", append(args, p.tok.Pos)...)
}

func (p *Parser) expectKeyword(kw string) error {
	if p.tok.Kind != TokKeyword || p.tok.Text != kw {
		return p.errf("expected %s, got %q", kw, p.tok.Text)
	}
	return p.advance()
}

func (p *Parser) expectOp(op string) error {
	if p.tok.Kind != TokOp || p.tok.Text != op {
		return p.errf("expected %q, got %q", op, p.tok.Text)
	}
	return p.advance()
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *Parser) isOp(op string) bool {
	return p.tok.Kind == TokOp && p.tok.Text == op
}

// acceptKeyword consumes kw if present and reports whether it did.
func (p *Parser) acceptKeyword(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

// ident accepts an identifier or a non-reserved-looking keyword used as a
// name (applications use column names like "key" or "text").
func (p *Parser) ident() (string, error) {
	if p.tok.Kind == TokIdent {
		name := p.tok.Text
		return name, p.advance()
	}
	if p.tok.Kind == TokKeyword {
		switch p.tok.Text {
		case "TEXT", "KEY", "COUNT", "SUM", "MIN", "MAX", "AVG", "INDEX", "BY":
			name := strings.ToLower(p.tok.Text)
			return name, p.advance()
		}
	}
	return "", p.errf("expected identifier, got %q", p.tok.Text)
}

func (p *Parser) parseStatement() (Statement, error) {
	if p.tok.Kind != TokKeyword {
		return nil, p.errf("expected statement keyword, got %q", p.tok.Text)
	}
	switch p.tok.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name}, nil
	case "PRINCTYPE":
		return p.parsePrincType()
	case "BEGIN":
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.acceptKeyword("TRANSACTION")
		return &BeginStmt{}, err
	case "COMMIT":
		return &CommitStmt{}, p.advance()
	case "ROLLBACK", "ABORT":
		return &RollbackStmt{}, p.advance()
	}
	return nil, p.errf("unsupported statement %q", p.tok.Text)
}

func (p *Parser) parsePrincType() (Statement, error) {
	if err := p.advance(); err != nil { // PRINCTYPE
		return nil, err
	}
	st := &PrincTypeStmt{}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Names = append(st.Names, name)
		if !p.isOp(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	ext, err := p.acceptKeyword("EXTERNAL")
	if err != nil {
		return nil, err
	}
	st.External = ext
	return st, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	unique := false
	if ok, err := p.acceptKeyword("UNIQUE"); err != nil {
		return nil, err
	} else if ok {
		unique = true
	}
	if p.isKeyword("INDEX") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st := &CreateIndexStmt{Name: name, Table: table, Column: col, Unique: unique}
		if ok, err := p.acceptKeyword("USING"); err != nil {
			return nil, err
		} else if ok {
			using, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Using = using
		}
		return st, nil
	}
	if unique {
		return nil, p.errf("UNIQUE only applies to CREATE INDEX")
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name}
	for {
		if p.isOp("(") || p.tok.Kind == TokString {
			sf, err := p.parseSpeaksFor()
			if err != nil {
				return nil, err
			}
			st.SpeaksFor = append(st.SpeaksFor, *sf)
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, *col)
		}
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(st.Cols) == 0 {
		return nil, p.errf("CREATE TABLE %s has no columns", name)
	}
	return st, nil
}

func (p *Parser) parseColumnDef() (*ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	col := &ColumnDef{Name: name}
	if p.tok.Kind != TokKeyword {
		return nil, p.errf("expected column type, got %q", p.tok.Text)
	}
	switch p.tok.Text {
	case "INT", "INTEGER", "BIGINT":
		col.Type = TypeInt
	case "TEXT":
		col.Type = TypeText
	case "VARCHAR":
		col.Type = TypeText
	case "BLOB":
		col.Type = TypeBlob
	default:
		return nil, p.errf("unsupported column type %q", p.tok.Text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// VARCHAR(255) — consume and ignore the size.
	if p.isOp("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokInt {
			return nil, p.errf("expected length, got %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.isKeyword("PRIMARY"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			col.Primary = true
		case p.isKeyword("PLAIN"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			col.Plain = true
		case p.isKeyword("MINENC"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			layer, err := p.ident()
			if err != nil {
				return nil, err
			}
			col.MinEnc = strings.ToUpper(layer)
		case p.isKeyword("ENC"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("FOR"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			owner, err := p.ident()
			if err != nil {
				return nil, err
			}
			ptype, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			col.EncFor = &EncForAnnot{OwnerColumn: owner, PrincType: ptype}
		case p.isKeyword("NOT"):
			// Accept and ignore NOT NULL.
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
		case p.isKeyword("DEFAULT"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.parsePrimary(); err != nil {
				return nil, err
			}
		default:
			return col, nil
		}
	}
}

// parseSpeaksFor parses `(a x) SPEAKS FOR (b y) [IF predicate]` where a is a
// column, Table2.col, or a quoted constant.
func (p *Parser) parseSpeaksFor() (*SpeaksForAnnot, error) {
	sf := &SpeaksForAnnot{}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.tok.Kind == TokString {
		sf.AConst = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.isOp(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			a = a + "." + col
		}
		sf.AColumn = a
	}
	at, err := p.ident()
	if err != nil {
		return nil, err
	}
	sf.AType = at
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SPEAKS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	b, err := p.ident()
	if err != nil {
		return nil, err
	}
	sf.BColumn = b
	bt, err := p.ident()
	if err != nil {
		return nil, err
	}
	sf.BType = bt
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if p.isKeyword("IF") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sf.If = pred
	}
	return sf, nil
}

func (p *Parser) parseSelect() (Statement, error) {
	if err := p.advance(); err != nil { // SELECT
		return nil, err
	}
	st := &SelectStmt{}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		st.Distinct = true
	}
	for {
		if p.isOp("*") {
			st.Exprs = append(st.Exprs, SelectExpr{Star: true})
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if ok, err := p.acceptKeyword("AS"); err != nil {
				return nil, err
			} else if ok {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.Alias = alias
			} else if p.tok.Kind == TokIdent {
				se.Alias = p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			st.Exprs = append(st.Exprs, se)
		}
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.isKeyword("FROM") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		refs, err := p.parseTableRefs()
		if err != nil {
			return nil, err
		}
		st.From = refs
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, g)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("HAVING") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if ok, err := p.acceptKeyword("DESC"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = true
			} else if _, err := p.acceptKeyword("ASC"); err != nil {
				return nil, err
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.isOp(",") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseIntValue()
		if err != nil {
			return nil, err
		}
		st.Limit = &n
	}
	if p.isKeyword("OFFSET") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseIntValue()
		if err != nil {
			return nil, err
		}
		st.Offset = &n
	}
	return st, nil
}

func (p *Parser) parseIntValue() (int64, error) {
	if p.tok.Kind != TokInt {
		return 0, p.errf("expected integer, got %q", p.tok.Text)
	}
	n, err := strconv.ParseInt(p.tok.Text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", p.tok.Text)
	}
	return n, p.advance()
}

func (p *Parser) parseTableRefs() ([]TableRef, error) {
	var refs []TableRef
	first := true
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: name}
		if p.tok.Kind == TokIdent {
			ref.Alias = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if !first && p.isKeyword("ON") {
			return nil, p.errf("ON belongs after JOIN, not a comma-joined table")
		}
		refs = append(refs, ref)
		first = false
		switch {
		case p.isOp(","):
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.isKeyword("INNER") || p.isKeyword("JOIN") || p.isKeyword("LEFT"):
			if p.isKeyword("INNER") || p.isKeyword("LEFT") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jname, err := p.ident()
			if err != nil {
				return nil, err
			}
			jref := TableRef{Table: jname}
			if p.tok.Kind == TokIdent {
				jref.Alias = p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			jref.JoinOn = on
			refs = append(refs, jref)
			// Allow chained JOINs.
			for p.isKeyword("JOIN") || p.isKeyword("INNER") || p.isKeyword("LEFT") {
				if p.isKeyword("INNER") || p.isKeyword("LEFT") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				cname, err := p.ident()
				if err != nil {
					return nil, err
				}
				cref := TableRef{Table: cname}
				if p.tok.Kind == TokIdent {
					cref.Alias = p.tok.Text
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				con, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				cref.JoinOn = con
				refs = append(refs, cref)
			}
			return refs, nil
		default:
			return refs, nil
		}
	}
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.isOp("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return st, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.advance(); err != nil { // UPDATE
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Assignments = append(st.Assignments, Assignment{Column: col, Value: val})
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

//
// Expressions, precedence climbing.
//

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseBitOr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.tok.Kind == TokOp && isCmpOp(p.tok.Text):
			op := p.tok.Text
			if op == "<>" {
				op = "!="
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseBitOr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		case p.isKeyword("IS"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			not := false
			if ok, err := p.acceptKeyword("NOT"); err != nil {
				return nil, err
			} else if ok {
				not = true
			}
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{E: l, Not: not}
		case p.isKeyword("IN"), p.isKeyword("LIKE"), p.isKeyword("BETWEEN"), p.isKeyword("NOT"):
			not := false
			if p.isKeyword("NOT") {
				nt, err := p.peek()
				if err != nil {
					return nil, err
				}
				if nt.Kind != TokKeyword || (nt.Text != "IN" && nt.Text != "LIKE" && nt.Text != "BETWEEN") {
					return l, nil
				}
				not = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			switch p.tok.Text {
			case "IN":
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				var list []Expr
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					list = append(list, e)
					if p.isOp(",") {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				l = &InExpr{E: l, List: list, Not: not}
			case "LIKE":
				if err := p.advance(); err != nil {
					return nil, err
				}
				pat, err := p.parseBitOr()
				if err != nil {
					return nil, err
				}
				l = &LikeExpr{E: l, Pattern: pat, Not: not}
			case "BETWEEN":
				if err := p.advance(); err != nil {
					return nil, err
				}
				lo, err := p.parseBitOr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseBitOr()
				if err != nil {
					return nil, err
				}
				l = &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: not}
			default:
				return l, nil
			}
		default:
			return l, nil
		}
	}
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *Parser) parseBitOr() (Expr, error) {
	l, err := p.parseBitAnd()
	if err != nil {
		return nil, err
	}
	for p.isOp("|") || p.isOp("^") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseBitAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseBitAnd() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.isOp("&") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "&", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") || p.isOp("||") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("%") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*IntLit); ok {
			return &IntLit{V: -lit.V}, nil
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokInt:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.Text)
		}
		return &IntLit{V: v}, p.advance()
	case TokString:
		v := p.tok.Text
		return &StrLit{V: v}, p.advance()
	case TokParam:
		p.nparams++
		return &Param{Index: p.nparams - 1}, p.advance()
	case TokKeyword:
		switch p.tok.Text {
		case "NULL":
			return &NullLit{}, p.advance()
		case "TRUE":
			return &BoolLit{V: true}, p.advance()
		case "FALSE":
			return &BoolLit{V: false}, p.advance()
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			return p.parseFuncCall(p.tok.Text)
		}
		// Fall through for keywords usable as identifiers.
		return p.parseIdentExpr()
	case TokIdent:
		// x'ab12' hex literal.
		if p.tok.Text == "x" || p.tok.Text == "X" {
			nt, err := p.peek()
			if err != nil {
				return nil, err
			}
			if nt.Kind == TokString {
				raw, err := hex.DecodeString(nt.Text)
				if err != nil {
					return nil, p.errf("bad hex literal: %v", err)
				}
				if err := p.advance(); err != nil { // consume x
					return nil, err
				}
				return &BytesLit{V: raw}, p.advance() // consume string
			}
		}
		return p.parseIdentExpr()
	case TokOp:
		if p.tok.Text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", p.tok.Text)
}

// parseIdentExpr parses a column reference, qualified column, or UDF call.
func (p *Parser) parseIdentExpr() (Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.isOp("(") {
		return p.parseFuncArgs(name)
	}
	if p.isOp(".") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("*") {
			// t.* — represent as a ColRef with Column "*".
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Column: "*"}, nil
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ColRef{Table: name, Column: col}, nil
	}
	return &ColRef{Column: name}, nil
}

// parseFuncCall parses a builtin aggregate whose name was the current token.
func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseFuncArgs(name)
}

func (p *Parser) parseFuncArgs(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: canonicalFuncName(name)}
	if p.isOp("*") {
		fc.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.isOp(")") {
		return fc, p.advance()
	}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		fc.Distinct = true
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func canonicalFuncName(name string) string {
	up := strings.ToUpper(name)
	switch up {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return up
	}
	return name
}
