package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseSelectBasic(t *testing.T) {
	st := mustParse(t, "SELECT id, name FROM employees WHERE name = 'Alice'").(*SelectStmt)
	if len(st.Exprs) != 2 {
		t.Fatalf("exprs = %d, want 2", len(st.Exprs))
	}
	if st.From[0].Table != "employees" {
		t.Fatalf("table = %q", st.From[0].Table)
	}
	be, ok := st.Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where = %#v", st.Where)
	}
	if be.R.(*StrLit).V != "Alice" {
		t.Fatalf("rhs = %#v", be.R)
	}
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t").(*SelectStmt)
	if !st.Exprs[0].Star {
		t.Fatal("expected star select")
	}
}

func TestParseSelectAggregates(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*), SUM(salary), MIN(age), MAX(age), AVG(salary) FROM emp GROUP BY dept HAVING COUNT(*) > 2").(*SelectStmt)
	if len(st.Exprs) != 5 {
		t.Fatalf("exprs = %d", len(st.Exprs))
	}
	if fc := st.Exprs[0].Expr.(*FuncCall); fc.Name != "COUNT" || !fc.Star {
		t.Fatalf("first = %#v", fc)
	}
	if len(st.GroupBy) != 1 || st.Having == nil {
		t.Fatal("missing GROUP BY / HAVING")
	}
}

func TestParseSelectJoin(t *testing.T) {
	st := mustParse(t, "SELECT a.x, b.y FROM ta a JOIN tb b ON a.id = b.aid WHERE b.y > 5 ORDER BY a.x DESC LIMIT 10").(*SelectStmt)
	if len(st.From) != 2 {
		t.Fatalf("from = %d", len(st.From))
	}
	if st.From[1].JoinOn == nil {
		t.Fatal("missing join condition")
	}
	if st.From[0].Alias != "a" || st.From[1].Alias != "b" {
		t.Fatalf("aliases = %q, %q", st.From[0].Alias, st.From[1].Alias)
	}
	if !st.OrderBy[0].Desc {
		t.Fatal("expected DESC")
	}
	if *st.Limit != 10 {
		t.Fatalf("limit = %d", *st.Limit)
	}
}

func TestParseChainedJoins(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a JOIN b ON a.i = b.i JOIN c ON b.j = c.j").(*SelectStmt)
	if len(st.From) != 3 {
		t.Fatalf("from = %d, want 3", len(st.From))
	}
	if st.From[2].JoinOn == nil {
		t.Fatal("third table missing ON")
	}
}

func TestParseCommaJoin(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a, b WHERE a.i = b.i").(*SelectStmt)
	if len(st.From) != 2 || st.From[1].JoinOn != nil {
		t.Fatalf("from = %#v", st.From)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO emp (id, name) VALUES (1, 'Alice'), (2, 'Bob')").(*InsertStmt)
	if st.Table != "emp" || len(st.Columns) != 2 || len(st.Rows) != 2 {
		t.Fatalf("%#v", st)
	}
	if st.Rows[1][1].(*StrLit).V != "Bob" {
		t.Fatalf("row = %#v", st.Rows[1])
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustParse(t, "UPDATE emp SET salary = salary + 1, name = 'x' WHERE id = 3").(*UpdateStmt)
	if len(st.Assignments) != 2 {
		t.Fatalf("assignments = %d", len(st.Assignments))
	}
	be := st.Assignments[0].Value.(*BinaryExpr)
	if be.Op != "+" {
		t.Fatalf("op = %q", be.Op)
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM emp WHERE id = 3").(*DeleteStmt)
	if st.Table != "emp" || st.Where == nil {
		t.Fatalf("%#v", st)
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(255), bio TEXT, salary BIGINT)").(*CreateTableStmt)
	if len(st.Cols) != 4 {
		t.Fatalf("cols = %d", len(st.Cols))
	}
	if !st.Cols[0].Primary || st.Cols[0].Type != TypeInt {
		t.Fatalf("col0 = %#v", st.Cols[0])
	}
	if st.Cols[1].Type != TypeText || st.Cols[2].Type != TypeText {
		t.Fatal("varchar/text mapping")
	}
}

func TestParseCreateTableAnnotations(t *testing.T) {
	sql := `CREATE TABLE privmsgs (
		msgid INT,
		subject VARCHAR(255) ENC FOR (msgid msg),
		msgtext TEXT ENC FOR (msgid msg),
		ts INT PLAIN,
		ccn TEXT MINENC DET
	)`
	st := mustParse(t, sql).(*CreateTableStmt)
	if st.Cols[1].EncFor == nil || st.Cols[1].EncFor.OwnerColumn != "msgid" || st.Cols[1].EncFor.PrincType != "msg" {
		t.Fatalf("enc for = %#v", st.Cols[1].EncFor)
	}
	if !st.Cols[3].Plain {
		t.Fatal("PLAIN not parsed")
	}
	if st.Cols[4].MinEnc != "DET" {
		t.Fatalf("minenc = %q", st.Cols[4].MinEnc)
	}
}

func TestParseSpeaksFor(t *testing.T) {
	sql := `CREATE TABLE privmsgs_to (
		msgid INT, rcpt_id INT, sender_id INT,
		(sender_id user) SPEAKS FOR (msgid msg),
		(rcpt_id user) SPEAKS FOR (msgid msg)
	)`
	st := mustParse(t, sql).(*CreateTableStmt)
	if len(st.SpeaksFor) != 2 {
		t.Fatalf("speaks-for = %d", len(st.SpeaksFor))
	}
	sf := st.SpeaksFor[0]
	if sf.AColumn != "sender_id" || sf.AType != "user" || sf.BColumn != "msgid" || sf.BType != "msg" {
		t.Fatalf("%#v", sf)
	}
}

func TestParseSpeaksForWithPredicate(t *testing.T) {
	sql := `CREATE TABLE aclgroups (
		groupid INT, forumid INT, optionid INT,
		(groupid grp) SPEAKS FOR (forumid forum_post) IF optionid = 20
	)`
	st := mustParse(t, sql).(*CreateTableStmt)
	if st.SpeaksFor[0].If == nil {
		t.Fatal("IF predicate not parsed")
	}
}

func TestParseSpeaksForFunctionPredicate(t *testing.T) {
	sql := `CREATE TABLE PaperReview (
		paperId INT,
		reviewerId INT ENC FOR (paperId review),
		(PCMember.contactId contact) SPEAKS FOR (paperId review) IF NoConflict(paperId, contactId)
	)`
	st := mustParse(t, sql).(*CreateTableStmt)
	sf := st.SpeaksFor[0]
	if sf.AColumn != "PCMember.contactId" {
		t.Fatalf("A = %q", sf.AColumn)
	}
	fc, ok := sf.If.(*FuncCall)
	if !ok || fc.Name != "NoConflict" || len(fc.Args) != 2 {
		t.Fatalf("If = %#v", sf.If)
	}
}

func TestParsePrincType(t *testing.T) {
	st := mustParse(t, "PRINCTYPE physical_user EXTERNAL").(*PrincTypeStmt)
	if !st.External || st.Names[0] != "physical_user" {
		t.Fatalf("%#v", st)
	}
	st2 := mustParse(t, "PRINCTYPE user, msg").(*PrincTypeStmt)
	if st2.External || len(st2.Names) != 2 {
		t.Fatalf("%#v", st2)
	}
}

func TestParseTransactions(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Fatal("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*CommitStmt); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Fatal("ROLLBACK")
	}
	if _, ok := mustParse(t, "ABORT").(*RollbackStmt); !ok {
		t.Fatal("ABORT")
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, "CREATE INDEX idx_name ON emp (name)").(*CreateIndexStmt)
	if st.Table != "emp" || st.Column != "name" || st.Unique {
		t.Fatalf("%#v", st)
	}
	st2 := mustParse(t, "CREATE UNIQUE INDEX u ON emp (id)").(*CreateIndexStmt)
	if !st2.Unique {
		t.Fatal("UNIQUE lost")
	}
	st3 := mustParse(t, "CREATE INDEX o ON emp (salary) USING BTREE").(*CreateIndexStmt)
	if st3.Using != "BTREE" {
		t.Fatalf("USING lost: %#v", st3)
	}
	if st3.String() != "CREATE INDEX o ON emp (salary) USING BTREE" {
		t.Fatalf("String: %s", st3.String())
	}
	if _, err := Parse("CREATE INDEX o ON emp (salary) USING"); err == nil {
		t.Fatal("want error for dangling USING")
	}
}

func TestParseLikeAndSearch(t *testing.T) {
	st := mustParse(t, "SELECT * FROM messages WHERE msg LIKE '%alice%'").(*SelectStmt)
	le, ok := st.Where.(*LikeExpr)
	if !ok {
		t.Fatalf("where = %#v", st.Where)
	}
	if le.Pattern.(*StrLit).V != "%alice%" {
		t.Fatalf("pattern = %#v", le.Pattern)
	}
}

func TestParseInBetween(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 5 AND 10 AND c NOT IN (4)").(*SelectStmt)
	if st.Where == nil {
		t.Fatal("no where")
	}
	s := st.Where.String()
	if !strings.Contains(s, "IN (1, 2, 3)") || !strings.Contains(s, "BETWEEN 5 AND 10") || !strings.Contains(s, "NOT IN (4)") {
		t.Fatalf("where = %s", s)
	}
}

func TestParseIsNull(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL").(*SelectStmt)
	s := st.Where.String()
	if !strings.Contains(s, "a IS NULL") || !strings.Contains(s, "b IS NOT NULL") {
		t.Fatalf("where = %s", s)
	}
}

func TestParseHexLiteral(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE c = x'deadbeef'").(*SelectStmt)
	be := st.Where.(*BinaryExpr)
	bl, ok := be.R.(*BytesLit)
	if !ok || len(bl.V) != 4 || bl.V[0] != 0xde {
		t.Fatalf("rhs = %#v", be.R)
	}
}

func TestParseArithPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a + 2 * 3 = 7").(*SelectStmt)
	// Must parse as (a + (2*3)) = 7.
	be := st.Where.(*BinaryExpr)
	add := be.L.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("outer op = %q", add.Op)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != "*" {
		t.Fatalf("inner op = %q", mul.Op)
	}
}

func TestParseBitwise(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE perms & 4 = 4").(*SelectStmt)
	be := st.Where.(*BinaryExpr)
	if be.Op != "=" {
		t.Fatalf("outer = %q", be.Op)
	}
	if andExpr := be.L.(*BinaryExpr); andExpr.Op != "&" {
		t.Fatalf("lhs = %#v", be.L)
	}
}

func TestParseBoolPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	be := st.Where.(*BinaryExpr)
	if be.Op != "OR" {
		t.Fatalf("root = %q, want OR", be.Op)
	}
	if r := be.R.(*BinaryExpr); r.Op != "AND" {
		t.Fatalf("rhs = %q, want AND", r.Op)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a) VALUES (-5)").(*InsertStmt)
	if st.Rows[0][0].(*IntLit).V != -5 {
		t.Fatalf("%#v", st.Rows[0][0])
	}
}

func TestParseParams(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a = ? AND b = ?").(*SelectStmt)
	s := st.Where.String()
	if strings.Count(s, "?") != 2 {
		t.Fatalf("where = %s", s)
	}
}

func TestParseMulti(t *testing.T) {
	stmts, err := ParseMulti("BEGIN; INSERT INTO t (a) VALUES (1); COMMIT;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseComments(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t -- trailing\n WHERE /* inline */ a = 1")
	if st.(*SelectStmt).Where == nil {
		t.Fatal("comment parsing broke WHERE")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"INSERT t VALUES (1)",
		"CREATE TABLE t ()",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a = 'unterminated",
		"UPDATE t SET",
		"CREATE TABLE t (a FLOAT)",
		"SELECT * FROM t LIMIT x",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT id, name FROM employees WHERE name = 'Alice'",
		"SELECT COUNT(*) FROM t GROUP BY a ORDER BY b DESC LIMIT 5",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"UPDATE t SET a = 2 WHERE b = 'y'",
		"DELETE FROM t WHERE a = 1",
		"SELECT * FROM a JOIN b ON a.i = b.i",
	}
	for _, q := range queries {
		st := mustParse(t, q)
		re, err := Parse(st.String())
		if err != nil {
			t.Errorf("re-parse of %q -> %q failed: %v", q, st.String(), err)
			continue
		}
		if re.String() != st.String() {
			t.Errorf("not a fixpoint: %q -> %q", st.String(), re.String())
		}
	}
}

func TestParseQuotedStringEscapes(t *testing.T) {
	st := mustParse(t, `SELECT * FROM t WHERE a = 'it''s' AND b = "dq"`).(*SelectStmt)
	s := st.Where.String()
	if !strings.Contains(s, "it''s") {
		t.Fatalf("where = %s", s)
	}
}

func TestParseTableDotStar(t *testing.T) {
	st := mustParse(t, "SELECT t.* FROM t").(*SelectStmt)
	cr, ok := st.Exprs[0].Expr.(*ColRef)
	if !ok || cr.Column != "*" || cr.Table != "t" {
		t.Fatalf("%#v", st.Exprs[0].Expr)
	}
}
