package sqlparser

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	l := NewLexer(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == TokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks := lexAll(t, "SELECT name FROM employees")
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "name" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks := lexAll(t, "select * from t where a like 'x'")
	if toks[0].Text != "SELECT" || toks[4].Text != "WHERE" || toks[6].Text != "LIKE" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexAll(t, `'simple' 'it''s' "double" 'esc\n'`)
	want := []string{"simple", "it's", "double", "esc\n"}
	for i, w := range want {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Fatalf("tok%d = %+v, want %q", i, toks[i], w)
		}
	}
}

func TestLexUnterminatedString(t *testing.T) {
	l := NewLexer("'oops")
	if _, err := l.Next(); err == nil {
		t.Fatal("want error for unterminated string")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexAll(t, "<= >= <> != || < > = + - * / % & | ^ ( ) , . ;")
	wants := []string{"<=", ">=", "<>", "!=", "||", "<", ">", "=", "+", "-", "*", "/", "%", "&", "|", "^", "(", ")", ",", ".", ";"}
	if len(toks) != len(wants) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(wants))
	}
	for i, w := range wants {
		if toks[i].Kind != TokOp || toks[i].Text != w {
			t.Fatalf("tok%d = %+v, want %q", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "SELECT -- comment to end\n 1 /* block\nspanning */ 2")
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].Text != "1" || toks[2].Text != "2" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexParams(t *testing.T) {
	toks := lexAll(t, "a = ? AND b = ?")
	params := 0
	for _, tok := range toks {
		if tok.Kind == TokParam {
			params++
		}
	}
	if params != 2 {
		t.Fatalf("params = %d", params)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexAll(t, "0 42 123456789012345")
	for _, tok := range toks {
		if tok.Kind != TokInt {
			t.Fatalf("tok = %+v", tok)
		}
	}
}

func TestLexBadChar(t *testing.T) {
	l := NewLexer("SELECT @")
	if _, err := l.Next(); err != nil { // SELECT is fine
		t.Fatal(err)
	}
	if _, err := l.Next(); err == nil {
		t.Fatal("want error for @")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "ab  cd")
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Fatalf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}
