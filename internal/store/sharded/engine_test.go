package sharded

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
)

func mustExec(t *testing.T, ex store.Executor, sql string, params ...sqldb.Value) *sqldb.Result {
	t.Helper()
	res, err := ex.ExecSQL(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func parseOne(sql string) (sqlparser.Statement, error) { return sqlparser.Parse(sql) }

// TestDDLBroadcast: schema statements reach every shard.
func TestDDLBroadcast(t *testing.T) {
	e := New(4)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, e, "CREATE INDEX t_v ON t (v)")
	for i := 0; i < 4; i++ {
		tab := e.Shard(i).Table("t")
		if tab == nil {
			t.Fatalf("shard %d missing table", i)
		}
		found := false
		for _, ix := range tab.Indexes() {
			if ix.Column == "v" {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %d missing index on v", i)
		}
	}
	mustExec(t, e, "DROP TABLE t")
	for i := 0; i < 4; i++ {
		if e.Shard(i).Table("t") != nil {
			t.Fatalf("shard %d still has dropped table", i)
		}
	}
}

// TestRoutedPlacement: each row lands on exactly the shard its routing key
// hashes to, and routed point statements touch only that shard.
func TestRoutedPlacement(t *testing.T) {
	e := New(3)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 1; i <= 50; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
	}
	perShard := 0
	for s := 0; s < 3; s++ {
		perShard += e.Shard(s).Table("t").RowCount()
	}
	if perShard != 50 {
		t.Fatalf("rows across shards = %d, want 50", perShard)
	}
	for i := 1; i <= 50; i++ {
		want := e.ShardOf("t", sqldb.Int(int64(i)))
		res, err := e.Shard(want).ExecSQL("SELECT v FROM t WHERE id = ?", sqldb.Int(int64(i)))
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("row %d not on shard %d (err=%v rows=%d)", i, want, err, len(res.Rows))
		}
	}

	// A routed UPDATE must not touch other shards' planner counters.
	before := make([]sqldb.PlanCounters, 3)
	for s := 0; s < 3; s++ {
		before[s] = e.Shard(s).PlanCounters()
	}
	mustExec(t, e, "UPDATE t SET v = 999 WHERE id = 7")
	home := e.ShardOf("t", sqldb.Int(7))
	for s := 0; s < 3; s++ {
		after := e.Shard(s).PlanCounters()
		touched := after != before[s]
		if s == home && !touched {
			t.Fatalf("home shard %d saw no work", s)
		}
		if s != home && touched {
			t.Fatalf("routed UPDATE touched shard %d (home %d)", s, home)
		}
	}
}

// TestExecAutonomousRouting: the autonomous path routes single-row
// statements and refuses what it cannot place.
func TestExecAutonomousRouting(t *testing.T) {
	e := New(3)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, e, "CREATE TABLE nopk (a INT, b INT)")

	ins, _ := parseOne("INSERT INTO t (id, v) VALUES (11, 1)")
	if _, err := e.ExecAutonomous(ins); err != nil {
		t.Fatal(err)
	}
	home := e.ShardOf("t", sqldb.Int(11))
	if e.Shard(home).Table("t").RowCount() != 1 {
		t.Fatalf("autonomous insert missed its home shard %d", home)
	}

	// Unroutable INSERT (no primary key): refused, not silently written.
	badIns, _ := parseOne("INSERT INTO nopk (a, b) VALUES (1, 2)")
	_, err := e.ExecAutonomous(badIns)
	if err == nil || !strings.Contains(err.Error(), "cannot route") {
		t.Fatalf("unroutable autonomous INSERT: err = %v, want routing refusal", err)
	}
	for s := 0; s < 3; s++ {
		if e.Shard(s).Table("nopk").RowCount() != 0 {
			t.Fatalf("refused INSERT still wrote shard %d", s)
		}
	}

	// Single-row UPDATE routes to one shard.
	upd, _ := parseOne("UPDATE t SET v = 5 WHERE id = 11")
	if _, err := e.ExecAutonomous(upd); err != nil {
		t.Fatal(err)
	}
	res, _ := e.Shard(home).ExecSQL("SELECT v FROM t WHERE id = 11")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 5 {
		t.Fatalf("routed autonomous UPDATE missed: %v", res.Rows)
	}

	// Whole-table rewrite broadcasts (the onion-adjustment shape).
	for i := 20; i < 40; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 1)", i))
	}
	bc, _ := parseOne("UPDATE t SET v = v + 100")
	bres, err := e.ExecAutonomous(bc)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Affected != 21 {
		t.Fatalf("broadcast affected %d, want 21", bres.Affected)
	}

	// Rewriting the routing column is refused: the row cannot move shards.
	mv, _ := parseOne("UPDATE t SET id = 999 WHERE id = 11")
	if _, err := e.ExecAutonomous(mv); err == nil {
		t.Fatal("UPDATE of routing column succeeded")
	}
}

// TestSingleShardTxn: transactions pin to their first written shard and
// refuse statements that route elsewhere.
func TestSingleShardTxn(t *testing.T) {
	e := New(3)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	// Two ids on different shards.
	a, b := -1, -1
	for i := 1; i < 100 && b < 0; i++ {
		s := e.ShardOf("t", sqldb.Int(int64(i)))
		if a < 0 {
			a = i
		} else if s != e.ShardOf("t", sqldb.Int(int64(a))) {
			b = i
		}
	}
	c := e.NewConn()
	defer c.Close()
	mustExec(t, c, "BEGIN")
	mustExec(t, c, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 1)", a))
	if _, err := c.ExecSQL(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 1)", b)); err == nil ||
		!strings.Contains(err.Error(), "pinned") {
		t.Fatalf("cross-shard write inside txn: err = %v, want pin refusal", err)
	}
	// The transaction is still usable on its pinned shard and commits.
	mustExec(t, c, fmt.Sprintf("UPDATE t SET v = 2 WHERE id = %d", a))
	mustExec(t, c, "COMMIT")
	res := mustExec(t, e, "SELECT v FROM t WHERE id = ?", sqldb.Int(int64(a)))
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("committed txn state wrong: %v", res.Rows)
	}

	// Rollback discards.
	mustExec(t, c, "BEGIN")
	mustExec(t, c, fmt.Sprintf("UPDATE t SET v = 77 WHERE id = %d", a))
	mustExec(t, c, "ROLLBACK")
	res = mustExec(t, e, "SELECT v FROM t WHERE id = ?", sqldb.Int(int64(a)))
	if res.Rows[0][0].I != 2 {
		t.Fatalf("rollback leaked: %v", res.Rows)
	}
}

// TestStatsAggregation: Stats sums across shards rather than reading
// shard 0.
func TestStatsAggregation(t *testing.T) {
	e := New(4)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 1; i <= 40; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
	}
	mustExec(t, e, "SELECT * FROM t") // scatter: every shard scans
	st := e.Stats()
	if st.Shards != 4 {
		t.Fatalf("Shards = %d", st.Shards)
	}
	var wantSize int
	var wantScans int64
	for i := 0; i < 4; i++ {
		wantSize += e.Shard(i).SizeBytes()
		wantScans += e.Shard(i).PlanCounters().FullScans
	}
	if st.SizeBytes != wantSize {
		t.Fatalf("SizeBytes = %d, want %d", st.SizeBytes, wantSize)
	}
	if st.Plan.FullScans != wantScans || wantScans < 4 {
		t.Fatalf("FullScans = %d (per-shard sum %d): aggregation reads one shard only?", st.Plan.FullScans, wantScans)
	}
	if ti := e.Table("t"); ti == nil || ti.RowCount() != 40 {
		t.Fatalf("Table introspection did not sum row counts: %+v", ti)
	}
	if got := e.Stats().BusyNanos; got <= 0 {
		t.Fatalf("BusyNanos = %d", got)
	}
	e.ResetBusyNanos()
	if got := e.Stats().BusyNanos; got != 0 {
		t.Fatalf("ResetBusyNanos left %d", got)
	}
}

// TestAggregateUDFRecombination: a decomposable aggregate UDF recombines
// across shards (the hom_sum shape: fold partials through the same UDF).
func TestAggregateUDFRecombination(t *testing.T) {
	e := New(3)
	e.RegisterAggUDF("xsum", func() sqldb.AggState { return &xsumState{} })
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	want := int64(0)
	for i := 1; i <= 30; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i*i))
		want += int64(i * i)
	}
	res := mustExec(t, e, "SELECT xsum(v) FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].I != want {
		t.Fatalf("xsum = %v, want %d", res.Rows[0], want)
	}
	res = mustExec(t, e, "SELECT id, xsum(v) FROM t GROUP BY id ORDER BY id LIMIT 3")
	if len(res.Rows) != 3 || res.Rows[2][1].I != 9 {
		t.Fatalf("grouped xsum wrong: %v", res.Rows)
	}
}

type xsumState struct {
	sum int64
	any bool
}

func (s *xsumState) Step(args []sqldb.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("xsum: want 1 arg")
	}
	if args[0].IsNull() {
		return nil
	}
	n, err := args[0].AsInt()
	if err != nil {
		return err
	}
	s.sum += n
	s.any = true
	return nil
}

func (s *xsumState) Final() (sqldb.Value, error) {
	if !s.any {
		return sqldb.Null(), nil
	}
	return sqldb.Int(s.sum), nil
}

// TestDropRefusalKeepsShardsInSync: a DROP TABLE refused because an open
// transaction wrote the table must leave the schema (and every row) intact
// on every shard — not dropped from a prefix of them.
func TestDropRefusalKeepsShardsInSync(t *testing.T) {
	e := New(3)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 1; i <= 12; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
	}
	c := e.NewConn()
	defer c.Close()
	mustExec(t, c, "BEGIN")
	mustExec(t, c, "INSERT INTO t (id, v) VALUES (100, 1)")
	if _, err := e.ExecSQL("DROP TABLE t"); err == nil {
		t.Fatal("DROP succeeded despite an open transaction writing the table")
	}
	for s := 0; s < 3; s++ {
		if e.Shard(s).Table("t") == nil {
			t.Fatalf("refused DROP removed the table from shard %d", s)
		}
	}
	res := mustExec(t, e, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 12 {
		t.Fatalf("refused DROP lost rows: COUNT = %d", res.Rows[0][0].I)
	}
	mustExec(t, c, "COMMIT")
	mustExec(t, e, "DROP TABLE t") // now it drops everywhere
	for s := 0; s < 3; s++ {
		if e.Shard(s).Table("t") != nil {
			t.Fatalf("post-commit DROP left the table on shard %d", s)
		}
	}
}

// TestBroadcastWriteAtomicOnConflict: a broadcast UPDATE hitting a slot
// locked by a transaction on one shard must refuse as a whole — no shard
// applies it — so a retry after the conflict applies exactly once.
func TestBroadcastWriteAtomicOnConflict(t *testing.T) {
	e := New(3)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	for i := 1; i <= 12; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, n) VALUES (%d, 0)", i))
	}
	locker := e.NewConn()
	defer locker.Close()
	mustExec(t, locker, "BEGIN")
	mustExec(t, locker, "UPDATE t SET n = 500 WHERE id = 7") // locks id 7's slot

	if _, err := e.ExecSQL("UPDATE t SET n = n + 1"); err == nil {
		t.Fatal("broadcast UPDATE through a locked slot succeeded")
	}
	res := mustExec(t, e, "SELECT SUM(n) FROM t")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("refused broadcast leaked partial increments: SUM = %d, want 0", res.Rows[0][0].I)
	}

	mustExec(t, locker, "ROLLBACK")
	r, err := e.ExecSQL("UPDATE t SET n = n + 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 12 {
		t.Fatalf("retry affected %d, want 12", r.Affected)
	}
	res = mustExec(t, e, "SELECT SUM(n) FROM t")
	if res.Rows[0][0].I != 12 { // every row exactly +1
		t.Fatalf("retry double-applied: SUM = %d, want 12", res.Rows[0][0].I)
	}
}

// TestDirShardsDetection: the manifest probe distinguishes single-store
// and untrustworthy-sharded directories from healthy ones.
func TestDirShardsDetection(t *testing.T) {
	plain := t.TempDir()
	if _, ok := DirShards(plain); ok {
		t.Fatal("empty dir read as sharded")
	}
	dir := t.TempDir()
	e, err := Open(dir, 2, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if n, ok := DirShards(dir); !ok || n != 2 {
		t.Fatalf("DirShards = (%d, %v), want (2, true)", n, ok)
	}
	// Corrupt the manifest: still recognized as sharded (count unknown),
	// and Open fails loudly instead of anything silently serving empty.
	if err := os.WriteFile(filepath.Join(dir, "sharded.json"), []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if n, ok := DirShards(dir); !ok || n != 0 {
		t.Fatalf("corrupt manifest: DirShards = (%d, %v), want (0, true)", n, ok)
	}
	if _, err := Open(dir, 0, sqldb.DurabilityOptions{}); err == nil {
		t.Fatal("Open accepted a corrupt manifest")
	}
}
