// Package sharded implements store.Engine over N embedded sqldb instances
// — the horizontal partitioning the ROADMAP's "heavy traffic from millions
// of users" north star calls for. Each shard is a complete sqldb.DB with
// its own data directory, write-ahead log and group-commit cohort, so the
// per-database bottlenecks PR 4 left behind (one db.mu, one WAL file, one
// fsync stream) multiply by the shard count.
//
// Placement: rows are routed by hash of the table's routing column — the
// first PRIMARY KEY column, which for every proxy-created table is the
// hidden rid (Figure 3's data layout). A table with no primary key is
// unroutable: its rows hash over their whole content, reads always
// scatter, and autonomous single-row writes are refused rather than
// guessed.
//
// DDL and schema are broadcast to every shard; sealed proxy metadata rides
// each shard's WAL exactly as in the single store, wrapped in a sequence
// envelope so recovery can pick the newest blob across shards (a routed
// write commits its blob only on its own shard, leaving the others one
// version behind).
//
// Reads scatter to every shard in parallel and gather through an ordered
// merge: per-shard ORDER BY runs on each shard's ordered (OPE) indexes,
// LIMIT and MIN/MAX push down, and the coordinator k-way merges in the
// planner's index order. Aggregates recombine from per-shard partials
// (COUNT sums, MIN/MAX compare, aggregate UDFs — Paillier hom_sum — are
// re-applied to partials, which is exactly a product of partial products).
// Query shapes the scatter planner cannot prove correct (joins, COUNT
// DISTINCT) fall back to gathering the referenced tables into a transient
// in-memory sqldb and executing there — slower, never wrong.
//
// Transactions are single-shard: a transaction pins itself to the first
// shard it writes, and a statement that routes elsewhere fails with a
// clear error instead of silently spanning shards without atomicity.
package sharded

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fsutil"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
)

const manifestName = "sharded.json"

// manifest pins the shard count of a data directory: reopening with a
// different -shards would silently misroute every row.
type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// Engine is a hash-partitioned store over N sqldb instances.
type Engine struct {
	dir    string
	shards []*sqldb.DB

	// groupPushdowns counts GROUP BY queries the scatter planner executed
	// as per-shard grouped aggregation with partial recombination at the
	// gather (as opposed to the transient-gather fallback). Engine-level
	// because the decision is made here, not in any one shard's planner.
	groupPushdowns int64

	// metaMu serializes metadata-carrying commits so the sequence
	// envelope order matches WAL order on every shard.
	metaMu  sync.Mutex
	metaSeq uint64
	meta    []byte

	// udfMu guards the registries mirrored here so scatter merging and
	// the gather fallback know which functions aggregate.
	udfMu   sync.RWMutex
	udfs    map[string]sqldb.UDF
	aggUDFs map[string]sqldb.AggUDF

	defOnce sync.Once
	defConn *Conn
}

// New creates an in-memory sharded engine (tests, benchmarks).
func New(n int) *Engine {
	if n < 1 {
		panic("sharded: shard count must be >= 1")
	}
	e := newEngine("", n)
	for i := range e.shards {
		e.shards[i] = sqldb.New()
	}
	return e
}

func newEngine(dir string, n int) *Engine {
	return &Engine{
		dir:     dir,
		shards:  make([]*sqldb.DB, n),
		udfs:    make(map[string]sqldb.UDF),
		aggUDFs: make(map[string]sqldb.AggUDF),
	}
}

// ShardDir returns the data directory of one shard under dir.
func ShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", shard))
}

// DirShards reports whether a data directory holds a sharded store, and
// the shard count its manifest pins. Operators' startup code consults it
// so a sharded directory cannot be reopened as a single store by
// forgetting the shard flag (or vice versa). A directory that *looks*
// sharded but cannot be trusted — corrupt manifest, or shard
// subdirectories with the manifest missing — returns ok=true with n=0:
// callers must then route to Open, which fails loudly instead of letting
// a single-store open beside the shards silently serve an empty database.
func DirShards(dir string) (n int, ok bool) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if _, serr := os.Stat(ShardDir(dir, 0)); serr == nil {
			return 0, true // shard dirs without a manifest: sharded, count unknown
		}
		return 0, false
	}
	var m manifest
	if json.Unmarshal(data, &m) != nil || m.Version != 1 || m.Shards < 1 {
		return 0, true // present but corrupt: sharded, count unknown
	}
	return m.Shards, true
}

// Open creates or reopens a durable sharded engine rooted at dir, with one
// sqldb data directory per shard (shard-000/, shard-001/, ...). n is the
// shard count for a fresh directory; reopening an existing one requires n
// to match the directory's manifest (pass 0 to accept whatever it says).
// Every shard recovers independently — snapshot load, WAL replay, torn
// tail truncation — then schemas are reconciled: a shard that crashed
// before a broadcast CREATE TABLE/INDEX reached it gets the missing DDL
// re-applied (its torn rows stay lost, exactly like a torn tail in the
// single store).
func Open(dir string, n int, opts sqldb.DurabilityOptions) (*Engine, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("sharded: creating data dir: %w", err)
	}
	mpath := filepath.Join(dir, manifestName)
	if data, err := os.ReadFile(mpath); err == nil {
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.Version != 1 || m.Shards < 1 {
			return nil, fmt.Errorf("sharded: corrupt manifest %s", mpath)
		}
		if n == 0 {
			n = m.Shards
		}
		if n != m.Shards {
			return nil, fmt.Errorf("sharded: data dir has %d shards, requested %d (rows are placed by hash; the count cannot change)", m.Shards, n)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		if _, serr := os.Stat(ShardDir(dir, 0)); serr == nil {
			// Shard directories without a manifest: the manifest was lost,
			// not never written. Re-pinning a caller-supplied count here
			// would silently open a subset of the shards and misroute
			// every row; refuse and make the operator restore it.
			return nil, fmt.Errorf("sharded: %s has shard directories but no readable %s — restore the manifest (it pins the shard count)", dir, manifestName)
		}
		if n < 1 {
			return nil, fmt.Errorf("sharded: shard count must be >= 1 for a fresh data dir")
		}
		data, err := json.MarshalIndent(manifest{Version: 1, Shards: n}, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("sharded: encoding manifest: %w", err)
		}
		// Durable install, not just atomic: the manifest pins the shard
		// count, and a crash that leaves it empty or unsynced misroutes
		// every row on the next open.
		if err := fsutil.InstallFile(mpath, data, 0o600); err != nil {
			return nil, fmt.Errorf("sharded: installing manifest: %w", err)
		}
	}

	e := newEngine(dir, n)
	ok := false
	defer func() {
		if !ok {
			for _, sh := range e.shards {
				if sh != nil {
					//cryptdb:vet-ok durabilityerr: best-effort teardown of partially opened shards; the open error propagates
					sh.Close()
				}
			}
		}
	}()
	for i := range e.shards {
		sh, err := sqldb.Open(ShardDir(dir, i), opts)
		if err != nil {
			return nil, fmt.Errorf("sharded: opening shard %d: %w", i, err)
		}
		e.shards[i] = sh
	}
	if err := e.reconcileSchemas(); err != nil {
		return nil, err
	}
	e.recoverMeta()
	ok = true
	return e, nil
}

// reconcileSchemas repairs DDL that a crash mid-broadcast left half
// applied. Broadcasts run shard 0 first, so the direction of the torn
// statement is readable from shard 0: a table present there but missing on
// later shards is a torn CREATE (re-apply it, with indexes, to the shards
// that lack it); a table missing on shard 0 but present later is a torn
// DROP (finish dropping it everywhere) — resurrecting it would silently
// serve a subset of its rows. Rows are never copied either way — a shard
// that lost committed rows to a torn WAL tail stays short, the same
// fail-open contract as the single store's torn tail. (Residual ambiguity:
// a torn tail on shard 0 that swallowed a CREATE reads as a torn DROP;
// shard 0's log is treated as the authority.)
func (e *Engine) reconcileSchemas() error {
	union := make(map[string]*sqldb.DB) // table -> donor shard
	for _, sh := range e.shards {
		for _, name := range sh.TableNames() {
			if _, seen := union[name]; !seen {
				union[name] = sh
			}
		}
	}
	for name, donor := range union {
		if e.shards[0].Table(name) == nil {
			// Torn DROP: shard 0 already dropped it; complete the
			// broadcast on the shards the crash skipped.
			drop := &sqlparser.DropTableStmt{Name: name}
			for _, sh := range e.shards {
				if sh.Table(name) == nil {
					continue
				}
				if _, err := sh.ExecAutonomous(drop); err != nil {
					return fmt.Errorf("sharded: completing torn DROP of %s: %w", name, err)
				}
			}
			continue
		}
		for _, sh := range e.shards {
			if sh.Table(name) != nil {
				continue
			}
			if err := replaySchema(donor, sh, name); err != nil {
				return fmt.Errorf("sharded: reconciling table %s: %w", name, err)
			}
		}
	}
	return nil
}

// replaySchema re-creates one table (columns, PRIMARY KEY flag, indexes —
// never rows) on sh, copying the schema from donor.
func replaySchema(donor, sh *sqldb.DB, name string) error {
	dt := donor.Table(name)
	if dt == nil {
		return fmt.Errorf("donor lost table %s", name)
	}
	create := &sqlparser.CreateTableStmt{Name: name}
	for _, c := range dt.Cols {
		create.Cols = append(create.Cols, sqlparser.ColumnDef{
			Name: c.Name, Type: c.Type, Primary: c.Primary,
		})
	}
	if _, err := sh.ExecAutonomous(create); err != nil {
		return err
	}
	for _, ix := range dt.Indexes() {
		using := "HASH"
		if ix.Ordered {
			using = "BTREE"
		}
		st := &sqlparser.CreateIndexStmt{
			Table: name, Column: ix.Column, Unique: ix.Unique, Using: using,
		}
		if _, err := sh.ExecAutonomous(st); err != nil {
			return fmt.Errorf("index on %s.%s: %w", name, ix.Column, err)
		}
	}
	return nil
}

// recoverMeta picks the newest metadata blob across shards. Blobs are
// committed wrapped in a sequence envelope; a shard that did not see the
// latest routed commit simply reports an older sequence.
func (e *Engine) recoverMeta() {
	for _, sh := range e.shards {
		if seq, blob, ok := unwrapMeta(sh.Meta()); ok && (e.meta == nil || seq > e.metaSeq) {
			e.metaSeq = seq
			e.meta = blob
		}
	}
}

//
// Metadata envelope
//

func wrapMeta(seq uint64, blob []byte) []byte {
	out := make([]byte, 8+len(blob))
	binary.BigEndian.PutUint64(out, seq)
	copy(out[8:], blob)
	return out
}

func unwrapMeta(wrapped []byte) (seq uint64, blob []byte, ok bool) {
	if len(wrapped) < 8 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint64(wrapped), wrapped[8:], true
}

// UnwrapMeta decodes the sharded engine's metadata envelope: the sequence
// number that orders blobs across shards, and the proxy's raw blob. A
// replicated follower of a sharded primary uses it to pick the newest
// blob out of its replayed shard state, the same comparison sharded
// recovery makes.
func UnwrapMeta(wrapped []byte) (seq uint64, blob []byte, ok bool) {
	return unwrapMeta(wrapped)
}

// wrapNext allocates the next envelope sequence for blob. Callers hold
// e.metaMu across the commit that carries the wrapped blob, so envelope
// order matches WAL order.
func (e *Engine) wrapNext(blob []byte) []byte {
	e.metaSeq++
	return wrapMeta(e.metaSeq, blob)
}

// withMeta is the one place a metadata-carrying commit happens: with a
// blob, it serializes under metaMu, hands run the wrapped (enveloped)
// form, and publishes the blob as the engine's current metadata when run
// succeeds; without one, run executes directly with nil. A failed run
// burns its envelope sequence — gaps are fine, recovery only compares.
func (e *Engine) withMeta(meta []byte, run func(wrapped []byte) (*sqldb.Result, error)) (*sqldb.Result, error) {
	if meta == nil {
		return run(nil)
	}
	e.metaMu.Lock()
	defer e.metaMu.Unlock()
	res, err := run(e.wrapNext(meta))
	if err == nil {
		e.meta = append([]byte(nil), meta...)
	}
	return res, err
}

// SetMeta implements store.Engine: the blob commits durably on every
// shard, each in its own WAL batch, under one envelope sequence.
func (e *Engine) SetMeta(meta []byte) error {
	e.metaMu.Lock()
	defer e.metaMu.Unlock()
	wrapped := e.wrapNext(meta)
	for i, sh := range e.shards {
		if err := sh.SetMeta(wrapped); err != nil {
			return fmt.Errorf("sharded: shard %d: %w", i, err)
		}
	}
	e.meta = append([]byte(nil), meta...)
	return nil
}

// Meta implements store.Engine.
func (e *Engine) Meta() []byte {
	e.metaMu.Lock()
	defer e.metaMu.Unlock()
	return e.meta
}

//
// Routing
//

// routeCol returns the routing column of a table: its first PRIMARY KEY
// column ("" when it has none). Derived from the schema, so it survives
// restarts without separate bookkeeping.
func (e *Engine) routeCol(table string) string {
	t := e.shards[0].Table(table)
	if t == nil {
		return ""
	}
	for _, c := range t.Cols {
		if c.Primary {
			return c.Name
		}
	}
	return ""
}

// tableCols returns a table's schema (nil if the table does not exist).
func (e *Engine) tableCols(table string) []sqldb.Column {
	if t := e.shards[0].Table(table); t != nil {
		return t.Cols
	}
	return nil
}

// shardForKey maps a routing key to a shard.
func (e *Engine) shardForKey(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(len(e.shards)))
}

// ShardOf reports which shard owns rows of table whose routing column
// equals v. Exposed for tests and operational tooling.
func (e *Engine) ShardOf(table string, v sqldb.Value) int {
	return e.shardForKey(v.Key())
}

// conjunctsOf splits an expression on top-level ANDs.
func conjunctsOf(ex sqlparser.Expr) []sqlparser.Expr {
	if ex == nil {
		return nil
	}
	if b, ok := ex.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(conjunctsOf(b.L), conjunctsOf(b.R)...)
	}
	return []sqlparser.Expr{ex}
}

// routeWhere resolves a WHERE clause to a single shard: some conjunct must
// pin the table's routing column to a constant. names are the identifiers
// a qualified column reference may use (table name, alias).
func (e *Engine) routeWhere(table string, where sqlparser.Expr, params []sqldb.Value, names ...string) (int, bool) {
	col := e.routeCol(table)
	if col == "" || where == nil {
		return 0, false
	}
	matchRef := func(ex sqlparser.Expr) bool {
		cr, ok := ex.(*sqlparser.ColRef)
		if !ok || cr.Column != col {
			return false
		}
		if cr.Table == "" {
			return true
		}
		for _, n := range names {
			if n != "" && cr.Table == n {
				return true
			}
		}
		return cr.Table == table
	}
	for _, cj := range conjunctsOf(where) {
		b, ok := cj.(*sqlparser.BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		var val sqlparser.Expr
		switch {
		case matchRef(b.L):
			val = b.R
		case matchRef(b.R):
			val = b.L
		default:
			continue
		}
		v, err := sqldb.EvalConst(val, params)
		if err != nil || v.IsNull() {
			continue
		}
		return e.shardForKey(v.Key()), true
	}
	return 0, false
}

// routePos finds the position of the routing column within an INSERT's
// column list (or the schema order), -1 when absent.
func (e *Engine) routePos(s *sqlparser.InsertStmt, cols []sqldb.Column, col string) int {
	if col == "" {
		return -1
	}
	if len(s.Columns) == 0 {
		for i, c := range cols {
			if c.Name == col {
				return i
			}
		}
		return -1
	}
	for i, c := range s.Columns {
		if c == col {
			return i
		}
	}
	return -1
}

// routeRow computes the shard for one INSERT row. With a routing column
// its constant value decides placement (a row that omits the column routes
// by NULL); without one the whole row's content hashes, so placement is at
// least deterministic.
func (e *Engine) routeRow(s *sqlparser.InsertStmt, row []sqlparser.Expr, pos int, col string, params []sqldb.Value) (int, error) {
	if pos >= 0 && pos < len(row) {
		v, err := sqldb.EvalConst(row[pos], params)
		if err != nil {
			return 0, fmt.Errorf("sharded: cannot route INSERT into %s: routing column %s is not a constant: %w", s.Table, col, err)
		}
		return e.shardForKey(v.Key()), nil
	}
	key := ""
	for _, ex := range row {
		if v, err := sqldb.EvalConst(ex, params); err == nil {
			key += v.Key() + "\x1f"
		} else {
			key += ex.String() + "\x1f"
		}
	}
	return e.shardForKey(key), nil
}

// routeSingleInsert is the allocation-free fast path for the dominant
// one-row INSERT shape: it returns the target shard without building the
// per-shard split. ok=false means the statement has 0 or 2+ rows.
func (e *Engine) routeSingleInsert(s *sqlparser.InsertStmt, params []sqldb.Value) (int, bool, error) {
	if len(s.Rows) != 1 {
		return 0, false, nil
	}
	cols := e.tableCols(s.Table)
	if cols == nil {
		return 0, false, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	col := e.routeCol(s.Table)
	shard, err := e.routeRow(s, s.Rows[0], e.routePos(s, cols, col), col, params)
	return shard, true, err
}

// splitInsert partitions an INSERT's rows by shard. Row order within each
// shard statement is preserved.
func (e *Engine) splitInsert(s *sqlparser.InsertStmt, params []sqldb.Value) (map[int]*sqlparser.InsertStmt, error) {
	cols := e.tableCols(s.Table)
	if cols == nil {
		return nil, fmt.Errorf("sqldb: no table %s", s.Table)
	}
	col := e.routeCol(s.Table)
	pos := e.routePos(s, cols, col)
	out := make(map[int]*sqlparser.InsertStmt)
	for _, row := range s.Rows {
		shard, err := e.routeRow(s, row, pos, col, params)
		if err != nil {
			return nil, err
		}
		st := out[shard]
		if st == nil {
			st = &sqlparser.InsertStmt{Table: s.Table, Columns: s.Columns}
			out[shard] = st
		}
		st.Rows = append(st.Rows, row)
	}
	return out, nil
}

// assignsRouteCol reports whether an UPDATE writes the routing column —
// which would silently strand the row on its old shard, so it is refused.
func (e *Engine) assignsRouteCol(s *sqlparser.UpdateStmt) bool {
	col := e.routeCol(s.Table)
	if col == "" {
		return false
	}
	for _, a := range s.Assignments {
		if a.Column == col {
			return true
		}
	}
	return false
}

//
// DDL broadcast
//

// execDDL broadcasts a schema statement to every shard in order (shard 0
// first — recovery's torn-broadcast disambiguation depends on it). A
// sealed metadata blob (one envelope sequence) commits with the statement
// on each shard's WAL, preserving the single store's schema/metadata
// atomicity per shard; recovery reconciles shards a crash left behind.
//
// A runtime refusal must not diverge the shards the way a crash may:
// DROP pre-flights every shard (the single store's "written by an open
// transaction" refusal becomes a whole-broadcast refusal with no side
// effects), and a mid-broadcast failure of CREATE/DROP is compensated by
// undoing (or re-creating the schema of) the already-applied prefix. The
// compensation cannot restore rows a racing refusal made DROP delete on
// earlier shards — that window is the pre-flight's race and is narrow;
// an index creation that fails mid-broadcast (per-shard unique violation)
// leaves the index present on the prefix shards, which affects access
// paths and per-shard unique enforcement only.
func (e *Engine) execDDL(st sqlparser.Statement, meta []byte) (*sqldb.Result, error) {
	if drop, ok := st.(*sqlparser.DropTableStmt); ok {
		for _, sh := range e.shards {
			if err := sh.CanDropTable(drop.Name); err != nil {
				return nil, err
			}
		}
	}
	return e.withMeta(meta, func(wrapped []byte) (*sqldb.Result, error) {
		var res *sqldb.Result
		for i, sh := range e.shards {
			r, err := sh.ExecAutonomousWithMeta(st, wrapped)
			if err != nil {
				if i > 0 {
					e.compensateDDL(st, i)
					err = fmt.Errorf("sharded: DDL failed on shard %d of %d (applied prefix rolled back): %w", i, len(e.shards), err)
				}
				return r, err
			}
			res = r
		}
		return res, nil
	})
}

// compensateDDL undoes the prefix shards 0..failed-1 of a half-applied
// CREATE/DROP broadcast, best effort.
func (e *Engine) compensateDDL(st sqlparser.Statement, failed int) {
	switch s := st.(type) {
	case *sqlparser.CreateTableStmt:
		drop := &sqlparser.DropTableStmt{Name: s.Name}
		for i := 0; i < failed; i++ {
			e.shards[i].ExecAutonomous(drop) //nolint:errcheck // best-effort undo
		}
	case *sqlparser.DropTableStmt:
		// The failing shard still holds the schema; re-create it (empty —
		// the dropped prefix rows are gone) so the shards agree again.
		for i := 0; i < failed; i++ {
			replaySchema(e.shards[failed], e.shards[i], s.Name) //nolint:errcheck // best-effort undo
		}
	}
}

//
// Engine-level statement entry points (implicit default connection)
//

func (e *Engine) defaultConn() *Conn {
	e.defOnce.Do(func() { e.defConn = e.newConn() })
	return e.defConn
}

// NewConn implements store.Engine.
func (e *Engine) NewConn() store.Conn { return e.newConn() }

// ExecSQL implements store.Executor.
func (e *Engine) ExecSQL(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.defaultConn().ExecSQL(sql, params...)
}

// Exec implements store.Executor.
func (e *Engine) Exec(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.defaultConn().Exec(st, params...)
}

// ExecWithMeta implements store.Executor.
func (e *Engine) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.defaultConn().ExecWithMeta(st, meta, params...)
}

// ExecAutonomous implements store.Engine. Routing is strict here (the
// satellite contract): a single-row statement goes to exactly the shard
// owning its row; whole-table rewrites (the proxy's onion adjustments)
// broadcast; an INSERT whose placement cannot be derived is refused with a
// clear error rather than written to an arbitrary shard.
func (e *Engine) ExecAutonomous(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.execAutonomous(st, nil, params)
}

// ExecAutonomousWithMeta implements store.Engine.
func (e *Engine) ExecAutonomousWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.execAutonomous(st, meta, params)
}

func (e *Engine) execAutonomous(st sqlparser.Statement, meta []byte, params []sqldb.Value) (*sqldb.Result, error) {
	switch s := st.(type) {
	case *sqlparser.InsertStmt:
		if e.routeCol(s.Table) == "" && e.tableCols(s.Table) != nil {
			return nil, fmt.Errorf("sharded: cannot route autonomous INSERT into %s: table has no primary-key routing column", s.Table)
		}
		split, err := e.splitInsert(s, params)
		if err != nil {
			return nil, err
		}
		if len(split) > 1 {
			return nil, fmt.Errorf("sharded: autonomous multi-row INSERT into %s spans %d shards; split it per row", s.Table, len(split))
		}
		for shard, st := range split {
			return e.shardExecAutonomous(shard, st, meta, params)
		}
		return &sqldb.Result{}, nil // zero rows
	case *sqlparser.UpdateStmt:
		if e.assignsRouteCol(s) {
			return nil, fmt.Errorf("sharded: UPDATE must not modify routing column of %s (rows are placed by its hash)", s.Table)
		}
		if shard, ok := e.routeWhere(s.Table, s.Where, params); ok {
			return e.shardExecAutonomous(shard, st, meta, params)
		}
		return e.broadcastAutonomous(st, meta, params)
	case *sqlparser.DeleteStmt:
		if shard, ok := e.routeWhere(s.Table, s.Where, params); ok {
			return e.shardExecAutonomous(shard, st, meta, params)
		}
		return e.broadcastAutonomous(st, meta, params)
	case *sqlparser.SelectStmt:
		return e.defaultConn().execSelect(s, params)
	case *sqlparser.CreateTableStmt, *sqlparser.CreateIndexStmt, *sqlparser.DropTableStmt, *sqlparser.PrincTypeStmt:
		return e.execDDL(st, meta)
	}
	return nil, fmt.Errorf("sharded: unsupported autonomous statement %T", st)
}

// shardExecAutonomous runs one autonomous statement on one shard, with the
// metadata blob (if any) wrapped and committed in the same WAL batch.
func (e *Engine) shardExecAutonomous(shard int, st sqlparser.Statement, meta []byte, params []sqldb.Value) (*sqldb.Result, error) {
	return e.withMeta(meta, func(wrapped []byte) (*sqldb.Result, error) {
		return e.shards[shard].ExecAutonomousWithMeta(st, wrapped, params...)
	})
}

// broadcastAutonomous runs a whole-table rewrite on every shard with
// runtime all-or-nothing semantics: the statement executes inside a
// private transaction per shard (buffering, taking slot locks), and only
// when every shard accepted it do the transactions commit — so a write
// conflict or constraint violation on one shard refuses the whole
// statement with no side effects, matching the single store's statement
// atomicity. (This is runtime atomicity, not crash atomicity: a crash
// between the per-shard commits leaves some shards on the old version —
// the documented torn-broadcast window; see ARCHITECTURE.md.) Each shard
// commits the identically wrapped metadata blob with its own portion.
func (e *Engine) broadcastAutonomous(st sqlparser.Statement, meta []byte, params []sqldb.Value) (*sqldb.Result, error) {
	return e.withMeta(meta, func(wrapped []byte) (*sqldb.Result, error) {
		sessions := make([]*sqldb.Session, len(e.shards))
		for i, sh := range e.shards {
			sessions[i] = sh.NewSession()
		}
		defer func() {
			for _, s := range sessions {
				//cryptdb:vet-ok durabilityerr: Close here only rolls back uncommitted buffers; commit errors surface from Exec
				s.Close() //nolint:errcheck // rolls back anything uncommitted
			}
		}()
		total := &sqldb.Result{}
		for i, s := range sessions {
			if _, err := s.Exec(&sqlparser.BeginStmt{}); err != nil {
				return nil, err
			}
			res, err := s.ExecWithMeta(st, wrapped, params...)
			if err != nil {
				// The deferred Close rolls back every shard's buffer: the
				// statement refuses as a whole, like the single store.
				return nil, fmt.Errorf("sharded: shard %d refused the statement (no shard applied it): %w", i, err)
			}
			total.Affected += res.Affected
		}
		for i, s := range sessions {
			if _, err := s.Exec(&sqlparser.CommitStmt{}); err != nil {
				if i > 0 {
					err = fmt.Errorf("sharded: statement committed on shards 0..%d but failed to commit on shard %d: %w", i-1, i, err)
				}
				return nil, err
			}
		}
		return total, nil
	})
}

//
// UDFs, introspection, stats, lifecycle
//

// RegisterUDF implements store.Engine.
func (e *Engine) RegisterUDF(name string, fn sqldb.UDF) {
	e.udfMu.Lock()
	e.udfs[name] = fn
	e.udfMu.Unlock()
	for _, sh := range e.shards {
		sh.RegisterUDF(name, fn)
	}
}

// RegisterAggUDF implements store.Engine. The UDF must be decomposable
// (see store.Engine): scatter-gather re-applies it to per-shard partials.
func (e *Engine) RegisterAggUDF(name string, fn sqldb.AggUDF) {
	e.udfMu.Lock()
	e.aggUDFs[name] = fn
	e.udfMu.Unlock()
	for _, sh := range e.shards {
		sh.RegisterAggUDF(name, fn)
	}
}

// aggUDF returns the aggregate UDF registered under name, if any.
func (e *Engine) aggUDF(name string) (sqldb.AggUDF, bool) {
	e.udfMu.RLock()
	defer e.udfMu.RUnlock()
	fn, ok := e.aggUDFs[name]
	return fn, ok
}

// shardedTableInfo sums introspection across shards.
type shardedTableInfo struct {
	rows, bytes int
}

func (t shardedTableInfo) RowCount() int  { return t.rows }
func (t shardedTableInfo) SizeBytes() int { return t.bytes }

// Table implements store.Engine: row counts and sizes sum across shards.
func (e *Engine) Table(name string) store.TableInfo {
	found := false
	var info shardedTableInfo
	for _, sh := range e.shards {
		if t := sh.Table(name); t != nil {
			found = true
			info.rows += t.RowCount()
			info.bytes += t.SizeBytes()
		}
	}
	if !found {
		return nil
	}
	return info
}

// TableNames implements store.Engine (union across shards, sorted).
func (e *Engine) TableNames() []string {
	seen := make(map[string]bool)
	var names []string
	for _, sh := range e.shards {
		for _, n := range sh.TableNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// InTxn implements store.Engine.
func (e *Engine) InTxn() bool {
	for _, sh := range e.shards {
		if sh.InTxn() {
			return true
		}
	}
	return false
}

// Shards implements store.Engine.
func (e *Engine) Shards() int { return len(e.shards) }

// Stats implements store.Engine: every counter sums across shards, so
// callers (cryptdb-server reporting, cryptdb-bench) never silently read
// shard 0 only.
func (e *Engine) Stats() store.Stats {
	out := store.Stats{Shards: len(e.shards)}
	for _, sh := range e.shards {
		pc := sh.PlanCounters()
		out.Plan.FullScans += pc.FullScans
		out.Plan.EqScans += pc.EqScans
		out.Plan.RangeScans += pc.RangeScans
		out.Plan.OrderedScans += pc.OrderedScans
		out.Plan.MinMaxIndex += pc.MinMaxIndex
		out.Plan.Compiled += pc.Compiled
		out.Plan.Interpreted += pc.Interpreted
		out.Plan.HashJoins += pc.HashJoins
		out.Plan.NestedLoops += pc.NestedLoops
		out.Plan.DegradedJoins += pc.DegradedJoins
		out.Plan.GroupPushdowns += pc.GroupPushdowns
		out.Plan.ParallelPipelines += pc.ParallelPipelines
		out.Plan.Morsels += pc.Morsels
		// ExecWorkers is a configuration snapshot, not a tally: report the
		// widest per-statement cap any shard would use.
		if pc.ExecWorkers > out.Plan.ExecWorkers {
			out.Plan.ExecWorkers = pc.ExecWorkers
		}
		ws := sh.WALStats()
		out.WAL.Batches += ws.Batches
		out.WAL.Bytes += ws.Bytes
		out.WAL.Syncs += ws.Syncs
		out.WAL.Checkpoints += ws.Checkpoints
		out.SizeBytes += sh.SizeBytes()
		out.BusyNanos += sh.BusyNanos()
		cs := sh.CacheStats()
		out.Cache.Hits += cs.Hits
		out.Cache.Misses += cs.Misses
		out.Cache.Evictions += cs.Evictions
		out.Cache.ResidentBytes += cs.ResidentBytes
		out.Cache.BudgetBytes += cs.BudgetBytes
		out.Cache.ResidentPages += cs.ResidentPages
		out.Cache.HotPages += cs.HotPages
		out.Cache.DirtyPages += cs.DirtyPages
		out.DiskBytes += sh.DiskSizeBytes()
		out.CheckpointPauseNanos += sh.CheckpointPauseNanos()
		out.LastCheckpointBytes += sh.LastCheckpointBytes()
	}
	out.Plan.GroupPushdowns += atomic.LoadInt64(&e.groupPushdowns)
	return out
}

// ResetBusyNanos implements store.Engine.
func (e *Engine) ResetBusyNanos() {
	for _, sh := range e.shards {
		sh.ResetBusyNanos()
	}
}

// Checkpoint implements store.Engine.
func (e *Engine) Checkpoint() error {
	for i, sh := range e.shards {
		if err := sh.Checkpoint(); err != nil {
			return fmt.Errorf("sharded: checkpointing shard %d: %w", i, err)
		}
	}
	return nil
}

// Close implements store.Engine.
func (e *Engine) Close() error {
	var first error
	for i, sh := range e.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = fmt.Errorf("sharded: closing shard %d: %w", i, err)
		}
	}
	return first
}

// Shard exposes one underlying sqldb instance (tests, recovery tooling).
func (e *Engine) Shard(i int) *sqldb.DB { return e.shards[i] }
