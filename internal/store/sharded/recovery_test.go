package sharded

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sqldb"
)

// TestTornShardRecovery simulates a kill -9 that tore one shard's WAL
// tail: writes land across all shards, the engine is closed, one shard's
// log is truncated mid-frame, and the store reopened. The torn shard's
// un-replayable commits are lost (fail-open, like the single store's torn
// tail); every other shard's rows survive, the schema stays intact on all
// shards, and the engine keeps accepting writes.
func TestTornShardRecovery(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	e, err := Open(dir, shards, sqldb.DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")

	// Phase 1: 60 rows that must survive.
	for i := 1; i <= 60; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i*10))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	const victim = 1
	walPath := filepath.Join(ShardDir(dir, victim), "wal.log")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	phase1Size := info.Size()

	// Phase 2: 40 more rows; then "crash" with a torn tail on the victim
	// shard (truncate back into phase 2, mid-frame).
	e, err = Open(dir, 0, sqldb.DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	victimPhase2 := map[int]bool{}
	for i := 61; i <= 100; i++ {
		if e.ShardOf("t", sqldb.Int(int64(i))) == victim {
			victimPhase2[i] = true
		}
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i*10))
	}
	if len(victimPhase2) == 0 {
		t.Fatal("no phase-2 row routed to the victim shard; pick another victim")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, phase1Size+13); err != nil {
		t.Fatal(err)
	}

	e, err = Open(dir, shards, sqldb.DurabilityOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	res := mustExec(t, e, "SELECT id FROM t")
	got := map[int]bool{}
	for _, row := range res.Rows {
		got[int(row[0].I)] = true
	}
	for i := 1; i <= 60; i++ {
		if !got[i] {
			t.Fatalf("phase-1 row %d lost (only the victim's phase-2 tail may be)", i)
		}
	}
	lost := 0
	for i := 61; i <= 100; i++ {
		switch {
		case victimPhase2[i] && !got[i]:
			lost++
		case !victimPhase2[i] && !got[i]:
			t.Fatalf("row %d on a healthy shard lost", i)
		}
	}
	if lost == 0 {
		t.Fatalf("truncation removed nothing: test did not cut into phase 2")
	}

	// The store must remain fully writable, including on the torn shard.
	for i := 101; i <= 130; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
	}
	res = mustExec(t, e, "SELECT COUNT(*) FROM t")
	want := 100 - lost + 30
	if int(res.Rows[0][0].I) != want {
		t.Fatalf("COUNT(*) = %d, want %d", res.Rows[0][0].I, want)
	}
}

// TestShardCountPinned: a durable directory's shard count cannot change.
func TestShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, 4, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 2, sqldb.DurabilityOptions{}); err == nil {
		t.Fatal("reopening with a different shard count succeeded")
	}
	e, err = Open(dir, 0, sqldb.DurabilityOptions{}) // 0 = accept manifest
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", e.Shards())
	}
	e.Close()

	// A deleted manifest beside surviving shard dirs must refuse — not
	// re-pin whatever count the caller passes and open a shard subset.
	if err := os.Remove(filepath.Join(dir, "sharded.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 2, sqldb.DurabilityOptions{}); err == nil {
		t.Fatal("Open re-pinned a shard count over manifest-less shard dirs")
	}
}

// TestDDLReconcile: a crash between broadcast DDL reaching shard 0 and the
// rest is repaired at open — the lagging shard gets the table and indexes
// re-applied.
func TestDDLReconcile(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, 3, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, e, "CREATE INDEX t_v ON t (v)")
	// Simulate the torn broadcast: drop the table on one shard directly.
	if _, err := e.Shard(2).ExecSQL("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = Open(dir, 0, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st := e.Shard(2).Table("t")
	if st == nil {
		t.Fatal("shard 2 still missing table t after reconcile")
	}
	var hasUnique, hasOrdered bool
	for _, ix := range st.Indexes() {
		if ix.Column == "id" && ix.Unique {
			hasUnique = true
		}
		if ix.Column == "v" && ix.Ordered {
			hasOrdered = true
		}
	}
	if !hasUnique || !hasOrdered {
		t.Fatalf("reconciled indexes incomplete: %+v", st.Indexes())
	}
	if got := st.Cols[0]; !got.Primary || got.Name != "id" {
		t.Fatalf("reconciled schema lost the primary flag: %+v", st.Cols)
	}
	// Routed writes to the reconciled shard work again.
	for i := 1; i <= 20; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
	}
}

// TestTornDropReconcile: a crash mid-DROP-broadcast (shard 0 dropped, the
// rest did not) must complete the drop at open, not resurrect the table
// with a silent subset of its rows.
func TestTornDropReconcile(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, 3, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 1; i <= 30; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
	}
	// Simulate the torn broadcast: DROP reached shard 0 only.
	if _, err := e.Shard(0).ExecSQL("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e, err = Open(dir, 0, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for s := 0; s < 3; s++ {
		if e.Shard(s).Table("t") != nil {
			t.Fatalf("shard %d resurrected the half-dropped table", s)
		}
	}
	if names := e.TableNames(); len(names) != 0 {
		t.Fatalf("TableNames = %v after completed drop", names)
	}
}

// TestMetaEnvelopeRecovery: the newest metadata blob wins across shards,
// even when a routed commit left other shards' blobs behind.
func TestMetaEnvelopeRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, 3, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	if err := e.SetMeta([]byte("v1-broadcast")); err != nil {
		t.Fatal(err)
	}
	// A routed insert carries a newer blob to exactly one shard.
	st, err := parseOne("INSERT INTO t (id, v) VALUES (7, 70)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecWithMeta(st, []byte("v2-routed")); err != nil {
		t.Fatal(err)
	}
	if got := string(e.Meta()); got != "v2-routed" {
		t.Fatalf("Meta() = %q before restart", got)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e, err = Open(dir, 0, sqldb.DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := string(e.Meta()); got != "v2-routed" {
		t.Fatalf("Meta() = %q after restart, want the routed (newest) blob", got)
	}
}
