package sharded

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// Conn is one client connection to a sharded engine: a lazily opened
// sqldb.Session per shard plus single-shard transaction state.
//
// Transactions pin to the first shard they write: BEGIN is recorded
// locally, the first routed write opens the transaction on its shard, and
// every later write must route to the same shard — a statement that routes
// elsewhere fails with a clear error (the engine has no distributed
// commit, so spanning shards would silently drop atomicity). Reads inside
// a transaction scatter as usual; the pinned shard's session sees the
// transaction's buffered writes, every other shard serves committed state.
type Conn struct {
	eng *Engine

	mu     sync.Mutex
	sess   []*sqldb.Session
	txn    bool // BEGIN seen, not yet COMMIT/ROLLBACK
	pinned int  // shard the open transaction writes, -1 while unpinned
	closed bool
}

func (e *Engine) newConn() *Conn {
	return &Conn{eng: e, sess: make([]*sqldb.Session, len(e.shards)), pinned: -1}
}

// session returns (opening if needed) this connection's session on shard i.
func (c *Conn) session(i int) *sqldb.Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionLocked(i)
}

func (c *Conn) sessionLocked(i int) *sqldb.Session {
	if c.sess[i] == nil {
		c.sess[i] = c.eng.shards[i].NewSession()
	}
	return c.sess[i]
}

// Close implements store.Conn: rolls back any open transaction (via the
// per-shard session Close) and releases every session.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.txn = false
	c.pinned = -1
	var first error
	for _, s := range c.sess {
		if s != nil {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// InTxn implements store.Conn.
func (c *Conn) InTxn() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.txn
}

// TxnMetaPending implements store.Conn.
func (c *Conn) TxnMetaPending() bool {
	c.mu.Lock()
	pinned := c.pinned
	c.mu.Unlock()
	if pinned < 0 {
		return false
	}
	return c.session(pinned).TxnMetaPending()
}

// ExecSQL implements store.Executor.
func (c *Conn) ExecSQL(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return c.Exec(st, params...)
}

// Exec implements store.Executor.
func (c *Conn) Exec(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return c.exec(st, nil, params)
}

// ExecWithMeta implements store.Executor.
func (c *Conn) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return c.exec(st, meta, params)
}

func (c *Conn) exec(st sqlparser.Statement, meta []byte, params []sqldb.Value) (*sqldb.Result, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("sqldb: session is closed")
	}
	c.mu.Unlock()

	switch s := st.(type) {
	case *sqlparser.BeginStmt:
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.txn {
			return nil, fmt.Errorf("sqldb: BEGIN inside an open transaction")
		}
		// Recorded locally; the shard-side BEGIN happens at the first
		// routed write, when the pin is known.
		c.txn = true
		c.pinned = -1
		return &sqldb.Result{}, nil

	case *sqlparser.CommitStmt:
		return c.execCommit(meta)

	case *sqlparser.RollbackStmt:
		c.mu.Lock()
		defer c.mu.Unlock()
		if !c.txn {
			return nil, fmt.Errorf("sqldb: ROLLBACK outside a transaction")
		}
		c.txn = false
		pinned := c.pinned
		c.pinned = -1
		if pinned < 0 {
			return &sqldb.Result{}, nil
		}
		return c.sessionLocked(pinned).Exec(&sqlparser.RollbackStmt{})

	case *sqlparser.SelectStmt:
		return c.execSelect(s, params)

	case *sqlparser.InsertStmt:
		return c.execInsert(s, meta, params)

	case *sqlparser.UpdateStmt:
		if c.eng.assignsRouteCol(s) {
			return nil, fmt.Errorf("sharded: UPDATE must not modify routing column of %s (rows are placed by its hash)", s.Table)
		}
		if shard, ok := c.eng.routeWhere(s.Table, s.Where, params); ok {
			return c.routedWrite(shard, s, meta, params)
		}
		return c.broadcastWrite(s, meta, params)

	case *sqlparser.DeleteStmt:
		if shard, ok := c.eng.routeWhere(s.Table, s.Where, params); ok {
			return c.routedWrite(shard, s, meta, params)
		}
		return c.broadcastWrite(s, meta, params)

	default:
		// DDL and principal declarations broadcast; like sqldb, DDL never
		// rides a transaction.
		return c.eng.execDDL(st, meta)
	}
}

// execCommit commits the pinned shard's transaction (with the re-sealed
// metadata blob, if the caller passed one). An empty transaction — BEGIN
// with no writes — commits trivially.
func (c *Conn) execCommit(meta []byte) (*sqldb.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.txn {
		return nil, fmt.Errorf("sqldb: COMMIT outside a transaction")
	}
	c.txn = false
	pinned := c.pinned
	c.pinned = -1
	if pinned < 0 {
		if meta != nil {
			c.mu.Unlock()
			err := c.eng.SetMeta(meta)
			c.mu.Lock()
			return &sqldb.Result{}, err
		}
		return &sqldb.Result{}, nil
	}
	sess := c.sessionLocked(pinned)
	return c.eng.withMeta(meta, func(wrapped []byte) (*sqldb.Result, error) {
		return sess.ExecWithMeta(&sqlparser.CommitStmt{}, wrapped)
	})
}

// target pins the open transaction (if any) to shard, opening the
// shard-side transaction on first write, and returns the session to run
// on. A statement routing off the pinned shard is refused.
func (c *Conn) target(shard int) (*sqldb.Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.txn {
		if c.pinned == -1 {
			if _, err := c.sessionLocked(shard).Exec(&sqlparser.BeginStmt{}); err != nil {
				return nil, err
			}
			c.pinned = shard
		} else if c.pinned != shard {
			return nil, fmt.Errorf("sharded: statement routes to shard %d but the open transaction is pinned to shard %d (cross-shard transactions are not supported; COMMIT first)", shard, c.pinned)
		}
	}
	return c.sessionLocked(shard), nil
}

// routedWrite runs one single-shard write, wrapping any metadata blob.
func (c *Conn) routedWrite(shard int, st sqlparser.Statement, meta []byte, params []sqldb.Value) (*sqldb.Result, error) {
	sess, err := c.target(shard)
	if err != nil {
		return nil, err
	}
	return c.eng.withMeta(meta, func(wrapped []byte) (*sqldb.Result, error) {
		return sess.ExecWithMeta(st, wrapped, params...)
	})
}

// execInsert routes each row by its routing-column value. Outside a
// transaction the per-shard statements autocommit one by one, with a
// best-effort undo if a later shard rejects its rows; inside a transaction
// all rows must land on the pinned shard.
func (c *Conn) execInsert(s *sqlparser.InsertStmt, meta []byte, params []sqldb.Value) (*sqldb.Result, error) {
	// Fast path: the dominant single-row shape routes without building the
	// per-shard split.
	if shard, ok, err := c.eng.routeSingleInsert(s, params); err != nil {
		return nil, err
	} else if ok {
		return c.routedWrite(shard, s, meta, params)
	}
	split, err := c.eng.splitInsert(s, params)
	if err != nil {
		return nil, err
	}
	if len(split) == 0 {
		return &sqldb.Result{}, nil
	}
	if len(split) == 1 {
		for shard, st := range split {
			return c.routedWrite(shard, st, meta, params)
		}
	}
	if c.InTxn() {
		return nil, fmt.Errorf("sharded: INSERT into %s spans %d shards inside a transaction (transactions are single-shard; split the statement)", s.Table, len(split))
	}

	// Multi-shard autocommit INSERT: execute shard by shard. Cross-shard
	// statement atomicity has no distributed commit behind it; if a later
	// shard fails, rows already inserted are deleted again by routing key
	// (best effort — a crash in between leaves the prefix, like a torn
	// broadcast).
	shards := make([]int, 0, len(split))
	for shard := range split {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	col := c.eng.routeCol(s.Table)
	total := &sqldb.Result{}
	for i, shard := range shards {
		sess, terr := c.target(shard)
		if terr != nil {
			return nil, terr
		}
		res, err := sess.Exec(split[shard], params...)
		if err != nil {
			for j := 0; j < i; j++ {
				c.undoInsert(shards[j], split[shards[j]], col, params)
			}
			return nil, err
		}
		total.Affected += res.Affected
	}
	if meta != nil {
		// The blob did not ride a single statement; commit it in its own
		// batch so it is durable no later than the rows it describes.
		if err := c.eng.SetMeta(meta); err != nil {
			return total, err
		}
	}
	return total, nil
}

// undoInsert best-effort deletes the rows a partially applied multi-shard
// INSERT placed on one shard.
func (c *Conn) undoInsert(shard int, st *sqlparser.InsertStmt, routeCol string, params []sqldb.Value) {
	if routeCol == "" {
		return // whole-row-hashed tables cannot address rows for undo
	}
	pos := c.eng.routePos(st, c.eng.tableCols(st.Table), routeCol)
	if pos < 0 {
		return
	}
	for _, row := range st.Rows {
		if pos >= len(row) {
			continue
		}
		v, err := sqldb.EvalConst(row[pos], params)
		if err != nil {
			continue
		}
		del := &sqlparser.DeleteStmt{
			Table: st.Table,
			Where: &sqlparser.BinaryExpr{Op: "=",
				L: &sqlparser.ColRef{Column: routeCol},
				R: exprFromValue(v)},
		}
		c.eng.shards[shard].ExecAutonomous(del) //nolint:errcheck // best-effort undo
	}
}

// broadcastWrite runs an unroutable UPDATE/DELETE on every shard: each
// shard applies it to its own rows, so the union equals the single-store
// statement. Refused inside a transaction (it would have to span shards);
// outside one it shares the engine's all-or-nothing broadcast, so one
// shard's write conflict refuses the whole statement with no side effects
// (a retry then applies exactly once, as on the single store).
func (c *Conn) broadcastWrite(st sqlparser.Statement, meta []byte, params []sqldb.Value) (*sqldb.Result, error) {
	if c.InTxn() {
		var table string
		switch s := st.(type) {
		case *sqlparser.UpdateStmt:
			table = s.Table
		case *sqlparser.DeleteStmt:
			table = s.Table
		}
		return nil, fmt.Errorf("sharded: statement on %s matches rows on multiple shards inside a transaction (transactions are single-shard; pin the statement with an equality on the routing column, or run it outside the transaction)", table)
	}
	return c.eng.broadcastAutonomous(st, meta, params)
}

// exprFromValue renders a value as a literal AST node.
func exprFromValue(v sqldb.Value) sqlparser.Expr {
	switch v.Kind {
	case sqldb.KindInt:
		return &sqlparser.IntLit{V: v.I}
	case sqldb.KindText:
		return &sqlparser.StrLit{V: v.S}
	case sqldb.KindBlob:
		return &sqlparser.BytesLit{V: v.B}
	}
	return &sqlparser.NullLit{}
}
