// Scatter-gather reads.
//
// A SELECT that cannot be routed to one shard fans out to all of them in
// parallel and merges:
//
//   - Plain queries concatenate, or — when the query carries a server-side
//     ORDER BY (the proxy's OPE `ORDER BY ... LIMIT` path) — k-way merge in
//     sort order, with LIMIT pushed down so each shard's ordered index
//     terminates early and the coordinator reads at most k·LIMIT rows.
//   - Aggregates recombine from per-shard partials: COUNT sums, SUM sums,
//     MIN/MAX compare, AVG decomposes into per-shard SUM+COUNT, and
//     aggregate UDFs (hom_sum) re-apply over partials — for Paillier a
//     product of partial products, which is §3.1's server-side SUM spread
//     over shards. GROUP BY merges groups by key; HAVING, ORDER BY and
//     select-list expressions over aggregates evaluate post-merge on
//     combined values (AVG anywhere decomposes into hidden SUM+COUNT
//     columns and finalizes at the gather).
//   - Anything the planner cannot prove correct (joins across shards,
//     COUNT(DISTINCT)) gathers the referenced tables into a transient
//     in-memory sqldb and executes there: slower, never wrong.
//
// Reads take no cross-shard snapshot: per-shard results reflect each
// shard's committed state at its own read time, the same read-committed
// view concurrent sessions already get within one sqldb instance.
package sharded

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

func (c *Conn) execSelect(s *sqlparser.SelectStmt, params []sqldb.Value) (*sqldb.Result, error) {
	e := c.eng
	if len(e.shards) == 1 || len(s.From) == 0 {
		return c.session(0).Exec(s, params...)
	}
	if len(s.From) == 1 {
		if shard, ok := e.routeWhere(s.From[0].Table, s.Where, params, s.From[0].Alias); ok {
			return c.session(shard).Exec(s, params...)
		}
		if hasAgg := e.selectHasAgg(s); hasAgg || len(s.GroupBy) > 0 {
			if plan, ok := e.planAgg(s); ok {
				return c.runAgg(plan, params)
			}
		} else if plan, ok := e.planPlain(s); ok {
			return c.runPlain(plan, params)
		}
	}
	return c.gatherExec(s, params)
}

// scatter runs one statement on every shard in parallel through this
// connection's sessions (so a pinned transaction reads its own writes on
// its shard).
func (c *Conn) scatter(st *sqlparser.SelectStmt, params []sqldb.Value) ([]*sqldb.Result, error) {
	n := len(c.eng.shards)
	results := make([]*sqldb.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sess := c.session(i)
		wg.Add(1)
		go func(i int, sess *sqldb.Session) {
			defer wg.Done()
			results[i], errs[i] = sess.Exec(st, params...)
		}(i, sess)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

//
// Aggregate detection
//

var builtinAggs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (e *Engine) isAgg(name string) bool {
	if builtinAggs[name] {
		return true
	}
	_, ok := e.aggUDF(name)
	return ok
}

func (e *Engine) containsAgg(ex sqlparser.Expr) bool {
	switch x := ex.(type) {
	case *sqlparser.FuncCall:
		if e.isAgg(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if e.containsAgg(a) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return e.containsAgg(x.L) || e.containsAgg(x.R)
	case *sqlparser.UnaryExpr:
		return e.containsAgg(x.E)
	}
	return false
}

func (e *Engine) selectHasAgg(s *sqlparser.SelectStmt) bool {
	for _, se := range s.Exprs {
		if !se.Star && e.containsAgg(se.Expr) {
			return true
		}
	}
	if s.Having != nil && e.containsAgg(s.Having) {
		return true
	}
	for _, o := range s.OrderBy {
		if e.containsAgg(o.Expr) {
			return true
		}
	}
	return false
}

//
// Plain (non-aggregate) scatter
//

type plainPlan struct {
	perShard *sqlparser.SelectStmt
	visible  int // -1: every column is visible (no hidden merge keys)
	keys     []mergeKey
	distinct bool
	limit    *int64
	offset   *int64
}

type mergeKey struct {
	idx  int
	desc bool
}

// planPlain builds the per-shard statement and merge plan for a
// non-aggregate single-table SELECT. ok=false falls back to gather.
func (e *Engine) planPlain(s *sqlparser.SelectStmt) (*plainPlan, bool) {
	per := *s // shallow copy; slices replaced below where modified
	plan := &plainPlan{perShard: &per, visible: -1, distinct: s.Distinct, limit: s.Limit, offset: s.Offset}

	if len(s.OrderBy) > 0 {
		hasStar := false
		for _, se := range s.Exprs {
			if se.Star {
				hasStar = true
			} else if cr, ok := se.Expr.(*sqlparser.ColRef); ok && cr.Column == "*" {
				hasStar = true
			}
		}
		if hasStar {
			return nil, false // column arithmetic under a star is not worth guessing
		}
		exprs := append([]sqlparser.SelectExpr(nil), s.Exprs...)
		plan.visible = len(exprs)
		for _, item := range s.OrderBy {
			idx := visibleIndex(item.Expr, s.Exprs)
			if idx < 0 {
				idx = len(exprs)
				exprs = append(exprs, sqlparser.SelectExpr{Expr: item.Expr})
			}
			plan.keys = append(plan.keys, mergeKey{idx: idx, desc: item.Desc})
		}
		per.Exprs = exprs
	}

	// Push LIMIT down (absorbing OFFSET); the global cut happens at merge.
	// Exception: DISTINCT with hidden sort-key columns — each shard's
	// DISTINCT then runs over (visible, hidden) tuples, so rows that
	// collapse in the post-merge visible-prefix dedup would eat the
	// per-shard budget and starve the global result. Fetch everything and
	// cut after the merge instead.
	per.Limit, per.Offset = nil, nil
	if s.Limit != nil && !(s.Distinct && plan.visible >= 0 && len(per.Exprs) > plan.visible) {
		lim := *s.Limit
		if s.Offset != nil {
			lim += *s.Offset
		}
		per.Limit = &lim
	}
	return plan, true
}

// visibleIndex resolves an ORDER BY expression to a projected column: by
// select-list alias, or by textual equality with a projected expression.
func visibleIndex(ex sqlparser.Expr, items []sqlparser.SelectExpr) int {
	if cr, ok := ex.(*sqlparser.ColRef); ok && cr.Table == "" {
		for i, se := range items {
			if !se.Star && se.Alias == cr.Column {
				return i
			}
		}
	}
	str := ex.String()
	for i, se := range items {
		if !se.Star && se.Alias == "" && se.Expr.String() == str {
			return i
		}
	}
	return -1
}

func (c *Conn) runPlain(plan *plainPlan, params []sqldb.Value) (*sqldb.Result, error) {
	results, err := c.scatter(plan.perShard, params)
	if err != nil {
		return nil, err
	}
	var rows [][]sqldb.Value
	if len(plan.keys) == 0 {
		for _, r := range results {
			rows = append(rows, r.Rows...)
		}
	} else {
		rows = mergeOrdered(results, plan.keys)
	}

	visible := plan.visible
	if visible < 0 {
		visible = len(results[0].Columns)
	}
	if plan.distinct {
		rows = dedupPrefix(rows, visible)
	}
	rows = cutLimit(rows, plan.limit, plan.offset)
	for i, row := range rows {
		rows[i] = row[:visible]
	}
	return &sqldb.Result{Columns: results[0].Columns[:visible], Rows: rows}, nil
}

// mergeOrdered k-way merges per-shard sorted results, ties broken by shard
// index so the merge is deterministic.
func mergeOrdered(results []*sqldb.Result, keys []mergeKey) [][]sqldb.Value {
	pos := make([]int, len(results))
	var out [][]sqldb.Value
	for {
		best := -1
		for i, r := range results {
			if pos[i] >= len(r.Rows) {
				continue
			}
			if best < 0 || keyLess(r.Rows[pos[i]], results[best].Rows[pos[best]], keys) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, results[best].Rows[pos[best]])
		pos[best]++
	}
}

func keyLess(a, b []sqldb.Value, keys []mergeKey) bool {
	for _, k := range keys {
		cmp := sqldb.SortCompare(a[k.idx], b[k.idx])
		if cmp == 0 {
			continue
		}
		if k.desc {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

func dedupPrefix(rows [][]sqldb.Value, visible int) [][]sqldb.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		key := ""
		for _, v := range r[:visible] {
			key += v.Key() + "\x1f"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}

func cutLimit(rows [][]sqldb.Value, limit, offset *int64) [][]sqldb.Value {
	if offset != nil {
		if int(*offset) >= len(rows) {
			return nil
		}
		rows = rows[*offset:]
	}
	if limit != nil && int(*limit) < len(rows) {
		rows = rows[:*limit]
	}
	return rows
}

//
// Aggregate scatter
//

const (
	outPlain = iota
	outCount
	outSum
	outMin
	outMax
	outAvg
	outUDF
)

// aggCol describes one per-shard result column and how partials combine.
type aggCol struct {
	kind int
	udf  sqldb.AggUDF // outUDF
}

// aggOut maps one output column of the original query onto merged columns.
type aggOut struct {
	name string
	src  int // merged column (plain value or combined aggregate)
	sum  int // avg: per-shard SUM column
	cnt  int // avg: per-shard COUNT column
	avg  bool
	post *postRef // expression over aggregates, evaluated post-merge
}

type postRef struct {
	expr sqlparser.Expr
	idx  []refBinding // substitutions into the merged row
}

type refBinding struct {
	key string // FuncCall.String() or ColRef.String()
	agg bool
	idx int
	avg bool // AVG: finalize sum/cnt instead of reading idx
	sum int
	cnt int
}

type aggPlan struct {
	perShard *sqlparser.SelectStmt
	cols     []aggCol // one per per-shard column
	outs     []aggOut
	groupIdx []int
	having   *postRef
	orderBy  []postOrder
	distinct bool
	limit    *int64
	offset   *int64
}

type postOrder struct {
	idx  int
	avg  *aggOut
	ref  *postRef // aggregate expression evaluated post-merge
	desc bool
}

// planAgg builds the per-shard statement and recombination plan for an
// aggregate / GROUP BY SELECT. ok=false falls back to gather.
func (e *Engine) planAgg(s *sqlparser.SelectStmt) (*aggPlan, bool) {
	plan := &aggPlan{distinct: s.Distinct, limit: s.Limit, offset: s.Offset}
	var items []sqlparser.SelectExpr

	// addItem appends (or reuses) a per-shard projection column.
	byString := make(map[string]int)
	addItem := func(se sqlparser.SelectExpr, col aggCol) int {
		key := se.Expr.String()
		if se.Alias == "" {
			if idx, ok := byString[key]; ok {
				return idx
			}
		}
		idx := len(items)
		items = append(items, se)
		plan.cols = append(plan.cols, col)
		if se.Alias == "" {
			byString[key] = idx
		}
		return idx
	}

	// aggColFor classifies one aggregate call, or fails.
	aggColFor := func(fc *sqlparser.FuncCall) (aggCol, bool) {
		if fc.Distinct {
			return aggCol{}, false // COUNT(DISTINCT) needs the values, not counts
		}
		switch fc.Name {
		case "COUNT":
			return aggCol{kind: outCount}, true
		case "SUM":
			return aggCol{kind: outSum}, true
		case "MIN":
			return aggCol{kind: outMin}, true
		case "MAX":
			return aggCol{kind: outMax}, true
		case "AVG":
			return aggCol{}, false // decomposed by the caller
		}
		if fn, ok := e.aggUDF(fc.Name); ok {
			return aggCol{kind: outUDF, udf: fn}, true
		}
		return aggCol{}, false
	}

	// addAvg appends the hidden SUM+COUNT pair an AVG decomposes into.
	addAvg := func(fc *sqlparser.FuncCall) (sumIdx, cntIdx int, ok bool) {
		if fc.Star || fc.Distinct || len(fc.Args) != 1 {
			return 0, 0, false
		}
		sumIdx = addItem(sqlparser.SelectExpr{Expr: &sqlparser.FuncCall{Name: "SUM", Args: fc.Args}}, aggCol{kind: outSum})
		cntIdx = addItem(sqlparser.SelectExpr{Expr: &sqlparser.FuncCall{Name: "COUNT", Args: fc.Args}}, aggCol{kind: outCount})
		return sumIdx, cntIdx, true
	}

	// resolve binds a HAVING / ORDER BY / select-list subexpression to
	// merged columns, appending hidden aggregate columns as needed (AVG
	// becomes a hidden SUM+COUNT pair finalized at the gather). ok=false on
	// anything unresolvable (unknown function, column not
	// grouped/projected).
	var resolve func(ex sqlparser.Expr, refs *[]refBinding) bool
	resolve = func(ex sqlparser.Expr, refs *[]refBinding) bool {
		switch x := ex.(type) {
		case *sqlparser.FuncCall:
			if !e.isAgg(x.Name) {
				return false
			}
			if x.Name == "AVG" {
				sumIdx, cntIdx, ok := addAvg(x)
				if !ok {
					return false
				}
				*refs = append(*refs, refBinding{key: x.String(), agg: true, avg: true, sum: sumIdx, cnt: cntIdx})
				return true
			}
			col, ok := aggColFor(x)
			if !ok {
				return false
			}
			idx := addItem(sqlparser.SelectExpr{Expr: x}, col)
			*refs = append(*refs, refBinding{key: x.String(), agg: true, idx: idx})
			return true
		case *sqlparser.ColRef:
			// Select-list alias?
			if x.Table == "" {
				for i, se := range s.Exprs {
					if !se.Star && se.Alias == x.Column && i < len(plan.outs) {
						out := plan.outs[i]
						if out.post != nil {
							return false
						}
						if out.avg {
							*refs = append(*refs, refBinding{key: x.String(), agg: true, avg: true, sum: out.sum, cnt: out.cnt})
						} else {
							*refs = append(*refs, refBinding{key: x.String(), idx: out.src})
						}
						return true
					}
				}
			}
			str := x.String()
			for i, it := range items {
				if plan.cols[i].kind == outPlain && it.Alias == "" && it.Expr.String() == str {
					*refs = append(*refs, refBinding{key: str, idx: i})
					return true
				}
			}
			return false
		case *sqlparser.BinaryExpr:
			return resolve(x.L, refs) && resolve(x.R, refs)
		case *sqlparser.UnaryExpr:
			return resolve(x.E, refs)
		case *sqlparser.IntLit, *sqlparser.StrLit, *sqlparser.BytesLit,
			*sqlparser.NullLit, *sqlparser.BoolLit, *sqlparser.Param:
			return true
		}
		return false
	}

	// Output columns.
	for _, se := range s.Exprs {
		if se.Star {
			return nil, false
		}
		if cr, ok := se.Expr.(*sqlparser.ColRef); ok && cr.Column == "*" {
			return nil, false
		}
		name := se.Alias
		if name == "" {
			if cr, ok := se.Expr.(*sqlparser.ColRef); ok {
				name = cr.Column
			} else {
				name = se.Expr.String()
			}
		}
		if fc, ok := se.Expr.(*sqlparser.FuncCall); ok && e.isAgg(fc.Name) {
			if fc.Name == "AVG" {
				sumIdx, cntIdx, ok := addAvg(fc)
				if !ok {
					return nil, false
				}
				plan.outs = append(plan.outs, aggOut{name: name, avg: true, sum: sumIdx, cnt: cntIdx})
				continue
			}
			col, ok := aggColFor(fc)
			if !ok {
				return nil, false
			}
			idx := addItem(sqlparser.SelectExpr{Expr: se.Expr, Alias: se.Alias}, col)
			plan.outs = append(plan.outs, aggOut{name: name, src: idx})
			continue
		}
		if e.containsAgg(se.Expr) {
			// Expression over aggregates: bind every aggregate call and
			// column to merged columns, evaluate the expression post-merge.
			ref := &postRef{expr: se.Expr}
			if !resolve(se.Expr, &ref.idx) {
				return nil, false
			}
			plan.outs = append(plan.outs, aggOut{name: name, post: ref})
			continue
		}
		idx := addItem(sqlparser.SelectExpr{Expr: se.Expr, Alias: se.Alias}, aggCol{kind: outPlain})
		plan.outs = append(plan.outs, aggOut{name: name, src: idx})
	}

	// Group identity: every GROUP BY expression must be a merged column.
	for _, g := range s.GroupBy {
		if e.containsAgg(g) {
			return nil, false
		}
		idx := addItem(sqlparser.SelectExpr{Expr: g}, aggCol{kind: outPlain})
		plan.groupIdx = append(plan.groupIdx, idx)
	}

	if s.Having != nil {
		ref := &postRef{expr: s.Having}
		if !resolve(s.Having, &ref.idx) {
			return nil, false
		}
		plan.having = ref
	}
	for _, o := range s.OrderBy {
		// ORDER BY over merged values: an aggregate expression, an alias,
		// or a grouped/projected column.
		if e.containsAgg(o.Expr) {
			ref := &postRef{expr: o.Expr}
			if !resolve(o.Expr, &ref.idx) {
				return nil, false
			}
			plan.orderBy = append(plan.orderBy, postOrder{ref: ref, desc: o.Desc})
			continue
		}
		if cr, ok := o.Expr.(*sqlparser.ColRef); ok && cr.Table == "" {
			if i := aliasOut(s, plan, cr.Column); i != nil {
				switch {
				case i.post != nil:
					plan.orderBy = append(plan.orderBy, postOrder{ref: i.post, desc: o.Desc})
				case i.avg:
					plan.orderBy = append(plan.orderBy, postOrder{avg: i, desc: o.Desc})
				default:
					plan.orderBy = append(plan.orderBy, postOrder{idx: i.src, desc: o.Desc})
				}
				continue
			}
		}
		idx := -1
		str := o.Expr.String()
		for i, it := range items {
			if plan.cols[i].kind == outPlain && it.Alias == "" && it.Expr.String() == str {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, false
		}
		plan.orderBy = append(plan.orderBy, postOrder{idx: idx, desc: o.Desc})
	}

	plan.perShard = &sqlparser.SelectStmt{
		Exprs:   items,
		From:    s.From,
		Where:   s.Where,
		GroupBy: s.GroupBy,
	}
	return plan, true
}

// aliasOut finds the output column a bare name aliases.
func aliasOut(s *sqlparser.SelectStmt, plan *aggPlan, name string) *aggOut {
	for i, se := range s.Exprs {
		if !se.Star && se.Alias == name {
			return &plan.outs[i]
		}
	}
	return nil
}

// mergedGroup is one group being recombined across shards.
type mergedGroup struct {
	vals []sqldb.Value
	udfs map[int]sqldb.AggState
}

func (c *Conn) runAgg(plan *aggPlan, params []sqldb.Value) (*sqldb.Result, error) {
	if len(plan.groupIdx) > 0 {
		atomic.AddInt64(&c.eng.groupPushdowns, 1)
	}
	results, err := c.scatter(plan.perShard, params)
	if err != nil {
		return nil, err
	}

	groups := make(map[string]*mergedGroup)
	var order []string
	for _, r := range results {
		for _, row := range r.Rows {
			key := ""
			for _, gi := range plan.groupIdx {
				key += row[gi].Key() + "\x1f"
			}
			g := groups[key]
			if g == nil {
				g = &mergedGroup{vals: append([]sqldb.Value(nil), row...)}
				for i, col := range plan.cols {
					if col.kind == outUDF {
						if g.udfs == nil {
							g.udfs = make(map[int]sqldb.AggState)
						}
						st := col.udf()
						if err := st.Step([]sqldb.Value{row[i]}); err != nil {
							return nil, err
						}
						g.udfs[i] = st
					}
				}
				groups[key] = g
				order = append(order, key)
				continue
			}
			for i, col := range plan.cols {
				if err := combinePartial(g, i, col, row[i]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Finalize UDF accumulators into the merged rows.
	for _, key := range order {
		g := groups[key]
		for i, st := range g.udfs {
			v, err := st.Final()
			if err != nil {
				return nil, err
			}
			g.vals[i] = v
		}
	}

	rows := make([][]sqldb.Value, 0, len(order))
	for _, key := range order {
		g := groups[key]
		if plan.having != nil {
			keep, err := evalPost(plan.having, g.vals, params)
			if err != nil {
				return nil, err
			}
			if !keep.Truthy() {
				continue
			}
		}
		rows = append(rows, g.vals)
	}

	if len(plan.orderBy) > 0 {
		if err := sortMerged(rows, plan.orderBy, params); err != nil {
			return nil, err
		}
	}

	out := &sqldb.Result{}
	for _, o := range plan.outs {
		out.Columns = append(out.Columns, o.name)
	}
	for _, row := range rows {
		final := make([]sqldb.Value, len(plan.outs))
		for i, o := range plan.outs {
			switch {
			case o.post != nil:
				v, err := evalPost(o.post, row, params)
				if err != nil {
					return nil, err
				}
				final[i] = v
			case o.avg:
				final[i] = avgFinal(row[o.sum], row[o.cnt])
			default:
				final[i] = row[o.src]
			}
		}
		out.Rows = append(out.Rows, final)
	}
	if plan.distinct {
		out.Rows = dedupPrefix(out.Rows, len(plan.outs))
	}
	out.Rows = cutLimit(out.Rows, plan.limit, plan.offset)
	return out, nil
}

// combinePartial folds one shard's partial into the group.
func combinePartial(g *mergedGroup, i int, col aggCol, v sqldb.Value) error {
	switch col.kind {
	case outPlain:
		// Group-key columns are equal by construction; a bare non-grouped
		// column keeps the first shard's value (first-tuple semantics).
		return nil
	case outCount, outSum:
		if v.IsNull() {
			return nil
		}
		if g.vals[i].IsNull() {
			g.vals[i] = v
			return nil
		}
		a, err := g.vals[i].AsInt()
		if err != nil {
			return err
		}
		b, err := v.AsInt()
		if err != nil {
			return err
		}
		g.vals[i] = sqldb.Int(a + b)
	case outMin, outMax:
		if v.IsNull() {
			return nil
		}
		if g.vals[i].IsNull() {
			g.vals[i] = v
			return nil
		}
		cmp, err := v.Compare(g.vals[i])
		if err != nil {
			cmp = sqldb.SortCompare(v, g.vals[i])
		}
		if (col.kind == outMin && cmp < 0) || (col.kind == outMax && cmp > 0) {
			g.vals[i] = v
		}
	case outUDF:
		return g.udfs[i].Step([]sqldb.Value{v})
	}
	return nil
}

func avgFinal(sum, cnt sqldb.Value) sqldb.Value {
	if sum.IsNull() || cnt.IsNull() {
		return sqldb.Null()
	}
	n, err := cnt.AsInt()
	if err != nil || n == 0 {
		return sqldb.Null()
	}
	s, err := sum.AsInt()
	if err != nil {
		return sqldb.Null()
	}
	return sqldb.Int(s / n)
}

// evalPost evaluates a HAVING / select-list / ORDER BY expression against
// a merged row by substituting its bound references with literals. AVG
// bindings finalize their hidden SUM+COUNT pair here.
func evalPost(ref *postRef, row []sqldb.Value, params []sqldb.Value) (sqldb.Value, error) {
	bind := make(map[string]sqldb.Value, len(ref.idx))
	for _, b := range ref.idx {
		if b.avg {
			bind[b.key] = avgFinal(row[b.sum], row[b.cnt])
		} else {
			bind[b.key] = row[b.idx]
		}
	}
	sub := substitute(ref.expr, bind)
	return sqldb.EvalConst(sub, params)
}

// substitute replaces bound aggregate calls and column references with
// value literals.
func substitute(ex sqlparser.Expr, bind map[string]sqldb.Value) sqlparser.Expr {
	if v, ok := bind[ex.String()]; ok {
		switch ex.(type) {
		case *sqlparser.FuncCall, *sqlparser.ColRef:
			return exprFromValue(v)
		}
	}
	switch x := ex.(type) {
	case *sqlparser.BinaryExpr:
		return &sqlparser.BinaryExpr{Op: x.Op, L: substitute(x.L, bind), R: substitute(x.R, bind)}
	case *sqlparser.UnaryExpr:
		return &sqlparser.UnaryExpr{Op: x.Op, E: substitute(x.E, bind)}
	}
	return ex
}

func sortMerged(rows [][]sqldb.Value, keys []postOrder, params []sqldb.Value) error {
	// Materialize the key values first: post-merge expressions can fail,
	// and sort comparators cannot return errors.
	keyVals := make([][]sqldb.Value, len(rows))
	for i, row := range rows {
		ks := make([]sqldb.Value, len(keys))
		for j, k := range keys {
			switch {
			case k.ref != nil:
				v, err := evalPost(k.ref, row, params)
				if err != nil {
					return err
				}
				ks[j] = v
			case k.avg != nil:
				ks[j] = avgFinal(row[k.avg.sum], row[k.avg.cnt])
			default:
				ks[j] = row[k.idx]
			}
		}
		keyVals[i] = ks
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := keyVals[idx[i]], keyVals[idx[j]]
		for kI, k := range keys {
			cmp := sqldb.SortCompare(a[kI], b[kI])
			if cmp == 0 {
				continue
			}
			if k.desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	sorted := make([][]sqldb.Value, len(rows))
	for i, p := range idx {
		sorted[i] = rows[p]
	}
	copy(rows, sorted)
	return nil
}

//
// Gather fallback
//

// gatherExec materializes every table the query references into a
// transient in-memory sqldb (pulling each shard's rows through this
// connection's sessions) and executes the statement there. Correct for
// every query shape the embedded DBMS supports — including cross-shard
// joins — at the price of moving the tables; the scatter paths above keep
// the common shapes off it.
func (c *Conn) gatherExec(s *sqlparser.SelectStmt, params []sqldb.Value) (*sqldb.Result, error) {
	e := c.eng
	tmp := sqldb.New()
	// Inherit the compiled-exec setting so an interpreted configuration
	// stays interpreted through the fallback too, and the worker setting
	// so the final join/aggregate runs morsel-parallel like any shard.
	tmp.SetCompiledExec(e.shards[0].CompiledExecEnabled())
	tmp.SetExecWorkers(e.shards[0].ExecWorkers())
	e.udfMu.RLock()
	for name, fn := range e.udfs {
		tmp.RegisterUDF(name, fn)
	}
	for name, fn := range e.aggUDFs {
		tmp.RegisterAggUDF(name, fn)
	}
	e.udfMu.RUnlock()

	seen := make(map[string]bool)
	for _, ref := range s.From {
		if seen[ref.Table] {
			continue
		}
		seen[ref.Table] = true
		cols := e.tableCols(ref.Table)
		if cols == nil {
			return nil, fmt.Errorf("sqldb: no table %s", ref.Table)
		}
		ct := &sqlparser.CreateTableStmt{Name: ref.Table}
		for _, col := range cols {
			// No PRIMARY KEY / UNIQUE here: uniqueness was enforced at
			// insert time per shard; re-checking a gathered copy could
			// only reject rows that already exist.
			ct.Cols = append(ct.Cols, sqlparser.ColumnDef{Name: col.Name, Type: col.Type})
		}
		if _, err := tmp.Exec(ct); err != nil {
			return nil, err
		}
		sel := &sqlparser.SelectStmt{
			Exprs: []sqlparser.SelectExpr{{Star: true}},
			From:  []sqlparser.TableRef{{Table: ref.Table}},
		}
		shardRows, err := c.scatter(sel, nil)
		if err != nil {
			return nil, err
		}
		ins := &sqlparser.InsertStmt{Table: ref.Table}
		for _, r := range shardRows {
			for _, row := range r.Rows {
				exprRow := make([]sqlparser.Expr, len(row))
				for j, v := range row {
					exprRow[j] = exprFromValue(v)
				}
				ins.Rows = append(ins.Rows, exprRow)
			}
		}
		if len(ins.Rows) > 0 {
			if _, err := tmp.Exec(ins); err != nil {
				return nil, err
			}
		}
		// Recreate the shard tables' indexes (after the bulk load, so they
		// build in one pass, and in parallel across indexes — each build
		// is an independent table scan): a central join or grouped scan
		// over the gathered copy probes and prunes the same way it would
		// per shard, instead of degrading to nested loops. Uniqueness is
		// still not re-checked, per the note above.
		if t := e.shards[0].Table(ref.Table); t != nil {
			infos := t.Indexes()
			for i := range infos {
				infos[i].Unique = false
			}
			if err := tmp.BuildIndexesParallel(ref.Table, infos); err != nil {
				return nil, err
			}
		}
	}
	return tmp.Exec(s, params...)
}
