package sharded

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/store/single"
)

// TestCrossShardEquivalence drives one pseudo-random workload — inserts,
// routed and broadcast updates, deletes, transactions, range queries,
// ORDER BY ... LIMIT, aggregates, GROUP BY/HAVING, DISTINCT and a join —
// against store/single and store/sharded at 2, 3 and 8 shards, and
// requires identical results throughout: the partitioning must be
// invisible to SQL.
func TestCrossShardEquivalence(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			runEquivalence(t, single.New(sqldb.New()), New(shards))
		})
	}
}

// TestCrossShardEquivalenceInterpreted repeats the workload with the
// compiled pipeline disabled on every node: the interpreter must produce
// the same rows through the same scatter plans.
func TestCrossShardEquivalenceInterpreted(t *testing.T) {
	refDB := sqldb.New()
	refDB.SetCompiledExec(false)
	dut := New(3)
	for i := 0; i < 3; i++ {
		dut.Shard(i).SetCompiledExec(false)
	}
	runEquivalence(t, single.New(refDB), dut)
	pc := dut.Stats().Plan
	if pc.Compiled != 0 {
		t.Fatalf("compiled pipeline ran with SetCompiledExec(false): %+v", pc)
	}
	if pc.Interpreted == 0 || pc.GroupPushdowns == 0 {
		t.Fatalf("workload did not exercise interpreter + grouped scatter: %+v", pc)
	}
}

// TestCrossShardCompiledVsInterpreted pits a compiled sharded engine
// against an interpreted one on the full workload — the cross-executor,
// cross-topology equivalence the compiled pipeline must hold — and checks
// the counters prove which path each arm took.
func TestCrossShardCompiledVsInterpreted(t *testing.T) {
	ref := New(3)
	for i := 0; i < 3; i++ {
		ref.Shard(i).SetCompiledExec(false)
	}
	dut := New(3)
	runEquivalence(t, ref, dut)

	pc := dut.Stats().Plan
	if pc.Compiled == 0 {
		t.Fatalf("compiled arm never compiled: %+v", pc)
	}
	if pc.GroupPushdowns == 0 {
		t.Fatalf("no GROUP BY was pushed down per shard: %+v", pc)
	}
	if rc := ref.Stats().Plan; rc.Compiled != 0 || rc.Interpreted == 0 {
		t.Fatalf("interpreted arm not interpreted: %+v", rc)
	}
}

// TestScatterPostMergeShapes proves the generalized scatter planner keeps
// the new shapes — expressions over aggregates, AVG in HAVING/ORDER BY —
// on the per-shard pushdown path: GroupPushdowns must advance once per
// grouped query, meaning none of them fell back to the transient gather.
func TestScatterPostMergeShapes(t *testing.T) {
	eng := New(4)
	ref := single.New(sqldb.New())
	for _, sql := range []string{
		"CREATE TABLE m (id INT PRIMARY KEY, g TEXT, v INT)",
	} {
		if _, err := eng.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		g := fmt.Sprintf("g%d", i%5)
		for _, e := range []store.Engine{eng, ref} {
			if _, err := e.ExecSQL("INSERT INTO m (id, g, v) VALUES (?, ?, ?)",
				sqldb.Int(int64(i)), sqldb.Text(g), sqldb.Int(int64(i%37))); err != nil {
				t.Fatal(err)
			}
		}
	}
	grouped := []string{
		"SELECT g, SUM(v) + COUNT(*) * 10 FROM m GROUP BY g",
		"SELECT g, AVG(v) FROM m GROUP BY g HAVING AVG(v) >= 17 ORDER BY AVG(v) DESC, g",
		"SELECT g, -SUM(v) AS neg FROM m GROUP BY g ORDER BY neg, g",
		"SELECT g FROM m GROUP BY g HAVING SUM(v) - AVG(v) > 100 ORDER BY g",
	}
	for _, sql := range grouped {
		r1, err := ref.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		r2, err := eng.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: sharded: %v", sql, err)
		}
		compareResults(t, sql, r1, r2, false)
	}
	if got := eng.Stats().Plan.GroupPushdowns; got != int64(len(grouped)) {
		t.Fatalf("GroupPushdowns = %d, want %d (a shape fell back to gather)", got, len(grouped))
	}
}

func runEquivalence(t *testing.T, ref, dut store.Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(0xC0FFEE))
	groups := []string{"red", "green", "blue", "cyan"}

	both := func(sql string, params ...sqldb.Value) (*sqldb.Result, *sqldb.Result) {
		t.Helper()
		r1, err1 := ref.ExecSQL(sql, params...)
		r2, err2 := dut.ExecSQL(sql, params...)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: single err=%v sharded err=%v", sql, err1, err2)
		}
		if err1 != nil {
			return nil, nil
		}
		if r1.Affected != r2.Affected {
			t.Fatalf("%s: affected %d vs %d", sql, r1.Affected, r2.Affected)
		}
		return r1, r2
	}
	mustBoth := func(sql string, params ...sqldb.Value) {
		t.Helper()
		r1, err1 := ref.ExecSQL(sql, params...)
		if err1 != nil {
			t.Fatalf("%s: %v", sql, err1)
		}
		r2, err2 := dut.ExecSQL(sql, params...)
		if err2 != nil {
			t.Fatalf("%s: sharded: %v", sql, err2)
		}
		if r1.Affected != r2.Affected {
			t.Fatalf("%s: affected %d vs %d", sql, r1.Affected, r2.Affected)
		}
	}

	checkQuery := func(sql string, ordered bool, params ...sqldb.Value) {
		t.Helper()
		r1, r2 := both(sql, params...)
		if r1 == nil {
			return
		}
		compareResults(t, sql, r1, r2, ordered)
	}

	mustBoth("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val INT, pad TEXT)")
	mustBoth("CREATE INDEX t_val ON t (val)")
	mustBoth("CREATE TABLE t2 (id INT PRIMARY KEY, ref INT)")

	nextID := 0
	liveIDs := func() int { return nextID } // ids are 1..nextID, some deleted

	queries := func() {
		checkQuery("SELECT * FROM t", false)
		checkQuery("SELECT id, val FROM t WHERE val >= ? AND val < ?", false,
			sqldb.Int(int64(rng.Intn(500))), sqldb.Int(int64(500+rng.Intn(500))))
		checkQuery("SELECT id, grp, val FROM t ORDER BY val DESC, id LIMIT 7", true)
		checkQuery("SELECT id FROM t ORDER BY val, id LIMIT 5 OFFSET 3", true)
		checkQuery("SELECT MIN(val), MAX(val), COUNT(*), SUM(val) FROM t", true)
		checkQuery("SELECT AVG(val) FROM t", true)
		checkQuery("SELECT DISTINCT grp FROM t", false)
		// DISTINCT + ORDER BY over a non-projected (hidden) sort key +
		// LIMIT: the per-shard LIMIT pushdown must not starve the
		// post-merge visible-prefix dedup.
		checkQuery("SELECT DISTINCT grp FROM t ORDER BY val, id LIMIT 2", true)
		checkQuery("SELECT grp, COUNT(*), SUM(val) FROM t GROUP BY grp", false)
		checkQuery("SELECT grp, COUNT(*) AS c FROM t GROUP BY grp HAVING COUNT(*) > 2 ORDER BY c DESC, grp LIMIT 3", true)
		// Post-merge shapes: expressions over aggregates, and AVG outside
		// the select list (both decompose per shard, recombine at gather).
		checkQuery("SELECT grp, SUM(val) + COUNT(*) FROM t GROUP BY grp", false)
		checkQuery("SELECT grp, SUM(val) * 2 AS s2 FROM t GROUP BY grp ORDER BY SUM(val) DESC, grp LIMIT 3", true)
		checkQuery("SELECT grp, AVG(val) AS a FROM t GROUP BY grp HAVING AVG(val) > 200 ORDER BY a DESC, grp", true)
		checkQuery("SELECT grp, AVG(val) - 1 FROM t GROUP BY grp HAVING SUM(val) + COUNT(*) > 20", false)
		checkQuery("SELECT COUNT(*) FROM t WHERE grp = ?", true, sqldb.Text(groups[rng.Intn(len(groups))]))
		// Cross-shard join: exercises the gather fallback.
		checkQuery("SELECT t.id, t2.id FROM t, t2 WHERE t.id = t2.ref", false)
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // single-row insert
			nextID++
			mustBoth("INSERT INTO t (id, grp, val, pad) VALUES (?, ?, ?, ?)",
				sqldb.Int(int64(nextID)), sqldb.Text(groups[rng.Intn(len(groups))]),
				sqldb.Int(int64(rng.Intn(1000))), sqldb.Text("pad"))
			if rng.Intn(3) == 0 {
				mustBoth("INSERT INTO t2 (id, ref) VALUES (?, ?)",
					sqldb.Int(int64(nextID)), sqldb.Int(int64(1+rng.Intn(nextID))))
			}
		case op == 3: // multi-row insert spanning shards
			a, b, c := nextID+1, nextID+2, nextID+3
			nextID += 3
			mustBoth(fmt.Sprintf(
				"INSERT INTO t (id, grp, val, pad) VALUES (%d, 'red', %d, 'x'), (%d, 'green', %d, 'y'), (%d, 'blue', %d, 'z')",
				a, rng.Intn(1000), b, rng.Intn(1000), c, rng.Intn(1000)))
		case op == 4: // routed update by primary key
			if liveIDs() > 0 {
				mustBoth("UPDATE t SET val = ?, grp = ? WHERE id = ?",
					sqldb.Int(int64(rng.Intn(1000))), sqldb.Text(groups[rng.Intn(len(groups))]),
					sqldb.Int(int64(1+rng.Intn(liveIDs()))))
			}
		case op == 5: // broadcast update by range
			lo := rng.Intn(900)
			mustBoth("UPDATE t SET pad = ? WHERE val >= ? AND val < ?",
				sqldb.Text("upd"), sqldb.Int(int64(lo)), sqldb.Int(int64(lo+50)))
		case op == 6: // routed delete
			if liveIDs() > 0 {
				mustBoth("DELETE FROM t WHERE id = ?", sqldb.Int(int64(1+rng.Intn(liveIDs()))))
			}
		case op == 7: // broadcast delete by predicate
			lo := rng.Intn(980)
			mustBoth("DELETE FROM t WHERE val >= ? AND val < ?",
				sqldb.Int(int64(lo)), sqldb.Int(int64(lo+10)))
		case op == 8: // single-shard transaction on one row
			nextID++
			id := sqldb.Int(int64(nextID))
			mustBoth("BEGIN")
			mustBoth("INSERT INTO t (id, grp, val, pad) VALUES (?, 'cyan', ?, 'txn')",
				id, sqldb.Int(int64(rng.Intn(1000))))
			mustBoth("UPDATE t SET val = val + 1 WHERE id = ?", id)
			if rng.Intn(2) == 0 {
				mustBoth("COMMIT")
			} else {
				mustBoth("ROLLBACK")
			}
		default:
			queries()
		}
		if step%97 == 0 {
			queries()
		}
	}
	queries()
}

// compareResults asserts two results are equal: exactly for ordered
// queries, as multisets otherwise (scatter-gather interleaves shard rows,
// like any parallel scan would).
func compareResults(t *testing.T, sql string, a, b *sqldb.Result, ordered bool) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("%s: column count %d vs %d (%v vs %v)", sql, len(a.Columns), len(b.Columns), a.Columns, b.Columns)
	}
	ra, rb := renderRows(a.Rows), renderRows(b.Rows)
	if !ordered {
		sort.Strings(ra)
		sort.Strings(rb)
	}
	if len(ra) != len(rb) {
		t.Fatalf("%s: row count %d vs %d\nsingle: %v\nsharded: %v", sql, len(ra), len(rb), ra, rb)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: row %d differs\nsingle:  %s\nsharded: %s", sql, i, ra[i], rb[i])
		}
	}
}

func renderRows(rows [][]sqldb.Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		s := ""
		for _, v := range row {
			s += v.Key() + "|"
		}
		out[i] = s
	}
	return out
}
