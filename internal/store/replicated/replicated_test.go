package replicated_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/store/replicated"
	"repro/internal/store/sharded"
	"repro/internal/store/single"
)

var dopts = sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true}

// waitFollower blocks until the follower has replayed everything the
// primary engine has committed on every shard.
func waitFollower(t *testing.T, p *replicated.PrimaryEngine, f *replicated.FollowerEngine, shards int) {
	t.Helper()
	seqs := make([]uint64, shards)
	for i := range seqs {
		seqs[i] = p.Replication().ShardSeq(i)
	}
	if err := f.WaitCaughtUp(seqs, 20*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestFollowerReadOnlySingle(t *testing.T) {
	eng, err := single.Open(t.TempDir(), dopts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := replicated.WrapPrimary(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.ExecSQL("CREATE TABLE users (id INT PRIMARY KEY, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := p.ExecSQL("INSERT INTO users (id, name) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("user-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetMeta([]byte("sealed-proxy-metadata-v1")); err != nil {
		t.Fatal(err)
	}

	f, err := replicated.OpenFollower(t.TempDir(), p.Addr(), dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollower(t, p, f, 1)

	// Reads execute locally and match the primary.
	res, err := f.ExecSQL("SELECT COUNT(*) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 20 {
		t.Fatalf("follower count = %v, want 20", res.Rows[0][0])
	}

	// Every write shape is refused with a redirect naming the primary.
	writes := []string{
		"INSERT INTO users (id, name) VALUES (99, 'nope')",
		"UPDATE users SET name = 'x' WHERE id = 1",
		"DELETE FROM users WHERE id = 1",
		"CREATE TABLE other (id INT PRIMARY KEY)",
		"DROP TABLE users",
		"BEGIN",
	}
	for _, w := range writes {
		_, err := f.ExecSQL(w)
		var ro *store.ReadOnlyError
		if !errors.As(err, &ro) {
			t.Fatalf("%s: got %v, want ReadOnlyError", w, err)
		}
		if ro.Primary != p.Addr() {
			t.Fatalf("%s: redirect names %q, want %q", w, ro.Primary, p.Addr())
		}
	}
	if err := f.SetMeta([]byte("x")); err == nil {
		t.Fatal("SetMeta on follower succeeded")
	}

	// Connections are read-only too.
	conn := f.NewConn()
	defer conn.Close()
	if _, err := conn.ExecSQL("SELECT id FROM users WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ExecSQL("INSERT INTO users (id, name) VALUES (98, 'no')"); err == nil {
		t.Fatal("write through follower conn succeeded")
	}

	// Replicated metadata is visible, and the generation counter moved.
	if got := string(f.Meta()); got != "sealed-proxy-metadata-v1" {
		t.Fatalf("follower meta = %q", got)
	}
	if f.MetaGeneration() == 0 {
		t.Fatal("MetaGeneration did not advance")
	}
	if f.PrimaryAddr() != p.Addr() {
		t.Fatalf("PrimaryAddr = %q, want %q", f.PrimaryAddr(), p.Addr())
	}

	// The primary's Stats surface per-follower lag entries.
	stats := p.Stats()
	if len(stats.Followers) != 1 {
		t.Fatalf("primary sees %d followers, want 1", len(stats.Followers))
	}
	if stats.Followers[0].AckedSeq > stats.Followers[0].PrimarySeq {
		t.Fatalf("acked %d beyond primary %d", stats.Followers[0].AckedSeq, stats.Followers[0].PrimarySeq)
	}
}

func TestFollowerSharded(t *testing.T) {
	const shards = 2
	eng, err := sharded.Open(t.TempDir(), shards, dopts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := replicated.WrapPrimary(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.ExecSQL("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	// Enough rows to land on both shards.
	for i := 0; i < 40; i++ {
		if _, err := p.ExecSQL("INSERT INTO kv (k, v) VALUES (?, ?)",
			sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Metadata on a sharded engine travels in a sequence envelope; the
	// follower must unwrap it exactly like sharded recovery does.
	if err := p.SetMeta([]byte("sharded-meta-A")); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMeta([]byte("sharded-meta-B")); err != nil {
		t.Fatal(err)
	}

	f, err := replicated.OpenFollower(t.TempDir(), p.Addr(), dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Shards() != shards {
		t.Fatalf("follower has %d shards, want %d", f.Shards(), shards)
	}
	waitFollower(t, p, f, shards)

	res, err := f.ExecSQL("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 40 {
		t.Fatalf("follower count = %v, want 40", res.Rows[0][0])
	}
	pr, err := p.ExecSQL("SELECT k, v FROM kv WHERE k < 1000 ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := f.ExecSQL("SELECT k, v FROM kv WHERE k < 1000 ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Rows) != len(fr.Rows) {
		t.Fatalf("row counts differ: primary %d follower %d", len(pr.Rows), len(fr.Rows))
	}
	for i := range pr.Rows {
		if pr.Rows[i][1].S != fr.Rows[i][1].S {
			t.Fatalf("row %d: %q vs %q", i, pr.Rows[i][1].S, fr.Rows[i][1].S)
		}
	}
	if got := string(f.Meta()); got != "sharded-meta-B" {
		t.Fatalf("follower meta = %q, want sharded-meta-B", got)
	}
	if seq := f.ReplicaSeq(); seq == 0 {
		t.Fatal("ReplicaSeq is 0 after replication")
	}
}

func TestOpenFollowerBadPrimary(t *testing.T) {
	if _, err := replicated.OpenFollower(t.TempDir(), "127.0.0.1:1", dopts); err == nil {
		t.Fatal("OpenFollower against a dead address succeeded")
	}
}
