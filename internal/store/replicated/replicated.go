// Package replicated composes the store engines with internal/repl:
//
//   - WrapPrimary decorates an existing single or sharded engine with a
//     replication listener that ships each shard's WAL to followers, and
//     surfaces per-follower lag through Stats().
//   - OpenFollower opens (or creates) a local engine mirroring the
//     primary's topology — probed over the wire — and tails every shard's
//     stream into it. The resulting engine is read-only: SELECTs execute
//     locally against replayed state, every write returns a
//     store.ReadOnlyError naming the primary.
//
// The sealed proxy metadata rides the replicated WAL frames, so a
// follower's Meta() serves the newest blob that has replayed locally —
// the proxy layer uses MetaGeneration to notice transitions and reload.
package replicated

import (
	"fmt"
	"time"

	"repro/internal/repl"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
	"repro/internal/store/sharded"
	"repro/internal/store/single"
)

// shardDBs extracts the per-shard databases (and topology flags) a
// replication endpoint needs from a store engine.
func shardDBs(eng store.Engine) ([]*sqldb.DB, uint32, error) {
	switch e := eng.(type) {
	case *single.Engine:
		return []*sqldb.DB{e.DB()}, 0, nil
	case *sharded.Engine:
		dbs := make([]*sqldb.DB, e.Shards())
		for i := range dbs {
			dbs[i] = e.Shard(i)
		}
		return dbs, repl.FlagSharded, nil
	}
	return nil, 0, fmt.Errorf("replicated: unsupported engine type %T", eng)
}

//
// Primary side
//

// PrimaryEngine is a store engine that also ships its WAL to followers.
// All statement execution passes through unchanged; replication is
// asynchronous and never blocks a commit.
type PrimaryEngine struct {
	store.Engine
	repl *repl.Primary
}

// WrapPrimary attaches a replication listener on addr to an opened
// engine. The engine must be durable (followers are seeded from its WAL
// and snapshots).
func WrapPrimary(eng store.Engine, addr string) (*PrimaryEngine, error) {
	dbs, flags, err := shardDBs(eng)
	if err != nil {
		return nil, err
	}
	p, err := repl.NewPrimary(dbs, addr, flags)
	if err != nil {
		return nil, err
	}
	return &PrimaryEngine{Engine: eng, repl: p}, nil
}

// Addr returns the replication listener's address.
func (p *PrimaryEngine) Addr() string { return p.repl.Addr() }

// Replication exposes the underlying replication endpoint (fault
// injection, follower stats).
func (p *PrimaryEngine) Replication() *repl.Primary { return p.repl }

// Stats implements store.Engine, adding per-follower progress.
func (p *PrimaryEngine) Stats() store.Stats {
	st := p.Engine.Stats()
	for _, f := range p.repl.FollowerStats() {
		st.Followers = append(st.Followers, store.FollowerStat{
			Remote:     f.Remote,
			Shard:      f.Shard,
			SentSeq:    f.SentSeq,
			AckedSeq:   f.AckedSeq,
			PrimarySeq: f.PrimarySeq,
		})
	}
	return st
}

// Close stops replication first (so followers see a clean disconnect, not
// a torn frame), then closes the engine.
func (p *PrimaryEngine) Close() error {
	perr := p.repl.Close()
	if err := p.Engine.Close(); err != nil {
		return err
	}
	return perr
}

//
// Follower side
//

// FollowerEngine is a read-only engine whose state is replayed from a
// primary's WAL stream. Reads execute locally; writes fail with
// store.ReadOnlyError.
type FollowerEngine struct {
	eng       store.Engine
	dbs       []*sqldb.DB
	followers []*repl.Follower
	primary   string
	sharded   bool
}

// OpenFollower opens (creating if needed) a local data directory shaped
// like the primary's engine — topology probed from primaryAddr — and
// starts tailing every shard. A follower that already has local state
// resumes from its own recovered WAL position; one whose position has
// been checkpointed away on the primary is re-seeded with a snapshot
// automatically.
func OpenFollower(dir, primaryAddr string, opts sqldb.DurabilityOptions) (*FollowerEngine, error) {
	shards, flags, err := repl.Probe(primaryAddr)
	if err != nil {
		return nil, fmt.Errorf("replicated: probing primary: %w", err)
	}
	if shards < 1 {
		return nil, fmt.Errorf("replicated: primary reports %d shards", shards)
	}
	isSharded := flags&repl.FlagSharded != 0

	var eng store.Engine
	if isSharded {
		// opts.CacheBytes is the engine-wide budget; each shard gets an
		// equal slice, matching the primary-side convention.
		if shards > 1 && opts.CacheBytes > 0 {
			opts.CacheBytes /= int64(shards)
		}
		se, err := sharded.Open(dir, shards, opts)
		if err != nil {
			return nil, err
		}
		eng = se
	} else {
		se, err := single.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		eng = se
	}
	dbs, _, err := shardDBs(eng)
	if err != nil {
		eng.Close() //nolint:errcheck // unwinding a failed open
		return nil, err
	}
	f := &FollowerEngine{eng: eng, dbs: dbs, primary: primaryAddr, sharded: isSharded}
	for i, db := range dbs {
		f.followers = append(f.followers, repl.StartFollower(db, primaryAddr, i))
	}
	return f, nil
}

// readOnly is the uniform write refusal.
func (f *FollowerEngine) readOnly() error { return &store.ReadOnlyError{Primary: f.primary} }

// guard admits read statements and refuses everything else.
func (f *FollowerEngine) guard(st sqlparser.Statement) error {
	if _, ok := st.(*sqlparser.SelectStmt); ok {
		return nil
	}
	return f.readOnly()
}

// PrimaryAddr implements store.Replica.
func (f *FollowerEngine) PrimaryAddr() string { return f.primary }

// ReplicaSeq implements store.Replica: the minimum replayed sequence
// across shards (every shard has applied at least this much).
func (f *FollowerEngine) ReplicaSeq() uint64 {
	var minSeq uint64
	for i, db := range f.dbs {
		if s := db.Seq(); i == 0 || s < minSeq {
			minSeq = s
		}
	}
	return minSeq
}

// MetaGeneration implements store.Replica.
func (f *FollowerEngine) MetaGeneration() uint64 {
	var sum uint64
	for _, db := range f.dbs {
		sum += db.MetaVersion()
	}
	return sum
}

// Follower exposes one shard's replication tail (tests and the server's
// catch-up wait).
func (f *FollowerEngine) Follower(shard int) *repl.Follower { return f.followers[shard] }

// WaitCaughtUp blocks until every shard's replay position reaches the
// corresponding sequence in seqs (one entry per shard).
func (f *FollowerEngine) WaitCaughtUp(seqs []uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i, fw := range f.followers {
		var want uint64
		if i < len(seqs) {
			want = seqs[i]
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			remain = time.Millisecond
		}
		if err := fw.WaitCaughtUp(want, remain); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Meta implements store.Engine. The underlying engine's in-memory blob is
// stale on a follower (metadata arrives through replayed frames), so the
// newest committed blob is read directly from the shard databases —
// unwrapping the sharded engine's sequence envelope when the primary is
// sharded, exactly like sharded recovery does.
func (f *FollowerEngine) Meta() []byte {
	if !f.sharded {
		return f.dbs[0].Meta()
	}
	var best []byte
	var bestSeq uint64
	found := false
	for _, db := range f.dbs {
		if seq, blob, ok := sharded.UnwrapMeta(db.Meta()); ok && (!found || seq > bestSeq) {
			found, bestSeq, best = true, seq, blob
		}
	}
	return best
}

// ExecSQL implements store.Executor (reads only).
func (f *FollowerEngine) ExecSQL(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return f.Exec(st, params...)
}

// Exec implements store.Executor (reads only).
func (f *FollowerEngine) Exec(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	if err := f.guard(st); err != nil {
		return nil, err
	}
	return f.eng.Exec(st, params...)
}

// ExecWithMeta implements store.Executor. Always refused: a metadata
// commit is a write.
func (f *FollowerEngine) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return nil, f.readOnly()
}

// ExecAutonomous implements store.Engine (refused).
func (f *FollowerEngine) ExecAutonomous(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return nil, f.readOnly()
}

// ExecAutonomousWithMeta implements store.Engine (refused).
func (f *FollowerEngine) ExecAutonomousWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return nil, f.readOnly()
}

// SetMeta implements store.Engine (refused).
func (f *FollowerEngine) SetMeta(meta []byte) error { return f.readOnly() }

// NewConn implements store.Engine: a read-only connection. Transactions
// are refused outright (BEGIN is a write-intent statement; bounded-stale
// reads don't need one).
func (f *FollowerEngine) NewConn() store.Conn {
	return &followerConn{f: f, conn: f.eng.NewConn()}
}

// RegisterUDF implements store.Engine (needed for SELECT-side UDFs).
func (f *FollowerEngine) RegisterUDF(name string, fn sqldb.UDF) { f.eng.RegisterUDF(name, fn) }

// RegisterAggUDF implements store.Engine.
func (f *FollowerEngine) RegisterAggUDF(name string, fn sqldb.AggUDF) { f.eng.RegisterAggUDF(name, fn) }

// Table implements store.Engine.
func (f *FollowerEngine) Table(name string) store.TableInfo { return f.eng.Table(name) }

// TableNames implements store.Engine.
func (f *FollowerEngine) TableNames() []string { return f.eng.TableNames() }

// InTxn implements store.Engine (always false: no transactions).
func (f *FollowerEngine) InTxn() bool { return false }

// Shards implements store.Engine.
func (f *FollowerEngine) Shards() int { return f.eng.Shards() }

// Stats implements store.Engine.
func (f *FollowerEngine) Stats() store.Stats { return f.eng.Stats() }

// ResetBusyNanos implements store.Engine.
func (f *FollowerEngine) ResetBusyNanos() { f.eng.ResetBusyNanos() }

// Checkpoint implements store.Engine: checkpointing local replayed state
// is a maintenance write, not a logical one, and stays allowed.
func (f *FollowerEngine) Checkpoint() error { return f.eng.Checkpoint() }

// Close stops the replication tails, then closes the local engine.
func (f *FollowerEngine) Close() error {
	for _, fw := range f.followers {
		fw.Close()
	}
	return f.eng.Close()
}

// followerConn is a read-only store.Conn.
type followerConn struct {
	f    *FollowerEngine
	conn store.Conn
}

func (c *followerConn) ExecSQL(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return c.Exec(st, params...)
}

func (c *followerConn) Exec(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	if err := c.f.guard(st); err != nil {
		return nil, err
	}
	return c.conn.Exec(st, params...)
}

func (c *followerConn) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return nil, c.f.readOnly()
}

func (c *followerConn) InTxn() bool          { return false }
func (c *followerConn) TxnMetaPending() bool { return false }
func (c *followerConn) Close() error         { return c.conn.Close() }
