// Package store defines the storage-engine interface the CryptDB proxy
// speaks to. The paper's design deliberately keeps the proxy's view of the
// DBMS narrow — SQL over encrypted columns, a handful of UDFs, and an
// opaque metadata channel — which is exactly what makes the DBMS swappable.
// This package captures that surface as Engine/Conn so the proxy, the
// multi-principal layer and the server bind to an interface, with two
// implementations behind it:
//
//   - store/single: a thin adapter over one embedded sqldb.DB — the seed's
//     topology, unchanged semantics.
//   - store/sharded: N sqldb instances, each with its own data directory,
//     write-ahead log and group-commit cohort; rows are routed by hash of
//     the hidden row id, DDL and sealed proxy metadata broadcast to every
//     shard, and reads scatter-gather with an ordered merge.
//
// The split mirrors the paper's §8.4.1 observation that the DBMS — not the
// cryptography — bounds steady-state throughput: once queries are
// ciphertext-only, scaling the store is an ordinary (non-cryptographic)
// systems problem.
package store

import (
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// Executor is the statement surface shared by Engine (its implicit default
// connection) and Conn.
type Executor interface {
	// ExecSQL parses and executes one statement.
	ExecSQL(sql string, params ...sqldb.Value) (*sqldb.Result, error)
	// Exec executes a parsed statement.
	Exec(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error)
	// ExecWithMeta executes a write statement with an opaque metadata blob
	// attached to the same commit unit: the blob becomes durable if and
	// only if the statement's writes do. The proxy commits its sealed
	// onion metadata through this channel (see sqldb.ExecWithMeta).
	ExecWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error)
}

// Conn is one client's connection to the engine: the unit of transaction
// scope. The proxy opens one per proxy.Session (one per TCP connection in
// cryptdb-server).
type Conn interface {
	Executor
	// InTxn reports whether this connection has an open transaction.
	InTxn() bool
	// TxnMetaPending reports whether the open transaction carries a
	// metadata blob that will commit with it.
	TxnMetaPending() bool
	// Close releases the connection, rolling back any open transaction.
	Close() error
}

// TableInfo is read-only table introspection.
type TableInfo interface {
	RowCount() int
	SizeBytes() int
}

// Stats aggregates engine-wide counters. For a sharded engine every field
// sums (or concatenates) across shards — reading shard 0 alone would
// under-report by a factor of the shard count.
type Stats struct {
	Shards    int
	Plan      sqldb.PlanCounters
	WAL       sqldb.WALStats
	SizeBytes int
	BusyNanos int64
	// Cache aggregates buffer-cache activity when the engine runs the
	// paged layout (all zero for resident engines). Resident bytes and
	// on-disk bytes are reported separately on purpose: the former is
	// bounded by the cache budget, the latter grows with the data.
	Cache sqldb.CacheStats
	// DiskBytes is the on-disk footprint: page segments (or snapshot)
	// plus the live WAL, summed across shards.
	DiskBytes int64
	// CheckpointPauseNanos is cumulative time commits were stalled by
	// checkpoints (capture+install phases for the paged layout, the whole
	// snapshot write for the resident one); LastCheckpointBytes is what
	// the most recent checkpoint wrote.
	CheckpointPauseNanos int64
	LastCheckpointBytes  int64
	// Followers lists per-follower replication progress when this engine
	// is a replicating primary (empty otherwise).
	Followers []FollowerStat
}

// FollowerStat is one connected follower's replication progress, as seen
// by the primary. Lag is PrimarySeq - AckedSeq, in commit batches.
type FollowerStat struct {
	Remote     string
	Shard      int
	SentSeq    uint64
	AckedSeq   uint64
	PrimarySeq uint64
}

// ReadOnlyError reports that a statement tried to write through a
// follower engine. Followers serve reads only; the error names the
// primary so a client (or proxy) can redirect the write.
type ReadOnlyError struct{ Primary string }

// Error implements the error interface.
func (e *ReadOnlyError) Error() string {
	return "store: follower is read-only; send writes to the primary at " + e.Primary
}

// Replica is implemented by follower engines. The proxy detects it to
// route writes away and to refresh its sealed metadata when the
// replicated blob advances.
type Replica interface {
	// PrimaryAddr returns the replication address of the primary this
	// follower tails.
	PrimaryAddr() string
	// ReplicaSeq returns the replay position: the minimum committed WAL
	// sequence across the follower's shards. Monotone non-decreasing for
	// the life of the engine, across reconnects.
	ReplicaSeq() uint64
	// MetaGeneration counts committed metadata transitions observed by
	// the follower (summed across shards) — a cheap change detector for
	// re-loading sealed proxy state.
	MetaGeneration() uint64
}

// Engine is one logical DBMS behind the proxy.
//
// Aggregate UDFs registered through RegisterAggUDF must be decomposable:
// re-applying the UDF to per-shard partial results must produce the same
// final value as one pass over all rows (true for hom_sum — a product of
// partial Paillier products is the total product — and for any
// commutative-monoid aggregate). A sharded engine relies on this to
// recombine scatter-gather aggregates.
type Engine interface {
	Executor

	// NewConn opens an independent connection.
	NewConn() Conn

	// ExecAutonomous executes a write statement outside any open
	// transaction, as if on a separate connection that commits
	// immediately. The proxy uses it for onion adjustments and resyncs,
	// which must survive a client ROLLBACK.
	ExecAutonomous(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error)
	// ExecAutonomousWithMeta combines ExecAutonomous and ExecWithMeta.
	ExecAutonomousWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error)

	// SetMeta durably commits a metadata blob in its own commit unit.
	SetMeta(meta []byte) error
	// Meta returns the last committed metadata blob (nil if none); after
	// reopening a durable engine, the newest blob recovered from disk.
	Meta() []byte

	// RegisterUDF installs a scalar UDF on every underlying DBMS instance.
	RegisterUDF(name string, fn sqldb.UDF)
	// RegisterAggUDF installs an aggregate UDF (see the decomposability
	// contract above).
	RegisterAggUDF(name string, fn sqldb.AggUDF)

	// Table returns introspection for a table, or nil if absent.
	Table(name string) TableInfo
	// TableNames lists tables in sorted order.
	TableNames() []string

	// InTxn reports whether any connection holds an open transaction.
	InTxn() bool
	// Shards reports the partition count (1 for a single engine). Callers
	// that need cross-partition statement atomicity — which a sharded
	// engine cannot provide without distributed commit — consult this.
	Shards() int

	// Stats sums counters across every underlying instance.
	Stats() Stats
	// ResetBusyNanos zeroes the server-time counter on every instance.
	ResetBusyNanos()

	// Checkpoint snapshots and truncates every instance's WAL.
	Checkpoint() error
	// Close flushes and closes every instance.
	Close() error
}
