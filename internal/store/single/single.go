// Package single adapts one embedded sqldb.DB to the store.Engine
// interface — the seed's topology. It adds no behavior: every method
// forwards to the underlying database, so a proxy over store/single is
// bit-for-bit the proxy over sqldb.DB it replaced.
package single

import (
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
)

// Engine wraps one sqldb.DB.
type Engine struct {
	db *sqldb.DB
}

// New adapts an existing database (in-memory or durable).
func New(db *sqldb.DB) *Engine { return &Engine{db: db} }

// Open opens a durable database rooted at dir and wraps it.
func Open(dir string, opts sqldb.DurabilityOptions) (*Engine, error) {
	db, err := sqldb.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return New(db), nil
}

// DB exposes the underlying database. Tests and benchmarks that inspect
// server-visible state unwrap through this; code above the store layer
// should not.
func (e *Engine) DB() *sqldb.DB { return e.db }

// NewConn opens an independent session on the database.
func (e *Engine) NewConn() store.Conn { return conn{s: e.db.NewSession()} }

// ExecSQL implements store.Executor.
func (e *Engine) ExecSQL(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.db.ExecSQL(sql, params...)
}

// Exec implements store.Executor.
func (e *Engine) Exec(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.db.Exec(st, params...)
}

// ExecWithMeta implements store.Executor.
func (e *Engine) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.db.ExecWithMeta(st, meta, params...)
}

// ExecAutonomous implements store.Engine.
func (e *Engine) ExecAutonomous(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.db.ExecAutonomous(st, params...)
}

// ExecAutonomousWithMeta implements store.Engine.
func (e *Engine) ExecAutonomousWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return e.db.ExecAutonomousWithMeta(st, meta, params...)
}

// SetMeta implements store.Engine.
func (e *Engine) SetMeta(meta []byte) error { return e.db.SetMeta(meta) }

// Meta implements store.Engine.
func (e *Engine) Meta() []byte { return e.db.Meta() }

// RegisterUDF implements store.Engine.
func (e *Engine) RegisterUDF(name string, fn sqldb.UDF) { e.db.RegisterUDF(name, fn) }

// RegisterAggUDF implements store.Engine.
func (e *Engine) RegisterAggUDF(name string, fn sqldb.AggUDF) { e.db.RegisterAggUDF(name, fn) }

// Table implements store.Engine.
func (e *Engine) Table(name string) store.TableInfo {
	if t := e.db.Table(name); t != nil {
		return t
	}
	return nil
}

// TableNames implements store.Engine.
func (e *Engine) TableNames() []string { return e.db.TableNames() }

// InTxn implements store.Engine.
func (e *Engine) InTxn() bool { return e.db.InTxn() }

// Shards implements store.Engine.
func (e *Engine) Shards() int { return 1 }

// Stats implements store.Engine.
func (e *Engine) Stats() store.Stats {
	return store.Stats{
		Shards:               1,
		Plan:                 e.db.PlanCounters(),
		WAL:                  e.db.WALStats(),
		SizeBytes:            e.db.SizeBytes(),
		BusyNanos:            e.db.BusyNanos(),
		Cache:                e.db.CacheStats(),
		DiskBytes:            e.db.DiskSizeBytes(),
		CheckpointPauseNanos: e.db.CheckpointPauseNanos(),
		LastCheckpointBytes:  e.db.LastCheckpointBytes(),
	}
}

// ResetBusyNanos implements store.Engine.
func (e *Engine) ResetBusyNanos() { e.db.ResetBusyNanos() }

// Checkpoint implements store.Engine.
func (e *Engine) Checkpoint() error { return e.db.Checkpoint() }

// Close implements store.Engine.
func (e *Engine) Close() error { return e.db.Close() }

// conn adapts a sqldb.Session to store.Conn.
type conn struct {
	s *sqldb.Session
}

func (c conn) ExecSQL(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return c.s.ExecSQL(sql, params...)
}

func (c conn) Exec(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return c.s.Exec(st, params...)
}

func (c conn) ExecWithMeta(st sqlparser.Statement, meta []byte, params ...sqldb.Value) (*sqldb.Result, error) {
	return c.s.ExecWithMeta(st, meta, params...)
}

func (c conn) InTxn() bool          { return c.s.InTxn() }
func (c conn) TxnMetaPending() bool { return c.s.TxnMetaPending() }
func (c conn) Close() error         { return c.s.Close() }
