package mp

import (
	"fmt"
	"strings"

	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

// ActiveTable is the special table applications write to at login/logout
// (§4.2): INSERT INTO cryptdb_active (username, password) logs a user in,
// DELETE FROM cryptdb_active WHERE username = '...' logs her out. The proxy
// intercepts these statements; passwords never reach the DBMS.
const ActiveTable = "cryptdb_active"

// Execute runs one application SQL statement through the multi-principal
// layer: principal declarations, login/logout interception, speaks-for
// maintenance on writes, then the ordinary encrypted-query pipeline. It
// executes on the underlying proxy's default session; per-connection
// transaction scope comes from Manager.NewSession.
func (m *Manager) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return m.ExecuteStmt(st, params...)
}

// ExecuteStmt runs a pre-parsed statement on the proxy's default session.
func (m *Manager) ExecuteStmt(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return m.executeOn(m.p, st, params)
}

// stmtExecutor abstracts where DBMS-bound statements run: the proxy itself
// (its default session) or one per-connection proxy.Session. The key
// chaining and speaks-for state stays on the Manager either way — logins
// are global, matching §4.2's per-user (not per-connection) key model.
type stmtExecutor interface {
	ExecuteStmt(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error)
}

// Session is one connection's execution context in multi-principal mode:
// shared key-chaining state, private transaction scope. Close rolls back
// any open transaction (the disconnect path must not leave row locks).
type Session struct {
	m  *Manager
	ps *proxy.Session
}

// NewSession opens an independent session over the manager's proxy.
func (m *Manager) NewSession() *Session {
	return &Session{m: m, ps: m.p.NewSession()}
}

// Close releases the session, rolling back any open transaction.
func (s *Session) Close() error { return s.ps.Close() }

// Execute parses and runs one statement on this session.
func (s *Session) Execute(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.m.executeOn(s.ps, st, params)
}

// ExecuteStmt runs a pre-parsed statement on this session.
func (s *Session) ExecuteStmt(st sqlparser.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return s.m.executeOn(s.ps, st, params)
}

// executeOn dispatches one statement, running DBMS-bound work on ex.
func (m *Manager) executeOn(ex stmtExecutor, st sqlparser.Statement, params []sqldb.Value) (*sqldb.Result, error) {
	switch s := st.(type) {
	case *sqlparser.PrincTypeStmt:
		m.mu.Lock()
		defer m.mu.Unlock()
		for _, n := range s.Names {
			m.princTypes[n] = true
			if s.External {
				m.external[n] = true
			}
		}
		return &sqldb.Result{}, nil

	case *sqlparser.CreateTableStmt:
		res, err := ex.ExecuteStmt(s, params...)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if err := m.registerAnnotations(s); err != nil {
			return nil, err
		}
		return res, nil

	case *sqlparser.InsertStmt:
		if s.Table == ActiveTable {
			return m.handleActiveInsert(s, params)
		}
		// Grants are processed before the row lands so that an ENC FOR
		// column in the same row (HotCRP's PaperReview, Figure 6) finds
		// its principal's key already chained. Per §4.2, creating an
		// access_keys row requires the delegated principal's key to be
		// obtainable now — new principals are minted here.
		m.mu.Lock()
		err := m.processInsertGrants(s, params)
		m.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("mp: maintaining speaks-for on insert: %w", err)
		}
		return ex.ExecuteStmt(s, params...)

	case *sqlparser.DeleteStmt:
		if s.Table == ActiveTable {
			return m.handleActiveDelete(s, params)
		}
		m.mu.Lock()
		rows, revokeErr := m.rowsForRevocation(s, params)
		m.mu.Unlock()
		if revokeErr != nil {
			return nil, revokeErr
		}
		res, err := ex.ExecuteStmt(s, params...)
		if err != nil {
			return nil, err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		for _, row := range rows {
			if err := m.processRowEdges(s.Table, row, m.revoke); err != nil {
				return nil, fmt.Errorf("mp: revoking speaks-for: %w", err)
			}
		}
		return res, nil

	default:
		return ex.ExecuteStmt(st, params...)
	}
}

// registerAnnotations validates and indexes a table's SPEAKS FOR rules.
func (m *Manager) registerAnnotations(s *sqlparser.CreateTableStmt) error {
	for _, cd := range s.Cols {
		if cd.EncFor != nil && !m.princTypes[cd.EncFor.PrincType] {
			return fmt.Errorf("mp: ENC FOR uses undeclared principal type %q", cd.EncFor.PrincType)
		}
	}
	for _, sf := range s.SpeaksFor {
		if !m.princTypes[sf.AType] {
			return fmt.Errorf("mp: SPEAKS FOR uses undeclared principal type %q", sf.AType)
		}
		if !m.princTypes[sf.BType] {
			return fmt.Errorf("mp: SPEAKS FOR uses undeclared principal type %q", sf.BType)
		}
		m.speaksFor[s.Name] = append(m.speaksFor[s.Name], sf)
		if t2, _, ok := splitQualified(sf.AColumn); ok {
			m.reverse[t2] = append(m.reverse[t2], reverseRule{table: s.Name, annot: sf})
		}
	}
	return nil
}

func splitQualified(col string) (table, column string, ok bool) {
	i := strings.IndexByte(col, '.')
	if i < 0 {
		return "", "", false
	}
	return col[:i], col[i+1:], true
}

//
// Login / logout interception.
//

func (m *Manager) handleActiveInsert(s *sqlparser.InsertStmt, params []sqldb.Value) (*sqldb.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	uIdx, pIdx := -1, -1
	for i, c := range s.Columns {
		switch c {
		case "username":
			uIdx = i
		case "password":
			pIdx = i
		}
	}
	if uIdx < 0 || pIdx < 0 {
		return nil, fmt.Errorf("mp: %s insert must set username and password", ActiveTable)
	}
	for _, row := range s.Rows {
		u, err := sqldb.EvalConst(row[uIdx], params)
		if err != nil {
			return nil, err
		}
		pw, err := sqldb.EvalConst(row[pIdx], params)
		if err != nil {
			return nil, err
		}
		if err := m.login(u.String(), pw.String()); err != nil {
			return nil, err
		}
	}
	return &sqldb.Result{Affected: len(s.Rows)}, nil
}

func (m *Manager) handleActiveDelete(s *sqlparser.DeleteStmt, params []sqldb.Value) (*sqldb.Result, error) {
	// Expect WHERE username = '...'.
	be, ok := s.Where.(*sqlparser.BinaryExpr)
	if !ok || be.Op != "=" {
		return nil, fmt.Errorf("mp: %s delete must be WHERE username = ...", ActiveTable)
	}
	cr, ok := be.L.(*sqlparser.ColRef)
	if !ok || cr.Column != "username" {
		return nil, fmt.Errorf("mp: %s delete must be WHERE username = ...", ActiveTable)
	}
	u, err := sqldb.EvalConst(be.R, params)
	if err != nil {
		return nil, err
	}
	m.Logout(u.String())
	return &sqldb.Result{Affected: 1}, nil
}

//
// SPEAKS FOR maintenance.
//

// processInsertGrants applies the table's annotations to freshly inserted
// rows, and — for rules of the form (T2.col type) SPEAKS FOR ... — applies
// rules on other tables that reference this table.
func (m *Manager) processInsertGrants(s *sqlparser.InsertStmt, params []sqldb.Value) error {
	for _, exprRow := range s.Rows {
		row := make(map[string]sqldb.Value, len(s.Columns))
		for i, col := range s.Columns {
			v, err := sqldb.EvalConst(exprRow[i], params)
			if err != nil {
				return err
			}
			row[col] = v
		}
		if err := m.processRowEdges(s.Table, row, m.grant); err != nil {
			return err
		}
		// Reverse rules: inserting into T2 (e.g. PCMember) grants the
		// new T2 principal access over existing rows of the annotated
		// table (e.g. PaperReview).
		for _, rr := range m.reverse[s.Table] {
			if err := m.applyReverseRule(rr, row, params); err != nil {
				return err
			}
		}
	}
	return nil
}

// processRowEdges evaluates each annotation of a table against one row and
// applies fn (grant or revoke) for edges whose predicate holds.
func (m *Manager) processRowEdges(table string, row map[string]sqldb.Value, fn func(grantee, target pid) error) error {
	for _, sf := range m.speaksFor[table] {
		target, ok := principalFromRow(sf.BColumn, sf.BType, row)
		if !ok {
			continue
		}
		switch {
		case sf.AConst != "":
			if holds, err := m.predicateHolds(sf.If, row); err != nil {
				return err
			} else if !holds {
				continue
			}
			if err := fn(pid{ptype: sf.AType, name: sf.AConst}, target); err != nil {
				return err
			}
		case strings.Contains(sf.AColumn, "."):
			// (T2.col type) SPEAKS FOR ...: grant for every principal
			// in T2.col, evaluating the predicate per T2 row.
			t2, col, _ := splitQualified(sf.AColumn)
			res, err := m.p.Execute("SELECT " + col + " FROM " + t2)
			if err != nil {
				return fmt.Errorf("mp: reading %s for %s: %w", t2, sf.AColumn, err)
			}
			for _, r2 := range res.Rows {
				env := copyRow(row)
				env[col] = r2[0]
				if holds, err := m.predicateHolds(sf.If, env); err != nil {
					return err
				} else if !holds {
					continue
				}
				if err := fn(pid{ptype: sf.AType, name: r2[0].String()}, target); err != nil {
					return err
				}
			}
		default:
			grantee, ok := principalFromRow(sf.AColumn, sf.AType, row)
			if !ok {
				continue
			}
			if holds, err := m.predicateHolds(sf.If, row); err != nil {
				return err
			} else if !holds {
				continue
			}
			if err := fn(grantee, target); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyReverseRule handles an insert into T2 for a rule
// (T2.col type) SPEAKS FOR (b btype) IF pred living on another table: the
// new principal gains access to every existing row of the annotated table.
func (m *Manager) applyReverseRule(rr reverseRule, t2row map[string]sqldb.Value, params []sqldb.Value) error {
	_, col, _ := splitQualified(rr.annot.AColumn)
	av, ok := t2row[col]
	if !ok {
		return nil
	}
	grantee := pid{ptype: rr.annot.AType, name: av.String()}

	res, err := m.p.Execute("SELECT " + rr.annot.BColumn + " FROM " + rr.table)
	if err != nil {
		// The annotated table may not exist yet.
		return nil
	}
	for _, r := range res.Rows {
		env := copyRow(t2row)
		env[rr.annot.BColumn] = r[0]
		if holds, err := m.predicateHolds(rr.annot.If, env); err != nil {
			return err
		} else if !holds {
			continue
		}
		if err := m.grant(grantee, pid{ptype: rr.annot.BType, name: r[0].String()}); err != nil {
			return err
		}
	}
	return nil
}

// rowsForRevocation reads the rows a DELETE will remove from a table with
// SPEAKS FOR annotations, before the delete executes.
func (m *Manager) rowsForRevocation(s *sqlparser.DeleteStmt, params []sqldb.Value) ([]map[string]sqldb.Value, error) {
	if len(m.speaksFor[s.Table]) == 0 {
		return nil, nil
	}
	sel := &sqlparser.SelectStmt{
		Exprs: []sqlparser.SelectExpr{{Star: true}},
		From:  []sqlparser.TableRef{{Table: s.Table}},
		Where: s.Where,
	}
	res, err := m.p.ExecuteStmt(sel, params...)
	if err != nil {
		return nil, err
	}
	var rows []map[string]sqldb.Value
	for _, r := range res.Rows {
		row := make(map[string]sqldb.Value, len(res.Columns))
		for i, c := range res.Columns {
			row[c] = r[i]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// predicateHolds evaluates a SPEAKS FOR ... IF predicate against row
// values. Function predicates (NoConflict) dispatch to registered Go
// predicates; anything else evaluates as a SQL expression over the row.
func (m *Manager) predicateHolds(e sqlparser.Expr, row map[string]sqldb.Value) (bool, error) {
	if e == nil {
		return true, nil
	}
	if fc, ok := e.(*sqlparser.FuncCall); ok {
		fn, ok := m.predicates[fc.Name]
		if !ok {
			return false, fmt.Errorf("mp: predicate %s is not registered", fc.Name)
		}
		args := make([]sqldb.Value, len(fc.Args))
		for i, a := range fc.Args {
			v, err := sqldb.EvalExpr(a, rowLookup(row), nil)
			if err != nil {
				return false, err
			}
			args[i] = v
		}
		return fn(args)
	}
	v, err := sqldb.EvalExpr(e, rowLookup(row), nil)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

func rowLookup(row map[string]sqldb.Value) func(table, col string) (sqldb.Value, error) {
	return func(table, col string) (sqldb.Value, error) {
		if v, ok := row[col]; ok {
			return v, nil
		}
		return sqldb.Value{}, fmt.Errorf("mp: predicate references unknown column %s", col)
	}
}

func principalFromRow(col, ptype string, row map[string]sqldb.Value) (pid, bool) {
	v, ok := row[col]
	if !ok || v.IsNull() {
		return pid{}, false
	}
	return pid{ptype: ptype, name: v.String()}, true
}

func copyRow(row map[string]sqldb.Value) map[string]sqldb.Value {
	out := make(map[string]sqldb.Value, len(row)+1)
	for k, v := range row {
		out[k] = v
	}
	return out
}
