// Package mp implements CryptDB's multi-principal mode (§4): chaining
// encryption keys to user passwords so that each data item can be decrypted
// only through a chain of keys rooted in the password of a user with access
// to it. It consumes the schema annotations of §4.1 (PRINCTYPE, ENC FOR,
// SPEAKS FOR ... IF), maintains the server-side key tables of §4.2
// (access_keys, public_keys, external_keys), and enforces that an adversary
// holding everything on the servers — but no logged-in user's password —
// can decrypt nothing.
package mp

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"

	"repro/internal/crypto/prf"
)

// symKeySize is the size of every principal's symmetric key.
const symKeySize = 32

// kdf derives a key-wrapping key from an external user's password (§4.2:
// external principals' keys are encrypted with the principal's password).
// Iterated hashing stands in for a tunable password KDF.
func kdf(password string, salt []byte) []byte {
	k := prf.Sum(salt, []byte("cryptdb-password-kdf"), []byte(password))
	for i := 0; i < 1000; i++ {
		k = prf.Sum(k, salt)
	}
	return k
}

// wrapSym encrypts payload under a symmetric key with AES-256-GCM.
func wrapSym(key, payload []byte) ([]byte, error) {
	block, err := aes.NewCipher(prf.Sum(key, []byte("wrap")))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return append(nonce, gcm.Seal(nil, nonce, payload, nil)...), nil
}

// unwrapSym inverts wrapSym.
func unwrapSym(key, blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(prf.Sum(key, []byte("wrap")))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(blob) < gcm.NonceSize() {
		return nil, errors.New("mp: wrapped blob too short")
	}
	pt, err := gcm.Open(nil, blob[:gcm.NonceSize()], blob[gcm.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("mp: unwrap failed: %w", err)
	}
	return pt, nil
}

// wrapAsym encrypts a principal key under another principal's RSA public
// key — used when the grantee is offline at grant time (§4.2: "CryptDB
// looks up the public key of the principal ... and encrypts message 5's key
// using user 1's public key").
func wrapAsym(pub *rsa.PublicKey, payload []byte) ([]byte, error) {
	return rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, payload, []byte("cryptdb-asym"))
}

func unwrapAsym(priv *rsa.PrivateKey, blob []byte) ([]byte, error) {
	pt, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, priv, blob, []byte("cryptdb-asym"))
	if err != nil {
		return nil, fmt.Errorf("mp: asymmetric unwrap failed: %w", err)
	}
	return pt, nil
}

func marshalPub(pub *rsa.PublicKey) []byte    { return x509.MarshalPKCS1PublicKey(pub) }
func marshalPriv(priv *rsa.PrivateKey) []byte { return x509.MarshalPKCS1PrivateKey(priv) }

func parsePub(b []byte) (*rsa.PublicKey, error)   { return x509.ParsePKCS1PublicKey(b) }
func parsePriv(b []byte) (*rsa.PrivateKey, error) { return x509.ParsePKCS1PrivateKey(b) }

func newSymKey() ([]byte, error) {
	k := make([]byte, symKeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, err
	}
	return k, nil
}
