package mp

import (
	"strings"
	"testing"

	"repro/internal/proxy"
	"repro/internal/sqldb"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	db := sqldb.New()
	p, err := proxy.New(db, proxy.Options{HOMBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	return New(p, Options{RSABits: 1024})
}

func mustExec(t *testing.T, m *Manager, sql string, params ...sqldb.Value) *sqldb.Result {
	t.Helper()
	res, err := m.Execute(sql, params...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

// setupPhpBB builds the paper's Figure 4 schema: private messages readable
// only by sender and recipient.
func setupPhpBB(t *testing.T) *Manager {
	t.Helper()
	m := newManager(t)
	script := []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE user, msg",
		`CREATE TABLE privmsgs (
			msgid INT,
			subject VARCHAR(255) ENC FOR (msgid msg),
			msgtext TEXT ENC FOR (msgid msg)
		)`,
		`CREATE TABLE privmsgs_to (
			msgid INT, rcpt_id INT, sender_id INT,
			(sender_id user) SPEAKS FOR (msgid msg),
			(rcpt_id user) SPEAKS FOR (msgid msg)
		)`,
		`CREATE TABLE users (
			userid INT, username VARCHAR(255),
			(username physical_user) SPEAKS FOR (userid user)
		)`,
	}
	for _, q := range script {
		mustExec(t, m, q)
	}
	return m
}

func TestFigure4PrivateMessages(t *testing.T) {
	m := setupPhpBB(t)

	// Alice (user 1) and Bob (user 2) register and log in.
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'alicepw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Bob', 'bobpw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (2, 'Bob')")

	// Bob sends message 5 to Alice.
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 2)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 'hello', 'secret message body')")

	// Both logged in: message readable.
	res := mustExec(t, m, "SELECT msgtext FROM privmsgs WHERE msgid = 5")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "secret message body" {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Bob logs out; Alice still reads it (her chain: Alice -> user 1 -> msg 5).
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Bob'")
	res = mustExec(t, m, "SELECT subject FROM privmsgs WHERE msgid = 5")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "hello" {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Everyone logs out: the adversary (holding all server state and the
	// proxy) cannot decrypt message 5.
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Alice'")
	if _, err := m.Execute("SELECT msgtext FROM privmsgs WHERE msgid = 5"); err == nil {
		t.Fatal("message decryptable with no user logged in")
	}
}

func TestOfflineRecipientPublicKeyPath(t *testing.T) {
	m := setupPhpBB(t)

	// Alice registers, then logs out. Her principal exists but her key
	// is locked away.
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'alicepw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Alice'")

	// Bob sends Alice a message while she is offline: msg 5's key is
	// wrapped under user 1's *public* key (§4.2).
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Bob', 'bobpw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (2, 'Bob')")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 2)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 's', 'for alice eyes')")
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Bob'")

	// Alice logs back in and reads it via her RSA private key.
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'alicepw')")
	res := mustExec(t, m, "SELECT msgtext FROM privmsgs WHERE msgid = 5")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "for alice eyes" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWrongPassword(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'alicepw')")
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Alice'")
	if _, err := m.Execute("INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'WRONG')"); err == nil {
		t.Fatal("wrong password accepted")
	}
}

func TestRevocation(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'alicepw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Bob', 'bobpw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (2, 'Bob')")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 2)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 's', 'body')")

	// Remove Bob's speaks-for row: Bob loses access to msg 5.
	mustExec(t, m, "DELETE FROM privmsgs_to WHERE msgid = 5")
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Alice'")
	// Only Bob logged in now, and his edge is revoked.
	if _, err := m.Execute("SELECT msgtext FROM privmsgs WHERE msgid = 5"); err == nil {
		t.Fatal("revoked principal can still decrypt")
	}
}

// TestHotCRPConflictPolicy reproduces Figure 6: PC members see reviews only
// for papers they are not conflicted with, enforced cryptographically.
func TestHotCRPConflictPolicy(t *testing.T) {
	m := newManager(t)
	// NoConflict(paperId, contactId): no row in PaperConflict.
	m.RegisterPredicate("NoConflict", func(args []sqldb.Value) (bool, error) {
		res, err := m.Execute("SELECT COUNT(*) FROM PaperConflict WHERE paperId = ? AND contactId = ?", args[0], args[1])
		if err != nil {
			return false, err
		}
		return res.Rows[0][0].I == 0, nil
	})
	script := []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE contact, review",
		`CREATE TABLE ContactInfo (contactId INT, email VARCHAR(120),
			(email physical_user) SPEAKS FOR (contactId contact))`,
		"CREATE TABLE PaperConflict (paperId INT, contactId INT)",
		`CREATE TABLE PCMember (contactId INT)`,
		`CREATE TABLE PaperReview (
			paperId INT,
			reviewerId INT ENC FOR (paperId review),
			commentsToPC TEXT ENC FOR (paperId review),
			(PCMember.contactId contact) SPEAKS FOR (paperId review) IF NoConflict(paperId, contactId))`,
	}
	for _, q := range script {
		mustExec(t, m, q)
	}

	// chair (contact 1) is conflicted with paper 7; reviewer (contact 2)
	// is not.
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('chair@x', 'chairpw')")
	mustExec(t, m, "INSERT INTO ContactInfo (contactId, email) VALUES (1, 'chair@x')")
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('rev@x', 'revpw')")
	mustExec(t, m, "INSERT INTO ContactInfo (contactId, email) VALUES (2, 'rev@x')")
	mustExec(t, m, "INSERT INTO PaperConflict (paperId, contactId) VALUES (7, 1)")
	mustExec(t, m, "INSERT INTO PCMember (contactId) VALUES (1), (2)")
	mustExec(t, m, "INSERT INTO PaperReview (paperId, reviewerId, commentsToPC) VALUES (7, 2, 'weak accept')")

	// Reviewer logged in: can read.
	res := mustExec(t, m, "SELECT commentsToPC FROM PaperReview WHERE paperId = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "weak accept" {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Only the conflicted chair logged in: cannot read, even with full
	// server access.
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'rev@x'")
	if _, err := m.Execute("SELECT commentsToPC FROM PaperReview WHERE paperId = 7"); err == nil {
		t.Fatal("conflicted chair decrypted a review")
	}
	// And the reviewer identity stays hidden from the chair too.
	if _, err := m.Execute("SELECT reviewerId FROM PaperReview WHERE paperId = 7"); err == nil {
		t.Fatal("conflicted chair learned reviewer identity")
	}
}

func TestNoPlaintextOnServer(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'alicepw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 1)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 'topsecret-subject', 'topsecret-body')")

	db := m.p.DB()
	for _, tn := range db.TableNames() {
		res, err := db.ExecSQL("SELECT * FROM " + tn)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			for _, v := range row {
				if strings.Contains(v.String(), "topsecret") {
					t.Fatalf("plaintext %q visible in server table %s", v.String(), tn)
				}
				if strings.Contains(v.String(), "alicepw") {
					t.Fatalf("password visible in server table %s", tn)
				}
			}
		}
	}
}

func TestPredicateFalseBlocksGrant(t *testing.T) {
	m := newManager(t)
	script := []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE grp, forum_post",
		`CREATE TABLE users2 (uid INT, uname TEXT, (uname physical_user) SPEAKS FOR (uid grp))`,
		`CREATE TABLE aclgroups (groupid INT, forumid INT, optionid INT,
			(groupid grp) SPEAKS FOR (forumid forum_post) IF optionid = 20)`,
		`CREATE TABLE posts (postid INT, forumid INT, post TEXT ENC FOR (forumid forum_post))`,
	}
	for _, q := range script {
		mustExec(t, m, q)
	}
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('u', 'pw')")
	mustExec(t, m, "INSERT INTO users2 (uid, uname) VALUES (10, 'u')")
	// optionid 14 (name visibility), NOT 20 (post visibility): no grant.
	mustExec(t, m, "INSERT INTO aclgroups (groupid, forumid, optionid) VALUES (10, 99, 14)")

	// The post is encrypted for forum 99's forum_post principal, whose
	// key nothing reachable speaks for — the post becomes unreadable for
	// user u (only option 14 was granted).
	mustExec(t, m, "INSERT INTO posts (postid, forumid, post) VALUES (1, 99, 'hidden post')")
	if _, err := m.Execute("SELECT post FROM posts WHERE postid = 1"); err == nil {
		t.Fatal("user without option 20 read the post")
	}

	// Per §4.2, delegating forum_post:99 after the fact is impossible:
	// nobody's chain reaches its key, so the proxy cannot wrap it.
	if _, err := m.Execute("INSERT INTO aclgroups (groupid, forumid, optionid) VALUES (10, 99, 20)"); err == nil {
		t.Fatal("grant succeeded without access to the delegated principal's key")
	}

	// The ordinary flow: ACL row (option 20) exists before the forum's
	// first post, so the principal is minted at grant time and the post
	// is readable.
	mustExec(t, m, "INSERT INTO aclgroups (groupid, forumid, optionid) VALUES (10, 100, 20)")
	mustExec(t, m, "INSERT INTO posts (postid, forumid, post) VALUES (2, 100, 'visible post')")
	res := mustExec(t, m, "SELECT post FROM posts WHERE postid = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "visible post" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDirectLoginAPI(t *testing.T) {
	m := setupPhpBB(t)
	if err := m.Login("Zoe", "zpw"); err != nil {
		t.Fatal(err)
	}
	users := m.OnlineUsers()
	if len(users) != 1 || users[0] != "Zoe" {
		t.Fatalf("online = %v", users)
	}
	m.Logout("Zoe")
	if len(m.OnlineUsers()) != 0 {
		t.Fatal("logout did not erase key")
	}
}

func TestEncForIntValues(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "PRINCTYPE acct")
	mustExec(t, m, `CREATE TABLE balances (owner INT, amount INT ENC FOR (owner acct),
		('admin' physical_user) SPEAKS FOR (owner acct))`)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('admin', 'adm')")
	mustExec(t, m, "INSERT INTO balances (owner, amount) VALUES (1, 4200)")
	res := mustExec(t, m, "SELECT amount FROM balances WHERE owner = 1")
	if res.Rows[0][0].I != 4200 {
		t.Fatalf("amount = %v", res.Rows[0][0])
	}
}
