package mp

import "testing"

func TestChangePassword(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'old-pw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 1)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 's', 'kept across password change')")
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Alice'")

	if err := m.ChangePassword("Alice", "old-pw", "new-pw"); err != nil {
		t.Fatal(err)
	}
	// Old password no longer works.
	if _, err := m.Execute("INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'old-pw')"); err == nil {
		t.Fatal("old password still accepted")
	}
	// New password unlocks the same principal key: old data readable, no
	// re-encryption happened (§4.2).
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'new-pw')")
	res := mustExec(t, m, "SELECT msgtext FROM privmsgs WHERE msgid = 5")
	if res.Rows[0][0].S != "kept across password change" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestChangePasswordWrongOld(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'pw')")
	if err := m.ChangePassword("Alice", "WRONG", "new"); err == nil {
		t.Fatal("wrong old password accepted")
	}
	if err := m.ChangePassword("Nobody", "x", "y"); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestKeyCacheErasedOnLogout(t *testing.T) {
	// The §4.2 key-cache optimization must not outlive the session: after
	// logout, previously cached chains must be unusable.
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'pw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 1)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 's', 'body')")

	// Warm the cache with a successful read.
	mustExec(t, m, "SELECT msgtext FROM privmsgs WHERE msgid = 5")
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Alice'")
	if _, err := m.Execute("SELECT msgtext FROM privmsgs WHERE msgid = 5"); err == nil {
		t.Fatal("cached key survived logout")
	}
}

func TestPrecomputeKeypairs(t *testing.T) {
	m := setupPhpBB(t)
	if err := m.PrecomputeKeypairs(3); err != nil {
		t.Fatal(err)
	}
	// Creating principals consumes the pool and still works beyond it.
	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		if err := m.Login(name, "pw-"+name); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.OnlineUsers()) != 5 {
		t.Fatalf("online = %v", m.OnlineUsers())
	}
}
