package mp

import (
	"testing"

	"repro/internal/sqldb"
)

// setupHotCRP builds the Figure 6 schema with a live NoConflict predicate.
func setupHotCRP(t *testing.T) *Manager {
	t.Helper()
	m := newManager(t)
	m.RegisterPredicate("NoConflict", func(args []sqldb.Value) (bool, error) {
		res, err := m.Execute("SELECT COUNT(*) FROM PaperConflict WHERE paperId = ? AND contactId = ?", args[0], args[1])
		if err != nil {
			return false, err
		}
		return res.Rows[0][0].I == 0, nil
	})
	for _, q := range []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE contact, review",
		`CREATE TABLE ContactInfo (contactId INT, email VARCHAR(120),
			(email physical_user) SPEAKS FOR (contactId contact))`,
		"CREATE TABLE PaperConflict (paperId INT, contactId INT)",
		"CREATE TABLE PCMember (contactId INT)",
		`CREATE TABLE PaperReview (paperId INT,
			reviewerId INT ENC FOR (paperId review),
			commentsToPC TEXT ENC FOR (paperId review),
			(PCMember.contactId contact) SPEAKS FOR (paperId review) IF NoConflict(paperId, contactId))`,
	} {
		mustExec(t, m, q)
	}
	return m
}

// TestReverseRuleGrantsOnMembershipInsert: a PC member added *after*
// reviews exist gains access to the existing non-conflicted reviews (the
// T2.col rule applied in reverse).
func TestReverseRuleGrantsOnMembershipInsert(t *testing.T) {
	m := setupHotCRP(t)

	// Reviewer 1 is on the PC and writes a review of paper 3.
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('r1@x', 'pw1')")
	mustExec(t, m, "INSERT INTO ContactInfo (contactId, email) VALUES (1, 'r1@x')")
	mustExec(t, m, "INSERT INTO PCMember (contactId) VALUES (1)")
	mustExec(t, m, "INSERT INTO PaperReview (paperId, reviewerId, commentsToPC) VALUES (3, 1, 'accept')")

	// Contact 2 joins the PC afterwards (no conflict with paper 3).
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('r2@x', 'pw2')")
	mustExec(t, m, "INSERT INTO ContactInfo (contactId, email) VALUES (2, 'r2@x')")
	mustExec(t, m, "INSERT INTO PCMember (contactId) VALUES (2)")

	// Original reviewer logs out; the new member alone can read.
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'r1@x'")
	res := mustExec(t, m, "SELECT commentsToPC FROM PaperReview WHERE paperId = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "accept" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestReverseRuleHonorsPredicate: a conflicted late joiner gets nothing.
func TestReverseRuleHonorsPredicate(t *testing.T) {
	m := setupHotCRP(t)

	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('r1@x', 'pw1')")
	mustExec(t, m, "INSERT INTO ContactInfo (contactId, email) VALUES (1, 'r1@x')")
	mustExec(t, m, "INSERT INTO PCMember (contactId) VALUES (1)")
	mustExec(t, m, "INSERT INTO PaperReview (paperId, reviewerId, commentsToPC) VALUES (3, 1, 'accept')")

	// Contact 9 is conflicted with paper 3 and joins late.
	mustExec(t, m, "INSERT INTO PaperConflict (paperId, contactId) VALUES (3, 9)")
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('r9@x', 'pw9')")
	mustExec(t, m, "INSERT INTO ContactInfo (contactId, email) VALUES (9, 'r9@x')")
	mustExec(t, m, "INSERT INTO PCMember (contactId) VALUES (9)")

	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'r1@x'")
	if _, err := m.Execute("SELECT commentsToPC FROM PaperReview WHERE paperId = 3"); err == nil {
		t.Fatal("conflicted late joiner decrypted a review")
	}
}

// TestGroupChain exercises a two-hop delegation chain: user -> group ->
// forum (the Figure 5 shape).
func TestGroupChain(t *testing.T) {
	m := newManager(t)
	for _, q := range []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE puser, grp, fpost",
		`CREATE TABLE users3 (uid INT, uname TEXT, (uname physical_user) SPEAKS FOR (uid puser))`,
		`CREATE TABLE usergroup (uid INT, gid INT, (uid puser) SPEAKS FOR (gid grp))`,
		`CREATE TABLE aclgroups (gid INT, fid INT, optionid INT,
			(gid grp) SPEAKS FOR (fid fpost) IF optionid = 20)`,
		`CREATE TABLE posts3 (pid INT, fid INT, body TEXT ENC FOR (fid fpost))`,
	} {
		mustExec(t, m, q)
	}
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('alice', 'pw')")
	mustExec(t, m, "INSERT INTO users3 (uid, uname) VALUES (1, 'alice')")
	mustExec(t, m, "INSERT INTO usergroup (uid, gid) VALUES (1, 77)")
	mustExec(t, m, "INSERT INTO aclgroups (gid, fid, optionid) VALUES (77, 5, 20)")
	mustExec(t, m, "INSERT INTO posts3 (pid, fid, body) VALUES (1, 5, 'forum five content')")

	// Chain: alice -> puser:1 -> grp:77 -> fpost:5.
	res := mustExec(t, m, "SELECT body FROM posts3 WHERE pid = 1")
	if res.Rows[0][0].S != "forum five content" {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Removing the group membership cuts the chain.
	mustExec(t, m, "DELETE FROM usergroup WHERE uid = 1")
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'alice'")
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('alice', 'pw')")
	if _, err := m.Execute("SELECT body FROM posts3 WHERE pid = 1"); err == nil {
		t.Fatal("post readable after membership revocation")
	}
}

// TestInlinePredicateOverRow checks non-function IF predicates evaluate
// against the inserted row's values.
func TestInlinePredicateOverRow(t *testing.T) {
	m := newManager(t)
	for _, q := range []string{
		"PRINCTYPE physical_user EXTERNAL",
		"PRINCTYPE doc",
		`CREATE TABLE shares (docid INT, uname TEXT, level INT,
			('admin' physical_user) SPEAKS FOR (docid doc) IF level >= 2)`,
		`CREATE TABLE docs (docid INT, content TEXT ENC FOR (docid doc))`,
	} {
		mustExec(t, m, q)
	}
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('admin', 'pw')")
	// level 1: no grant; the document principal is freshly minted during
	// the docs insert and unreachable afterwards.
	mustExec(t, m, "INSERT INTO shares (docid, uname, level) VALUES (10, 'x', 1)")
	mustExec(t, m, "INSERT INTO docs (docid, content) VALUES (10, 'locked away')")
	if _, err := m.Execute("SELECT content FROM docs WHERE docid = 10"); err == nil {
		t.Fatal("level-1 share should not grant")
	}
	// level 2 on a fresh doc: grant applies.
	mustExec(t, m, "INSERT INTO shares (docid, uname, level) VALUES (11, 'x', 2)")
	mustExec(t, m, "INSERT INTO docs (docid, content) VALUES (11, 'readable')")
	res := mustExec(t, m, "SELECT content FROM docs WHERE docid = 11")
	if res.Rows[0][0].S != "readable" {
		t.Fatalf("rows = %v", res.Rows)
	}
}
