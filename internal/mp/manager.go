package mp

import (
	cryptorand "crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/crypto/prf"
	"repro/internal/proxy"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
	"repro/internal/store"
)

// RSABits sizes principal RSA key pairs; tests may shrink it via Options.
const RSABits = 2048

// Options configures a Manager.
type Options struct {
	RSABits int
}

// Predicate is an application-registered SQL predicate usable in SPEAKS FOR
// ... IF annotations (like HotCRP's NoConflict, Figure 6). It receives the
// argument values from the row being granted.
type Predicate func(args []sqldb.Value) (bool, error)

type pid struct {
	ptype string
	name  string
}

func (p pid) String() string { return p.ptype + ":" + p.name }

// Manager layers CryptDB's multi-principal key chaining over a Proxy. All
// application SQL should flow through Manager.Execute so that logins,
// logouts and SPEAKS FOR-bearing writes are intercepted (§4.2).
type Manager struct {
	mu sync.Mutex

	p    *proxy.Proxy
	db   store.Engine
	opts Options

	princTypes map[string]bool // declared types
	external   map[string]bool // types declared EXTERNAL

	// online holds the symmetric keys of logged-in external principals —
	// the only secret state; erased at logout so a later compromise
	// cannot decrypt their data (§4.2).
	online map[pid][]byte

	// keyCache memoizes keys reachable from currently logged-in users —
	// the §4.2 optimization ("when a user logs in, CryptDB's proxy loads
	// the keys of some principals to which the user has access").
	// Cleared wholesale on logout or revocation to preserve the
	// key-erasure guarantee.
	keyCache map[pid][]byte

	// rsaPool holds pre-generated keypairs so creating a principal does
	// not pay keygen on the critical path (the precompute philosophy of
	// §3.5.2 applied to principal creation).
	rsaPool []*rsa.PrivateKey

	predicates map[string]Predicate

	// annotations by table, plus reverse references for A = "T2.col"
	// rules.
	speaksFor map[string][]sqlparser.SpeaksForAnnot
	reverse   map[string][]reverseRule // T2 name -> rules living on other tables
}

type reverseRule struct {
	table string // the annotated table (e.g. PaperReview)
	annot sqlparser.SpeaksForAnnot
}

// New creates a Manager over a proxy and installs itself as the proxy's
// PrincipalCrypto hook.
func New(p *proxy.Proxy, opts Options) *Manager {
	if opts.RSABits == 0 {
		opts.RSABits = RSABits
	}
	m := &Manager{
		p:          p,
		db:         p.Engine(),
		opts:       opts,
		princTypes: make(map[string]bool),
		external:   make(map[string]bool),
		online:     make(map[pid][]byte),
		keyCache:   make(map[pid][]byte),
		predicates: make(map[string]Predicate),
		speaksFor:  make(map[string][]sqlparser.SpeaksForAnnot),
		reverse:    make(map[string][]reverseRule),
	}
	p.SetPrincipalCrypto(m)
	m.initTables()
	return m
}

// PrecomputeKeypairs fills the RSA pool with n keypairs off the critical
// path, so principal creation (every new message, forum, user) does not pay
// key generation inline.
func (m *Manager) PrecomputeKeypairs(n int) error {
	pairs := make([]*rsa.PrivateKey, 0, n)
	for i := 0; i < n; i++ {
		priv, err := rsa.GenerateKey(cryptorand.Reader, m.opts.RSABits)
		if err != nil {
			return err
		}
		pairs = append(pairs, priv)
	}
	m.mu.Lock()
	m.rsaPool = append(m.rsaPool, pairs...)
	m.mu.Unlock()
	return nil
}

// RegisterPredicate installs a named predicate for SPEAKS FOR ... IF
// annotations.
func (m *Manager) RegisterPredicate(name string, fn Predicate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.predicates[name] = fn
}

// initTables creates the server-side key tables of §4.2. They live beside
// the application's anonymized tables and contain only wrapped keys.
func (m *Manager) initTables() {
	ddl := []string{
		"CREATE TABLE cryptdb_access_keys (grantee_type TEXT, grantee TEXT, target_type TEXT, target TEXT, asym INT, wrapped BLOB)",
		"CREATE TABLE cryptdb_public_keys (ptype TEXT, name TEXT, pub BLOB, wrapped_priv BLOB)",
		"CREATE TABLE cryptdb_external_keys (name TEXT, salt BLOB, wrapped BLOB)",
	}
	for _, q := range ddl {
		if _, err := m.db.ExecSQL(q); err != nil {
			panic("mp: creating key tables: " + err.Error()) // fresh DB only
		}
	}
	for _, idx := range []string{
		"CREATE INDEX cak_target ON cryptdb_access_keys (target)",
		"CREATE INDEX cak_grantee ON cryptdb_access_keys (grantee)",
		"CREATE INDEX cpk_name ON cryptdb_public_keys (name)",
		"CREATE INDEX cek_name ON cryptdb_external_keys (name)",
	} {
		if _, err := m.db.ExecSQL(idx); err != nil {
			panic("mp: indexing key tables: " + err.Error())
		}
	}
}

//
// Principal lifecycle.
//

// ensurePrincipal returns the principal's symmetric key if it already
// exists and is resolvable, creating the principal (fresh random key + RSA
// pair) if it does not exist. For existing-but-unreachable principals it
// returns only the public key.
func (m *Manager) ensurePrincipal(id pid) (sym []byte, pub *rsa.PublicKey, err error) {
	res, err := m.db.ExecSQL("SELECT pub FROM cryptdb_public_keys WHERE ptype = ? AND name = ?",
		sqldb.Text(id.ptype), sqldb.Text(id.name))
	if err != nil {
		return nil, nil, err
	}
	if len(res.Rows) > 0 {
		pub, err := parsePub(res.Rows[0][0].B)
		if err != nil {
			return nil, nil, err
		}
		sym, _ := m.resolveKey(id) // may fail: offline principal
		return sym, pub, nil
	}

	// Create the principal: random symmetric key, RSA pair, private key
	// wrapped under the symmetric key.
	sym, err = newSymKey()
	if err != nil {
		return nil, nil, err
	}
	var priv *rsa.PrivateKey
	if n := len(m.rsaPool); n > 0 {
		priv = m.rsaPool[n-1]
		m.rsaPool = m.rsaPool[:n-1]
	} else {
		priv, err = rsa.GenerateKey(cryptorand.Reader, m.opts.RSABits)
		if err != nil {
			return nil, nil, err
		}
	}
	wrappedPriv, err := wrapSym(sym, marshalPriv(priv))
	if err != nil {
		return nil, nil, err
	}
	_, err = m.db.ExecSQL("INSERT INTO cryptdb_public_keys (ptype, name, pub, wrapped_priv) VALUES (?, ?, ?, ?)",
		sqldb.Text(id.ptype), sqldb.Text(id.name), sqldb.Blob(marshalPub(&priv.PublicKey)), sqldb.Blob(wrappedPriv))
	if err != nil {
		return nil, nil, err
	}
	return sym, &priv.PublicKey, nil
}

// Login gives the proxy a user's password, unlocking the external
// principal's key (creating it on first login). Applications normally call
// this by INSERTing into cryptdb_active; this is the direct API.
func (m *Manager) Login(username, password string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.login(username, password)
}

func (m *Manager) login(username, password string) error {
	extType := m.externalType()
	if extType == "" {
		return fmt.Errorf("mp: no EXTERNAL principal type declared")
	}
	id := pid{ptype: extType, name: username}

	res, err := m.db.ExecSQL("SELECT salt, wrapped FROM cryptdb_external_keys WHERE name = ?", sqldb.Text(username))
	if err != nil {
		return err
	}
	if len(res.Rows) > 0 {
		salt, wrapped := res.Rows[0][0].B, res.Rows[0][1].B
		sym, err := unwrapSym(kdf(password, salt), wrapped)
		if err != nil {
			return fmt.Errorf("mp: wrong password for %s", username)
		}
		m.online[id] = sym
		return nil
	}

	// First login: create the external principal and store its key
	// wrapped under the password (§4.2 external_keys).
	sym, _, err := m.ensurePrincipal(id)
	if err != nil {
		return err
	}
	if sym == nil {
		return fmt.Errorf("mp: principal %s exists but is locked", id)
	}
	salt := make([]byte, 16)
	if _, err := cryptorand.Read(salt); err != nil {
		return err
	}
	wrapped, err := wrapSym(kdf(password, salt), sym)
	if err != nil {
		return err
	}
	if _, err := m.db.ExecSQL("INSERT INTO cryptdb_external_keys (name, salt, wrapped) VALUES (?, ?, ?)",
		sqldb.Text(username), sqldb.Blob(salt), sqldb.Blob(wrapped)); err != nil {
		return err
	}
	m.online[id] = sym
	return nil
}

// ChangePassword re-wraps an external principal's key under a new password
// (§4.2: the external_keys indirection "allows a user to change her
// password without changing the key of the principal" — no data is
// re-encrypted).
func (m *Manager) ChangePassword(username, oldPassword, newPassword string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	res, err := m.db.ExecSQL("SELECT salt, wrapped FROM cryptdb_external_keys WHERE name = ?", sqldb.Text(username))
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return fmt.Errorf("mp: no external principal %s", username)
	}
	sym, err := unwrapSym(kdf(oldPassword, res.Rows[0][0].B), res.Rows[0][1].B)
	if err != nil {
		return fmt.Errorf("mp: wrong password for %s", username)
	}
	salt := make([]byte, 16)
	if _, err := cryptorand.Read(salt); err != nil {
		return err
	}
	wrapped, err := wrapSym(kdf(newPassword, salt), sym)
	if err != nil {
		return err
	}
	_, err = m.db.ExecSQL("UPDATE cryptdb_external_keys SET salt = ?, wrapped = ? WHERE name = ?",
		sqldb.Blob(salt), sqldb.Blob(wrapped), sqldb.Text(username))
	return err
}

// Logout erases the user's key material from the proxy — including every
// cached key that might have been derived through her chain — so a later
// compromise cannot decrypt her data (§4.2).
func (m *Manager) Logout(username string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ext := m.externalType()
	for k := range m.online {
		if k.ptype == ext && k.name == username {
			delete(m.online, k)
		}
	}
	m.keyCache = make(map[pid][]byte)
}

// OnlineUsers lists currently logged-in external principals.
func (m *Manager) OnlineUsers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for k := range m.online {
		out = append(out, k.name)
	}
	return out
}

func (m *Manager) externalType() string {
	for t := range m.external {
		return t
	}
	return ""
}

//
// Key chain resolution (§4.2): follow access_keys edges from the keys of
// logged-in users until the target principal's key is found.
//

func (m *Manager) resolveKey(target pid) ([]byte, error) {
	if k, ok := m.keyCache[target]; ok {
		return k, nil
	}
	known := make(map[pid][]byte, len(m.online))
	for k, v := range m.online {
		known[k] = v
	}
	for k, v := range m.keyCache {
		known[k] = v
	}
	if k, ok := known[target]; ok {
		return k, nil
	}

	// Iteratively expand the closure of reachable keys. Each pass scans
	// the access_keys rows whose grantee we can already decrypt.
	for {
		progress := false
		for grantee, gkey := range known {
			res, err := m.db.ExecSQL(
				"SELECT target_type, target, asym, wrapped FROM cryptdb_access_keys WHERE grantee = ? AND grantee_type = ?",
				sqldb.Text(grantee.name), sqldb.Text(grantee.ptype))
			if err != nil {
				return nil, err
			}
			for _, row := range res.Rows {
				tgt := pid{ptype: row[0].S, name: row[1].S}
				if _, have := known[tgt]; have {
					continue
				}
				var key []byte
				if row[2].I == 1 {
					// Asymmetric wrap: need the grantee's RSA private
					// key, itself wrapped under the grantee's sym key.
					priv, err := m.privateKey(grantee, gkey)
					if err != nil {
						continue
					}
					key, err = unwrapAsym(priv, row[3].B)
					if err != nil {
						continue
					}
					// Re-wrap symmetrically for future use (§4.2:
					// "re-encrypt it under her symmetric key").
					if rew, err := wrapSym(gkey, key); err == nil {
						_, _ = m.db.ExecSQL(
							"UPDATE cryptdb_access_keys SET asym = 0, wrapped = ? WHERE grantee = ? AND grantee_type = ? AND target = ? AND target_type = ?",
							sqldb.Blob(rew), sqldb.Text(grantee.name), sqldb.Text(grantee.ptype), sqldb.Text(tgt.name), sqldb.Text(tgt.ptype))
					}
				} else {
					var err error
					key, err = unwrapSym(gkey, row[3].B)
					if err != nil {
						continue
					}
				}
				known[tgt] = key
				progress = true
			}
		}
		if k, ok := known[target]; ok {
			// Remember everything reached along the way; all of it is
			// derivable from logged-in users' keys.
			for kk, vv := range known {
				m.keyCache[kk] = vv
			}
			return k, nil
		}
		if !progress {
			return nil, fmt.Errorf("mp: key of %s is not reachable from any logged-in user", target)
		}
	}
}

func (m *Manager) privateKey(id pid, sym []byte) (*rsa.PrivateKey, error) {
	res, err := m.db.ExecSQL("SELECT wrapped_priv FROM cryptdb_public_keys WHERE ptype = ? AND name = ?",
		sqldb.Text(id.ptype), sqldb.Text(id.name))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("mp: no principal %s", id)
	}
	raw, err := unwrapSym(sym, res.Rows[0][0].B)
	if err != nil {
		return nil, err
	}
	return parsePriv(raw)
}

// grant records that grantee speaks for target: target's key is wrapped
// under grantee's key (symmetric when grantee's key chain is currently
// resolvable, public-key otherwise) and stored server-side.
func (m *Manager) grant(grantee, target pid) error {
	// The target's key must be obtainable: resolvable via the current
	// session, or the target is brand new (§4.2).
	tkey, _, err := m.ensurePrincipal(target)
	if err != nil {
		return err
	}
	if tkey == nil {
		return fmt.Errorf("mp: cannot delegate %s: its key is not accessible in this session", target)
	}

	// Skip duplicate grants.
	res, err := m.db.ExecSQL(
		"SELECT COUNT(*) FROM cryptdb_access_keys WHERE grantee = ? AND grantee_type = ? AND target = ? AND target_type = ?",
		sqldb.Text(grantee.name), sqldb.Text(grantee.ptype), sqldb.Text(target.name), sqldb.Text(target.ptype))
	if err != nil {
		return err
	}
	if res.Rows[0][0].I > 0 {
		return nil
	}

	gkey, gpub, err := m.ensurePrincipal(grantee)
	if err != nil {
		return err
	}
	var wrapped []byte
	asym := int64(0)
	if gkey != nil {
		wrapped, err = wrapSym(gkey, tkey)
	} else {
		// Grantee offline: wrap under its public key (§4.2).
		asym = 1
		wrapped, err = wrapAsym(gpub, tkey)
	}
	if err != nil {
		return err
	}
	_, err = m.db.ExecSQL("INSERT INTO cryptdb_access_keys (grantee_type, grantee, target_type, target, asym, wrapped) VALUES (?, ?, ?, ?, ?, ?)",
		sqldb.Text(grantee.ptype), sqldb.Text(grantee.name), sqldb.Text(target.ptype), sqldb.Text(target.name),
		sqldb.Int(asym), sqldb.Blob(wrapped))
	return err
}

// revoke removes a speaks-for edge (§4.2: "If a SPEAKS FOR relation is
// removed, CryptDB revokes access by removing the corresponding row").
func (m *Manager) revoke(grantee, target pid) error {
	m.keyCache = make(map[pid][]byte)
	_, err := m.db.ExecSQL(
		"DELETE FROM cryptdb_access_keys WHERE grantee = ? AND grantee_type = ? AND target = ? AND target_type = ?",
		sqldb.Text(grantee.name), sqldb.Text(grantee.ptype), sqldb.Text(target.name), sqldb.Text(target.ptype))
	return err
}

//
// proxy.PrincipalCrypto implementation: per-principal data encryption for
// ENC FOR columns.
//

// EncryptFor encrypts v for (ptype, pname) with a column-specific key
// derived from the principal's key.
func (m *Manager) EncryptFor(ptype, pname, table, col string, v sqldb.Value) (sqldb.Value, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.IsNull() {
		return sqldb.Null(), nil
	}
	key, _, err := m.ensurePrincipal(pid{ptype: ptype, name: pname})
	if err != nil {
		return sqldb.Value{}, err
	}
	if key == nil {
		return sqldb.Value{}, fmt.Errorf("mp: cannot encrypt for %s:%s — key not accessible", ptype, pname)
	}
	blob, err := wrapSym(dataKey(key, table, col), encodeValue(v))
	if err != nil {
		return sqldb.Value{}, err
	}
	return sqldb.Blob(blob), nil
}

// DecryptFor decrypts an ENC FOR value, succeeding only when the owning
// principal's key is reachable from a logged-in user.
func (m *Manager) DecryptFor(ptype, pname, table, col string, v sqldb.Value) (sqldb.Value, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.IsNull() {
		return sqldb.Null(), nil
	}
	key, err := m.resolveKey(pid{ptype: ptype, name: pname})
	if err != nil {
		return sqldb.Value{}, err
	}
	raw, err := unwrapSym(dataKey(key, table, col), v.B)
	if err != nil {
		return sqldb.Value{}, err
	}
	return decodeValue(raw)
}

func dataKey(principalKey []byte, table, col string) []byte {
	return prf.Sum(principalKey, []byte("data"), []byte(table), []byte(col))
}

func encodeValue(v sqldb.Value) []byte {
	switch v.Kind {
	case sqldb.KindInt:
		out := make([]byte, 9)
		out[0] = 1
		binary.BigEndian.PutUint64(out[1:], uint64(v.I))
		return out
	case sqldb.KindText:
		return append([]byte{2}, v.S...)
	case sqldb.KindBlob:
		return append([]byte{3}, v.B...)
	}
	return []byte{0}
}

func decodeValue(b []byte) (sqldb.Value, error) {
	if len(b) == 0 {
		return sqldb.Value{}, fmt.Errorf("mp: empty value encoding")
	}
	switch b[0] {
	case 0:
		return sqldb.Null(), nil
	case 1:
		if len(b) != 9 {
			return sqldb.Value{}, fmt.Errorf("mp: bad int encoding")
		}
		return sqldb.Int(int64(binary.BigEndian.Uint64(b[1:]))), nil
	case 2:
		return sqldb.Text(string(b[1:])), nil
	case 3:
		return sqldb.Blob(b[1:]), nil
	}
	return sqldb.Value{}, fmt.Errorf("mp: bad value tag %d", b[0])
}
