package mp

import "testing"

// TestUpdateEncForColumn exercises the read-modify-write path for
// multi-principal columns: the proxy must fetch each row's owner, then
// re-encrypt the new constant under that principal's key.
func TestUpdateEncForColumn(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'pw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 1)")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (6, 1, 1)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 'a', 'old five')")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (6, 'b', 'old six')")

	res := mustExec(t, m, "UPDATE privmsgs SET msgtext = 'edited body' WHERE msgid = 5")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := mustExec(t, m, "SELECT msgtext FROM privmsgs WHERE msgid = 5")
	if got.Rows[0][0].S != "edited body" {
		t.Fatalf("rows = %v", got.Rows)
	}
	// The sibling row is untouched.
	got = mustExec(t, m, "SELECT msgtext FROM privmsgs WHERE msgid = 6")
	if got.Rows[0][0].S != "old six" {
		t.Fatalf("rows = %v", got.Rows)
	}

	// The edited value is still bound to the message principal: after
	// logout it is unreadable.
	mustExec(t, m, "DELETE FROM cryptdb_active WHERE username = 'Alice'")
	if _, err := m.Execute("SELECT msgtext FROM privmsgs WHERE msgid = 5"); err == nil {
		t.Fatal("edited message readable after logout")
	}
}

// TestDeleteEncForRows confirms deletes work on tables with ENC FOR columns
// (predicates touch only the plain/single-principal columns).
func TestDeleteEncForRows(t *testing.T) {
	m := setupPhpBB(t)
	mustExec(t, m, "INSERT INTO cryptdb_active (username, password) VALUES ('Alice', 'pw')")
	mustExec(t, m, "INSERT INTO users (userid, username) VALUES (1, 'Alice')")
	mustExec(t, m, "INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 1)")
	mustExec(t, m, "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES (5, 's', 'body')")
	res := mustExec(t, m, "DELETE FROM privmsgs WHERE msgid = 5")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := mustExec(t, m, "SELECT COUNT(*) FROM privmsgs")
	if got.Rows[0][0].I != 0 {
		t.Fatalf("count = %v", got.Rows[0][0])
	}
}
