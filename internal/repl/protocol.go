// Package repl implements asynchronous primary → follower replication by
// shipping the embedded database's WAL frames over TCP.
//
// The design leans entirely on what the durability layer already
// guarantees: frames are CRC-protected, sequence-numbered, and are the
// unit of commit atomicity, so the replication protocol never invents its
// own transaction framing — it moves the primary's frames verbatim and the
// follower replays them through the same code path crash recovery uses.
// The proxy's sealed onion metadata rides those frames too (walOpMeta), so
// a follower's metadata can never diverge from the ciphertexts it
// describes.
//
// Wire protocol (all integers big-endian):
//
//	handshake (follower → primary):
//	    magic[8] shard[4] fromSeq[8]
//	reply (primary → follower):
//	    magic[8] shardCount[4] flags[4]
//	stream (primary → follower): messages
//	    type[1] len[4] payload
//	      msgSnap   payload := seq[8] snapshotOps   (full-state resync)
//	      msgFrames payload := frame+               (raw WAL frames)
//	      msgErr    payload := error string         (terminal; conn closes)
//	acks (follower → primary): seq[8]+  — the follower's replay position,
//	    written after each applied message; the primary exposes it as lag.
//
// A shard field of probeShard turns the handshake into a topology probe:
// the primary answers with its shard count and closes. Catch-up is decided
// by the primary: if fromSeq is still covered by its log the stream starts
// with msgFrames, otherwise with one msgSnap followed by the tail.
//
// Delivery is at-least-once across reconnects (the follower redials with
// its current sequence); replay is idempotent because the follower skips
// frames at or below its own sequence. A partially received message is
// discarded on disconnect — nothing is applied until a message has arrived
// whole and each contained frame passes its CRC check again on the
// follower.
package repl

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	replMagic  = "CDBREPL\x01"
	probeShard = 0xFFFFFFFF

	msgSnap   = 1
	msgFrames = 2
	msgErr    = 3

	// maxMsgLen bounds allocation when reading a (possibly hostile or
	// corrupt) stream.
	maxMsgLen = 1 << 30

	handshakeLen = 8 + 4 + 8
	replyLen     = 8 + 4 + 4
)

// FlagSharded in the handshake reply marks the primary's engine as
// sharded. A follower mirrors the topology exactly — a sharded primary
// with one shard still wraps its metadata blobs in the sharded engine's
// sequence envelope, so the count alone is not enough.
const FlagSharded = uint32(1)

func writeHandshake(w io.Writer, shard uint32, fromSeq uint64) error {
	buf := make([]byte, handshakeLen)
	copy(buf, replMagic)
	binary.BigEndian.PutUint32(buf[8:], shard)
	binary.BigEndian.PutUint64(buf[12:], fromSeq)
	_, err := w.Write(buf)
	return err
}

func readHandshake(r io.Reader) (shard uint32, fromSeq uint64, err error) {
	buf := make([]byte, handshakeLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, err
	}
	if string(buf[:8]) != replMagic {
		return 0, 0, fmt.Errorf("repl: bad handshake magic")
	}
	return binary.BigEndian.Uint32(buf[8:]), binary.BigEndian.Uint64(buf[12:]), nil
}

func writeReply(w io.Writer, shards int, flags uint32) error {
	buf := make([]byte, replyLen)
	copy(buf, replMagic)
	binary.BigEndian.PutUint32(buf[8:], uint32(shards))
	binary.BigEndian.PutUint32(buf[12:], flags)
	_, err := w.Write(buf)
	return err
}

func readReply(r io.Reader) (shards int, flags uint32, err error) {
	buf := make([]byte, replyLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, err
	}
	if string(buf[:8]) != replMagic {
		return 0, 0, fmt.Errorf("repl: bad reply magic")
	}
	return int(binary.BigEndian.Uint32(buf[8:])), binary.BigEndian.Uint32(buf[12:]), nil
}

// encodeMsg frames one stream message. Returned as a single buffer so the
// fault injector can truncate it at any byte boundary.
func encodeMsg(typ byte, payload []byte) []byte {
	buf := make([]byte, 5+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:], uint32(len(payload)))
	copy(buf[5:], payload)
	return buf
}

func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxMsgLen {
		return 0, nil, fmt.Errorf("repl: message length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

func writeAck(w io.Writer, seq uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	_, err := w.Write(buf[:])
	return err
}

func readAck(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}
