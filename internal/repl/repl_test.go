package repl_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/repl/replfault"
	"repro/internal/sqldb"
	"repro/internal/sqlparser"
)

var dopts = sqldb.DurabilityOptions{CheckpointBytes: -1, NoFsync: true}

func openDB(t *testing.T, dir string) *sqldb.DB {
	t.Helper()
	return openDBOpts(t, dir, dopts)
}

func openDBOpts(t *testing.T, dir string, opts sqldb.DurabilityOptions) *sqldb.DB {
	t.Helper()
	db, err := sqldb.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func exec(t *testing.T, db *sqldb.DB, sql string, params ...sqldb.Value) {
	t.Helper()
	if _, err := db.ExecSQL(sql, params...); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// workloadStep applies one deterministic step of the property workload:
// a mix of inserts, updates, deletes, metadata commits (standalone and
// statement-attached), transactions and occasional DDL — every commit
// shape the WAL can produce.
func workloadStep(t *testing.T, db *sqldb.DB, rng *rand.Rand, i int) {
	t.Helper()
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		exec(t, db, "INSERT INTO t (id, v, note) VALUES (?, ?, ?)",
			sqldb.Int(int64(1000+i)), sqldb.Int(rng.Int63n(1000)), sqldb.Text(fmt.Sprintf("row-%d", i)))
	case 4, 5:
		exec(t, db, "UPDATE t SET v = ? WHERE id = ?", sqldb.Int(rng.Int63n(1000)), sqldb.Int(int64(1000+rng.Intn(i+1))))
	case 6:
		exec(t, db, "DELETE FROM t WHERE id = ?", sqldb.Int(int64(1000+rng.Intn(i+1))))
	case 7:
		st, err := sqlparser.Parse("INSERT INTO t (id, v, note) VALUES (?, ?, 'meta-row')")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.ExecWithMeta(st, []byte(fmt.Sprintf("sealed-meta-%d", i)),
			sqldb.Int(int64(100000+i)), sqldb.Int(int64(i))); err != nil {
			t.Fatalf("ExecWithMeta: %v", err)
		}
	case 8:
		if err := db.SetMeta([]byte(fmt.Sprintf("standalone-meta-%d", i))); err != nil {
			t.Fatalf("SetMeta: %v", err)
		}
	case 9:
		sess := db.NewSession()
		mustSess(t, sess, "BEGIN")
		mustSess(t, sess, fmt.Sprintf("INSERT INTO t (id, v, note) VALUES (%d, %d, 'txn')", 200000+i, i))
		mustSess(t, sess, fmt.Sprintf("INSERT INTO t (id, v, note) VALUES (%d, %d, 'txn')", 300000+i, i))
		mustSess(t, sess, "COMMIT")
		sess.Close()
	}
}

func mustSess(t *testing.T, s *sqldb.Session, sql string) {
	t.Helper()
	if _, err := s.ExecSQL(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// assertConverged waits for the follower to reach the primary's sequence
// and then requires byte-equal state: digest (schema + rows + indexes +
// meta), the raw meta blob, and identical SELECT results.
func assertConverged(t *testing.T, prim, fol *sqldb.DB, fw *repl.Follower) {
	t.Helper()
	target := prim.Seq()
	if err := fw.WaitCaughtUp(target, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := fol.StateDigest(), prim.StateDigest(); got != want {
		t.Fatalf("state digest mismatch:\nfollower %s\nprimary  %s", got, want)
	}
	if got, want := string(fol.Meta()), string(prim.Meta()); got != want {
		t.Fatalf("meta mismatch: follower %q, primary %q", got, want)
	}
	const q = "SELECT id, v, note FROM t WHERE v >= 0 ORDER BY id"
	pr, err := prim.ExecSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fol.ExecSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Rows) != len(fr.Rows) {
		t.Fatalf("row count mismatch: follower %d, primary %d", len(fr.Rows), len(pr.Rows))
	}
	for i := range pr.Rows {
		for j := range pr.Rows[i] {
			if pr.Rows[i][j].String() != fr.Rows[i][j].String() {
				t.Fatalf("row %d col %d: follower %v, primary %v", i, j, fr.Rows[i][j], pr.Rows[i][j])
			}
		}
	}
}

// TestReplicationFaultSchedule is the fault-schedule property test: a
// 300-step workload of every commit shape runs against a primary while a
// deterministic script tears the stream (connection drops, mid-frame
// truncations, delays) and the test kills and restarts the follower
// process at fixed points — including one primary checkpoint that forces
// the snapshot catch-up path. After the workload the follower must hold
// byte-equal state and serve identical SELECTs.
func TestReplicationFaultSchedule(t *testing.T) {
	const steps = 300
	// The paged arm replays into a follower whose rows live behind a
	// buffer cache smaller than one page, with background auto-checkpoints
	// enabled: stream application, crash-restart resume and the
	// snapshot-resync path all run against the paged layout. Replication
	// addresses rows by slot, so digest equality is layout-independent.
	pagedOpts := sqldb.DurabilityOptions{NoFsync: true, CheckpointBytes: 1 << 16, Paged: true, CacheBytes: 32 << 10}
	cases := []struct {
		name  string
		seed  int64
		fopts sqldb.DurabilityOptions
	}{
		{"seed=1", 1, dopts},
		{"seed=7", 7, dopts},
		{"seed=42", 42, dopts},
		{"seed=7/paged-follower", 7, pagedOpts},
	}
	for _, tc := range cases {
		seed, fopts := tc.seed, tc.fopts
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			prim := openDB(t, t.TempDir())
			defer prim.Close()
			exec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY, v INT, note TEXT)")
			exec(t, prim, "CREATE INDEX t_v ON t (v)")

			p, err := repl.NewPrimary([]*sqldb.DB{prim}, "127.0.0.1:0", 0)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			// Scripted faults at deterministic message boundaries: roughly
			// every 6th message suffers a drop, a mid-frame tear (one byte
			// short, or cut inside the 5-byte header), or a delay.
			var fsteps []replfault.Step
			for msg := 3; msg < steps*2; msg += 3 + rng.Intn(6) {
				var s replfault.Step
				s.AtMessage, s.Shard = msg, -1
				switch rng.Intn(4) {
				case 0:
					s.Action = repl.DropConn
				case 1:
					s.Action, s.Arg = repl.Truncate, -1 // one byte short of a whole frame
				case 2:
					s.Action, s.Arg = repl.Truncate, 3 // tear inside the message header
				case 3:
					s.Action, s.Arg = repl.Delay, 1
				}
				fsteps = append(fsteps, s)
			}
			script := replfault.NewScript(fsteps...)
			p.SetFaultInjector(script)

			folDir := t.TempDir()
			fol := openDBOpts(t, folDir, fopts)
			fw := repl.StartFollower(fol, p.Addr(), 0)

			// The schedule: a kill+restart at 60 and 220 exercises resume
			// from the follower's own recovered WAL; the kill at 90 keeps
			// the follower down across the checkpoint at 100, so its
			// restart at 110 finds its position checkpointed away and MUST
			// take the snapshot-resync path. Periodic catch-up waits pace
			// the workload so frames actually stream (and faults actually
			// fire) instead of the whole run collapsing into one snapshot.
			down := false
			for i := 0; i < steps; i++ {
				workloadStep(t, prim, rng, i)
				switch i {
				case 60, 220:
					fw.Close()
					if err := fol.Close(); err != nil {
						t.Fatal(err)
					}
					fol = openDBOpts(t, folDir, fopts)
					fw = repl.StartFollower(fol, p.Addr(), 0)
				case 90:
					fw.Close()
					if err := fol.Close(); err != nil {
						t.Fatal(err)
					}
					down = true
				case 100:
					// Checkpoint discards the log tail: the downed
					// follower's position now requires the snapshot path.
					if err := prim.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				case 110:
					fol = openDBOpts(t, folDir, fopts)
					fw = repl.StartFollower(fol, p.Addr(), 0)
					down = false
				}
				if !down && i%25 == 24 {
					if err := fw.WaitCaughtUp(prim.Seq(), 20*time.Second); err != nil {
						t.Fatal(err)
					}
				}
			}
			defer fw.Close()
			defer fol.Close()
			assertConverged(t, prim, fol, fw)
			if fopts.Paged {
				if !fol.Paged() {
					t.Fatal("paged arm ran a resident follower")
				}
				if cs := fol.CacheStats(); cs.Misses == 0 {
					t.Fatalf("paged follower never faulted a page: %+v", cs)
				}
			}
			if script.Messages() < steps/2 {
				t.Fatalf("fault script observed only %d messages — stream not exercised", script.Messages())
			}
			if len(script.Journal()) == 0 {
				t.Fatal("no scripted fault fired")
			}
			t.Logf("schedule fired %d faults over %d messages; last follower incarnation reconnected %d times",
				len(script.Journal()), script.Messages(), fw.Connects())
		})
	}
}

// TestTornStreamEveryBoundary sweeps a truncation across *every* message
// boundary of a fixed workload, cutting both inside the message header
// and one byte short of the full frame. Whatever the cut point, the
// follower must never half-apply a cohort and must converge byte-equal
// after reconnecting.
func TestTornStreamEveryBoundary(t *testing.T) {
	const workloadSteps = 10
	for _, cut := range []struct {
		name string
		arg  int
	}{
		{"header", 3},      // tear inside the 5-byte message header
		{"lastbyte", -1},   // one byte short of a complete frame
		{"firstbyte", 1},   // almost nothing arrives
	} {
		for boundary := 1; boundary <= workloadSteps+2; boundary++ {
			boundary := boundary
			t.Run(fmt.Sprintf("%s/msg%d", cut.name, boundary), func(t *testing.T) {
				prim := openDB(t, t.TempDir())
				defer prim.Close()
				exec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY, v INT, note TEXT)")

				p, err := repl.NewPrimary([]*sqldb.DB{prim}, "127.0.0.1:0", 0)
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				script := replfault.NewScript(replfault.Step{
					AtMessage: boundary, Shard: -1, Action: repl.Truncate, Arg: cut.arg,
				})
				p.SetFaultInjector(script)

				fol := openDB(t, t.TempDir())
				defer fol.Close()
				fw := repl.StartFollower(fol, p.Addr(), 0)
				defer fw.Close()

				rng := rand.New(rand.NewSource(int64(boundary)))
				for i := 0; i < workloadSteps; i++ {
					workloadStep(t, prim, rng, i)
					// Pace the workload against replication so every cut
					// point lands on a live stream, not a post-hoc batch.
					if err := fw.WaitCaughtUp(prim.Seq(), 20*time.Second); err != nil {
						t.Fatal(err)
					}
				}
				assertConverged(t, prim, fol, fw)
				if boundary <= script.Messages() && len(script.Journal()) != 1 {
					t.Fatalf("boundary %d within %d messages but %d faults fired",
						boundary, script.Messages(), len(script.Journal()))
				}
			})
		}
	}
}

// TestFollowerBoundedStaleness: the follower's visible replay sequence
// must never move backwards — across torn streams, reconnects, and a
// snapshot resync forced by a primary checkpoint.
func TestFollowerBoundedStaleness(t *testing.T) {
	prim := openDB(t, t.TempDir())
	defer prim.Close()
	exec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY, v INT, note TEXT)")

	p, err := repl.NewPrimary([]*sqldb.DB{prim}, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Drop the connection every few messages to force constant reconnects.
	var fsteps []replfault.Step
	for msg := 4; msg < 400; msg += 5 {
		fsteps = append(fsteps, replfault.Step{AtMessage: msg, Shard: -1, Action: repl.DropConn})
	}
	p.SetFaultInjector(replfault.NewScript(fsteps...))

	fol := openDB(t, t.TempDir())
	defer fol.Close()
	fw := repl.StartFollower(fol, p.Addr(), 0)
	defer fw.Close()

	// Sample the replay sequence concurrently with the workload.
	var stop int32
	violation := make(chan string, 1)
	go func() {
		var last uint64
		for atomic.LoadInt32(&stop) == 0 {
			s := fw.Seq()
			if s < last {
				select {
				case violation <- fmt.Sprintf("replay sequence went backwards: %d after %d", s, last):
				default:
				}
				return
			}
			last = s
			time.Sleep(200 * time.Microsecond)
		}
	}()

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		workloadStep(t, prim, rng, i)
		if i == 75 {
			// Checkpoint so at least one reconnect is served by snapshot
			// resync — the path that rewrites the whole local state.
			if err := prim.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		// Pace against replication so the stream is live (and the scripted
		// drops actually hit it) instead of one post-hoc snapshot.
		if i%10 == 9 {
			if err := fw.WaitCaughtUp(prim.Seq(), 20*time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertConverged(t, prim, fol, fw)
	atomic.StoreInt32(&stop, 1)
	select {
	case v := <-violation:
		t.Fatal(v)
	default:
	}
	if fw.Connects() < 2 {
		t.Fatalf("expected reconnects, got %d connects", fw.Connects())
	}
}

// TestReplicationKillRestartMidStream is the CI smoke: a follower dies
// abruptly mid-stream (its process state vanishes; only its local disk
// survives, exactly what kill -9 leaves), restarts from local recovery,
// and catches up to byte-equal state.
func TestReplicationKillRestartMidStream(t *testing.T) {
	prim := openDB(t, t.TempDir())
	defer prim.Close()
	exec(t, prim, "CREATE TABLE t (id INT PRIMARY KEY, v INT, note TEXT)")

	p, err := repl.NewPrimary([]*sqldb.DB{prim}, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	folDir := t.TempDir()
	fol := openDB(t, folDir)
	fw := repl.StartFollower(fol, p.Addr(), 0)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		workloadStep(t, prim, rng, i)
	}
	// "kill -9": the stream and the process go away mid-flight; the
	// on-disk bytes are whatever the last local flush wrote (Close here
	// adds no WAL content — every applied frame was already flushed).
	fw.Close()
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		workloadStep(t, prim, rng, i)
	}
	fol = openDB(t, folDir)
	defer fol.Close()
	fw = repl.StartFollower(fol, p.Addr(), 0)
	defer fw.Close()
	assertConverged(t, prim, fol, fw)

	// Lag must be visible (and zero once converged) through FollowerStats.
	stats := p.FollowerStats()
	if len(stats) != 1 {
		t.Fatalf("FollowerStats: %d entries", len(stats))
	}
	if stats[0].PrimarySeq < stats[0].AckedSeq {
		t.Fatalf("acked %d beyond primary %d", stats[0].AckedSeq, stats[0].PrimarySeq)
	}
}

// TestProbe checks the topology handshake.
func TestProbe(t *testing.T) {
	prim := openDB(t, filepath.Join(t.TempDir(), "p"))
	defer prim.Close()
	p, err := repl.NewPrimary([]*sqldb.DB{prim}, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	shards, flags, err := repl.Probe(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if shards != 1 || flags != 0 {
		t.Fatalf("probe: shards=%d flags=%d", shards, flags)
	}
	if !strings.Contains(p.Addr(), ":") {
		t.Fatalf("odd address %q", p.Addr())
	}
}
